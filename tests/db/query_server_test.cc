#include "db/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "db/serving_faults.h"
#include "db/sharded_index.h"
#include "util/clock.h"
#include "util/random.h"

namespace mocemg {
namespace {

/// Typed null so Create/SwapIndex overloads resolve to the plain-index
/// flavor.
constexpr const FeatureIndex* kNoIndex = nullptr;

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(10.0, 15.0);
  }
  return queries;
}

void ExpectHitsEqual(const std::vector<QueryHit>& a,
                     const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_index, b[i].record_index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(QueryServerTest, CreateValidations) {
  EXPECT_FALSE(QueryServer::Create(nullptr).ok());
  MotionDatabase empty;
  EXPECT_FALSE(QueryServer::Create(&empty).ok());
  MotionDatabase db = MakeDb(10, 3, 1);
  QueryServerOptions bad;
  bad.max_queue = 0;
  EXPECT_FALSE(QueryServer::Create(&db, kNoIndex, bad).ok());
  bad = QueryServerOptions{};
  bad.max_batch = 0;
  EXPECT_FALSE(QueryServer::Create(&db, kNoIndex, bad).ok());
  EXPECT_TRUE(QueryServer::Create(&db).ok());
}

TEST(QueryServerTest, SubmitValidations) {
  MotionDatabase db = MakeDb(10, 3, 2);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server->SubmitNearestNeighbors({1.0}, 1).ok());
  EXPECT_FALSE(
      server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 0).ok());
  const double nan = std::nan("");
  EXPECT_FALSE(
      server->SubmitNearestNeighbors({nan, 0.0, 0.0}, 1).ok());
  EXPECT_TRUE(server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 1).ok());
}

// The served results — through the exact blocked fallback — must be
// bit-identical to the database's linear scan, per element.
TEST(QueryServerTest, ExactFallbackBitIdenticalToLinearScan) {
  MotionDatabase db = MakeDb(200, 17, 3);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(40, 17, 4);
  auto batch = server->NearestNeighborsBatch(queries, 5);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 5);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
}

// Served through a fresh index the answers are the same bits again —
// the quantized coarse tier and the server batching change only the
// work done, never the hits.
TEST(QueryServerTest, IndexPathBitIdenticalToLinearScan) {
  MotionDatabase db = MakeDb(300, 17, 5);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto server = QueryServer::Create(&db, &*index);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(40, 17, 6);
  auto batch = server->NearestNeighborsBatch(queries, 5);
  ASSERT_TRUE(batch.ok()) << batch.status();
  const QueryServerStats stats = server->stats();
  EXPECT_GT(stats.index_stats.partitions_visited, 0u)
      << "expected the fresh index to serve the batch";
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 5);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
}

TEST(QueryServerTest, AdmissionBoundRejectsWithOutOfRange) {
  MotionDatabase db = MakeDb(20, 3, 7);
  QueryServerOptions opts;
  opts.max_queue = 4;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
  }
  auto rejected = server->SubmitNearestNeighbors(q, 1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(server->stats().rejected, 1u);
  ASSERT_TRUE(server->Drain().ok());
  // Space freed: admission works again.
  EXPECT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
}

// The batch conveniences must survive request sets far larger than the
// admission queue (backpressure, not failure).
TEST(QueryServerTest, BatchLargerThanQueueBackpressures) {
  MotionDatabase db = MakeDb(50, 5, 8);
  QueryServerOptions opts;
  opts.max_queue = 3;
  opts.max_batch = 2;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(20, 5, 9);
  auto batch = server->NearestNeighborsBatch(queries, 2);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 2);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
  // Rejections happened internally (the queue is 3 deep) but were
  // absorbed by backpressure, never surfaced to the caller.
  EXPECT_EQ(server->stats().served, queries.size());
}

TEST(QueryServerTest, RepeatedQueriesHitTheCache) {
  MotionDatabase db = MakeDb(100, 5, 10);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(4, 5, 11);
  ASSERT_TRUE(server->NearestNeighborsBatch(queries, 3).ok());
  EXPECT_EQ(server->stats().cache_hits, 0u);
  EXPECT_EQ(server->stats().cache_misses, 4u);
  auto again = server->NearestNeighborsBatch(queries, 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(server->stats().cache_hits, 4u);
  EXPECT_EQ(server->stats().cache_misses, 4u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 3);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*again)[i], *linear);
  }
  // Different k is a different key.
  ASSERT_TRUE(server->NearestNeighborsBatch(queries, 4).ok());
  EXPECT_EQ(server->stats().cache_hits, 4u);
  EXPECT_EQ(server->stats().cache_misses, 8u);
}

// Database mutation moves the epoch: cached entries keyed under the
// old epoch can never match again, and re-serving reflects the new
// feature values.
TEST(QueryServerTest, CacheInvalidatedByEpochOnMutation) {
  MotionDatabase db = MakeDb(50, 3, 12);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {0.0, 0.0, 0.0};
  auto before = server->NearestNeighbors(q, 1);
  ASSERT_TRUE(before.ok());
  // Move some record onto the query point; the cached answer is stale.
  ASSERT_TRUE(db.UpdateFeature(7, {0.0, 0.0, 0.0}).ok());
  auto after = server->NearestNeighbors(q, 1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(server->stats().cache_hits, 0u)
      << "epoch moved, the old entry must not match";
  EXPECT_EQ((*after)[0].record_index, 7u);
  EXPECT_EQ((*after)[0].distance, 0.0);
}

// A stale index must not be consulted: the server falls back to the
// exact scan (correct answers, zero index stats deltas).
TEST(QueryServerTest, StaleIndexFallsBackToExactScan) {
  MotionDatabase db = MakeDb(100, 5, 13);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto server = QueryServer::Create(&db, &*index);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(db.UpdateFeature(0, db.record(1).feature).ok());
  const auto queries = MakeQueries(8, 5, 14);
  auto batch = server->NearestNeighborsBatch(queries, 3);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(server->stats().index_stats.partitions_visited, 0u)
      << "stale index must not serve";
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 3);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
}

TEST(QueryServerTest, DuplicateQueriesInOneBatchCoalesce) {
  MotionDatabase db = MakeDb(60, 3, 15);
  QueryServerOptions opts;
  opts.cache_capacity = 0;  // isolate coalescing from caching
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 6; ++i) {
    auto t = server->SubmitNearestNeighbors(q, 2);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  ASSERT_TRUE(server->Drain().ok());
  const QueryServerStats stats = server->stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced, 5u);
  auto linear = db.NearestNeighbors(q, 2);
  ASSERT_TRUE(linear.ok());
  for (uint64_t t : tickets) {
    auto hits = server->TakeHits(t);
    ASSERT_TRUE(hits.ok());
    ExpectHitsEqual(*hits, *linear);
  }
  // A ticket can be taken exactly once.
  EXPECT_FALSE(server->TakeHits(tickets[0]).ok());
}

TEST(QueryServerTest, CacheEvictionRespectsCapacity) {
  MotionDatabase db = MakeDb(40, 4, 16);
  QueryServerOptions opts;
  opts.cache_capacity = 3;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(10, 4, 17);
  ASSERT_TRUE(server->NearestNeighborsBatch(queries, 1).ok());
  const QueryServerStats stats = server->stats();
  EXPECT_EQ(stats.cache_misses, 10u);
  EXPECT_EQ(stats.evictions, 7u);
  // The most recent 3 still hit; the oldest was evicted.
  ASSERT_TRUE(server->NearestNeighbors(queries[9], 1).ok());
  EXPECT_EQ(server->stats().cache_hits, 1u);
  ASSERT_TRUE(server->NearestNeighbors(queries[0], 1).ok());
  EXPECT_EQ(server->stats().cache_hits, 1u);
}

TEST(QueryServerTest, ClassifyMatchesDatabaseVote) {
  MotionDatabase db = MakeDb(120, 5, 18);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto server = QueryServer::Create(&db, &*index);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(25, 5, 19);
  auto labels = server->ClassifyBatch(queries, 5);
  ASSERT_TRUE(labels.ok()) << labels.status();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto want = db.ClassifyByVote(queries[i], 5);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ((*labels)[i], *want) << "query " << i;
  }
}

// Satellite 4: the same request sequence must produce bit-identical
// results AND identical cache-hit counts at every thread budget. The
// "Parallel" in the name keeps this test in the tsan multi-thread
// rerun (tools/run_sanitized_tests.sh).
TEST(QueryServerTest, ParallelServingBitIdenticalAcrossThreadCounts) {
  MotionDatabase db = MakeDb(250, 17, 20);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  // A request mix with repeats (cache hits), in-batch duplicates
  // (coalescing), and two distinct k values (k-grouping).
  auto queries = MakeQueries(30, 17, 21);
  for (int i = 0; i < 10; ++i) queries.push_back(queries[i % 5]);
  std::vector<std::vector<std::vector<QueryHit>>> all_results;
  std::vector<QueryServerStats> all_stats;
  for (size_t threads : {1, 2, 8}) {
    QueryServerOptions opts;
    opts.max_batch = 16;
    opts.parallel.max_threads = threads;
    auto server = QueryServer::Create(&db, &*index, opts);
    ASSERT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, (tickets.size() % 2)
                                                     ? size_t{3}
                                                     : size_t{7});
      ASSERT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    ASSERT_TRUE(server->Drain().ok());
    std::vector<std::vector<QueryHit>> results;
    for (uint64_t t : tickets) {
      auto hits = server->TakeHits(t);
      ASSERT_TRUE(hits.ok());
      results.push_back(*std::move(hits));
    }
    all_results.push_back(std::move(results));
    all_stats.push_back(server->stats());
  }
  for (size_t v = 1; v < all_results.size(); ++v) {
    ASSERT_EQ(all_results[v].size(), all_results[0].size());
    for (size_t i = 0; i < all_results[0].size(); ++i) {
      ExpectHitsEqual(all_results[v][i], all_results[0][i]);
    }
    EXPECT_EQ(all_stats[v].cache_hits, all_stats[0].cache_hits);
    EXPECT_EQ(all_stats[v].cache_misses, all_stats[0].cache_misses);
    EXPECT_EQ(all_stats[v].coalesced, all_stats[0].coalesced);
    EXPECT_EQ(all_stats[v].batches, all_stats[0].batches);
  }
  EXPECT_GT(all_stats[0].cache_hits, 0u) << "mix should exercise the cache";
}

// Background worker + concurrent submitters: every synchronous request
// still gets the linear scan's exact bits. (tsan covers the locking in
// the multi-thread rerun; the name keeps it in that pass.)
TEST(QueryServerTest, ParallelWorkerServesConcurrentClients) {
  MotionDatabase db = MakeDb(150, 9, 22);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  const auto queries = MakeQueries(24, 9, 23);
  std::vector<std::vector<QueryHit>> got(queries.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < queries.size(); i += 3) {
        auto hits = server->NearestNeighbors(queries[i], 4);
        ASSERT_TRUE(hits.ok());
        got[i] = *std::move(hits);
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Stop();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 4);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual(got[i], *linear);
  }
  EXPECT_EQ(server->stats().served, queries.size());
}

// ---------------------------------------------------------------------
// Robustness layer (DESIGN.md §12): deadlines, shedding, degradation,
// backoff, fault injection.
// ---------------------------------------------------------------------

/// Index options that force the int8 tier on at test scale (the
/// default quantized_min_rows=256 would leave √N-sized partitions
/// unquantized and degradation could never fire).
FeatureIndexOptions QuantizedIndexOptions() {
  FeatureIndexOptions opts;
  opts.num_partitions = 4;
  opts.quantized_min_rows = 1;
  return opts;
}

double TrueDistance(const MotionDatabase& db, const std::vector<double>& q,
                    size_t record) {
  const std::vector<double>& f = db.record(record).feature;
  double acc = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    const double d = q[j] - f[j];
    acc += d * d;
  }
  return std::sqrt(acc);
}

TEST(QueryServerTest, CreateRejectsWatermarkAboveMaxQueue) {
  MotionDatabase db = MakeDb(10, 3, 50);
  QueryServerOptions opts;
  opts.max_queue = 8;
  opts.degrade_watermark = 9;
  auto bad = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  opts.degrade_watermark = 8;
  EXPECT_TRUE(QueryServer::Create(&db, kNoIndex, opts).ok());
}

TEST(QueryServerTest, SubmitRejectsKLargerThanDatabase) {
  MotionDatabase db = MakeDb(10, 3, 51);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  auto too_big = server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 11);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 10).ok());
}

// Expiry sweep semantics: only overdue requests fail, with
// DeadlineExceeded; still-live requests are served in their original
// FIFO order, and expired requests never occupy batch slots.
TEST(QueryServerTest, DeadlineExpiryShedsOnlyOverdueRequests) {
  MotionDatabase db = MakeDb(60, 4, 52);
  FakeClock clock;
  QueryServerOptions opts;
  opts.clock = &clock;
  opts.max_batch = 8;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(6, 4, 53);
  // Alternate short (100µs) and long (1s) budgets.
  std::vector<uint64_t> tickets;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto t = server->SubmitNearestNeighbors(
        queries[i], 2, (i % 2 == 0) ? uint64_t{100} : uint64_t{1000000});
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  clock.Advance(500);  // past the short budgets, inside the long ones
  ASSERT_TRUE(server->Drain().ok());
  const QueryServerStats stats = server->stats();
  EXPECT_EQ(stats.expired, 3u);
  EXPECT_EQ(stats.served, 3u);
  for (size_t i = 0; i < tickets.size(); ++i) {
    auto hits = server->TakeHits(tickets[i]);
    if (i % 2 == 0) {
      ASSERT_FALSE(hits.ok()) << "short-budget request " << i;
      EXPECT_EQ(hits.status().code(), StatusCode::kDeadlineExceeded);
    } else {
      ASSERT_TRUE(hits.ok()) << hits.status();
      auto linear = db.NearestNeighbors(queries[i], 2);
      ASSERT_TRUE(linear.ok());
      ExpectHitsEqual(*hits, *linear);
    }
  }
}

// default_deadline_us applies to submits without an explicit budget.
TEST(QueryServerTest, DefaultDeadlineAppliesToPlainSubmits) {
  MotionDatabase db = MakeDb(30, 3, 54);
  FakeClock clock;
  QueryServerOptions opts;
  opts.clock = &clock;
  opts.default_deadline_us = 1000;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  auto t = server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 1);
  ASSERT_TRUE(t.ok());
  clock.Advance(1000);
  ASSERT_TRUE(server->Drain().ok());
  auto hits = server->TakeHits(*t);
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server->stats().expired, 1u);
}

TEST(QueryServerTest, RetryAfterHintParsesAndGrowsWithQueueDepth) {
  // Parser corners first.
  EXPECT_EQ(RetryAfterMicros(Status::OK()), 0u);
  EXPECT_EQ(RetryAfterMicros(Status::OutOfRange("queue full")), 0u);
  EXPECT_EQ(RetryAfterMicros(Status::OutOfRange("retry_after_us=1234")),
            1234u);
  EXPECT_EQ(
      RetryAfterMicros(Status::OutOfRange("full; retry_after_us=77 now")),
      77u);

  // The hint is (depth + 1) × EWMA drain time: a deeper queue at
  // rejection time must produce a larger hint.
  MotionDatabase db = MakeDb(20, 3, 55);
  FakeClock clock;
  const std::vector<double> q = {1.0, 2.0, 3.0};
  std::vector<uint64_t> hints;
  for (size_t max_queue : {2, 6, 11}) {
    QueryServerOptions opts;
    opts.clock = &clock;
    opts.max_queue = max_queue;
    auto server = QueryServer::Create(&db, kNoIndex, opts);
    ASSERT_TRUE(server.ok());
    for (size_t i = 0; i < max_queue; ++i) {
      ASSERT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
    }
    auto rejected = server->SubmitNearestNeighbors(q, 1);
    ASSERT_FALSE(rejected.ok());
    ASSERT_TRUE(rejected.status().IsOutOfRange());
    const uint64_t hint = RetryAfterMicros(rejected.status());
    EXPECT_GT(hint, 0u);
    hints.push_back(hint);
  }
  EXPECT_LT(hints[0], hints[1]);
  EXPECT_LT(hints[1], hints[2]);
}

// Watermark degradation end to end: while the queue is at or above the
// watermark the batches answer from the coarse tier (tagged, bounded),
// and once pressure clears the remaining batches are exact again — all
// within one deterministic drain.
TEST(QueryServerTest, WatermarkDegradesAndRecoversDeterministically) {
  MotionDatabase db = MakeDb(200, 9, 56);
  auto index = FeatureIndex::Build(&db, QuantizedIndexOptions());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->has_quantized_tier());
  const auto queries = MakeQueries(24, 9, 57);

  QueryServerOptions opts;
  opts.max_batch = 4;
  opts.degrade_watermark = 12;
  auto server = QueryServer::Create(&db, &*index, opts);
  ASSERT_TRUE(server.ok());
  std::vector<uint64_t> tickets;
  for (const auto& q : queries) {
    auto t = server->SubmitNearestNeighbors(q, 3);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  ASSERT_TRUE(server->Drain().ok());
  const QueryServerStats stats = server->stats();
  // Depth at formation: 24, 20, 16, 12 (degraded) then 8, 4 (exact).
  EXPECT_EQ(stats.degraded_batches, 4u);
  EXPECT_EQ(stats.degraded, 16u);
  EXPECT_EQ(stats.served, 24u);

  for (size_t i = 0; i < tickets.size(); ++i) {
    auto answer = server->TakeAnswer(tickets[i]);
    ASSERT_TRUE(answer.ok()) << answer.status();
    auto linear = db.NearestNeighbors(queries[i], 3);
    ASSERT_TRUE(linear.ok());
    if (i < 16) {
      EXPECT_TRUE(answer->degraded) << "request " << i;
      EXPECT_GT(answer->error_bound, 0.0);
      // Certified bound: every reported distance is within B of that
      // record's true distance.
      for (const QueryHit& hit : answer->hits) {
        const double truth = TrueDistance(db, queries[i], hit.record_index);
        EXPECT_LE(std::abs(hit.distance - truth),
                  answer->error_bound + 1e-9)
            << "request " << i << " record " << hit.record_index;
      }
    } else {
      EXPECT_FALSE(answer->degraded) << "request " << i;
      EXPECT_EQ(answer->error_bound, 0.0);
      ExpectHitsEqual(answer->hits, *linear);
    }
  }
}

// Degraded answers must never poison the cache: re-asking the same
// query under no pressure gets the exact answer, not a cached
// approximation.
TEST(QueryServerTest, DegradedAnswersAreNotCached) {
  MotionDatabase db = MakeDb(150, 5, 58);
  auto index = FeatureIndex::Build(&db, QuantizedIndexOptions());
  ASSERT_TRUE(index.ok());
  const auto queries = MakeQueries(8, 5, 59);

  QueryServerOptions opts;
  opts.max_batch = 8;
  opts.degrade_watermark = 8;
  auto server = QueryServer::Create(&db, &*index, opts);
  ASSERT_TRUE(server.ok());
  std::vector<uint64_t> tickets;
  for (const auto& q : queries) {
    auto t = server->SubmitNearestNeighbors(q, 2);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  ASSERT_TRUE(server->Drain().ok());
  ASSERT_EQ(server->stats().degraded, 8u);
  for (uint64_t t : tickets) ASSERT_TRUE(server->TakeHits(t).ok());

  // Pressure cleared: the same queries must be evaluated afresh.
  for (const auto& q : queries) {
    auto hits = server->NearestNeighbors(q, 2);
    ASSERT_TRUE(hits.ok());
    auto linear = db.NearestNeighbors(q, 2);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual(*hits, *linear);
  }
  EXPECT_EQ(server->stats().cache_hits, 0u)
      << "degraded batch results must not have been cached";
}

// Satellite 4, tsan-joined by name: the degradation pattern — which
// batches degrade, which requests are tagged, the exact bits of every
// answer — is identical at every kernel-thread budget.
TEST(QueryServerTest, ParallelDegradationIdenticalAcrossThreadCounts) {
  MotionDatabase db = MakeDb(220, 9, 60);
  auto index = FeatureIndex::Build(&db, QuantizedIndexOptions());
  ASSERT_TRUE(index.ok());
  const auto queries = MakeQueries(30, 9, 61);
  std::vector<std::vector<std::pair<bool, std::vector<QueryHit>>>> runs;
  std::vector<QueryServerStats> run_stats;
  for (size_t threads : {1, 2, 8}) {
    QueryServerOptions opts;
    opts.max_batch = 5;
    opts.degrade_watermark = 15;
    opts.parallel.max_threads = threads;
    auto server = QueryServer::Create(&db, &*index, opts);
    ASSERT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, 4);
      ASSERT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    ASSERT_TRUE(server->Drain().ok());
    std::vector<std::pair<bool, std::vector<QueryHit>>> outcomes;
    for (uint64_t t : tickets) {
      auto answer = server->TakeAnswer(t);
      ASSERT_TRUE(answer.ok());
      outcomes.emplace_back(answer->degraded, std::move(answer->hits));
    }
    runs.push_back(std::move(outcomes));
    run_stats.push_back(server->stats());
  }
  for (size_t v = 1; v < runs.size(); ++v) {
    ASSERT_EQ(runs[v].size(), runs[0].size());
    for (size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[v][i].first, runs[0][i].first) << "request " << i;
      ExpectHitsEqual(runs[v][i].second, runs[0][i].second);
    }
    EXPECT_EQ(run_stats[v].degraded, run_stats[0].degraded);
    EXPECT_EQ(run_stats[v].degraded_batches, run_stats[0].degraded_batches);
    EXPECT_EQ(run_stats[v].batches, run_stats[0].batches);
  }
  EXPECT_GT(run_stats[0].degraded, 0u);
  EXPECT_LT(run_stats[0].degraded, queries.size())
      << "the mix should cover both degraded and exact batches";
}

TEST(QueryServerTest, BackoffScheduleIsSeededAndBounded) {
  BackoffOptions opts;
  opts.initial_us = 1000;
  opts.max_us = 16000;
  opts.multiplier = 2.0;
  opts.jitter = 0.2;
  opts.seed = 42;
  JitteredBackoff a(opts);
  JitteredBackoff b(opts);
  uint64_t prev_base = 0;
  for (int i = 0; i < 8; ++i) {
    const uint64_t da = a.NextDelayUs();
    const uint64_t db2 = b.NextDelayUs();
    EXPECT_EQ(da, db2) << "same seed, same schedule (draw " << i << ")";
    // Within ±jitter of the exponential base, clamped at max_us.
    const double base = std::min<double>(
        1000.0 * std::pow(2.0, i), static_cast<double>(opts.max_us));
    EXPECT_GE(static_cast<double>(da), base * 0.8 - 1.0);
    EXPECT_LE(static_cast<double>(da), base * 1.2 + 1.0);
    prev_base = da;
  }
  (void)prev_base;
  // Different seed, different jitter draws.
  BackoffOptions other = opts;
  other.seed = 43;
  JitteredBackoff c(other);
  JitteredBackoff d(opts);
  int diffs = 0;
  for (int i = 0; i < 8; ++i) {
    if (c.NextDelayUs() != d.NextDelayUs()) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

// A full server that never drains: SubmitWithBackoff must sleep at
// least the server's retry_after hint between attempts (on the fake
// clock) and surface the final rejection.
TEST(QueryServerTest, SubmitWithBackoffHonorsRetryAfterHint) {
  MotionDatabase db = MakeDb(20, 3, 62);
  FakeClock clock;
  QueryServerOptions opts;
  opts.clock = &clock;
  opts.max_queue = 4;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
  }
  auto probe = server->SubmitNearestNeighbors(q, 1);
  ASSERT_FALSE(probe.ok());
  const uint64_t hint = RetryAfterMicros(probe.status());
  ASSERT_GT(hint, 0u);

  BackoffOptions backoff;
  backoff.initial_us = 1;  // make the hint the binding constraint
  backoff.max_us = 2;
  backoff.max_attempts = 4;
  const uint64_t before = clock.NowMicros();
  auto result = SubmitWithBackoff(&*server, q, 1, false, backoff, &clock);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());
  // Three sleeps (between four attempts), each >= the hint.
  EXPECT_GE(clock.NowMicros() - before, 3 * hint);
  EXPECT_EQ(server->stats().rejected, 1u + 4u);
}

TEST(QueryServerTest, SubmitWithBackoffSucceedsOnceQueueDrains) {
  MotionDatabase db = MakeDb(40, 3, 63);
  QueryServerOptions opts;
  opts.max_queue = 2;
  auto server = QueryServer::Create(&db, kNoIndex, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  // With the worker draining, a burst beyond the queue bound succeeds
  // through retries.
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 10; ++i) {
    BackoffOptions backoff;
    backoff.initial_us = 100;
    backoff.max_attempts = 50;
    auto t = SubmitWithBackoff(&*server, q, 2, false, backoff);
    ASSERT_TRUE(t.ok()) << t.status();
    tickets.push_back(*t);
  }
  for (uint64_t t : tickets) {
    ASSERT_TRUE(server->TakeHits(t).ok());
  }
  server->Stop();
}

TEST(QueryServerTest, NoteSnapshotLoadFeedsCounters) {
  MotionDatabase db = MakeDb(10, 3, 64);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  server->NoteSnapshotLoad(true);
  server->NoteSnapshotLoad(false);
  const QueryServerStats stats = server->stats();
  EXPECT_EQ(stats.snapshot_loads, 2u);
  EXPECT_EQ(stats.snapshot_fallbacks, 1u);
}

TEST(QueryServerTest, QueueHighWaterTracksPeakDepth) {
  MotionDatabase db = MakeDb(20, 3, 65);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
  }
  ASSERT_TRUE(server->Drain().ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
  }
  ASSERT_TRUE(server->Drain().ok());
  EXPECT_EQ(server->stats().queue_high_water, 5u);
}

// The PR 6 acceptance test: a stress run under injected slow batches,
// evaluation failures, clock skew, deadlines, and the degradation
// watermark must produce the SAME outcome for every request — shed /
// degraded / exact / failed, with identical bits — on every rerun and
// at every thread budget. ("ServingFault" in the name joins the tsan
// multi-thread rerun.)
TEST(QueryServerTest, ServingFaultInjectedStressDeterministic) {
  MotionDatabase db = MakeDb(240, 9, 66);
  auto index = FeatureIndex::Build(&db, QuantizedIndexOptions());
  ASSERT_TRUE(index.ok());
  auto queries = MakeQueries(48, 9, 67);
  for (int i = 0; i < 12; ++i) queries.push_back(queries[i % 6]);

  struct RunResult {
    std::vector<std::string> outcomes;  ///< per-ticket signature
    QueryServerStats stats;
  };
  auto run = [&](size_t threads) -> RunResult {
    FakeClock clock;
    ServingFaultOptions fopts;
    fopts.seed = 7;
    fopts.slow_batch_probability = 0.5;
    fopts.slow_batch_stall_us = 2000;
    fopts.eval_failure_probability = 0.15;
    fopts.clock_skew_probability = 0.1;
    fopts.clock_skew_us = 500;
    ServingFaultInjector injector(fopts, &clock);
    QueryServerOptions opts;
    opts.clock = &clock;
    opts.max_batch = 4;
    opts.degrade_watermark = 24;
    opts.default_deadline_us = 9000;
    opts.faults = &injector;
    opts.parallel.max_threads = threads;
    auto server = QueryServer::Create(&db, &*index, opts);
    EXPECT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, 3);
      EXPECT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    // Drain through the faults: batch failures surface per ticket,
    // the pump keeps going.
    size_t served = 0;
    do {
      (void)server->DrainOnce(&served);
    } while (served > 0);
    RunResult result;
    for (uint64_t t : tickets) {
      auto answer = server->TakeAnswer(t);
      std::string sig;
      if (!answer.ok()) {
        sig = std::string("err:") +
              StatusCodeToString(answer.status().code());
      } else {
        sig = answer->degraded ? "degraded:" : "exact:";
        for (const QueryHit& hit : answer->hits) {
          sig += std::to_string(hit.record_index) + "@" +
                 std::to_string(hit.distance) + ";";
        }
      }
      result.outcomes.push_back(std::move(sig));
    }
    result.stats = server->stats();
    return result;
  };

  const RunResult base = run(1);
  const RunResult rerun = run(1);
  const RunResult mt2 = run(2);
  const RunResult mt8 = run(8);

  // The stress must actually exercise every mechanism.
  uint64_t n_expired = 0, n_failed = 0;
  for (const std::string& sig : base.outcomes) {
    if (sig == "err:DeadlineExceeded") ++n_expired;
    if (sig == "err:Unavailable") ++n_failed;
  }
  EXPECT_GT(n_expired, 0u) << "stalls should push requests past deadline";
  EXPECT_GT(n_failed, 0u) << "eval failures should surface";
  EXPECT_GT(base.stats.degraded, 0u) << "watermark should fire";
  EXPECT_EQ(base.stats.expired, n_expired);

  for (const RunResult* other : {&rerun, &mt2, &mt8}) {
    ASSERT_EQ(other->outcomes.size(), base.outcomes.size());
    for (size_t i = 0; i < base.outcomes.size(); ++i) {
      EXPECT_EQ(other->outcomes[i], base.outcomes[i]) << "request " << i;
    }
    EXPECT_EQ(other->stats.served, base.stats.served);
    EXPECT_EQ(other->stats.expired, base.stats.expired);
    EXPECT_EQ(other->stats.degraded, base.stats.degraded);
    EXPECT_EQ(other->stats.degraded_batches, base.stats.degraded_batches);
    EXPECT_EQ(other->stats.batches, base.stats.batches);
    EXPECT_EQ(other->stats.rejected, base.stats.rejected);
  }
}

// Concurrent Start()/Submit/Take with live fault injection: the locks
// and condition variables must hold up under stalls and batch
// failures (this is the asan/tsan target; both "Parallel" and
// "ServingFault" keep it in the multi-thread rerun).
TEST(QueryServerTest, ParallelServingFaultInjectedClientsSurvive) {
  MotionDatabase db = MakeDb(150, 5, 68);
  auto index = FeatureIndex::Build(&db, QuantizedIndexOptions());
  ASSERT_TRUE(index.ok());
  ServingFaultOptions fopts;
  fopts.seed = 11;
  fopts.slow_batch_probability = 0.3;
  fopts.slow_batch_stall_us = 500;  // real sleeps: no fake clock here
  fopts.eval_failure_probability = 0.2;
  ServingFaultInjector injector(fopts);
  QueryServerOptions opts;
  opts.max_queue = 16;
  opts.max_batch = 4;
  opts.degrade_watermark = 8;
  opts.faults = &injector;
  auto server = QueryServer::Create(&db, &*index, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  const auto queries = MakeQueries(30, 5, 69);
  std::atomic<int> ok_count{0}, fail_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < queries.size(); i += 3) {
        BackoffOptions backoff;
        backoff.initial_us = 200;
        backoff.max_attempts = 100;
        backoff.seed = 100 + i;
        auto t = SubmitWithBackoff(&*server, queries[i], 3, false, backoff);
        if (!t.ok()) {
          ++fail_count;
          continue;
        }
        auto answer = server->TakeAnswer(*t);
        if (answer.ok()) {
          ++ok_count;
        } else {
          // Injected failures surface as Unavailable; nothing else may.
          EXPECT_TRUE(answer.status().IsUnavailable()) << answer.status();
          ++fail_count;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Stop();
  EXPECT_EQ(ok_count + fail_count, 30);
  EXPECT_GT(ok_count.load(), 0);
  const QueryServerStats stats = server->stats();
  // Conservation: every admitted request was either answered (served,
  // possibly with an injected failure) or shed by a deadline sweep.
  EXPECT_EQ(stats.served + stats.expired, stats.submitted);
}

TEST(QueryServerTest, CreateRejectsZeroPipelineDepth) {
  MotionDatabase db = MakeDb(10, 3, 70);
  QueryServerOptions opts;
  opts.pipeline_depth = 0;
  EXPECT_FALSE(QueryServer::Create(&db, kNoIndex, opts).ok());
}

TEST(QueryServerTest, ShardedServingBitIdenticalToLinearScan) {
  const size_t kDim = 7;
  MotionDatabase db = MakeDb(220, kDim, 71);
  ShardedIndexOptions sopts;
  sopts.num_shards = 3;
  auto index = ShardedFeatureIndex::Build(&db, sopts);
  ASSERT_TRUE(index.ok()) << index.status();
  QueryServerOptions opts;
  opts.max_batch = 8;
  auto server = QueryServer::Create(&db, &*index, opts);
  ASSERT_TRUE(server.ok()) << server.status();
  const auto queries = MakeQueries(24, kDim, 72);
  auto got = server->NearestNeighborsBatch(queries, 5);
  ASSERT_TRUE(got.ok()) << got.status();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 5);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual(*linear, (*got)[i]);
  }
  // The per-shard counters must be populated, deterministic, and sum
  // to the aggregate.
  const QueryServerStats stats = server->stats();
  ASSERT_EQ(stats.shard_stats.size(), index->num_shards());
  uint64_t scans = 0, dists = 0;
  for (const ShardServeStats& ss : stats.shard_stats) {
    EXPECT_GT(ss.scans, 0u);
    scans += ss.scans;
    dists += ss.distance_computations;
  }
  EXPECT_EQ(scans, stats.cache_misses * index->num_shards() -
                       stats.coalesced * index->num_shards());
  EXPECT_EQ(dists, stats.index_stats.distance_computations);
}

// The same sharded workload must produce identical per-shard counters
// at every thread count: stats are folded in fixed (query, shard)
// order at commit.
TEST(QueryServerTest, ParallelShardedStatsDeterministicAcrossThreads) {
  const size_t kDim = 7;
  MotionDatabase db = MakeDb(220, kDim, 73);
  const auto queries = MakeQueries(24, kDim, 74);
  auto run = [&](size_t threads) -> QueryServerStats {
    ShardedIndexOptions sopts;
    sopts.num_shards = 3;
    sopts.index.parallel.max_threads = threads;
    auto index = ShardedFeatureIndex::Build(&db, sopts);
    EXPECT_TRUE(index.ok());
    QueryServerOptions opts;
    opts.max_batch = 8;
    opts.parallel.max_threads = threads;
    auto server = QueryServer::Create(&db, &*index, opts);
    EXPECT_TRUE(server.ok());
    auto got = server->NearestNeighborsBatch(queries, 5);
    EXPECT_TRUE(got.ok());
    return server->stats();
  };
  const QueryServerStats base = run(1);
  for (size_t threads : {2, 8}) {
    const QueryServerStats other = run(threads);
    ASSERT_EQ(other.shard_stats.size(), base.shard_stats.size());
    for (size_t s = 0; s < base.shard_stats.size(); ++s) {
      EXPECT_EQ(other.shard_stats[s].scans, base.shard_stats[s].scans);
      EXPECT_EQ(other.shard_stats[s].distance_computations,
                base.shard_stats[s].distance_computations);
      EXPECT_EQ(other.shard_stats[s].coarse_computations,
                base.shard_stats[s].coarse_computations);
      EXPECT_EQ(other.shard_stats[s].coarse_pruned,
                base.shard_stats[s].coarse_pruned);
    }
  }
}

// Pipelined waves must answer every request with the same bits as the
// one-batch-at-a-time schedule. (Cache-hit counts may legitimately
// differ — batches of one wave cannot see each other's inserts — so
// only answers and batch structure are compared.)
TEST(QueryServerTest, PipelinedServingIdenticalAcrossDepths) {
  const size_t kDim = 6;
  MotionDatabase db = MakeDb(200, kDim, 75);
  auto queries = MakeQueries(36, kDim, 76);
  for (int i = 0; i < 8; ++i) queries.push_back(queries[i]);  // dupes
  auto run = [&](size_t depth) {
    ShardedIndexOptions sopts;
    sopts.num_shards = 3;
    auto index = ShardedFeatureIndex::Build(&db, sopts);
    EXPECT_TRUE(index.ok());
    QueryServerOptions opts;
    opts.max_batch = 4;
    opts.pipeline_depth = depth;
    auto server = QueryServer::Create(&db, &*index, opts);
    EXPECT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, 5);
      EXPECT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    EXPECT_TRUE(server->Drain().ok());
    std::vector<std::vector<QueryHit>> answers;
    for (uint64_t t : tickets) {
      auto hits = server->TakeHits(t);
      EXPECT_TRUE(hits.ok());
      answers.push_back(*hits);
    }
    return std::make_pair(std::move(answers), server->stats());
  };
  const auto base = run(1);
  for (size_t depth : {2, 4}) {
    const auto other = run(depth);
    ASSERT_EQ(other.first.size(), base.first.size());
    for (size_t i = 0; i < base.first.size(); ++i) {
      ExpectHitsEqual(base.first[i], other.first[i]);
    }
    EXPECT_EQ(other.second.served, base.second.served);
    EXPECT_EQ(other.second.batches, base.second.batches);
    EXPECT_EQ(other.second.expired, base.second.expired);
  }
  // And the depth-1 answers themselves are exact.
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 5);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual(*linear, base.first[i]);
  }
}

// A mutation to one shard must invalidate only the cache entries that
// provably depended on it. Two well-separated clusters land in two
// partitions (and with 2 shards, one partition per shard): a query
// into cluster A stays a cache hit across a mutation in cluster B,
// and misses after a mutation in cluster A.
TEST(QueryServerTest, ShardedCacheSurvivesOtherShardMutation) {
  const size_t kDim = 5;
  MotionDatabase db;
  {
    Rng rng(97);
    for (size_t i = 0; i < 80; ++i) {
      MotionRecord r;
      const size_t cluster = i % 2;
      r.name = "m" + std::to_string(i);
      r.label = cluster;
      r.label_name = "class" + std::to_string(cluster);
      r.feature.resize(kDim);
      const double cx = cluster == 0 ? 0.0 : 1000.0;
      for (size_t j = 0; j < kDim; ++j) {
        r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
      }
      ASSERT_TRUE(db.Insert(std::move(r)).ok());
    }
  }
  ShardedIndexOptions sopts;
  sopts.index.num_partitions = 2;
  sopts.num_shards = 2;
  auto index = ShardedFeatureIndex::Build(&db, sopts);
  ASSERT_TRUE(index.ok()) << index.status();
  auto shard_a = index->ShardOfRecord(0);  // cluster 0
  auto shard_b = index->ShardOfRecord(1);  // cluster 1
  ASSERT_TRUE(shard_a.ok());
  ASSERT_TRUE(shard_b.ok());
  ASSERT_NE(*shard_a, *shard_b)
      << "test construction requires one cluster per shard";
  auto server = QueryServer::Create(&db, &*index, QueryServerOptions{});
  ASSERT_TRUE(server.ok());
  // Query inside cluster 0; all its hits live in shard A.
  std::vector<double> q = db.record(0).feature;
  q[1] += 0.25;
  auto first = server->NearestNeighbors(q, 3);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(server->stats().cache_misses, 1u);
  // Mutate a cluster-1 record (stays near its centroid) and absorb it.
  std::vector<double> moved = db.record(1).feature;
  moved[2] += 0.5;
  ASSERT_TRUE(db.UpdateFeature(1, moved).ok());
  ASSERT_TRUE(index->ApplyUpdate(1).ok());
  // The entry revalidates: shard B moved, but no hit lives there and
  // every cluster-1 record is provably ~1000 away from q.
  auto second = server->NearestNeighbors(q, 3);
  ASSERT_TRUE(second.ok());
  ExpectHitsEqual(*first, *second);
  {
    const QueryServerStats stats = server->stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_EQ(stats.cache_revalidations, 1u);
    ASSERT_EQ(stats.shard_stats.size(), 2u);
    EXPECT_EQ(stats.shard_stats[*shard_a].cache_invalidations, 0u);
    EXPECT_EQ(stats.shard_stats[*shard_b].cache_invalidations, 0u);
  }
  // Now mutate the query's own nearest neighbour: the entry's shard-A
  // dependency breaks and the next lookup must re-evaluate.
  std::vector<double> pulled = db.record(0).feature;
  pulled[1] += 5.0;
  ASSERT_TRUE(db.UpdateFeature(0, pulled).ok());
  ASSERT_TRUE(index->ApplyUpdate(0).ok());
  auto third = server->NearestNeighbors(q, 3);
  ASSERT_TRUE(third.ok());
  auto linear = db.NearestNeighbors(q, 3);
  ASSERT_TRUE(linear.ok());
  ExpectHitsEqual(*linear, *third);
  {
    const QueryServerStats stats = server->stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 2u);
    EXPECT_EQ(stats.cache_revalidations, 1u);
    EXPECT_EQ(stats.shard_stats[*shard_a].cache_invalidations, 1u);
    EXPECT_EQ(stats.shard_stats[*shard_b].cache_invalidations, 0u);
  }
}

// Degraded (watermark) serving through the sharded index must be
// bit-identical to the single-index coarse path at every shard count.
TEST(QueryServerTest, ShardedWatermarkDegradedIdenticalAcrossShardCounts) {
  const size_t kDim = 9;
  MotionDatabase db = MakeDb(240, kDim, 77);
  const auto queries = MakeQueries(16, kDim, 78);
  auto run = [&](size_t shards) {
    ShardedIndexOptions sopts;
    sopts.index = QuantizedIndexOptions();
    sopts.num_shards = shards;
    auto index = ShardedFeatureIndex::Build(&db, sopts);
    EXPECT_TRUE(index.ok());
    EXPECT_TRUE(index->has_quantized_tier());
    QueryServerOptions opts;
    opts.max_batch = 4;
    opts.degrade_watermark = 8;
    auto server = QueryServer::Create(&db, &*index, opts);
    EXPECT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, 3);
      EXPECT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    EXPECT_TRUE(server->Drain().ok());
    std::vector<std::string> sigs;
    size_t degraded = 0;
    for (uint64_t t : tickets) {
      auto answer = server->TakeAnswer(t);
      EXPECT_TRUE(answer.ok());
      std::string sig = answer->degraded ? "degraded:" : "exact:";
      sig += std::to_string(answer->error_bound) + "|";
      for (const QueryHit& hit : answer->hits) {
        sig += std::to_string(hit.record_index) + "@" +
               std::to_string(hit.distance) + ";";
      }
      if (answer->degraded) ++degraded;
      sigs.push_back(std::move(sig));
    }
    EXPECT_GT(degraded, 0u) << "watermark should fire";
    return sigs;
  };
  const auto base = run(1);
  for (size_t shards : {3, 8}) {
    const auto other = run(shards);
    ASSERT_EQ(other.size(), base.size());
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(other[i], base[i]) << "request " << i;
    }
  }
}

// SwapIndex under a live worker with racing submitters: every answer
// must equal the linear scan no matter which index (plain, sharded,
// none) happened to serve it — a torn swap would corrupt bits or
// crash under tsan.
TEST(QueryServerTest, ParallelSwapIndexConcurrentSubmitsNeverTorn) {
  const size_t kDim = 6;
  MotionDatabase db = MakeDb(180, kDim, 79);
  auto plain = FeatureIndex::Build(&db);
  ASSERT_TRUE(plain.ok());
  ShardedIndexOptions sopts;
  sopts.num_shards = 3;
  auto sharded = ShardedFeatureIndex::Build(&db, sopts);
  ASSERT_TRUE(sharded.ok());
  const auto queries = MakeQueries(60, kDim, 80);
  std::vector<std::vector<QueryHit>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 4);
    ASSERT_TRUE(linear.ok());
    expected[i] = *linear;
  }
  QueryServerOptions opts;
  opts.max_batch = 4;
  opts.cache_capacity = 0;  // force every request through evaluation
  opts.pipeline_depth = 2;
  auto server = QueryServer::Create(&db, &*plain, opts);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  std::atomic<bool> done{false};
  std::thread swapper([&] {
    size_t round = 0;
    while (!done.load()) {
      switch (round++ % 3) {
        case 0:
          EXPECT_TRUE(server->SwapIndex(&*sharded).ok());
          break;
        case 1:
          EXPECT_TRUE(
              server->SwapIndex(static_cast<const FeatureIndex*>(nullptr))
                  .ok());
          break;
        default:
          EXPECT_TRUE(server->SwapIndex(&*plain).ok());
          break;
      }
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> served{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < queries.size(); i += 2) {
        BackoffOptions backoff;
        backoff.initial_us = 100;
        backoff.max_attempts = 200;
        backoff.seed = 300 + i;
        auto t = SubmitWithBackoff(&*server, queries[i], 4, false, backoff);
        ASSERT_TRUE(t.ok()) << t.status();
        auto hits = server->TakeHits(*t);
        ASSERT_TRUE(hits.ok()) << hits.status();
        ExpectHitsEqual(expected[i], *hits);
        ++served;
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true);
  swapper.join();
  server->Stop();
  EXPECT_EQ(served.load(), static_cast<int>(queries.size()));
}

// The full fault gauntlet served through the sharded scatter-gather
// path: outcome signatures must be identical across thread counts AND
// pipeline depths (the fault tape, deadline sweeps, and watermark all
// key off formation order, which waves preserve).
TEST(QueryServerTest, ServingFaultInjectedShardedStressDeterministic) {
  MotionDatabase db = MakeDb(240, 9, 81);
  ShardedIndexOptions sopts;
  sopts.index = QuantizedIndexOptions();
  sopts.num_shards = 3;
  auto index = ShardedFeatureIndex::Build(&db, sopts);
  ASSERT_TRUE(index.ok());
  auto queries = MakeQueries(48, 9, 82);
  for (int i = 0; i < 12; ++i) queries.push_back(queries[i % 6]);

  struct RunResult {
    std::vector<std::string> outcomes;
    QueryServerStats stats;
  };
  auto run = [&](size_t threads, size_t depth) -> RunResult {
    FakeClock clock;
    ServingFaultOptions fopts;
    fopts.seed = 7;
    fopts.slow_batch_probability = 0.5;
    fopts.slow_batch_stall_us = 2000;
    fopts.eval_failure_probability = 0.15;
    fopts.clock_skew_probability = 0.1;
    fopts.clock_skew_us = 500;
    ServingFaultInjector injector(fopts, &clock);
    QueryServerOptions opts;
    opts.clock = &clock;
    opts.max_batch = 4;
    opts.degrade_watermark = 24;
    opts.default_deadline_us = 9000;
    opts.faults = &injector;
    opts.parallel.max_threads = threads;
    opts.pipeline_depth = depth;
    auto server = QueryServer::Create(&db, &*index, opts);
    EXPECT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, 3);
      EXPECT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    size_t served = 0;
    do {
      (void)server->DrainOnce(&served);
    } while (served > 0);
    RunResult result;
    for (uint64_t t : tickets) {
      auto answer = server->TakeAnswer(t);
      std::string sig;
      if (!answer.ok()) {
        sig = std::string("err:") +
              StatusCodeToString(answer.status().code());
      } else {
        sig = answer->degraded ? "degraded:" : "exact:";
        for (const QueryHit& hit : answer->hits) {
          sig += std::to_string(hit.record_index) + "@" +
                 std::to_string(hit.distance) + ";";
        }
      }
      result.outcomes.push_back(std::move(sig));
    }
    result.stats = server->stats();
    return result;
  };

  const RunResult base = run(1, 1);
  const RunResult mt2 = run(2, 1);
  const RunResult mt8 = run(8, 1);
  const RunResult piped = run(8, 2);

  uint64_t n_expired = 0, n_failed = 0;
  for (const std::string& sig : base.outcomes) {
    if (sig == "err:DeadlineExceeded") ++n_expired;
    if (sig == "err:Unavailable") ++n_failed;
  }
  EXPECT_GT(n_expired, 0u) << "stalls should push requests past deadline";
  EXPECT_GT(n_failed, 0u) << "eval failures should surface";
  EXPECT_GT(base.stats.degraded, 0u) << "watermark should fire";
  ASSERT_EQ(base.stats.shard_stats.size(), 3u);

  for (const RunResult* other : {&mt2, &mt8, &piped}) {
    ASSERT_EQ(other->outcomes.size(), base.outcomes.size());
    for (size_t i = 0; i < base.outcomes.size(); ++i) {
      EXPECT_EQ(other->outcomes[i], base.outcomes[i]) << "request " << i;
    }
    EXPECT_EQ(other->stats.served, base.stats.served);
    EXPECT_EQ(other->stats.expired, base.stats.expired);
    EXPECT_EQ(other->stats.degraded, base.stats.degraded);
    EXPECT_EQ(other->stats.batches, base.stats.batches);
  }
  // Same-schedule runs agree on every per-shard counter too.
  for (const RunResult* other : {&mt2, &mt8}) {
    ASSERT_EQ(other->stats.shard_stats.size(),
              base.stats.shard_stats.size());
    for (size_t s = 0; s < base.stats.shard_stats.size(); ++s) {
      EXPECT_EQ(other->stats.shard_stats[s].scans,
                base.stats.shard_stats[s].scans);
      EXPECT_EQ(other->stats.shard_stats[s].distance_computations,
                base.stats.shard_stats[s].distance_computations);
      EXPECT_EQ(other->stats.shard_stats[s].coarse_computations,
                base.stats.shard_stats[s].coarse_computations);
    }
  }
}

}  // namespace
}  // namespace mocemg
