#include "db/query_server.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(10.0, 15.0);
  }
  return queries;
}

void ExpectHitsEqual(const std::vector<QueryHit>& a,
                     const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_index, b[i].record_index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(QueryServerTest, CreateValidations) {
  EXPECT_FALSE(QueryServer::Create(nullptr).ok());
  MotionDatabase empty;
  EXPECT_FALSE(QueryServer::Create(&empty).ok());
  MotionDatabase db = MakeDb(10, 3, 1);
  QueryServerOptions bad;
  bad.max_queue = 0;
  EXPECT_FALSE(QueryServer::Create(&db, nullptr, bad).ok());
  bad = QueryServerOptions{};
  bad.max_batch = 0;
  EXPECT_FALSE(QueryServer::Create(&db, nullptr, bad).ok());
  EXPECT_TRUE(QueryServer::Create(&db).ok());
}

TEST(QueryServerTest, SubmitValidations) {
  MotionDatabase db = MakeDb(10, 3, 2);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server->SubmitNearestNeighbors({1.0}, 1).ok());
  EXPECT_FALSE(
      server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 0).ok());
  const double nan = std::nan("");
  EXPECT_FALSE(
      server->SubmitNearestNeighbors({nan, 0.0, 0.0}, 1).ok());
  EXPECT_TRUE(server->SubmitNearestNeighbors({1.0, 2.0, 3.0}, 1).ok());
}

// The served results — through the exact blocked fallback — must be
// bit-identical to the database's linear scan, per element.
TEST(QueryServerTest, ExactFallbackBitIdenticalToLinearScan) {
  MotionDatabase db = MakeDb(200, 17, 3);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(40, 17, 4);
  auto batch = server->NearestNeighborsBatch(queries, 5);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 5);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
}

// Served through a fresh index the answers are the same bits again —
// the quantized coarse tier and the server batching change only the
// work done, never the hits.
TEST(QueryServerTest, IndexPathBitIdenticalToLinearScan) {
  MotionDatabase db = MakeDb(300, 17, 5);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto server = QueryServer::Create(&db, &*index);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(40, 17, 6);
  auto batch = server->NearestNeighborsBatch(queries, 5);
  ASSERT_TRUE(batch.ok()) << batch.status();
  const QueryServerStats stats = server->stats();
  EXPECT_GT(stats.index_stats.partitions_visited, 0u)
      << "expected the fresh index to serve the batch";
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 5);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
}

TEST(QueryServerTest, AdmissionBoundRejectsWithOutOfRange) {
  MotionDatabase db = MakeDb(20, 3, 7);
  QueryServerOptions opts;
  opts.max_queue = 4;
  auto server = QueryServer::Create(&db, nullptr, opts);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
  }
  auto rejected = server->SubmitNearestNeighbors(q, 1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(server->stats().rejected, 1u);
  ASSERT_TRUE(server->Drain().ok());
  // Space freed: admission works again.
  EXPECT_TRUE(server->SubmitNearestNeighbors(q, 1).ok());
}

// The batch conveniences must survive request sets far larger than the
// admission queue (backpressure, not failure).
TEST(QueryServerTest, BatchLargerThanQueueBackpressures) {
  MotionDatabase db = MakeDb(50, 5, 8);
  QueryServerOptions opts;
  opts.max_queue = 3;
  opts.max_batch = 2;
  auto server = QueryServer::Create(&db, nullptr, opts);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(20, 5, 9);
  auto batch = server->NearestNeighborsBatch(queries, 2);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 2);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
  // Rejections happened internally (the queue is 3 deep) but were
  // absorbed by backpressure, never surfaced to the caller.
  EXPECT_EQ(server->stats().served, queries.size());
}

TEST(QueryServerTest, RepeatedQueriesHitTheCache) {
  MotionDatabase db = MakeDb(100, 5, 10);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(4, 5, 11);
  ASSERT_TRUE(server->NearestNeighborsBatch(queries, 3).ok());
  EXPECT_EQ(server->stats().cache_hits, 0u);
  EXPECT_EQ(server->stats().cache_misses, 4u);
  auto again = server->NearestNeighborsBatch(queries, 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(server->stats().cache_hits, 4u);
  EXPECT_EQ(server->stats().cache_misses, 4u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 3);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*again)[i], *linear);
  }
  // Different k is a different key.
  ASSERT_TRUE(server->NearestNeighborsBatch(queries, 4).ok());
  EXPECT_EQ(server->stats().cache_hits, 4u);
  EXPECT_EQ(server->stats().cache_misses, 8u);
}

// Database mutation moves the epoch: cached entries keyed under the
// old epoch can never match again, and re-serving reflects the new
// feature values.
TEST(QueryServerTest, CacheInvalidatedByEpochOnMutation) {
  MotionDatabase db = MakeDb(50, 3, 12);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {0.0, 0.0, 0.0};
  auto before = server->NearestNeighbors(q, 1);
  ASSERT_TRUE(before.ok());
  // Move some record onto the query point; the cached answer is stale.
  ASSERT_TRUE(db.UpdateFeature(7, {0.0, 0.0, 0.0}).ok());
  auto after = server->NearestNeighbors(q, 1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(server->stats().cache_hits, 0u)
      << "epoch moved, the old entry must not match";
  EXPECT_EQ((*after)[0].record_index, 7u);
  EXPECT_EQ((*after)[0].distance, 0.0);
}

// A stale index must not be consulted: the server falls back to the
// exact scan (correct answers, zero index stats deltas).
TEST(QueryServerTest, StaleIndexFallsBackToExactScan) {
  MotionDatabase db = MakeDb(100, 5, 13);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto server = QueryServer::Create(&db, &*index);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(db.UpdateFeature(0, db.record(1).feature).ok());
  const auto queries = MakeQueries(8, 5, 14);
  auto batch = server->NearestNeighborsBatch(queries, 3);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(server->stats().index_stats.partitions_visited, 0u)
      << "stale index must not serve";
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 3);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual((*batch)[i], *linear);
  }
}

TEST(QueryServerTest, DuplicateQueriesInOneBatchCoalesce) {
  MotionDatabase db = MakeDb(60, 3, 15);
  QueryServerOptions opts;
  opts.cache_capacity = 0;  // isolate coalescing from caching
  auto server = QueryServer::Create(&db, nullptr, opts);
  ASSERT_TRUE(server.ok());
  const std::vector<double> q = {1.0, 2.0, 3.0};
  std::vector<uint64_t> tickets;
  for (int i = 0; i < 6; ++i) {
    auto t = server->SubmitNearestNeighbors(q, 2);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  ASSERT_TRUE(server->Drain().ok());
  const QueryServerStats stats = server->stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced, 5u);
  auto linear = db.NearestNeighbors(q, 2);
  ASSERT_TRUE(linear.ok());
  for (uint64_t t : tickets) {
    auto hits = server->TakeHits(t);
    ASSERT_TRUE(hits.ok());
    ExpectHitsEqual(*hits, *linear);
  }
  // A ticket can be taken exactly once.
  EXPECT_FALSE(server->TakeHits(tickets[0]).ok());
}

TEST(QueryServerTest, CacheEvictionRespectsCapacity) {
  MotionDatabase db = MakeDb(40, 4, 16);
  QueryServerOptions opts;
  opts.cache_capacity = 3;
  auto server = QueryServer::Create(&db, nullptr, opts);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(10, 4, 17);
  ASSERT_TRUE(server->NearestNeighborsBatch(queries, 1).ok());
  const QueryServerStats stats = server->stats();
  EXPECT_EQ(stats.cache_misses, 10u);
  EXPECT_EQ(stats.evictions, 7u);
  // The most recent 3 still hit; the oldest was evicted.
  ASSERT_TRUE(server->NearestNeighbors(queries[9], 1).ok());
  EXPECT_EQ(server->stats().cache_hits, 1u);
  ASSERT_TRUE(server->NearestNeighbors(queries[0], 1).ok());
  EXPECT_EQ(server->stats().cache_hits, 1u);
}

TEST(QueryServerTest, ClassifyMatchesDatabaseVote) {
  MotionDatabase db = MakeDb(120, 5, 18);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto server = QueryServer::Create(&db, &*index);
  ASSERT_TRUE(server.ok());
  const auto queries = MakeQueries(25, 5, 19);
  auto labels = server->ClassifyBatch(queries, 5);
  ASSERT_TRUE(labels.ok()) << labels.status();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto want = db.ClassifyByVote(queries[i], 5);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ((*labels)[i], *want) << "query " << i;
  }
}

// Satellite 4: the same request sequence must produce bit-identical
// results AND identical cache-hit counts at every thread budget. The
// "Parallel" in the name keeps this test in the tsan multi-thread
// rerun (tools/run_sanitized_tests.sh).
TEST(QueryServerTest, ParallelServingBitIdenticalAcrossThreadCounts) {
  MotionDatabase db = MakeDb(250, 17, 20);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  // A request mix with repeats (cache hits), in-batch duplicates
  // (coalescing), and two distinct k values (k-grouping).
  auto queries = MakeQueries(30, 17, 21);
  for (int i = 0; i < 10; ++i) queries.push_back(queries[i % 5]);
  std::vector<std::vector<std::vector<QueryHit>>> all_results;
  std::vector<QueryServerStats> all_stats;
  for (size_t threads : {1, 2, 8}) {
    QueryServerOptions opts;
    opts.max_batch = 16;
    opts.parallel.max_threads = threads;
    auto server = QueryServer::Create(&db, &*index, opts);
    ASSERT_TRUE(server.ok());
    std::vector<uint64_t> tickets;
    for (const auto& q : queries) {
      auto t = server->SubmitNearestNeighbors(q, (tickets.size() % 2)
                                                     ? size_t{3}
                                                     : size_t{7});
      ASSERT_TRUE(t.ok());
      tickets.push_back(*t);
    }
    ASSERT_TRUE(server->Drain().ok());
    std::vector<std::vector<QueryHit>> results;
    for (uint64_t t : tickets) {
      auto hits = server->TakeHits(t);
      ASSERT_TRUE(hits.ok());
      results.push_back(*std::move(hits));
    }
    all_results.push_back(std::move(results));
    all_stats.push_back(server->stats());
  }
  for (size_t v = 1; v < all_results.size(); ++v) {
    ASSERT_EQ(all_results[v].size(), all_results[0].size());
    for (size_t i = 0; i < all_results[0].size(); ++i) {
      ExpectHitsEqual(all_results[v][i], all_results[0][i]);
    }
    EXPECT_EQ(all_stats[v].cache_hits, all_stats[0].cache_hits);
    EXPECT_EQ(all_stats[v].cache_misses, all_stats[0].cache_misses);
    EXPECT_EQ(all_stats[v].coalesced, all_stats[0].coalesced);
    EXPECT_EQ(all_stats[v].batches, all_stats[0].batches);
  }
  EXPECT_GT(all_stats[0].cache_hits, 0u) << "mix should exercise the cache";
}

// Background worker + concurrent submitters: every synchronous request
// still gets the linear scan's exact bits. (tsan covers the locking in
// the multi-thread rerun; the name keeps it in that pass.)
TEST(QueryServerTest, ParallelWorkerServesConcurrentClients) {
  MotionDatabase db = MakeDb(150, 9, 22);
  auto server = QueryServer::Create(&db);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server->Start().ok());
  const auto queries = MakeQueries(24, 9, 23);
  std::vector<std::vector<QueryHit>> got(queries.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < queries.size(); i += 3) {
        auto hits = server->NearestNeighbors(queries[i], 4);
        ASSERT_TRUE(hits.ok());
        got[i] = *std::move(hits);
      }
    });
  }
  for (auto& t : clients) t.join();
  server->Stop();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto linear = db.NearestNeighbors(queries[i], 4);
    ASSERT_TRUE(linear.ok());
    ExpectHitsEqual(got[i], *linear);
  }
  EXPECT_EQ(server->stats().served, queries.size());
}

}  // namespace
}  // namespace mocemg
