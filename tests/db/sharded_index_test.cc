#include "db/sharded_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "db/feature_index.h"
#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(10.0, 15.0);
  }
  return queries;
}

void ExpectHitsIdentical(const std::vector<QueryHit>& a,
                         const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_index, b[i].record_index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(ShardedIndexTest, BuildValidations) {
  EXPECT_FALSE(ShardedFeatureIndex::Build(nullptr).ok());
  MotionDatabase empty;
  EXPECT_FALSE(ShardedFeatureIndex::Build(&empty).ok());
}

TEST(ShardedIndexTest, AutoShardCountAndExcessShards) {
  MotionDatabase db = MakeDb(120, 6, 11);
  auto index = ShardedFeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_GE(index->num_shards(), 1u);
  EXPECT_LE(index->num_shards(), 4u);
  // More shards than partitions: the excess shards are empty but the
  // index still answers correctly.
  ShardedIndexOptions opts;
  opts.index.num_partitions = 3;
  opts.num_shards = 9;
  auto wide = ShardedFeatureIndex::Build(&db, opts);
  ASSERT_TRUE(wide.ok()) << wide.status();
  EXPECT_EQ(wide->num_shards(), 9u);
  auto query = MakeQueries(1, 6, 12)[0];
  auto linear = db.NearestNeighbors(query, 5);
  auto sharded = wide->NearestNeighbors(query, 5);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(sharded.ok());
  ExpectHitsIdentical(*linear, *sharded);
}

// The tentpole bit-identity claim: for every shard count, exact kNN
// answers (records AND distance bits) equal the linear scan and the
// single FeatureIndex over the same layout, for several k.
TEST(ShardedIndexTest, ExactBitIdenticalAcrossShardCounts) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(300, kDim, 21);
  FeatureIndexOptions fopts;
  auto single = FeatureIndex::Build(&db, fopts);
  ASSERT_TRUE(single.ok()) << single.status();
  const auto queries = MakeQueries(25, kDim, 22);
  for (size_t shards : {1, 2, 3, 8}) {
    ShardedIndexOptions sopts;
    sopts.index = fopts;
    sopts.num_shards = shards;
    auto index = ShardedFeatureIndex::Build(&db, sopts);
    ASSERT_TRUE(index.ok()) << index.status();
    EXPECT_EQ(index->num_shards(), shards);
    for (size_t k : {1, 3, 10}) {
      for (const auto& q : queries) {
        auto linear = db.NearestNeighbors(q, k);
        auto viaSingle = single->NearestNeighbors(q, k);
        auto viaShards = index->NearestNeighbors(q, k);
        ASSERT_TRUE(linear.ok());
        ASSERT_TRUE(viaSingle.ok());
        ASSERT_TRUE(viaShards.ok()) << viaShards.status();
        ExpectHitsIdentical(*linear, *viaShards);
        ExpectHitsIdentical(*viaSingle, *viaShards);
      }
    }
  }
}

// Batch answers must be bit-identical at every thread count: the
// (query × shard) task grid is merged per query in fixed shard order.
TEST(ShardedIndexTest, ParallelBatchDeterministicAcrossThreads) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(300, kDim, 31);
  const auto queries = MakeQueries(40, kDim, 32);
  for (size_t shards : {2, 3}) {
    std::vector<std::vector<std::vector<QueryHit>>> runs;
    std::vector<IndexQueryStats> run_stats;
    for (size_t threads : {1, 2, 8}) {
      ShardedIndexOptions opts;
      opts.num_shards = shards;
      opts.index.parallel.max_threads = threads;
      auto index = ShardedFeatureIndex::Build(&db, opts);
      ASSERT_TRUE(index.ok()) << index.status();
      IndexQueryStats stats;
      auto hits = index->BatchNearestNeighbors(queries, 5, &stats);
      ASSERT_TRUE(hits.ok()) << hits.status();
      runs.push_back(*hits);
      run_stats.push_back(stats);
    }
    for (size_t r = 1; r < runs.size(); ++r) {
      ASSERT_EQ(runs[0].size(), runs[r].size());
      for (size_t q = 0; q < runs[0].size(); ++q) {
        ExpectHitsIdentical(runs[0][q], runs[r][q]);
      }
      EXPECT_EQ(run_stats[0].distance_computations,
                run_stats[r].distance_computations);
      EXPECT_EQ(run_stats[0].partitions_visited,
                run_stats[r].partitions_visited);
      EXPECT_EQ(run_stats[0].partitions_pruned,
                run_stats[r].partitions_pruned);
    }
    // Batch element i equals the single-query path exactly.
    for (size_t q = 0; q < queries.size(); ++q) {
      ShardedIndexOptions opts;
      opts.num_shards = shards;
      auto index = ShardedFeatureIndex::Build(&db, opts);
      ASSERT_TRUE(index.ok());
      auto one = index->NearestNeighbors(queries[q], 5);
      ASSERT_TRUE(one.ok());
      ExpectHitsIdentical(runs[0][q], *one);
      if (q >= 3) break;  // spot-check a few
    }
  }
}

// Degraded answers must regroup identically too: the coarse estimates
// and the certified bound are pure functions of the owning partition.
TEST(ShardedIndexTest, CoarseBitIdenticalAcrossShardCounts) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(300, kDim, 41);
  FeatureIndexOptions fopts;
  fopts.quantized_min_rows = 1;  // quantize every partition
  auto single = FeatureIndex::Build(&db, fopts);
  ASSERT_TRUE(single.ok()) << single.status();
  ASSERT_TRUE(single->has_quantized_tier());
  const auto queries = MakeQueries(20, kDim, 42);
  for (size_t shards : {1, 2, 3, 8}) {
    ShardedIndexOptions sopts;
    sopts.index = fopts;
    sopts.num_shards = shards;
    auto index = ShardedFeatureIndex::Build(&db, sopts);
    ASSERT_TRUE(index.ok()) << index.status();
    ASSERT_TRUE(index->has_quantized_tier());
    for (const auto& q : queries) {
      double bound_single = 0.0, bound_sharded = 0.0;
      auto ref = single->CoarseNearestNeighbors(q, 5, &bound_single);
      auto got = index->CoarseNearestNeighbors(q, 5, &bound_sharded);
      ASSERT_TRUE(ref.ok()) << ref.status();
      ASSERT_TRUE(got.ok()) << got.status();
      ExpectHitsIdentical(*ref, *got);
      EXPECT_EQ(bound_single, bound_sharded);
    }
  }
}

// The 4-bit coarse tier shards exactly like the 8-bit one: exact kNN
// stays bit-identical to the linear scan and the single index at every
// shard count, and the degraded coarse answers + certified bound
// regroup identically.
TEST(ShardedIndexTest, FourBitShardedMatchesSingleIndex) {
  const size_t kDim = 9;
  MotionDatabase db = MakeDb(300, kDim, 91);
  FeatureIndexOptions fopts;
  fopts.quant_bits = 4;
  fopts.quantized_min_rows = 1;
  auto single = FeatureIndex::Build(&db, fopts);
  ASSERT_TRUE(single.ok()) << single.status();
  ASSERT_TRUE(single->has_quantized_tier());
  const auto queries = MakeQueries(15, kDim, 92);
  for (size_t shards : {1, 2, 3, 8}) {
    ShardedIndexOptions sopts;
    sopts.index = fopts;
    sopts.num_shards = shards;
    auto index = ShardedFeatureIndex::Build(&db, sopts);
    ASSERT_TRUE(index.ok()) << index.status();
    for (const auto& q : queries) {
      auto linear = db.NearestNeighbors(q, 5);
      auto viaSingle = single->NearestNeighbors(q, 5);
      auto viaShards = index->NearestNeighbors(q, 5);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(viaSingle.ok());
      ASSERT_TRUE(viaShards.ok()) << viaShards.status();
      ExpectHitsIdentical(*linear, *viaShards);
      ExpectHitsIdentical(*viaSingle, *viaShards);
      double bound_single = 0.0, bound_sharded = 0.0;
      auto ref = single->CoarseNearestNeighbors(q, 5, &bound_single);
      auto got = index->CoarseNearestNeighbors(q, 5, &bound_sharded);
      ASSERT_TRUE(ref.ok()) << ref.status();
      ASSERT_TRUE(got.ok()) << got.status();
      ExpectHitsIdentical(*ref, *got);
      EXPECT_EQ(bound_single, bound_sharded);
    }
  }
}

TEST(ShardedIndexTest, QueryValidations) {
  MotionDatabase db = MakeDb(100, 4, 51);
  auto index = ShardedFeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->NearestNeighbors({1.0}, 3).ok());  // wrong dim
  EXPECT_FALSE(index->NearestNeighbors({1, 2, 3, 4}, 0).ok());
  // Oversized k clamps to the database size (FeatureIndex semantics).
  auto all = index->NearestNeighbors({1, 2, 3, 4}, 101);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 100u);
  ShardedFeatureIndex unbuilt;
  EXPECT_FALSE(unbuilt.NearestNeighbors({1, 2, 3, 4}, 3).ok());
}

TEST(ShardedIndexTest, ApplyUpdateBumpsOnlyOwningShard) {
  const size_t kDim = 6;
  MotionDatabase db = MakeDb(200, kDim, 61);
  ShardedIndexOptions opts;
  opts.num_shards = 4;
  auto index = ShardedFeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  const std::vector<uint64_t> before = index->shard_epochs();
  const size_t rec = 17;
  auto owner = index->ShardOfRecord(rec);
  ASSERT_TRUE(owner.ok());
  std::vector<double> moved(kDim, 123.0);
  ASSERT_TRUE(db.UpdateFeature(rec, moved).ok());
  ASSERT_TRUE(index->ApplyUpdate(rec).ok());
  EXPECT_EQ(index->applied_epoch(), db.epoch());
  const std::vector<uint64_t>& after = index->shard_epochs();
  for (size_t s = 0; s < after.size(); ++s) {
    if (s == *owner) {
      EXPECT_GT(after[s], before[s]);
    } else {
      EXPECT_EQ(after[s], before[s]);
    }
  }
  // Post-update answers equal a fresh linear scan over the mutated db.
  const auto queries = MakeQueries(10, kDim, 62);
  for (const auto& q : queries) {
    auto linear = db.NearestNeighbors(q, 5);
    auto sharded = index->NearestNeighbors(q, 5);
    ASSERT_TRUE(linear.ok());
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ExpectHitsIdentical(*linear, *sharded);
  }
}

TEST(ShardedIndexTest, ApplyUpdateContract) {
  const size_t kDim = 4;
  MotionDatabase db = MakeDb(100, kDim, 71);
  auto index = ShardedFeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  // Nothing to apply yet: the database epoch equals the applied epoch.
  EXPECT_FALSE(index->ApplyUpdate(3).ok());
  std::vector<double> f(kDim, 9.0);
  ASSERT_TRUE(db.UpdateFeature(3, f).ok());
  // Stale index refuses queries until the update is applied.
  EXPECT_FALSE(index->NearestNeighbors(f, 3).ok());
  // Applying the wrong record is allowed by the epoch contract only
  // for the actual mutation sequence; out-of-range is rejected.
  EXPECT_FALSE(index->ApplyUpdate(1000).ok());
  ASSERT_TRUE(index->ApplyUpdate(3).ok());
  EXPECT_TRUE(index->NearestNeighbors(f, 3).ok());
  // Two mutations without an ApplyUpdate in between: the strict 1:1
  // in-order contract fails and a Rebuild is required.
  ASSERT_TRUE(db.UpdateFeature(4, f).ok());
  ASSERT_TRUE(db.UpdateFeature(5, f).ok());
  EXPECT_FALSE(index->ApplyUpdate(4).ok());
  ASSERT_TRUE(index->Rebuild().ok());
  EXPECT_TRUE(index->NearestNeighbors(f, 3).ok());
  // Insert changes the record set: ApplyUpdate must refuse.
  MotionRecord r;
  r.name = "new";
  r.label = 0;
  r.label_name = "class0";
  r.feature = f;
  ASSERT_TRUE(db.Insert(std::move(r)).ok());
  EXPECT_FALSE(index->ApplyUpdate(0).ok());
  ASSERT_TRUE(index->Rebuild().ok());
  auto linear = db.NearestNeighbors(f, 3);
  auto sharded = index->NearestNeighbors(f, 3);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(sharded.ok());
  ExpectHitsIdentical(*linear, *sharded);
}

TEST(ShardedIndexTest, ShardAllBeyondCertificate) {
  const size_t kDim = 4;
  MotionDatabase db = MakeDb(200, kDim, 81);
  ShardedIndexOptions opts;
  opts.num_shards = 3;
  auto index = ShardedFeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  const auto queries = MakeQueries(15, kDim, 82);
  for (const auto& q : queries) {
    auto hits = index->NearestNeighbors(q, 5);
    ASSERT_TRUE(hits.ok());
    const double kth = hits->back().distance;
    auto all = db.NearestNeighbors(q, db.size());
    ASSERT_TRUE(all.ok());
    std::vector<double> dist(db.size(), 0.0);
    for (const QueryHit& h : *all) dist[h.record_index] = h.distance;
    for (size_t s = 0; s < index->num_shards(); ++s) {
      if (!index->ShardAllBeyond(s, q, kth)) continue;
      // The certificate must be SOUND: no record in shard s may lie
      // within the kth radius.
      for (size_t rec = 0; rec < db.size(); ++rec) {
        auto owner = index->ShardOfRecord(rec);
        ASSERT_TRUE(owner.ok());
        if (*owner != s) continue;
        EXPECT_GT(dist[rec], kth) << "certificate lied for record " << rec;
      }
    }
    // Degenerate radii never certify.
    EXPECT_FALSE(index->ShardAllBeyond(0, q,
                                       std::numeric_limits<double>::infinity()));
    EXPECT_FALSE(index->ShardAllBeyond(index->num_shards(), q, kth));
  }
}

}  // namespace
}  // namespace mocemg
