#include "db/motion_database.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "util/csv.h"

namespace mocemg {
namespace {

MotionRecord Rec(const std::string& name, size_t label,
                 std::vector<double> f) {
  MotionRecord r;
  r.name = name;
  r.label = label;
  r.label_name = "class" + std::to_string(label);
  r.feature = std::move(f);
  return r;
}

MotionDatabase MakeDb() {
  MotionDatabase db;
  EXPECT_TRUE(db.Insert(Rec("a0", 0, {0.0, 0.0})).ok());
  EXPECT_TRUE(db.Insert(Rec("a1", 0, {0.1, 0.1})).ok());
  EXPECT_TRUE(db.Insert(Rec("b0", 1, {5.0, 5.0})).ok());
  EXPECT_TRUE(db.Insert(Rec("b1", 1, {5.1, 4.9})).ok());
  EXPECT_TRUE(db.Insert(Rec("c0", 2, {-5.0, 5.0})).ok());
  return db;
}

TEST(MotionDatabaseTest, InsertValidations) {
  MotionDatabase db;
  EXPECT_FALSE(db.Insert(Rec("x", 0, {})).ok());
  EXPECT_TRUE(db.Insert(Rec("x", 0, {1.0, 2.0})).ok());
  EXPECT_FALSE(db.Insert(Rec("y", 0, {1.0})).ok());  // dim mismatch
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.feature_dimension(), 2u);
}

TEST(MotionDatabaseTest, NearestNeighborsExactOrder) {
  MotionDatabase db = MakeDb();
  auto hits = db.NearestNeighbors({0.06, 0.06}, 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 3u);
  EXPECT_EQ(db.record((*hits)[0].record_index).name, "a1");
  EXPECT_EQ(db.record((*hits)[1].record_index).name, "a0");
  EXPECT_LE((*hits)[0].distance, (*hits)[1].distance);
  EXPECT_LE((*hits)[1].distance, (*hits)[2].distance);
}

TEST(MotionDatabaseTest, KnnClampsToSize) {
  MotionDatabase db = MakeDb();
  auto hits = db.NearestNeighbors({0.0, 0.0}, 100);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
}

TEST(MotionDatabaseTest, QueryValidations) {
  MotionDatabase db = MakeDb();
  EXPECT_FALSE(db.NearestNeighbors({1.0}, 3).ok());
  EXPECT_FALSE(db.NearestNeighbors({1.0, 2.0}, 0).ok());
  MotionDatabase empty;
  EXPECT_FALSE(empty.NearestNeighbors({1.0}, 1).ok());
}

TEST(MotionDatabaseTest, ClassifyByVoteMajority) {
  MotionDatabase db = MakeDb();
  // Near the class-0 pair: 2 of 3 votes are class 0.
  auto label = db.ClassifyByVote({0.0, 0.5}, 3);
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, 0u);
}

TEST(MotionDatabaseTest, ClassifyByVoteK1IsNearestLabel) {
  MotionDatabase db = MakeDb();
  EXPECT_EQ(*db.ClassifyByVote({5.0, 5.0}, 1), 1u);
  EXPECT_EQ(*db.ClassifyByVote({-4.0, 4.5}, 1), 2u);
}

TEST(MotionDatabaseTest, UpdateFeatureValidations) {
  MotionDatabase db = MakeDb();
  EXPECT_FALSE(db.UpdateFeature(99, {1.0, 1.0}).ok());
  EXPECT_FALSE(db.UpdateFeature(0, {1.0}).ok());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(db.UpdateFeature(0, {nan, 0.0}).ok());
  EXPECT_TRUE(db.UpdateFeature(0, {9.0, 9.0}).ok());
}

// The packed SoA mirror must track UpdateFeature exactly — the scan
// reads only the mirror, so a stale mirror would silently return the
// old neighbour.
TEST(MotionDatabaseTest, UpdateFeatureKeepsPackedMirrorInSync) {
  MotionDatabase db = MakeDb();
  ASSERT_TRUE(db.UpdateFeature(4, {50.0, 50.0}).ok());
  EXPECT_EQ(db.record(4).feature[0], 50.0);
  EXPECT_EQ(db.packed_row(4)[0], 50.0);
  EXPECT_EQ(db.packed_row(4)[1], 50.0);
  auto hits = db.NearestNeighbors({50.0, 50.0}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ((*hits)[0].record_index, 4u);
  EXPECT_EQ((*hits)[0].distance, 0.0);
}

TEST(MotionDatabaseTest, EpochAdvancesOnEveryMutation) {
  MotionDatabase db;
  EXPECT_EQ(db.epoch(), 0u);
  ASSERT_TRUE(db.Insert(Rec("a", 0, {1.0, 2.0})).ok());
  EXPECT_EQ(db.epoch(), 1u);
  ASSERT_TRUE(db.Insert(Rec("b", 0, {3.0, 4.0})).ok());
  EXPECT_EQ(db.epoch(), 2u);
  // Failed mutations leave the epoch alone.
  EXPECT_FALSE(db.Insert(Rec("bad", 0, {1.0})).ok());
  EXPECT_FALSE(db.UpdateFeature(9, {1.0, 1.0}).ok());
  EXPECT_EQ(db.epoch(), 2u);
  ASSERT_TRUE(db.UpdateFeature(0, {5.0, 6.0}).ok());
  EXPECT_EQ(db.epoch(), 3u);
}

TEST(MotionDatabaseTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/motion_db_test.csv";
  MotionDatabase db = MakeDb();
  ASSERT_TRUE(db.SaveCsv(path).ok());
  auto loaded = MotionDatabase::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded->record(i).name, db.record(i).name);
    EXPECT_EQ(loaded->record(i).label, db.record(i).label);
    ASSERT_EQ(loaded->record(i).feature.size(),
              db.record(i).feature.size());
    for (size_t j = 0; j < db.feature_dimension(); ++j) {
      EXPECT_NEAR(loaded->record(i).feature[j], db.record(i).feature[j],
                  1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(MotionDatabaseTest, LoadRejectsMalformed) {
  const std::string path = ::testing::TempDir() + "/motion_db_bad.csv";
  ASSERT_TRUE(WriteStringToFile(path, "name,label\nx,0\n").ok());
  EXPECT_FALSE(MotionDatabase::LoadCsv(path).ok());
  std::remove(path.c_str());
}

TEST(MotionDatabaseTest, RejectsNonFiniteFeaturesAndQueries) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  MotionDatabase db;
  EXPECT_FALSE(db.Insert(Rec("bad", 0, {1.0, nan})).ok());
  EXPECT_FALSE(db.Insert(Rec("bad", 0, {inf, 0.0})).ok());
  ASSERT_TRUE(db.Insert(Rec("ok", 0, {1.0, 2.0})).ok());
  EXPECT_EQ(db.size(), 1u);
  EXPECT_FALSE(db.NearestNeighbors({nan, 0.0}, 1).ok());
  EXPECT_FALSE(db.ClassifyByVote({0.0, inf}, 1).ok());
  EXPECT_TRUE(db.NearestNeighbors({0.0, 0.0}, 1).ok());
}

}  // namespace
}  // namespace mocemg
