#include "db/feature_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/distance_kernels.h"
#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    // Clustered structure so partition pruning has something to prune.
    const double cx = static_cast<double>(i % 4) * 20.0;
    r.feature = {cx + rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0),
                 rng.Gaussian(0, 1.0)};
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

TEST(FeatureIndexTest, BuildValidations) {
  EXPECT_FALSE(FeatureIndex::Build(nullptr).ok());
  MotionDatabase empty;
  EXPECT_FALSE(FeatureIndex::Build(&empty).ok());
}

TEST(FeatureIndexTest, ResultsMatchLinearScanExactly) {
  MotionDatabase db = MakeDb(200, 7);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok()) << index.status();
  Rng rng(8);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query = {rng.Uniform(-5.0, 65.0),
                                 rng.Gaussian(0, 2.0),
                                 rng.Gaussian(0, 2.0)};
    auto linear = db.NearestNeighbors(query, 5);
    auto indexed = index->NearestNeighbors(query, 5);
    ASSERT_TRUE(linear.ok());
    ASSERT_TRUE(indexed.ok());
    ASSERT_EQ(linear->size(), indexed->size());
    for (size_t i = 0; i < linear->size(); ++i) {
      EXPECT_EQ((*linear)[i].record_index, (*indexed)[i].record_index);
      EXPECT_NEAR((*linear)[i].distance, (*indexed)[i].distance, 1e-12);
    }
  }
}

// Higher-dimensional clustered database exercising the SoA dot-form
// scan with non-trivial unroll remainders.
MotionDatabase MakeDbDim(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

// The dot-form scan is approximate, but candidates within the error
// bound are re-checked with the exact pair kernel — so the index must be
// *bit-identical* to the linear scan, not merely close, at every
// dimension (each 4-way unroll remainder included).
TEST(FeatureIndexTest, ResultsBitIdenticalToLinearScanAcrossDims) {
  for (size_t dim : {5, 16, 30, 33, 67}) {
    MotionDatabase db = MakeDbDim(150, dim, 40 + dim);
    auto index = FeatureIndex::Build(&db);
    ASSERT_TRUE(index.ok()) << index.status();
    Rng rng(50 + dim);
    for (int q = 0; q < 20; ++q) {
      std::vector<double> query(dim);
      for (size_t j = 0; j < dim; ++j) {
        query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0)
                           : rng.Gaussian(0, 2.0));
      }
      auto linear = db.NearestNeighbors(query, 5);
      auto indexed = index->NearestNeighbors(query, 5);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(indexed.ok());
      ASSERT_EQ(linear->size(), indexed->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        EXPECT_EQ((*linear)[i].record_index, (*indexed)[i].record_index)
            << "dim " << dim << " query " << q << " rank " << i;
        EXPECT_EQ((*linear)[i].distance, (*indexed)[i].distance)
            << "dim " << dim << " query " << q << " rank " << i;
      }
    }
  }
}

// Batch answers — and the accumulated IndexQueryStats — must not depend
// on the thread count: per-chunk stats are combined in ascending chunk
// order (DESIGN.md §8.1). The name keeps this test in the tsan
// multi-thread rerun.
TEST(FeatureIndexTest, ParallelBatchBitIdenticalAcrossThreadCounts) {
  MotionDatabase db = MakeDbDim(300, 17, 60);
  std::vector<std::vector<double>> queries;
  Rng rng(61);
  for (int q = 0; q < 64; ++q) {
    std::vector<double> query(17);
    for (double& v : query) v = rng.Gaussian(10.0, 15.0);
    queries.push_back(std::move(query));
  }
  std::vector<std::vector<std::vector<QueryHit>>> all_results;
  std::vector<IndexQueryStats> all_stats;
  for (size_t threads : {1, 2, 8}) {
    FeatureIndexOptions opts;
    opts.parallel.max_threads = threads;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_TRUE(index.ok()) << index.status();
    IndexQueryStats stats;
    auto results = index->BatchNearestNeighbors(queries, 4, &stats);
    ASSERT_TRUE(results.ok()) << results.status();
    all_results.push_back(*std::move(results));
    all_stats.push_back(stats);
  }
  for (size_t v = 1; v < all_results.size(); ++v) {
    ASSERT_EQ(all_results[v].size(), all_results[0].size());
    for (size_t q = 0; q < all_results[0].size(); ++q) {
      ASSERT_EQ(all_results[v][q].size(), all_results[0][q].size());
      for (size_t i = 0; i < all_results[0][q].size(); ++i) {
        EXPECT_EQ(all_results[v][q][i].record_index,
                  all_results[0][q][i].record_index);
        EXPECT_EQ(all_results[v][q][i].distance,
                  all_results[0][q][i].distance);
      }
    }
    EXPECT_EQ(all_stats[v].distance_computations,
              all_stats[0].distance_computations);
    EXPECT_EQ(all_stats[v].partitions_visited,
              all_stats[0].partitions_visited);
    EXPECT_EQ(all_stats[v].partitions_pruned,
              all_stats[0].partitions_pruned);
  }
}

TEST(FeatureIndexTest, PruningActuallyHappens) {
  MotionDatabase db = MakeDb(400, 9);
  FeatureIndexOptions opts;
  opts.num_partitions = 8;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  IndexQueryStats stats;
  // A query deep inside one cluster prunes distant partitions.
  auto hits = index->NearestNeighbors({0.0, 0.0, 0.0}, 3, &stats);
  ASSERT_TRUE(hits.ok());
  EXPECT_GT(stats.partitions_pruned, 0u);
  EXPECT_LT(stats.distance_computations, db.size() + 8);
}

TEST(FeatureIndexTest, KLargerThanDatabase) {
  MotionDatabase db = MakeDb(10, 10);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto hits = index->NearestNeighbors({0.0, 0.0, 0.0}, 100);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);
}

TEST(FeatureIndexTest, QueryValidations) {
  MotionDatabase db = MakeDb(20, 11);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->NearestNeighbors({1.0}, 3).ok());
  EXPECT_FALSE(index->NearestNeighbors({1.0, 2.0, 3.0}, 0).ok());
  FeatureIndex unbuilt;
  EXPECT_FALSE(unbuilt.NearestNeighbors({1.0}, 1).ok());
}

TEST(FeatureIndexTest, AutoPartitionCountIsSqrtN) {
  MotionDatabase db = MakeDb(100, 12);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  EXPECT_GE(index->num_partitions(), 5u);
  EXPECT_LE(index->num_partitions(), 10u);
}

TEST(FeatureIndexTest, SingletonDatabase) {
  MotionDatabase db = MakeDb(1, 13);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto hits = index->NearestNeighbors(db.record(0).feature, 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].record_index, 0u);
}

// Satellite 1 regression: the index's packed mirror of the database
// must never be read stale. Any mutation after Build — Insert or
// UpdateFeature — moves the epoch, and queries fail with a Status
// until Rebuild instead of silently scanning outdated blocks.
TEST(FeatureIndexTest, StaleAfterMutationFailsUntilRebuild) {
  MotionDatabase db = MakeDb(80, 21);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->NearestNeighbors({0.0, 0.0, 0.0}, 3).ok());

  ASSERT_TRUE(db.UpdateFeature(5, {100.0, 100.0, 100.0}).ok());
  auto stale = index->NearestNeighbors({100.0, 100.0, 100.0}, 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  auto stale_batch = index->BatchNearestNeighbors({{0.0, 0.0, 0.0}}, 1);
  ASSERT_FALSE(stale_batch.ok());
  EXPECT_EQ(stale_batch.status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(index->Rebuild().ok());
  EXPECT_EQ(index->built_epoch(), db.epoch());
  auto hits = index->NearestNeighbors({100.0, 100.0, 100.0}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ((*hits)[0].record_index, 5u);
  EXPECT_EQ((*hits)[0].distance, 0.0);

  MotionRecord extra;
  extra.name = "late";
  extra.label = 0;
  extra.feature = {-50.0, 0.0, 0.0};
  ASSERT_TRUE(db.Insert(std::move(extra)).ok());
  EXPECT_FALSE(index->NearestNeighbors({0.0, 0.0, 0.0}, 1).ok());
}

// The coarse tier must actually prune full-precision work on clustered
// data — that is the whole point of the int8 codes.
TEST(FeatureIndexTest, CoarseTierPrunesExactEvaluations) {
  MotionDatabase db = MakeDbDim(2000, 32, 70);
  FeatureIndexOptions opts;
  opts.num_partitions = 4;  // fat partitions: little triangle pruning
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  Rng rng(71);
  IndexQueryStats stats;
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query(32);
    for (size_t j = 0; j < query.size(); ++j) {
      query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0) : rng.Gaussian(0, 2.0));
    }
    auto hits = index->NearestNeighbors(query, 5, &stats);
    ASSERT_TRUE(hits.ok());
    EXPECT_GT(stats.coarse_pruned, 0u) << "query " << q;
    EXPECT_LT(stats.distance_computations,
              stats.coarse_computations / 2 + 64)
        << "query " << q
        << ": coarse tier should discard most of the partition";
    auto linear = db.NearestNeighbors(query, 5);
    ASSERT_TRUE(linear.ok());
    for (size_t i = 0; i < linear->size(); ++i) {
      EXPECT_EQ((*hits)[i].record_index, (*linear)[i].record_index);
      EXPECT_EQ((*hits)[i].distance, (*linear)[i].distance);
    }
  }
}

// Satellite 3: randomized property test that the quantized bound never
// prunes a true top-k neighbour. Dimensions 1..128 sweep every unroll
// remainder; the adversarial geometry puts large fractions of the
// records at near-identical distances (differences far below the
// quantization error), so any unsound bound WOULD reorder or drop
// hits. quantized_min_rows = 1 forces codes onto every partition.
TEST(FeatureIndexTest, QuantizedPruneNeverDropsTrueNeighbors) {
  for (size_t dim : {1, 2, 3, 5, 16, 31, 64, 128}) {
    Rng rng(90 + dim);
    MotionDatabase db;
    const size_t n = 160;
    for (size_t i = 0; i < n; ++i) {
      MotionRecord r;
      r.name = "m" + std::to_string(i);
      r.label = i % 3;
      r.label_name = "c";
      r.feature.resize(dim);
      if (i % 2 == 0) {
        // Near-tie shell: unit-ish direction scaled to radius 10, then
        // jitter ~1e-13 — thousands of ULPs below the int8 grid step.
        double norm_sq = 0.0;
        for (size_t j = 0; j < dim; ++j) {
          r.feature[j] = rng.Gaussian(0, 1.0);
          norm_sq += r.feature[j] * r.feature[j];
        }
        const double scale =
            10.0 / std::sqrt(std::max(norm_sq, 1e-300));
        for (size_t j = 0; j < dim; ++j) {
          r.feature[j] = r.feature[j] * scale + rng.Gaussian(0, 1e-13);
        }
      } else {
        // Background spread, including coordinates of wildly different
        // magnitude to stress the per-dimension affine grid.
        for (size_t j = 0; j < dim; ++j) {
          r.feature[j] = rng.Gaussian(0, (j % 2) ? 100.0 : 0.01);
        }
      }
      ASSERT_TRUE(db.Insert(std::move(r)).ok());
    }
    FeatureIndexOptions opts;
    opts.quantized_min_rows = 1;
    opts.num_partitions = 4;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_TRUE(index.ok()) << index.status();
    for (int q = 0; q < 25; ++q) {
      std::vector<double> query(dim, 0.0);
      if (q % 3 == 1) {
        for (double& v : query) v = rng.Gaussian(0, 5.0);
      } else if (q % 3 == 2) {
        // On the shell itself: everything is a near-tie.
        const size_t src = static_cast<size_t>(q) % n;
        query = db.record(src - src % 2).feature;
      }
      const size_t k = 1 + static_cast<size_t>(q) % 9;
      auto linear = db.NearestNeighbors(query, k);
      auto indexed = index->NearestNeighbors(query, k);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(indexed.ok()) << indexed.status();
      ASSERT_EQ(linear->size(), indexed->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        ASSERT_EQ((*linear)[i].record_index, (*indexed)[i].record_index)
            << "dim " << dim << " query " << q << " rank " << i
            << ": a true neighbour was pruned or reordered";
        ASSERT_EQ((*linear)[i].distance, (*indexed)[i].distance)
            << "dim " << dim << " query " << q << " rank " << i;
      }
    }
    // Non-finite queries are rejected up front, never scanned.
    std::vector<double> bad(dim, 0.0);
    bad[0] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(index->NearestNeighbors(bad, 1).ok());
    bad[0] = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(index->NearestNeighbors(bad, 1).ok());
  }
}

// quantized_scan = false must give the same bits through the dot-form
// path alone (the coarse tier is a pure work optimization).
TEST(FeatureIndexTest, QuantizedOffMatchesQuantizedOn) {
  MotionDatabase db = MakeDbDim(300, 33, 80);
  FeatureIndexOptions on;
  on.quantized_min_rows = 1;
  FeatureIndexOptions off;
  off.quantized_scan = false;
  auto index_on = FeatureIndex::Build(&db, on);
  auto index_off = FeatureIndex::Build(&db, off);
  ASSERT_TRUE(index_on.ok());
  ASSERT_TRUE(index_off.ok());
  Rng rng(81);
  for (int q = 0; q < 20; ++q) {
    std::vector<double> query(33);
    for (double& v : query) v = rng.Gaussian(10.0, 15.0);
    auto a = index_on->NearestNeighbors(query, 6);
    auto b = index_off->NearestNeighbors(query, 6);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].record_index, (*b)[i].record_index);
      EXPECT_EQ((*a)[i].distance, (*b)[i].distance);
    }
  }
}

// The code width is a coarse-tier implementation detail: 4-bit codes
// must give exactly the linear scan's answers (and therefore exactly
// the 8-bit index's answers) — the weaker grid only weakens pruning.
TEST(FeatureIndexTest, FourBitResultsBitIdenticalToLinearAndEightBit) {
  for (size_t dim : {1, 2, 5, 16, 33, 67}) {
    MotionDatabase db = MakeDbDim(200, dim, 100 + dim);
    FeatureIndexOptions opts8;
    opts8.quantized_min_rows = 1;
    opts8.num_partitions = 4;
    FeatureIndexOptions opts4 = opts8;
    opts4.quant_bits = 4;
    auto index8 = FeatureIndex::Build(&db, opts8);
    auto index4 = FeatureIndex::Build(&db, opts4);
    ASSERT_TRUE(index8.ok()) << index8.status();
    ASSERT_TRUE(index4.ok()) << index4.status();
    EXPECT_TRUE(index4->has_quantized_tier());
    Rng rng(110 + dim);
    for (int q = 0; q < 20; ++q) {
      std::vector<double> query(dim);
      for (size_t j = 0; j < dim; ++j) {
        query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0)
                           : rng.Gaussian(0, 2.0));
      }
      auto linear = db.NearestNeighbors(query, 5);
      auto h8 = index8->NearestNeighbors(query, 5);
      auto h4 = index4->NearestNeighbors(query, 5);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(h8.ok());
      ASSERT_TRUE(h4.ok());
      ASSERT_EQ(linear->size(), h4->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        EXPECT_EQ((*linear)[i].record_index, (*h4)[i].record_index)
            << "dim " << dim << " query " << q << " rank " << i;
        EXPECT_EQ((*linear)[i].distance, (*h4)[i].distance)
            << "dim " << dim << " query " << q << " rank " << i;
        EXPECT_EQ((*h8)[i].record_index, (*h4)[i].record_index);
        EXPECT_EQ((*h8)[i].distance, (*h4)[i].distance);
      }
    }
  }
}

TEST(FeatureIndexTest, InvalidQuantBitsRejected) {
  MotionDatabase db = MakeDb(50, 120);
  for (size_t bits : {0, 1, 2, 3, 5, 7, 16}) {
    FeatureIndexOptions opts;
    opts.quant_bits = bits;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_FALSE(index.ok()) << "quant_bits " << bits;
    EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
  }
}

// The degraded coarse path's certified bound must hold at 4 bits too —
// the coarser grid widens B, it never invalidates it.
TEST(FeatureIndexTest, FourBitCoarseErrorBoundHolds) {
  MotionDatabase db = MakeDbDim(600, 24, 130);
  FeatureIndexOptions opts;
  opts.quant_bits = 4;
  opts.quantized_min_rows = 1;
  opts.num_partitions = 6;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  ASSERT_TRUE(index->has_quantized_tier());
  Rng rng(131);
  for (int q = 0; q < 25; ++q) {
    std::vector<double> query(24);
    for (size_t j = 0; j < query.size(); ++j) {
      query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0) : rng.Gaussian(0, 2.0));
    }
    double bound = -1.0;
    auto hits = index->CoarseNearestNeighbors(query, 5, &bound);
    ASSERT_TRUE(hits.ok()) << hits.status();
    EXPECT_GE(bound, 0.0);
    for (const QueryHit& h : *hits) {
      const double truth = std::sqrt(SquaredL2(
          query.data(), db.record(h.record_index).feature.data(), 24));
      EXPECT_LE(std::abs(h.distance - truth), bound)
          << "query " << q << " record " << h.record_index;
    }
  }
}

TEST(FeatureIndexTest, RebuildAfterInsert) {
  MotionDatabase db = MakeDb(50, 14);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  MotionRecord extra;
  extra.name = "new";
  extra.label = 0;
  extra.feature = {100.0, 100.0, 100.0};
  ASSERT_TRUE(db.Insert(extra).ok());
  ASSERT_TRUE(index->Rebuild().ok());
  auto hits = index->NearestNeighbors({100.0, 100.0, 100.0}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(db.record((*hits)[0].record_index).name, "new");
}

}  // namespace
}  // namespace mocemg
