#include "db/feature_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/distance_kernels.h"
#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    // Clustered structure so partition pruning has something to prune.
    const double cx = static_cast<double>(i % 4) * 20.0;
    r.feature = {cx + rng.Gaussian(0, 1.0), rng.Gaussian(0, 1.0),
                 rng.Gaussian(0, 1.0)};
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

TEST(FeatureIndexTest, BuildValidations) {
  EXPECT_FALSE(FeatureIndex::Build(nullptr).ok());
  MotionDatabase empty;
  EXPECT_FALSE(FeatureIndex::Build(&empty).ok());
}

TEST(FeatureIndexTest, ResultsMatchLinearScanExactly) {
  MotionDatabase db = MakeDb(200, 7);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok()) << index.status();
  Rng rng(8);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query = {rng.Uniform(-5.0, 65.0),
                                 rng.Gaussian(0, 2.0),
                                 rng.Gaussian(0, 2.0)};
    auto linear = db.NearestNeighbors(query, 5);
    auto indexed = index->NearestNeighbors(query, 5);
    ASSERT_TRUE(linear.ok());
    ASSERT_TRUE(indexed.ok());
    ASSERT_EQ(linear->size(), indexed->size());
    for (size_t i = 0; i < linear->size(); ++i) {
      EXPECT_EQ((*linear)[i].record_index, (*indexed)[i].record_index);
      EXPECT_NEAR((*linear)[i].distance, (*indexed)[i].distance, 1e-12);
    }
  }
}

// Higher-dimensional clustered database exercising the SoA dot-form
// scan with non-trivial unroll remainders.
MotionDatabase MakeDbDim(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

// The dot-form scan is approximate, but candidates within the error
// bound are re-checked with the exact pair kernel — so the index must be
// *bit-identical* to the linear scan, not merely close, at every
// dimension (each 4-way unroll remainder included).
TEST(FeatureIndexTest, ResultsBitIdenticalToLinearScanAcrossDims) {
  for (size_t dim : {5, 16, 30, 33, 67}) {
    MotionDatabase db = MakeDbDim(150, dim, 40 + dim);
    auto index = FeatureIndex::Build(&db);
    ASSERT_TRUE(index.ok()) << index.status();
    Rng rng(50 + dim);
    for (int q = 0; q < 20; ++q) {
      std::vector<double> query(dim);
      for (size_t j = 0; j < dim; ++j) {
        query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0)
                           : rng.Gaussian(0, 2.0));
      }
      auto linear = db.NearestNeighbors(query, 5);
      auto indexed = index->NearestNeighbors(query, 5);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(indexed.ok());
      ASSERT_EQ(linear->size(), indexed->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        EXPECT_EQ((*linear)[i].record_index, (*indexed)[i].record_index)
            << "dim " << dim << " query " << q << " rank " << i;
        EXPECT_EQ((*linear)[i].distance, (*indexed)[i].distance)
            << "dim " << dim << " query " << q << " rank " << i;
      }
    }
  }
}

// Batch answers — and the accumulated IndexQueryStats — must not depend
// on the thread count: per-chunk stats are combined in ascending chunk
// order (DESIGN.md §8.1). The name keeps this test in the tsan
// multi-thread rerun.
TEST(FeatureIndexTest, ParallelBatchBitIdenticalAcrossThreadCounts) {
  MotionDatabase db = MakeDbDim(300, 17, 60);
  std::vector<std::vector<double>> queries;
  Rng rng(61);
  for (int q = 0; q < 64; ++q) {
    std::vector<double> query(17);
    for (double& v : query) v = rng.Gaussian(10.0, 15.0);
    queries.push_back(std::move(query));
  }
  std::vector<std::vector<std::vector<QueryHit>>> all_results;
  std::vector<IndexQueryStats> all_stats;
  for (size_t threads : {1, 2, 8}) {
    FeatureIndexOptions opts;
    opts.parallel.max_threads = threads;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_TRUE(index.ok()) << index.status();
    IndexQueryStats stats;
    auto results = index->BatchNearestNeighbors(queries, 4, &stats);
    ASSERT_TRUE(results.ok()) << results.status();
    all_results.push_back(*std::move(results));
    all_stats.push_back(stats);
  }
  for (size_t v = 1; v < all_results.size(); ++v) {
    ASSERT_EQ(all_results[v].size(), all_results[0].size());
    for (size_t q = 0; q < all_results[0].size(); ++q) {
      ASSERT_EQ(all_results[v][q].size(), all_results[0][q].size());
      for (size_t i = 0; i < all_results[0][q].size(); ++i) {
        EXPECT_EQ(all_results[v][q][i].record_index,
                  all_results[0][q][i].record_index);
        EXPECT_EQ(all_results[v][q][i].distance,
                  all_results[0][q][i].distance);
      }
    }
    EXPECT_EQ(all_stats[v].distance_computations,
              all_stats[0].distance_computations);
    EXPECT_EQ(all_stats[v].partitions_visited,
              all_stats[0].partitions_visited);
    EXPECT_EQ(all_stats[v].partitions_pruned,
              all_stats[0].partitions_pruned);
  }
}

TEST(FeatureIndexTest, PruningActuallyHappens) {
  MotionDatabase db = MakeDb(400, 9);
  FeatureIndexOptions opts;
  opts.num_partitions = 8;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  IndexQueryStats stats;
  // A query deep inside one cluster prunes distant partitions.
  auto hits = index->NearestNeighbors({0.0, 0.0, 0.0}, 3, &stats);
  ASSERT_TRUE(hits.ok());
  EXPECT_GT(stats.partitions_pruned, 0u);
  EXPECT_LT(stats.distance_computations, db.size() + 8);
}

TEST(FeatureIndexTest, KLargerThanDatabase) {
  MotionDatabase db = MakeDb(10, 10);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto hits = index->NearestNeighbors({0.0, 0.0, 0.0}, 100);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);
}

TEST(FeatureIndexTest, QueryValidations) {
  MotionDatabase db = MakeDb(20, 11);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->NearestNeighbors({1.0}, 3).ok());
  EXPECT_FALSE(index->NearestNeighbors({1.0, 2.0, 3.0}, 0).ok());
  FeatureIndex unbuilt;
  EXPECT_FALSE(unbuilt.NearestNeighbors({1.0}, 1).ok());
}

TEST(FeatureIndexTest, AutoPartitionCountIsSqrtN) {
  MotionDatabase db = MakeDb(100, 12);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  EXPECT_GE(index->num_partitions(), 5u);
  EXPECT_LE(index->num_partitions(), 10u);
}

TEST(FeatureIndexTest, SingletonDatabase) {
  MotionDatabase db = MakeDb(1, 13);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  auto hits = index->NearestNeighbors(db.record(0).feature, 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].record_index, 0u);
}

// Satellite 1 regression: the index's packed mirror of the database
// must never be read stale. Any mutation after Build — Insert or
// UpdateFeature — moves the epoch, and queries fail with a Status
// until Rebuild instead of silently scanning outdated blocks.
TEST(FeatureIndexTest, StaleAfterMutationFailsUntilRebuild) {
  MotionDatabase db = MakeDb(80, 21);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->NearestNeighbors({0.0, 0.0, 0.0}, 3).ok());

  ASSERT_TRUE(db.UpdateFeature(5, {100.0, 100.0, 100.0}).ok());
  auto stale = index->NearestNeighbors({100.0, 100.0, 100.0}, 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  auto stale_batch = index->BatchNearestNeighbors({{0.0, 0.0, 0.0}}, 1);
  ASSERT_FALSE(stale_batch.ok());
  EXPECT_EQ(stale_batch.status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(index->Rebuild().ok());
  EXPECT_EQ(index->built_epoch(), db.epoch());
  auto hits = index->NearestNeighbors({100.0, 100.0, 100.0}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ((*hits)[0].record_index, 5u);
  EXPECT_EQ((*hits)[0].distance, 0.0);

  MotionRecord extra;
  extra.name = "late";
  extra.label = 0;
  extra.feature = {-50.0, 0.0, 0.0};
  ASSERT_TRUE(db.Insert(std::move(extra)).ok());
  EXPECT_FALSE(index->NearestNeighbors({0.0, 0.0, 0.0}, 1).ok());
}

// The coarse tier must actually prune full-precision work on clustered
// data — that is the whole point of the int8 codes.
TEST(FeatureIndexTest, CoarseTierPrunesExactEvaluations) {
  MotionDatabase db = MakeDbDim(2000, 32, 70);
  FeatureIndexOptions opts;
  opts.num_partitions = 4;  // fat partitions: little triangle pruning
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  Rng rng(71);
  IndexQueryStats stats;
  for (int q = 0; q < 10; ++q) {
    std::vector<double> query(32);
    for (size_t j = 0; j < query.size(); ++j) {
      query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0) : rng.Gaussian(0, 2.0));
    }
    auto hits = index->NearestNeighbors(query, 5, &stats);
    ASSERT_TRUE(hits.ok());
    EXPECT_GT(stats.coarse_pruned, 0u) << "query " << q;
    EXPECT_LT(stats.distance_computations,
              stats.coarse_computations / 2 + 64)
        << "query " << q
        << ": coarse tier should discard most of the partition";
    auto linear = db.NearestNeighbors(query, 5);
    ASSERT_TRUE(linear.ok());
    for (size_t i = 0; i < linear->size(); ++i) {
      EXPECT_EQ((*hits)[i].record_index, (*linear)[i].record_index);
      EXPECT_EQ((*hits)[i].distance, (*linear)[i].distance);
    }
  }
}

// Satellite 3: randomized property test that the quantized bound never
// prunes a true top-k neighbour. Dimensions 1..128 sweep every unroll
// remainder; the adversarial geometry puts large fractions of the
// records at near-identical distances (differences far below the
// quantization error), so any unsound bound WOULD reorder or drop
// hits. quantized_min_rows = 1 forces codes onto every partition.
TEST(FeatureIndexTest, QuantizedPruneNeverDropsTrueNeighbors) {
  for (size_t dim : {1, 2, 3, 5, 16, 31, 64, 128}) {
    Rng rng(90 + dim);
    MotionDatabase db;
    const size_t n = 160;
    for (size_t i = 0; i < n; ++i) {
      MotionRecord r;
      r.name = "m" + std::to_string(i);
      r.label = i % 3;
      r.label_name = "c";
      r.feature.resize(dim);
      if (i % 2 == 0) {
        // Near-tie shell: unit-ish direction scaled to radius 10, then
        // jitter ~1e-13 — thousands of ULPs below the int8 grid step.
        double norm_sq = 0.0;
        for (size_t j = 0; j < dim; ++j) {
          r.feature[j] = rng.Gaussian(0, 1.0);
          norm_sq += r.feature[j] * r.feature[j];
        }
        const double scale =
            10.0 / std::sqrt(std::max(norm_sq, 1e-300));
        for (size_t j = 0; j < dim; ++j) {
          r.feature[j] = r.feature[j] * scale + rng.Gaussian(0, 1e-13);
        }
      } else {
        // Background spread, including coordinates of wildly different
        // magnitude to stress the per-dimension affine grid.
        for (size_t j = 0; j < dim; ++j) {
          r.feature[j] = rng.Gaussian(0, (j % 2) ? 100.0 : 0.01);
        }
      }
      ASSERT_TRUE(db.Insert(std::move(r)).ok());
    }
    FeatureIndexOptions opts;
    opts.quantized_min_rows = 1;
    opts.num_partitions = 4;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_TRUE(index.ok()) << index.status();
    for (int q = 0; q < 25; ++q) {
      std::vector<double> query(dim, 0.0);
      if (q % 3 == 1) {
        for (double& v : query) v = rng.Gaussian(0, 5.0);
      } else if (q % 3 == 2) {
        // On the shell itself: everything is a near-tie.
        const size_t src = static_cast<size_t>(q) % n;
        query = db.record(src - src % 2).feature;
      }
      const size_t k = 1 + static_cast<size_t>(q) % 9;
      auto linear = db.NearestNeighbors(query, k);
      auto indexed = index->NearestNeighbors(query, k);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(indexed.ok()) << indexed.status();
      ASSERT_EQ(linear->size(), indexed->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        ASSERT_EQ((*linear)[i].record_index, (*indexed)[i].record_index)
            << "dim " << dim << " query " << q << " rank " << i
            << ": a true neighbour was pruned or reordered";
        ASSERT_EQ((*linear)[i].distance, (*indexed)[i].distance)
            << "dim " << dim << " query " << q << " rank " << i;
      }
    }
    // Non-finite queries are rejected up front, never scanned.
    std::vector<double> bad(dim, 0.0);
    bad[0] = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(index->NearestNeighbors(bad, 1).ok());
    bad[0] = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(index->NearestNeighbors(bad, 1).ok());
  }
}

// quantized_scan = false must give the same bits through the dot-form
// path alone (the coarse tier is a pure work optimization).
TEST(FeatureIndexTest, QuantizedOffMatchesQuantizedOn) {
  MotionDatabase db = MakeDbDim(300, 33, 80);
  FeatureIndexOptions on;
  on.quantized_min_rows = 1;
  FeatureIndexOptions off;
  off.quantized_scan = false;
  auto index_on = FeatureIndex::Build(&db, on);
  auto index_off = FeatureIndex::Build(&db, off);
  ASSERT_TRUE(index_on.ok());
  ASSERT_TRUE(index_off.ok());
  Rng rng(81);
  for (int q = 0; q < 20; ++q) {
    std::vector<double> query(33);
    for (double& v : query) v = rng.Gaussian(10.0, 15.0);
    auto a = index_on->NearestNeighbors(query, 6);
    auto b = index_off->NearestNeighbors(query, 6);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].record_index, (*b)[i].record_index);
      EXPECT_EQ((*a)[i].distance, (*b)[i].distance);
    }
  }
}

// The code width is a coarse-tier implementation detail: 4-bit codes
// must give exactly the linear scan's answers (and therefore exactly
// the 8-bit index's answers) — the weaker grid only weakens pruning.
TEST(FeatureIndexTest, FourBitResultsBitIdenticalToLinearAndEightBit) {
  for (size_t dim : {1, 2, 5, 16, 33, 67}) {
    MotionDatabase db = MakeDbDim(200, dim, 100 + dim);
    FeatureIndexOptions opts8;
    opts8.quantized_min_rows = 1;
    opts8.num_partitions = 4;
    FeatureIndexOptions opts4 = opts8;
    opts4.quant_bits = 4;
    auto index8 = FeatureIndex::Build(&db, opts8);
    auto index4 = FeatureIndex::Build(&db, opts4);
    ASSERT_TRUE(index8.ok()) << index8.status();
    ASSERT_TRUE(index4.ok()) << index4.status();
    EXPECT_TRUE(index4->has_quantized_tier());
    Rng rng(110 + dim);
    for (int q = 0; q < 20; ++q) {
      std::vector<double> query(dim);
      for (size_t j = 0; j < dim; ++j) {
        query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0)
                           : rng.Gaussian(0, 2.0));
      }
      auto linear = db.NearestNeighbors(query, 5);
      auto h8 = index8->NearestNeighbors(query, 5);
      auto h4 = index4->NearestNeighbors(query, 5);
      ASSERT_TRUE(linear.ok());
      ASSERT_TRUE(h8.ok());
      ASSERT_TRUE(h4.ok());
      ASSERT_EQ(linear->size(), h4->size());
      for (size_t i = 0; i < linear->size(); ++i) {
        EXPECT_EQ((*linear)[i].record_index, (*h4)[i].record_index)
            << "dim " << dim << " query " << q << " rank " << i;
        EXPECT_EQ((*linear)[i].distance, (*h4)[i].distance)
            << "dim " << dim << " query " << q << " rank " << i;
        EXPECT_EQ((*h8)[i].record_index, (*h4)[i].record_index);
        EXPECT_EQ((*h8)[i].distance, (*h4)[i].distance);
      }
    }
  }
}

TEST(FeatureIndexTest, InvalidQuantBitsRejected) {
  MotionDatabase db = MakeDb(50, 120);
  for (size_t bits : {0, 1, 2, 3, 5, 7, 16}) {
    FeatureIndexOptions opts;
    opts.quant_bits = bits;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_FALSE(index.ok()) << "quant_bits " << bits;
    EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
  }
}

// The degraded coarse path's certified bound must hold at 4 bits too —
// the coarser grid widens B, it never invalidates it.
TEST(FeatureIndexTest, FourBitCoarseErrorBoundHolds) {
  MotionDatabase db = MakeDbDim(600, 24, 130);
  FeatureIndexOptions opts;
  opts.quant_bits = 4;
  opts.quantized_min_rows = 1;
  opts.num_partitions = 6;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  ASSERT_TRUE(index->has_quantized_tier());
  Rng rng(131);
  for (int q = 0; q < 25; ++q) {
    std::vector<double> query(24);
    for (size_t j = 0; j < query.size(); ++j) {
      query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0) : rng.Gaussian(0, 2.0));
    }
    double bound = -1.0;
    auto hits = index->CoarseNearestNeighbors(query, 5, &bound);
    ASSERT_TRUE(hits.ok()) << hits.status();
    EXPECT_GE(bound, 0.0);
    for (const QueryHit& h : *hits) {
      const double truth = std::sqrt(SquaredL2(
          query.data(), db.record(h.record_index).feature.data(), 24));
      EXPECT_LE(std::abs(h.distance - truth), bound)
          << "query " << q << " record " << h.record_index;
    }
  }
}

FeatureIndexOptions F32TierOptions(size_t threads = 0) {
  FeatureIndexOptions opts;
  opts.quantized_scan = false;  // non-coded partitions carry the mirror
  opts.exact_precision = ExactPrecision::kF32;
  opts.num_partitions = 4;
  if (threads > 0) opts.parallel.max_threads = threads;
  return opts;
}

// The fp32 tier's contract: same bits as the f64 path, not merely
// close. Swept across dims (every unroll remainder flavor) and thread
// counts 1/2/8 — the refine gate must neither depend on chunking nor
// on which backend scanned which partition.
TEST(FeatureIndexTest, F32TierBitIdenticalToF64AcrossDimsAndThreads) {
  for (size_t dim : {1, 5, 16, 33, 67}) {
    MotionDatabase db = MakeDbDim(200, dim, 140 + dim);
    FeatureIndexOptions f64opts;
    f64opts.quantized_scan = false;
    f64opts.num_partitions = 4;
    auto f64idx = FeatureIndex::Build(&db, f64opts);
    ASSERT_TRUE(f64idx.ok()) << f64idx.status();

    std::vector<std::vector<double>> queries;
    Rng rng(150 + dim);
    for (int q = 0; q < 32; ++q) {
      std::vector<double> query(dim);
      for (size_t j = 0; j < dim; ++j) {
        query[j] = (j == 0 ? rng.Uniform(-5.0, 65.0)
                           : rng.Gaussian(0, 2.0));
      }
      queries.push_back(std::move(query));
    }
    auto baseline = f64idx->BatchNearestNeighbors(queries, 5);
    ASSERT_TRUE(baseline.ok());

    for (size_t threads : {1, 2, 8}) {
      auto f32idx = FeatureIndex::Build(&db, F32TierOptions(threads));
      ASSERT_TRUE(f32idx.ok()) << f32idx.status();
      IndexQueryStats stats;
      auto results = f32idx->BatchNearestNeighbors(queries, 5, &stats);
      ASSERT_TRUE(results.ok());
      EXPECT_GT(stats.f32_scans, 0u)
          << "dim " << dim << " threads " << threads
          << ": fp32 tier never engaged";
      ASSERT_EQ(results->size(), baseline->size());
      for (size_t q = 0; q < baseline->size(); ++q) {
        ASSERT_EQ((*results)[q].size(), (*baseline)[q].size());
        for (size_t i = 0; i < (*baseline)[q].size(); ++i) {
          ASSERT_EQ((*results)[q][i].record_index,
                    (*baseline)[q][i].record_index)
              << "dim " << dim << " threads " << threads << " query " << q
              << " rank " << i;
          ASSERT_EQ((*results)[q][i].distance, (*baseline)[q][i].distance)
              << "dim " << dim << " threads " << threads << " query " << q
              << " rank " << i;
        }
      }
    }
  }
}

// Satellite 4: randomized property test that the fp32 refine gate is
// conservative — the true kth neighbour is never excluded, at any
// thread count. Adversarial data per trial: near-tie shells jittered
// ~1e-13 (thousands of fp32 ULPs below resolution, so the fp32 scan
// cannot rank them — only the certified margin forces the double
// re-check), mixed-magnitude rows (1e7 against 1e-40, narrowing to
// fp32 subnormals/zero), and 1e30-scale rows the norm gate must route
// to the f64 path entirely. Whatever the gating decisions, the top-k
// must equal the linear scan's bits.
TEST(FeatureIndexTest, F32RefineGateNeverDropsTrueNeighbors) {
  uint64_t total_f32_scans = 0;
  uint64_t total_f32_refined = 0;
  Rng dim_rng(160);
  for (int trial = 0; trial < 8; ++trial) {
    const size_t dim = 1 + dim_rng.NextBelow(67);
    Rng rng(161 + trial * 7);
    MotionDatabase db;
    const size_t n = 120;
    for (size_t i = 0; i < n; ++i) {
      MotionRecord r;
      r.name = "m" + std::to_string(i);
      r.label = i % 3;
      r.label_name = "c";
      r.feature.resize(dim);
      // Beyond-the-gate rows only on even trials: k-means spreads them
      // across partitions, suppressing every mirror — odd trials keep
      // all partitions mirrored so the fp32 tier provably engages.
      size_t style = i % 4;
      if (style == 2 && trial % 2 == 1) style = 3;
      switch (style) {
        case 0: {
          // Near-tie shell at radius 10, jitter far below fp32 ULP.
          double norm_sq = 0.0;
          for (size_t j = 0; j < dim; ++j) {
            r.feature[j] = rng.Gaussian(0, 1.0);
            norm_sq += r.feature[j] * r.feature[j];
          }
          const double scale =
              10.0 / std::sqrt(std::max(norm_sq, 1e-300));
          for (size_t j = 0; j < dim; ++j) {
            r.feature[j] = r.feature[j] * scale + rng.Gaussian(0, 1e-13);
          }
          break;
        }
        case 1:
          // Mixed magnitudes: catastrophic fp32 cancellation, with the
          // small elements narrowing to fp32 subnormals or zero.
          for (size_t j = 0; j < dim; ++j) {
            const double mag = (j % 2 == 0) ? 1e7 : 1e-40;
            r.feature[j] = (rng.NextBelow(2) ? 1.0 : -1.0) * mag;
          }
          break;
        case 2:
          // Beyond the norm gate: these rows' partitions must fall
          // back to the f64 scan (1e30² ≫ the 1e30 norms_sq gate).
          for (size_t j = 0; j < dim; ++j) {
            r.feature[j] = rng.Gaussian(0, 1e30);
          }
          break;
        default:
          for (size_t j = 0; j < dim; ++j) {
            r.feature[j] = rng.Gaussian(0, (j % 2) ? 100.0 : 0.01);
          }
      }
      ASSERT_TRUE(db.Insert(std::move(r)).ok());
    }

    std::vector<std::vector<double>> queries;
    for (int q = 0; q < 16; ++q) {
      std::vector<double> query(dim, 0.0);
      switch (q % 4) {
        case 1:
          for (double& v : query) v = rng.Gaussian(0, 5.0);
          break;
        case 2:
          // On the shell: everything is a near-tie.
          query = db.record((static_cast<size_t>(q) * 4) % n).feature;
          break;
        case 3:
          // A huge query trips the scan-side gate even where the
          // pack-side gate admitted the partition.
          for (double& v : query) v = rng.Gaussian(0, 1e20);
          break;
        default:
          break;  // origin
      }
      queries.push_back(std::move(query));
    }

    for (size_t threads : {1, 2, 8}) {
      auto index = FeatureIndex::Build(&db, F32TierOptions(threads));
      ASSERT_TRUE(index.ok()) << index.status();
      IndexQueryStats stats;
      const size_t k = 1 + static_cast<size_t>(trial) % 9;
      auto indexed = index->BatchNearestNeighbors(queries, k, &stats);
      ASSERT_TRUE(indexed.ok()) << indexed.status();
      total_f32_scans += stats.f32_scans;
      total_f32_refined += stats.f32_refined;
      for (size_t q = 0; q < queries.size(); ++q) {
        auto linear = db.NearestNeighbors(queries[q], k);
        ASSERT_TRUE(linear.ok());
        ASSERT_EQ((*indexed)[q].size(), linear->size());
        for (size_t i = 0; i < linear->size(); ++i) {
          ASSERT_EQ((*indexed)[q][i].record_index,
                    (*linear)[i].record_index)
              << "trial " << trial << " dim " << dim << " threads "
              << threads << " query " << q << " rank " << i
              << ": a true neighbour was excluded by the fp32 gate";
          ASSERT_EQ((*indexed)[q][i].distance, (*linear)[i].distance)
              << "trial " << trial << " dim " << dim << " threads "
              << threads << " query " << q << " rank " << i;
        }
      }
    }
  }
  // The sweep must actually have exercised the tier, scans and
  // refines both — otherwise the property was vacuous.
  EXPECT_GT(total_f32_scans, 0u);
  EXPECT_GT(total_f32_refined, 0u);
}

// Both halves of the overflow gate: partitions packed from 1e20-scale
// rows carry no mirror (pack-side), and a 1e20-scale query skips the
// mirror even where one exists (scan-side) — in each case the f64
// path serves, bit-identical, with zero fp32 scans recorded.
TEST(FeatureIndexTest, F32NormGateFallsBackToF64) {
  const size_t dim = 12;
  // Pack-side: every record is far beyond the gate.
  {
    Rng rng(170);
    MotionDatabase db;
    for (size_t i = 0; i < 80; ++i) {
      MotionRecord r;
      r.name = "m" + std::to_string(i);
      r.label = 0;
      r.label_name = "c";
      r.feature.resize(dim);
      for (double& v : r.feature) v = rng.Gaussian(0, 1e20);
      ASSERT_TRUE(db.Insert(std::move(r)).ok());
    }
    auto f32idx = FeatureIndex::Build(&db, F32TierOptions());
    ASSERT_TRUE(f32idx.ok()) << f32idx.status();
    FeatureIndexOptions f64opts;
    f64opts.quantized_scan = false;
    f64opts.num_partitions = 4;
    auto f64idx = FeatureIndex::Build(&db, f64opts);
    ASSERT_TRUE(f64idx.ok());
    IndexQueryStats stats;
    for (int q = 0; q < 10; ++q) {
      std::vector<double> query(dim);
      for (double& v : query) v = rng.Gaussian(0, 1e20);
      auto a = f32idx->NearestNeighbors(query, 4, &stats);
      auto b = f64idx->NearestNeighbors(query, 4);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->size(), b->size());
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].record_index, (*b)[i].record_index);
        EXPECT_EQ((*a)[i].distance, (*b)[i].distance);
      }
    }
    EXPECT_EQ(stats.f32_scans, 0u)
        << "pack-side norm gate failed to suppress the mirror";
  }
  // Scan-side: small records (mirrors packed), huge query.
  {
    MotionDatabase db = MakeDbDim(100, dim, 171);
    auto f32idx = FeatureIndex::Build(&db, F32TierOptions());
    ASSERT_TRUE(f32idx.ok());
    Rng rng(172);
    IndexQueryStats small_stats, huge_stats;
    std::vector<double> small_query(dim, 1.0);
    ASSERT_TRUE(
        f32idx->NearestNeighbors(small_query, 4, &small_stats).ok());
    EXPECT_GT(small_stats.f32_scans, 0u)
        << "mirrors should exist for small-magnitude records";
    std::vector<double> huge_query(dim);
    for (double& v : huge_query) v = rng.Gaussian(0, 1e20);
    auto hits = f32idx->NearestNeighbors(huge_query, 4, &huge_stats);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(huge_stats.f32_scans, 0u)
        << "scan-side norm gate must skip the mirror for a huge query";
    auto linear = db.NearestNeighbors(huge_query, 4);
    ASSERT_TRUE(linear.ok());
    for (size_t i = 0; i < hits->size(); ++i) {
      EXPECT_EQ((*hits)[i].record_index, (*linear)[i].record_index);
      EXPECT_EQ((*hits)[i].distance, (*linear)[i].distance);
    }
  }
}

// MOCEMG_EXACT_PRECISION resolves kDefault at build: the resolved
// value is stored back into options(), and an explicit option wins
// over the environment (precedence: env < options).
TEST(FeatureIndexTest, ExactPrecisionResolutionAndParsing) {
  EXPECT_STREQ(ExactPrecisionName(ExactPrecision::kDefault), "default");
  EXPECT_STREQ(ExactPrecisionName(ExactPrecision::kF64), "f64");
  EXPECT_STREQ(ExactPrecisionName(ExactPrecision::kF32), "f32");
  for (const char* name : {"f64", "double"}) {
    auto parsed = ParseExactPrecision(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, ExactPrecision::kF64);
  }
  for (const char* name : {"f32", "float"}) {
    auto parsed = ParseExactPrecision(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(*parsed, ExactPrecision::kF32);
  }
  auto dflt = ParseExactPrecision("default");
  ASSERT_TRUE(dflt.ok());
  EXPECT_EQ(*dflt, ExactPrecision::kDefault);
  EXPECT_FALSE(ParseExactPrecision("f16").ok());
  EXPECT_FALSE(ParseExactPrecision("").ok());

  // Explicit options resolve to themselves regardless of environment.
  EXPECT_EQ(ResolveExactPrecision(ExactPrecision::kF64),
            ExactPrecision::kF64);
  EXPECT_EQ(ResolveExactPrecision(ExactPrecision::kF32),
            ExactPrecision::kF32);
  // kDefault resolves to a concrete value (f64 unless the environment
  // overrides), and Build stores the resolution back into options().
  const ExactPrecision resolved =
      ResolveExactPrecision(ExactPrecision::kDefault);
  EXPECT_NE(resolved, ExactPrecision::kDefault);
  MotionDatabase db = MakeDb(30, 180);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->options().exact_precision, resolved);
}

TEST(FeatureIndexTest, RebuildAfterInsert) {
  MotionDatabase db = MakeDb(50, 14);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());
  MotionRecord extra;
  extra.name = "new";
  extra.label = 0;
  extra.feature = {100.0, 100.0, 100.0};
  ASSERT_TRUE(db.Insert(extra).ok());
  ASSERT_TRUE(index->Rebuild().ok());
  auto hits = index->NearestNeighbors({100.0, 100.0, 100.0}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(db.record((*hits)[0].record_index).name, "new");
}

}  // namespace
}  // namespace mocemg
