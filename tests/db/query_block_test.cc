/// Query-block batch-scan edge cases (DESIGN.md §16): every block
/// size, thread count, shard count, and kernel backend must yield
/// hits, error bounds, and stats bit-identical to the per-query scan.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "db/sharded_index.h"
#include "util/kernel_dispatch.h"
#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(10.0, 15.0);
  }
  return queries;
}

void ExpectHitsIdentical(const std::vector<QueryHit>& a,
                         const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_index, b[i].record_index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

void ExpectStatsEqual(const IndexQueryStats& a, const IndexQueryStats& b) {
  EXPECT_EQ(a.distance_computations, b.distance_computations);
  EXPECT_EQ(a.partitions_visited, b.partitions_visited);
  EXPECT_EQ(a.partitions_pruned, b.partitions_pruned);
  EXPECT_EQ(a.coarse_computations, b.coarse_computations);
  EXPECT_EQ(a.coarse_pruned, b.coarse_pruned);
  EXPECT_EQ(a.f32_scans, b.f32_scans);
  EXPECT_EQ(a.f32_refined, b.f32_refined);
}

struct BackendScope {
  ~BackendScope() { (void)SetKernelBackend(KernelBackend::kAuto); }
};

// Block size 1 degenerates every block to the solo path's shape;
// query counts not divisible by the block leave a ragged tail; a
// block larger than the batch clamps. All must be bit-identical —
// hits AND stats — to the per-query scan, on every usable backend
// and at both exact-tier precisions.
TEST(QueryBlockTest, BlockSizeSweepBitIdenticalToPerQuery) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(300, kDim, 41);
  const auto queries = MakeQueries(37, kDim, 42);  // 37: prime, ragged
  BackendScope restore;
  for (KernelBackend backend : UsableKernelBackends()) {
    ASSERT_TRUE(SetKernelBackend(backend).ok());
    for (ExactPrecision prec : {ExactPrecision::kF64, ExactPrecision::kF32}) {
      FeatureIndexOptions opts;
      opts.exact_precision = prec;
      auto index = FeatureIndex::Build(&db, opts);
      ASSERT_TRUE(index.ok()) << index.status();
      // Per-query reference answers and per-query summed stats.
      std::vector<std::vector<QueryHit>> ref(queries.size());
      IndexQueryStats ref_stats;
      for (size_t q = 0; q < queries.size(); ++q) {
        IndexQueryStats st;
        auto hits = index->NearestNeighbors(queries[q], 5, &st);
        ASSERT_TRUE(hits.ok()) << hits.status();
        ref[q] = std::move(*hits);
        ref_stats.distance_computations += st.distance_computations;
        ref_stats.partitions_visited += st.partitions_visited;
        ref_stats.partitions_pruned += st.partitions_pruned;
        ref_stats.coarse_computations += st.coarse_computations;
        ref_stats.coarse_pruned += st.coarse_pruned;
        ref_stats.f32_scans += st.f32_scans;
        ref_stats.f32_refined += st.f32_refined;
      }
      for (size_t block : {1, 3, 7, 32, 64}) {
        FeatureIndexOptions bopts = opts;
        bopts.query_block = block;
        auto bindex = FeatureIndex::Build(&db, bopts);
        ASSERT_TRUE(bindex.ok()) << bindex.status();
        IndexQueryStats st;
        auto hits = bindex->BatchNearestNeighbors(queries, 5, &st);
        ASSERT_TRUE(hits.ok()) << hits.status();
        ASSERT_EQ(hits->size(), queries.size());
        for (size_t q = 0; q < queries.size(); ++q) {
          ExpectHitsIdentical(ref[q], (*hits)[q]);
        }
        SCOPED_TRACE(std::string("backend=") + KernelBackendName(backend) +
                     " prec=" + std::to_string(static_cast<int>(prec)) +
                     " block=" + std::to_string(block));
        ExpectStatsEqual(ref_stats, st);
      }
    }
  }
}

// k at or beyond the partition size (and beyond the whole database)
// exercises the never-full-heap paths: the coarse seed loop, the
// frozen entry gate with entry_full=false, and heap_k clamping.
TEST(QueryBlockTest, KAtAndBeyondPartitionAndDatabaseSize) {
  const size_t kDim = 6;
  MotionDatabase db = MakeDb(120, kDim, 51);
  const auto queries = MakeQueries(9, kDim, 52);
  FeatureIndexOptions opts;
  opts.num_partitions = 4;  // ~30 records per partition
  opts.quantized_min_rows = 1;  // force the coarse tier on
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  for (size_t k : {30, 120, 500}) {
    std::vector<std::vector<QueryHit>> ref(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto hits = index->NearestNeighbors(queries[q], k);
      ASSERT_TRUE(hits.ok()) << hits.status();
      ref[q] = std::move(*hits);
    }
    for (size_t block : {1, 4, 32}) {
      FeatureIndexOptions bopts = opts;
      bopts.query_block = block;
      auto bindex = FeatureIndex::Build(&db, bopts);
      ASSERT_TRUE(bindex.ok()) << bindex.status();
      auto hits = bindex->BatchNearestNeighbors(queries, k);
      ASSERT_TRUE(hits.ok()) << hits.status();
      for (size_t q = 0; q < queries.size(); ++q) {
        EXPECT_EQ(ref[q].size(), std::min(k, db.size()));
        ExpectHitsIdentical(ref[q], (*hits)[q]);
      }
    }
  }
}

// A non-finite query anywhere in the batch fails the whole batch with
// the offending query's slot in the error context, matching the
// per-query validation error.
TEST(QueryBlockTest, NonFiniteQueriesRejectedWithSlotContext) {
  const size_t kDim = 6;
  MotionDatabase db = MakeDb(80, kDim, 61);
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok()) << index.status();
  auto queries = MakeQueries(8, kDim, 62);
  queries[2][3] = std::numeric_limits<double>::quiet_NaN();
  queries[5][0] = std::numeric_limits<double>::infinity();
  auto solo = index->NearestNeighbors(queries[2], 3);
  ASSERT_FALSE(solo.ok());
  auto batch = index->BatchNearestNeighbors(queries, 3);
  ASSERT_FALSE(batch.ok());
  // Lowest offending slot wins; message carries both the per-query
  // validation text and the batch-slot context.
  EXPECT_NE(batch.status().message().find("batch query 2"),
            std::string::npos)
      << batch.status();
  EXPECT_NE(batch.status().message().find("non-finite"), std::string::npos)
      << batch.status();
  auto coarse = index->BatchCoarseNearestNeighbors(queries, 3);
  ASSERT_FALSE(coarse.ok());
  EXPECT_NE(coarse.status().message().find("batch query 2"),
            std::string::npos)
      << coarse.status();
}

// Duplicate queries sharing one block must not perturb each other:
// every copy gets the identical answer, equal to the solo scan.
TEST(QueryBlockTest, DuplicateQueriesInOneBlock) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(200, kDim, 71);
  FeatureIndexOptions opts;
  opts.query_block = 8;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  const auto base = MakeQueries(3, kDim, 72);
  // 8 queries, one block: [a, b, a, a, c, b, a, c].
  std::vector<std::vector<double>> queries = {base[0], base[1], base[0],
                                              base[0], base[2], base[1],
                                              base[0], base[2]};
  auto hits = index->BatchNearestNeighbors(queries, 4);
  ASSERT_TRUE(hits.ok()) << hits.status();
  for (size_t q = 0; q < queries.size(); ++q) {
    auto solo = index->NearestNeighbors(queries[q], 4);
    ASSERT_TRUE(solo.ok());
    ExpectHitsIdentical(*solo, (*hits)[q]);
  }
}

// The sharded (query-block × shard) grid: thread counts 1/2/8 and
// shard counts 1/4 against several block sizes — hits and stats all
// bit-identical to the per-query sharded scan.
TEST(QueryBlockTest, ShardedGridBitIdenticalAcrossThreadsAndBlocks) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(300, kDim, 81);
  const auto queries = MakeQueries(23, kDim, 82);  // ragged vs any block
  for (size_t shards : {1, 4}) {
    // Per-query reference through a 1-thread build.
    ShardedIndexOptions ropts;
    ropts.num_shards = shards;
    auto rindex = ShardedFeatureIndex::Build(&db, ropts);
    ASSERT_TRUE(rindex.ok()) << rindex.status();
    std::vector<std::vector<QueryHit>> ref(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto hits = rindex->NearestNeighbors(queries[q], 5);
      ASSERT_TRUE(hits.ok()) << hits.status();
      ref[q] = std::move(*hits);
    }
    std::vector<IndexQueryStats> run_stats;
    for (size_t threads : {1, 2, 8}) {
      for (size_t block : {1, 5, 32}) {
        ShardedIndexOptions opts;
        opts.num_shards = shards;
        opts.index.parallel.max_threads = threads;
        opts.index.query_block = block;
        auto index = ShardedFeatureIndex::Build(&db, opts);
        ASSERT_TRUE(index.ok()) << index.status();
        IndexQueryStats stats;
        auto hits = index->BatchNearestNeighbors(queries, 5, &stats);
        ASSERT_TRUE(hits.ok()) << hits.status();
        for (size_t q = 0; q < queries.size(); ++q) {
          ExpectHitsIdentical(ref[q], (*hits)[q]);
        }
        run_stats.push_back(stats);
      }
    }
    for (size_t r = 1; r < run_stats.size(); ++r) {
      ExpectStatsEqual(run_stats[0], run_stats[r]);
    }
  }
}

// The blocked coarse scan: batch answers AND certified error bounds
// equal CoarseNearestNeighbors per query, across shard counts, thread
// counts, and block sizes.
TEST(QueryBlockTest, CoarseBatchMatchesPerQueryWithBounds) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(300, kDim, 91);
  const auto queries = MakeQueries(19, kDim, 92);
  for (size_t shards : {1, 4}) {
    ShardedIndexOptions ropts;
    ropts.num_shards = shards;
    ropts.index.quantized_min_rows = 1;
    auto rindex = ShardedFeatureIndex::Build(&db, ropts);
    ASSERT_TRUE(rindex.ok()) << rindex.status();
    ASSERT_TRUE(rindex->has_quantized_tier());
    std::vector<std::vector<QueryHit>> ref(queries.size());
    std::vector<double> ref_bounds(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto hits =
          rindex->CoarseNearestNeighbors(queries[q], 5, &ref_bounds[q]);
      ASSERT_TRUE(hits.ok()) << hits.status();
      ref[q] = std::move(*hits);
    }
    for (size_t threads : {1, 8}) {
      for (size_t block : {1, 6, 32}) {
        ShardedIndexOptions opts = ropts;
        opts.index.parallel.max_threads = threads;
        opts.index.query_block = block;
        auto index = ShardedFeatureIndex::Build(&db, opts);
        ASSERT_TRUE(index.ok()) << index.status();
        std::vector<double> bounds;
        auto hits = index->BatchCoarseNearestNeighbors(queries, 5, &bounds);
        ASSERT_TRUE(hits.ok()) << hits.status();
        ASSERT_EQ(bounds.size(), queries.size());
        for (size_t q = 0; q < queries.size(); ++q) {
          ExpectHitsIdentical(ref[q], (*hits)[q]);
          EXPECT_EQ(ref_bounds[q], bounds[q]);
        }
      }
    }
  }
}

// The single-index coarse batch entry point (used by the query
// server's degraded drain) against its per-query counterpart.
TEST(QueryBlockTest, SingleIndexCoarseBatchMatchesPerQuery) {
  const size_t kDim = 8;
  MotionDatabase db = MakeDb(250, kDim, 101);
  const auto queries = MakeQueries(11, kDim, 102);
  FeatureIndexOptions opts;
  opts.quantized_min_rows = 1;
  opts.query_block = 4;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  std::vector<double> bounds;
  auto batch = index->BatchCoarseNearestNeighbors(queries, 5, &bounds);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (size_t q = 0; q < queries.size(); ++q) {
    double bound = 0.0;
    auto solo = index->CoarseNearestNeighbors(queries[q], 5, &bound);
    ASSERT_TRUE(solo.ok());
    ExpectHitsIdentical(*solo, (*batch)[q]);
    EXPECT_EQ(bound, bounds[q]);
  }
}

}  // namespace
}  // namespace mocemg
