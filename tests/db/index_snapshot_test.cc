#include "db/index_snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "db/serving_faults.h"
#include "util/csv.h"
#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

/// Small partitions still get int8 codes, so the snapshot covers the
/// quantized tier at test scale.
FeatureIndexOptions QuantizedOptions() {
  FeatureIndexOptions opts;
  opts.num_partitions = 4;
  opts.quantized_min_rows = 1;
  return opts;
}

/// Mirrored fp32 options: quantization off, so every partition carries
/// the version-3 fp32 mirror instead of int8 codes.
FeatureIndexOptions F32Options() {
  FeatureIndexOptions opts;
  opts.num_partitions = 4;
  opts.quantized_scan = false;
  opts.exact_precision = ExactPrecision::kF32;
  return opts;
}

uint64_t TestFnv(const char* data, size_t n) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Frames `payload` under the given 10-byte magic with a consistent
/// length + checksum header, so parse attempts reach the payload
/// readers instead of failing at the frame.
std::string TestFrame(const std::string& magic, const char* payload,
                      size_t n) {
  std::string out = magic;
  uint64_t fields[2] = {n, TestFnv(payload, n)};
  for (uint64_t v : fields) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  out.append(payload, n);
  return out;
}

/// Down-converts a freshly serialized version-3 index snapshot to a
/// genuine version-2 file: drops the options' exact-precision field
/// and every partition's mirror block (max-abs + two float arrays),
/// rewrites the magic, and re-frames with a fresh length + checksum.
/// Mirrors the documented v2 layout so read-compat is tested against
/// real old bytes, not against the current writer.
std::string DownConvertToV2(const std::string& v3) {
  const size_t kHeader = 10 + 16;  // magic + size + checksum
  const char* p = v3.data() + kHeader;
  const size_t size = v3.size() - kHeader;
  size_t pos = 0;
  auto u64_at = [&](size_t at) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(p[at + i]))
           << (8 * i);
    }
    return v;
  };
  std::string out;
  auto copy = [&](size_t n) {
    out.append(p + pos, n);
    pos += n;
  };
  auto skip = [&](size_t n) { pos += n; };
  // epoch, dim, max_partition_size, num_partitions, seed,
  // quantized_scan, quantized_min_rows, quant_bits.
  copy(8 * 8);
  skip(8);      // exact_precision: the field version 3 added
  copy(8 * 2);  // max_threads, grain
  copy(8 * 2);  // references rows, cols
  copy(8 + u64_at(pos) * 8);  // references data
  const uint64_t nparts = u64_at(pos);
  copy(8);
  for (uint64_t i = 0; i < nparts; ++i) {
    copy(8 * 7);                // six doubles + quant_bits
    copy(8 + u64_at(pos) * 8);  // record_indices
    copy(8 + u64_at(pos) * 8);  // block
    copy(8 + u64_at(pos) * 8);  // norms_sq
    copy(8 + u64_at(pos) * 8);  // quant_offsets
    copy(8 + u64_at(pos));      // quant_codes
    skip(8);                    // mirror_max_abs: version 3
    skip(8 + u64_at(pos) * 4);  // block_f32: version 3
    skip(8 + u64_at(pos) * 4);  // norms_f32: version 3
  }
  EXPECT_EQ(pos, size) << "v3 payload walk desynchronized";
  return TestFrame("MOCEMGIX2\n", out.data(), out.size());
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(10.0, 15.0);
  }
  return queries;
}

void ExpectHitsEqual(const std::vector<QueryHit>& a,
                     const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_index, b[i].record_index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(IndexSnapshotTest, SerializeRequiresBuiltIndex) {
  FeatureIndex empty;
  EXPECT_FALSE(SerializeFeatureIndex(empty).ok());
}

// The round trip must be bit-exact: a reloaded index re-serializes to
// the same bytes, and answers queries — exact AND coarse — with the
// same bits as the original.
TEST(IndexSnapshotTest, RoundTripBitIdentity) {
  MotionDatabase db = MakeDb(120, 9, 31);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->has_quantized_tier());

  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  auto loaded = DeserializeFeatureIndex(*bytes, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->built_epoch(), index->built_epoch());
  EXPECT_EQ(loaded->num_partitions(), index->num_partitions());
  EXPECT_TRUE(loaded->has_quantized_tier());

  auto again = SerializeFeatureIndex(*loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again) << "reload must re-serialize byte-for-byte";

  for (const auto& q : MakeQueries(12, 9, 32)) {
    auto a = index->NearestNeighbors(q, 5);
    auto b = loaded->NearestNeighbors(q, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
    double bound_a = 0.0, bound_b = 0.0;
    auto ca = index->CoarseNearestNeighbors(q, 5, &bound_a);
    auto cb = loaded->CoarseNearestNeighbors(q, 5, &bound_b);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ExpectHitsEqual(*ca, *cb);
    EXPECT_EQ(bound_a, bound_b);
  }
}

TEST(IndexSnapshotTest, SaveCommitsAtomicallyAndLoads) {
  MotionDatabase db = MakeDb(80, 5, 33);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_snapshot.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());
  // The temporary staging file must be gone after the commit.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  auto loaded = LoadFeatureIndex(path, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->built_epoch(), db.epoch());
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, BitFlipCorruptionDetectedAndRecovered) {
  MotionDatabase db = MakeDb(90, 6, 34);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_bitflip.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotBitFlip(path).ok());
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].type, ServingFaultType::kSnapshotBitFlip);

  auto direct = LoadFeatureIndex(path, &db);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kParseError)
      << direct.status();

  // The recovery path degrades to a rebuild, never to wrong answers.
  IndexSnapshotLoadInfo info;
  auto recovered =
      LoadOrRebuildFeatureIndex(path, &db, QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
  EXPECT_FALSE(info.fallback_reason.empty());
  EXPECT_EQ(recovered->built_epoch(), db.epoch());
  for (const auto& q : MakeQueries(6, 6, 35)) {
    auto a = recovered->NearestNeighbors(q, 3);
    auto b = db.NearestNeighbors(q, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, TruncationDetectedAndRecovered) {
  MotionDatabase db = MakeDb(70, 4, 36);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_trunc.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotTruncate(path).ok());

  auto direct = LoadFeatureIndex(path, &db);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kParseError)
      << direct.status();
  EXPECT_NE(direct.status().message().find("truncated"), std::string::npos)
      << "truncation should be reported distinctly: " << direct.status();

  IndexSnapshotLoadInfo info;
  auto recovered =
      LoadOrRebuildFeatureIndex(path, &db, QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(info.rebuilt);
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, MissingFileFallsBackToRebuild) {
  MotionDatabase db = MakeDb(30, 3, 37);
  IndexSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildFeatureIndex(
      ::testing::TempDir() + "/idx_does_not_exist.bin", &db,
      QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
}

// A snapshot from an older database epoch must not serve silently —
// the recovery path rebuilds against the current epoch.
TEST(IndexSnapshotTest, StaleEpochTriggersRebuild) {
  MotionDatabase db = MakeDb(60, 4, 38);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_stale.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());
  ASSERT_TRUE(db.UpdateFeature(0, db.record(1).feature).ok());

  IndexSnapshotLoadInfo info;
  auto recovered =
      LoadOrRebuildFeatureIndex(path, &db, QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
  EXPECT_NE(info.fallback_reason.find("epoch"), std::string::npos);
  EXPECT_EQ(recovered->built_epoch(), db.epoch());
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, DimensionMismatchRejected) {
  MotionDatabase db = MakeDb(40, 5, 39);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  MotionDatabase other = MakeDb(40, 7, 40);
  auto loaded = DeserializeFeatureIndex(*bytes, &other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(IndexSnapshotTest, GarbageAndShortFilesRejected) {
  MotionDatabase db = MakeDb(20, 3, 41);
  EXPECT_FALSE(DeserializeFeatureIndex("", &db).ok());
  EXPECT_FALSE(DeserializeFeatureIndex("not a snapshot", &db).ok());
  std::string wrong_magic(64, '\0');
  EXPECT_FALSE(DeserializeFeatureIndex(wrong_magic, &db).ok());
}

// A 4-bit index round-trips with its code width intact: the reloaded
// index reports quant_bits = 4, re-serializes byte-for-byte, and
// answers — exact AND coarse, with the certified bound — bit-identically.
TEST(IndexSnapshotTest, FourBitRoundTripPreservesCodeWidth) {
  MotionDatabase db = MakeDb(120, 9, 55);
  FeatureIndexOptions opts = QuantizedOptions();
  opts.quant_bits = 4;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  ASSERT_TRUE(index->has_quantized_tier());

  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  auto loaded = DeserializeFeatureIndex(*bytes, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().quant_bits, 4u);
  EXPECT_TRUE(loaded->has_quantized_tier());
  auto again = SerializeFeatureIndex(*loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again);

  for (const auto& q : MakeQueries(10, 9, 56)) {
    auto a = index->NearestNeighbors(q, 5);
    auto b = loaded->NearestNeighbors(q, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
    double bound_a = 0.0, bound_b = 0.0;
    auto ca = index->CoarseNearestNeighbors(q, 5, &bound_a);
    auto cb = loaded->CoarseNearestNeighbors(q, 5, &bound_b);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ExpectHitsEqual(*ca, *cb);
    EXPECT_EQ(bound_a, bound_b);
  }
}

// Version-1 snapshots predate the code-width field; the reader must
// refuse them with the *detected* version named and the supported
// range, so the operator knows to regenerate rather than debug.
TEST(IndexSnapshotTest, VersionOneMagicRejected) {
  MotionDatabase db = MakeDb(60, 5, 57);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  std::string v1 = *bytes;
  ASSERT_EQ(v1.compare(0, 10, "MOCEMGIX3\n"), 0);
  v1.replace(0, 10, "MOCEMGIX1\n");
  auto loaded = DeserializeFeatureIndex(v1, &db);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("container version 1"),
            std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find("2..3"), std::string::npos)
      << loaded.status();
}

// A snapshot from a *newer* writer is refused the same way — named
// version, supported range, regeneration hint — never mis-parsed.
TEST(IndexSnapshotTest, FutureVersionRejectedWithDetectedVersion) {
  MotionDatabase db = MakeDb(40, 4, 59);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  std::string v4 = *bytes;
  v4.replace(0, 10, "MOCEMGIX4\n");
  auto loaded = DeserializeFeatureIndex(v4, &db);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("container version 4"),
            std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().message().find("regenerate"), std::string::npos)
      << loaded.status();
}

// A stored width that disagrees with the partition's code array must be
// rejected even when the checksum is valid — i.e. the width is part of
// the validated structure, not advisory. We forge the mismatch by
// flipping u64 fields holding 4 to 8 and recomputing the FNV-1a64
// payload checksum; the edit that hits a partition's quant_bits makes
// the 4-bit code array the wrong size for an 8-bit width.
TEST(IndexSnapshotTest, CodeWidthMismatchRejected) {
  MotionDatabase db = MakeDb(60, 5, 58);  // odd dim: 4-bit stride differs
  FeatureIndexOptions opts = QuantizedOptions();
  opts.quant_bits = 4;
  opts.num_partitions = 1;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  ASSERT_TRUE(index->has_quantized_tier());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());

  const size_t kMagicLen = 10;
  const size_t payload_off = kMagicLen + 16;  // size + checksum
  ASSERT_GT(bytes->size(), payload_off);
  auto fnv = [](const char* data, size_t n) {
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
    return h;
  };
  auto put_u64 = [](std::string* s, size_t off, uint64_t v) {
    for (size_t i = 0; i < 8; ++i) {
      (*s)[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  };
  bool width_rejected = false;
  for (size_t off = payload_off; off + 8 <= bytes->size(); ++off) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= uint64_t(static_cast<unsigned char>((*bytes)[off + i]))
           << (8 * i);
    }
    if (v != 4) continue;
    std::string forged = *bytes;
    put_u64(&forged, off, 8);
    put_u64(&forged, kMagicLen + 8,
            fnv(forged.data() + payload_off, forged.size() - payload_off));
    auto loaded = DeserializeFeatureIndex(forged, &db);
    if (loaded.ok()) continue;  // e.g. the rebuild-options copy of the width
    if (loaded.status().message().find("width implies") !=
        std::string::npos) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
      width_rejected = true;
    }
  }
  EXPECT_TRUE(width_rejected)
      << "no forged width mismatch was rejected by the size validation";
}

// A version-3 snapshot of an fp32-tier index round-trips everything:
// the resolved precision, the mirrors (the reload re-serializes
// byte-for-byte, mirror blocks included), and the reload still scans
// through the fp32 tier — with answers bit-identical to the original.
TEST(IndexSnapshotTest, F32MirrorRoundTripBitIdentity) {
  MotionDatabase db = MakeDb(120, 9, 60);
  auto index = FeatureIndex::Build(&db, F32Options());
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->options().exact_precision, ExactPrecision::kF32);

  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->compare(0, 10, "MOCEMGIX3\n"), 0);
  auto loaded = DeserializeFeatureIndex(*bytes, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().exact_precision, ExactPrecision::kF32);
  auto again = SerializeFeatureIndex(*loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again)
      << "reload must re-serialize byte-for-byte, mirrors included";

  IndexQueryStats orig_stats, load_stats;
  for (const auto& q : MakeQueries(12, 9, 61)) {
    auto a = index->NearestNeighbors(q, 5, &orig_stats);
    auto b = loaded->NearestNeighbors(q, 5, &load_stats);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }
  EXPECT_GT(orig_stats.f32_scans, 0u) << "fp32 tier never engaged";
  EXPECT_EQ(load_stats.f32_scans, orig_stats.f32_scans);
  EXPECT_EQ(load_stats.f32_refined, orig_stats.f32_refined);
}

// Down-converted version-2 bytes (no precision field, no mirrors)
// still load: as concrete f64, answering bit-identically to an f64
// build, and re-saving upgrades them to a valid version-3 snapshot.
TEST(IndexSnapshotTest, VersionTwoReadCompatLoadsAsF64) {
  MotionDatabase db = MakeDb(110, 7, 62);
  FeatureIndexOptions opts = QuantizedOptions();
  opts.exact_precision = ExactPrecision::kF64;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());

  const std::string v2 = DownConvertToV2(*bytes);
  auto loaded = DeserializeFeatureIndex(v2, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().exact_precision, ExactPrecision::kF64);
  IndexQueryStats stats;
  for (const auto& q : MakeQueries(10, 7, 63)) {
    auto a = index->NearestNeighbors(q, 5);
    auto b = loaded->NearestNeighbors(q, 5, &stats);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }
  EXPECT_EQ(stats.f32_scans, 0u) << "a v2 load must carry no mirrors";

  // Re-saving the loaded index writes current-version bytes.
  auto upgraded = SerializeFeatureIndex(*loaded);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_EQ(upgraded->compare(0, 10, "MOCEMGIX3\n"), 0);
  EXPECT_TRUE(DeserializeFeatureIndex(*upgraded, &db).ok());
  // And matches what the v3 writer produced for the same index.
  EXPECT_EQ(*upgraded, *bytes);
}

// A v2 file whose quantization is off must also load (its partitions
// end right after the empty code array).
TEST(IndexSnapshotTest, VersionTwoReadCompatUnquantized) {
  MotionDatabase db = MakeDb(80, 5, 64);
  FeatureIndexOptions opts;
  opts.num_partitions = 3;
  opts.quantized_scan = false;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  auto loaded = DeserializeFeatureIndex(DownConvertToV2(*bytes), &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (const auto& q : MakeQueries(6, 5, 65)) {
    auto a = index->NearestNeighbors(q, 3);
    auto b = loaded->NearestNeighbors(q, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }
}

/// Cuts `snapshot`'s payload to every possible length and re-frames
/// each cut with a consistent header, so the parse reaches the payload
/// readers; every cut must fail with ParseError — classified, in
/// bounds (the asan run enforces no over-read), never accepted.
void SweepPayloadTruncations(const std::string& snapshot,
                             const MotionDatabase& db) {
  const size_t kHeader = 10 + 16;
  ASSERT_GT(snapshot.size(), kHeader);
  const std::string magic = snapshot.substr(0, 10);
  const char* payload = snapshot.data() + kHeader;
  const size_t payload_size = snapshot.size() - kHeader;
  for (size_t cut = 0; cut < payload_size; ++cut) {
    const std::string forged = TestFrame(magic, payload, cut);
    auto loaded = DeserializeFeatureIndex(forged, &db);
    ASSERT_FALSE(loaded.ok()) << "cut at payload byte " << cut
                              << " of " << payload_size << " accepted";
    ASSERT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "cut at payload byte " << cut << ": " << loaded.status();
  }
  // Raw file prefixes (no re-framing) exercise the header-level
  // classification: too short for a header, then length mismatch.
  for (size_t cut : {size_t{0}, size_t{5}, size_t{10}, size_t{25},
                     kHeader, snapshot.size() - 1}) {
    auto loaded = DeserializeFeatureIndex(snapshot.substr(0, cut), &db);
    ASSERT_FALSE(loaded.ok()) << "raw prefix of " << cut << " accepted";
  }
}

// Every truncation point of a version-3 snapshot — options block,
// partition headers, double blocks, and the mirror blocks new in v3 —
// is rejected as ParseError without reading out of bounds.
TEST(IndexSnapshotTest, TruncationSweepVersionThree) {
  MotionDatabase db = MakeDb(40, 4, 66);
  FeatureIndexOptions opts = F32Options();
  opts.num_partitions = 2;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  SweepPayloadTruncations(*bytes, db);
}

// The same sweep over genuine version-2 bytes: the compat path's
// readers are held to the same bounds discipline.
TEST(IndexSnapshotTest, TruncationSweepVersionTwo) {
  MotionDatabase db = MakeDb(40, 4, 67);
  FeatureIndexOptions opts = QuantizedOptions();
  opts.num_partitions = 2;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  SweepPayloadTruncations(DownConvertToV2(*bytes), db);
}

// A forged mirror inside an otherwise valid, checksummed v3 payload —
// float block sized for every row but a norms array that disagrees —
// must be rejected by the all-or-nothing mirror check, not scanned.
TEST(IndexSnapshotTest, ForgedMirrorCountRejected) {
  MotionDatabase db = MakeDb(30, 3, 68);
  FeatureIndexOptions opts = F32Options();
  opts.num_partitions = 1;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  const size_t kHeader = 10 + 16;
  const char* payload = bytes->data() + kHeader;
  const size_t payload_size = bytes->size() - kHeader;
  // The final field of the payload is norms_f32: count u64 + 30
  // floats. Flip its count to 7 and drop the excess floats.
  const size_t count_off = payload_size - 8 - 30 * 4;
  std::string forged(payload, count_off);
  for (int i = 0; i < 8; ++i) {
    forged.push_back(static_cast<char>(i == 0 ? 7 : 0));
  }
  forged.append(payload + count_off + 8, 7 * 4);
  auto loaded = DeserializeFeatureIndex(
      TestFrame("MOCEMGIX3\n", forged.data(), forged.size()), &db);
  ASSERT_FALSE(loaded.ok()) << "forged mirror accepted";
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("mirror malformed"),
            std::string::npos)
      << loaded.status();
}

ShardedIndexOptions QuantizedShardedOptions(size_t shards) {
  ShardedIndexOptions opts;
  opts.index = QuantizedOptions();
  opts.num_shards = shards;
  return opts;
}

void ExpectShardedAnswersEqual(const ShardedFeatureIndex& a,
                               const ShardedFeatureIndex& b,
                               size_t dim, uint64_t seed) {
  for (const auto& q : MakeQueries(10, dim, seed)) {
    auto ha = a.NearestNeighbors(q, 5);
    auto hb = b.NearestNeighbors(q, 5);
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(hb.ok());
    ExpectHitsEqual(*ha, *hb);
    double bound_a = 0.0, bound_b = 0.0;
    auto ca = a.CoarseNearestNeighbors(q, 5, &bound_a);
    auto cb = b.CoarseNearestNeighbors(q, 5, &bound_b);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ExpectHitsEqual(*ca, *cb);
    EXPECT_EQ(bound_a, bound_b);
  }
}

TEST(ShardedSnapshotTest, SaveRequiresBuiltIndex) {
  ShardedFeatureIndex empty;
  EXPECT_FALSE(
      SaveShardedFeatureIndex(empty, ::testing::TempDir() + "/sh_nope")
          .ok());
}

TEST(ShardedSnapshotTest, RoundTripBitIdentity) {
  MotionDatabase db = MakeDb(150, 8, 42);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(3));
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->has_quantized_tier());
  const std::string path = ::testing::TempDir() + "/sh_roundtrip";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  auto loaded = LoadShardedFeatureIndex(path, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_shards(), index->num_shards());
  EXPECT_EQ(loaded->num_partitions(), index->num_partitions());
  EXPECT_EQ(loaded->applied_epoch(), index->applied_epoch());
  EXPECT_EQ(loaded->shard_epochs(), index->shard_epochs());
  ExpectShardedAnswersEqual(*index, *loaded, 8, 43);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// The sharded save/load cycle preserves the fp32 tier: the reloaded
// shards carry their mirrors (the digest covers them), the precision
// survives in the manifest, and answers stay bit-identical — with the
// fp32 tier demonstrably engaged on both sides.
TEST(ShardedSnapshotTest, F32RoundTripBitIdentity) {
  MotionDatabase db = MakeDb(150, 8, 70);
  ShardedIndexOptions opts;
  opts.index = F32Options();
  opts.num_shards = 3;
  auto index = ShardedFeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  const std::string path = ::testing::TempDir() + "/sh_f32";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  auto loaded = LoadShardedFeatureIndex(path, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().index.exact_precision, ExactPrecision::kF32);
  IndexQueryStats orig_stats, load_stats;
  for (const auto& q : MakeQueries(10, 8, 71)) {
    auto a = index->NearestNeighbors(q, 5, &orig_stats);
    auto b = loaded->NearestNeighbors(q, 5, &load_stats);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }
  EXPECT_GT(orig_stats.f32_scans, 0u) << "fp32 tier never engaged";
  EXPECT_EQ(load_stats.f32_scans, orig_stats.f32_scans);
  EXPECT_EQ(load_stats.f32_refined, orig_stats.f32_refined);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// Payload truncations of the manifest — re-framed so the header is
// consistent and the parse reaches the field readers — are always
// rejected; the strict loader never assembles an index from them.
TEST(ShardedSnapshotTest, ManifestTruncationSweepRejected) {
  MotionDatabase db = MakeDb(60, 4, 72);
  ShardedIndexOptions opts;
  opts.index = F32Options();
  opts.index.num_partitions = 2;
  opts.num_shards = 2;
  auto index = ShardedFeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  const std::string path = ::testing::TempDir() + "/sh_trunc_sweep";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());
  auto manifest = ReadFileToString(path);
  ASSERT_TRUE(manifest.ok());
  const size_t kHeader = 10 + 16;
  const char* payload = manifest->data() + kHeader;
  const size_t payload_size = manifest->size() - kHeader;
  // Stride 8 keeps the file-per-cut I/O bounded while still landing on
  // every u64 field boundary; the tail is swept byte-by-byte to hit
  // the digest block's interior.
  for (size_t cut = 0; cut < payload_size;
       cut += (payload_size - cut <= 40 ? 1 : 8)) {
    const std::string forged =
        TestFrame(manifest->substr(0, 10), payload, cut);
    ASSERT_TRUE(WriteStringToFile(path, forged).ok());
    EXPECT_FALSE(LoadShardedFeatureIndex(path, &db).ok())
        << "manifest cut at payload byte " << cut << " accepted";
  }
  std::remove(path.c_str());
  for (size_t s = 0; s < 2; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// One corrupted shard file repacks only that shard — the manifest
// carries the layout, so k-means is not re-run and the other shards
// load untouched.
TEST(ShardedSnapshotTest, SingleShardCorruptionRepacksOnlyThatShard) {
  MotionDatabase db = MakeDb(140, 7, 44);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(3));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_oneshard";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotBitFlip(path + ".shard1").ok());

  // Strict load refuses the damaged generation outright.
  EXPECT_FALSE(LoadShardedFeatureIndex(path, &db).ok());

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(3), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_FALSE(info.rebuilt) << "a shard repack is not a full rebuild";
  ASSERT_EQ(info.rebuilt_shards.size(), 1u);
  EXPECT_EQ(info.rebuilt_shards[0], 1u);
  EXPECT_FALSE(info.fallback_reason.empty());
  ExpectShardedAnswersEqual(*index, *recovered, 7, 45);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(ShardedSnapshotTest, MissingShardFileRepacked) {
  MotionDatabase db = MakeDb(100, 6, 46);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(2));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_missing";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());
  ASSERT_EQ(std::remove((path + ".shard0").c_str()), 0);

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(2), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.rebuilt);
  ASSERT_EQ(info.rebuilt_shards.size(), 1u);
  EXPECT_EQ(info.rebuilt_shards[0], 0u);
  ExpectShardedAnswersEqual(*index, *recovered, 6, 47);

  std::remove(path.c_str());
  std::remove((path + ".shard1").c_str());
}

// An unusable manifest can't vouch for any shard file: the whole
// index rebuilds from the database.
TEST(ShardedSnapshotTest, ManifestCorruptionTriggersFullRebuild) {
  MotionDatabase db = MakeDb(110, 6, 48);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(3));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_manifest";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotTruncate(path).ok());

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(3), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
  EXPECT_TRUE(info.rebuilt_shards.empty());
  EXPECT_FALSE(info.fallback_reason.empty());
  ExpectShardedAnswersEqual(*index, *recovered, 6, 49);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// A manifest from an older database epoch must not serve silently.
TEST(ShardedSnapshotTest, StaleEpochTriggersFullRebuild) {
  MotionDatabase db = MakeDb(90, 5, 50);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(2));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_stale";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());
  ASSERT_TRUE(db.UpdateFeature(0, db.record(1).feature).ok());

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(2), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(info.rebuilt);
  EXPECT_NE(info.fallback_reason.find("epoch"), std::string::npos)
      << info.fallback_reason;
  EXPECT_EQ(recovered->applied_epoch(), db.epoch());
  for (const auto& q : MakeQueries(6, 5, 51)) {
    auto a = recovered->NearestNeighbors(q, 3);
    auto b = db.NearestNeighbors(q, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }

  std::remove(path.c_str());
  for (size_t s = 0; s < 2; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// A shard file swapped in from a different save generation carries a
// valid checksum of its own, but the manifest's digest disowns it.
TEST(ShardedSnapshotTest, CrossGenerationShardFileRejected) {
  MotionDatabase db = MakeDb(120, 6, 52);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(2));
  ASSERT_TRUE(index.ok());
  const std::string path_a = ::testing::TempDir() + "/sh_gen_a";
  const std::string path_b = ::testing::TempDir() + "/sh_gen_b";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path_a).ok());
  // A second generation over a mutated database: same shapes, but the
  // mutated record's owning shard packs to new bytes.
  ASSERT_TRUE(db.UpdateFeature(3, db.record(4).feature).ok());
  ASSERT_TRUE(index->ApplyUpdate(3).ok());
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path_b).ok());
  auto owner = index->ShardOfRecord(3);
  ASSERT_TRUE(owner.ok());
  const std::string spliced =
      ".shard" + std::to_string(*owner);
  // Splice generation A's copy of that shard under B's manifest.
  auto old_shard = ReadFileToString(path_a + spliced);
  ASSERT_TRUE(old_shard.ok());
  ASSERT_TRUE(WriteStringToFile(path_b + spliced, *old_shard).ok());

  EXPECT_FALSE(LoadShardedFeatureIndex(path_b, &db).ok());
  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path_b, &db, QuantizedShardedOptions(2), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.rebuilt);
  ASSERT_EQ(info.rebuilt_shards.size(), 1u);
  EXPECT_EQ(info.rebuilt_shards[0], *owner);
  ExpectShardedAnswersEqual(*index, *recovered, 6, 53);

  for (const std::string& p : {path_a, path_b}) {
    std::remove(p.c_str());
    for (size_t s = 0; s < 2; ++s) {
      std::remove((p + ".shard" + std::to_string(s)).c_str());
    }
  }
}

}  // namespace
}  // namespace mocemg
