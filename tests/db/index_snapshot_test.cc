#include "db/index_snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "db/serving_faults.h"
#include "util/csv.h"
#include "util/random.h"

namespace mocemg {
namespace {

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 4;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 4) * 20.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    EXPECT_TRUE(db.Insert(std::move(r)).ok());
  }
  return db;
}

/// Small partitions still get int8 codes, so the snapshot covers the
/// quantized tier at test scale.
FeatureIndexOptions QuantizedOptions() {
  FeatureIndexOptions opts;
  opts.num_partitions = 4;
  opts.quantized_min_rows = 1;
  return opts;
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(10.0, 15.0);
  }
  return queries;
}

void ExpectHitsEqual(const std::vector<QueryHit>& a,
                     const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record_index, b[i].record_index);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(IndexSnapshotTest, SerializeRequiresBuiltIndex) {
  FeatureIndex empty;
  EXPECT_FALSE(SerializeFeatureIndex(empty).ok());
}

// The round trip must be bit-exact: a reloaded index re-serializes to
// the same bytes, and answers queries — exact AND coarse — with the
// same bits as the original.
TEST(IndexSnapshotTest, RoundTripBitIdentity) {
  MotionDatabase db = MakeDb(120, 9, 31);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->has_quantized_tier());

  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  auto loaded = DeserializeFeatureIndex(*bytes, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->built_epoch(), index->built_epoch());
  EXPECT_EQ(loaded->num_partitions(), index->num_partitions());
  EXPECT_TRUE(loaded->has_quantized_tier());

  auto again = SerializeFeatureIndex(*loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again) << "reload must re-serialize byte-for-byte";

  for (const auto& q : MakeQueries(12, 9, 32)) {
    auto a = index->NearestNeighbors(q, 5);
    auto b = loaded->NearestNeighbors(q, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
    double bound_a = 0.0, bound_b = 0.0;
    auto ca = index->CoarseNearestNeighbors(q, 5, &bound_a);
    auto cb = loaded->CoarseNearestNeighbors(q, 5, &bound_b);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ExpectHitsEqual(*ca, *cb);
    EXPECT_EQ(bound_a, bound_b);
  }
}

TEST(IndexSnapshotTest, SaveCommitsAtomicallyAndLoads) {
  MotionDatabase db = MakeDb(80, 5, 33);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_snapshot.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());
  // The temporary staging file must be gone after the commit.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  auto loaded = LoadFeatureIndex(path, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->built_epoch(), db.epoch());
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, BitFlipCorruptionDetectedAndRecovered) {
  MotionDatabase db = MakeDb(90, 6, 34);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_bitflip.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotBitFlip(path).ok());
  ASSERT_EQ(injector.events().size(), 1u);
  EXPECT_EQ(injector.events()[0].type, ServingFaultType::kSnapshotBitFlip);

  auto direct = LoadFeatureIndex(path, &db);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kParseError)
      << direct.status();

  // The recovery path degrades to a rebuild, never to wrong answers.
  IndexSnapshotLoadInfo info;
  auto recovered =
      LoadOrRebuildFeatureIndex(path, &db, QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
  EXPECT_FALSE(info.fallback_reason.empty());
  EXPECT_EQ(recovered->built_epoch(), db.epoch());
  for (const auto& q : MakeQueries(6, 6, 35)) {
    auto a = recovered->NearestNeighbors(q, 3);
    auto b = db.NearestNeighbors(q, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, TruncationDetectedAndRecovered) {
  MotionDatabase db = MakeDb(70, 4, 36);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_trunc.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotTruncate(path).ok());

  auto direct = LoadFeatureIndex(path, &db);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kParseError)
      << direct.status();
  EXPECT_NE(direct.status().message().find("truncated"), std::string::npos)
      << "truncation should be reported distinctly: " << direct.status();

  IndexSnapshotLoadInfo info;
  auto recovered =
      LoadOrRebuildFeatureIndex(path, &db, QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(info.rebuilt);
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, MissingFileFallsBackToRebuild) {
  MotionDatabase db = MakeDb(30, 3, 37);
  IndexSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildFeatureIndex(
      ::testing::TempDir() + "/idx_does_not_exist.bin", &db,
      QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
}

// A snapshot from an older database epoch must not serve silently —
// the recovery path rebuilds against the current epoch.
TEST(IndexSnapshotTest, StaleEpochTriggersRebuild) {
  MotionDatabase db = MakeDb(60, 4, 38);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/idx_stale.bin";
  ASSERT_TRUE(SaveFeatureIndex(*index, path).ok());
  ASSERT_TRUE(db.UpdateFeature(0, db.record(1).feature).ok());

  IndexSnapshotLoadInfo info;
  auto recovered =
      LoadOrRebuildFeatureIndex(path, &db, QuantizedOptions(), &info);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
  EXPECT_NE(info.fallback_reason.find("epoch"), std::string::npos);
  EXPECT_EQ(recovered->built_epoch(), db.epoch());
  std::remove(path.c_str());
}

TEST(IndexSnapshotTest, DimensionMismatchRejected) {
  MotionDatabase db = MakeDb(40, 5, 39);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  MotionDatabase other = MakeDb(40, 7, 40);
  auto loaded = DeserializeFeatureIndex(*bytes, &other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(IndexSnapshotTest, GarbageAndShortFilesRejected) {
  MotionDatabase db = MakeDb(20, 3, 41);
  EXPECT_FALSE(DeserializeFeatureIndex("", &db).ok());
  EXPECT_FALSE(DeserializeFeatureIndex("not a snapshot", &db).ok());
  std::string wrong_magic(64, '\0');
  EXPECT_FALSE(DeserializeFeatureIndex(wrong_magic, &db).ok());
}

// A 4-bit index round-trips with its code width intact: the reloaded
// index reports quant_bits = 4, re-serializes byte-for-byte, and
// answers — exact AND coarse, with the certified bound — bit-identically.
TEST(IndexSnapshotTest, FourBitRoundTripPreservesCodeWidth) {
  MotionDatabase db = MakeDb(120, 9, 55);
  FeatureIndexOptions opts = QuantizedOptions();
  opts.quant_bits = 4;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  ASSERT_TRUE(index->has_quantized_tier());

  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  auto loaded = DeserializeFeatureIndex(*bytes, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->options().quant_bits, 4u);
  EXPECT_TRUE(loaded->has_quantized_tier());
  auto again = SerializeFeatureIndex(*loaded);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again);

  for (const auto& q : MakeQueries(10, 9, 56)) {
    auto a = index->NearestNeighbors(q, 5);
    auto b = loaded->NearestNeighbors(q, 5);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
    double bound_a = 0.0, bound_b = 0.0;
    auto ca = index->CoarseNearestNeighbors(q, 5, &bound_a);
    auto cb = loaded->CoarseNearestNeighbors(q, 5, &bound_b);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ExpectHitsEqual(*ca, *cb);
    EXPECT_EQ(bound_a, bound_b);
  }
}

// Version-1 snapshots predate the code-width field; the reader must
// refuse them by magic, with a message that says why.
TEST(IndexSnapshotTest, VersionOneMagicRejected) {
  MotionDatabase db = MakeDb(60, 5, 57);
  auto index = FeatureIndex::Build(&db, QuantizedOptions());
  ASSERT_TRUE(index.ok());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());
  std::string v1 = *bytes;
  ASSERT_EQ(v1.compare(0, 10, "MOCEMGIX2\n"), 0);
  v1.replace(0, 10, "MOCEMGIX1\n");
  auto loaded = DeserializeFeatureIndex(v1, &db);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find("MOCEMGIX2"), std::string::npos)
      << loaded.status();
}

// A stored width that disagrees with the partition's code array must be
// rejected even when the checksum is valid — i.e. the width is part of
// the validated structure, not advisory. We forge the mismatch by
// flipping u64 fields holding 4 to 8 and recomputing the FNV-1a64
// payload checksum; the edit that hits a partition's quant_bits makes
// the 4-bit code array the wrong size for an 8-bit width.
TEST(IndexSnapshotTest, CodeWidthMismatchRejected) {
  MotionDatabase db = MakeDb(60, 5, 58);  // odd dim: 4-bit stride differs
  FeatureIndexOptions opts = QuantizedOptions();
  opts.quant_bits = 4;
  opts.num_partitions = 1;
  auto index = FeatureIndex::Build(&db, opts);
  ASSERT_TRUE(index.ok()) << index.status();
  ASSERT_TRUE(index->has_quantized_tier());
  auto bytes = SerializeFeatureIndex(*index);
  ASSERT_TRUE(bytes.ok());

  const size_t kMagicLen = 10;
  const size_t payload_off = kMagicLen + 16;  // size + checksum
  ASSERT_GT(bytes->size(), payload_off);
  auto fnv = [](const char* data, size_t n) {
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
    return h;
  };
  auto put_u64 = [](std::string* s, size_t off, uint64_t v) {
    for (size_t i = 0; i < 8; ++i) {
      (*s)[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  };
  bool width_rejected = false;
  for (size_t off = payload_off; off + 8 <= bytes->size(); ++off) {
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= uint64_t(static_cast<unsigned char>((*bytes)[off + i]))
           << (8 * i);
    }
    if (v != 4) continue;
    std::string forged = *bytes;
    put_u64(&forged, off, 8);
    put_u64(&forged, kMagicLen + 8,
            fnv(forged.data() + payload_off, forged.size() - payload_off));
    auto loaded = DeserializeFeatureIndex(forged, &db);
    if (loaded.ok()) continue;  // e.g. the rebuild-options copy of the width
    if (loaded.status().message().find("width implies") !=
        std::string::npos) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
      width_rejected = true;
    }
  }
  EXPECT_TRUE(width_rejected)
      << "no forged width mismatch was rejected by the size validation";
}

ShardedIndexOptions QuantizedShardedOptions(size_t shards) {
  ShardedIndexOptions opts;
  opts.index = QuantizedOptions();
  opts.num_shards = shards;
  return opts;
}

void ExpectShardedAnswersEqual(const ShardedFeatureIndex& a,
                               const ShardedFeatureIndex& b,
                               size_t dim, uint64_t seed) {
  for (const auto& q : MakeQueries(10, dim, seed)) {
    auto ha = a.NearestNeighbors(q, 5);
    auto hb = b.NearestNeighbors(q, 5);
    ASSERT_TRUE(ha.ok());
    ASSERT_TRUE(hb.ok());
    ExpectHitsEqual(*ha, *hb);
    double bound_a = 0.0, bound_b = 0.0;
    auto ca = a.CoarseNearestNeighbors(q, 5, &bound_a);
    auto cb = b.CoarseNearestNeighbors(q, 5, &bound_b);
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    ExpectHitsEqual(*ca, *cb);
    EXPECT_EQ(bound_a, bound_b);
  }
}

TEST(ShardedSnapshotTest, SaveRequiresBuiltIndex) {
  ShardedFeatureIndex empty;
  EXPECT_FALSE(
      SaveShardedFeatureIndex(empty, ::testing::TempDir() + "/sh_nope")
          .ok());
}

TEST(ShardedSnapshotTest, RoundTripBitIdentity) {
  MotionDatabase db = MakeDb(150, 8, 42);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(3));
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->has_quantized_tier());
  const std::string path = ::testing::TempDir() + "/sh_roundtrip";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  auto loaded = LoadShardedFeatureIndex(path, &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_shards(), index->num_shards());
  EXPECT_EQ(loaded->num_partitions(), index->num_partitions());
  EXPECT_EQ(loaded->applied_epoch(), index->applied_epoch());
  EXPECT_EQ(loaded->shard_epochs(), index->shard_epochs());
  ExpectShardedAnswersEqual(*index, *loaded, 8, 43);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// One corrupted shard file repacks only that shard — the manifest
// carries the layout, so k-means is not re-run and the other shards
// load untouched.
TEST(ShardedSnapshotTest, SingleShardCorruptionRepacksOnlyThatShard) {
  MotionDatabase db = MakeDb(140, 7, 44);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(3));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_oneshard";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotBitFlip(path + ".shard1").ok());

  // Strict load refuses the damaged generation outright.
  EXPECT_FALSE(LoadShardedFeatureIndex(path, &db).ok());

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(3), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_FALSE(info.rebuilt) << "a shard repack is not a full rebuild";
  ASSERT_EQ(info.rebuilt_shards.size(), 1u);
  EXPECT_EQ(info.rebuilt_shards[0], 1u);
  EXPECT_FALSE(info.fallback_reason.empty());
  ExpectShardedAnswersEqual(*index, *recovered, 7, 45);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

TEST(ShardedSnapshotTest, MissingShardFileRepacked) {
  MotionDatabase db = MakeDb(100, 6, 46);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(2));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_missing";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());
  ASSERT_EQ(std::remove((path + ".shard0").c_str()), 0);

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(2), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.rebuilt);
  ASSERT_EQ(info.rebuilt_shards.size(), 1u);
  EXPECT_EQ(info.rebuilt_shards[0], 0u);
  ExpectShardedAnswersEqual(*index, *recovered, 6, 47);

  std::remove(path.c_str());
  std::remove((path + ".shard1").c_str());
}

// An unusable manifest can't vouch for any shard file: the whole
// index rebuilds from the database.
TEST(ShardedSnapshotTest, ManifestCorruptionTriggersFullRebuild) {
  MotionDatabase db = MakeDb(110, 6, 48);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(3));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_manifest";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());

  ServingFaultInjector injector(ServingFaultOptions{});
  ASSERT_TRUE(injector.CorruptSnapshotTruncate(path).ok());

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(3), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.loaded_from_snapshot);
  EXPECT_TRUE(info.rebuilt);
  EXPECT_TRUE(info.rebuilt_shards.empty());
  EXPECT_FALSE(info.fallback_reason.empty());
  ExpectShardedAnswersEqual(*index, *recovered, 6, 49);

  std::remove(path.c_str());
  for (size_t s = 0; s < 3; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// A manifest from an older database epoch must not serve silently.
TEST(ShardedSnapshotTest, StaleEpochTriggersFullRebuild) {
  MotionDatabase db = MakeDb(90, 5, 50);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(2));
  ASSERT_TRUE(index.ok());
  const std::string path = ::testing::TempDir() + "/sh_stale";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path).ok());
  ASSERT_TRUE(db.UpdateFeature(0, db.record(1).feature).ok());

  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path, &db, QuantizedShardedOptions(2), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(info.rebuilt);
  EXPECT_NE(info.fallback_reason.find("epoch"), std::string::npos)
      << info.fallback_reason;
  EXPECT_EQ(recovered->applied_epoch(), db.epoch());
  for (const auto& q : MakeQueries(6, 5, 51)) {
    auto a = recovered->NearestNeighbors(q, 3);
    auto b = db.NearestNeighbors(q, 3);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectHitsEqual(*a, *b);
  }

  std::remove(path.c_str());
  for (size_t s = 0; s < 2; ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
  }
}

// A shard file swapped in from a different save generation carries a
// valid checksum of its own, but the manifest's digest disowns it.
TEST(ShardedSnapshotTest, CrossGenerationShardFileRejected) {
  MotionDatabase db = MakeDb(120, 6, 52);
  auto index = ShardedFeatureIndex::Build(&db, QuantizedShardedOptions(2));
  ASSERT_TRUE(index.ok());
  const std::string path_a = ::testing::TempDir() + "/sh_gen_a";
  const std::string path_b = ::testing::TempDir() + "/sh_gen_b";
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path_a).ok());
  // A second generation over a mutated database: same shapes, but the
  // mutated record's owning shard packs to new bytes.
  ASSERT_TRUE(db.UpdateFeature(3, db.record(4).feature).ok());
  ASSERT_TRUE(index->ApplyUpdate(3).ok());
  ASSERT_TRUE(SaveShardedFeatureIndex(*index, path_b).ok());
  auto owner = index->ShardOfRecord(3);
  ASSERT_TRUE(owner.ok());
  const std::string spliced =
      ".shard" + std::to_string(*owner);
  // Splice generation A's copy of that shard under B's manifest.
  auto old_shard = ReadFileToString(path_a + spliced);
  ASSERT_TRUE(old_shard.ok());
  ASSERT_TRUE(WriteStringToFile(path_b + spliced, *old_shard).ok());

  EXPECT_FALSE(LoadShardedFeatureIndex(path_b, &db).ok());
  ShardedSnapshotLoadInfo info;
  auto recovered = LoadOrRebuildShardedFeatureIndex(
      path_b, &db, QuantizedShardedOptions(2), &info);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(info.rebuilt);
  ASSERT_EQ(info.rebuilt_shards.size(), 1u);
  EXPECT_EQ(info.rebuilt_shards[0], *owner);
  ExpectShardedAnswersEqual(*index, *recovered, 6, 53);

  for (const std::string& p : {path_a, path_b}) {
    std::remove(p.c_str());
    for (size_t s = 0; s < 2; ++s) {
      std::remove((p + ".shard" + std::to_string(s)).c_str());
    }
  }
}

}  // namespace
}  // namespace mocemg
