#include "signal/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

std::vector<double> Sine(double freq_hz, double fs, size_t n,
                         double amp = 1.0) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = amp * std::sin(2.0 * M_PI * freq_hz * i / fs);
  }
  return v;
}

TEST(GoertzelTest, DetectsPresentFrequency) {
  auto v = Sine(50.0, 1000.0, 1000);
  const double at_50 = *GoertzelPower(v, 50.0, 1000.0);
  const double at_130 = *GoertzelPower(v, 130.0, 1000.0);
  EXPECT_GT(at_50, 100.0 * at_130);
}

TEST(GoertzelTest, RejectsOutOfRangeFrequency) {
  EXPECT_FALSE(GoertzelPower({1.0}, 600.0, 1000.0).ok());
  EXPECT_FALSE(GoertzelPower({}, 10.0, 1000.0).ok());
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> v(3);
  EXPECT_FALSE(Fft(&v).ok());
}

TEST(FftTest, DcSignal) {
  std::vector<std::complex<double>> v(8, {1.0, 0.0});
  ASSERT_TRUE(Fft(&v).ok());
  EXPECT_NEAR(v[0].real(), 8.0, 1e-12);
  for (size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleBinSine) {
  const size_t n = 64;
  std::vector<std::complex<double>> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::cos(2.0 * M_PI * 4.0 * i / n);
  }
  ASSERT_TRUE(Fft(&v).ok());
  EXPECT_NEAR(std::abs(v[4]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(v[n - 4]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(v[7]), 0.0, 1e-9);
}

TEST(PeriodogramTest, PeakAtSineFrequency) {
  auto v = Sine(120.0, 1000.0, 2048);
  auto psd = Periodogram(v, 1000.0);
  ASSERT_TRUE(psd.ok());
  double best_freq = 0.0;
  double best_power = -1.0;
  for (const auto& [f, p] : *psd) {
    if (p > best_power) {
      best_power = p;
      best_freq = f;
    }
  }
  EXPECT_NEAR(best_freq, 120.0, 1.0);
}

TEST(MedianFrequencyTest, PureToneMedianIsTone) {
  auto v = Sine(80.0, 1000.0, 4096);
  auto mf = MedianFrequency(v, 1000.0);
  ASSERT_TRUE(mf.ok());
  EXPECT_NEAR(*mf, 80.0, 2.0);
}

TEST(MeanFrequencyTest, TwoTonesAverage) {
  auto v = Sine(50.0, 1000.0, 4096);
  auto v2 = Sine(150.0, 1000.0, 4096);
  for (size_t i = 0; i < v.size(); ++i) v[i] += v2[i];
  auto mean = MeanFrequency(v, 1000.0);
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(*mean, 100.0, 5.0);
}

TEST(SpectralTest, ZeroSignalHasNoMedian) {
  std::vector<double> v(1024, 0.0);
  EXPECT_FALSE(MedianFrequency(v, 1000.0).ok());
}

}  // namespace
}  // namespace mocemg
