#include "signal/window.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(WindowTest, NonOverlappingExactDivision) {
  auto plan = MakeWindowPlan(120, 12);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_windows(), 10u);
  EXPECT_EQ(plan->spans.front().begin, 0u);
  EXPECT_EQ(plan->spans.front().end, 12u);
  EXPECT_EQ(plan->spans.back().end, 120u);
  for (const auto& s : plan->spans) EXPECT_EQ(s.length(), 12u);
}

TEST(WindowTest, RejectsZeroWindow) {
  EXPECT_FALSE(MakeWindowPlan(100, 0).ok());
}

TEST(WindowTest, RejectsWindowLongerThanSignal) {
  EXPECT_FALSE(MakeWindowPlan(5, 10).ok());
}

TEST(WindowTest, SmallRemainderDropped) {
  // 100 frames, window 12: 8 full windows cover 96, remainder 4 < 6.
  auto plan = MakeWindowPlan(100, 12);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_windows(), 8u);
  EXPECT_EQ(plan->spans.back().end, 96u);
}

TEST(WindowTest, LargeRemainderGetsRightAlignedWindow) {
  // 103 frames, window 12: remainder 7 >= 6 → extra window [91, 103).
  auto plan = MakeWindowPlan(103, 12);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_windows(), 9u);
  EXPECT_EQ(plan->spans.back().begin, 91u);
  EXPECT_EQ(plan->spans.back().end, 103u);
  EXPECT_EQ(plan->spans.back().length(), 12u);
}

TEST(WindowTest, OverlappingHop) {
  auto plan = MakeWindowPlan(30, 10, 5);
  ASSERT_TRUE(plan.ok());
  // Starts: 0, 5, 10, 15, 20 → 5 full windows; no remainder window
  // (covered==30).
  EXPECT_EQ(plan->num_windows(), 5u);
  EXPECT_EQ(plan->spans[1].begin, 5u);
}

TEST(WindowTest, AllSpansWithinSignal) {
  for (size_t frames : {24u, 37u, 100u, 311u}) {
    for (size_t w : {6u, 12u, 18u, 24u}) {
      if (w > frames) continue;
      auto plan = MakeWindowPlan(frames, w);
      ASSERT_TRUE(plan.ok());
      for (const auto& s : plan->spans) {
        EXPECT_LT(s.begin, s.end);
        EXPECT_LE(s.end, frames);
        EXPECT_EQ(s.length(), w);
      }
    }
  }
}

TEST(WindowTest, WindowMsToFramesPaperGrid) {
  // At 120 Hz: 50 ms → 6 frames, 100 → 12, 150 → 18, 200 → 24.
  EXPECT_EQ(WindowMsToFrames(50.0, 120.0), 6u);
  EXPECT_EQ(WindowMsToFrames(100.0, 120.0), 12u);
  EXPECT_EQ(WindowMsToFrames(150.0, 120.0), 18u);
  EXPECT_EQ(WindowMsToFrames(200.0, 120.0), 24u);
}

TEST(WindowTest, WindowMsClampsToOneFrame) {
  EXPECT_EQ(WindowMsToFrames(1.0, 120.0), 1u);
}

// Property sweep: the plan must tile the signal without gaps larger than
// a window and without out-of-range spans.
class WindowPlanPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(WindowPlanPropertyTest, CoversPrefixContiguously) {
  const auto [frames, window] = GetParam();
  auto plan = MakeWindowPlan(frames, window);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->spans.empty());
  // Non-overlapping spans are contiguous until the optional tail window.
  for (size_t i = 1; i + 1 < plan->spans.size(); ++i) {
    EXPECT_EQ(plan->spans[i].begin, plan->spans[i - 1].end);
  }
  // Uncovered tail is smaller than one window.
  size_t covered_end = 0;
  for (const auto& s : plan->spans) {
    covered_end = std::max(covered_end, s.end);
  }
  EXPECT_LT(frames - covered_end, window);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowPlanPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(120, 6),
                      std::make_pair<size_t, size_t>(121, 6),
                      std::make_pair<size_t, size_t>(125, 6),
                      std::make_pair<size_t, size_t>(300, 24),
                      std::make_pair<size_t, size_t>(301, 24),
                      std::make_pair<size_t, size_t>(317, 24),
                      std::make_pair<size_t, size_t>(24, 24),
                      std::make_pair<size_t, size_t>(25, 24)));

}  // namespace
}  // namespace mocemg
