#include "signal/biquad.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

TEST(BiquadTest, IdentityCoefficientsPassThrough) {
  Biquad b;  // default: b0=1, rest 0
  EXPECT_DOUBLE_EQ(b.Process(3.5), 3.5);
  EXPECT_DOUBLE_EQ(b.Process(-1.0), -1.0);
}

TEST(BiquadTest, PureGain) {
  BiquadCoefficients c;
  c.b0 = 2.0;
  Biquad b(c);
  EXPECT_DOUBLE_EQ(b.Process(1.5), 3.0);
}

TEST(BiquadTest, OneSampleDelay) {
  BiquadCoefficients c;
  c.b0 = 0.0;
  c.b1 = 1.0;
  Biquad b(c);
  EXPECT_DOUBLE_EQ(b.Process(7.0), 0.0);
  EXPECT_DOUBLE_EQ(b.Process(0.0), 7.0);
}

TEST(BiquadTest, ResetClearsState) {
  BiquadCoefficients c;
  c.b1 = 1.0;
  c.b0 = 0.0;
  Biquad b(c);
  b.Process(5.0);
  b.Reset();
  EXPECT_DOUBLE_EQ(b.Process(0.0), 0.0);
}

TEST(BiquadTest, MagnitudeOfIdentityIsUnity) {
  Biquad b;
  EXPECT_NEAR(b.MagnitudeAt(0.1), 1.0, 1e-12);
  EXPECT_NEAR(b.MagnitudeAt(2.0), 1.0, 1e-12);
}

TEST(BiquadCascadeTest, EmptyCascadeIsIdentity) {
  BiquadCascade c;
  EXPECT_DOUBLE_EQ(c.Process(2.5), 2.5);
  EXPECT_NEAR(c.MagnitudeAt(1.0), 1.0, 1e-12);
}

TEST(BiquadCascadeTest, ProcessSignalMatchesSampleBySample) {
  BiquadCoefficients c;
  c.b0 = 0.5;
  c.b1 = 0.5;
  BiquadCascade cascade({c});
  std::vector<double> in{1, 2, 3, 4};
  auto out = cascade.ProcessSignal(in);
  BiquadCascade fresh({c});
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], fresh.Process(in[i]));
  }
}

TEST(BiquadCascadeTest, CascadeMagnitudeIsProduct) {
  BiquadCoefficients c;
  c.b0 = 0.5;
  BiquadCascade one({c});
  BiquadCascade two({c, c});
  EXPECT_NEAR(two.MagnitudeAt(0.3), one.MagnitudeAt(0.3) * 0.5, 1e-12);
}

TEST(BiquadCascadeTest, FiltFiltEmptyInput) {
  BiquadCascade c;
  EXPECT_TRUE(c.FiltFilt({}).empty());
}

TEST(BiquadCascadeTest, FiltFiltPreservesLength) {
  BiquadCoefficients coeffs;
  coeffs.b0 = 0.25;
  coeffs.b1 = 0.5;
  coeffs.b2 = 0.25;
  BiquadCascade c({coeffs});
  std::vector<double> in(500, 0.0);
  for (size_t i = 0; i < in.size(); ++i) {
    in[i] = std::sin(0.02 * static_cast<double>(i));
  }
  auto out = c.FiltFilt(in);
  EXPECT_EQ(out.size(), in.size());
}

TEST(BiquadCascadeTest, FiltFiltIsZeroPhaseForSlowSine) {
  // A gentle low-pass shifts a forward-filtered sine; filtfilt must not.
  BiquadCoefficients coeffs;
  coeffs.b0 = 0.2;
  coeffs.b1 = 0.2;
  coeffs.a1 = -0.6;
  BiquadCascade c({coeffs});
  const size_t n = 2000;
  std::vector<double> in(n);
  const double w = 2.0 * M_PI * 0.01;  // slow sine
  for (size_t i = 0; i < n; ++i) in[i] = std::sin(w * i);
  auto out = c.FiltFilt(in);
  // Compare mid-signal against a scaled version of the input: the
  // correlation peak must be at zero lag.
  double best_corr = -1e9;
  int best_lag = 0;
  for (int lag = -10; lag <= 10; ++lag) {
    double corr = 0.0;
    for (size_t i = 500; i < 1500; ++i) {
      corr += in[i] * out[static_cast<size_t>(static_cast<int>(i) + lag)];
    }
    if (corr > best_corr) {
      best_corr = corr;
      best_lag = lag;
    }
  }
  EXPECT_EQ(best_lag, 0);
}

}  // namespace
}  // namespace mocemg
