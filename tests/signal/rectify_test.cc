#include "signal/rectify.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(RectifyTest, FullWave) {
  auto out = FullWaveRectify({-1.0, 2.0, -3.5, 0.0});
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.5, 0.0}));
}

TEST(RectifyTest, HalfWave) {
  auto out = HalfWaveRectify({-1.0, 2.0, -3.5, 0.0});
  EXPECT_EQ(out, (std::vector<double>{0.0, 2.0, 0.0, 0.0}));
}

TEST(RectifyTest, EmptySignals) {
  EXPECT_TRUE(FullWaveRectify({}).empty());
  EXPECT_TRUE(HalfWaveRectify({}).empty());
  EXPECT_TRUE(RemoveMean({}).empty());
}

TEST(RectifyTest, RemoveMean) {
  auto out = RemoveMean({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
}

TEST(MovingAverageTest, RejectsZeroWindow) {
  EXPECT_FALSE(MovingAverage({1.0}, 0).ok());
}

TEST(MovingAverageTest, ConstantSignalUnchanged) {
  auto out = MovingAverage(std::vector<double>(10, 4.0), 3);
  ASSERT_TRUE(out.ok());
  for (double v : *out) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(MovingAverageTest, SmoothsStep) {
  std::vector<double> step(10, 0.0);
  for (size_t i = 5; i < 10; ++i) step[i] = 1.0;
  auto out = MovingAverage(step, 3);
  ASSERT_TRUE(out.ok());
  // Transition is spread: the sample just before the step edge averages
  // one 1.0 into its window.
  EXPECT_NEAR((*out)[4], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((*out)[5], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ((*out)[0], 0.0);
  EXPECT_DOUBLE_EQ((*out)[9], 1.0);
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  std::vector<double> v{3.0, -1.0, 2.0};
  auto out = MovingAverage(v, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(MovingAverageTest, PreservesMeanOfSignal) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 7);
  auto out = MovingAverage(v, 5);
  ASSERT_TRUE(out.ok());
  double mean_in = 0.0;
  double mean_out = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    mean_in += v[i];
    mean_out += (*out)[i];
  }
  EXPECT_NEAR(mean_in, mean_out, mean_in * 0.05);
}

}  // namespace
}  // namespace mocemg
