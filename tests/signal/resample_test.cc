#include "signal/resample.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

TEST(DecimateTest, FactorOneIsIdentity) {
  std::vector<double> v{1, 2, 3};
  auto out = Decimate(v, 100.0, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(DecimateTest, RejectsBadFactor) {
  EXPECT_FALSE(Decimate({1.0}, 100.0, 0).ok());
}

TEST(DecimateTest, OutputLength) {
  std::vector<double> v(1000, 1.0);
  auto out = Decimate(v, 1000.0, 4);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 250u);
}

TEST(DecimateTest, PreservesDcLevel) {
  std::vector<double> v(2000, 3.0);
  auto out = Decimate(v, 1000.0, 5);
  ASSERT_TRUE(out.ok());
  // Interior samples stay at the DC level.
  for (size_t i = 10; i + 10 < out->size(); ++i) {
    EXPECT_NEAR((*out)[i], 3.0, 1e-6);
  }
}

TEST(ResampleTest, SameRateIsIdentity) {
  std::vector<double> v{1, 2, 3};
  auto out = Resample(v, 120.0, 120.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(ResampleTest, RejectsBadRates) {
  EXPECT_FALSE(Resample({1.0}, 0.0, 120.0).ok());
  EXPECT_FALSE(Resample({1.0}, 120.0, -1.0).ok());
}

TEST(ResampleTest, EmptyInput) {
  auto out = Resample({}, 1000.0, 120.0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(ResampleTest, ReportedLengthMatches) {
  std::vector<double> v(1000, 0.0);
  auto out = Resample(v, 1000.0, 120.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), ResampledLength(v.size(), 1000.0, 120.0));
  // ~1 second at 120 Hz.
  EXPECT_NEAR(static_cast<double>(out->size()), 120.0, 2.0);
}

TEST(ResampleTest, EmgRateToMocapRate) {
  // The paper's exact conversion: 1000 Hz → 120 Hz. A 10 Hz sine (well
  // inside both Nyquists) must survive with its amplitude.
  const double fs_in = 1000.0;
  const size_t n = 5000;
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * M_PI * 10.0 * i / fs_in);
  }
  auto out = Resample(v, fs_in, 120.0);
  ASSERT_TRUE(out.ok());
  double peak = 0.0;
  for (size_t i = out->size() / 4; i < 3 * out->size() / 4; ++i) {
    peak = std::max(peak, std::fabs((*out)[i]));
  }
  EXPECT_NEAR(peak, 1.0, 0.05);
}

TEST(ResampleTest, DownsamplingSuppressesAliases) {
  // 200 Hz sine is above the 60 Hz Nyquist of the 120 Hz target; the
  // anti-alias filter must kill it rather than fold it.
  const double fs_in = 1000.0;
  const size_t n = 5000;
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * M_PI * 200.0 * i / fs_in);
  }
  auto out = Resample(v, fs_in, 120.0);
  ASSERT_TRUE(out.ok());
  double rms = 0.0;
  for (double x : *out) rms += x * x;
  rms = std::sqrt(rms / static_cast<double>(out->size()));
  EXPECT_LT(rms, 0.05);
}

TEST(ResampleTest, UpsamplingInterpolatesLinearRamp) {
  std::vector<double> ramp{0.0, 1.0, 2.0, 3.0};
  auto out = Resample(ramp, 10.0, 20.0);
  ASSERT_TRUE(out.ok());
  // Every output sample lies on the ramp.
  for (size_t k = 0; k < out->size(); ++k) {
    const double t = static_cast<double>(k) / 20.0;
    EXPECT_NEAR((*out)[k], t * 10.0, 1e-9);
  }
}

}  // namespace
}  // namespace mocemg
