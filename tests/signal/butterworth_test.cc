#include "signal/butterworth.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

constexpr double kFs = 1000.0;

double MagAtHz(const BiquadCascade& c, double hz) {
  return c.MagnitudeAt(2.0 * M_PI * hz / kFs);
}

TEST(ButterworthTest, RejectsOddOrder) {
  EXPECT_FALSE(DesignButterworthLowPass(3, 100.0, kFs).ok());
}

TEST(ButterworthTest, RejectsBadCutoffs) {
  EXPECT_FALSE(DesignButterworthLowPass(4, 0.0, kFs).ok());
  EXPECT_FALSE(DesignButterworthLowPass(4, 500.0, kFs).ok());
  EXPECT_FALSE(DesignButterworthLowPass(4, 100.0, -1.0).ok());
}

TEST(ButterworthTest, LowPassHalfPowerAtCutoff) {
  auto lp = DesignButterworthLowPass(4, 100.0, kFs);
  ASSERT_TRUE(lp.ok());
  // Butterworth: |H(fc)| = 1/√2 regardless of order.
  EXPECT_NEAR(MagAtHz(*lp, 100.0), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(ButterworthTest, LowPassPassbandAndStopband) {
  auto lp = DesignButterworthLowPass(4, 100.0, kFs);
  ASSERT_TRUE(lp.ok());
  EXPECT_NEAR(MagAtHz(*lp, 5.0), 1.0, 0.01);     // deep passband
  EXPECT_LT(MagAtHz(*lp, 400.0), 0.01);          // deep stopband
  // Monotonic decrease (Butterworth is maximally flat).
  EXPECT_GT(MagAtHz(*lp, 50.0), MagAtHz(*lp, 150.0));
  EXPECT_GT(MagAtHz(*lp, 150.0), MagAtHz(*lp, 300.0));
}

TEST(ButterworthTest, HighPassMirrorsLowPass) {
  auto hp = DesignButterworthHighPass(4, 100.0, kFs);
  ASSERT_TRUE(hp.ok());
  EXPECT_NEAR(MagAtHz(*hp, 100.0), 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_LT(MagAtHz(*hp, 10.0), 0.01);
  EXPECT_NEAR(MagAtHz(*hp, 450.0), 1.0, 0.02);
}

TEST(ButterworthTest, HigherOrderIsSteeper) {
  auto lp2 = DesignButterworthLowPass(2, 100.0, kFs);
  auto lp8 = DesignButterworthLowPass(8, 100.0, kFs);
  ASSERT_TRUE(lp2.ok());
  ASSERT_TRUE(lp8.ok());
  EXPECT_GT(MagAtHz(*lp2, 200.0), MagAtHz(*lp8, 200.0));
}

TEST(ButterworthTest, BandPassEmgBand) {
  // The paper's conditioning band: 20–450 Hz at 1 kHz sampling.
  auto bp = DesignBandPass(4, 20.0, 450.0, kFs);
  ASSERT_TRUE(bp.ok());
  EXPECT_LT(MagAtHz(*bp, 1.0), 0.01);     // DC and drift rejected
  EXPECT_GT(MagAtHz(*bp, 100.0), 0.95);   // EMG energy passes
  EXPECT_GT(MagAtHz(*bp, 300.0), 0.9);
  EXPECT_NEAR(MagAtHz(*bp, 20.0), 1.0 / std::sqrt(2.0), 0.05);
}

TEST(ButterworthTest, BandPassRejectsInvertedBand) {
  EXPECT_FALSE(DesignBandPass(4, 450.0, 20.0, kFs).ok());
  EXPECT_FALSE(DesignBandPass(4, 100.0, 100.0, kFs).ok());
}

TEST(ButterworthTest, BandPassRejectsEdgeAboveNyquist) {
  EXPECT_FALSE(DesignBandPass(4, 20.0, 600.0, kFs).ok());
}

TEST(ButterworthTest, SectionCountMatchesOrder) {
  auto lp = DesignButterworthLowPass(6, 80.0, kFs);
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(lp->num_sections(), 3u);
  auto bp = DesignBandPass(4, 20.0, 450.0, kFs);
  ASSERT_TRUE(bp.ok());
  EXPECT_EQ(bp->num_sections(), 4u);  // 2 HP + 2 LP
}

TEST(NotchTest, KillsCenterKeepsNeighbours) {
  auto notch = DesignNotch(60.0, 30.0, kFs);
  ASSERT_TRUE(notch.ok());
  EXPECT_LT(MagAtHz(*notch, 60.0), 1e-6);   // the hum vanishes
  EXPECT_GT(MagAtHz(*notch, 40.0), 0.95);   // EMG content survives
  EXPECT_GT(MagAtHz(*notch, 80.0), 0.95);
  EXPECT_GT(MagAtHz(*notch, 300.0), 0.99);
}

TEST(NotchTest, LowerQIsWider) {
  auto narrow = DesignNotch(60.0, 30.0, kFs);
  auto wide = DesignNotch(60.0, 2.0, kFs);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_GT(MagAtHz(*narrow, 55.0), MagAtHz(*wide, 55.0));
}

TEST(NotchTest, Validations) {
  EXPECT_FALSE(DesignNotch(0.0, 30.0, kFs).ok());
  EXPECT_FALSE(DesignNotch(600.0, 30.0, kFs).ok());
  EXPECT_FALSE(DesignNotch(60.0, 0.0, kFs).ok());
  EXPECT_FALSE(DesignNotch(60.0, 30.0, 0.0).ok());
}

TEST(ButterworthTest, FiltersSineInTimedomain) {
  // A 300 Hz sine through a 100 Hz low-pass should be strongly
  // attenuated; a 20 Hz sine should survive.
  auto lp = DesignButterworthLowPass(4, 100.0, kFs);
  ASSERT_TRUE(lp.ok());
  const size_t n = 4000;
  std::vector<double> slow(n);
  std::vector<double> fast(n);
  for (size_t i = 0; i < n; ++i) {
    slow[i] = std::sin(2.0 * M_PI * 20.0 * i / kFs);
    fast[i] = std::sin(2.0 * M_PI * 300.0 * i / kFs);
  }
  BiquadCascade lp_slow = *lp;
  auto out_slow = lp_slow.ProcessSignal(slow);
  BiquadCascade lp_fast = *lp;
  lp_fast.Reset();
  auto out_fast = lp_fast.ProcessSignal(fast);
  double rms_slow = 0.0;
  double rms_fast = 0.0;
  for (size_t i = n / 2; i < n; ++i) {  // after transient
    rms_slow += out_slow[i] * out_slow[i];
    rms_fast += out_fast[i] * out_fast[i];
  }
  EXPECT_GT(std::sqrt(rms_slow), 10.0 * std::sqrt(rms_fast));
}

}  // namespace
}  // namespace mocemg
