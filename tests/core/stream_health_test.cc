#include "core/stream_health.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "synth/dataset.h"
#include "synth/fault_injector.h"
#include "util/random.h"

namespace mocemg {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

CapturedMotion HandTrial() {
  DatasetOptions opts;
  opts.limb = Limb::kRightHand;
  opts.trials_per_class = 1;
  opts.seed = 55;
  auto data = GenerateDataset(opts);
  EXPECT_TRUE(data.ok()) << data.status();
  return data->front();
}

// A 2-marker (pelvis + hand) constant sequence for precise gap checks.
MotionSequence TinySequence(size_t frames) {
  Matrix pos(frames, 6);
  for (size_t f = 0; f < frames; ++f) {
    pos(f, 3) = 10.0;
    pos(f, 4) = static_cast<double>(f);
    pos(f, 5) = -5.0;
  }
  auto seq = MotionSequence::Create(
      MarkerSet({Segment::kPelvis, Segment::kHand}), std::move(pos));
  EXPECT_TRUE(seq.ok()) << seq.status();
  return *seq;
}

EmgRecording NoisyEmg(size_t channels, size_t samples, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> data(channels);
  for (auto& ch : data) {
    ch.resize(samples);
    for (double& v : ch) v = rng.Gaussian(0.0, 5e-5);
  }
  auto emg = EmgRecording::Create(
      std::vector<Muscle>(channels, Muscle::kBiceps), std::move(data),
      1000.0);
  EXPECT_TRUE(emg.ok()) << emg.status();
  return *emg;
}

TEST(StreamHealthTest, CleanCaptureIsHealthy) {
  const CapturedMotion trial = HandTrial();
  StreamHealth monitor;
  auto report = monitor.Assess(trial.mocap, trial.emg_raw);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->mocap_usable);
  EXPECT_TRUE(report->emg_usable);
  EXPECT_FALSE(report->any_repair);
  EXPECT_FALSE(report->hum_detected);
  EXPECT_TRUE(report->masked_channels.empty());
  EXPECT_DOUBLE_EQ(report->mocap_health, 1.0);
  EXPECT_DOUBLE_EQ(report->emg_health, 1.0);
}

TEST(StreamHealthTest, DetectsOcclusionGaps) {
  MotionSequence seq = TinySequence(100);
  // One 5-frame interior gap on the hand marker.
  for (size_t f = 40; f < 45; ++f) {
    seq.SetMarkerPosition(f, 1, {kNaN, kNaN, kNaN});
  }
  StreamHealth monitor;
  auto markers = monitor.AssessMocap(seq);
  ASSERT_TRUE(markers.ok());
  EXPECT_EQ((*markers)[0].missing_frames, 0u);
  EXPECT_EQ((*markers)[1].missing_frames, 5u);
  EXPECT_EQ((*markers)[1].longest_gap, 5u);
  EXPECT_EQ((*markers)[1].repairable_frames, 5u);
  EXPECT_EQ((*markers)[1].unrepaired_frames, 0u);
  EXPECT_TRUE((*markers)[1].usable);
}

TEST(StreamHealthTest, RepairInterpolatesInteriorGaps) {
  MotionSequence seq = TinySequence(100);
  for (size_t f = 40; f < 45; ++f) {
    seq.SetMarkerPosition(f, 1, {kNaN, kNaN, kNaN});
  }
  StreamHealth monitor;
  StreamHealthReport report;
  auto repaired = monitor.RepairMocap(seq, &report);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_TRUE(repaired->Validate().ok());
  EXPECT_TRUE(report.any_repair);
  // The y coordinate ramps linearly (f), so interpolation is exact.
  for (size_t f = 40; f < 45; ++f) {
    EXPECT_NEAR(repaired->positions()(f, 4), static_cast<double>(f),
                1e-12);
    EXPECT_NEAR(repaired->positions()(f, 3), 10.0, 1e-12);
  }
}

TEST(StreamHealthTest, RepairHoldsEdgeGaps) {
  MotionSequence seq = TinySequence(50);
  for (size_t f = 0; f < 4; ++f) {
    seq.SetMarkerPosition(f, 1, {kNaN, kNaN, kNaN});
  }
  for (size_t f = 46; f < 50; ++f) {
    seq.SetMarkerPosition(f, 1, {kNaN, kNaN, kNaN});
  }
  StreamHealth monitor;
  auto repaired = monitor.RepairMocap(seq, nullptr);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(repaired->Validate().ok());
  // Leading gap holds the first captured frame (y = 4), trailing the
  // last captured frame (y = 45).
  EXPECT_DOUBLE_EQ(repaired->positions()(0, 4), 4.0);
  EXPECT_DOUBLE_EQ(repaired->positions()(49, 4), 45.0);
}

TEST(StreamHealthTest, OverOccludedMarkerIsUnusable) {
  MotionSequence seq = TinySequence(100);
  // 50% occluded in over-bound runs.
  for (size_t f = 0; f < 50; ++f) {
    seq.SetMarkerPosition(f, 1, {kNaN, kNaN, kNaN});
  }
  StreamHealth monitor;
  auto markers = monitor.AssessMocap(seq);
  ASSERT_TRUE(markers.ok());
  EXPECT_FALSE((*markers)[1].usable);
  EXPECT_GT((*markers)[1].unrepaired_frames, 0u);

  EmgRecording emg = NoisyEmg(4, 1000, 3);
  auto report = monitor.Assess(seq, emg);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->mocap_usable);
  EXPECT_TRUE(report->emg_usable);
}

TEST(StreamHealthTest, DetectsFlatlineAndMasksIt) {
  const MotionSequence seq = TinySequence(100);
  EmgRecording emg = NoisyEmg(4, 1000, 4);
  std::fill(emg.mutable_channel(2).begin(), emg.mutable_channel(2).end(),
            0.0);
  StreamHealth monitor;
  auto report = monitor.Assess(seq, emg);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->channels[2].flatline);
  EXPECT_FALSE(report->channels[2].usable);
  EXPECT_TRUE(report->channels[0].usable);
  EXPECT_TRUE(report->emg_usable);  // 1 of 4 dead → masked, not fatal
  ASSERT_EQ(report->masked_channels.size(), 1u);
  EXPECT_EQ(report->masked_channels[0], 2u);
  EXPECT_TRUE(report->any_repair);
  EXPECT_DOUBLE_EQ(report->emg_health, 0.75);
}

TEST(StreamHealthTest, MajorityDeadChannelsDropTheModality) {
  const MotionSequence seq = TinySequence(100);
  EmgRecording emg = NoisyEmg(4, 1000, 5);
  for (size_t c : {0u, 1u, 2u}) {
    std::fill(emg.mutable_channel(c).begin(),
              emg.mutable_channel(c).end(), 1e-3);
  }
  StreamHealth monitor;
  auto report = monitor.Assess(seq, emg);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->emg_usable);
  EXPECT_TRUE(report->masked_channels.empty());
  EXPECT_TRUE(report->mocap_usable);
}

TEST(StreamHealthTest, DetectsSaturation) {
  const MotionSequence seq = TinySequence(100);
  EmgRecording emg = NoisyEmg(4, 2000, 6);
  // Clip channel 1 hard at a third of its peak.
  double peak = 0.0;
  for (double v : emg.channel(1)) peak = std::max(peak, std::fabs(v));
  const double level = peak / 3.0;
  for (double& v : emg.mutable_channel(1)) {
    v = std::clamp(v, -level, level);
  }
  StreamHealth monitor;
  auto report = monitor.Assess(seq, emg);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->channels[1].saturated);
  EXPECT_FALSE(report->channels[1].usable);
  EXPECT_FALSE(report->channels[0].saturated);
}

TEST(StreamHealthTest, DetectsHumAndReportsItsFrequency) {
  const MotionSequence seq = TinySequence(100);
  EmgRecording emg = NoisyEmg(4, 4000, 7);
  for (size_t i = 0; i < emg.num_samples(); ++i) {
    emg.mutable_channel(0)[i] +=
        4e-4 * std::sin(2.0 * M_PI * 60.0 * static_cast<double>(i) /
                        1000.0);
  }
  StreamHealth monitor;
  auto report = monitor.Assess(seq, emg);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->channels[0].hum_contaminated);
  EXPECT_DOUBLE_EQ(report->channels[0].hum_freq_hz, 60.0);
  EXPECT_TRUE(report->hum_detected);
  EXPECT_DOUBLE_EQ(report->hum_freq_hz, 60.0);
  // Hum is repairable: the channel stays usable (notch downstream).
  EXPECT_TRUE(report->channels[0].usable);
  EXPECT_LT(report->channels[0].health, 1.0);
  EXPECT_TRUE(report->any_repair);
}

TEST(StreamHealthTest, NonFiniteEmgSamplesAreFatalForTheChannel) {
  const MotionSequence seq = TinySequence(100);
  EmgRecording emg = NoisyEmg(2, 500, 8);
  emg.mutable_channel(1)[250] = kNaN;
  StreamHealth monitor;
  auto report = monitor.Assess(seq, emg);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->channels[1].non_finite, 1u);
  EXPECT_FALSE(report->channels[1].usable);
  EXPECT_TRUE(report->channels[0].usable);
}

TEST(StreamHealthTest, DetectsInjectedFaultMix) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.occlusion_marker_fraction = 0.5;
  opts.occlusion_fraction = 0.2;
  opts.dropout_channel_fraction = 0.25;
  FaultInjector injector(opts);
  auto corrupted = injector.Corrupt(trial);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();

  StreamHealth monitor;
  auto report = monitor.Assess(corrupted->mocap, corrupted->emg_raw);
  ASSERT_TRUE(report.ok());
  size_t missing = 0;
  for (const auto& m : report->markers) missing += m.missing_frames;
  EXPECT_GT(missing, 0u);
  size_t flat = 0;
  for (const auto& c : report->channels) flat += c.flatline ? 1 : 0;
  EXPECT_EQ(flat, 1u);
  EXPECT_TRUE(report->any_repair);
  EXPECT_FALSE(report->Summary().empty());
}

TEST(StreamHealthTest, RejectsEmptyInputs) {
  StreamHealth monitor;
  EXPECT_FALSE(monitor.AssessMocap(MotionSequence()).ok());
  EXPECT_FALSE(monitor.AssessEmg(EmgRecording()).ok());
  EXPECT_FALSE(monitor.RepairMocap(MotionSequence(), nullptr).ok());
}

}  // namespace
}  // namespace mocemg
