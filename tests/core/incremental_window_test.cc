#include "core/incremental_window.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/classifier.h"
#include "core/stream_health.h"
#include "core/streaming.h"
#include "core/window_features.h"
#include "emg/acquisition.h"
#include "emg/features.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "synth/dataset.h"
#include "synth/fault_injector.h"
#include "util/random.h"

namespace mocemg {
namespace {

// ---------------------------------------------------------------------
// Mode resolution
// ---------------------------------------------------------------------

TEST(FeaturizationModeTest, AutoResolvesOnOverlap) {
  EXPECT_EQ(ResolveFeaturizationMode(FeaturizationMode::kAuto, 12, 4),
            FeaturizationMode::kIncremental);
  EXPECT_EQ(ResolveFeaturizationMode(FeaturizationMode::kAuto, 12, 12),
            FeaturizationMode::kExact);
  EXPECT_EQ(ResolveFeaturizationMode(FeaturizationMode::kAuto, 12, 20),
            FeaturizationMode::kExact);
  // Explicit modes pass through untouched, even with disjoint windows.
  EXPECT_EQ(ResolveFeaturizationMode(FeaturizationMode::kExact, 12, 4),
            FeaturizationMode::kExact);
  EXPECT_EQ(
      ResolveFeaturizationMode(FeaturizationMode::kIncremental, 12, 12),
      FeaturizationMode::kIncremental);
}

TEST(FeaturizationModeTest, Names) {
  EXPECT_STREQ(FeaturizationModeName(FeaturizationMode::kExact), "exact");
  EXPECT_STREQ(FeaturizationModeName(FeaturizationMode::kIncremental),
               "incremental");
  EXPECT_STREQ(FeaturizationModeName(FeaturizationMode::kAuto), "auto");
}

// ---------------------------------------------------------------------
// JointGramState
// ---------------------------------------------------------------------

std::vector<double> RandomTrack(size_t frames, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> track(3 * frames);
  for (size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f);
    track[3 * f + 0] = 50.0 * std::sin(0.03 * t) + rng.Gaussian(0.0, 0.5);
    track[3 * f + 1] = 30.0 * std::cos(0.05 * t) + rng.Gaussian(0.0, 0.5);
    track[3 * f + 2] = 2.0 * t / frames + rng.Gaussian(0.0, 0.5);
  }
  return track;
}

TEST(JointGramStateTest, SlideMatchesRefresh) {
  const size_t frames = 200;
  const size_t w = 20;
  std::vector<double> track = RandomTrack(frames, 11);
  JointGramState slid;
  slid.Refresh(track.data(), w);
  size_t prev_begin = 0;
  for (size_t begin = 3; begin + w <= frames; begin += 3) {
    slid.Slide(track.data(), prev_begin, prev_begin + w, begin,
               begin + w);
    prev_begin = begin;
    JointGramState fresh;
    fresh.Refresh(track.data() + 3 * begin, w);
    double scale = 0.0;
    for (int k = 0; k < 6; ++k) {
      scale = std::max(scale, std::fabs(fresh.packed()[k]));
    }
    for (int k = 0; k < 6; ++k) {
      EXPECT_NEAR(slid.packed()[k], fresh.packed()[k], 1e-11 * scale)
          << "begin=" << begin << " entry " << k;
    }
  }
}

TEST(JointGramStateTest, DisjointSlideDegradesToRefresh) {
  std::vector<double> track = RandomTrack(100, 3);
  JointGramState slid;
  slid.Refresh(track.data(), 10);
  slid.Slide(track.data(), 0, 10, 40, 55);  // no overlap
  JointGramState fresh;
  fresh.Refresh(track.data() + 3 * 40, 15);
  for (int k = 0; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(slid.packed()[k], fresh.packed()[k]);
  }
}

TEST(JointGramStateTest, WeightedSvdFeatureMatchesExactPath) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t w = 12;
    Matrix window(w, 3);
    for (double& v : window.mutable_data()) v = rng.Uniform(-40.0, 40.0);
    JointGramState state;
    state.Refresh(window.RowPtr(0), w);
    double fast[3];
    ASSERT_TRUE(state.WeightedSvdFeature(1e-6, fast))
        << "generic window should take the fast path, trial " << trial;
    auto exact = WeightedSvdFeature(window);
    ASSERT_TRUE(exact.ok()) << exact.status();
    for (int i = 0; i < 3; ++i) {
      // The feature is a convex combination of unit-vector components,
      // so 1e-10 absolute == 1e-10 relative to its natural O(1) scale.
      EXPECT_NEAR(fast[i], (*exact)[i], 1e-10) << "trial " << trial;
    }
  }
}

TEST(JointGramStateTest, DegenerateWindowsFallBackOrMatchConvention) {
  // Rank-1 window (pure line): λ1 = λ2 = 0 trips the conditioning
  // floor — the caller must use the exact path.
  JointGramState line;
  std::vector<double> track(3 * 12);
  for (size_t f = 0; f < 12; ++f) {
    track[3 * f + 0] = 2.0 * f;
    track[3 * f + 1] = -1.0 * f;
    track[3 * f + 2] = 0.5 * f;
  }
  line.Refresh(track.data(), 12);
  double out[3];
  EXPECT_FALSE(line.WeightedSvdFeature(1e-6, out));

  // Empty/zero window: the documented stationary-joint convention is
  // the zero feature, emitted on the fast path.
  JointGramState zero;
  ASSERT_TRUE(zero.WeightedSvdFeature(1e-6, out));
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 0.0);
}

// ---------------------------------------------------------------------
// EmgWindowSums
// ---------------------------------------------------------------------

std::vector<double> RandomEmg(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> samples(n);
  for (size_t i = 0; i < n; ++i) {
    samples[i] = 2e-5 * std::sin(0.11 * i) + rng.Gaussian(0.0, 1e-5);
  }
  return samples;
}

TEST(EmgWindowSumsTest, RecomputeMatchesDirectFeatures) {
  std::vector<double> samples = RandomEmg(500, 21);
  for (size_t begin : {0u, 37u, 250u}) {
    const size_t n = 48;
    EmgWindowSums sums;
    sums.Recompute(samples.data(), begin, begin + n);
    const double* win = samples.data() + begin;
    double out = 0.0;
    ASSERT_TRUE(sums.Emit(EmgFeatureKind::kIav, n, &out).ok());
    EXPECT_DOUBLE_EQ(out, IntegralOfAbsoluteValue(win, n));
    ASSERT_TRUE(sums.Emit(EmgFeatureKind::kMav, n, &out).ok());
    EXPECT_DOUBLE_EQ(out, MeanAbsoluteValue(win, n));
    ASSERT_TRUE(sums.Emit(EmgFeatureKind::kRms, n, &out).ok());
    EXPECT_DOUBLE_EQ(out, RootMeanSquare(win, n));
    ASSERT_TRUE(sums.Emit(EmgFeatureKind::kWaveformLength, n, &out).ok());
    EXPECT_DOUBLE_EQ(out, WaveformLength(win, n));
    ASSERT_TRUE(sums.Emit(EmgFeatureKind::kZeroCrossings, n, &out).ok());
    EXPECT_EQ(static_cast<size_t>(out), ZeroCrossings(win, n));
  }
}

TEST(EmgWindowSumsTest, SlideMatchesRecompute) {
  std::vector<double> samples = RandomEmg(400, 5);
  const size_t w = 24;
  EmgWindowSums slid;
  slid.Recompute(samples.data(), 0, w);
  size_t prev = 0;
  for (size_t begin = 5; begin + w <= samples.size(); begin += 5) {
    slid.Slide(samples.data(), prev, prev + w, begin, begin + w);
    prev = begin;
    EmgWindowSums fresh;
    fresh.Recompute(samples.data(), begin, begin + w);
    EXPECT_NEAR(slid.sum_abs, fresh.sum_abs, 1e-12 * fresh.sum_abs);
    EXPECT_NEAR(slid.sum_sq, fresh.sum_sq, 1e-12 * fresh.sum_sq);
    EXPECT_NEAR(slid.waveform_length, fresh.waveform_length,
                1e-12 * fresh.waveform_length);
    // Sign-change counts are integers: sliding must be exactly right.
    EXPECT_EQ(slid.zero_crossings, fresh.zero_crossings)
        << "begin=" << begin;
  }
}

TEST(EmgWindowSumsTest, StreamingTailHeadUpdatesMatchRecompute) {
  // The per-frame protocol of core/streaming.cc: tail pushes as frames
  // arrive, head removals as the window start advances frame by frame.
  std::vector<double> samples = RandomEmg(200, 77);
  const size_t w = 12;
  EmgWindowSums state;
  size_t begin = 0;
  for (size_t f = 0; f < samples.size(); ++f) {
    if (f == 0) {
      state.AddTailSample(samples[f]);
    } else {
      state.AddTailSample(samples[f], samples[f - 1]);
    }
    if (f + 1 - begin > w) {
      state.RemoveHeadSample(samples[begin], samples[begin + 1]);
      ++begin;
    }
    if (f + 1 - begin == w) {
      EmgWindowSums fresh;
      fresh.Recompute(samples.data(), begin, f + 1);
      EXPECT_NEAR(state.sum_abs, fresh.sum_abs, 1e-12 * fresh.sum_abs);
      EXPECT_NEAR(state.waveform_length, fresh.waveform_length,
                  1e-12 * fresh.waveform_length);
      EXPECT_EQ(state.zero_crossings, fresh.zero_crossings);
    }
  }
}

TEST(EmgWindowSumsTest, SupportAndEmitErrors) {
  EXPECT_TRUE(EmgFeatureSupportsIncremental(EmgFeatureKind::kIav));
  EXPECT_TRUE(EmgFeatureSupportsIncremental(EmgFeatureKind::kMav));
  EXPECT_TRUE(EmgFeatureSupportsIncremental(EmgFeatureKind::kRms));
  EXPECT_TRUE(
      EmgFeatureSupportsIncremental(EmgFeatureKind::kWaveformLength));
  EXPECT_TRUE(
      EmgFeatureSupportsIncremental(EmgFeatureKind::kZeroCrossings));
  EXPECT_FALSE(EmgFeatureSupportsIncremental(EmgFeatureKind::kAr4));

  EmgWindowSums sums;
  sums.AddTailSample(1.0);
  double out[4];
  Status ar = sums.Emit(EmgFeatureKind::kAr4, 1, out);
  ASSERT_FALSE(ar.ok());
  EXPECT_TRUE(ar.IsInvalidArgument());
  EXPECT_NE(ar.message().find("ar4"), std::string::npos) << ar;
  EXPECT_FALSE(sums.Emit(EmgFeatureKind::kIav, 0, out).ok());
}

// ---------------------------------------------------------------------
// Batch equivalence property: incremental ≈ exact within 1e-10
// ---------------------------------------------------------------------

struct Capture {
  MotionSequence mocap;
  EmgRecording emg;
};

/// A 4-marker (pelvis + 3), 3-channel capture with rich full-rank joint
/// motion and signed, zero-crossing EMG content.
Capture MakeRandomCapture(uint64_t seed, size_t frames) {
  Rng rng(seed);
  MarkerSet set({Segment::kPelvis, Segment::kHumerus, Segment::kRadius,
                 Segment::kHand});
  Matrix positions(frames, 12);
  for (size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f);
    positions(f, 0) = 10.0 + 0.05 * t;
    positions(f, 1) = -5.0 + 0.02 * t;
    positions(f, 2) = 3.0;
    for (size_t m = 1; m < 4; ++m) {
      const double dm = static_cast<double>(m);
      positions(f, 3 * m + 0) = 80.0 * dm +
                                40.0 * std::sin(0.021 * dm * t + dm) +
                                rng.Gaussian(0.0, 0.4);
      positions(f, 3 * m + 1) = 30.0 * std::cos(0.017 * dm * t) +
                                rng.Gaussian(0.0, 0.4);
      positions(f, 3 * m + 2) = 200.0 + 2.0 * dm * t / frames +
                                10.0 * std::sin(0.05 * t) +
                                rng.Gaussian(0.0, 0.4);
    }
  }
  Capture cap;
  cap.mocap = *MotionSequence::Create(set, std::move(positions), 120.0);
  std::vector<std::vector<double>> channels(3,
                                            std::vector<double>(frames));
  for (size_t c = 0; c < 3; ++c) {
    for (size_t f = 0; f < frames; ++f) {
      channels[c][f] = 2e-5 * std::sin(0.07 * (c + 1) * f + c) +
                       rng.Gaussian(0.0, 1e-5);
    }
  }
  cap.emg = *EmgRecording::Create(
      {Muscle::kBiceps, Muscle::kTriceps, Muscle::kUpperForearm},
      std::move(channels), 120.0);
  return cap;
}

/// Asserts a ≈ b elementwise at `rtol` relative to each element's O(1+x)
/// scale — the incremental path's documented tolerance contract.
void ExpectMatricesClose(const Matrix& a, const Matrix& b, double rtol,
                         const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      const double scale =
          1.0 + std::max(std::fabs(a(r, c)), std::fabs(b(r, c)));
      ASSERT_NEAR(a(r, c), b(r, c), rtol * scale)
          << what << " at (" << r << ", " << c << ")";
    }
  }
}

TEST(IncrementalEquivalenceTest, MatchesExactAcrossWindowHopGeometries) {
  const struct {
    double window_ms;
    size_t hop_frames;
  } kGeometries[] = {{100.0, 1}, {100.0, 4}, {100.0, 11}, {50.0, 2},
                     {150.0, 6}, {200.0, 8}};
  for (uint64_t seed : {101u, 202u}) {
    Capture cap = MakeRandomCapture(seed, 300);
    for (const auto& geo : kGeometries) {
      WindowFeatureOptions exact;
      exact.window_ms = geo.window_ms;
      exact.hop_frames = geo.hop_frames;
      exact.featurization_mode = FeaturizationMode::kExact;
      WindowFeatureOptions inc = exact;
      inc.featurization_mode = FeaturizationMode::kIncremental;
      auto fe = ExtractWindowFeatures(cap.mocap, cap.emg, exact);
      auto fi = ExtractWindowFeatures(cap.mocap, cap.emg, inc);
      ASSERT_TRUE(fe.ok()) << fe.status();
      ASSERT_TRUE(fi.ok()) << fi.status();
      ExpectMatricesClose(fe->points, fi->points, 1e-10,
                          "incremental vs exact");
    }
  }
}

TEST(IncrementalEquivalenceTest, HoldsForEveryRefreshCadence) {
  Capture cap = MakeRandomCapture(303, 300);
  WindowFeatureOptions exact;
  exact.window_ms = 100.0;
  exact.hop_frames = 2;
  exact.featurization_mode = FeaturizationMode::kExact;
  auto fe = ExtractWindowFeatures(cap.mocap, cap.emg, exact);
  ASSERT_TRUE(fe.ok());
  for (size_t interval : {0u, 1u, 5u, 16u, 1000u}) {
    WindowFeatureOptions inc = exact;
    inc.featurization_mode = FeaturizationMode::kIncremental;
    inc.gram_refresh_interval = interval;
    auto fi = ExtractWindowFeatures(cap.mocap, cap.emg, inc);
    ASSERT_TRUE(fi.ok()) << fi.status();
    ExpectMatricesClose(fe->points, fi->points, 1e-10, "refresh cadence");
  }
}

TEST(IncrementalEquivalenceTest, HoldsForEveryEmgFeatureKind) {
  Capture cap = MakeRandomCapture(404, 240);
  for (EmgFeatureKind kind :
       {EmgFeatureKind::kIav, EmgFeatureKind::kMav, EmgFeatureKind::kRms,
        EmgFeatureKind::kWaveformLength, EmgFeatureKind::kZeroCrossings,
        EmgFeatureKind::kAr4}) {
    WindowFeatureOptions exact;
    exact.window_ms = 100.0;
    exact.hop_frames = 3;
    exact.emg_feature = kind;
    exact.featurization_mode = FeaturizationMode::kExact;
    WindowFeatureOptions inc = exact;
    inc.featurization_mode = FeaturizationMode::kIncremental;
    auto fe = ExtractWindowFeatures(cap.mocap, cap.emg, exact);
    auto fi = ExtractWindowFeatures(cap.mocap, cap.emg, inc);
    ASSERT_TRUE(fe.ok()) << fe.status();
    ASSERT_TRUE(fi.ok()) << fi.status();
    ExpectMatricesClose(fe->points, fi->points, 1e-10,
                        EmgFeatureKindName(kind));
  }
}

TEST(IncrementalEquivalenceTest, DegenerateMocapIsByteIdentical) {
  // Constant markers (rank ≤ 1 after the local transform) and pure
  // line/plane motion all trip the conditioning guard, which recomputes
  // the joint-window on the exact path — so the result must match the
  // exact engine bit for bit, not merely within tolerance.
  const size_t frames = 240;
  MarkerSet set({Segment::kPelvis, Segment::kHumerus, Segment::kRadius,
                 Segment::kHand});
  Matrix positions(frames, 12);
  for (size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f);
    positions(f, 0) = 10.0;  // static pelvis
    positions(f, 3) = 100.0;  // constant joint
    positions(f, 4) = 50.0;
    positions(f, 5) = 7.0;
    positions(f, 6) = 200.0 + 2.0 * t;  // pure line
    positions(f, 7) = 10.0 - 1.0 * t;
    positions(f, 8) = 0.5 * t;
    // Pure plane: z equals the pelvis z, so the translation-only local
    // transform zeroes it exactly and the joint-window is rank 2.
    positions(f, 9) = 300.0 + 20.0 * std::sin(0.1 * t);
    positions(f, 10) = 20.0 * std::cos(0.1 * t);
    positions(f, 11) = 0.0;
  }
  Capture cap;
  cap.mocap = *MotionSequence::Create(set, std::move(positions), 120.0);
  WindowFeatureOptions exact;
  exact.window_ms = 100.0;
  exact.hop_frames = 4;
  exact.use_emg = false;
  exact.featurization_mode = FeaturizationMode::kExact;
  WindowFeatureOptions inc = exact;
  inc.featurization_mode = FeaturizationMode::kIncremental;
  EmgRecording unused;
  auto fe = ExtractWindowFeatures(cap.mocap, unused, exact);
  auto fi = ExtractWindowFeatures(cap.mocap, unused, inc);
  ASSERT_TRUE(fe.ok()) << fe.status();
  ASSERT_TRUE(fi.ok()) << fi.status();
  WindowFeatureStats stats;
  auto again = ExtractWindowFeatures(cap.mocap, unused, inc, &stats);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(stats.gram_fast_windows, 0u);
  EXPECT_EQ(stats.gram_fallback_windows, stats.num_windows * 3);
  const auto& de = fe->points.data();
  const auto& di = fi->points.data();
  ASSERT_EQ(de.size(), di.size());
  for (size_t i = 0; i < de.size(); ++i) {
    ASSERT_EQ(de[i], di[i]) << "flat index " << i;
  }
}

TEST(IncrementalEquivalenceTest, SurvivesCorruptedThenRepairedStreams) {
  // A FaultInjector-degraded capture, repaired by StreamHealth and
  // conditioned: held markers produce long constant runs (degenerate
  // windows mid-stream) and hum/saturation stress the EMG sums. The
  // equivalence contract must hold on this data too.
  DatasetOptions dopts;
  dopts.limb = Limb::kRightHand;
  dopts.trials_per_class = 1;
  dopts.seed = 77;
  auto data = GenerateDataset(dopts);
  ASSERT_TRUE(data.ok()) << data.status();
  FaultInjectorOptions fopts;
  fopts.seed = 88;
  fopts.occlusion_marker_fraction = 0.6;
  fopts.occlusion_fraction = 0.3;
  fopts.saturation_channel_fraction = 0.5;
  fopts.hum_channel_fraction = 0.5;
  fopts.hum_amplitude_v = 2e-4;
  FaultInjector injector(fopts);
  for (size_t i = 0; i < std::min<size_t>(data->size(), 3); ++i) {
    const CapturedMotion& m = (*data)[i];
    auto bad_mocap = injector.CorruptMocap(m.mocap);
    ASSERT_TRUE(bad_mocap.ok()) << bad_mocap.status();
    StreamHealth health;
    auto repaired = health.RepairMocap(*bad_mocap, nullptr);
    ASSERT_TRUE(repaired.ok()) << repaired.status();
    auto bad_emg = injector.CorruptEmg(m.emg_raw);
    ASSERT_TRUE(bad_emg.ok()) << bad_emg.status();
    AcquisitionOptions acq;
    acq.output_rate_hz = m.mocap.frame_rate_hz();
    auto conditioned = ConditionRecording(*bad_emg, acq);
    ASSERT_TRUE(conditioned.ok()) << conditioned.status();

    WindowFeatureOptions exact;
    exact.window_ms = 100.0;
    exact.hop_frames = 3;
    exact.featurization_mode = FeaturizationMode::kExact;
    WindowFeatureOptions inc = exact;
    inc.featurization_mode = FeaturizationMode::kIncremental;
    auto fe = ExtractWindowFeatures(*repaired, *conditioned, exact);
    auto fi = ExtractWindowFeatures(*repaired, *conditioned, inc);
    ASSERT_TRUE(fe.ok()) << fe.status();
    ASSERT_TRUE(fi.ok()) << fi.status();
    ExpectMatricesClose(fe->points, fi->points, 1e-10,
                        "repaired capture");
  }
}

// ---------------------------------------------------------------------
// Hop resolution and extraction stats (satellites S1/S2)
// ---------------------------------------------------------------------

TEST(ResolveHopFramesTest, PrecedenceAndConflicts) {
  WindowFeatureOptions opts;
  // Defaults: non-overlapping.
  auto hop = ResolveHopFrames(opts, 120.0, 12);
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(*hop, 12u);
  // hop_frames alone.
  opts.hop_frames = 4;
  hop = ResolveHopFrames(opts, 120.0, 12);
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(*hop, 4u);
  // hop_ms wins.
  opts.hop_frames = 0;
  opts.hop_ms = 50.0;
  hop = ResolveHopFrames(opts, 120.0, 12);
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(*hop, 6u);
  // Both set and agreeing at this rate: accepted.
  opts.hop_frames = 6;
  hop = ResolveHopFrames(opts, 120.0, 12);
  ASSERT_TRUE(hop.ok());
  EXPECT_EQ(*hop, 6u);
  // Both set and disagreeing: rejected, naming both fields.
  opts.hop_frames = 7;
  hop = ResolveHopFrames(opts, 120.0, 12);
  ASSERT_FALSE(hop.ok());
  EXPECT_TRUE(hop.status().IsInvalidArgument());
  EXPECT_NE(hop.status().message().find("hop_ms"), std::string::npos)
      << hop.status();
  EXPECT_NE(hop.status().message().find("hop_frames"), std::string::npos)
      << hop.status();
}

TEST(ResolveHopFramesTest, ExtractionRejectsConflictingHop) {
  Capture cap = MakeRandomCapture(9, 240);
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_ms = 50.0;    // 6 frames at 120 Hz
  opts.hop_frames = 7;   // disagrees
  auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
  EXPECT_NE(out.status().message().find("hop_frames"), std::string::npos)
      << out.status();
}

TEST(WindowFeatureStatsTest, ReportsTruncationModesAndGramCounters) {
  Capture cap = MakeRandomCapture(31, 240);
  auto shorter = cap.emg.SampleSlice(0, 200);
  ASSERT_TRUE(shorter.ok());
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_frames = 4;
  WindowFeatureStats stats;
  auto out = ExtractWindowFeatures(cap.mocap, *shorter, opts, &stats);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(stats.mocap_frames_dropped, 40u);
  EXPECT_EQ(stats.emg_samples_dropped, 0u);
  EXPECT_EQ(stats.frames_used, 200u);
  EXPECT_EQ(stats.num_windows, out->plan.num_windows());
  // kAuto with hop < window resolves both modalities to incremental.
  EXPECT_EQ(stats.emg_mode, FeaturizationMode::kIncremental);
  EXPECT_EQ(stats.mocap_mode, FeaturizationMode::kIncremental);
  // Every joint-window is either a fast Gram emission or a fallback.
  EXPECT_EQ(stats.gram_fast_windows + stats.gram_fallback_windows,
            stats.num_windows * 3);
  EXPECT_GT(stats.gram_fast_windows, 0u);
  EXPECT_GE(stats.gram_refreshes, 1u);

  // Non-overlapping default hop: kAuto resolves to exact, counters 0.
  WindowFeatureOptions plain;
  plain.window_ms = 100.0;
  auto out2 = ExtractWindowFeatures(cap.mocap, cap.emg, plain, &stats);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(stats.mocap_frames_dropped, 0u);
  EXPECT_EQ(stats.emg_samples_dropped, 0u);
  EXPECT_EQ(stats.emg_mode, FeaturizationMode::kExact);
  EXPECT_EQ(stats.mocap_mode, FeaturizationMode::kExact);
  EXPECT_EQ(stats.gram_fast_windows + stats.gram_fallback_windows, 0u);
}

// ---------------------------------------------------------------------
// Streaming equivalence
// ---------------------------------------------------------------------

class IncrementalStreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 3;
    opts.seed = 1234;
    data_ = new std::vector<CapturedMotion>(*GenerateDataset(opts));
    std::vector<LabeledMotion> train;
    for (const auto& m : *data_) {
      LabeledMotion lm;
      lm.mocap = m.mocap;
      lm.emg = m.emg_raw;
      lm.label = m.class_id;
      lm.label_name = m.class_name;
      train.push_back(std::move(lm));
    }
    ClassifierOptions copts;
    copts.fcm.num_clusters = 6;
    copts.fcm.seed = 5;
    // Overlapping windows so the streaming incremental path engages.
    copts.features.window_ms = 100.0;
    copts.features.hop_frames = 4;
    model_ = new MotionClassifier(*MotionClassifier::Train(train, copts));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete model_;
    data_ = nullptr;
    model_ = nullptr;
  }

  static void StreamCapture(const CapturedMotion& m,
                            StreamingClassifier* streamer) {
    auto conditioned = ConditionRecording(m.emg_raw);
    ASSERT_TRUE(conditioned.ok());
    const size_t frames =
        std::min(m.mocap.num_frames(), conditioned->num_samples());
    for (size_t f = 0; f < frames; ++f) {
      std::vector<double> marker_frame(3 * m.mocap.num_markers());
      for (size_t k = 0; k < marker_frame.size(); ++k) {
        marker_frame[k] = m.mocap.positions()(f, k);
      }
      std::vector<double> emg_frame(conditioned->num_channels());
      for (size_t c = 0; c < emg_frame.size(); ++c) {
        emg_frame[c] = conditioned->channel(c)[f];
      }
      ASSERT_TRUE(streamer->PushFrame(marker_frame, emg_frame).ok());
    }
  }

  static StreamingClassifier MakeStreamer(FeaturizationMode mode) {
    StreamingOptions sopts;
    sopts.featurization_mode = mode;
    return *StreamingClassifier::Create(model_, /*num_markers=*/5,
                                        /*pelvis_index=*/0,
                                        /*num_emg_channels=*/4, sopts);
  }

  static std::vector<CapturedMotion>* data_;
  static MotionClassifier* model_;
};

std::vector<CapturedMotion>* IncrementalStreamingTest::data_ = nullptr;
MotionClassifier* IncrementalStreamingTest::model_ = nullptr;

TEST_F(IncrementalStreamingTest, MatchesExactStreamingPath) {
  for (size_t i = 0; i < data_->size(); i += 5) {
    const CapturedMotion& m = (*data_)[i];
    StreamingClassifier exact = MakeStreamer(FeaturizationMode::kExact);
    StreamingClassifier inc =
        MakeStreamer(FeaturizationMode::kIncremental);
    StreamCapture(m, &exact);
    StreamCapture(m, &inc);
    ASSERT_EQ(exact.windows_completed(), inc.windows_completed());
    ASSERT_GT(exact.windows_completed(), 0u);
    auto fe = exact.CurrentFinalFeature();
    auto fi = inc.CurrentFinalFeature();
    ASSERT_TRUE(fe.ok()) << fe.status();
    ASSERT_TRUE(fi.ok()) << fi.status();
    ASSERT_EQ(fe->size(), fi->size());
    for (size_t k = 0; k < fe->size(); ++k) {
      // The final feature folds per-window round-off through the
      // normalizer and Eq. 9 memberships; 1e-8 leaves ~100x headroom
      // over the 1e-10 per-window contract.
      EXPECT_NEAR((*fe)[k], (*fi)[k], 1e-8) << "trial " << i;
    }
    auto de = exact.CurrentDecision();
    auto di = inc.CurrentDecision();
    ASSERT_TRUE(de.ok()) << de.status();
    ASSERT_TRUE(di.ok()) << di.status();
    EXPECT_EQ(*de, *di) << "trial " << i;
  }
}

TEST_F(IncrementalStreamingTest, ResetRestoresEquivalence) {
  StreamingClassifier inc = MakeStreamer(FeaturizationMode::kIncremental);
  StreamCapture((*data_)[0], &inc);
  EXPECT_GT(inc.windows_completed(), 0u);
  inc.Reset();
  EXPECT_EQ(inc.windows_completed(), 0u);
  StreamingClassifier exact = MakeStreamer(FeaturizationMode::kExact);
  StreamCapture((*data_)[1], &exact);
  StreamCapture((*data_)[1], &inc);
  auto fe = exact.CurrentFinalFeature();
  auto fi = inc.CurrentFinalFeature();
  ASSERT_TRUE(fe.ok());
  ASSERT_TRUE(fi.ok());
  for (size_t k = 0; k < fe->size(); ++k) {
    EXPECT_NEAR((*fe)[k], (*fi)[k], 1e-8);
  }
}

}  // namespace
}  // namespace mocemg
