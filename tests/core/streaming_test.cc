#include "core/streaming.h"

#include <gtest/gtest.h>

#include <cmath>

#include "emg/acquisition.h"
#include "eval/protocols.h"
#include "synth/dataset.h"

namespace mocemg {
namespace {

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 4;
    opts.seed = 909;
    data_ = new std::vector<CapturedMotion>(*GenerateDataset(opts));
    std::vector<LabeledMotion> train;
    for (const auto& m : *data_) {
      LabeledMotion lm;
      lm.mocap = m.mocap;
      lm.emg = m.emg_raw;
      lm.label = m.class_id;
      lm.label_name = m.class_name;
      train.push_back(std::move(lm));
    }
    ClassifierOptions copts;
    copts.fcm.num_clusters = 10;
    copts.fcm.seed = 3;
    model_ = new MotionClassifier(*MotionClassifier::Train(train, copts));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete model_;
    data_ = nullptr;
    model_ = nullptr;
  }

  /// Streams one capture (conditioning its EMG first) into `streamer`.
  static void StreamCapture(const CapturedMotion& m,
                            StreamingClassifier* streamer) {
    auto conditioned = ConditionRecording(m.emg_raw);
    ASSERT_TRUE(conditioned.ok());
    const size_t frames =
        std::min(m.mocap.num_frames(), conditioned->num_samples());
    std::vector<double> emg_frame(conditioned->num_channels());
    for (size_t f = 0; f < frames; ++f) {
      std::vector<double> marker_frame(3 * m.mocap.num_markers());
      for (size_t k = 0; k < marker_frame.size(); ++k) {
        marker_frame[k] = m.mocap.positions()(f, k);
      }
      for (size_t c = 0; c < emg_frame.size(); ++c) {
        emg_frame[c] = conditioned->channel(c)[f];
      }
      ASSERT_TRUE(streamer->PushFrame(marker_frame, emg_frame).ok());
    }
  }

  static StreamingClassifier MakeStreamer() {
    StreamingOptions sopts;
    return *StreamingClassifier::Create(model_, /*num_markers=*/5,
                                        /*pelvis_index=*/0,
                                        /*num_emg_channels=*/4, sopts);
  }

  static std::vector<CapturedMotion>* data_;
  static MotionClassifier* model_;
};

std::vector<CapturedMotion>* StreamingTest::data_ = nullptr;
MotionClassifier* StreamingTest::model_ = nullptr;

TEST_F(StreamingTest, CreateValidations) {
  StreamingOptions sopts;
  EXPECT_FALSE(StreamingClassifier::Create(nullptr, 5, 0, 4, sopts).ok());
  MotionClassifier untrained;
  EXPECT_FALSE(
      StreamingClassifier::Create(&untrained, 5, 0, 4, sopts).ok());
  // Wrong layout → dimension mismatch with the trained normalizer.
  EXPECT_FALSE(StreamingClassifier::Create(model_, 3, 0, 4, sopts).ok());
  EXPECT_FALSE(StreamingClassifier::Create(model_, 5, 0, 2, sopts).ok());
  EXPECT_FALSE(StreamingClassifier::Create(model_, 5, 9, 4, sopts).ok());
  sopts.frame_rate_hz = 0.0;
  EXPECT_FALSE(StreamingClassifier::Create(model_, 5, 0, 4, sopts).ok());
}

TEST_F(StreamingTest, PushFrameValidations) {
  StreamingClassifier s = MakeStreamer();
  EXPECT_FALSE(s.PushFrame({1.0}, std::vector<double>(4, 0.0)).ok());
  EXPECT_FALSE(
      s.PushFrame(std::vector<double>(15, 0.0), {1.0}).ok());
  std::vector<double> bad(15, 0.0);
  bad[3] = std::nan("");
  EXPECT_FALSE(s.PushFrame(bad, std::vector<double>(4, 0.0)).ok());
}

TEST_F(StreamingTest, NoDecisionBeforeEnoughWindows) {
  StreamingClassifier s = MakeStreamer();
  EXPECT_FALSE(s.CurrentDecision().ok());
  EXPECT_FALSE(s.CurrentFinalFeature().ok());
}

TEST_F(StreamingTest, WindowCountMatchesFrames) {
  StreamingClassifier s = MakeStreamer();
  // Model default: 100 ms windows, non-overlapping → 12 frames each.
  std::vector<double> markers(15, 0.0);
  markers[5] = 100.0;  // some non-degenerate geometry
  std::vector<double> emg(4, 1e-5);
  for (int f = 0; f < 50; ++f) {
    ASSERT_TRUE(s.PushFrame(markers, emg).ok());
  }
  EXPECT_EQ(s.windows_completed(), 4u);  // 50 / 12
  EXPECT_EQ(s.frames_pushed(), 50u);
}

TEST_F(StreamingTest, StreamedDecisionMatchesBatchOnFullMotion) {
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < data_->size(); i += 3) {
    const CapturedMotion& m = (*data_)[i];
    auto batch = model_->Classify(m.mocap, m.emg_raw);
    ASSERT_TRUE(batch.ok());
    StreamingClassifier s = MakeStreamer();
    StreamCapture(m, &s);
    auto streamed = s.CurrentDecision();
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    ++total;
    if (*streamed == *batch) ++agree;
  }
  // Streaming skips the batch pipeline's right-aligned tail window, so
  // occasional disagreement is possible; it must be rare.
  EXPECT_GE(agree * 10, total * 8) << agree << "/" << total;
}

TEST_F(StreamingTest, FinalFeatureHasModelShape) {
  StreamingClassifier s = MakeStreamer();
  StreamCapture((*data_)[0], &s);
  auto feature = s.CurrentFinalFeature();
  ASSERT_TRUE(feature.ok());
  EXPECT_EQ(feature->size(), 2 * model_->codebook().num_clusters());
  for (size_t c = 0; c < model_->codebook().num_clusters(); ++c) {
    EXPECT_LE((*feature)[2 * c], (*feature)[2 * c + 1]);
    EXPECT_GE((*feature)[2 * c], 0.0);
    EXPECT_LE((*feature)[2 * c + 1], 1.0);
  }
}

TEST_F(StreamingTest, DecisionSharpensOverTime) {
  // Matches should be available incrementally and the top-1 distance
  // should not blow up as evidence accumulates.
  const CapturedMotion& m = (*data_)[4];
  auto conditioned = ConditionRecording(m.emg_raw);
  ASSERT_TRUE(conditioned.ok());
  StreamingClassifier s = MakeStreamer();
  const size_t frames =
      std::min(m.mocap.num_frames(), conditioned->num_samples());
  std::vector<double> last_top1;
  for (size_t f = 0; f < frames; ++f) {
    std::vector<double> marker_frame(15);
    for (size_t k = 0; k < 15; ++k) {
      marker_frame[k] = m.mocap.positions()(f, k);
    }
    std::vector<double> emg_frame(4);
    for (size_t c = 0; c < 4; ++c) {
      emg_frame[c] = conditioned->channel(c)[f];
    }
    ASSERT_TRUE(s.PushFrame(marker_frame, emg_frame).ok());
    if (s.windows_completed() >= 2 && f + 1 == frames / 2) {
      auto mid = s.CurrentMatches(3);
      ASSERT_TRUE(mid.ok());
      EXPECT_EQ(mid->size(), 3u);
    }
  }
  auto final_matches = s.CurrentMatches(1);
  ASSERT_TRUE(final_matches.ok());
  EXPECT_GE((*final_matches)[0].distance, 0.0);
}

TEST_F(StreamingTest, ResetClearsState) {
  StreamingClassifier s = MakeStreamer();
  StreamCapture((*data_)[0], &s);
  EXPECT_GT(s.windows_completed(), 0u);
  s.Reset();
  EXPECT_EQ(s.windows_completed(), 0u);
  EXPECT_EQ(s.frames_pushed(), 0u);
  EXPECT_FALSE(s.CurrentFinalFeature().ok());
  // Usable again after reset.
  StreamCapture((*data_)[1], &s);
  EXPECT_GT(s.windows_completed(), 0u);
}

}  // namespace
}  // namespace mocemg
