#include "core/codebook.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace mocemg {
namespace {

Matrix MakeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix points(3 * per_blob, 2);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = centers[b][0] + rng.Gaussian(0, 0.5);
      points(b * per_blob + i, 1) = centers[b][1] + rng.Gaussian(0, 0.5);
    }
  }
  return points;
}

FcmCodebook TrainBook(size_t c, uint64_t seed = 3) {
  FcmOptions opts;
  opts.num_clusters = c;
  opts.seed = seed;
  return *FcmCodebook::Train(MakeBlobs(30, seed), opts);
}

TEST(FcmCodebookTest, TrainProducesCenters) {
  FcmCodebook book = TrainBook(3);
  EXPECT_EQ(book.num_clusters(), 3u);
  EXPECT_EQ(book.dimension(), 2u);
  EXPECT_DOUBLE_EQ(book.fuzziness(), 2.0);
}

TEST(FcmCodebookTest, FromCentersValidations) {
  EXPECT_FALSE(FcmCodebook::FromCenters(Matrix(), 2.0).ok());
  EXPECT_FALSE(FcmCodebook::FromCenters(Matrix(2, 2, 1.0), 1.0).ok());
  EXPECT_TRUE(FcmCodebook::FromCenters(Matrix(2, 2, 1.0), 2.0).ok());
}

TEST(FcmCodebookTest, MembershipSumsToOne) {
  FcmCodebook book = TrainBook(3);
  auto u = book.Membership({1.0, 1.0});
  ASSERT_TRUE(u.ok());
  double sum = 0.0;
  for (double v : *u) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FcmCodebookTest, MembershipMatrixShape) {
  FcmCodebook book = TrainBook(3);
  Matrix pts = MakeBlobs(5, 99);
  auto u = book.MembershipMatrix(pts);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->rows(), pts.rows());
  EXPECT_EQ(u->cols(), 3u);
  EXPECT_FALSE(book.MembershipMatrix(Matrix(2, 5)).ok());
}

TEST(FinalMotionFeatureTest, LengthIsTwiceClusters) {
  // Figure 4: feature layout [min_i, max_i] per cluster.
  Matrix memberships(4, 3);
  memberships.SetRow(0, {0.7, 0.2, 0.1});
  memberships.SetRow(1, {0.5, 0.3, 0.2});
  memberships.SetRow(2, {0.1, 0.8, 0.1});
  memberships.SetRow(3, {0.2, 0.1, 0.7});
  auto f = FinalMotionFeature(memberships);
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(f->size(), 6u);
  // Cluster 0 won windows 0 (0.7) and 1 (0.5): min 0.5, max 0.7.
  EXPECT_DOUBLE_EQ((*f)[0], 0.5);
  EXPECT_DOUBLE_EQ((*f)[1], 0.7);
  // Cluster 1 won window 2 only: min = max = 0.8.
  EXPECT_DOUBLE_EQ((*f)[2], 0.8);
  EXPECT_DOUBLE_EQ((*f)[3], 0.8);
  // Cluster 2 won window 3 only.
  EXPECT_DOUBLE_EQ((*f)[4], 0.7);
  EXPECT_DOUBLE_EQ((*f)[5], 0.7);
}

TEST(FinalMotionFeatureTest, UnvisitedClustersAreZero) {
  Matrix memberships(2, 4);
  memberships.SetRow(0, {0.9, 0.05, 0.03, 0.02});
  memberships.SetRow(1, {0.8, 0.1, 0.05, 0.05});
  auto f = FinalMotionFeature(memberships);
  ASSERT_TRUE(f.ok());
  // Clusters 1-3 won nothing → (0, 0), as in Figure 4's flat segments.
  for (size_t i = 2; i < 8; ++i) EXPECT_DOUBLE_EQ((*f)[i], 0.0);
}

TEST(FinalMotionFeatureTest, MinNeverExceedsMax) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix memberships(10, 5);
    for (size_t w = 0; w < 10; ++w) {
      double sum = 0.0;
      std::vector<double> row(5);
      for (auto& v : row) {
        v = rng.NextDouble() + 1e-6;
        sum += v;
      }
      for (auto& v : row) v /= sum;
      memberships.SetRow(w, row);
    }
    auto f = FinalMotionFeature(memberships);
    ASSERT_TRUE(f.ok());
    for (size_t c = 0; c < 5; ++c) {
      EXPECT_LE((*f)[2 * c], (*f)[2 * c + 1]);
      EXPECT_GE((*f)[2 * c], 0.0);
      EXPECT_LE((*f)[2 * c + 1], 1.0);
    }
  }
}

TEST(FinalMotionFeatureTest, EmptyInputFails) {
  EXPECT_FALSE(FinalMotionFeature(Matrix()).ok());
}

TEST(FinalMotionFeatureTest, SingleWindowMotion) {
  Matrix memberships(1, 2);
  memberships.SetRow(0, {0.6, 0.4});
  auto f = FinalMotionFeature(memberships);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ((*f)[0], 0.6);
  EXPECT_DOUBLE_EQ((*f)[1], 0.6);
  EXPECT_DOUBLE_EQ((*f)[2], 0.0);
  EXPECT_DOUBLE_EQ((*f)[3], 0.0);
}

TEST(HardAssignmentFeatureTest, VotesSumToOne) {
  Matrix centers{{0.0, 0.0}, {10.0, 0.0}};
  Matrix pts(4, 2);
  pts.SetRow(0, {0.1, 0.0});
  pts.SetRow(1, {0.2, 0.1});
  pts.SetRow(2, {9.9, 0.0});
  pts.SetRow(3, {-0.1, 0.0});
  auto f = HardAssignmentFeature(centers, pts);
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ((*f)[0], 0.75);
  EXPECT_DOUBLE_EQ((*f)[1], 0.25);
  EXPECT_FALSE(HardAssignmentFeature(centers, Matrix()).ok());
}

TEST(FcmCodebookTest, SimilarMotionsHaveSimilarFinalFeatures) {
  // The separability property the paper relies on: two motions whose
  // windows sample the same clusters end with nearby final vectors.
  FcmCodebook book = TrainBook(3, 8);
  Rng rng(8);
  auto windows_near = [&](double cx, double cy, uint64_t seed) {
    Rng local(seed);
    Matrix w(6, 2);
    for (size_t i = 0; i < 6; ++i) {
      w(i, 0) = cx + local.Gaussian(0, 0.3);
      w(i, 1) = cy + local.Gaussian(0, 0.3);
    }
    return w;
  };
  (void)rng;
  auto fa = FinalMotionFeature(
      *book.MembershipMatrix(windows_near(0.0, 0.0, 1)));
  auto fb = FinalMotionFeature(
      *book.MembershipMatrix(windows_near(0.0, 0.0, 2)));
  auto fc = FinalMotionFeature(
      *book.MembershipMatrix(windows_near(10.0, 0.0, 3)));
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(fc.ok());
  double same = 0.0;
  double diff = 0.0;
  for (size_t i = 0; i < fa->size(); ++i) {
    same += ((*fa)[i] - (*fb)[i]) * ((*fa)[i] - (*fb)[i]);
    diff += ((*fa)[i] - (*fc)[i]) * ((*fa)[i] - (*fc)[i]);
  }
  EXPECT_LT(same, diff);
}

}  // namespace
}  // namespace mocemg
