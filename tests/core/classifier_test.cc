#include "core/classifier.h"

#include <gtest/gtest.h>

#include "eval/protocols.h"
#include "synth/dataset.h"

namespace mocemg {
namespace {

// Shared fixture data: a small hand dataset (6 classes × 3 trials),
// generated once — dataset synthesis dominates the test's runtime.
class ClassifierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 3;
    opts.seed = 2024;
    motions_ = new std::vector<LabeledMotion>(
        ToLabeledMotions(*GenerateDataset(opts)));
  }
  static void TearDownTestSuite() {
    delete motions_;
    motions_ = nullptr;
  }

  static ClassifierOptions DefaultOptions() {
    ClassifierOptions opts;
    opts.fcm.num_clusters = 8;
    opts.fcm.seed = 5;
    opts.features.window_ms = 100.0;
    return opts;
  }

  static std::vector<LabeledMotion>* motions_;
};

std::vector<LabeledMotion>* ClassifierTest::motions_ = nullptr;

TEST_F(ClassifierTest, TrainRejectsEmpty) {
  EXPECT_FALSE(MotionClassifier::Train({}, DefaultOptions()).ok());
}

TEST_F(ClassifierTest, TrainProducesFinalFeatures) {
  auto clf = MotionClassifier::Train(*motions_, DefaultOptions());
  ASSERT_TRUE(clf.ok()) << clf.status();
  EXPECT_EQ(clf->num_motions(), motions_->size());
  // 2c-length final features (Eq. 5–8).
  EXPECT_EQ(clf->final_features().cols(), 16u);
  EXPECT_EQ(clf->codebook().num_clusters(), 8u);
  // All features in [0, 1] with min ≤ max per cluster.
  for (size_t i = 0; i < clf->final_features().rows(); ++i) {
    for (size_t c = 0; c < 8; ++c) {
      const double lo = clf->final_features()(i, 2 * c);
      const double hi = clf->final_features()(i, 2 * c + 1);
      EXPECT_GE(lo, 0.0);
      EXPECT_LE(hi, 1.0);
      EXPECT_LE(lo, hi);
    }
  }
}

TEST_F(ClassifierTest, FeaturizeMatchesTrainingRepresentation) {
  auto clf = MotionClassifier::Train(*motions_, DefaultOptions());
  ASSERT_TRUE(clf.ok());
  // Featurizing a training motion must land exactly on its stored final
  // feature (same pipeline, same codebook).
  const LabeledMotion& m = (*motions_)[0];
  auto f = clf->Featurize(m.mocap, m.emg);
  ASSERT_TRUE(f.ok()) << f.status();
  const auto stored = clf->final_features().Row(0);
  ASSERT_EQ(f->size(), stored.size());
  for (size_t i = 0; i < stored.size(); ++i) {
    EXPECT_NEAR((*f)[i], stored[i], 1e-9);
  }
}

TEST_F(ClassifierTest, TrainingMotionsClassifyToOwnLabels) {
  auto clf = MotionClassifier::Train(*motions_, DefaultOptions());
  ASSERT_TRUE(clf.ok());
  size_t correct = 0;
  for (const auto& m : *motions_) {
    auto label = clf->Classify(m.mocap, m.emg);
    ASSERT_TRUE(label.ok());
    if (*label == m.label) ++correct;
  }
  // Resubstitution accuracy must be essentially perfect.
  EXPECT_GE(correct, motions_->size() - 1);
}

TEST_F(ClassifierTest, NearestNeighborsOrderedAndBounded) {
  auto clf = MotionClassifier::Train(*motions_, DefaultOptions());
  ASSERT_TRUE(clf.ok());
  const LabeledMotion& m = (*motions_)[4];
  auto f = clf->Featurize(m.mocap, m.emg);
  ASSERT_TRUE(f.ok());
  auto nn = clf->NearestNeighbors(*f, 5);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->size(), 5u);
  for (size_t i = 1; i < nn->size(); ++i) {
    EXPECT_LE((*nn)[i - 1].distance, (*nn)[i].distance);
  }
  // Self is the closest match.
  EXPECT_EQ((*nn)[0].index, 4u);
  // k larger than the database clamps.
  auto all = clf->NearestNeighbors(*f, 1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), motions_->size());
  EXPECT_FALSE(clf->NearestNeighbors(*f, 0).ok());
  EXPECT_FALSE(clf->NearestNeighbors({1.0, 2.0}, 3).ok());
}

TEST_F(ClassifierTest, UntrainedClassifierFails) {
  MotionClassifier clf;
  const LabeledMotion& m = (*motions_)[0];
  EXPECT_FALSE(clf.Featurize(m.mocap, m.emg).ok());
  EXPECT_FALSE(clf.NearestNeighbors({1.0}, 1).ok());
}

TEST_F(ClassifierTest, HardClusterAblationHasCFeatures) {
  ClassifierOptions opts = DefaultOptions();
  opts.cluster_method = ClusterMethod::kKmeansHard;
  auto clf = MotionClassifier::Train(*motions_, opts);
  ASSERT_TRUE(clf.ok()) << clf.status();
  EXPECT_EQ(clf->final_features().cols(), 8u);
  const LabeledMotion& m = (*motions_)[0];
  auto f = clf->Featurize(m.mocap, m.emg);
  ASSERT_TRUE(f.ok());
  double sum = 0.0;
  for (double v : *f) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);  // vote fractions
}

TEST_F(ClassifierTest, NormalizationOffStillTrains) {
  ClassifierOptions opts = DefaultOptions();
  opts.normalize_features = false;
  auto clf = MotionClassifier::Train(*motions_, opts);
  ASSERT_TRUE(clf.ok()) << clf.status();
  EXPECT_EQ(clf->num_motions(), motions_->size());
}

TEST_F(ClassifierTest, EmgOnlyAndMocapOnlyPipelines) {
  for (bool use_emg : {true, false}) {
    ClassifierOptions opts = DefaultOptions();
    opts.features.use_emg = use_emg;
    opts.features.use_mocap = !use_emg;
    auto clf = MotionClassifier::Train(*motions_, opts);
    ASSERT_TRUE(clf.ok()) << clf.status();
    const LabeledMotion& m = (*motions_)[0];
    EXPECT_TRUE(clf->Classify(m.mocap, m.emg).ok());
  }
}

TEST_F(ClassifierTest, DeterministicAcrossRuns) {
  auto a = MotionClassifier::Train(*motions_, DefaultOptions());
  auto b = MotionClassifier::Train(*motions_, DefaultOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->final_features().AllClose(b->final_features(), 0.0));
}

}  // namespace
}  // namespace mocemg
