#include "core/normalizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace mocemg {
namespace {

TEST(NormalizerTest, FitRejectsEmpty) {
  EXPECT_FALSE(Normalizer::Fit(Matrix()).ok());
}

TEST(NormalizerTest, TransformedDataIsStandardized) {
  Rng rng(1);
  Matrix pts(500, 2);
  for (size_t i = 0; i < 500; ++i) {
    pts(i, 0) = rng.Gaussian(5.0, 3.0);
    pts(i, 1) = rng.Gaussian(-2.0, 1e-5);  // volt-scale dimension
  }
  auto norm = Normalizer::Fit(pts);
  ASSERT_TRUE(norm.ok());
  auto out = norm->Transform(pts);
  ASSERT_TRUE(out.ok());
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < 500; ++i) mean += (*out)(i, j);
    mean /= 500.0;
    double var = 0.0;
    for (size_t i = 0; i < 500; ++i) {
      var += ((*out)(i, j) - mean) * ((*out)(i, j) - mean);
    }
    var /= 500.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(NormalizerTest, EqualizesMismatchedScales) {
  // The exact failure mode the paper's pipeline silently hits: EMG
  // dimensions at 1e-5 vs mocap at O(1). After z-scoring, both
  // contribute comparably to Euclidean distances.
  Rng rng(2);
  Matrix pts(200, 2);
  for (size_t i = 0; i < 200; ++i) {
    pts(i, 0) = rng.Gaussian(0.0, 1e-5);
    pts(i, 1) = rng.Gaussian(0.0, 1.0);
  }
  auto norm = Normalizer::Fit(pts);
  ASSERT_TRUE(norm.ok());
  auto out = norm->Transform(pts);
  ASSERT_TRUE(out.ok());
  double spread0 = 0.0;
  double spread1 = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    spread0 += (*out)(i, 0) * (*out)(i, 0);
    spread1 += (*out)(i, 1) * (*out)(i, 1);
  }
  EXPECT_NEAR(spread0 / spread1, 1.0, 0.01);
}

TEST(NormalizerTest, ZeroVarianceDimensionPassesThrough) {
  Matrix pts(10, 2);
  for (size_t i = 0; i < 10; ++i) {
    pts(i, 0) = 7.0;  // constant
    pts(i, 1) = static_cast<double>(i);
  }
  auto norm = Normalizer::Fit(pts);
  ASSERT_TRUE(norm.ok());
  auto out = norm->Transform(pts);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ((*out)(i, 0), 0.0);  // centered, σ = 1 fallback
    EXPECT_TRUE(std::isfinite((*out)(i, 1)));
  }
}

TEST(NormalizerTest, IdentityIsNoop) {
  Normalizer id = Normalizer::Identity(3);
  std::vector<double> p{1.0, -2.0, 5.0};
  std::vector<double> orig = p;
  ASSERT_TRUE(id.TransformInPlace(&p).ok());
  EXPECT_EQ(p, orig);
}

TEST(NormalizerTest, InverseRoundTrip) {
  Rng rng(3);
  Matrix pts(50, 3);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 3; ++j) pts(i, j) = rng.Gaussian(2.0, 4.0);
  }
  auto norm = Normalizer::Fit(pts);
  ASSERT_TRUE(norm.ok());
  std::vector<double> p = pts.Row(7);
  std::vector<double> orig = p;
  ASSERT_TRUE(norm->TransformInPlace(&p).ok());
  ASSERT_TRUE(norm->InverseInPlace(&p).ok());
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR(p[j], orig[j], 1e-10);
}

TEST(NormalizerTest, DimensionMismatchRejected) {
  auto norm = Normalizer::Fit(Matrix(5, 2, 1.0));
  ASSERT_TRUE(norm.ok());
  EXPECT_FALSE(norm->Transform(Matrix(5, 3)).ok());
  std::vector<double> p{1.0};
  EXPECT_FALSE(norm->TransformInPlace(&p).ok());
  EXPECT_FALSE(norm->TransformInPlace(nullptr).ok());
}

TEST(NormalizerTest, QueryUsesTrainingStatistics) {
  // Transforming a new point uses the *fitted* μ/σ, not the query's.
  Matrix pts(4, 1);
  pts(0, 0) = 0.0;
  pts(1, 0) = 2.0;
  pts(2, 0) = 4.0;
  pts(3, 0) = 6.0;  // μ = 3, σ = √5
  auto norm = Normalizer::Fit(pts);
  ASSERT_TRUE(norm.ok());
  std::vector<double> q{3.0};
  ASSERT_TRUE(norm->TransformInPlace(&q).ok());
  EXPECT_NEAR(q[0], 0.0, 1e-12);
  q = {3.0 + std::sqrt(5.0)};
  ASSERT_TRUE(norm->TransformInPlace(&q).ok());
  EXPECT_NEAR(q[0], 1.0, 1e-12);
}

}  // namespace
}  // namespace mocemg
