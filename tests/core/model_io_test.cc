#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "eval/protocols.h"
#include "synth/dataset.h"

namespace mocemg {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 3;
    opts.seed = 4242;
    motions_ = new std::vector<LabeledMotion>(
        ToLabeledMotions(*GenerateDataset(opts)));
    ClassifierOptions copts;
    copts.fcm.num_clusters = 8;
    copts.fcm.seed = 17;
    trained_ = new MotionClassifier(
        *MotionClassifier::Train(*motions_, copts));
  }
  static void TearDownTestSuite() {
    delete motions_;
    delete trained_;
    motions_ = nullptr;
    trained_ = nullptr;
  }
  static std::vector<LabeledMotion>* motions_;
  static MotionClassifier* trained_;
};

std::vector<LabeledMotion>* ModelIoTest::motions_ = nullptr;
MotionClassifier* ModelIoTest::trained_ = nullptr;

TEST_F(ModelIoTest, SerializeRejectsUntrained) {
  MotionClassifier empty;
  EXPECT_FALSE(SerializeClassifier(empty).ok());
}

TEST_F(ModelIoTest, RoundTripPreservesModelShape) {
  auto text = SerializeClassifier(*trained_);
  ASSERT_TRUE(text.ok()) << text.status();
  auto loaded = DeserializeClassifier(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_motions(), trained_->num_motions());
  EXPECT_EQ(loaded->codebook().num_clusters(),
            trained_->codebook().num_clusters());
  EXPECT_EQ(loaded->codebook().dimension(),
            trained_->codebook().dimension());
  EXPECT_EQ(loaded->labels(), trained_->labels());
  EXPECT_EQ(loaded->label_names(), trained_->label_names());
  EXPECT_TRUE(loaded->final_features().AllClose(
      trained_->final_features(), 1e-10));
}

TEST_F(ModelIoTest, LoadedModelFeaturizesIdentically) {
  auto text = SerializeClassifier(*trained_);
  ASSERT_TRUE(text.ok());
  auto loaded = DeserializeClassifier(*text);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < motions_->size(); i += 5) {
    const LabeledMotion& m = (*motions_)[i];
    auto a = trained_->Featurize(m.mocap, m.emg);
    auto b = loaded->Featurize(m.mocap, m.emg);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status();
    ASSERT_EQ(a->size(), b->size());
    for (size_t j = 0; j < a->size(); ++j) {
      EXPECT_NEAR((*a)[j], (*b)[j], 1e-9);
    }
    auto la = trained_->Classify(m.mocap, m.emg);
    auto lb = loaded->Classify(m.mocap, m.emg);
    ASSERT_TRUE(la.ok());
    ASSERT_TRUE(lb.ok());
    EXPECT_EQ(*la, *lb);
  }
}

TEST_F(ModelIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/model_io_test.model";
  ASSERT_TRUE(SaveClassifier(*trained_, path).ok());
  auto loaded = LoadClassifier(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_motions(), trained_->num_motions());
  std::remove(path.c_str());
}

TEST_F(ModelIoTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeClassifier("NOTAMODEL\n").ok());
}

TEST_F(ModelIoTest, RejectsTruncation) {
  auto text = SerializeClassifier(*trained_);
  ASSERT_TRUE(text.ok());
  // Chop the model at 60 %: must fail cleanly, not crash.
  auto truncated = text->substr(0, text->size() * 3 / 5);
  auto loaded = DeserializeClassifier(truncated);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
}

TEST_F(ModelIoTest, RejectsCorruptedNumbers) {
  auto text = SerializeClassifier(*trained_);
  ASSERT_TRUE(text.ok());
  std::string corrupted = *text;
  const size_t pos = corrupted.find("center\t");
  ASSERT_NE(pos, std::string::npos);
  corrupted.replace(pos + 7, 3, "xyz");
  EXPECT_FALSE(DeserializeClassifier(corrupted).ok());
}

TEST_F(ModelIoTest, RoundTripOfHardClusterModel) {
  ClassifierOptions copts;
  copts.fcm.num_clusters = 6;
  copts.cluster_method = ClusterMethod::kKmeansHard;
  auto clf = MotionClassifier::Train(*motions_, copts);
  ASSERT_TRUE(clf.ok());
  auto text = SerializeClassifier(*clf);
  ASSERT_TRUE(text.ok());
  auto loaded = DeserializeClassifier(*text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const LabeledMotion& m = (*motions_)[0];
  auto a = clf->Featurize(m.mocap, m.emg);
  auto b = loaded->Featurize(m.mocap, m.emg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t j = 0; j < a->size(); ++j) {
    EXPECT_NEAR((*a)[j], (*b)[j], 1e-9);
  }
}

TEST_F(ModelIoTest, MissingModelFileFails) {
  EXPECT_FALSE(LoadClassifier("/no/such/model.file").ok());
}

}  // namespace
}  // namespace mocemg
