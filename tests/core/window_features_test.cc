#include "core/window_features.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

// A small synchronized capture: 2 markers (pelvis + hand) at 120 Hz and
// 2 conditioned EMG channels at the same rate.
struct Capture {
  MotionSequence mocap;
  EmgRecording emg;
};

Capture MakeCapture(size_t frames = 120) {
  MarkerSet set({Segment::kPelvis, Segment::kHand});
  Matrix positions(frames, 6);
  for (size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f);
    positions(f, 0) = 100.0;  // pelvis parked away from origin
    positions(f, 3) = 100.0 + 2.0 * t;
    positions(f, 4) = std::sin(0.1 * t) * 30.0;
    positions(f, 5) = 500.0;
  }
  Capture cap;
  cap.mocap = *MotionSequence::Create(set, std::move(positions), 120.0);
  std::vector<double> ch1(frames);
  std::vector<double> ch2(frames);
  for (size_t f = 0; f < frames; ++f) {
    ch1[f] = 1e-5 * (1.0 + std::sin(0.05 * f));
    ch2[f] = 2e-5;
  }
  cap.emg = *EmgRecording::Create({Muscle::kBiceps, Muscle::kTriceps},
                                  {ch1, ch2}, 120.0);
  return cap;
}

TEST(WindowFeaturesTest, DimensionFormula) {
  WindowFeatureOptions opts;
  // 4 EMG channels + 3·4 mocap = 16 (the paper's hand space).
  EXPECT_EQ(WindowFeatureDimension(opts, 4, 4), 16u);
  // 2 EMG + 3·3 mocap = 11 (the leg space).
  EXPECT_EQ(WindowFeatureDimension(opts, 2, 3), 11u);
  opts.use_emg = false;
  EXPECT_EQ(WindowFeatureDimension(opts, 4, 4), 12u);
  opts.use_emg = true;
  opts.use_mocap = false;
  EXPECT_EQ(WindowFeatureDimension(opts, 4, 4), 4u);
  opts.emg_feature = EmgFeatureKind::kAr4;
  EXPECT_EQ(WindowFeatureDimension(opts, 4, 4), 16u);
}

TEST(WindowFeaturesTest, RejectsNonPositiveWindowMs) {
  Capture cap = MakeCapture(120);
  WindowFeatureOptions opts;
  opts.window_ms = -100.0;
  auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
  // The message must name the offending field: WindowMsToFrames clamps
  // to one frame, so without this check a negative window would quietly
  // produce 1-frame windows.
  EXPECT_NE(out.status().message().find("window_ms"), std::string::npos)
      << out.status();

  opts.window_ms = 0.0;
  out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(WindowFeaturesTest, RejectsNegativeHopMs) {
  Capture cap = MakeCapture(120);
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_ms = -10.0;
  auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
  EXPECT_NE(out.status().message().find("hop_ms"), std::string::npos)
      << out.status();
}

TEST(WindowFeaturesTest, ProducesExpectedShape) {
  Capture cap = MakeCapture(120);
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;  // 12 frames → 10 windows
  auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->points.rows(), 10u);
  EXPECT_EQ(out->points.cols(), 5u);  // 2 EMG + 3 mocap (1 segment)
  EXPECT_EQ(out->plan.num_windows(), 10u);
}

TEST(WindowFeaturesTest, EmgColumnsAreWindowIav) {
  Capture cap = MakeCapture(120);
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_TRUE(out.ok());
  // Channel 2 is constant 2e-5 → IAV = 12 × 2e-5 per window.
  for (size_t w = 0; w < out->points.rows(); ++w) {
    EXPECT_NEAR(out->points(w, 1), 12.0 * 2e-5, 1e-12);
  }
}

TEST(WindowFeaturesTest, MocapColumnsAreLocalTransformed) {
  // The pelvis offset (100 mm) must not leak into the features: a
  // capture translated by 1 m gives identical features.
  Capture a = MakeCapture(120);
  Capture b = MakeCapture(120);
  for (size_t f = 0; f < 120; ++f) {
    for (size_t m = 0; m < 2; ++m) {
      auto p = b.mocap.MarkerPosition(f, m);
      b.mocap.SetMarkerPosition(f, m,
                                {p[0] + 1000.0, p[1] - 500.0, p[2]});
    }
  }
  WindowFeatureOptions opts;
  auto fa = ExtractWindowFeatures(a.mocap, a.emg, opts);
  auto fb = ExtractWindowFeatures(b.mocap, b.emg, opts);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_TRUE(fa->points.AllClose(fb->points, 1e-9));
}

TEST(WindowFeaturesTest, ModalityToggles) {
  Capture cap = MakeCapture(120);
  WindowFeatureOptions emg_only;
  emg_only.use_mocap = false;
  auto fe = ExtractWindowFeatures(cap.mocap, cap.emg, emg_only);
  ASSERT_TRUE(fe.ok());
  EXPECT_EQ(fe->points.cols(), 2u);

  WindowFeatureOptions mocap_only;
  mocap_only.use_emg = false;
  auto fm = ExtractWindowFeatures(cap.mocap, cap.emg, mocap_only);
  ASSERT_TRUE(fm.ok());
  EXPECT_EQ(fm->points.cols(), 3u);

  WindowFeatureOptions none;
  none.use_emg = false;
  none.use_mocap = false;
  EXPECT_FALSE(ExtractWindowFeatures(cap.mocap, cap.emg, none).ok());
}

TEST(WindowFeaturesTest, EmgOrderPrecedesMocap) {
  // Section 3.3 appends mocap onto EMG: the combined vector's first m
  // entries must be the EMG features.
  Capture cap = MakeCapture(120);
  WindowFeatureOptions opts;
  auto combined = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  WindowFeatureOptions emg_only = opts;
  emg_only.use_mocap = false;
  auto emg = ExtractWindowFeatures(cap.mocap, cap.emg, emg_only);
  ASSERT_TRUE(combined.ok());
  ASSERT_TRUE(emg.ok());
  for (size_t w = 0; w < combined->points.rows(); ++w) {
    EXPECT_DOUBLE_EQ(combined->points(w, 0), emg->points(w, 0));
    EXPECT_DOUBLE_EQ(combined->points(w, 1), emg->points(w, 1));
  }
}

TEST(WindowFeaturesTest, RateMismatchRejected) {
  Capture cap = MakeCapture(120);
  auto bad_emg = EmgRecording::Create(
      {Muscle::kBiceps}, {std::vector<double>(1000, 1e-5)}, 1000.0);
  ASSERT_TRUE(bad_emg.ok());
  EXPECT_TRUE(ExtractWindowFeatures(cap.mocap, *bad_emg,
                                    WindowFeatureOptions{})
                  .status()
                  .IsFailedPrecondition());
}

TEST(WindowFeaturesTest, UsesStreamOverlapWhenLengthsDiffer) {
  Capture cap = MakeCapture(120);
  auto shorter = cap.emg.SampleSlice(0, 110);
  ASSERT_TRUE(shorter.ok());
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  auto out = ExtractWindowFeatures(cap.mocap, *shorter, opts);
  ASSERT_TRUE(out.ok());
  // 110 frames overlap → 9 full windows + right-aligned tail.
  EXPECT_GE(out->points.rows(), 9u);
  for (const auto& span : out->plan.spans) {
    EXPECT_LE(span.end, 110u);
  }
}

TEST(WindowFeaturesTest, TooShortOverlapFails) {
  Capture cap = MakeCapture(8);  // shorter than a 12-frame window
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  EXPECT_FALSE(ExtractWindowFeatures(cap.mocap, cap.emg, opts).ok());
}

TEST(WindowFeaturesTest, OverlappingWindowsViaHop) {
  Capture cap = MakeCapture(120);
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_frames = 6;
  auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->points.rows(), 10u);
}

TEST(WindowFeaturesTest, AllValuesFinite) {
  Capture cap = MakeCapture(240);
  for (double window_ms : {50.0, 100.0, 150.0, 200.0}) {
    WindowFeatureOptions opts;
    opts.window_ms = window_ms;
    auto out = ExtractWindowFeatures(cap.mocap, cap.emg, opts);
    ASSERT_TRUE(out.ok());
    for (double v : out->points.data()) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

}  // namespace
}  // namespace mocemg
