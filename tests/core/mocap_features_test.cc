#include "core/mocap_features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/random.h"

namespace mocemg {
namespace {

Matrix LineWindow(size_t frames, double dx, double dy, double dz) {
  Matrix w(frames, 3);
  for (size_t f = 0; f < frames; ++f) {
    w(f, 0) = dx * static_cast<double>(f);
    w(f, 1) = dy * static_cast<double>(f);
    w(f, 2) = dz * static_cast<double>(f);
  }
  return w;
}

TEST(WeightedSvdFeatureTest, Validations) {
  EXPECT_FALSE(WeightedSvdFeature(Matrix(5, 2)).ok());
  EXPECT_FALSE(WeightedSvdFeature(Matrix(0, 3)).ok());
}

TEST(WeightedSvdFeatureTest, StationaryOriginIsZero) {
  auto f = WeightedSvdFeature(Matrix(12, 3));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, std::vector<double>(3, 0.0));
}

TEST(WeightedSvdFeatureTest, PureLineMotionPointsAlongLine) {
  // Rank-1 window: σ2 = σ3 = 0, so the feature is exactly v1, the motion
  // direction (up to the sign convention).
  auto f = WeightedSvdFeature(LineWindow(12, 3.0, 0.0, 0.0));
  ASSERT_TRUE(f.ok());
  EXPECT_NEAR(std::fabs((*f)[0]), 1.0, 1e-9);
  EXPECT_NEAR((*f)[1], 0.0, 1e-9);
  EXPECT_NEAR((*f)[2], 0.0, 1e-9);
}

TEST(WeightedSvdFeatureTest, WeightsSumToOneBoundsNorm) {
  // ‖f‖ = ‖Σ ŵ_i v_i‖ ≤ Σ ŵ_i = 1 for orthonormal v_i.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix w(10, 3);
    for (size_t r = 0; r < 10; ++r) {
      for (size_t c = 0; c < 3; ++c) w(r, c) = rng.Gaussian(0, 100.0);
    }
    auto f = WeightedSvdFeature(w);
    ASSERT_TRUE(f.ok());
    EXPECT_LE(Norm2(*f), 1.0 + 1e-9);
  }
}

TEST(WeightedSvdFeatureTest, ScaleInvariantDirectionSensitive) {
  // Doubling the amplitude leaves singular-value *ratios* and singular
  // vectors unchanged → identical feature (geometric similarity, not
  // magnitude).
  Matrix base = LineWindow(12, 1.0, 2.0, 0.5);
  Matrix scaled = base;
  scaled.Scale(2.0);
  auto fa = WeightedSvdFeature(base);
  auto fb = WeightedSvdFeature(scaled);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR((*fa)[i], (*fb)[i], 1e-9);
  // A differently directed motion gives a different feature.
  auto fc = WeightedSvdFeature(LineWindow(12, 0.0, 0.0, 1.0));
  ASSERT_TRUE(fc.ok());
  EXPECT_GT(EuclideanDistance(*fa, *fc), 0.1);
}

TEST(WeightedSvdFeatureTest, SimilarWindowsGiveCloseFeatures) {
  Rng rng(2);
  Matrix a = LineWindow(12, 2.0, 1.0, 0.0);
  Matrix b = a;
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) b(r, c) += rng.Gaussian(0.0, 0.05);
  }
  auto fa = WeightedSvdFeature(a);
  auto fb = WeightedSvdFeature(b);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_LT(EuclideanDistance(*fa, *fb), 0.15);
}

TEST(ExtractMocapFeatureTest, MeanPositionBaseline) {
  Matrix w(4, 3);
  for (size_t f = 0; f < 4; ++f) w(f, 0) = 1000.0;
  auto feat =
      ExtractMocapFeature(MocapFeatureKind::kMeanPosition, w);
  ASSERT_TRUE(feat.ok());
  EXPECT_NEAR((*feat)[0], 1.0, 1e-12);  // mm → O(1) scaling
  EXPECT_NEAR((*feat)[1], 0.0, 1e-12);
}

TEST(ExtractMocapFeatureTest, DisplacementBaseline) {
  auto feat = ExtractMocapFeature(MocapFeatureKind::kDisplacement,
                                  LineWindow(11, 100.0, 0.0, -50.0));
  ASSERT_TRUE(feat.ok());
  EXPECT_NEAR((*feat)[0], 1.0, 1e-12);   // 10 frames × 100 mm / 1000
  EXPECT_NEAR((*feat)[2], -0.5, 1e-12);
}

TEST(ExtractMocapFeatureTest, AllKindsReturnLengthThree) {
  Matrix w = LineWindow(8, 1.0, 1.0, 1.0);
  for (MocapFeatureKind kind :
       {MocapFeatureKind::kWeightedSvd, MocapFeatureKind::kMeanPosition,
        MocapFeatureKind::kDisplacement}) {
    auto f = ExtractMocapFeature(kind, w);
    ASSERT_TRUE(f.ok()) << MocapFeatureKindName(kind);
    EXPECT_EQ(f->size(), 3u);
  }
}

TEST(ExtractMocapFeatureTest, SingleFrameWindow) {
  Matrix w(1, 3);
  w(0, 0) = 5.0;
  for (MocapFeatureKind kind :
       {MocapFeatureKind::kWeightedSvd, MocapFeatureKind::kMeanPosition,
        MocapFeatureKind::kDisplacement}) {
    EXPECT_TRUE(ExtractMocapFeature(kind, w).ok());
  }
}

}  // namespace
}  // namespace mocemg
