#include "emg/features.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace mocemg {
namespace {

TEST(IavTest, MatchesPaperEquationOne) {
  // IAV_j = Σ |x_k| over the window (Eq. 1).
  std::vector<double> w{1.0, -2.0, 3.0, -4.0};
  EXPECT_DOUBLE_EQ(IntegralOfAbsoluteValue(w), 10.0);
}

TEST(IavTest, EmptyWindowIsZero) {
  EXPECT_DOUBLE_EQ(IntegralOfAbsoluteValue(nullptr, 0), 0.0);
}

TEST(IavTest, ScalesLinearlyWithWindowLength) {
  std::vector<double> a(10, 0.5);
  std::vector<double> b(20, 0.5);
  EXPECT_DOUBLE_EQ(IntegralOfAbsoluteValue(b),
                   2.0 * IntegralOfAbsoluteValue(a));
}

TEST(MavTest, IsIavOverN) {
  std::vector<double> w{1.0, -3.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteValue(w.data(), 2), 2.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteValue(nullptr, 0), 0.0);
}

TEST(RmsTest, KnownValue) {
  std::vector<double> w{3.0, 4.0};
  EXPECT_DOUBLE_EQ(RootMeanSquare(w.data(), 2), std::sqrt(12.5));
}

TEST(WaveformLengthTest, KnownValue) {
  std::vector<double> w{0.0, 1.0, -1.0, 0.5};
  EXPECT_DOUBLE_EQ(WaveformLength(w.data(), 4), 1.0 + 2.0 + 1.5);
  EXPECT_DOUBLE_EQ(WaveformLength(w.data(), 1), 0.0);
}

TEST(ZeroCrossingsTest, CountsSignChanges) {
  std::vector<double> w{1.0, -1.0, 1.0, -1.0};
  EXPECT_EQ(ZeroCrossings(w.data(), 4), 3u);
}

TEST(ZeroCrossingsTest, DeadBandSuppressesSmallSwings) {
  std::vector<double> w{0.01, -0.01, 0.01};
  EXPECT_EQ(ZeroCrossings(w.data(), 3, 0.1), 0u);
  EXPECT_EQ(ZeroCrossings(w.data(), 3, 0.0), 2u);
}

TEST(ZeroCrossingsTest, SineHasTwoPerCycle) {
  const size_t n = 1000;
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = std::sin(2.0 * M_PI * 10.0 * i / 1000.0);
  }
  // 10 Hz over 1 s → ~20 crossings.
  EXPECT_NEAR(static_cast<double>(ZeroCrossings(w.data(), n)), 20.0, 1.0);
}

TEST(SlopeSignChangesTest, CountsExtrema) {
  std::vector<double> w{0.0, 1.0, 0.0, 1.0, 0.0};
  EXPECT_EQ(SlopeSignChanges(w.data(), 5), 3u);
}

TEST(WillisonAmplitudeTest, Threshold) {
  std::vector<double> w{0.0, 0.5, 0.6, 2.0};
  EXPECT_EQ(WillisonAmplitude(w.data(), 4, 0.4), 2u);
}

TEST(HistogramTest, CountsFallInBins) {
  std::vector<double> w{0.1, 0.2, 0.9, -5.0, 5.0};
  auto h = EmgHistogram(w.data(), 5, 4, 0.0, 1.0);
  ASSERT_TRUE(h.ok());
  double total = 0.0;
  for (double c : *h) total += c;
  EXPECT_DOUBLE_EQ(total, 5.0);  // outliers clamped into edge bins
  EXPECT_GE((*h)[0], 1.0);       // the -5 clamp
  EXPECT_GE((*h)[3], 2.0);       // 0.9 and the +5 clamp
}

TEST(HistogramTest, Validation) {
  std::vector<double> w{1.0};
  EXPECT_FALSE(EmgHistogram(w.data(), 1, 0, 0.0, 1.0).ok());
  EXPECT_FALSE(EmgHistogram(w.data(), 1, 4, 1.0, 1.0).ok());
}

TEST(BurgArTest, RecoversAr1Coefficient) {
  // x_k = 0.8 x_{k-1} + e_k.
  Rng rng(77);
  const size_t n = 5000;
  std::vector<double> x(n, 0.0);
  for (size_t i = 1; i < n; ++i) {
    x[i] = 0.8 * x[i - 1] + rng.NextGaussian();
  }
  auto a = BurgArCoefficients(x.data(), n, 1);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR((*a)[0], 0.8, 0.05);
}

TEST(BurgArTest, RecoversAr2Signal) {
  // A damped oscillator: x_k = 1.2 x_{k-1} − 0.72 x_{k-2} + e.
  Rng rng(78);
  const size_t n = 8000;
  std::vector<double> x(n, 0.0);
  for (size_t i = 2; i < n; ++i) {
    x[i] = 1.2 * x[i - 1] - 0.72 * x[i - 2] + rng.NextGaussian();
  }
  auto a = BurgArCoefficients(x.data(), n, 2);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR((*a)[0], 1.2, 0.08);
  EXPECT_NEAR((*a)[1], -0.72, 0.08);
}

TEST(BurgArTest, Validation) {
  std::vector<double> x{1.0, 2.0};
  EXPECT_FALSE(BurgArCoefficients(x.data(), 2, 0).ok());
  EXPECT_FALSE(BurgArCoefficients(x.data(), 2, 2).ok());
  std::vector<double> zeros(10, 0.0);
  EXPECT_FALSE(BurgArCoefficients(zeros.data(), 10, 2).ok());
}

TEST(ExtractEmgFeatureTest, ScalarKindsReturnOneValue) {
  std::vector<double> w{1.0, -2.0, 3.0};
  for (EmgFeatureKind kind :
       {EmgFeatureKind::kIav, EmgFeatureKind::kMav, EmgFeatureKind::kRms,
        EmgFeatureKind::kWaveformLength,
        EmgFeatureKind::kZeroCrossings}) {
    auto f = ExtractEmgFeature(kind, w.data(), w.size());
    ASSERT_TRUE(f.ok()) << EmgFeatureKindName(kind);
    EXPECT_EQ(f->size(), 1u);
  }
}

TEST(ExtractEmgFeatureTest, Ar4ReturnsFourValues) {
  Rng rng(79);
  std::vector<double> w(100);
  for (double& v : w) v = rng.NextGaussian();
  auto f = ExtractEmgFeature(EmgFeatureKind::kAr4, w.data(), w.size());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), 4u);
}

TEST(ExtractEmgFeatureTest, Ar4DegradesGracefullyOnFlatWindow) {
  std::vector<double> w(50, 0.0);
  auto f = ExtractEmgFeature(EmgFeatureKind::kAr4, w.data(), w.size());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, std::vector<double>(4, 0.0));
}

TEST(ExtractEmgFeatureTest, EmptyWindowFails) {
  EXPECT_FALSE(
      ExtractEmgFeature(EmgFeatureKind::kIav, nullptr, 0).ok());
}

}  // namespace
}  // namespace mocemg
