#include "emg/emg_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mocemg {
namespace {

EmgRecording MakeRecording() {
  return *EmgRecording::Create(
      {Muscle::kBiceps, Muscle::kUpperForearm},
      {{1.5e-5, -2.5e-6, 0.0}, {3.0e-5, 4.0e-5, -1.0e-6}}, 1000.0);
}

TEST(EmgIoTest, RoundTrip) {
  EmgRecording original = MakeRecording();
  const std::string text = WriteEmgCsv(original);
  auto parsed = ParseEmgCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_channels(), 2u);
  EXPECT_EQ(parsed->num_samples(), 3u);
  EXPECT_DOUBLE_EQ(parsed->sample_rate_hz(), 1000.0);
  EXPECT_EQ(parsed->muscles()[1], Muscle::kUpperForearm);
  for (size_t c = 0; c < 2; ++c) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(parsed->channel(c)[i], original.channel(c)[i], 1e-12);
    }
  }
}

TEST(EmgIoTest, RequiresSampleRateComment) {
  EXPECT_FALSE(ParseEmgCsv("biceps\n1.0\n").ok());
}

TEST(EmgIoTest, RejectsUnknownMuscle) {
  EXPECT_FALSE(
      ParseEmgCsv("# sample_rate_hz=1000\nquadriceps\n1.0\n").ok());
}

TEST(EmgIoTest, RejectsNonNumericData) {
  EXPECT_FALSE(
      ParseEmgCsv("# sample_rate_hz=1000\nbiceps\nhello\n").ok());
}

TEST(EmgIoTest, ParsesHandWrittenFile) {
  const std::string text =
      "# recorded in lab 3\n"
      "# sample_rate_hz=500\n"
      "front_shin,back_shin\n"
      "1e-5,2e-5\n"
      "3e-5,4e-5\n";
  auto parsed = ParseEmgCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->sample_rate_hz(), 500.0);
  EXPECT_EQ(parsed->num_samples(), 2u);
  EXPECT_DOUBLE_EQ(parsed->channel(1)[1], 4e-5);
}

TEST(EmgIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/emg_io_test.csv";
  EmgRecording original = MakeRecording();
  ASSERT_TRUE(WriteEmgCsvFile(original, path).ok());
  auto loaded = ReadEmgCsvFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_samples(), original.num_samples());
  std::remove(path.c_str());
}

TEST(EmgIoTest, MissingFileIsError) {
  EXPECT_FALSE(ReadEmgCsvFile("/no/such/emg.csv").ok());
}

}  // namespace
}  // namespace mocemg
