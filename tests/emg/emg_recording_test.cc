#include "emg/emg_recording.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

EmgRecording MakeRecording() {
  return *EmgRecording::Create(
      {Muscle::kBiceps, Muscle::kTriceps},
      {{1.0, 2.0, 3.0, 4.0}, {-1.0, -2.0, -3.0, -4.0}}, 1000.0);
}

TEST(EmgRecordingTest, CreateValidations) {
  EXPECT_FALSE(EmgRecording::Create({Muscle::kBiceps}, {{1.0}, {2.0}},
                                    1000.0)
                   .ok());
  EXPECT_FALSE(EmgRecording::Create({Muscle::kBiceps, Muscle::kTriceps},
                                    {{1.0, 2.0}, {3.0}}, 1000.0)
                   .ok());
  EXPECT_FALSE(
      EmgRecording::Create({Muscle::kBiceps}, {{1.0}}, 0.0).ok());
}

TEST(EmgRecordingTest, Accessors) {
  EmgRecording r = MakeRecording();
  EXPECT_EQ(r.num_channels(), 2u);
  EXPECT_EQ(r.num_samples(), 4u);
  EXPECT_DOUBLE_EQ(r.sample_rate_hz(), 1000.0);
  EXPECT_NEAR(r.duration_seconds(), 0.004, 1e-12);
  EXPECT_DOUBLE_EQ(r.channel(1)[2], -3.0);
}

TEST(EmgRecordingTest, ChannelForMuscle) {
  EmgRecording r = MakeRecording();
  auto ch = r.ChannelForMuscle(Muscle::kTriceps);
  ASSERT_TRUE(ch.ok());
  EXPECT_DOUBLE_EQ((**ch)[0], -1.0);
  EXPECT_TRUE(
      r.ChannelForMuscle(Muscle::kFrontShin).status().IsNotFound());
}

TEST(EmgRecordingTest, IndexOf) {
  EmgRecording r = MakeRecording();
  EXPECT_EQ(*r.IndexOf(Muscle::kBiceps), 0u);
  EXPECT_EQ(*r.IndexOf(Muscle::kTriceps), 1u);
}

TEST(EmgRecordingTest, SampleSlice) {
  EmgRecording r = MakeRecording();
  auto s = r.SampleSlice(1, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_samples(), 2u);
  EXPECT_DOUBLE_EQ(s->channel(0)[0], 2.0);
  EXPECT_FALSE(r.SampleSlice(3, 1).ok());
  EXPECT_FALSE(r.SampleSlice(0, 5).ok());
}

TEST(EmgRecordingTest, ValidateCatchesNaN) {
  EmgRecording r = MakeRecording();
  EXPECT_TRUE(r.Validate().ok());
  r.mutable_channel(0)[1] = std::nan("");
  EXPECT_TRUE(r.Validate().IsNumericalError());
}

TEST(MuscleTest, NamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(Muscle::kNumMuscles); ++i) {
    const Muscle m = static_cast<Muscle>(i);
    EXPECT_EQ(*MuscleFromName(MuscleName(m)), m);
  }
  EXPECT_TRUE(MuscleFromName("deltoid").status().IsNotFound());
}

TEST(MuscleTest, LimbMusclesMatchPaper) {
  // Hand: biceps, triceps, upper forearm, lower forearm.
  const auto& hand = LimbMuscles(Limb::kRightHand);
  ASSERT_EQ(hand.size(), 4u);
  EXPECT_EQ(hand[0], Muscle::kBiceps);
  EXPECT_EQ(hand[3], Muscle::kLowerForearm);
  // Leg: front shin, back shin.
  const auto& leg = LimbMuscles(Limb::kRightLeg);
  ASSERT_EQ(leg.size(), 2u);
  EXPECT_EQ(leg[0], Muscle::kFrontShin);
  EXPECT_EQ(leg[1], Muscle::kBackShin);
}

}  // namespace
}  // namespace mocemg
