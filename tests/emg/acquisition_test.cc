#include "emg/acquisition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace mocemg {
namespace {

EmgRecording MakeRawRecording(double fs = 1000.0, double seconds = 2.0) {
  Rng rng(42);
  const size_t n = static_cast<size_t>(fs * seconds);
  std::vector<double> ch(n);
  for (size_t i = 0; i < n; ++i) {
    // Band-limited-ish content: 100 Hz tone + noise + DC offset.
    ch[i] = 1e-5 * std::sin(2.0 * M_PI * 100.0 * i / fs) +
            2e-6 * rng.NextGaussian() + 5e-6;
  }
  return *EmgRecording::Create({Muscle::kBiceps}, {std::move(ch)}, fs);
}

TEST(AcquisitionTest, OutputRateMatchesOption) {
  auto out = ConditionRecording(MakeRawRecording());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_DOUBLE_EQ(out->sample_rate_hz(), 120.0);
  // ~2 s at 120 Hz.
  EXPECT_NEAR(static_cast<double>(out->num_samples()), 240.0, 4.0);
}

TEST(AcquisitionTest, OutputIsNonNegative) {
  auto out = ConditionRecording(MakeRawRecording());
  ASSERT_TRUE(out.ok());
  for (double v : out->channel(0)) EXPECT_GE(v, 0.0);
}

TEST(AcquisitionTest, PreservesChannelCountAndLabels) {
  Rng rng(1);
  std::vector<double> a(1000);
  std::vector<double> b(1000);
  for (size_t i = 0; i < 1000; ++i) {
    a[i] = rng.Gaussian(0.0, 1e-5);
    b[i] = rng.Gaussian(0.0, 1e-5);
  }
  auto raw = EmgRecording::Create({Muscle::kFrontShin, Muscle::kBackShin},
                                  {a, b}, 1000.0);
  ASSERT_TRUE(raw.ok());
  auto out = ConditionRecording(*raw);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_channels(), 2u);
  EXPECT_EQ(out->muscles()[1], Muscle::kBackShin);
}

TEST(AcquisitionTest, RemovesDcOffset) {
  // A pure DC signal is outside the 20–450 Hz band: the conditioned
  // envelope must be near zero.
  std::vector<double> dc(2000, 1e-4);
  auto raw = EmgRecording::Create({Muscle::kBiceps}, {dc}, 1000.0);
  ASSERT_TRUE(raw.ok());
  auto out = ConditionRecording(*raw);
  ASSERT_TRUE(out.ok());
  double mean = 0.0;
  // Skip the filter transient at the head.
  for (size_t i = 60; i < out->num_samples(); ++i) {
    mean += out->channel(0)[i];
  }
  mean /= static_cast<double>(out->num_samples() - 60);
  EXPECT_LT(mean, 2e-6);
}

TEST(AcquisitionTest, ActivityScalesEnvelope) {
  // A strong in-band burst must produce a larger envelope than silence.
  const double fs = 1000.0;
  const size_t n = 3000;
  Rng rng(3);
  std::vector<double> ch(n, 0.0);
  for (size_t i = n / 3; i < 2 * n / 3; ++i) {
    ch[i] = 5e-5 * rng.NextGaussian();
  }
  auto raw = EmgRecording::Create({Muscle::kBiceps}, {ch}, fs);
  ASSERT_TRUE(raw.ok());
  auto out = ConditionRecording(*raw);
  ASSERT_TRUE(out.ok());
  const auto& env = out->channel(0);
  const size_t m = env.size();
  double quiet = 0.0;
  double active = 0.0;
  for (size_t i = 10; i < m / 4; ++i) quiet += env[i];
  for (size_t i = 2 * m / 5; i < 3 * m / 5; ++i) active += env[i];
  quiet /= static_cast<double>(m / 4 - 10);
  active /= static_cast<double>(3 * m / 5 - 2 * m / 5);
  EXPECT_GT(active, 5.0 * quiet);
}

TEST(AcquisitionTest, NotchSuppressesPowerLineHum) {
  // Same in-band burst, once clean and once with strong 60 Hz hum: the
  // notched conditioning of the contaminated signal should land close
  // to the clean envelope, un-notched should not.
  const double fs = 1000.0;
  const size_t n = 3000;
  Rng rng(9);
  std::vector<double> clean(n);
  for (size_t i = 0; i < n; ++i) clean[i] = 3e-5 * rng.NextGaussian();
  std::vector<double> hummed = clean;
  for (size_t i = 0; i < n; ++i) {
    hummed[i] += 1e-4 * std::sin(2.0 * M_PI * 60.0 * i / fs);
  }
  auto make = [&](const std::vector<double>& ch) {
    return *EmgRecording::Create({Muscle::kBiceps}, {ch}, fs);
  };
  AcquisitionOptions notch;
  notch.notch_hz = 60.0;
  auto clean_env = ConditionRecording(make(clean));
  auto notched_env = ConditionRecording(make(hummed), notch);
  auto raw_env = ConditionRecording(make(hummed));
  ASSERT_TRUE(clean_env.ok());
  ASSERT_TRUE(notched_env.ok());
  ASSERT_TRUE(raw_env.ok());
  double err_notched = 0.0;
  double err_raw = 0.0;
  const size_t m = clean_env->num_samples();
  for (size_t i = m / 4; i < 3 * m / 4; ++i) {
    err_notched += std::fabs(notched_env->channel(0)[i] -
                             clean_env->channel(0)[i]);
    err_raw +=
        std::fabs(raw_env->channel(0)[i] - clean_env->channel(0)[i]);
  }
  EXPECT_LT(err_notched, 0.4 * err_raw);
}

TEST(AcquisitionTest, SkipBandpassOption) {
  AcquisitionOptions opts;
  opts.skip_bandpass = true;
  auto out = ConditionRecording(MakeRawRecording(), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->sample_rate_hz(), 120.0);
}

TEST(AcquisitionTest, RejectsBandAboveNyquist) {
  AcquisitionOptions opts;
  opts.band_high_hz = 600.0;  // above 500 Hz Nyquist of 1 kHz input
  auto out = ConditionRecording(MakeRawRecording(), opts);
  ASSERT_FALSE(out.ok());
  // The error must teach, not just reject: name Nyquist and aliasing.
  EXPECT_NE(out.status().message().find("Nyquist"), std::string::npos)
      << out.status();
  EXPECT_NE(out.status().message().find("alias"), std::string::npos)
      << out.status();
}

TEST(AcquisitionTest, RejectsInvertedBandEdges) {
  AcquisitionOptions opts;
  opts.band_low_hz = 300.0;
  opts.band_high_hz = 100.0;
  auto out = ConditionRecording(MakeRawRecording(), opts);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("low < high"), std::string::npos)
      << out.status();

  opts.band_low_hz = -5.0;
  opts.band_high_hz = 450.0;
  EXPECT_FALSE(ConditionRecording(MakeRawRecording(), opts).ok());
}

TEST(AcquisitionTest, RejectsNotchAtOrAboveNyquist) {
  AcquisitionOptions opts;
  opts.notch_hz = 500.0;  // exactly Nyquist of the 1 kHz input
  auto out = ConditionRecording(MakeRawRecording(), opts);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("Nyquist"), std::string::npos)
      << out.status();

  // A 60 Hz notch on a 100 Hz recording is equally meaningless.
  opts.notch_hz = 60.0;
  opts.skip_bandpass = true;
  EXPECT_FALSE(
      ConditionRecording(MakeRawRecording(/*fs=*/100.0), opts).ok());
}

TEST(AcquisitionTest, NotchWarmStartTamesStartupTransient) {
  // The notch startup transient decays over Q/(π·f0) ≈ 0.19 s; without
  // the phase-continuous warm start the first windows of a short
  // recording stay hum-contaminated. Check the HEAD of the envelope
  // (the part NotchSuppressesPowerLineHum skips) tracks the clean one.
  const double fs = 1000.0;
  const size_t n = 3000;
  Rng rng(17);
  std::vector<double> clean(n);
  for (size_t i = 0; i < n; ++i) clean[i] = 3e-5 * rng.NextGaussian();
  std::vector<double> hummed = clean;
  for (size_t i = 0; i < n; ++i) {
    hummed[i] += 4e-4 * std::sin(2.0 * M_PI * 50.0 * i / fs);
  }
  auto make = [&](const std::vector<double>& ch) {
    return *EmgRecording::Create({Muscle::kBiceps}, {ch}, fs);
  };
  AcquisitionOptions notch;
  notch.notch_hz = 50.0;
  auto clean_env = ConditionRecording(make(clean));
  auto notched_env = ConditionRecording(make(hummed), notch);
  ASSERT_TRUE(clean_env.ok());
  ASSERT_TRUE(notched_env.ok());
  double clean_head = 0.0;
  double notched_head = 0.0;
  const size_t head = clean_env->num_samples() / 4;
  for (size_t i = 0; i < head; ++i) {
    clean_head += clean_env->channel(0)[i];
    notched_head += notched_env->channel(0)[i];
  }
  // The hum is 13× the clean RMS; an untamed transient multiplies the
  // head envelope. Warm-started it stays within 25%.
  EXPECT_NEAR(notched_head, clean_head, 0.25 * clean_head);
}

TEST(AcquisitionTest, RejectsEmptyRecording) {
  auto raw = EmgRecording::Create({Muscle::kBiceps}, {{}}, 1000.0);
  ASSERT_TRUE(raw.ok());
  EXPECT_FALSE(ConditionRecording(*raw).ok());
}

}  // namespace
}  // namespace mocemg
