#include "eval/protocols.h"

#include <gtest/gtest.h>

#include "eval/sweep.h"

namespace mocemg {
namespace {

// A small but classifiable dataset, generated once for the suite.
class ProtocolsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightLeg;  // 5 classes, 2 EMG channels → cheaper
    opts.trials_per_class = 4;
    opts.seed = 31337;
    motions_ = new std::vector<LabeledMotion>(
        ToLabeledMotions(*GenerateDataset(opts)));
  }
  static void TearDownTestSuite() {
    delete motions_;
    motions_ = nullptr;
  }

  static ClassifierOptions Options() {
    ClassifierOptions opts;
    opts.fcm.num_clusters = 8;
    opts.fcm.seed = 11;
    opts.features.window_ms = 150.0;
    return opts;
  }

  static std::vector<LabeledMotion>* motions_;
};

std::vector<LabeledMotion>* ProtocolsTest::motions_ = nullptr;

TEST_F(ProtocolsTest, ToLabeledMotionsPreservesLabels) {
  DatasetOptions opts;
  opts.limb = Limb::kRightLeg;
  opts.trials_per_class = 1;
  opts.seed = 5;
  auto captured = GenerateDataset(opts);
  ASSERT_TRUE(captured.ok());
  auto labeled = ToLabeledMotions(*captured);
  ASSERT_EQ(labeled.size(), 5u);
  EXPECT_EQ(labeled[0].label, 0u);
  EXPECT_EQ(labeled[0].label_name, "walk");
  EXPECT_GT(labeled[0].mocap.num_frames(), 0u);
}

TEST_F(ProtocolsTest, CrossValidateProducesAllQueries) {
  ProtocolOptions protocol;
  protocol.num_folds = 4;
  auto result = CrossValidate(*motions_, 5, Options(), protocol);
  ASSERT_TRUE(result.ok()) << result.status();
  // Every motion serves exactly once as a query.
  EXPECT_EQ(result->num_queries, motions_->size());
  EXPECT_EQ(result->confusion.total(), motions_->size());
  EXPECT_GE(result->misclassification_percent, 0.0);
  EXPECT_LE(result->misclassification_percent, 100.0);
  EXPECT_GE(result->knn_percent, 0.0);
  EXPECT_LE(result->knn_percent, 100.0);
}

TEST_F(ProtocolsTest, ClassifiesBetterThanChance) {
  ProtocolOptions protocol;
  protocol.num_folds = 4;
  auto result = CrossValidate(*motions_, 5, Options(), protocol);
  ASSERT_TRUE(result.ok());
  // Chance for 5 classes is 80 % error; the pipeline must beat it
  // decisively even on this tiny dataset.
  EXPECT_LT(result->misclassification_percent, 60.0);
  EXPECT_GT(result->knn_percent, 30.0);
}

TEST_F(ProtocolsTest, Validations) {
  ProtocolOptions protocol;
  protocol.num_folds = 1;
  EXPECT_FALSE(CrossValidate(*motions_, 5, Options(), protocol).ok());
  protocol.num_folds = 4;
  EXPECT_FALSE(CrossValidate({}, 5, Options(), protocol).ok());
  // Labels must fit within num_classes.
  EXPECT_FALSE(CrossValidate(*motions_, 2, Options(), protocol).ok());
}

TEST_F(ProtocolsTest, DeterministicForSeed) {
  ProtocolOptions protocol;
  protocol.num_folds = 4;
  auto a = CrossValidate(*motions_, 5, Options(), protocol);
  auto b = CrossValidate(*motions_, 5, Options(), protocol);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->misclassification_percent,
                   b->misclassification_percent);
  EXPECT_DOUBLE_EQ(a->knn_percent, b->knn_percent);
}

TEST_F(ProtocolsTest, SweepCoversGridInOrder) {
  SweepOptions sweep;
  sweep.window_sizes_ms = {100.0, 200.0};
  sweep.cluster_counts = {4, 8};
  sweep.protocol.num_folds = 4;
  size_t calls = 0;
  auto points = RunParameterSweep(
      *motions_, 5, Options(), sweep,
      [&](size_t done, size_t total, const SweepPoint&) {
        ++calls;
        EXPECT_LE(done, total);
      });
  ASSERT_TRUE(points.ok()) << points.status();
  ASSERT_EQ(points->size(), 4u);
  EXPECT_EQ(calls, 4u);
  EXPECT_DOUBLE_EQ((*points)[0].window_ms, 100.0);
  EXPECT_EQ((*points)[0].clusters, 4u);
  EXPECT_EQ((*points)[1].clusters, 8u);
  EXPECT_DOUBLE_EQ((*points)[2].window_ms, 200.0);
  for (const auto& p : *points) {
    EXPECT_EQ(p.num_queries, motions_->size());
  }
}

TEST_F(ProtocolsTest, SweepRejectsEmptyGrid) {
  SweepOptions sweep;
  sweep.window_sizes_ms = {};
  EXPECT_FALSE(RunParameterSweep(*motions_, 5, Options(), sweep).ok());
}

}  // namespace
}  // namespace mocemg
