#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(ConfusionMatrixTest, RecordAndCount) {
  ConfusionMatrix cm(3);
  ASSERT_TRUE(cm.Record(0, 0).ok());
  ASSERT_TRUE(cm.Record(0, 1).ok());
  ASSERT_TRUE(cm.Record(1, 1).ok());
  ASSERT_TRUE(cm.Record(2, 2).ok());
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(1, 1), 1u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrixTest, RejectsOutOfRange) {
  ConfusionMatrix cm(2);
  EXPECT_FALSE(cm.Record(2, 0).ok());
  EXPECT_FALSE(cm.Record(0, 5).ok());
}

TEST(ConfusionMatrixTest, MisclassificationPercent) {
  ConfusionMatrix cm(2);
  // 3 correct, 1 wrong → 25 %.
  (void)cm.Record(0, 0);
  (void)cm.Record(0, 0);
  (void)cm.Record(1, 1);
  (void)cm.Record(1, 0);
  EXPECT_DOUBLE_EQ(*cm.MisclassificationPercent(), 25.0);
  EXPECT_DOUBLE_EQ(*cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, EmptyFails) {
  ConfusionMatrix cm(2);
  EXPECT_FALSE(cm.MisclassificationPercent().ok());
}

TEST(ConfusionMatrixTest, PerClassRecall) {
  ConfusionMatrix cm(3);
  (void)cm.Record(0, 0);
  (void)cm.Record(0, 0);
  (void)cm.Record(0, 1);  // class 0: 2/3
  (void)cm.Record(1, 1);  // class 1: 1/1
  auto recall = cm.PerClassRecall();
  EXPECT_NEAR(recall[0], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(recall[1], 1.0);
  EXPECT_DOUBLE_EQ(recall[2], 0.0);  // no records
}

TEST(ConfusionMatrixTest, ToStringUsesNames) {
  ConfusionMatrix cm(2);
  (void)cm.Record(0, 1);
  const std::string s = cm.ToString({"walk", "kick"});
  EXPECT_NE(s.find("walk"), std::string::npos);
  EXPECT_NE(s.find("kick"), std::string::npos);
}

TEST(KnnPrecisionTest, PaperMetric) {
  // "percentage of returned motions in k which are actually present in
  // the same group of query motion" — k = 5 throughout the paper.
  KnnPrecision knn;
  knn.Record(0, {0, 0, 0, 1, 2});  // 3/5
  knn.Record(1, {1, 1, 1, 1, 1});  // 5/5
  ASSERT_EQ(knn.num_queries(), 2u);
  EXPECT_DOUBLE_EQ(*knn.Percent(), 80.0);
}

TEST(KnnPrecisionTest, EmptyRetrievalIgnored) {
  KnnPrecision knn;
  knn.Record(0, {});
  EXPECT_EQ(knn.num_queries(), 0u);
  EXPECT_FALSE(knn.Percent().ok());
}

TEST(KnnPrecisionTest, AllWrongIsZero) {
  KnnPrecision knn;
  knn.Record(0, {1, 2, 3});
  EXPECT_DOUBLE_EQ(*knn.Percent(), 0.0);
}

}  // namespace
}  // namespace mocemg
