#include "synth/profiles.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

TEST(KeyframeProfileTest, HoldsOutsideRange) {
  KeyframeProfile p({{1.0, 2.0}, {2.0, 5.0}});
  EXPECT_DOUBLE_EQ(p.Sample(0.0), 2.0);
  EXPECT_DOUBLE_EQ(p.Sample(10.0), 5.0);
}

TEST(KeyframeProfileTest, PassesThroughKeyframes) {
  KeyframeProfile p({{0.0, 1.0}, {1.0, 3.0}, {2.5, -2.0}});
  EXPECT_DOUBLE_EQ(p.Sample(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.Sample(1.0), 3.0);
  EXPECT_DOUBLE_EQ(p.Sample(2.5), -2.0);
}

TEST(KeyframeProfileTest, MinJerkMidpointIsHalfway) {
  // s(0.5) = 10/8 − 15/16 + 6/32 = 0.5 exactly.
  KeyframeProfile p({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_NEAR(p.Sample(1.0), 2.0, 1e-12);
}

TEST(KeyframeProfileTest, MonotoneBetweenKeyframes) {
  KeyframeProfile p({{0.0, 0.0}, {1.0, 1.0}});
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    const double v = p.Sample(t);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(KeyframeProfileTest, ZeroVelocityAtKeyframes) {
  KeyframeProfile p({{0.0, 0.0}, {1.0, 1.0}});
  const double eps = 1e-4;
  EXPECT_NEAR((p.Sample(eps) - p.Sample(0.0)) / eps, 0.0, 1e-3);
  EXPECT_NEAR((p.Sample(1.0) - p.Sample(1.0 - eps)) / eps, 0.0, 1e-3);
}

TEST(KeyframeProfileTest, SampleSeriesLengthAndValues) {
  KeyframeProfile p({{0.0, 0.0}, {1.0, 1.0}});
  auto series = p.SampleSeries(1.0, 120.0);
  EXPECT_EQ(series.size(), 120u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
}

TEST(KeyframeProfileTest, Transforms) {
  KeyframeProfile p({{0.0, 1.0}, {1.0, 3.0}});
  p.ScaleTime(2.0);
  EXPECT_DOUBLE_EQ(p.end_time(), 2.0);
  p.ScaleValues(2.0, 1.0);  // pivot at 1: values 1 → 1, 3 → 5
  EXPECT_DOUBLE_EQ(p.Sample(2.0), 5.0);
  p.OffsetValues(0.5);
  EXPECT_DOUBLE_EQ(p.Sample(0.0), 1.5);
}

TEST(OscillationTest, ZeroOutsideWindow) {
  Oscillation o;
  o.amplitude = 1.0;
  o.frequency_hz = 2.0;
  o.t_on_s = 1.0;
  o.t_off_s = 2.0;
  EXPECT_DOUBLE_EQ(o.Sample(0.5), 0.0);
  EXPECT_DOUBLE_EQ(o.Sample(2.5), 0.0);
}

TEST(OscillationTest, RampsUpSmoothly) {
  Oscillation o;
  o.amplitude = 1.0;
  o.frequency_hz = 10.0;
  o.t_on_s = 0.0;
  o.t_off_s = 10.0;
  o.ramp_s = 0.5;
  // Immediately after onset the envelope is tiny.
  EXPECT_LT(std::fabs(o.Sample(0.01)), 0.1);
  // Mid-window it can reach full amplitude.
  double peak = 0.0;
  for (double t = 2.0; t < 3.0; t += 0.001) {
    peak = std::max(peak, std::fabs(o.Sample(t)));
  }
  EXPECT_GT(peak, 0.95);
}

TEST(JointProfileTest, OverlaysAdd) {
  JointProfile jp(KeyframeProfile({{0.0, 1.0}}));
  Oscillation o;
  o.amplitude = 0.5;
  o.frequency_hz = 1.0;
  o.t_on_s = 0.0;
  o.t_off_s = 100.0;
  o.ramp_s = 0.0;
  jp.AddOscillation(o);
  // At t = 0.25 s the sinusoid is at its peak.
  EXPECT_NEAR(jp.Sample(0.25), 1.0 + 0.5, 1e-9);
}

TEST(DifferentiateTest, LinearRampHasConstantSlope) {
  std::vector<double> ramp(100);
  for (size_t i = 0; i < 100; ++i) ramp[i] = 0.5 * static_cast<double>(i);
  auto d = Differentiate(ramp, 10.0);  // slope 0.5 per sample → 5.0 per s
  for (double v : d) EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(DifferentiateTest, SineDerivativeIsCosine) {
  const double fs = 1000.0;
  const double f = 2.0;
  std::vector<double> sine(2000);
  for (size_t i = 0; i < sine.size(); ++i) {
    sine[i] = std::sin(2.0 * M_PI * f * i / fs);
  }
  auto d = Differentiate(sine, fs);
  const double expected_amp = 2.0 * M_PI * f;
  double peak = 0.0;
  for (size_t i = 100; i + 100 < d.size(); ++i) {
    peak = std::max(peak, std::fabs(d[i]));
  }
  EXPECT_NEAR(peak, expected_amp, 0.01 * expected_amp);
}

TEST(DifferentiateTest, ShortSeries) {
  EXPECT_EQ(Differentiate({}, 10.0).size(), 0u);
  EXPECT_EQ(Differentiate({1.0}, 10.0), std::vector<double>{0.0});
}

}  // namespace
}  // namespace mocemg
