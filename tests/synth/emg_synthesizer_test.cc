#include "synth/emg_synthesizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "signal/spectral.h"

namespace mocemg {
namespace {

std::vector<double> BurstEnvelope(size_t frames) {
  // Quiet — active — quiet at 120 Hz.
  std::vector<double> env(frames, 0.02);
  for (size_t i = frames / 3; i < 2 * frames / 3; ++i) env[i] = 0.8;
  return env;
}

double RmsOf(const std::vector<double>& v, size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += v[i] * v[i];
  return std::sqrt(sum / static_cast<double>(end - begin));
}

TEST(EmgSynthesizerTest, OutputRateAndLength) {
  Rng rng(1);
  auto ch = SynthesizeEmgChannel(BurstEnvelope(240), 120.0,
                                 EmgSynthOptions{}, &rng);
  ASSERT_TRUE(ch.ok()) << ch.status();
  // 2 s at 1000 Hz.
  EXPECT_NEAR(static_cast<double>(ch->size()), 2000.0, 5.0);
}

TEST(EmgSynthesizerTest, SignalIsSignedAndMicrovoltScale) {
  Rng rng(2);
  auto ch = SynthesizeEmgChannel(BurstEnvelope(240), 120.0,
                                 EmgSynthOptions{}, &rng);
  ASSERT_TRUE(ch.ok());
  bool has_positive = false;
  bool has_negative = false;
  double peak = 0.0;
  for (double v : *ch) {
    has_positive |= v > 0.0;
    has_negative |= v < 0.0;
    peak = std::max(peak, std::fabs(v));
  }
  EXPECT_TRUE(has_positive);
  EXPECT_TRUE(has_negative);
  // Raw surface EMG: tens to a few hundred microvolts at most.
  EXPECT_LT(peak, 1e-3);
  EXPECT_GT(peak, 1e-6);
}

TEST(EmgSynthesizerTest, ActiveRegionLouderThanQuiet) {
  Rng rng(3);
  EmgSynthOptions opts;
  opts.artifact_rate_hz = 0.0;  // keep the comparison clean
  auto ch = SynthesizeEmgChannel(BurstEnvelope(360), 120.0, opts, &rng);
  ASSERT_TRUE(ch.ok());
  const size_t n = ch->size();
  const double quiet = RmsOf(*ch, 0, n / 4);
  const double active = RmsOf(*ch, 2 * n / 5, 3 * n / 5);
  EXPECT_GT(active, 5.0 * quiet);
}

TEST(EmgSynthesizerTest, CarrierEnergyInEmgBand) {
  Rng rng(4);
  EmgSynthOptions opts;
  opts.artifact_rate_hz = 0.0;
  opts.wander_amplitude_v = 0.0;
  opts.noise_floor_v = 0.0;
  std::vector<double> full(600, 1.0);  // constant full activation
  auto ch = SynthesizeEmgChannel(full, 120.0, opts, &rng);
  ASSERT_TRUE(ch.ok());
  auto median = MedianFrequency(*ch, opts.sample_rate_hz);
  ASSERT_TRUE(median.ok());
  // Surface-EMG median frequency: tens to ~150 Hz.
  EXPECT_GT(*median, 40.0);
  EXPECT_LT(*median, 220.0);
}

TEST(EmgSynthesizerTest, TrialsAreNonStationary) {
  // Same envelope, same seed family, different trials → different
  // waveforms (the property the paper stresses).
  Rng rng_a(5);
  Rng rng_b(6);
  EmgSynthOptions opts;
  auto a = SynthesizeEmgChannel(BurstEnvelope(240), 120.0, opts, &rng_a);
  auto b = SynthesizeEmgChannel(BurstEnvelope(240), 120.0, opts, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  double diff = 0.0;
  const size_t n = std::min(a->size(), b->size());
  for (size_t i = 0; i < n; ++i) diff += std::fabs((*a)[i] - (*b)[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(EmgSynthesizerTest, DeterministicForSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  auto a = SynthesizeEmgChannel(BurstEnvelope(120), 120.0,
                                EmgSynthOptions{}, &rng_a);
  auto b = SynthesizeEmgChannel(BurstEnvelope(120), 120.0,
                                EmgSynthOptions{}, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(EmgSynthesizerTest, RecordingBundlesChannels) {
  Rng rng(8);
  std::vector<MuscleActivation> acts;
  acts.push_back({Muscle::kBiceps, BurstEnvelope(240)});
  acts.push_back({Muscle::kTriceps, std::vector<double>(240, 0.05)});
  auto rec = SynthesizeEmgRecording(acts, 120.0, EmgSynthOptions{}, &rng);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->num_channels(), 2u);
  EXPECT_EQ(rec->muscles()[0], Muscle::kBiceps);
  EXPECT_DOUBLE_EQ(rec->sample_rate_hz(), 1000.0);
  EXPECT_TRUE(rec->Validate().ok());
}

TEST(EmgSynthesizerTest, Validations) {
  Rng rng(9);
  EXPECT_FALSE(
      SynthesizeEmgChannel({}, 120.0, EmgSynthOptions{}, &rng).ok());
  EXPECT_FALSE(SynthesizeEmgChannel({1.0}, 120.0, EmgSynthOptions{},
                                    nullptr)
                   .ok());
  EmgSynthOptions bad;
  bad.carrier_high_hz = 600.0;  // above Nyquist
  EXPECT_FALSE(
      SynthesizeEmgChannel(BurstEnvelope(120), 120.0, bad, &rng).ok());
  EXPECT_FALSE(
      SynthesizeEmgRecording({}, 120.0, EmgSynthOptions{}, &rng).ok());
}

}  // namespace
}  // namespace mocemg
