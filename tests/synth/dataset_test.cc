#include "synth/dataset.h"

#include <gtest/gtest.h>

#include <map>

namespace mocemg {
namespace {

DatasetOptions SmallOptions(Limb limb) {
  DatasetOptions opts;
  opts.limb = limb;
  opts.trials_per_class = 2;
  opts.seed = 123;
  return opts;
}

TEST(DatasetTest, ClassVocabularies) {
  EXPECT_EQ(NumClassesForLimb(Limb::kRightHand), 6u);
  EXPECT_EQ(NumClassesForLimb(Limb::kRightLeg), 5u);
  EXPECT_STREQ(ClassNameForLimb(Limb::kRightHand, 0), "raise_arm");
  EXPECT_STREQ(ClassNameForLimb(Limb::kRightLeg, 0), "walk");
}

TEST(DatasetTest, GeneratesAllClassesAndTrials) {
  auto data = GenerateDataset(SmallOptions(Limb::kRightHand));
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->size(), 12u);  // 6 classes × 2 trials
  std::map<size_t, size_t> per_class;
  for (const auto& m : *data) ++per_class[m.class_id];
  EXPECT_EQ(per_class.size(), 6u);
  for (const auto& [cls, count] : per_class) EXPECT_EQ(count, 2u);
}

TEST(DatasetTest, HandTrialShape) {
  auto data = GenerateDataset(SmallOptions(Limb::kRightHand));
  ASSERT_TRUE(data.ok());
  const CapturedMotion& m = data->front();
  // Mocap: pelvis + 4 hand segments at 120 Hz.
  EXPECT_EQ(m.mocap.num_markers(), 5u);
  EXPECT_DOUBLE_EQ(m.mocap.frame_rate_hz(), 120.0);
  EXPECT_TRUE(m.mocap.Validate().ok());
  // EMG: 4 channels at 1000 Hz, raw (signed).
  EXPECT_EQ(m.emg_raw.num_channels(), 4u);
  EXPECT_DOUBLE_EQ(m.emg_raw.sample_rate_hz(), 1000.0);
  EXPECT_TRUE(m.emg_raw.Validate().ok());
  // Streams cover the same duration (within resampling slack).
  EXPECT_NEAR(m.mocap.duration_seconds(), m.emg_raw.duration_seconds(),
              0.05);
}

TEST(DatasetTest, LegTrialShape) {
  auto data = GenerateDataset(SmallOptions(Limb::kRightLeg));
  ASSERT_TRUE(data.ok());
  const CapturedMotion& m = data->front();
  EXPECT_EQ(m.mocap.num_markers(), 4u);  // pelvis + 3
  EXPECT_EQ(m.emg_raw.num_channels(), 2u);
}

TEST(DatasetTest, DeterministicForSeed) {
  auto a = GenerateDataset(SmallOptions(Limb::kRightHand));
  auto b = GenerateDataset(SmallOptions(Limb::kRightHand));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE((*a)[i].mocap.positions().AllClose(
        (*b)[i].mocap.positions(), 0.0));
    EXPECT_EQ((*a)[i].emg_raw.channel(0), (*b)[i].emg_raw.channel(0));
  }
}

TEST(DatasetTest, DifferentSeedsDiffer) {
  DatasetOptions o1 = SmallOptions(Limb::kRightHand);
  DatasetOptions o2 = o1;
  o2.seed = 999;
  auto a = GenerateDataset(o1);
  auto b = GenerateDataset(o2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE((*a)[0].mocap.positions().AllClose(
      (*b)[0].mocap.positions(), 1.0));
}

TEST(DatasetTest, TrialsOfSameClassVary) {
  auto data = GenerateDataset(SmallOptions(Limb::kRightHand));
  ASSERT_TRUE(data.ok());
  const auto& t0 = (*data)[0];
  const auto& t1 = (*data)[1];
  ASSERT_EQ(t0.class_id, t1.class_id);
  // Different durations or different trajectories.
  const bool differ =
      t0.mocap.num_frames() != t1.mocap.num_frames() ||
      !t0.mocap.positions().AllClose(t1.mocap.positions(), 1.0);
  EXPECT_TRUE(differ);
}

TEST(DatasetTest, SubjectsAssignedRoundRobin) {
  DatasetOptions opts = SmallOptions(Limb::kRightHand);
  opts.trials_per_class = 4;
  opts.num_subjects = 2;
  auto data = GenerateDataset(opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0].subject, 0u);
  EXPECT_EQ((*data)[1].subject, 1u);
  EXPECT_EQ((*data)[2].subject, 0u);
}

TEST(DatasetTest, TriggerJitterShortensStreams) {
  DatasetOptions opts = SmallOptions(Limb::kRightHand);
  opts.trigger.emg_latency_ms = 100.0;
  auto data = GenerateDataset(opts);
  ASSERT_TRUE(data.ok());
  const auto& m = data->front();
  // The EMG misses ~100 ms relative to the mocap.
  EXPECT_LT(m.emg_raw.duration_seconds() + 0.05,
            m.mocap.duration_seconds());
}

TEST(DatasetTest, Validations) {
  DatasetOptions opts = SmallOptions(Limb::kRightHand);
  opts.trials_per_class = 0;
  EXPECT_FALSE(GenerateDataset(opts).ok());
  opts = SmallOptions(Limb::kRightHand);
  opts.frame_rate_hz = -1.0;
  EXPECT_FALSE(GenerateDataset(opts).ok());
  EXPECT_FALSE(GenerateTrial(SmallOptions(Limb::kRightHand), 99, 0, 1)
                   .ok());
}

}  // namespace
}  // namespace mocemg
