#include "synth/merge.h"

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "synth/dataset.h"

namespace mocemg {
namespace {

// Generates synchronized arm + leg rigs for the same "session" seed.
std::pair<CapturedMotion, CapturedMotion> MakeTwoRigs(uint64_t seed) {
  DatasetOptions hand;
  hand.limb = Limb::kRightHand;
  hand.seed = seed;
  DatasetOptions leg;
  leg.limb = Limb::kRightLeg;
  leg.seed = seed;
  return {*GenerateTrial(hand, 0, 0, seed),
          *GenerateTrial(leg, 0, 0, seed)};
}

TEST(MergeMotionTest, UnionMarkerSetSharedPelvis) {
  auto [hand, leg] = MakeTwoRigs(1);
  auto merged = MergeMotionCaptures(hand.mocap, leg.mocap);
  ASSERT_TRUE(merged.ok()) << merged.status();
  // pelvis + 4 arm + 3 leg = 8 markers.
  EXPECT_EQ(merged->num_markers(), 8u);
  EXPECT_EQ(merged->num_frames(),
            std::min(hand.mocap.num_frames(), leg.mocap.num_frames()));
  // Pelvis comes from rig a.
  const auto pa = hand.mocap.MarkerPosition(3, 0);
  const auto pm = merged->MarkerPosition(3, 0);
  EXPECT_DOUBLE_EQ(pa[0], pm[0]);
  // Leg markers preserved.
  auto tibia_src = leg.mocap.JointMatrix(Segment::kTibia);
  auto tibia_merged = merged->JointMatrix(Segment::kTibia);
  ASSERT_TRUE(tibia_src.ok());
  ASSERT_TRUE(tibia_merged.ok());
  EXPECT_DOUBLE_EQ((*tibia_src)(5, 1), (*tibia_merged)(5, 1));
}

TEST(MergeMotionTest, RejectsDuplicateNonPelvisSegment) {
  auto [hand, leg] = MakeTwoRigs(2);
  (void)leg;
  EXPECT_FALSE(MergeMotionCaptures(hand.mocap, hand.mocap).ok());
}

TEST(MergeMotionTest, RejectsRateMismatch) {
  auto [hand, leg] = MakeTwoRigs(3);
  MarkerSet set({Segment::kTibia});
  auto slow = MotionSequence::Create(set, Matrix(10, 6, 1.0), 60.0);
  ASSERT_TRUE(slow.ok());
  EXPECT_FALSE(MergeMotionCaptures(hand.mocap, *slow).ok());
}

TEST(MergeEmgTest, ConcatenatesChannels) {
  auto [hand, leg] = MakeTwoRigs(4);
  auto merged = MergeEmgRecordings(hand.emg_raw, leg.emg_raw);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->num_channels(), 6u);  // 4 arm + 2 leg
  EXPECT_TRUE(merged->IndexOf(Muscle::kBiceps).ok());
  EXPECT_TRUE(merged->IndexOf(Muscle::kBackShin).ok());
  EXPECT_EQ(merged->num_samples(),
            std::min(hand.emg_raw.num_samples(),
                     leg.emg_raw.num_samples()));
}

TEST(MergeEmgTest, RejectsDuplicateMuscle) {
  auto [hand, leg] = MakeTwoRigs(5);
  (void)leg;
  EXPECT_FALSE(MergeEmgRecordings(hand.emg_raw, hand.emg_raw).ok());
}

TEST(MergeTest, WholeBodyPipelineRuns) {
  // The paper's flexibility claim: whole-body capture through the
  // unchanged pipeline. Build a tiny whole-body dataset (2 classes) and
  // check training + classification work end to end.
  std::vector<LabeledMotion> motions;
  for (size_t trial = 0; trial < 3; ++trial) {
    for (size_t cls = 0; cls < 2; ++cls) {
      DatasetOptions hand;
      hand.limb = Limb::kRightHand;
      hand.seed = 100 + trial;
      DatasetOptions leg;
      leg.limb = Limb::kRightLeg;
      leg.seed = 100 + trial;
      auto arm = GenerateTrial(hand, cls, trial, 7000 + 10 * trial + cls);
      auto lower =
          GenerateTrial(leg, cls, trial, 8000 + 10 * trial + cls);
      ASSERT_TRUE(arm.ok());
      ASSERT_TRUE(lower.ok());
      auto mocap = MergeMotionCaptures(arm->mocap, lower->mocap);
      auto emg = MergeEmgRecordings(arm->emg_raw, lower->emg_raw);
      ASSERT_TRUE(mocap.ok());
      ASSERT_TRUE(emg.ok());
      LabeledMotion m;
      m.mocap = std::move(*mocap);
      m.emg = std::move(*emg);
      m.label = cls;
      m.label_name = "combo" + std::to_string(cls);
      motions.push_back(std::move(m));
    }
  }
  ClassifierOptions opts;
  opts.fcm.num_clusters = 4;
  auto clf = MotionClassifier::Train(motions, opts);
  ASSERT_TRUE(clf.ok()) << clf.status();
  // 6 EMG + 3·7 mocap = 27-d window features → 8-d final features.
  EXPECT_EQ(clf->codebook().dimension(), 27u);
  auto label = clf->Classify(motions[0].mocap, motions[0].emg);
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, motions[0].label);
}

}  // namespace
}  // namespace mocemg
