#include "synth/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "signal/spectral.h"

namespace mocemg {
namespace {

CapturedMotion HandTrial() {
  DatasetOptions opts;
  opts.limb = Limb::kRightHand;
  opts.trials_per_class = 1;
  opts.seed = 321;
  auto data = GenerateDataset(opts);
  EXPECT_TRUE(data.ok()) << data.status();
  return data->front();
}

size_t CountMissingFrames(const MotionSequence& mocap, size_t marker) {
  size_t missing = 0;
  for (size_t f = 0; f < mocap.num_frames(); ++f) {
    if (!std::isfinite(mocap.positions()(f, 3 * marker))) ++missing;
  }
  return missing;
}

size_t CountEvents(const FaultInjector& injector, FaultType type) {
  size_t n = 0;
  for (const auto& e : injector.events()) {
    if (e.type == type) ++n;
  }
  return n;
}

TEST(FaultInjectorTest, OcclusionPlantsNanRunsAndSparesPelvis) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.occlusion_marker_fraction = 1.0;
  opts.occlusion_fraction = 0.2;
  FaultInjector injector(opts);
  auto corrupted = injector.CorruptMocap(trial.mocap);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();

  size_t pelvis = 0;
  const auto& segments = trial.mocap.marker_set().segments();
  for (size_t m = 0; m < segments.size(); ++m) {
    if (segments[m] == Segment::kPelvis) pelvis = m;
  }
  EXPECT_EQ(CountMissingFrames(*corrupted, pelvis), 0u);

  size_t total_missing = 0;
  for (size_t m = 0; m < corrupted->num_markers(); ++m) {
    total_missing += CountMissingFrames(*corrupted, m);
  }
  EXPECT_GT(total_missing, 0u);
  // The corrupted stream fails validation by design (NaN runs).
  EXPECT_FALSE(corrupted->Validate().ok());
  EXPECT_GT(CountEvents(injector, FaultType::kMarkerOcclusion), 0u);
}

TEST(FaultInjectorTest, DropoutFlatlinesWholeChannels) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.dropout_channel_fraction = 0.5;
  opts.dropout_level_v = 0.0;
  FaultInjector injector(opts);
  auto corrupted = injector.CorruptEmg(trial.emg_raw);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();

  const size_t dropped = CountEvents(injector, FaultType::kChannelDropout);
  EXPECT_EQ(dropped, 2u);  // half of the hand's 4 channels
  for (const auto& e : injector.events()) {
    if (e.type != FaultType::kChannelDropout) continue;
    for (double v : corrupted->channel(e.stream_index)) {
      ASSERT_EQ(v, 0.0);
    }
  }
}

TEST(FaultInjectorTest, SaturationClipsAtHalfPeak) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.saturation_channel_fraction = 1.0;
  FaultInjector injector(opts);
  auto corrupted = injector.CorruptEmg(trial.emg_raw);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  ASSERT_GT(CountEvents(injector, FaultType::kSaturation), 0u);

  for (const auto& e : injector.events()) {
    if (e.type != FaultType::kSaturation) continue;
    double clean_peak = 0.0;
    for (double v : trial.emg_raw.channel(e.stream_index)) {
      clean_peak = std::max(clean_peak, std::fabs(v));
    }
    EXPECT_NEAR(e.magnitude, 0.5 * clean_peak, 1e-12);
    size_t at_level = 0;
    for (double v : corrupted->channel(e.stream_index)) {
      EXPECT_LE(std::fabs(v), e.magnitude + 1e-15);
      if (std::fabs(std::fabs(v) - e.magnitude) < 1e-15) ++at_level;
    }
    // Clipping pins a visible number of samples to the rail.
    EXPECT_GT(at_level, corrupted->num_samples() / 1000);
  }
}

TEST(FaultInjectorTest, HumBurstRaisesLineFrequencyPower) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.hum_channel_fraction = 1.0;
  opts.hum_amplitude_v = 5e-4;
  opts.hum_freq_hz = 50.0;
  opts.hum_burst_fraction = 0.5;
  FaultInjector injector(opts);
  auto corrupted = injector.CorruptEmg(trial.emg_raw);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  ASSERT_GT(CountEvents(injector, FaultType::kHumBurst), 0u);

  const double fs = trial.emg_raw.sample_rate_hz();
  for (size_t c = 0; c < corrupted->num_channels(); ++c) {
    auto clean = GoertzelPower(trial.emg_raw.channel(c), 50.0, fs);
    auto dirty = GoertzelPower(corrupted->channel(c), 50.0, fs);
    ASSERT_TRUE(clean.ok() && dirty.ok());
    EXPECT_GT(*dirty, 10.0 * *clean);
  }
}

TEST(FaultInjectorTest, TriggerSkewShortensExactlyOneStream) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.trigger_jitter_ms = 50.0;
  FaultInjector injector(opts);
  auto corrupted = injector.Corrupt(trial);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  ASSERT_EQ(CountEvents(injector, FaultType::kTriggerSkew), 1u);

  const bool emg_shorter =
      corrupted->emg_raw.num_samples() < trial.emg_raw.num_samples();
  const bool mocap_shorter =
      corrupted->mocap.num_frames() < trial.mocap.num_frames();
  EXPECT_NE(emg_shorter, mocap_shorter);
}

TEST(FaultInjectorTest, ClockDriftWarpsContentKeepingMetadata) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts;
  opts.clock_drift_ppm = 5000.0;
  FaultInjector injector(opts);
  auto corrupted = injector.CorruptEmg(trial.emg_raw);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  ASSERT_EQ(CountEvents(injector, FaultType::kClockDrift), 1u);

  EXPECT_EQ(corrupted->num_samples(), trial.emg_raw.num_samples());
  EXPECT_DOUBLE_EQ(corrupted->sample_rate_hz(),
                   trial.emg_raw.sample_rate_hz());
  EXPECT_NE(corrupted->channel(0), trial.emg_raw.channel(0));
}

TEST(FaultInjectorTest, DeterministicInSeed) {
  const CapturedMotion trial = HandTrial();
  FaultInjectorOptions opts = FaultSeverityPreset(0.6, 99);
  FaultInjector a(opts);
  FaultInjector b(opts);
  auto ca = a.Corrupt(trial);
  auto cb = b.Corrupt(trial);
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_EQ(ca->emg_raw.channel(0), cb->emg_raw.channel(0));
  EXPECT_EQ(ca->mocap.num_frames(), cb->mocap.num_frames());
  for (size_t f = 0; f < ca->mocap.num_frames(); ++f) {
    for (size_t j = 0; j < 3 * ca->mocap.num_markers(); ++j) {
      const double va = ca->mocap.positions()(f, j);
      const double vb = cb->mocap.positions()(f, j);
      ASSERT_TRUE((std::isnan(va) && std::isnan(vb)) || va == vb);
    }
  }

  opts.seed = 100;
  FaultInjector c(opts);
  auto cc = c.Corrupt(trial);
  ASSERT_TRUE(cc.ok());
  EXPECT_NE(ca->emg_raw.channel(0), cc->emg_raw.channel(0));
}

TEST(FaultInjectorTest, ZeroSeverityIsIdentity) {
  const CapturedMotion trial = HandTrial();
  FaultInjector injector(FaultSeverityPreset(0.0, 7));
  auto corrupted = injector.Corrupt(trial);
  ASSERT_TRUE(corrupted.ok()) << corrupted.status();
  EXPECT_TRUE(injector.events().empty());
  EXPECT_TRUE(corrupted->mocap.positions().AllClose(
      trial.mocap.positions(), 0.0));
  EXPECT_EQ(corrupted->emg_raw.channel(0), trial.emg_raw.channel(0));
}

TEST(FaultInjectorTest, FaultTypeNamesAreStable) {
  EXPECT_STREQ(FaultTypeName(FaultType::kMarkerOcclusion),
               "marker_occlusion");
  EXPECT_STREQ(FaultTypeName(FaultType::kChannelDropout),
               "channel_dropout");
  EXPECT_STREQ(FaultTypeName(FaultType::kSaturation), "saturation");
  EXPECT_STREQ(FaultTypeName(FaultType::kHumBurst), "hum_burst");
  EXPECT_STREQ(FaultTypeName(FaultType::kTriggerSkew), "trigger_skew");
  EXPECT_STREQ(FaultTypeName(FaultType::kClockDrift), "clock_drift");
}

TEST(FaultInjectorTest, RejectsEmptyInputs) {
  FaultInjector injector(FaultInjectorOptions{});
  EXPECT_FALSE(injector.CorruptMocap(MotionSequence()).ok());
  EXPECT_FALSE(injector.CorruptEmg(EmgRecording()).ok());
}

}  // namespace
}  // namespace mocemg
