#include "synth/muscle_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "synth/motion_classes.h"

namespace mocemg {
namespace {

double MeanOf(const std::vector<double>& v, size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += v[i];
  return sum / static_cast<double>(end - begin);
}

const MuscleActivation* Find(const std::vector<MuscleActivation>& acts,
                             Muscle m) {
  for (const auto& a : acts) {
    if (a.muscle == m) return &a;
  }
  return nullptr;
}

TEST(MuscleModelTest, ArmReturnsPaperElectrodeSet) {
  ArmAngleSeries angles;
  angles.shoulder_elevation.assign(120, 0.0);
  angles.shoulder_azimuth.assign(120, 0.0);
  angles.elbow_flexion.assign(120, 0.0);
  angles.wrist_flexion.assign(120, 0.0);
  Rng rng(1);
  auto acts = ComputeArmActivations(angles, 120.0, MuscleModelOptions{},
                                    &rng);
  ASSERT_TRUE(acts.ok());
  ASSERT_EQ(acts->size(), 4u);
  EXPECT_NE(Find(*acts, Muscle::kBiceps), nullptr);
  EXPECT_NE(Find(*acts, Muscle::kTriceps), nullptr);
  EXPECT_NE(Find(*acts, Muscle::kUpperForearm), nullptr);
  EXPECT_NE(Find(*acts, Muscle::kLowerForearm), nullptr);
  for (const auto& a : *acts) {
    EXPECT_EQ(a.activation.size(), 120u);
  }
}

TEST(MuscleModelTest, ActivationsStayInUnitRange) {
  Rng rng(2);
  TrialVariation v;
  auto spec =
      GenerateHandMotion(HandMotionClass::kThrowBall, v, 120.0, &rng);
  ASSERT_TRUE(spec.ok());
  auto acts = ComputeArmActivations(spec->angles, 120.0,
                                    MuscleModelOptions{}, &rng);
  ASSERT_TRUE(acts.ok());
  for (const auto& a : *acts) {
    for (double x : a.activation) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(MuscleModelTest, ElbowFlexionDrivesBicepsOverTriceps) {
  // A pure elbow-flexion ramp-up: biceps must out-activate triceps
  // during the lift.
  const size_t n = 240;
  ArmAngleSeries angles;
  angles.shoulder_elevation.assign(n, 0.0);
  angles.shoulder_azimuth.assign(n, 0.0);
  angles.wrist_flexion.assign(n, 0.0);
  angles.elbow_flexion.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Smooth rise 0 → 1.8 rad over 2 s.
    const double t = static_cast<double>(i) / static_cast<double>(n);
    angles.elbow_flexion[i] = 1.8 * t * t * (3.0 - 2.0 * t);
  }
  MuscleModelOptions opts;
  opts.trial_gain_sigma = 0.0;  // deterministic comparison
  Rng rng(3);
  auto acts = ComputeArmActivations(angles, 120.0, opts, &rng);
  ASSERT_TRUE(acts.ok());
  const auto* biceps = Find(*acts, Muscle::kBiceps);
  const auto* triceps = Find(*acts, Muscle::kTriceps);
  ASSERT_NE(biceps, nullptr);
  ASSERT_NE(triceps, nullptr);
  const double b = MeanOf(biceps->activation, n / 4, 3 * n / 4);
  const double t = MeanOf(triceps->activation, n / 4, 3 * n / 4);
  EXPECT_GT(b, 1.5 * t);
}

TEST(MuscleModelTest, RestIsNearTonicLevel) {
  const size_t n = 120;
  ArmAngleSeries angles;
  angles.shoulder_elevation.assign(n, 0.0);
  angles.shoulder_azimuth.assign(n, 0.0);
  angles.elbow_flexion.assign(n, 0.0);
  angles.wrist_flexion.assign(n, 0.0);
  MuscleModelOptions opts;
  opts.trial_gain_sigma = 0.0;
  Rng rng(4);
  auto acts = ComputeArmActivations(angles, 120.0, opts, &rng);
  ASSERT_TRUE(acts.ok());
  const auto* triceps = Find(*acts, Muscle::kTriceps);
  EXPECT_LT(MeanOf(triceps->activation, 10, n), 3.0 * opts.tonic_level);
}

TEST(MuscleModelTest, LegReturnsTwoShinChannels) {
  LegAngleSeries angles;
  angles.hip_flexion.assign(100, 0.0);
  angles.knee_flexion.assign(100, 0.0);
  angles.ankle_flexion.assign(100, 0.0);
  Rng rng(5);
  auto acts = ComputeLegActivations(angles, 120.0, MuscleModelOptions{},
                                    &rng);
  ASSERT_TRUE(acts.ok());
  ASSERT_EQ(acts->size(), 2u);
  EXPECT_EQ((*acts)[0].muscle, Muscle::kFrontShin);
  EXPECT_EQ((*acts)[1].muscle, Muscle::kBackShin);
}

TEST(MuscleModelTest, DorsiflexionDrivesFrontShin) {
  const size_t n = 240;
  LegAngleSeries angles;
  angles.hip_flexion.assign(n, 0.0);
  angles.knee_flexion.assign(n, 0.0);
  angles.ankle_flexion.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    angles.ankle_flexion[i] = 0.5 * t * t * (3.0 - 2.0 * t);
  }
  MuscleModelOptions opts;
  opts.trial_gain_sigma = 0.0;
  Rng rng(6);
  auto acts = ComputeLegActivations(angles, 120.0, opts, &rng);
  ASSERT_TRUE(acts.ok());
  const double front = MeanOf((*acts)[0].activation, n / 4, 3 * n / 4);
  const double back = MeanOf((*acts)[1].activation, n / 4, 3 * n / 4);
  EXPECT_GT(front, back);
}

TEST(MuscleModelTest, TrialGainJitterMakesTrialsDiffer) {
  // The paper: two similar motions need not have similar EMG. Same
  // kinematics, different trial → different activation scale.
  const size_t n = 120;
  ArmAngleSeries angles;
  angles.shoulder_elevation.assign(n, 0.0);
  angles.shoulder_azimuth.assign(n, 0.0);
  angles.wrist_flexion.assign(n, 0.0);
  angles.elbow_flexion.resize(n);
  for (size_t i = 0; i < n; ++i) {
    angles.elbow_flexion[i] = std::sin(0.05 * static_cast<double>(i));
  }
  Rng rng_a(7);
  Rng rng_b(8);
  MuscleModelOptions opts;
  auto a = ComputeArmActivations(angles, 120.0, opts, &rng_a);
  auto b = ComputeArmActivations(angles, 120.0, opts, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double mean_a = MeanOf(Find(*a, Muscle::kBiceps)->activation, 0, n);
  const double mean_b = MeanOf(Find(*b, Muscle::kBiceps)->activation, 0, n);
  EXPECT_GT(std::fabs(mean_a - mean_b) / std::max(mean_a, mean_b), 0.02);
}

TEST(MuscleModelTest, Validations) {
  Rng rng(9);
  ArmAngleSeries empty;
  EXPECT_FALSE(
      ComputeArmActivations(empty, 120.0, MuscleModelOptions{}, &rng)
          .ok());
  ArmAngleSeries ok;
  ok.shoulder_elevation.assign(10, 0.0);
  ok.shoulder_azimuth.assign(10, 0.0);
  ok.elbow_flexion.assign(10, 0.0);
  ok.wrist_flexion.assign(10, 0.0);
  EXPECT_FALSE(
      ComputeArmActivations(ok, 120.0, MuscleModelOptions{}, nullptr)
          .ok());
  EXPECT_FALSE(
      ComputeArmActivations(ok, 0.0, MuscleModelOptions{}, &rng).ok());
}

}  // namespace
}  // namespace mocemg
