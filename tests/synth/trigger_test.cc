#include "synth/trigger.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(TriggerTest, DefaultIsPerfectlySynchronized) {
  TriggerEvent ev = FireTrigger(TriggerOptions{}, nullptr);
  EXPECT_DOUBLE_EQ(ev.mocap_start_s, 0.0);
  EXPECT_DOUBLE_EQ(ev.emg_start_s, 0.0);
}

TEST(TriggerTest, DeterministicLatencies) {
  TriggerOptions opts;
  opts.mocap_latency_ms = 10.0;
  opts.emg_latency_ms = 25.0;
  TriggerEvent ev = FireTrigger(opts, nullptr);
  EXPECT_DOUBLE_EQ(ev.mocap_start_s, 0.010);
  EXPECT_DOUBLE_EQ(ev.emg_start_s, 0.025);
}

TEST(TriggerTest, JitterVariesAcrossTrials) {
  TriggerOptions opts;
  opts.jitter_ms = 5.0;
  Rng rng(1);
  TriggerEvent a = FireTrigger(opts, &rng);
  TriggerEvent b = FireTrigger(opts, &rng);
  EXPECT_NE(a.emg_start_s, b.emg_start_s);
}

TEST(TriggerTest, LatencyNeverNegative) {
  TriggerOptions opts;
  opts.mocap_latency_ms = 1.0;
  opts.jitter_ms = 50.0;  // jitter often pushes below zero
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    TriggerEvent ev = FireTrigger(opts, &rng);
    EXPECT_GE(ev.mocap_start_s, 0.0);
    EXPECT_GE(ev.emg_start_s, 0.0);
  }
}

TEST(TriggerTest, MocapLatencyDropsFrames) {
  MarkerSet set({Segment::kHand});
  Matrix positions(120, 6);
  for (size_t f = 0; f < 120; ++f) positions(f, 0) = f;
  auto motion = MotionSequence::Create(set, std::move(positions), 120.0);
  ASSERT_TRUE(motion.ok());
  auto delayed = ApplyStartLatency(*motion, 0.5);  // 60 frames
  ASSERT_TRUE(delayed.ok());
  EXPECT_EQ(delayed->num_frames(), 60u);
  EXPECT_DOUBLE_EQ(delayed->MarkerPosition(0, 0)[0], 60.0);
}

TEST(TriggerTest, EmgLatencyDropsSamples) {
  auto rec = EmgRecording::Create(
      {Muscle::kBiceps}, {{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}},
      1000.0);
  ASSERT_TRUE(rec.ok());
  auto delayed = ApplyStartLatency(*rec, 0.003);
  ASSERT_TRUE(delayed.ok());
  EXPECT_EQ(delayed->num_samples(), 5u);
  EXPECT_DOUBLE_EQ(delayed->channel(0)[0], 3.0);
}

TEST(TriggerTest, LatencyCannotSwallowCapture) {
  MarkerSet set({Segment::kHand});
  auto motion = MotionSequence::Create(set, Matrix(10, 6), 120.0);
  ASSERT_TRUE(motion.ok());
  EXPECT_FALSE(ApplyStartLatency(*motion, 10.0).ok());
  EXPECT_FALSE(ApplyStartLatency(*motion, -0.1).ok());
}

TEST(TriggerTest, ZeroLatencyIsIdentity) {
  auto rec =
      EmgRecording::Create({Muscle::kBiceps}, {{1.0, 2.0}}, 1000.0);
  ASSERT_TRUE(rec.ok());
  auto same = ApplyStartLatency(*rec, 0.0);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->num_samples(), 2u);
}

}  // namespace
}  // namespace mocemg
