#include "synth/motion_classes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace mocemg {
namespace {

TEST(MotionClassesTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (size_t i = 0; i < NumHandClasses(); ++i) {
    names.insert(HandMotionClassName(static_cast<HandMotionClass>(i)));
  }
  EXPECT_EQ(names.size(), NumHandClasses());
  names.clear();
  for (size_t i = 0; i < NumLegClasses(); ++i) {
    names.insert(LegMotionClassName(static_cast<LegMotionClass>(i)));
  }
  EXPECT_EQ(names.size(), NumLegClasses());
}

TEST(MotionClassesTest, PaperNamedClassesExist) {
  // The paper's figures use "Raise Arm" and "Throw Ball".
  EXPECT_STREQ(HandMotionClassName(HandMotionClass::kRaiseArm),
               "raise_arm");
  EXPECT_STREQ(HandMotionClassName(HandMotionClass::kThrowBall),
               "throw_ball");
}

TEST(MotionClassesTest, TrialVariationWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    TrialVariation v = SampleTrialVariation(&rng);
    EXPECT_GE(v.amplitude_scale, 0.7);
    EXPECT_LE(v.amplitude_scale, 1.3);
    EXPECT_GE(v.time_scale, 0.7);
    EXPECT_LE(v.time_scale, 1.35);
    EXPECT_GE(v.onset_delay_s, 0.0);
    EXPECT_LE(v.onset_delay_s, 0.25);
    EXPECT_GE(v.rhythm_scale, 0.75);
    EXPECT_LE(v.rhythm_scale, 1.25);
  }
}

TEST(MotionClassesTest, HandMotionsGenerateValidSeries) {
  Rng rng(2);
  for (size_t i = 0; i < NumHandClasses(); ++i) {
    TrialVariation v = SampleTrialVariation(&rng);
    auto spec = GenerateHandMotion(static_cast<HandMotionClass>(i), v,
                                   120.0, &rng);
    ASSERT_TRUE(spec.ok()) << HandMotionClassName(
        static_cast<HandMotionClass>(i));
    EXPECT_TRUE(spec->angles.Validate().ok());
    // 1.5–5 seconds of frames at 120 Hz.
    EXPECT_GT(spec->angles.num_frames(), 150u);
    EXPECT_LT(spec->angles.num_frames(), 620u);
    // Angles stay physiological (|θ| < π).
    for (double a : spec->angles.elbow_flexion) {
      EXPECT_LT(std::fabs(a), M_PI);
    }
  }
}

TEST(MotionClassesTest, LegMotionsGenerateValidSeries) {
  Rng rng(3);
  for (size_t i = 0; i < NumLegClasses(); ++i) {
    TrialVariation v = SampleTrialVariation(&rng);
    auto spec = GenerateLegMotion(static_cast<LegMotionClass>(i), v,
                                  120.0, &rng);
    ASSERT_TRUE(spec.ok());
    EXPECT_TRUE(spec->angles.Validate().ok());
    EXPECT_EQ(spec->pelvis_dx.size(), spec->angles.num_frames());
    EXPECT_EQ(spec->pelvis_dz.size(), spec->angles.num_frames());
  }
}

TEST(MotionClassesTest, RaiseArmActuallyRaisesTheArm) {
  Rng rng(4);
  TrialVariation v;  // defaults: no perturbation
  auto spec =
      GenerateHandMotion(HandMotionClass::kRaiseArm, v, 120.0, &rng);
  ASSERT_TRUE(spec.ok());
  const auto& elev = spec->angles.shoulder_elevation;
  const double start = elev.front();
  const double peak = *std::max_element(elev.begin(), elev.end());
  EXPECT_GT(peak, start + 1.0);  // raises by over a radian
}

TEST(MotionClassesTest, WalkOscillatesHip) {
  Rng rng(5);
  TrialVariation v;
  auto spec = GenerateLegMotion(LegMotionClass::kWalk, v, 120.0, &rng);
  ASSERT_TRUE(spec.ok());
  const auto& hip = spec->angles.hip_flexion;
  const double min = *std::min_element(hip.begin(), hip.end());
  const double max = *std::max_element(hip.begin(), hip.end());
  EXPECT_GT(max - min, 0.5);  // swings
  // And progresses forward.
  EXPECT_GT(spec->pelvis_dx.back(), 1000.0);
}

TEST(MotionClassesTest, SquatDropsPelvis) {
  Rng rng(6);
  TrialVariation v;
  auto spec = GenerateLegMotion(LegMotionClass::kSquat, v, 120.0, &rng);
  ASSERT_TRUE(spec.ok());
  const double lowest = *std::min_element(spec->pelvis_dz.begin(),
                                          spec->pelvis_dz.end());
  EXPECT_LT(lowest, -200.0);
}

TEST(MotionClassesTest, TrialsDifferButShareShape) {
  Rng rng(7);
  TrialVariation v1 = SampleTrialVariation(&rng);
  TrialVariation v2 = SampleTrialVariation(&rng);
  auto a = GenerateHandMotion(HandMotionClass::kThrowBall, v1, 120.0,
                              &rng);
  auto b = GenerateHandMotion(HandMotionClass::kThrowBall, v2, 120.0,
                              &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different trials are not identical…
  const size_t n =
      std::min(a->angles.num_frames(), b->angles.num_frames());
  double diff = 0.0;
  for (size_t f = 0; f < n; ++f) {
    diff += std::fabs(a->angles.elbow_flexion[f] -
                      b->angles.elbow_flexion[f]);
  }
  EXPECT_GT(diff / static_cast<double>(n), 0.01);
  // …but both show the throw's elbow cock (> 1.2 rad peak).
  EXPECT_GT(*std::max_element(a->angles.elbow_flexion.begin(),
                              a->angles.elbow_flexion.end()),
            1.2);
  EXPECT_GT(*std::max_element(b->angles.elbow_flexion.begin(),
                              b->angles.elbow_flexion.end()),
            1.2);
}

TEST(MotionClassesTest, TimeScaleStretchesDuration) {
  Rng rng(8);
  TrialVariation slow;
  slow.time_scale = 1.3;
  TrialVariation fast;
  fast.time_scale = 0.75;
  auto a = GenerateHandMotion(HandMotionClass::kDrink, slow, 120.0, &rng);
  auto b = GenerateHandMotion(HandMotionClass::kDrink, fast, 120.0, &rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->angles.num_frames(), b->angles.num_frames());
}

TEST(MotionClassesTest, Validations) {
  Rng rng(9);
  TrialVariation v;
  EXPECT_FALSE(
      GenerateHandMotion(HandMotionClass::kNumClasses, v, 120.0, &rng)
          .ok());
  EXPECT_FALSE(
      GenerateHandMotion(HandMotionClass::kRaiseArm, v, 0.0, &rng).ok());
  EXPECT_FALSE(
      GenerateHandMotion(HandMotionClass::kRaiseArm, v, 120.0, nullptr)
          .ok());
  EXPECT_FALSE(
      GenerateLegMotion(LegMotionClass::kNumClasses, v, 120.0, &rng)
          .ok());
}

}  // namespace
}  // namespace mocemg
