#include "synth/kinematics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mocap/local_transform.h"

namespace mocemg {
namespace {

ArmAngleSeries RestingArm(size_t frames) {
  ArmAngleSeries a;
  a.shoulder_elevation.assign(frames, 0.0);
  a.shoulder_azimuth.assign(frames, 0.0);
  a.elbow_flexion.assign(frames, 0.0);
  a.wrist_flexion.assign(frames, 0.0);
  return a;
}

LegAngleSeries StandingLeg(size_t frames) {
  LegAngleSeries a;
  a.hip_flexion.assign(frames, 0.0);
  a.knee_flexion.assign(frames, 0.0);
  a.ankle_flexion.assign(frames, 0.0);
  return a;
}

PlacementOptions NoiselessPlacement() {
  PlacementOptions p;
  p.marker_noise_mm = 0.0;
  p.sway_mm = 0.0;
  return p;
}

TEST(ArmKinematicsTest, MarkerSetMatchesPaperHandAttributes) {
  Rng rng(1);
  auto seq = SynthesizeArmCapture(RestingArm(10), BodyDimensions{},
                                  NoiselessPlacement(), &rng);
  ASSERT_TRUE(seq.ok()) << seq.status();
  const auto& segments = seq->marker_set().segments();
  ASSERT_EQ(segments.size(), 5u);
  EXPECT_EQ(segments[0], Segment::kPelvis);
  EXPECT_EQ(segments[1], Segment::kClavicle);
  EXPECT_EQ(segments[4], Segment::kHand);
  EXPECT_EQ(seq->num_frames(), 10u);
}

TEST(ArmKinematicsTest, RestingArmHangsDown) {
  Rng rng(2);
  BodyDimensions body;
  auto seq = SynthesizeArmCapture(RestingArm(5), body,
                                  NoiselessPlacement(), &rng);
  ASSERT_TRUE(seq.ok());
  const auto pelvis = seq->MarkerPosition(0, 0);
  const auto clav = seq->MarkerPosition(0, 1);
  const auto hand = seq->MarkerPosition(0, 4);
  // Clavicle above pelvis by the torso height.
  EXPECT_NEAR(clav[2] - pelvis[2], body.torso_height, 1e-6);
  // Hand below the shoulder by the full arm length.
  EXPECT_NEAR(clav[2] - hand[2],
              body.upper_arm + body.forearm + body.hand, 1e-6);
  // And horizontally aligned with the shoulder.
  EXPECT_NEAR(hand[0], clav[0], 1e-6);
}

TEST(ArmKinematicsTest, SegmentLengthsPreservedUnderMotion) {
  Rng rng(3);
  BodyDimensions body;
  ArmAngleSeries a = RestingArm(50);
  for (size_t f = 0; f < 50; ++f) {
    a.shoulder_elevation[f] = 0.03 * static_cast<double>(f);
    a.elbow_flexion[f] = 0.02 * static_cast<double>(f);
    a.wrist_flexion[f] = 0.01 * static_cast<double>(f);
    a.shoulder_azimuth[f] = 0.5 * std::sin(0.1 * f);
  }
  auto seq =
      SynthesizeArmCapture(a, body, NoiselessPlacement(), &rng);
  ASSERT_TRUE(seq.ok());
  for (size_t f = 0; f < 50; f += 7) {
    const auto clav = seq->MarkerPosition(f, 1);
    const auto elbow = seq->MarkerPosition(f, 2);
    const auto wrist = seq->MarkerPosition(f, 3);
    const auto hand = seq->MarkerPosition(f, 4);
    auto dist = [](const std::array<double, 3>& p,
                   const std::array<double, 3>& q) {
      return std::sqrt((p[0] - q[0]) * (p[0] - q[0]) +
                       (p[1] - q[1]) * (p[1] - q[1]) +
                       (p[2] - q[2]) * (p[2] - q[2]));
    };
    EXPECT_NEAR(dist(clav, elbow), body.upper_arm, 1e-6);
    EXPECT_NEAR(dist(elbow, wrist), body.forearm, 1e-6);
    EXPECT_NEAR(dist(wrist, hand), body.hand, 1e-6);
  }
}

TEST(ArmKinematicsTest, RaisedArmIsForwardAndUp) {
  Rng rng(4);
  ArmAngleSeries a = RestingArm(3);
  for (auto& v : a.shoulder_elevation) v = M_PI / 2.0;  // horizontal
  auto seq = SynthesizeArmCapture(a, BodyDimensions{},
                                  NoiselessPlacement(), &rng);
  ASSERT_TRUE(seq.ok());
  const auto clav = seq->MarkerPosition(0, 1);
  const auto elbow = seq->MarkerPosition(0, 2);
  EXPECT_NEAR(elbow[2], clav[2], 1e-6);                       // level
  EXPECT_NEAR(elbow[0] - clav[0], BodyDimensions{}.upper_arm, 1e-6);
}

TEST(ArmKinematicsTest, HeadingRotationIsRemovedByLocalTransform) {
  ArmAngleSeries a = RestingArm(20);
  for (size_t f = 0; f < 20; ++f) {
    a.shoulder_elevation[f] = 0.05 * static_cast<double>(f);
  }
  PlacementOptions p1 = NoiselessPlacement();
  PlacementOptions p2 = NoiselessPlacement();
  p2.origin_x = 4000.0;
  p2.origin_y = -2000.0;
  Rng r1(5);
  Rng r2(5);
  auto s1 = SynthesizeArmCapture(a, BodyDimensions{}, p1, &r1);
  auto s2 = SynthesizeArmCapture(a, BodyDimensions{}, p2, &r2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // Different in the lab frame…
  EXPECT_FALSE(s1->positions().AllClose(s2->positions(), 100.0));
  // …identical pelvis-local.
  auto l1 = ToPelvisLocal(*s1);
  auto l2 = ToPelvisLocal(*s2);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_TRUE(l1->positions().AllClose(l2->positions(), 1e-6));
}

TEST(ArmKinematicsTest, MarkerNoiseHasRequestedScale) {
  Rng rng(6);
  PlacementOptions p = NoiselessPlacement();
  p.marker_noise_mm = 2.0;
  auto seq = SynthesizeArmCapture(RestingArm(2000), BodyDimensions{}, p,
                                  &rng);
  ASSERT_TRUE(seq.ok());
  // The hand is static, so its x spread is pure noise.
  double mean = 0.0;
  for (size_t f = 0; f < 2000; ++f) mean += seq->MarkerPosition(f, 4)[0];
  mean /= 2000.0;
  double var = 0.0;
  for (size_t f = 0; f < 2000; ++f) {
    const double d = seq->MarkerPosition(f, 4)[0] - mean;
    var += d * d;
  }
  EXPECT_NEAR(std::sqrt(var / 2000.0), 2.0, 0.2);
}

TEST(ArmKinematicsTest, Validations) {
  Rng rng(7);
  ArmAngleSeries bad = RestingArm(5);
  bad.elbow_flexion.pop_back();
  EXPECT_FALSE(SynthesizeArmCapture(bad, BodyDimensions{},
                                    NoiselessPlacement(), &rng)
                   .ok());
  EXPECT_FALSE(SynthesizeArmCapture(RestingArm(5), BodyDimensions{},
                                    NoiselessPlacement(), nullptr)
                   .ok());
  PlacementOptions p = NoiselessPlacement();
  p.pelvis_dx = {1.0, 2.0};  // wrong length
  EXPECT_FALSE(
      SynthesizeArmCapture(RestingArm(5), BodyDimensions{}, p, &rng).ok());
}

TEST(LegKinematicsTest, MarkerSetMatchesPaperLegAttributes) {
  Rng rng(8);
  auto seq = SynthesizeLegCapture(StandingLeg(10), BodyDimensions{},
                                  NoiselessPlacement(), &rng);
  ASSERT_TRUE(seq.ok());
  const auto& segments = seq->marker_set().segments();
  ASSERT_EQ(segments.size(), 4u);
  EXPECT_EQ(segments[1], Segment::kTibia);
  EXPECT_EQ(segments[2], Segment::kFoot);
  EXPECT_EQ(segments[3], Segment::kToe);
}

TEST(LegKinematicsTest, StandingLegGeometry) {
  Rng rng(9);
  BodyDimensions body;
  auto seq = SynthesizeLegCapture(StandingLeg(3), body,
                                  NoiselessPlacement(), &rng);
  ASSERT_TRUE(seq.ok());
  const auto pelvis = seq->MarkerPosition(0, 0);
  const auto ankle = seq->MarkerPosition(0, 1);
  const auto toe = seq->MarkerPosition(0, 3);
  // Ankle below pelvis by hip drop + thigh + shank.
  EXPECT_NEAR(pelvis[2] - ankle[2],
              body.hip_drop + body.thigh + body.shank, 1e-6);
  // Toe points forward (+x) when standing.
  EXPECT_NEAR(toe[0] - ankle[0], body.foot + body.toe, 1e-6);
  EXPECT_NEAR(toe[2], ankle[2], 1e-6);
}

TEST(LegKinematicsTest, PelvisTranslationTracksApplied) {
  Rng rng(10);
  PlacementOptions p = NoiselessPlacement();
  p.pelvis_dx.assign(5, 0.0);
  p.pelvis_dz.assign(5, 0.0);
  for (size_t f = 0; f < 5; ++f) {
    p.pelvis_dx[f] = 100.0 * static_cast<double>(f);
  }
  auto seq = SynthesizeLegCapture(StandingLeg(5), BodyDimensions{}, p,
                                  &rng);
  ASSERT_TRUE(seq.ok());
  EXPECT_NEAR(seq->MarkerPosition(4, 0)[0] - seq->MarkerPosition(0, 0)[0],
              400.0, 1e-6);
}

TEST(BodyDimensionsTest, ScalingIsUniform) {
  BodyDimensions body;
  BodyDimensions scaled = body.Scaled(1.1);
  EXPECT_NEAR(scaled.thigh, body.thigh * 1.1, 1e-9);
  EXPECT_NEAR(scaled.hand, body.hand * 1.1, 1e-9);
  EXPECT_NEAR(scaled.shoulder_offset_y, body.shoulder_offset_y * 1.1,
              1e-9);
}

}  // namespace
}  // namespace mocemg
