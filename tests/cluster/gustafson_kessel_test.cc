#include "cluster/gustafson_kessel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/fcm.h"
#include "linalg/vector_ops.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Two elongated (anisotropic) clusters that spherical FCM struggles
// with: long axis 10x the short axis, separated along y.
Matrix MakeEllipses(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  Matrix points(2 * per_blob, 2);
  for (size_t b = 0; b < 2; ++b) {
    const double cy = b == 0 ? 0.0 : 6.0;
    for (size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = rng.Gaussian(0.0, 5.0);   // long axis
      points(b * per_blob + i, 1) = cy + rng.Gaussian(0.0, 0.5);
    }
  }
  return points;
}

TEST(GkTest, Validations) {
  GkOptions opts;
  EXPECT_FALSE(FitGustafsonKessel(Matrix(), opts).ok());
  opts.num_clusters = 0;
  EXPECT_FALSE(FitGustafsonKessel(MakeEllipses(10, 1), opts).ok());
  opts.num_clusters = 2;
  opts.fuzziness = 1.0;
  EXPECT_FALSE(FitGustafsonKessel(MakeEllipses(10, 1), opts).ok());
  opts.fuzziness = 2.0;
  opts.regularization = 2.0;
  EXPECT_FALSE(FitGustafsonKessel(MakeEllipses(10, 1), opts).ok());
}

TEST(GkTest, MembershipRowsSumToOne) {
  GkOptions opts;
  opts.num_clusters = 2;
  auto model = FitGustafsonKessel(MakeEllipses(40, 2), opts);
  ASSERT_TRUE(model.ok()) << model.status();
  for (size_t k = 0; k < model->memberships.rows(); ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < 2; ++i) sum += model->memberships(k, i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GkTest, SeparatesElongatedClusters) {
  Matrix points = MakeEllipses(60, 3);
  GkOptions opts;
  opts.num_clusters = 2;
  opts.seed = 5;
  auto model = FitGustafsonKessel(points, opts);
  ASSERT_TRUE(model.ok());
  // Count points whose winning cluster matches their generating blob
  // (up to cluster relabeling).
  size_t agree = 0;
  for (size_t k = 0; k < points.rows(); ++k) {
    const size_t truth = k < 60 ? 0 : 1;
    const size_t won =
        model->memberships(k, 0) > model->memberships(k, 1) ? 0 : 1;
    if (won == truth) ++agree;
  }
  const size_t accuracy = std::max(agree, points.rows() - agree);
  EXPECT_GT(accuracy, points.rows() * 9 / 10);
}

TEST(GkTest, NormMatricesReflectAnisotropy) {
  Matrix points = MakeEllipses(80, 4);
  GkOptions opts;
  opts.num_clusters = 2;
  auto model = FitGustafsonKessel(points, opts);
  ASSERT_TRUE(model.ok());
  // The x axis (σ = 5) is the cheap direction: A(0,0) << A(1,1).
  for (size_t i = 0; i < 2; ++i) {
    Matrix a = model->NormMatrix(i);
    EXPECT_LT(a(0, 0) * 5.0, a(1, 1));
  }
}

TEST(GkTest, DistanceUsesAdaptiveNorm) {
  Matrix points = MakeEllipses(80, 5);
  GkOptions opts;
  opts.num_clusters = 2;
  auto model = FitGustafsonKessel(points, opts);
  ASSERT_TRUE(model.ok());
  // Which cluster center has smaller y (the 0-ish one)?
  const size_t low = model->centers(0, 1) < model->centers(1, 1) ? 0 : 1;
  // A point far along the long axis of the low cluster must be GK-closer
  // to it than a point the same Euclidean distance away along y.
  const std::vector<double> along_x = {8.0, model->centers(low, 1)};
  const std::vector<double> along_y = {model->centers(low, 0),
                                       model->centers(low, 1) + 8.0};
  auto dx = model->SquaredDistanceTo(low, along_x);
  auto dy = model->SquaredDistanceTo(low, along_y);
  ASSERT_TRUE(dx.ok());
  ASSERT_TRUE(dy.ok());
  EXPECT_LT(*dx, *dy);
}

TEST(GkTest, OutOfSampleMembershipCrispNearCenter) {
  Matrix points = MakeEllipses(50, 6);
  GkOptions opts;
  opts.num_clusters = 2;
  auto model = FitGustafsonKessel(points, opts);
  ASSERT_TRUE(model.ok());
  auto u = model->Membership(model->centers.Row(0));
  ASSERT_TRUE(u.ok());
  EXPECT_GT((*u)[0], 0.99);
  EXPECT_FALSE(model->Membership({1.0}).ok());
  EXPECT_FALSE(model->Membership(model->centers.Row(0), 1.0).ok());
}

TEST(GkTest, ObjectiveDecreases) {
  GkOptions opts;
  opts.num_clusters = 3;
  auto model = FitGustafsonKessel(MakeEllipses(40, 7), opts);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->objective_history.size(); ++i) {
    EXPECT_LE(model->objective_history[i],
              model->objective_history[i - 1] * 1.02);
  }
}

TEST(GkTest, DeterministicForSeed) {
  Matrix points = MakeEllipses(30, 8);
  GkOptions opts;
  opts.num_clusters = 2;
  opts.seed = 99;
  auto a = FitGustafsonKessel(points, opts);
  auto b = FitGustafsonKessel(points, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->centers.AllClose(b->centers, 0.0));
}

TEST(GkTest, BeatsSphericalFcmOnAnisotropicData) {
  // The motivating property: on strongly elongated clusters GK's
  // adaptive norm should match-or-beat spherical FCM's assignment
  // accuracy.
  Matrix points = MakeEllipses(60, 9);
  auto truth_accuracy = [&](const Matrix& memberships) {
    size_t agree = 0;
    for (size_t k = 0; k < points.rows(); ++k) {
      const size_t truth = k < 60 ? 0 : 1;
      const size_t won = memberships(k, 0) > memberships(k, 1) ? 0 : 1;
      if (won == truth) ++agree;
    }
    return std::max(agree, points.rows() - agree);
  };
  GkOptions gk;
  gk.num_clusters = 2;
  gk.seed = 3;
  auto gk_model = FitGustafsonKessel(points, gk);
  ASSERT_TRUE(gk_model.ok());
  FcmOptions fcm;
  fcm.num_clusters = 2;
  fcm.seed = 3;
  auto fcm_model = FitFcm(points, fcm);
  ASSERT_TRUE(fcm_model.ok());
  EXPECT_GE(truth_accuracy(gk_model->memberships) + 2,
            truth_accuracy(fcm_model->memberships));
}

}  // namespace
}  // namespace mocemg
