#include "cluster/selection.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace mocemg {
namespace {

// k well-separated blobs in 2-D.
Matrix MakeBlobs(size_t k, size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  Matrix points(k * per_blob, 2);
  for (size_t b = 0; b < k; ++b) {
    const double cx = static_cast<double>(b % 3) * 12.0;
    const double cy = static_cast<double>(b / 3) * 12.0;
    for (size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = cx + rng.Gaussian(0, 0.6);
      points(b * per_blob + i, 1) = cy + rng.Gaussian(0, 0.6);
    }
  }
  return points;
}

TEST(SelectionTest, Validations) {
  SelectionOptions opts;
  EXPECT_FALSE(SelectClusterCount(Matrix(), opts).ok());
  opts.candidates = {};
  EXPECT_FALSE(SelectClusterCount(MakeBlobs(3, 10, 1), opts).ok());
  // All candidates infeasible (c > n).
  opts.candidates = {100};
  EXPECT_FALSE(SelectClusterCount(MakeBlobs(3, 5, 1), opts).ok());
}

TEST(SelectionTest, XieBeniRecoversTrueBlobCount) {
  Matrix points = MakeBlobs(4, 40, 2);
  SelectionOptions opts;
  opts.candidates = {2, 3, 4, 5, 6, 8};
  opts.fcm.seed = 7;
  opts.fcm.restarts = 2;
  auto result = SelectClusterCount(points, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->recommended_clusters, 4u);
}

TEST(SelectionTest, ScoresReportedForAllFeasibleCandidates) {
  Matrix points = MakeBlobs(3, 20, 3);
  SelectionOptions opts;
  opts.candidates = {2, 3, 5, 1000};
  auto result = SelectClusterCount(points, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scores.size(), 3u);  // 1000 skipped
  for (const auto& s : result->scores) {
    EXPECT_GT(s.partition_coefficient, 0.0);
    EXPECT_LE(s.partition_coefficient, 1.0);
    EXPECT_GE(s.partition_entropy, 0.0);
    EXPECT_GE(s.objective, 0.0);
  }
}

TEST(SelectionTest, ObjectiveDecreasesWithMoreClusters) {
  Matrix points = MakeBlobs(4, 30, 4);
  SelectionOptions opts;
  opts.candidates = {2, 4, 8, 16};
  opts.fcm.restarts = 2;
  auto result = SelectClusterCount(points, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->scores.size(); ++i) {
    EXPECT_LT(result->scores[i].objective,
              result->scores[i - 1].objective * 1.05);
  }
}

TEST(SelectionTest, AlternativeCriteria) {
  Matrix points = MakeBlobs(3, 30, 5);
  for (SelectionCriterion criterion :
       {SelectionCriterion::kXieBeni,
        SelectionCriterion::kPartitionCoefficient,
        SelectionCriterion::kPartitionEntropy}) {
    SelectionOptions opts;
    opts.candidates = {2, 3, 4, 6};
    opts.criterion = criterion;
    opts.fcm.restarts = 2;
    auto result = SelectClusterCount(points, opts);
    ASSERT_TRUE(result.ok()) << SelectionCriterionName(criterion);
    EXPECT_GE(result->recommended_clusters, 2u);
    EXPECT_LE(result->recommended_clusters, 6u);
  }
}

TEST(SelectionTest, CriterionNames) {
  EXPECT_STREQ(SelectionCriterionName(SelectionCriterion::kXieBeni),
               "xie_beni");
  EXPECT_STREQ(
      SelectionCriterionName(SelectionCriterion::kPartitionEntropy),
      "partition_entropy");
}

}  // namespace
}  // namespace mocemg
