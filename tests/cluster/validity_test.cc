#include "cluster/validity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace mocemg {
namespace {

Matrix MakeBlobs(size_t per_blob, double spread, uint64_t seed) {
  Rng rng(seed);
  const double centers[2][2] = {{0.0, 0.0}, {10.0, 0.0}};
  Matrix points(2 * per_blob, 2);
  for (size_t b = 0; b < 2; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) =
          centers[b][0] + rng.Gaussian(0, spread);
      points(b * per_blob + i, 1) =
          centers[b][1] + rng.Gaussian(0, spread);
    }
  }
  return points;
}

FcmModel Fit(const Matrix& pts, size_t c) {
  FcmOptions opts;
  opts.num_clusters = c;
  opts.restarts = 2;
  return *FitFcm(pts, opts);
}

TEST(ValidityTest, PartitionCoefficientBounds) {
  Matrix pts = MakeBlobs(30, 0.5, 1);
  FcmModel model = Fit(pts, 2);
  auto pc = PartitionCoefficient(model);
  ASSERT_TRUE(pc.ok());
  EXPECT_GT(*pc, 0.5);  // > 1/c
  EXPECT_LE(*pc, 1.0);
}

TEST(ValidityTest, CrisperDataHasHigherPc) {
  FcmModel tight = Fit(MakeBlobs(30, 0.3, 2), 2);
  FcmModel loose = Fit(MakeBlobs(30, 3.0, 2), 2);
  EXPECT_GT(*PartitionCoefficient(tight), *PartitionCoefficient(loose));
}

TEST(ValidityTest, PartitionEntropyBounds) {
  Matrix pts = MakeBlobs(30, 0.5, 3);
  FcmModel model = Fit(pts, 2);
  auto pe = PartitionEntropy(model);
  ASSERT_TRUE(pe.ok());
  EXPECT_GE(*pe, 0.0);
  EXPECT_LT(*pe, std::log(2.0));
}

TEST(ValidityTest, CrisperDataHasLowerEntropy) {
  FcmModel tight = Fit(MakeBlobs(30, 0.3, 4), 2);
  FcmModel loose = Fit(MakeBlobs(30, 3.0, 4), 2);
  EXPECT_LT(*PartitionEntropy(tight), *PartitionEntropy(loose));
}

TEST(ValidityTest, XieBeniLowerForWellSeparatedData) {
  Matrix tight_pts = MakeBlobs(30, 0.3, 5);
  Matrix loose_pts = MakeBlobs(30, 3.0, 5);
  FcmModel tight = Fit(tight_pts, 2);
  FcmModel loose = Fit(loose_pts, 2);
  auto xb_tight = XieBeniIndex(tight, tight_pts);
  auto xb_loose = XieBeniIndex(loose, loose_pts);
  ASSERT_TRUE(xb_tight.ok());
  ASSERT_TRUE(xb_loose.ok());
  EXPECT_LT(*xb_tight, *xb_loose);
}

TEST(ValidityTest, XieBeniValidations) {
  Matrix pts = MakeBlobs(10, 0.5, 6);
  FcmModel model = Fit(pts, 2);
  EXPECT_FALSE(XieBeniIndex(model, Matrix()).ok());
  FcmModel single = Fit(pts, 1);
  EXPECT_FALSE(XieBeniIndex(single, pts).ok());
}

TEST(ValidityTest, EmptyModelFails) {
  FcmModel empty;
  EXPECT_FALSE(PartitionCoefficient(empty).ok());
  EXPECT_FALSE(PartitionEntropy(empty).ok());
}

}  // namespace
}  // namespace mocemg
