#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/random.h"

namespace mocemg {
namespace {

Matrix MakeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {8.0, 0.0}, {0.0, 8.0}};
  Matrix points(3 * per_blob, 2);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = centers[b][0] + rng.Gaussian(0, 0.4);
      points(b * per_blob + i, 1) = centers[b][1] + rng.Gaussian(0, 0.4);
    }
  }
  return points;
}

TEST(KmeansTest, Validations) {
  Matrix pts = MakeBlobs(5, 1);
  KmeansOptions opts;
  opts.num_clusters = 0;
  EXPECT_FALSE(FitKmeans(pts, opts).ok());
  opts.num_clusters = 1000;
  EXPECT_FALSE(FitKmeans(pts, opts).ok());
  EXPECT_FALSE(FitKmeans(Matrix(), KmeansOptions{}).ok());
}

TEST(KmeansTest, FindsBlobCenters) {
  Matrix pts = MakeBlobs(40, 2);
  KmeansOptions opts;
  opts.num_clusters = 3;
  opts.restarts = 3;
  auto model = FitKmeans(pts, opts);
  ASSERT_TRUE(model.ok());
  const double truth[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  for (const auto& t : truth) {
    double best = 1e9;
    for (size_t i = 0; i < 3; ++i) {
      best = std::min(
          best, EuclideanDistance({t[0], t[1]}, model->centers.Row(i)));
    }
    EXPECT_LT(best, 0.8);
  }
}

TEST(KmeansTest, AssignmentsPointToNearestCenter) {
  Matrix pts = MakeBlobs(20, 3);
  KmeansOptions opts;
  opts.num_clusters = 3;
  auto model = FitKmeans(pts, opts);
  ASSERT_TRUE(model.ok());
  for (size_t k = 0; k < pts.rows(); ++k) {
    const auto p = pts.Row(k);
    double assigned =
        SquaredDistance(p, model->centers.Row(model->assignments[k]));
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_LE(assigned,
                SquaredDistance(p, model->centers.Row(i)) + 1e-9);
    }
  }
}

TEST(KmeansTest, InertiaIsSumOfAssignedDistances) {
  Matrix pts = MakeBlobs(15, 4);
  KmeansOptions opts;
  opts.num_clusters = 3;
  auto model = FitKmeans(pts, opts);
  ASSERT_TRUE(model.ok());
  double sum = 0.0;
  for (size_t k = 0; k < pts.rows(); ++k) {
    sum += SquaredDistance(pts.Row(k),
                           model->centers.Row(model->assignments[k]));
  }
  EXPECT_NEAR(model->inertia, sum, 1e-6);
}

TEST(KmeansTest, MoreRestartsNeverWorse) {
  Matrix pts = MakeBlobs(30, 5);
  KmeansOptions one;
  one.num_clusters = 3;
  one.restarts = 1;
  one.seed = 9;
  KmeansOptions many = one;
  many.restarts = 8;
  auto a = FitKmeans(pts, one);
  auto b = FitKmeans(pts, many);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->inertia, a->inertia + 1e-9);
}

TEST(KmeansTest, DeterministicForSeed) {
  Matrix pts = MakeBlobs(20, 6);
  KmeansOptions opts;
  opts.num_clusters = 3;
  opts.seed = 77;
  auto a = FitKmeans(pts, opts);
  auto b = FitKmeans(pts, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->centers.AllClose(b->centers, 0.0));
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST(KmeansTest, KEqualsNPutsCenterOnEachPoint) {
  Matrix pts{{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}};
  KmeansOptions opts;
  opts.num_clusters = 3;
  opts.restarts = 5;
  auto model = FitKmeans(pts, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->inertia, 0.0, 1e-12);
}

TEST(NearestCenterTest, PicksClosest) {
  Matrix centers{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_EQ(*NearestCenter(centers, {1.0, 0.0}), 0u);
  EXPECT_EQ(*NearestCenter(centers, {9.0, 0.0}), 1u);
  EXPECT_FALSE(NearestCenter(centers, {1.0}).ok());
  EXPECT_FALSE(NearestCenter(Matrix(), {1.0}).ok());
}

}  // namespace
}  // namespace mocemg
