#include "cluster/fcm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Matrix MakeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  Matrix points(3 * per_blob, 2);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = centers[b][0] + rng.Gaussian(0, 0.5);
      points(b * per_blob + i, 1) = centers[b][1] + rng.Gaussian(0, 0.5);
    }
  }
  return points;
}

TEST(FcmTest, Validations) {
  Matrix pts = MakeBlobs(5, 1);
  FcmOptions opts;
  opts.num_clusters = 0;
  EXPECT_FALSE(FitFcm(pts, opts).ok());
  opts.num_clusters = 100;
  EXPECT_FALSE(FitFcm(pts, opts).ok());
  opts.num_clusters = 3;
  opts.fuzziness = 1.0;
  EXPECT_FALSE(FitFcm(pts, opts).ok());
  opts.fuzziness = 2.0;
  opts.max_iterations = 0;
  EXPECT_FALSE(FitFcm(pts, opts).ok());
  EXPECT_FALSE(FitFcm(Matrix(), FcmOptions{}).ok());
}

TEST(FcmTest, MembershipRowsSumToOne) {
  Matrix pts = MakeBlobs(20, 2);
  FcmOptions opts;
  opts.num_clusters = 3;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok());
  for (size_t k = 0; k < pts.rows(); ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < 3; ++i) {
      const double u = model->memberships(k, i);
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0 + 1e-12);
      sum += u;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(FcmTest, FindsBlobCenters) {
  Matrix pts = MakeBlobs(50, 3);
  FcmOptions opts;
  opts.num_clusters = 3;
  opts.restarts = 3;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok());
  // Every true center must have a fitted center within 1.0.
  const double truth[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (const auto& t : truth) {
    double best = 1e9;
    for (size_t i = 0; i < 3; ++i) {
      best = std::min(best,
                      EuclideanDistance({t[0], t[1]},
                                        model->centers.Row(i)));
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(FcmTest, ObjectiveDecreasesMonotonically) {
  Matrix pts = MakeBlobs(30, 4);
  FcmOptions opts;
  opts.num_clusters = 3;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok());
  for (size_t i = 1; i < model->objective_history.size(); ++i) {
    EXPECT_LE(model->objective_history[i],
              model->objective_history[i - 1] + 1e-9);
  }
}

TEST(FcmTest, DeterministicForSeed) {
  Matrix pts = MakeBlobs(20, 5);
  FcmOptions opts;
  opts.num_clusters = 3;
  opts.seed = 11;
  auto a = FitFcm(pts, opts);
  auto b = FitFcm(pts, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->centers.AllClose(b->centers, 0.0));
}

TEST(FcmTest, KmeansPlusPlusInitConverges) {
  Matrix pts = MakeBlobs(30, 6);
  FcmOptions opts;
  opts.num_clusters = 3;
  opts.init = FcmInit::kKmeansPlusPlus;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->iterations, 0u);
  EXPECT_LE(model->objective_history.back(),
            model->objective_history.front());
}

TEST(FcmTest, PointsNearCenterHaveHighMembership) {
  Matrix pts = MakeBlobs(50, 7);
  FcmOptions opts;
  opts.num_clusters = 3;
  opts.restarts = 2;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok());
  // Blob points are tight (σ = 0.5) around separated centers: the
  // highest membership of each point should be decisive.
  size_t decisive = 0;
  for (size_t k = 0; k < pts.rows(); ++k) {
    double best = 0.0;
    for (size_t i = 0; i < 3; ++i) {
      best = std::max(best, model->memberships(k, i));
    }
    if (best > 0.8) ++decisive;
  }
  EXPECT_GT(decisive, pts.rows() * 9 / 10);
}

TEST(EvaluateMembershipTest, MatchesPaperEquationNine) {
  // Two centers; a point twice as far from center 1 as from center 0.
  // With m = 2: u_0 = 1 / (1 + (d0/d1)²) = 1 / (1 + 1/4) = 0.8.
  Matrix centers{{0.0, 0.0}, {3.0, 0.0}};
  auto u = EvaluateMembership(centers, {1.0, 0.0}, 2.0);
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR((*u)[0], 0.8, 1e-12);
  EXPECT_NEAR((*u)[1], 0.2, 1e-12);
}

TEST(EvaluateMembershipTest, PointOnCenterIsCrisp) {
  Matrix centers{{0.0, 0.0}, {5.0, 0.0}};
  auto u = EvaluateMembership(centers, {0.0, 0.0});
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ((*u)[0], 1.0);
  EXPECT_DOUBLE_EQ((*u)[1], 0.0);
}

TEST(EvaluateMembershipTest, EquidistantIsUniform) {
  Matrix centers{{-1.0, 0.0}, {1.0, 0.0}};
  auto u = EvaluateMembership(centers, {0.0, 0.0});
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR((*u)[0], 0.5, 1e-12);
  EXPECT_NEAR((*u)[1], 0.5, 1e-12);
}

TEST(EvaluateMembershipTest, HigherFuzzinessIsSofter) {
  Matrix centers{{0.0, 0.0}, {4.0, 0.0}};
  auto sharp = EvaluateMembership(centers, {1.0, 0.0}, 1.5);
  auto soft = EvaluateMembership(centers, {1.0, 0.0}, 4.0);
  ASSERT_TRUE(sharp.ok());
  ASSERT_TRUE(soft.ok());
  EXPECT_GT((*sharp)[0], (*soft)[0]);
}

TEST(EvaluateMembershipTest, Validations) {
  Matrix centers{{0.0, 0.0}};
  EXPECT_FALSE(EvaluateMembership(centers, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(EvaluateMembership(centers, {1.0, 2.0}, 1.0).ok());
  EXPECT_FALSE(EvaluateMembership(Matrix(), {1.0}).ok());
}

TEST(EvaluateMembershipTest, BatchRowsBitIdenticalToSingleEvaluation) {
  // The batch path runs the blocked many-to-many kernel over point
  // tiles; per-pair kernel bits do not depend on the tiling, so each
  // row must equal the one-point evaluation exactly. Dimensions cover
  // every 4-way unroll remainder.
  Rng rng(77);
  for (size_t d : {1, 2, 3, 4, 5, 7, 18, 33}) {
    Matrix centers(4, d);
    for (size_t i = 0; i < centers.rows(); ++i) {
      for (size_t j = 0; j < d; ++j) {
        centers(i, j) = rng.Gaussian(0, 5.0);
      }
    }
    Matrix points(70, d);  // > one E-step tile
    for (size_t k = 0; k < points.rows(); ++k) {
      for (size_t j = 0; j < d; ++j) points(k, j) = rng.Gaussian(0, 5.0);
    }
    for (double m : {1.7, 2.0}) {
      auto batch = EvaluateMembershipBatch(centers, points, m);
      ASSERT_TRUE(batch.ok()) << batch.status();
      for (size_t k = 0; k < points.rows(); ++k) {
        auto single = EvaluateMembership(centers, points.Row(k), m);
        ASSERT_TRUE(single.ok());
        for (size_t i = 0; i < centers.rows(); ++i) {
          EXPECT_EQ((*batch)(k, i), (*single)[i])
              << "dim " << d << " m " << m << " point " << k;
        }
      }
    }
  }
}

TEST(EvaluateMembershipTest, BatchValidations) {
  Matrix centers{{0.0, 0.0}};
  EXPECT_FALSE(EvaluateMembershipBatch(centers, Matrix(2, 3)).ok());
  EXPECT_FALSE(EvaluateMembershipBatch(centers, Matrix(2, 2), 1.0).ok());
  Matrix bad(1, 2);
  bad(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(EvaluateMembershipBatch(centers, bad).ok());
}

TEST(EvaluateMembershipTest, TrainingMembershipsConsistentWithEq9) {
  // At convergence the model's U rows equal Eq. 9 evaluated against its
  // centers — the property that makes database and query features
  // comparable.
  Matrix pts = MakeBlobs(20, 9);
  FcmOptions opts;
  opts.num_clusters = 3;
  opts.epsilon = 1e-10;
  opts.max_iterations = 500;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok());
  for (size_t k = 0; k < pts.rows(); k += 7) {
    auto u = EvaluateMembership(model->centers, pts.Row(k));
    ASSERT_TRUE(u.ok());
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR((*u)[i], model->memberships(k, i), 1e-4);
    }
  }
}

// Property sweep over cluster counts: partition constraints hold for any c.
class FcmClusterCountTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FcmClusterCountTest, PartitionConstraints) {
  const size_t c = GetParam();
  Matrix pts = MakeBlobs(20, 100 + c);
  FcmOptions opts;
  opts.num_clusters = c;
  opts.max_iterations = 100;
  auto model = FitFcm(pts, opts);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->centers.rows(), c);
  for (size_t k = 0; k < pts.rows(); ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < c; ++i) sum += model->memberships(k, i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // All centers finite and inside the data's bounding box (convexity).
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(std::isfinite(model->centers(i, j)));
      EXPECT_GE(model->centers(i, j), -3.0);
      EXPECT_LE(model->centers(i, j), 13.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterCounts, FcmClusterCountTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 40));

TEST(FcmTest, RejectsNonFinitePoints) {
  Matrix pts = MakeBlobs(5, 9);
  pts(7, 1) = std::numeric_limits<double>::quiet_NaN();
  FcmOptions opts;
  opts.num_clusters = 3;
  auto fit = FitFcm(pts, opts);
  ASSERT_FALSE(fit.ok());
  EXPECT_TRUE(fit.status().IsNumericalError()) << fit.status();

  pts(7, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(FitFcm(pts, opts).ok());
}

TEST(FcmTest, MembershipRejectsNonFinitePoint) {
  Matrix pts = MakeBlobs(5, 10);
  FcmOptions opts;
  opts.num_clusters = 3;
  auto fit = FitFcm(pts, opts);
  ASSERT_TRUE(fit.ok()) << fit.status();
  auto u = EvaluateMembership(
      fit->centers, {std::numeric_limits<double>::quiet_NaN(), 0.0},
      opts.fuzziness);
  ASSERT_FALSE(u.ok());
  EXPECT_TRUE(u.status().IsNumericalError()) << u.status();
}

}  // namespace
}  // namespace mocemg
