#include "mocap/local_transform.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

MotionSequence MakeGlobalMotion(double offset_x, double offset_y) {
  MarkerSet set({Segment::kPelvis, Segment::kClavicle, Segment::kHand});
  Matrix positions(5, 9);
  for (size_t f = 0; f < 5; ++f) {
    const double t = static_cast<double>(f);
    // Pelvis wanders.
    positions(f, 0) = offset_x + 2.0 * t;
    positions(f, 1) = offset_y - t;
    positions(f, 2) = 1000.0;
    // Clavicle fixed relative to pelvis.
    positions(f, 3) = positions(f, 0) + 10.0;
    positions(f, 4) = positions(f, 1) + 0.0;
    positions(f, 5) = positions(f, 2) + 550.0;
    // Hand moves relative to pelvis.
    positions(f, 6) = positions(f, 0) + 100.0 + 5.0 * t;
    positions(f, 7) = positions(f, 1) - 200.0;
    positions(f, 8) = positions(f, 2) + 300.0;
  }
  return *MotionSequence::Create(set, std::move(positions), 120.0);
}

TEST(LocalTransformTest, PelvisBecomesOrigin) {
  auto local = ToPelvisLocal(MakeGlobalMotion(500.0, -300.0));
  ASSERT_TRUE(local.ok());
  for (size_t f = 0; f < local->num_frames(); ++f) {
    const auto p = local->MarkerPosition(f, 0);
    EXPECT_DOUBLE_EQ(p[0], 0.0);
    EXPECT_DOUBLE_EQ(p[1], 0.0);
    EXPECT_DOUBLE_EQ(p[2], 0.0);
  }
}

TEST(LocalTransformTest, RemovesGlobalPlacement) {
  // The same relative motion captured at two different places must give
  // identical local coordinates — the paper's motivation for the
  // transform.
  auto a = ToPelvisLocal(MakeGlobalMotion(0.0, 0.0));
  auto b = ToPelvisLocal(MakeGlobalMotion(12345.0, -999.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->positions().AllClose(b->positions(), 1e-9));
}

TEST(LocalTransformTest, RelativeGeometryPreserved) {
  MotionSequence global = MakeGlobalMotion(50.0, 70.0);
  auto local = ToPelvisLocal(global);
  ASSERT_TRUE(local.ok());
  const auto hand = local->MarkerPosition(2, 2);
  const auto hand_global = global.MarkerPosition(2, 2);
  const auto pelvis_global = global.MarkerPosition(2, 0);
  EXPECT_DOUBLE_EQ(hand[0], hand_global[0] - pelvis_global[0]);
  EXPECT_DOUBLE_EQ(hand[1], hand_global[1] - pelvis_global[1]);
  EXPECT_DOUBLE_EQ(hand[2], hand_global[2] - pelvis_global[2]);
}

TEST(LocalTransformTest, FailsWithoutPelvis) {
  // MarkerSet always injects the pelvis, so build a motion whose pelvis
  // column exists; removing it is not expressible — instead verify the
  // transform succeeds for any MarkerSet-constructed motion.
  MarkerSet set({Segment::kHand});
  auto motion = MotionSequence::Create(set, Matrix(3, 6), 120.0);
  ASSERT_TRUE(motion.ok());
  EXPECT_TRUE(ToPelvisLocal(*motion).ok());
}

TEST(LocalTransformTest, HeadingNormalizationAlignsFacingDirections) {
  // Two captures identical up to a rotation about Z must match after
  // heading normalization.
  auto make_rotated = [](double heading) {
    MarkerSet set({Segment::kPelvis, Segment::kClavicle});
    Matrix positions(4, 6);
    const double c = std::cos(heading);
    const double s = std::sin(heading);
    for (size_t f = 0; f < 4; ++f) {
      positions(f, 0) = 0.0;
      positions(f, 1) = 0.0;
      positions(f, 2) = 0.0;
      // Clavicle at (100 + 3t, 40, 20) body-local, rotated by heading.
      const double x = 100.0 + 3.0 * static_cast<double>(f);
      const double y = 40.0;
      positions(f, 3) = c * x - s * y;
      positions(f, 4) = s * x + c * y;
      positions(f, 5) = 20.0;
    }
    return *MotionSequence::Create(set, std::move(positions), 120.0);
  };
  LocalTransformOptions opts;
  opts.normalize_heading = true;
  auto a = ToPelvisLocal(make_rotated(0.0), opts);
  auto b = ToPelvisLocal(make_rotated(2.1), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->positions().AllClose(b->positions(), 1e-6));
}

TEST(LocalTransformTest, WithoutHeadingNormalizationRotationsDiffer) {
  auto make_rotated = [](double heading) {
    MarkerSet set({Segment::kPelvis, Segment::kClavicle});
    Matrix positions(2, 6);
    const double c = std::cos(heading);
    const double s = std::sin(heading);
    for (size_t f = 0; f < 2; ++f) {
      positions(f, 3) = c * 100.0;
      positions(f, 4) = s * 100.0;
    }
    return *MotionSequence::Create(set, std::move(positions), 120.0);
  };
  auto a = ToPelvisLocal(make_rotated(0.0));
  auto b = ToPelvisLocal(make_rotated(1.0));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->positions().AllClose(b->positions(), 1.0));
}

}  // namespace
}  // namespace mocemg
