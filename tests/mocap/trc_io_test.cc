#include "mocap/trc_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mocemg {
namespace {

MotionSequence MakeMotion() {
  MarkerSet set({Segment::kPelvis, Segment::kHand});
  Matrix positions(3, 6);
  for (size_t f = 0; f < 3; ++f) {
    for (size_t c = 0; c < 6; ++c) {
      positions(f, c) = static_cast<double>(f * 10 + c) + 0.25;
    }
  }
  return *MotionSequence::Create(set, std::move(positions), 120.0);
}

TEST(TrcIoTest, RoundTripPreservesData) {
  MotionSequence original = MakeMotion();
  const std::string text = WriteTrc(original);
  auto parsed = ParseTrc(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_frames(), 3u);
  EXPECT_EQ(parsed->num_markers(), 2u);
  EXPECT_DOUBLE_EQ(parsed->frame_rate_hz(), 120.0);
  EXPECT_TRUE(parsed->positions().AllClose(original.positions(), 1e-4));
  EXPECT_EQ(parsed->marker_set().segments()[1], Segment::kHand);
}

TEST(TrcIoTest, RejectsNonTrc) {
  EXPECT_TRUE(ParseTrc("hello world\n").status().IsParseError());
}

TEST(TrcIoTest, RejectsUnknownMarkerName) {
  MotionSequence m = MakeMotion();
  std::string text = WriteTrc(m);
  size_t pos = text.find("hand");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "blob");
  EXPECT_FALSE(ParseTrc(text).ok());
}

TEST(TrcIoTest, RejectsFrameCountMismatch) {
  MotionSequence m = MakeMotion();
  std::string text = WriteTrc(m);
  // Drop the last data line.
  const size_t last_newline = text.find_last_of('\n', text.size() - 2);
  text.resize(last_newline + 1);
  auto parsed = ParseTrc(text);
  EXPECT_FALSE(parsed.ok());
}

TEST(TrcIoTest, MetersConvertedToMillimetres) {
  MotionSequence m = MakeMotion();
  std::string text = WriteTrc(m);
  const size_t pos = text.find("\tmm\t");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "\tm\t");
  auto parsed = ParseTrc(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_NEAR(parsed->MarkerPosition(0, 0)[0],
              m.MarkerPosition(0, 0)[0] * 1000.0, 1e-1);
}

TEST(TrcIoTest, RejectsUnsupportedUnits) {
  MotionSequence m = MakeMotion();
  std::string text = WriteTrc(m);
  const size_t pos = text.find("\tmm\t");
  text.replace(pos, 4, "\tin\t");
  EXPECT_FALSE(ParseTrc(text).ok());
}

TEST(TrcIoTest, RejectsTruncatedHeader) {
  EXPECT_FALSE(ParseTrc("PathFileType\t4\t(X/Y/Z)\tx\n").ok());
}

TEST(TrcIoTest, RejectsShortDataRow) {
  MotionSequence m = MakeMotion();
  std::string text = WriteTrc(m);
  text += "4\t0.025\t1.0\n";  // row with too few coordinates
  EXPECT_FALSE(ParseTrc(text).ok());
}

TEST(TrcIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trc_test.trc";
  MotionSequence m = MakeMotion();
  ASSERT_TRUE(WriteTrcFile(m, path).ok());
  auto loaded = ReadTrcFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->positions().AllClose(m.positions(), 1e-4));
  std::remove(path.c_str());
}

TEST(TrcIoTest, MissingFileIsError) {
  EXPECT_FALSE(ReadTrcFile("/no/such/file.trc").ok());
}

}  // namespace
}  // namespace mocemg
