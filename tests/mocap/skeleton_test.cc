#include "mocap/skeleton.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(SkeletonTest, SegmentNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(Segment::kNumSegments); ++i) {
    const Segment s = static_cast<Segment>(i);
    auto parsed = SegmentFromName(SegmentName(s));
    ASSERT_TRUE(parsed.ok()) << SegmentName(s);
    EXPECT_EQ(*parsed, s);
  }
}

TEST(SkeletonTest, SegmentFromNameCaseInsensitive) {
  EXPECT_EQ(*SegmentFromName("PELVIS"), Segment::kPelvis);
  EXPECT_EQ(*SegmentFromName("Clavicle"), Segment::kClavicle);
}

TEST(SkeletonTest, UnknownSegmentIsNotFound) {
  EXPECT_TRUE(SegmentFromName("elbow").status().IsNotFound());
}

TEST(SkeletonTest, PelvisIsRoot) {
  EXPECT_EQ(SegmentParent(Segment::kPelvis), Segment::kPelvis);
}

TEST(SkeletonTest, ArmChainReachesPelvis) {
  Segment s = Segment::kHand;
  int hops = 0;
  while (s != Segment::kPelvis && hops < 10) {
    s = SegmentParent(s);
    ++hops;
  }
  EXPECT_EQ(s, Segment::kPelvis);
  EXPECT_EQ(hops, 4);  // hand → radius → humerus → clavicle → pelvis
}

TEST(SkeletonTest, LegChainReachesPelvis) {
  Segment s = Segment::kToe;
  int hops = 0;
  while (s != Segment::kPelvis && hops < 10) {
    s = SegmentParent(s);
    ++hops;
  }
  EXPECT_EQ(s, Segment::kPelvis);
  EXPECT_EQ(hops, 4);  // toe → foot → tibia → femur → pelvis
}

TEST(SkeletonTest, LimbSegmentsMatchPaper) {
  // Hand: clavicle, humerus, radius, hand (4 attributes).
  const auto& hand = LimbSegments(Limb::kRightHand);
  ASSERT_EQ(hand.size(), 4u);
  EXPECT_EQ(hand[0], Segment::kClavicle);
  EXPECT_EQ(hand[3], Segment::kHand);
  // Leg: tibia, foot, toe (3 attributes).
  const auto& leg = LimbSegments(Limb::kRightLeg);
  ASSERT_EQ(leg.size(), 3u);
  EXPECT_EQ(leg[0], Segment::kTibia);
  EXPECT_EQ(leg[2], Segment::kToe);
}

TEST(MarkerSetTest, PelvisAutoPrepended) {
  MarkerSet set({Segment::kHand});
  ASSERT_EQ(set.num_markers(), 2u);
  EXPECT_EQ(set.segments()[0], Segment::kPelvis);
}

TEST(MarkerSetTest, PelvisNotDuplicated) {
  MarkerSet set({Segment::kPelvis, Segment::kHand});
  EXPECT_EQ(set.num_markers(), 2u);
}

TEST(MarkerSetTest, ForLimbIncludesRootPlusSegments) {
  MarkerSet hand = MarkerSet::ForLimb(Limb::kRightHand);
  EXPECT_EQ(hand.num_markers(), 5u);  // pelvis + 4
  MarkerSet leg = MarkerSet::ForLimb(Limb::kRightLeg);
  EXPECT_EQ(leg.num_markers(), 4u);  // pelvis + 3
}

TEST(MarkerSetTest, IndexOf) {
  MarkerSet set = MarkerSet::ForLimb(Limb::kRightHand);
  EXPECT_EQ(*set.IndexOf(Segment::kPelvis), 0u);
  EXPECT_EQ(*set.IndexOf(Segment::kHand), 4u);
  EXPECT_TRUE(set.IndexOf(Segment::kToe).status().IsNotFound());
}

TEST(MarkerSetTest, MarkerNames) {
  MarkerSet set({Segment::kTibia});
  auto names = set.MarkerNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "pelvis");
  EXPECT_EQ(names[1], "tibia");
}

TEST(SkeletonTest, LimbNames) {
  EXPECT_STREQ(LimbName(Limb::kRightHand), "right_hand");
  EXPECT_STREQ(LimbName(Limb::kRightLeg), "right_leg");
}

}  // namespace
}  // namespace mocemg
