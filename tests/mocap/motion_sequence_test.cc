#include "mocap/motion_sequence.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

MotionSequence MakeMotion(size_t frames = 10) {
  MarkerSet set({Segment::kPelvis, Segment::kHand});
  Matrix positions(frames, 6);
  for (size_t f = 0; f < frames; ++f) {
    positions(f, 0) = 1.0 * static_cast<double>(f);  // pelvis x
    positions(f, 3) = 10.0 + static_cast<double>(f);  // hand x
    positions(f, 4) = -5.0;                           // hand y
    positions(f, 5) = 2.0;                            // hand z
  }
  return *MotionSequence::Create(set, std::move(positions), 120.0);
}

TEST(MotionSequenceTest, CreateValidatesShape) {
  MarkerSet set({Segment::kHand});
  EXPECT_FALSE(MotionSequence::Create(set, Matrix(5, 5)).ok());
  EXPECT_TRUE(MotionSequence::Create(set, Matrix(5, 6)).ok());
  EXPECT_FALSE(MotionSequence::Create(set, Matrix(5, 6), -1.0).ok());
}

TEST(MotionSequenceTest, BasicAccessors) {
  MotionSequence m = MakeMotion(24);
  EXPECT_EQ(m.num_frames(), 24u);
  EXPECT_EQ(m.num_markers(), 2u);
  EXPECT_DOUBLE_EQ(m.frame_rate_hz(), 120.0);
  EXPECT_NEAR(m.duration_seconds(), 0.2, 1e-12);
}

TEST(MotionSequenceTest, MarkerPositionRoundTrip) {
  MotionSequence m = MakeMotion();
  m.SetMarkerPosition(3, 1, {7.0, 8.0, 9.0});
  auto p = m.MarkerPosition(3, 1);
  EXPECT_DOUBLE_EQ(p[0], 7.0);
  EXPECT_DOUBLE_EQ(p[1], 8.0);
  EXPECT_DOUBLE_EQ(p[2], 9.0);
}

TEST(MotionSequenceTest, JointMatrixIsPaperShape) {
  MotionSequence m = MakeMotion(10);
  auto jm = m.JointMatrix(Segment::kHand);
  ASSERT_TRUE(jm.ok());
  EXPECT_EQ(jm->rows(), 10u);
  EXPECT_EQ(jm->cols(), 3u);
  EXPECT_DOUBLE_EQ((*jm)(2, 0), 12.0);
  EXPECT_DOUBLE_EQ((*jm)(2, 1), -5.0);
}

TEST(MotionSequenceTest, JointMatrixUnknownSegment) {
  MotionSequence m = MakeMotion();
  EXPECT_TRUE(m.JointMatrix(Segment::kToe).status().IsNotFound());
}

TEST(MotionSequenceTest, FrameSlice) {
  MotionSequence m = MakeMotion(10);
  auto s = m.FrameSlice(2, 5);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_frames(), 3u);
  EXPECT_DOUBLE_EQ(s->MarkerPosition(0, 0)[0], 2.0);
  EXPECT_FALSE(m.FrameSlice(5, 2).ok());
  EXPECT_FALSE(m.FrameSlice(0, 11).ok());
}

TEST(MotionSequenceTest, SelectSegmentsKeepsPelvis) {
  MarkerSet set({Segment::kPelvis, Segment::kClavicle, Segment::kHand});
  Matrix positions(4, 9, 1.0);
  auto m = MotionSequence::Create(set, std::move(positions), 120.0);
  ASSERT_TRUE(m.ok());
  auto subset = m->SelectSegments({Segment::kHand});
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->num_markers(), 2u);
  EXPECT_EQ(subset->marker_set().segments()[0], Segment::kPelvis);
  EXPECT_EQ(subset->marker_set().segments()[1], Segment::kHand);
}

TEST(MotionSequenceTest, SelectMissingSegmentFails) {
  MotionSequence m = MakeMotion();
  EXPECT_FALSE(m.SelectSegments({Segment::kToe}).ok());
}

TEST(MotionSequenceTest, ValidateCatchesNonFinite) {
  MotionSequence m = MakeMotion();
  EXPECT_TRUE(m.Validate().ok());
  m.SetMarkerPosition(0, 0, {std::nan(""), 0.0, 0.0});
  EXPECT_TRUE(m.Validate().IsNumericalError());
}

TEST(MotionSequenceTest, ValidateEmptyFails) {
  MarkerSet set({Segment::kHand});
  auto m = MotionSequence::Create(set, Matrix(0, 6));
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->Validate().IsFailedPrecondition());
}

}  // namespace
}  // namespace mocemg
