/// End-to-end integration: the full paper pipeline from simulated lab
/// capture through retrieval, exercising every substrate together —
/// synth → acquisition → local transform → IAV ⊕ weighted SVD → FCM →
/// final features → database/index → classification.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/classifier.h"
#include "db/feature_index.h"
#include "db/motion_database.h"
#include "emg/acquisition.h"
#include "emg/emg_io.h"
#include "eval/protocols.h"
#include "mocap/trc_io.h"
#include "synth/dataset.h"

namespace mocemg {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 6;
    opts.seed = 777;
    data_ = new std::vector<CapturedMotion>(*GenerateDataset(opts));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static std::vector<CapturedMotion>* data_;
};

std::vector<CapturedMotion>* EndToEndTest::data_ = nullptr;

TEST_F(EndToEndTest, FullPipelineHoldOutClassification) {
  // Hold out the last trial of each class as queries.
  std::vector<LabeledMotion> train;
  std::vector<const CapturedMotion*> queries;
  for (const auto& m : *data_) {
    if (m.trial == 5) {
      queries.push_back(&m);
    } else {
      LabeledMotion lm;
      lm.mocap = m.mocap;
      lm.emg = m.emg_raw;
      lm.label = m.class_id;
      lm.label_name = m.class_name;
      train.push_back(std::move(lm));
    }
  }
  ASSERT_EQ(queries.size(), 6u);

  ClassifierOptions opts;
  opts.fcm.num_clusters = 12;
  opts.fcm.seed = 99;
  opts.features.window_ms = 100.0;
  auto clf = MotionClassifier::Train(train, opts);
  ASSERT_TRUE(clf.ok()) << clf.status();

  size_t correct = 0;
  for (const CapturedMotion* q : queries) {
    auto label = clf->Classify(q->mocap, q->emg_raw);
    ASSERT_TRUE(label.ok()) << label.status();
    if (*label == q->class_id) ++correct;
  }
  // The paper reports 10–20 % error on real data; the simulated rig
  // should classify a clear majority of 6 held-out motions correctly.
  EXPECT_GE(correct, 4u);
}

TEST_F(EndToEndTest, DatabaseAndIndexAgreeOnRetrieval) {
  ClassifierOptions opts;
  opts.fcm.num_clusters = 10;
  opts.fcm.seed = 41;
  std::vector<LabeledMotion> train;
  for (const auto& m : *data_) {
    LabeledMotion lm;
    lm.mocap = m.mocap;
    lm.emg = m.emg_raw;
    lm.label = m.class_id;
    lm.label_name = m.class_name;
    train.push_back(std::move(lm));
  }
  auto clf = MotionClassifier::Train(train, opts);
  ASSERT_TRUE(clf.ok());

  // Export final features into the retrieval database.
  MotionDatabase db;
  for (size_t i = 0; i < clf->num_motions(); ++i) {
    MotionRecord rec;
    rec.name = clf->label_names()[i] + "/" + std::to_string(i);
    rec.label = clf->labels()[i];
    rec.label_name = clf->label_names()[i];
    rec.feature = clf->final_features().Row(i);
    ASSERT_TRUE(db.Insert(std::move(rec)).ok());
  }
  auto index = FeatureIndex::Build(&db);
  ASSERT_TRUE(index.ok());

  const CapturedMotion& q = (*data_)[7];
  auto feature = clf->Featurize(q.mocap, q.emg_raw);
  ASSERT_TRUE(feature.ok());
  auto linear = db.NearestNeighbors(*feature, 5);
  auto indexed = index->NearestNeighbors(*feature, 5);
  ASSERT_TRUE(linear.ok());
  ASSERT_TRUE(indexed.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*linear)[i].record_index, (*indexed)[i].record_index);
  }
  // The query is a training motion: its own record must top the list.
  EXPECT_EQ(db.record((*linear)[0].record_index).label, q.class_id);
}

TEST_F(EndToEndTest, CaptureSurvivesSerializationRoundTrip) {
  // Lab workflow: capture → export TRC + EMG CSV → re-import →
  // identical classification result.
  const CapturedMotion& m = (*data_)[0];
  const std::string trc_path = ::testing::TempDir() + "/e2e_motion.trc";
  const std::string emg_path = ::testing::TempDir() + "/e2e_emg.csv";
  ASSERT_TRUE(WriteTrcFile(m.mocap, trc_path).ok());
  ASSERT_TRUE(WriteEmgCsvFile(m.emg_raw, emg_path).ok());

  auto mocap = ReadTrcFile(trc_path);
  auto emg = ReadEmgCsvFile(emg_path);
  ASSERT_TRUE(mocap.ok()) << mocap.status();
  ASSERT_TRUE(emg.ok()) << emg.status();

  std::vector<LabeledMotion> train;
  for (const auto& cm : *data_) {
    LabeledMotion lm;
    lm.mocap = cm.mocap;
    lm.emg = cm.emg_raw;
    lm.label = cm.class_id;
    lm.label_name = cm.class_name;
    train.push_back(std::move(lm));
  }
  ClassifierOptions opts;
  opts.fcm.num_clusters = 8;
  opts.fcm.seed = 7;
  auto clf = MotionClassifier::Train(train, opts);
  ASSERT_TRUE(clf.ok());

  auto direct = clf->Featurize(m.mocap, m.emg_raw);
  auto roundtrip = clf->Featurize(*mocap, *emg);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtrip.ok());
  ASSERT_EQ(direct->size(), roundtrip->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    // TRC stores 5 decimals of a mm; features must be stable well past
    // any classification-relevant tolerance.
    EXPECT_NEAR((*direct)[i], (*roundtrip)[i], 1e-3);
  }
  std::remove(trc_path.c_str());
  std::remove(emg_path.c_str());
}

TEST_F(EndToEndTest, AcquisitionChainMatchesPaperRates) {
  const CapturedMotion& m = (*data_)[0];
  EXPECT_DOUBLE_EQ(m.emg_raw.sample_rate_hz(), 1000.0);
  auto conditioned = ConditionRecording(m.emg_raw);
  ASSERT_TRUE(conditioned.ok());
  EXPECT_DOUBLE_EQ(conditioned->sample_rate_hz(), 120.0);
  EXPECT_DOUBLE_EQ(m.mocap.frame_rate_hz(), 120.0);
  // Frame-aligned within resampler slack.
  const double frames = static_cast<double>(m.mocap.num_frames());
  const double samples = static_cast<double>(conditioned->num_samples());
  EXPECT_NEAR(frames, samples, 6.0);
}

TEST_F(EndToEndTest, SyncJitterDegradesGracefully) {
  // With a grossly desynchronized EMG stream the pipeline still runs
  // (features use the stream overlap) — the quality cost is measured in
  // bench/abl6; here we assert no crash and a valid feature vector.
  DatasetOptions opts;
  opts.limb = Limb::kRightHand;
  opts.trials_per_class = 1;
  opts.seed = 12;
  opts.trigger.emg_latency_ms = 200.0;
  opts.trigger.jitter_ms = 30.0;
  auto data = GenerateDataset(opts);
  ASSERT_TRUE(data.ok());
  std::vector<LabeledMotion> train = ToLabeledMotions(std::move(*data));
  ClassifierOptions copts;
  copts.fcm.num_clusters = 4;
  auto clf = MotionClassifier::Train(train, copts);
  ASSERT_TRUE(clf.ok()) << clf.status();
  for (size_t i = 0; i < clf->final_features().rows(); ++i) {
    for (double v : clf->final_features().Row(i)) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

}  // namespace
}  // namespace mocemg
