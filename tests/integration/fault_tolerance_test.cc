/// Degraded-capture integration: faults planted by the synth injector
/// must be detected by StreamHealth and survived by the classifier's
/// graceful-degradation path — repaired, masked, or answered from the
/// healthy modality's subspace, never silently wrong and never a crash.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/classifier.h"
#include "core/streaming.h"
#include "emg/acquisition.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "synth/fault_injector.h"

namespace mocemg {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Occludes `marker` in evenly spaced runs of `run_len` frames covering
// ~`fraction` of the motion.
void OccludeMarker(MotionSequence* seq, size_t marker, double fraction,
                   size_t run_len) {
  const size_t frames = seq->num_frames();
  const size_t stride =
      static_cast<size_t>(static_cast<double>(run_len) / fraction);
  for (size_t start = stride / 2; start + run_len < frames;
       start += stride) {
    for (size_t f = start; f < start + run_len; ++f) {
      seq->SetMarkerPosition(f, marker, {kNaN, kNaN, kNaN});
    }
  }
}

size_t NonPelvisMarker(const MotionSequence& seq) {
  const auto& segments = seq.marker_set().segments();
  for (size_t m = 0; m < segments.size(); ++m) {
    if (segments[m] != Segment::kPelvis) return m;
  }
  return 0;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 6;
    opts.seed = 4242;
    data_ = new std::vector<CapturedMotion>(*GenerateDataset(opts));

    std::vector<LabeledMotion> train;
    for (const auto& m : *data_) {
      if (m.trial == 5) continue;  // held out as queries
      LabeledMotion lm;
      lm.mocap = m.mocap;
      lm.emg = m.emg_raw;
      lm.label = m.class_id;
      lm.label_name = m.class_name;
      train.push_back(std::move(lm));
    }
    ClassifierOptions copts;
    copts.fcm.num_clusters = 12;
    copts.fcm.seed = 99;
    copts.train_fallbacks = true;
    model_ = new MotionClassifier(*MotionClassifier::Train(train, copts));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete model_;
    data_ = nullptr;
    model_ = nullptr;
  }

  static std::vector<const CapturedMotion*> Queries() {
    std::vector<const CapturedMotion*> queries;
    for (const auto& m : *data_) {
      if (m.trial == 5) queries.push_back(&m);
    }
    return queries;
  }

  static std::vector<CapturedMotion>* data_;
  static MotionClassifier* model_;
};

std::vector<CapturedMotion>* FaultToleranceTest::data_ = nullptr;
MotionClassifier* FaultToleranceTest::model_ = nullptr;

TEST_F(FaultToleranceTest, FallbacksAreTrained) {
  ASSERT_TRUE(model_->has_fallbacks());
  const MotionClassifier* mocap_only =
      model_->submodel(ClassifierMode::kMocapOnly);
  const MotionClassifier* emg_only =
      model_->submodel(ClassifierMode::kEmgOnly);
  ASSERT_NE(mocap_only, nullptr);
  ASSERT_NE(emg_only, nullptr);
  EXPECT_FALSE(mocap_only->options().features.use_emg);
  EXPECT_FALSE(emg_only->options().features.use_mocap);
  EXPECT_EQ(mocap_only->num_motions(), model_->num_motions());
}

TEST_F(FaultToleranceTest, CleanCaptureIsNotDegraded) {
  const CapturedMotion* q = Queries().front();
  auto decision = model_->ClassifyRobust(q->mocap, q->emg_raw);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_FALSE(decision->degraded);
  EXPECT_EQ(decision->mode, ClassifierMode::kFull);
  auto plain = model_->Classify(q->mocap, q->emg_raw);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(decision->label, *plain);
}

// The acceptance scenario: one EMG channel flatlined and one marker
// occluded in 30 % of frames — every query still gets a decision,
// flagged degraded, with accuracy close to the clean baseline.
TEST_F(FaultToleranceTest, FlatlineAndOcclusionStillClassify) {
  size_t clean_correct = 0;
  size_t degraded_correct = 0;
  const auto queries = Queries();
  for (const CapturedMotion* q : queries) {
    auto clean = model_->Classify(q->mocap, q->emg_raw);
    ASSERT_TRUE(clean.ok());
    if (*clean == q->class_id) ++clean_correct;

    MotionSequence mocap = q->mocap;
    OccludeMarker(&mocap, NonPelvisMarker(mocap), 0.3, 10);
    EmgRecording emg = q->emg_raw;
    std::fill(emg.mutable_channel(0).begin(),
              emg.mutable_channel(0).end(), 0.0);

    auto decision = model_->ClassifyRobust(mocap, emg);
    ASSERT_TRUE(decision.ok()) << decision.status();
    EXPECT_TRUE(decision->degraded);
    EXPECT_EQ(decision->mode, ClassifierMode::kFull);
    ASSERT_EQ(decision->health.masked_channels.size(), 1u);
    EXPECT_EQ(decision->health.masked_channels[0], 0u);
    EXPECT_TRUE(decision->health.any_repair);
    if (decision->label == q->class_id) ++degraded_correct;
  }
  // Within 10 accuracy points of clean on the 6 held-out queries
  // (deterministic: dataset, training, and faults are all seeded).
  EXPECT_GE(degraded_correct + 1, clean_correct);
}

TEST_F(FaultToleranceTest, EmgLossFallsBackToMocapOnly) {
  const CapturedMotion* q = Queries().front();
  EmgRecording emg = q->emg_raw;
  for (size_t c : {0u, 1u, 2u}) {
    std::fill(emg.mutable_channel(c).begin(),
              emg.mutable_channel(c).end(), 0.0);
  }
  auto decision = model_->ClassifyRobust(q->mocap, emg);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_EQ(decision->mode, ClassifierMode::kMocapOnly);
  EXPECT_TRUE(decision->degraded);
  EXPECT_FALSE(decision->health.emg_usable);
  EXPECT_EQ(decision->label, q->class_id);
}

TEST_F(FaultToleranceTest, MocapLossFallsBackToEmgOnly) {
  const CapturedMotion* q = Queries().front();
  MotionSequence mocap = q->mocap;
  for (size_t m = 0; m < mocap.num_markers(); ++m) {
    if (mocap.marker_set().segments()[m] == Segment::kPelvis) continue;
    OccludeMarker(&mocap, m, 0.6, 20);
  }
  auto decision = model_->ClassifyRobust(mocap, q->emg_raw);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_EQ(decision->mode, ClassifierMode::kEmgOnly);
  EXPECT_TRUE(decision->degraded);
  EXPECT_FALSE(decision->health.mocap_usable);
}

TEST_F(FaultToleranceTest, BothModalitiesLostIsSurfaced) {
  const CapturedMotion* q = Queries().front();
  MotionSequence mocap = q->mocap;
  for (size_t m = 0; m < mocap.num_markers(); ++m) {
    if (mocap.marker_set().segments()[m] == Segment::kPelvis) continue;
    OccludeMarker(&mocap, m, 0.6, 20);
  }
  EmgRecording emg = q->emg_raw;
  for (size_t c = 0; c < emg.num_channels(); ++c) {
    std::fill(emg.mutable_channel(c).begin(),
              emg.mutable_channel(c).end(), 0.0);
  }
  auto decision = model_->ClassifyRobust(mocap, emg);
  ASSERT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FaultToleranceTest, ModalityLossWithoutFallbacksIsSurfaced) {
  std::vector<LabeledMotion> train;
  for (const auto& m : *data_) {
    if (m.trial >= 2) continue;
    LabeledMotion lm;
    lm.mocap = m.mocap;
    lm.emg = m.emg_raw;
    lm.label = m.class_id;
    lm.label_name = m.class_name;
    train.push_back(std::move(lm));
  }
  ClassifierOptions copts;
  copts.fcm.num_clusters = 8;
  auto clf = MotionClassifier::Train(train, copts);
  ASSERT_TRUE(clf.ok());
  ASSERT_FALSE(clf->has_fallbacks());

  const CapturedMotion* q = Queries().front();
  EmgRecording emg = q->emg_raw;
  for (size_t c = 0; c < emg.num_channels(); ++c) {
    std::fill(emg.mutable_channel(c).begin(),
              emg.mutable_channel(c).end(), 0.0);
  }
  auto decision = clf->ClassifyRobust(q->mocap, emg);
  ASSERT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FaultToleranceTest, HumIsDetectedAndNotchedOut) {
  const CapturedMotion* q = Queries().front();
  EmgRecording emg = q->emg_raw;
  const double fs = emg.sample_rate_hz();
  for (size_t c = 0; c < emg.num_channels(); ++c) {
    for (size_t i = 0; i < emg.num_samples(); ++i) {
      emg.mutable_channel(c)[i] +=
          4e-4 * std::sin(2.0 * M_PI * 50.0 * static_cast<double>(i) /
                          fs);
    }
  }
  auto decision = model_->ClassifyRobust(q->mocap, emg);
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_TRUE(decision->health.hum_detected);
  EXPECT_DOUBLE_EQ(decision->health.hum_freq_hz, 50.0);
  EXPECT_TRUE(decision->degraded);
  EXPECT_EQ(decision->mode, ClassifierMode::kFull);
  // With the notch applied, the decision matches the clean capture's.
  auto clean = model_->Classify(q->mocap, q->emg_raw);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(decision->label, *clean);
}

TEST_F(FaultToleranceTest, InjectedModerateSeverityStillDecides) {
  FaultInjector injector(FaultSeverityPreset(0.5, 31));
  for (const CapturedMotion* q : Queries()) {
    auto corrupted = injector.Corrupt(*q);
    ASSERT_TRUE(corrupted.ok()) << corrupted.status();
    auto decision =
        model_->ClassifyRobust(corrupted->mocap, corrupted->emg_raw);
    ASSERT_TRUE(decision.ok()) << decision.status();
  }
}

TEST_F(FaultToleranceTest, StreamingToleratesFaultsWhenAsked) {
  const CapturedMotion* q = Queries().front();
  auto conditioned = ConditionRecording(q->emg_raw);
  ASSERT_TRUE(conditioned.ok());

  StreamingOptions sopts;
  sopts.min_windows_for_decision = 2;
  sopts.tolerate_faults = true;
  auto streamer = StreamingClassifier::Create(
      model_, q->mocap.num_markers(), 0, conditioned->num_channels(),
      sopts);
  ASSERT_TRUE(streamer.ok()) << streamer.status();

  const size_t frames =
      std::min(q->mocap.num_frames(), conditioned->num_samples());
  const size_t occluded_marker = NonPelvisMarker(q->mocap);
  for (size_t f = 0; f < frames; ++f) {
    std::vector<double> markers(3 * q->mocap.num_markers());
    for (size_t j = 0; j < markers.size(); ++j) {
      markers[j] = q->mocap.positions()(f, j);
    }
    // Marker occluded over an interior stretch; channel 0 flatlined
    // throughout.
    if (f >= 40 && f < 80) {
      for (size_t k = 0; k < 3; ++k) {
        markers[3 * occluded_marker + k] = kNaN;
      }
    }
    std::vector<double> envelope(conditioned->num_channels());
    for (size_t c = 0; c < envelope.size(); ++c) {
      envelope[c] = c == 0 ? 0.0 : conditioned->channel(c)[f];
    }
    ASSERT_TRUE(streamer->PushFrame(markers, envelope).ok());
  }

  auto decision = streamer->CurrentRobustDecision();
  ASSERT_TRUE(decision.ok()) << decision.status();
  EXPECT_TRUE(decision->degraded);
  EXPECT_GT(decision->health.frames_patched, 0u);
  EXPECT_EQ(decision->health.flatlined_channels, 1u);
  EXPECT_TRUE(decision->health.mocap_degraded);  // 40-frame hold > bound
}

TEST_F(FaultToleranceTest, StrictStreamingStillRejectsBadFrames) {
  const CapturedMotion* q = Queries().front();
  StreamingOptions sopts;  // tolerate_faults off
  auto streamer = StreamingClassifier::Create(
      model_, q->mocap.num_markers(), 0, q->emg_raw.num_channels(),
      sopts);
  ASSERT_TRUE(streamer.ok());
  std::vector<double> markers(3 * q->mocap.num_markers(), 0.0);
  markers[3] = kNaN;
  const std::vector<double> envelope(q->emg_raw.num_channels(), 0.0);
  EXPECT_FALSE(streamer->PushFrame(markers, envelope).ok());
  EXPECT_FALSE(streamer->CurrentRobustDecision().ok());
}

}  // namespace
}  // namespace mocemg
