/// Bit-identity of the incremental featurization engine across thread
/// counts: each chunk owns its sliding state, seeded by an exact
/// recomputation at the chunk's first window, and chunk decomposition is
/// a pure function of (num_windows, grain) — so the thread count must
/// never show up in the bits. The suite name contains "Parallel" on
/// purpose: tools/run_sanitized_tests.sh re-runs `-R 'Parallel'` under
/// tsan with MOCEMG_THREADS=8, which makes these the data-race proof
/// for the per-chunk state too.

#include <gtest/gtest.h>

#include <vector>

#include "core/incremental_window.h"
#include "core/window_features.h"
#include "emg/acquisition.h"
#include "synth/dataset.h"

namespace mocemg {
namespace {

const std::vector<size_t> kThreadCounts = {1, 2, 8};

class IncrementalParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 2;
    opts.seed = 321;
    auto data = GenerateDataset(opts);
    ASSERT_TRUE(data.ok()) << data.status();
    const CapturedMotion& m = (*data)[0];
    mocap_ = new MotionSequence(m.mocap);
    AcquisitionOptions acq;
    acq.output_rate_hz = m.mocap.frame_rate_hz();
    auto emg = ConditionRecording(m.emg_raw, acq);
    ASSERT_TRUE(emg.ok()) << emg.status();
    emg_ = new EmgRecording(*emg);
  }
  static void TearDownTestSuite() {
    delete mocap_;
    delete emg_;
    mocap_ = nullptr;
    emg_ = nullptr;
  }

  /// Extracts at every thread count and asserts the result (and the
  /// extraction stats) are bit-identical to the default-threads run.
  static void ExpectThreadInvariant(const WindowFeatureOptions& base) {
    WindowFeatureStats ref_stats;
    auto reference =
        ExtractWindowFeatures(*mocap_, *emg_, base, &ref_stats);
    ASSERT_TRUE(reference.ok()) << reference.status();
    for (size_t threads : kThreadCounts) {
      WindowFeatureOptions opts = base;
      opts.parallel.max_threads = threads;
      WindowFeatureStats stats;
      auto features = ExtractWindowFeatures(*mocap_, *emg_, opts, &stats);
      ASSERT_TRUE(features.ok()) << features.status();
      const auto& da = reference->points.data();
      const auto& db = features->points.data();
      ASSERT_EQ(da.size(), db.size());
      for (size_t i = 0; i < da.size(); ++i) {
        // ASSERT_EQ on doubles is exact comparison — bit identity.
        ASSERT_EQ(da[i], db[i])
            << "threads=" << threads << " flat index " << i;
      }
      // The per-chunk Gram counters are part of the contract too:
      // chunking (and therefore refresh/fallback placement) must not
      // depend on the thread count.
      EXPECT_EQ(stats.gram_fast_windows, ref_stats.gram_fast_windows);
      EXPECT_EQ(stats.gram_fallback_windows,
                ref_stats.gram_fallback_windows);
      EXPECT_EQ(stats.gram_refreshes, ref_stats.gram_refreshes);
    }
  }

  static MotionSequence* mocap_;
  static EmgRecording* emg_;
};

MotionSequence* IncrementalParallelDeterminismTest::mocap_ = nullptr;
EmgRecording* IncrementalParallelDeterminismTest::emg_ = nullptr;

TEST_F(IncrementalParallelDeterminismTest, IncrementalBitIdentical) {
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_frames = 2;
  opts.featurization_mode = FeaturizationMode::kIncremental;
  ExpectThreadInvariant(opts);
}

TEST_F(IncrementalParallelDeterminismTest, AutoModeBitIdentical) {
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_ms = 25.0;
  opts.featurization_mode = FeaturizationMode::kAuto;
  ExpectThreadInvariant(opts);
}

TEST_F(IncrementalParallelDeterminismTest,
       RefreshCadenceOneBitIdentical) {
  // Refresh every window: maximal exact-reseed traffic, still invariant.
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_frames = 3;
  opts.featurization_mode = FeaturizationMode::kIncremental;
  opts.gram_refresh_interval = 1;
  ExpectThreadInvariant(opts);
}

TEST_F(IncrementalParallelDeterminismTest, ExactModeStillBitIdentical) {
  // The pre-existing guarantee must survive the engine split.
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_frames = 2;
  opts.featurization_mode = FeaturizationMode::kExact;
  ExpectThreadInvariant(opts);
}

}  // namespace
}  // namespace mocemg
