/// Bit-identity of the parallelized pipeline stages: every stage that
/// took a ParallelOptions knob in the performance pass must produce the
/// same bits at max_threads 1, 2, and 8. These run under tsan in
/// tools/run_sanitized_tests.sh, so they double as the data-race proof
/// for the shared pool.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/fcm.h"
#include "core/classifier.h"
#include "core/window_features.h"
#include "db/feature_index.h"
#include "db/motion_database.h"
#include "emg/acquisition.h"
#include "synth/dataset.h"
#include "util/random.h"

namespace mocemg {
namespace {

const std::vector<size_t> kThreadCounts = {1, 2, 8};

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 3;
    opts.seed = 2024;
    data_ = new std::vector<CapturedMotion>(*GenerateDataset(opts));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static std::vector<CapturedMotion>* data_;
};

std::vector<CapturedMotion>* ParallelDeterminismTest::data_ = nullptr;

void ExpectBitIdentical(const Matrix& a, const Matrix& b,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  const auto& da = a.data();
  const auto& db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit identity (no two
    // distinct doubles compare equal except ±0, which is fine here).
    ASSERT_EQ(da[i], db[i]) << what << " differs at flat index " << i;
  }
}

TEST_F(ParallelDeterminismTest, WindowFeaturesBitIdentical) {
  const CapturedMotion& m = (*data_)[0];
  AcquisitionOptions acq;
  acq.output_rate_hz = m.mocap.frame_rate_hz();
  auto emg = ConditionRecording(m.emg_raw, acq);
  ASSERT_TRUE(emg.ok()) << emg.status();

  WindowFeatureOptions base;
  base.window_ms = 100.0;
  auto reference = ExtractWindowFeatures(m.mocap, *emg, base);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (size_t threads : kThreadCounts) {
    WindowFeatureOptions opts = base;
    opts.parallel.max_threads = threads;
    auto features = ExtractWindowFeatures(m.mocap, *emg, opts);
    ASSERT_TRUE(features.ok()) << features.status();
    ExpectBitIdentical(reference->points, features->points,
                       "window features");
  }
}

TEST_F(ParallelDeterminismTest, FcmFitBitIdentical) {
  // A point cloud large enough that chunk partials actually differ in
  // association order if the combine were thread-dependent.
  Rng rng(7);
  Matrix points(600, 8);
  for (double& v : points.mutable_data()) v = rng.NextDouble() * 10.0;

  FcmOptions base;
  base.num_clusters = 9;
  base.restarts = 2;
  base.max_iterations = 40;
  auto reference = FitFcm(points, base);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (size_t threads : kThreadCounts) {
    FcmOptions opts = base;
    opts.parallel.max_threads = threads;
    auto model = FitFcm(points, opts);
    ASSERT_TRUE(model.ok()) << model.status();
    EXPECT_EQ(model->iterations, reference->iterations);
    ExpectBitIdentical(reference->centers, model->centers, "FCM centers");
    ExpectBitIdentical(reference->memberships, model->memberships,
                       "FCM memberships");
    ASSERT_EQ(model->objective_history.size(),
              reference->objective_history.size());
    for (size_t i = 0; i < model->objective_history.size(); ++i) {
      EXPECT_EQ(model->objective_history[i],
                reference->objective_history[i]);
    }
  }
}

TEST_F(ParallelDeterminismTest, BatchKnnMatchesSerialQueries) {
  Rng rng(99);
  MotionDatabase db;
  const size_t dim = 16;
  for (size_t i = 0; i < 400; ++i) {
    MotionRecord rec;
    rec.name = "r" + std::to_string(i);
    rec.label = i % 5;
    rec.feature.resize(dim);
    for (double& v : rec.feature) v = rng.NextDouble();
    ASSERT_TRUE(db.Insert(std::move(rec)).ok());
  }
  std::vector<std::vector<double>> queries(50,
                                           std::vector<double>(dim));
  for (auto& q : queries) {
    for (double& v : q) v = rng.NextDouble();
  }

  for (size_t threads : kThreadCounts) {
    FeatureIndexOptions opts;
    opts.parallel.max_threads = threads;
    auto index = FeatureIndex::Build(&db, opts);
    ASSERT_TRUE(index.ok()) << index.status();
    auto batch = index->BatchNearestNeighbors(queries, 5);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto single = index->NearestNeighbors(queries[q], 5);
      ASSERT_TRUE(single.ok());
      ASSERT_EQ((*batch)[q].size(), single->size());
      for (size_t i = 0; i < single->size(); ++i) {
        EXPECT_EQ((*batch)[q][i].record_index,
                  (*single)[i].record_index);
        EXPECT_EQ((*batch)[q][i].distance, (*single)[i].distance);
      }
    }
  }
}

TEST_F(ParallelDeterminismTest, TrainedModelBitIdentical) {
  std::vector<LabeledMotion> train;
  for (const auto& m : *data_) {
    LabeledMotion lm;
    lm.mocap = m.mocap;
    lm.emg = m.emg_raw;
    lm.label = m.class_id;
    lm.label_name = m.class_name;
    train.push_back(std::move(lm));
  }
  ClassifierOptions base;
  base.fcm.num_clusters = 6;
  base.fcm.seed = 5;
  auto reference = MotionClassifier::Train(train, base);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (size_t threads : kThreadCounts) {
    ClassifierOptions opts = base;
    // Exercise every parallel site in the training path at once: the
    // trial-level loops, window featurization, and the FCM fit.
    opts.parallel.max_threads = threads;
    opts.features.parallel.max_threads = threads;
    opts.fcm.parallel.max_threads = threads;
    auto clf = MotionClassifier::Train(train, opts);
    ASSERT_TRUE(clf.ok()) << clf.status();
    ExpectBitIdentical(reference->final_features(),
                       clf->final_features(), "final features");
    ExpectBitIdentical(reference->codebook().centers(),
                       clf->codebook().centers(), "codebook centers");
  }
}

TEST_F(ParallelDeterminismTest, ClassifyBatchMatchesSerialClassify) {
  std::vector<LabeledMotion> train;
  for (const auto& m : *data_) {
    LabeledMotion lm;
    lm.mocap = m.mocap;
    lm.emg = m.emg_raw;
    lm.label = m.class_id;
    lm.label_name = m.class_name;
    train.push_back(std::move(lm));
  }
  ClassifierOptions copts;
  copts.fcm.num_clusters = 6;
  auto clf = MotionClassifier::Train(train, copts);
  ASSERT_TRUE(clf.ok()) << clf.status();

  std::vector<size_t> serial;
  for (const auto& lm : train) {
    auto label = clf->Classify(lm.mocap, lm.emg);
    ASSERT_TRUE(label.ok()) << label.status();
    serial.push_back(*label);
  }
  for (size_t threads : kThreadCounts) {
    ParallelOptions par;
    par.max_threads = threads;
    auto batch = clf->ClassifyBatch(train, par);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ((*batch)[i], serial[i]) << "trial " << i;
    }
  }
}

TEST_F(ParallelDeterminismTest, ClassifyBatchSurfacesTrialErrors) {
  std::vector<LabeledMotion> train;
  for (const auto& m : *data_) {
    LabeledMotion lm;
    lm.mocap = m.mocap;
    lm.emg = m.emg_raw;
    lm.label = m.class_id;
    lm.label_name = m.class_name;
    train.push_back(std::move(lm));
  }
  ClassifierOptions copts;
  copts.fcm.num_clusters = 6;
  auto clf = MotionClassifier::Train(train, copts);
  ASSERT_TRUE(clf.ok()) << clf.status();

  std::vector<LabeledMotion> bad = train;
  bad[1].emg = EmgRecording();  // empty stream → featurization fails
  auto batch = clf->ClassifyBatch(bad);
  ASSERT_FALSE(batch.ok());
  EXPECT_NE(batch.status().message().find("batch trial 1"),
            std::string::npos)
      << batch.status();
}

}  // namespace
}  // namespace mocemg
