/// Robustness sweep over the hand-rolled parsers: every parser must turn
/// arbitrary mutations of valid inputs into clean Status errors (or a
/// successful parse) — never crash, hang, or propagate NaNs silently.
/// This is the cheap seeded stand-in for a fuzzer in environments
/// without libFuzzer.

#include <gtest/gtest.h>

#include <string>

#include "core/model_io.h"
#include "db/motion_database.h"
#include "emg/emg_io.h"
#include "eval/protocols.h"
#include "mocap/trc_io.h"
#include "synth/dataset.h"
#include "util/csv.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Applies `count` random single-character mutations (replace, delete,
// insert, truncate) to a copy of `input`.
std::string Mutate(const std::string& input, int count, Rng* rng) {
  std::string s = input;
  for (int i = 0; i < count && !s.empty(); ++i) {
    const size_t at = static_cast<size_t>(rng->NextBelow(s.size()));
    switch (rng->NextBelow(4)) {
      case 0:
        s[at] = static_cast<char>(rng->UniformInt(32, 126));
        break;
      case 1:
        s.erase(at, 1);
        break;
      case 2:
        s.insert(at, 1, static_cast<char>(rng->UniformInt(32, 126)));
        break;
      default:
        s.resize(at);
        break;
    }
  }
  return s;
}

class ParserRobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetOptions opts;
    opts.limb = Limb::kRightHand;
    opts.trials_per_class = 1;
    opts.seed = 31;
    auto data = GenerateDataset(opts);
    ASSERT_TRUE(data.ok());
    trc_text_ = new std::string(WriteTrc((*data)[0].mocap));
    emg_text_ = new std::string(WriteEmgCsv((*data)[0].emg_raw));

    ClassifierOptions copts;
    copts.fcm.num_clusters = 4;
    auto clf =
        MotionClassifier::Train(ToLabeledMotions(std::move(*data)), copts);
    ASSERT_TRUE(clf.ok());
    model_text_ = new std::string(*SerializeClassifier(*clf));
  }
  static void TearDownTestSuite() {
    delete trc_text_;
    delete emg_text_;
    delete model_text_;
    trc_text_ = emg_text_ = model_text_ = nullptr;
  }

  static std::string* trc_text_;
  static std::string* emg_text_;
  static std::string* model_text_;
};

std::string* ParserRobustnessTest::trc_text_ = nullptr;
std::string* ParserRobustnessTest::emg_text_ = nullptr;
std::string* ParserRobustnessTest::model_text_ = nullptr;

TEST_F(ParserRobustnessTest, TrcSurvivesMutations) {
  Rng rng(100);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string mutated =
        Mutate(*trc_text_, 1 + static_cast<int>(rng.NextBelow(8)), &rng);
    auto parsed = ParseTrc(mutated);  // must not crash
    if (parsed.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_EQ(parsed->positions().cols(),
                3 * parsed->num_markers());
    }
  }
}

TEST_F(ParserRobustnessTest, EmgCsvSurvivesMutations) {
  Rng rng(200);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string mutated =
        Mutate(*emg_text_, 1 + static_cast<int>(rng.NextBelow(8)), &rng);
    auto parsed = ParseEmgCsv(mutated);
    if (parsed.ok()) {
      EXPECT_GT(parsed->sample_rate_hz(), 0.0);
      EXPECT_TRUE(parsed->Validate().ok() ||
                  parsed->num_samples() == 0);
    }
  }
}

TEST_F(ParserRobustnessTest, ModelSurvivesMutations) {
  Rng rng(300);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string mutated = Mutate(
        *model_text_, 1 + static_cast<int>(rng.NextBelow(10)), &rng);
    auto parsed = DeserializeClassifier(mutated);
    if (parsed.ok()) {
      EXPECT_GT(parsed->num_motions(), 0u);
      EXPECT_GT(parsed->codebook().num_clusters(), 0u);
    }
  }
}

TEST_F(ParserRobustnessTest, DatabaseCsvSurvivesMutations) {
  MotionDatabase db;
  for (int i = 0; i < 5; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = static_cast<size_t>(i % 2);
    r.label_name = "c" + std::to_string(r.label);
    r.feature = {0.1 * i, 0.2 * i, 0.3};
    ASSERT_TRUE(db.Insert(std::move(r)).ok());
  }
  const std::string path = ::testing::TempDir() + "/robust_db.csv";
  ASSERT_TRUE(db.SaveCsv(path).ok());
  auto text = ReadFileToString(path);
  ASSERT_TRUE(text.ok());
  Rng rng(400);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string mutated =
        Mutate(*text, 1 + static_cast<int>(rng.NextBelow(6)), &rng);
    const std::string mpath = ::testing::TempDir() + "/robust_db_m.csv";
    ASSERT_TRUE(WriteStringToFile(mpath, mutated).ok());
    auto parsed = MotionDatabase::LoadCsv(mpath);
    if (parsed.ok() && !parsed->empty()) {
      EXPECT_GT(parsed->feature_dimension(), 0u);
    }
  }
  std::remove(path.c_str());
}

TEST_F(ParserRobustnessTest, TrcRejectsNonFiniteCoordinates) {
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "INFINITY"}) {
    std::string text = *trc_text_;
    // Replace the first coordinate of the last data row.
    const size_t row_start = text.rfind('\n', text.size() - 2) + 1;
    size_t field = text.find('\t', row_start);       // after Frame#
    field = text.find('\t', field + 1) + 1;          // after Time
    const size_t field_end = text.find('\t', field);
    text.replace(field, field_end - field, bad);
    auto parsed = ParseTrc(text);
    ASSERT_FALSE(parsed.ok()) << "accepted coordinate '" << bad << "'";
    EXPECT_NE(parsed.status().message().find("non-finite"),
              std::string::npos)
        << parsed.status();
  }
}

TEST_F(ParserRobustnessTest, TrcRejectsTruncatedFinalRow) {
  std::string text = *trc_text_;
  // Cut the last data row in half (mid-write truncation).
  const size_t row_start = text.rfind('\n', text.size() - 2) + 1;
  text.resize(row_start + (text.size() - row_start) / 2);
  auto parsed = ParseTrc(text);
  ASSERT_FALSE(parsed.ok());
  // Either the short row or the frame-count cross-check must fire.
  EXPECT_TRUE(
      parsed.status().message().find("truncated") != std::string::npos ||
      parsed.status().message().find("frames") != std::string::npos)
      << parsed.status();
}

TEST_F(ParserRobustnessTest, EmgCsvRejectsNonFiniteSamples) {
  for (const char* bad : {"nan", "inf", "-inf"}) {
    std::string text = *emg_text_;
    const size_t row_start = text.rfind('\n', text.size() - 2) + 1;
    const size_t field_end = text.find(',', row_start);
    text.replace(row_start, field_end - row_start, bad);
    auto parsed = ParseEmgCsv(text);
    ASSERT_FALSE(parsed.ok()) << "accepted sample '" << bad << "'";
    EXPECT_NE(parsed.status().message().find("non-finite"),
              std::string::npos)
        << parsed.status();
  }
}

TEST_F(ParserRobustnessTest, EmgCsvRejectsTruncatedFinalRow) {
  std::string text = *emg_text_;
  const size_t row_start = text.rfind('\n', text.size() - 2) + 1;
  const size_t last_comma = text.rfind(',');
  ASSERT_GT(last_comma, row_start);
  text.resize(last_comma);  // drop the final field entirely
  auto parsed = ParseEmgCsv(text);
  ASSERT_FALSE(parsed.ok());
  // The CSV layer reports the short row by line number; either its
  // width message or the parser's truncation hint must surface.
  EXPECT_TRUE(
      parsed.status().message().find("truncated") != std::string::npos ||
      parsed.status().message().find("fields, expected") !=
          std::string::npos)
      << parsed.status();
}

TEST_F(ParserRobustnessTest, EmgCsvRejectsNonFiniteSampleRate) {
  auto parsed = ParseEmgCsv("# sample_rate_hz=inf\nbiceps\n1e-5\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("finite"), std::string::npos)
      << parsed.status();
}

TEST_F(ParserRobustnessTest, HostileInputsRejectedCleanly) {
  // Deliberately nasty strings through every parser.
  const std::string nasties[] = {
      "",
      "\n\n\n",
      std::string(1 << 16, 'A'),
      "PathFileType\t4\t(X/Y/Z)\tx\nDataRate\n1e999\n",
      "# sample_rate_hz=1e999\nbiceps\n1\n",
      "MOCEMGM1\nwindow_ms\tNaN\n",
      std::string("\0\0\0\0", 4),
      "motion\t-1\tx\t1",
  };
  for (const auto& s : nasties) {
    (void)ParseTrc(s);
    (void)ParseEmgCsv(s);
    (void)DeserializeClassifier(s);
    (void)CsvTable::FromString(s);
  }
  SUCCEED();
}

}  // namespace
}  // namespace mocemg
