#include "linalg/gram_svd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace mocemg {
namespace {

/// Packs AᵀA of a w×3 matrix as [xx, xy, xz, yy, yz, zz].
void PackGram(const Matrix& a, double gram[6]) {
  for (int i = 0; i < 6; ++i) gram[i] = 0.0;
  for (size_t r = 0; r < a.rows(); ++r) {
    const double x = a(r, 0);
    const double y = a(r, 1);
    const double z = a(r, 2);
    gram[0] += x * x;
    gram[1] += x * y;
    gram[2] += x * z;
    gram[3] += y * y;
    gram[4] += y * z;
    gram[5] += z * z;
  }
}

Matrix RandomWindow(size_t w, Rng* rng, double scale = 10.0) {
  Matrix a(w, 3);
  for (double& v : a.mutable_data()) v = rng->Uniform(-scale, scale);
  return a;
}

TEST(GramSvdTest, MatchesOneSidedSvdOnRandomWindows) {
  Rng rng(42);
  for (size_t w : {4u, 12u, 24u, 60u}) {
    for (int trial = 0; trial < 20; ++trial) {
      Matrix a = RandomWindow(w, &rng);
      double gram[6];
      PackGram(a, gram);
      GramSvd3 eig;
      ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
      auto svd = ComputeSvd(a);
      ASSERT_TRUE(svd.ok()) << svd.status();
      // Random windows are generically well conditioned, so the Gram
      // path must agree to far better than the 1e-10 feature contract.
      const double s0 = svd->singular_values[0];
      for (int k = 0; k < 3; ++k) {
        EXPECT_NEAR(eig.sigma[k], svd->singular_values[k], 1e-9 * s0)
            << "w=" << w << " trial=" << trial << " k=" << k;
        for (int i = 0; i < 3; ++i) {
          EXPECT_NEAR(eig.v[3 * i + k], svd->v(i, k), 1e-8)
              << "w=" << w << " trial=" << trial << " v(" << i << ","
              << k << ")";
        }
      }
    }
  }
}

TEST(GramSvdTest, SignConventionMatchesSvd) {
  // The largest-|·| component of each returned vector must be positive
  // (the convention svd.cc documents), so both paths pick one sign.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Matrix a = RandomWindow(16, &rng);
    double gram[6];
    PackGram(a, gram);
    GramSvd3 eig;
    ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
    for (int k = 0; k < 3; ++k) {
      int best = 0;
      for (int i = 1; i < 3; ++i) {
        if (std::fabs(eig.v[3 * i + k]) >
            std::fabs(eig.v[3 * best + k])) {
          best = i;
        }
      }
      EXPECT_GT(eig.v[3 * best + k], 0.0) << "column " << k;
    }
  }
}

TEST(GramSvdTest, ReconstructsTheGramMatrix) {
  // V·diag(λ)·Vᵀ must reproduce G: eigenvalues and vectors agree as a
  // pair even when individual columns rotate within clusters.
  Rng rng(99);
  Matrix a = RandomWindow(30, &rng);
  double gram[6];
  PackGram(a, gram);
  GramSvd3 eig;
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  const int idx[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double rec = 0.0;
      for (int k = 0; k < 3; ++k) {
        rec += eig.lambda[k] * eig.v[3 * i + k] * eig.v[3 * j + k];
      }
      EXPECT_NEAR(rec, gram[idx[i][j]], 1e-10 * eig.lambda[0]);
    }
  }
}

TEST(GramSvdTest, ZeroGramGivesZeroSigmaIdentityVectors) {
  const double gram[6] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  GramSvd3 eig;
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(eig.sigma[k], 0.0);
    EXPECT_EQ(eig.lambda[k], 0.0);
  }
  for (int i = 0; i < 3; ++i) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(eig.v[3 * i + k], i == k ? 1.0 : 0.0);
    }
  }
}

TEST(GramSvdTest, TinyNegativeEigenvaluesClampSigmaNotLambda) {
  // A slightly-indefinite matrix, as rank-1 downdates can produce:
  // sigma clamps at zero, lambda keeps the signed value for guards.
  const double eps = -1e-30;
  const double gram[6] = {1.0, 0.0, 0.0, eps, 0.0, eps};
  GramSvd3 eig;
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  EXPECT_NEAR(eig.sigma[0], 1.0, 1e-14);
  EXPECT_EQ(eig.sigma[1], 0.0);
  EXPECT_EQ(eig.sigma[2], 0.0);
  EXPECT_LE(eig.lambda[1], 0.0);
  EXPECT_LE(eig.lambda[2], 0.0);
}

TEST(GramSvdTest, RankOneWindow) {
  // Every row along one direction: σ1 = σ2 = 0 and v0 is ± that
  // direction with the largest component positive.
  Matrix a(10, 3);
  for (size_t r = 0; r < 10; ++r) {
    const double t = static_cast<double>(r + 1);
    a(r, 0) = -2.0 * t;
    a(r, 1) = 1.0 * t;
    a(r, 2) = 2.0 * t;
  }
  double gram[6];
  PackGram(a, gram);
  GramSvd3 eig;
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  EXPECT_GT(eig.sigma[0], 0.0);
  // Gram-entry round-off of ε·λ0 surfaces as √ε·σ0 after the sqrt, so
  // the zero singular values are only clean to ~1e-8 relative — exactly
  // the squared-conditioning loss the guard in incremental_window.cc
  // falls back on.
  EXPECT_NEAR(eig.sigma[1], 0.0, 1e-7 * eig.sigma[0]);
  EXPECT_NEAR(eig.sigma[2], 0.0, 1e-7 * eig.sigma[0]);
  // Direction (−2, 1, 2)/3 with |−2/3| largest → flipped positive.
  EXPECT_NEAR(eig.v[0], 2.0 / 3.0, 1e-10);
  EXPECT_NEAR(eig.v[3], -1.0 / 3.0, 1e-10);
  EXPECT_NEAR(eig.v[6], -2.0 / 3.0, 1e-10);
}

TEST(GramSvdTest, TiedComponentsReportSmallSignMargin) {
  // Rows along (1, 1, 0): the sign convention's top two |components|
  // tie, so the margin must collapse (the caller's cue to fall back).
  Matrix a(8, 3);
  for (size_t r = 0; r < 8; ++r) {
    const double t = static_cast<double>(r + 1);
    a(r, 0) = t;
    a(r, 1) = t;
    a(r, 2) = 0.0;
  }
  double gram[6];
  PackGram(a, gram);
  GramSvd3 eig;
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  EXPECT_LT(eig.sign_margin, 1e-10);

  // A generic window has a clearly separated top component.
  Rng rng(5);
  Matrix b = RandomWindow(8, &rng);
  PackGram(b, gram);
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  EXPECT_GT(eig.sign_margin, 1e-6);
}

TEST(GramSvdTest, NonFiniteInputFails) {
  double gram[6] = {1.0, 0.0, 0.0, 1.0, 0.0, 1.0};
  gram[3] = std::numeric_limits<double>::quiet_NaN();
  GramSvd3 eig;
  EXPECT_FALSE(ComputeSvdFromGram3(gram, &eig).ok());
  gram[3] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ComputeSvdFromGram3(gram, &eig).ok());
}

TEST(GramSvdTest, DiagonalGramIsExact) {
  const double gram[6] = {9.0, 0.0, 0.0, 4.0, 0.0, 1.0};
  GramSvd3 eig;
  ASSERT_TRUE(ComputeSvdFromGram3(gram, &eig).ok());
  EXPECT_DOUBLE_EQ(eig.sigma[0], 3.0);
  EXPECT_DOUBLE_EQ(eig.sigma[1], 2.0);
  EXPECT_DOUBLE_EQ(eig.sigma[2], 1.0);
  EXPECT_DOUBLE_EQ(eig.v[0], 1.0);  // e₀, e₁, e₂ in order
  EXPECT_DOUBLE_EQ(eig.v[4], 1.0);
  EXPECT_DOUBLE_EQ(eig.v[8], 1.0);
}

}  // namespace
}  // namespace mocemg
