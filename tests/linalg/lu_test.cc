#include "linalg/lu.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace mocemg {
namespace {

Matrix RandomMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m(r, c) = rng.Gaussian(0.0, 1.0);
  }
  // Diagonal boost keeps the random matrix comfortably non-singular.
  for (size_t r = 0; r < n; ++r) m(r, r) += 3.0;
  return m;
}

TEST(LuTest, Validations) {
  EXPECT_FALSE(LuDecomposition::Compute(Matrix()).ok());
  EXPECT_FALSE(LuDecomposition::Compute(Matrix(2, 3)).ok());
}

TEST(LuTest, SingularMatrixRejected) {
  Matrix singular{{1, 2}, {2, 4}};
  auto lu = LuDecomposition::Compute(singular);
  EXPECT_FALSE(lu.ok());
  EXPECT_TRUE(lu.status().IsNumericalError());
}

TEST(LuTest, SolvesKnownSystem) {
  // x + 2y = 5; 3x - y = 1  →  x = 1, y = 2.
  Matrix a{{1, 2}, {3, -1}};
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve({5.0, 1.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LuTest, SolveResidualIsTiny) {
  Matrix a = RandomMatrix(8, 1);
  Rng rng(2);
  std::vector<double> b(8);
  for (double& v : b) v = rng.Gaussian(0.0, 2.0);
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve(b);
  ASSERT_TRUE(x.ok());
  for (size_t r = 0; r < 8; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 8; ++c) sum += a(r, c) * (*x)[c];
    EXPECT_NEAR(sum, b[r], 1e-9);
  }
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Matrix a = RandomMatrix(6, 3);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  auto prod = a.Multiply(*inv);
  ASSERT_TRUE(prod.ok());
  EXPECT_TRUE(prod->AllClose(Matrix::Identity(6), 1e-9));
}

TEST(LuTest, DeterminantKnownValues) {
  EXPECT_NEAR(*Determinant(Matrix{{2, 0}, {0, 3}}), 6.0, 1e-12);
  EXPECT_NEAR(*Determinant(Matrix{{1, 2}, {3, 4}}), -2.0, 1e-12);
  EXPECT_NEAR(*Determinant(Matrix::Identity(5)), 1.0, 1e-12);
  // Singular → 0 via the convenience wrapper.
  EXPECT_NEAR(*Determinant(Matrix{{1, 2}, {2, 4}}), 0.0, 1e-12);
}

TEST(LuTest, DeterminantMatchesEigenProduct) {
  // For a symmetric PD matrix, det = Π eigenvalues; cross-check against
  // a matrix whose determinant we can build directly.
  Matrix a{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  // Expansion: 4(6-1) - 1(2-0) + 0 = 18.
  EXPECT_NEAR(*Determinant(a), 18.0, 1e-12);
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  Matrix a{{0, 1}, {1, 0}};
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->Solve({2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, SolveMatrixColumns) {
  Matrix a = RandomMatrix(4, 7);
  Matrix b(4, 2);
  Rng rng(8);
  for (size_t r = 0; r < 4; ++r) {
    b(r, 0) = rng.Gaussian(0, 1);
    b(r, 1) = rng.Gaussian(0, 1);
  }
  auto lu = LuDecomposition::Compute(a);
  ASSERT_TRUE(lu.ok());
  auto x = lu->SolveMatrix(b);
  ASSERT_TRUE(x.ok());
  auto reconstructed = a.Multiply(*x);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_TRUE(reconstructed->AllClose(b, 1e-9));
}

TEST(LuTest, RhsDimensionMismatch) {
  auto lu = LuDecomposition::Compute(Matrix::Identity(3));
  ASSERT_TRUE(lu.ok());
  EXPECT_FALSE(lu->Solve({1.0}).ok());
  EXPECT_FALSE(lu->SolveMatrix(Matrix(2, 2)).ok());
}

}  // namespace
}  // namespace mocemg
