#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocemg {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm1({-1, 2, -3}), 6.0);
}

TEST(VectorOpsTest, Distances) {
  std::vector<double> a{0, 0};
  std::vector<double> b{3, 4};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(VectorOpsTest, Arithmetic) {
  std::vector<double> a{1, 2};
  std::vector<double> b{3, 5};
  EXPECT_EQ(AddVectors(a, b), (std::vector<double>{4, 7}));
  EXPECT_EQ(SubtractVectors(b, a), (std::vector<double>{2, 3}));
  EXPECT_EQ(ScaleVector(a, 3.0), (std::vector<double>{3, 6}));
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> a{1, 1};
  Axpy(2.0, {3, 4}, &a);
  EXPECT_EQ(a, (std::vector<double>{7, 9}));
}

TEST(VectorOpsTest, NormalizedUnitLength) {
  auto n = Normalized({3, 4});
  EXPECT_NEAR(Norm2(n), 1.0, 1e-15);
  // Zero vector passes through unchanged.
  auto z = Normalized({0, 0});
  EXPECT_EQ(z, (std::vector<double>{0, 0}));
}

TEST(VectorOpsTest, ConcatenateOrderMatchesPaper) {
  // EMG features first, then mocap (Section 3.3).
  auto combined = Concatenate({1, 2}, {3, 4, 5});
  EXPECT_EQ(combined, (std::vector<double>{1, 2, 3, 4, 5}));
  EXPECT_EQ(Concatenate({}, {1}).size(), 1u);
}

TEST(VectorOpsTest, Statistics) {
  std::vector<double> v{2, 4, 6};
  EXPECT_DOUBLE_EQ(*Mean(v), 4.0);
  EXPECT_DOUBLE_EQ(*SampleVariance(v), 4.0);
  EXPECT_NEAR(PopulationStddev(v), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_FALSE(SampleVariance({1}).ok());
}

TEST(VectorOpsTest, MinMaxArgMax) {
  std::vector<double> v{3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(*MinElement(v), -1.0);
  EXPECT_DOUBLE_EQ(*MaxElement(v), 7.0);
  EXPECT_EQ(*ArgMax(v), 2u);
  EXPECT_FALSE(ArgMax({}).ok());
}

TEST(VectorOpsTest, ArgMaxFirstOfTies) {
  EXPECT_EQ(*ArgMax({5, 5, 5}), 0u);
}

}  // namespace
}  // namespace mocemg
