#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/eigen_sym.h"
#include "linalg/vector_ops.h"
#include "util/random.h"

namespace mocemg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->Gaussian(0.0, 1.0);
  }
  return m;
}

TEST(SvdTest, EmptyInputFails) {
  EXPECT_FALSE(ComputeSvd(Matrix()).ok());
}

TEST(SvdTest, DiagonalMatrixSingularValues) {
  Matrix m{{3, 0}, {0, 2}};
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  ASSERT_EQ(svd->singular_values.size(), 2u);
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-12);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  Rng rng(5);
  Matrix m = RandomMatrix(10, 4, &rng);
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 1; i < svd->singular_values.size(); ++i) {
    EXPECT_GE(svd->singular_values[i - 1], svd->singular_values[i]);
  }
}

TEST(SvdTest, RightSingularVectorsOrthonormal) {
  Rng rng(6);
  Matrix m = RandomMatrix(12, 3, &rng);
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      const double dot = Dot(svd->v.Column(i), svd->v.Column(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(SvdTest, ReconstructionRoundTrip) {
  Rng rng(7);
  Matrix m = RandomMatrix(8, 3, &rng);
  SvdOptions opts;
  opts.compute_u = true;
  auto svd = ComputeSvd(m, opts);
  ASSERT_TRUE(svd.ok());
  auto rec = ReconstructFromSvd(*svd);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->AllClose(m, 1e-9));
}

TEST(SvdTest, ReconstructionRequiresU) {
  Rng rng(8);
  auto svd = ComputeSvd(RandomMatrix(4, 2, &rng));
  ASSERT_TRUE(svd.ok());
  EXPECT_FALSE(ReconstructFromSvd(*svd).ok());
}

TEST(SvdTest, FrobeniusNormEqualsSigmaNorm) {
  Rng rng(9);
  Matrix m = RandomMatrix(20, 5, &rng);
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  double sq = 0.0;
  for (double s : svd->singular_values) sq += s * s;
  EXPECT_NEAR(std::sqrt(sq), m.FrobeniusNorm(), 1e-9);
}

TEST(SvdTest, AgreesWithEigenOfGram) {
  Rng rng(10);
  Matrix m = RandomMatrix(15, 4, &rng);
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  auto gram = m.Transposed().Multiply(m);
  ASSERT_TRUE(gram.ok());
  auto eig = ComputeSymmetricEigen(*gram);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(svd->singular_values[i],
                std::sqrt(std::max(0.0, eig->eigenvalues[i])), 1e-8);
  }
}

TEST(SvdTest, RankDeficientMatrix) {
  // Two identical columns → rank 1 in a 2-column matrix.
  Matrix m(6, 2);
  for (size_t r = 0; r < 6; ++r) {
    m(r, 0) = static_cast<double>(r);
    m(r, 1) = static_cast<double>(r);
  }
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->singular_values[0], 1.0);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-9);
}

TEST(SvdTest, ZeroMatrix) {
  auto svd = ComputeSvd(Matrix(5, 3));
  ASSERT_TRUE(svd.ok());
  for (double s : svd->singular_values) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SvdTest, WideMatrixHandled) {
  Rng rng(11);
  Matrix m = RandomMatrix(2, 5, &rng);
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->singular_values.size(), 2u);
  EXPECT_EQ(svd->v.rows(), 5u);
  EXPECT_EQ(svd->v.cols(), 2u);
}

TEST(SvdTest, SignConventionIsDeterministic) {
  Rng rng(12);
  Matrix m = RandomMatrix(9, 3, &rng);
  auto a = ComputeSvd(m);
  Matrix negated = m;
  negated.Scale(-1.0);
  auto b = ComputeSvd(negated);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // A and −A share singular values and, under the sign convention, the
  // same right singular vectors.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a->singular_values[i], b->singular_values[i], 1e-10);
  }
  EXPECT_TRUE(a->v.AllClose(b->v, 1e-9));
}

TEST(SvdTest, LargestVComponentPositive) {
  Rng rng(13);
  Matrix m = RandomMatrix(10, 3, &rng);
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  for (size_t i = 0; i < 3; ++i) {
    const auto v = svd->v.Column(i);
    double best = 0.0;
    for (double x : v) {
      if (std::fabs(x) > std::fabs(best)) best = x;
    }
    EXPECT_GT(best, 0.0);
  }
}

TEST(SvdTest, SingleColumnMatrix) {
  Matrix m(4, 1);
  m(0, 0) = 3.0;
  m(1, 0) = 4.0;
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 5.0, 1e-12);
  EXPECT_NEAR(svd->v(0, 0), 1.0, 1e-12);
}

TEST(SvdTest, SingleRowMatrix) {
  Matrix m(1, 3);
  m.SetRow(0, {1.0, 2.0, 2.0});
  auto svd = ComputeSvd(m);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-12);
}

// Property sweep: round-trip and orthonormality across shapes.
class SvdPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SvdPropertyTest, RoundTripAndOrthonormality) {
  const auto [rows, cols] = GetParam();
  Rng rng(1000 + rows * 31 + cols);
  Matrix m = RandomMatrix(rows, cols, &rng);
  SvdOptions opts;
  opts.compute_u = true;
  auto svd = ComputeSvd(m, opts);
  ASSERT_TRUE(svd.ok()) << svd.status();
  auto rec = ReconstructFromSvd(*svd);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->AllClose(m, 1e-8))
      << "round-trip failed for " << rows << "x" << cols;
  // U columns orthonormal when full rank (random Gaussian: a.s.).
  const size_t k = svd->singular_values.size();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(Dot(svd->u.Column(i), svd->u.Column(j)),
                  i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::make_pair<size_t, size_t>(3, 3),
                      std::make_pair<size_t, size_t>(6, 3),
                      std::make_pair<size_t, size_t>(24, 3),
                      std::make_pair<size_t, size_t>(5, 5),
                      std::make_pair<size_t, size_t>(12, 7),
                      std::make_pair<size_t, size_t>(4, 8),
                      std::make_pair<size_t, size_t>(50, 2),
                      std::make_pair<size_t, size_t>(1, 1)));

TEST(SvdTest, RejectsNonFiniteInput) {
  Rng rng(77);
  for (double bad : {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    Matrix m = RandomMatrix(6, 3, &rng);
    m(4, 1) = bad;
    auto svd = ComputeSvd(m);
    ASSERT_FALSE(svd.ok());
    EXPECT_TRUE(svd.status().IsNumericalError()) << svd.status();
  }
}

}  // namespace
}  // namespace mocemg
