#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  auto ok = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(ok.ok());
  auto bad = Matrix::FromRows({{1, 2}, {3}});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
}

TEST(MatrixTest, RowAndColumnAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SetRowAndColumn) {
  Matrix m(2, 2);
  m.SetRow(0, {1, 2});
  m.SetColumn(1, {7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(MatrixTest, Slices) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix rows = m.RowSlice(1, 3);
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_DOUBLE_EQ(rows(0, 0), 4.0);
  Matrix cols = m.ColumnSlice(1, 2);
  EXPECT_EQ(cols.cols(), 1u);
  EXPECT_DOUBLE_EQ(cols(2, 0), 8.0);
}

TEST(MatrixTest, EmptySlices) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.RowSlice(1, 1).rows(), 0u);
  EXPECT_EQ(m.ColumnSlice(0, 0).cols(), 0u);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ((*c)(0, 0), 19.0);
  EXPECT_DOUBLE_EQ((*c)(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyShapeMismatch) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  auto c = a.Multiply(Matrix::Identity(2));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->AllClose(a));
}

TEST(MatrixTest, AddSubtract) {
  Matrix a{{1, 2}};
  Matrix b{{3, 5}};
  EXPECT_DOUBLE_EQ((*a.Add(b))(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((*b.Subtract(a))(0, 0), 2.0);
  EXPECT_FALSE(a.Add(Matrix(2, 2)).ok());
}

TEST(MatrixTest, ScaleAndNorms) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
}

TEST(MatrixTest, AllClose) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0 + 1e-13, 2.0}};
  EXPECT_TRUE(a.AllClose(b, 1e-12));
  EXPECT_FALSE(a.AllClose(b, 1e-14));
  EXPECT_FALSE(a.AllClose(Matrix(2, 1)));
}

TEST(MatrixTest, AppendRows) {
  Matrix a{{1, 2}};
  Matrix b{{3, 4}, {5, 6}};
  ASSERT_TRUE(a.AppendRows(b).ok());
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
  // Appending to empty adopts the shape.
  Matrix e;
  ASSERT_TRUE(e.AppendRows(b).ok());
  EXPECT_EQ(e.rows(), 2u);
  // Column mismatch rejected.
  Matrix c(1, 3);
  EXPECT_FALSE(a.AppendRows(c).ok());
}

TEST(MatrixTest, ToStringMentionsShape) {
  Matrix m(2, 2);
  EXPECT_NE(m.ToString().find("2x2"), std::string::npos);
}

}  // namespace
}  // namespace mocemg
