#include "linalg/eigen_sym.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/random.h"

namespace mocemg {
namespace {

TEST(EigenSymTest, RejectsNonSquare) {
  EXPECT_FALSE(ComputeSymmetricEigen(Matrix(2, 3)).ok());
}

TEST(EigenSymTest, RejectsAsymmetric) {
  Matrix m{{1, 2}, {0, 1}};
  EXPECT_FALSE(ComputeSymmetricEigen(m).ok());
}

TEST(EigenSymTest, DiagonalMatrix) {
  Matrix m{{5, 0, 0}, {0, -1, 0}, {0, 0, 2}};
  auto eig = ComputeSymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], -1.0, 1e-12);
}

TEST(EigenSymTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m{{2, 1}, {1, 2}};
  auto eig = ComputeSymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-12);
}

TEST(EigenSymTest, ReconstructsMatrix) {
  Rng rng(3);
  Matrix a(5, 5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i; j < 5; ++j) {
      a(i, j) = rng.Gaussian(0.0, 1.0);
      a(j, i) = a(i, j);
    }
  }
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // Q Λ Qᵀ == A.
  Matrix lambda(5, 5);
  for (size_t i = 0; i < 5; ++i) lambda(i, i) = eig->eigenvalues[i];
  auto ql = eig->eigenvectors.Multiply(lambda);
  ASSERT_TRUE(ql.ok());
  auto rec = ql->Multiply(eig->eigenvectors.Transposed());
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->AllClose(a, 1e-9));
}

TEST(EigenSymTest, EigenvectorsOrthonormal) {
  Rng rng(4);
  Matrix a(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) {
      a(i, j) = rng.Gaussian(0.0, 2.0);
      a(j, i) = a(i, j);
    }
  }
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(Dot(eig->eigenvectors.Column(i),
                      eig->eigenvectors.Column(j)),
                  i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(EigenSymTest, TraceEqualsEigenvalueSum) {
  Rng rng(5);
  Matrix a(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = i; j < 6; ++j) {
      a(i, j) = rng.Gaussian(0.0, 1.0);
      a(j, i) = a(i, j);
    }
  }
  auto eig = ComputeSymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  for (size_t i = 0; i < 6; ++i) trace += a(i, i);
  double sum = 0.0;
  for (double l : eig->eigenvalues) sum += l;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(CovarianceTest, NeedsTwoObservations) {
  EXPECT_FALSE(CovarianceMatrix(Matrix(1, 3)).ok());
}

TEST(CovarianceTest, KnownCovariance) {
  // Two perfectly correlated dimensions.
  Matrix obs{{0, 0}, {1, 2}, {2, 4}};
  auto cov = CovarianceMatrix(obs);
  ASSERT_TRUE(cov.ok());
  EXPECT_NEAR((*cov)(0, 0), 1.0, 1e-12);
  EXPECT_NEAR((*cov)(1, 1), 4.0, 1e-12);
  EXPECT_NEAR((*cov)(0, 1), 2.0, 1e-12);
  EXPECT_NEAR((*cov)(1, 0), 2.0, 1e-12);
}

TEST(CovarianceTest, PsdEigenvalues) {
  Rng rng(6);
  Matrix obs(30, 4);
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = 0; j < 4; ++j) obs(i, j) = rng.Gaussian(0.0, 1.0);
  }
  auto cov = CovarianceMatrix(obs);
  ASSERT_TRUE(cov.ok());
  auto eig = ComputeSymmetricEigen(*cov);
  ASSERT_TRUE(eig.ok());
  for (double l : eig->eigenvalues) EXPECT_GE(l, -1e-10);
}

}  // namespace
}  // namespace mocemg
