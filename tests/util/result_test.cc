#include "util/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "util/macros.h"

namespace mocemg {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> ok = 3;
  Result<int> err = Status::Unknown("x");
  EXPECT_EQ(std::move(ok).ValueOr(9), 3);
  EXPECT_EQ(std::move(err).ValueOr(9), 9);
}

Result<int> Doubler(Result<int> in) {
  MOCEMG_ASSIGN_OR_RETURN(int v, std::move(in));
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  Result<int> err = Doubler(Status::IOError("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsIOError());
}

Result<std::vector<double>> MakeVec(bool fail) {
  if (fail) return Status::InvalidArgument("no");
  return std::vector<double>{1.0, 2.0};
}

Result<double> SumVec(bool fail) {
  MOCEMG_ASSIGN_OR_RETURN(std::vector<double> v, MakeVec(fail));
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(ResultTest, AssignOrReturnWithDeclaration) {
  EXPECT_DOUBLE_EQ(*SumVec(false), 3.0);
  EXPECT_TRUE(SumVec(true).status().IsInvalidArgument());
}

TEST(ResultTest, CopyableResult) {
  Result<std::vector<int>> a = std::vector<int>{1, 2, 3};
  Result<std::vector<int>> b = a;
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 3u);
  EXPECT_EQ(a->size(), 3u);
}

}  // namespace
}  // namespace mocemg
