#include "util/quant_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/distance_kernels.h"
#include "util/random.h"

namespace mocemg {
namespace {

struct QuantBlock {
  size_t rows = 0;
  size_t d = 0;
  std::vector<double> block;
  std::vector<double> offsets;
  double scale = 0.0;
  std::vector<uint8_t> codes;
};

QuantBlock MakeBlock(size_t rows, size_t d, uint64_t seed,
                     double spread = 10.0) {
  QuantBlock b;
  b.rows = rows;
  b.d = d;
  b.block.resize(rows * d);
  Rng rng(seed);
  for (double& v : b.block) v = rng.Gaussian(0.0, spread);
  b.offsets.resize(d);
  b.codes.resize(rows * d);
  ComputeQuantGrid(b.block.data(), rows, d, b.offsets.data(), &b.scale);
  QuantizeRows(b.block.data(), rows, d, b.offsets.data(), b.scale,
               b.codes.data());
  return b;
}

TEST(QuantKernelsTest, GridCoversColumnRange) {
  QuantBlock b = MakeBlock(64, 7, 1);
  EXPECT_GT(b.scale, 0.0);
  double widest = 0.0;
  for (size_t j = 0; j < b.d; ++j) {
    double lo = b.block[j], hi = b.block[j];
    for (size_t r = 1; r < b.rows; ++r) {
      lo = std::min(lo, b.block[r * b.d + j]);
      hi = std::max(hi, b.block[r * b.d + j]);
    }
    EXPECT_EQ(b.offsets[j], lo);
    // The uniform step must cover every column's range.
    EXPECT_GE(b.offsets[j] + 255.0 * b.scale,
              hi - 1e-12 * std::abs(hi - lo));
    widest = std::max(widest, hi - lo);
  }
  EXPECT_NEAR(b.scale * 255.0, widest, 1e-12 * widest);
}

// Per-coordinate reconstruction error is at most half a grid step —
// the defining property of round-to-nearest on the affine grid.
TEST(QuantKernelsTest, RoundTripErrorWithinHalfStep) {
  for (size_t d : {1, 3, 4, 9, 32}) {
    QuantBlock b = MakeBlock(50, d, 2 + d);
    std::vector<double> decoded(d);
    for (size_t r = 0; r < b.rows; ++r) {
      DequantizeRow(b.codes.data() + r * d, d, b.offsets.data(), b.scale,
                    decoded.data());
      for (size_t j = 0; j < d; ++j) {
        const double err = std::abs(decoded[j] - b.block[r * d + j]);
        EXPECT_LE(err, 0.5 * b.scale * (1.0 + 1e-12))
            << "d " << d << " row " << r << " col " << j;
      }
    }
  }
}

TEST(QuantKernelsTest, ConstantColumnDecodesExactly) {
  const size_t rows = 8, d = 2;
  std::vector<double> block(rows * d);
  for (size_t r = 0; r < rows; ++r) {
    block[r * d] = 3.25;                       // constant → code 0
    block[r * d + 1] = static_cast<double>(r); // varying
  }
  std::vector<double> offsets(d);
  double scale = 0.0;
  std::vector<uint8_t> codes(rows * d);
  ComputeQuantGrid(block.data(), rows, d, offsets.data(), &scale);
  EXPECT_GT(scale, 0.0);
  QuantizeRows(block.data(), rows, d, offsets.data(), scale,
               codes.data());
  std::vector<double> decoded(d);
  for (size_t r = 0; r < rows; ++r) {
    // A constant column's codes are all 0, so the decode is the offset
    // itself — exact.
    EXPECT_EQ(codes[r * d], 0);
    DequantizeRow(codes.data() + r * d, d, offsets.data(), scale,
                  decoded.data());
    EXPECT_EQ(decoded[0], 3.25);
  }
}

TEST(QuantKernelsTest, AllConstantBlockHasScaleZero) {
  const size_t rows = 4, d = 3;
  std::vector<double> block(rows * d, -1.5);
  std::vector<double> offsets(d);
  double scale = 1.0;
  std::vector<uint8_t> codes(rows * d, 7);
  ComputeQuantGrid(block.data(), rows, d, offsets.data(), &scale);
  EXPECT_EQ(scale, 0.0);
  QuantizeRows(block.data(), rows, d, offsets.data(), scale,
               codes.data());
  for (uint8_t c : codes) EXPECT_EQ(c, 0);
}

// A query far outside the partition's bounding box clamps onto the box
// edge — codes saturate at 0/255 instead of wrapping.
TEST(QuantKernelsTest, QueryCodesClampToTheBox) {
  QuantBlock b = MakeBlock(32, 4, 3);
  std::vector<double> query(b.d);
  std::vector<uint8_t> qcodes(b.d);
  for (size_t j = 0; j < b.d; ++j) query[j] = 1e6;
  QuantizeQuery(query.data(), b.d, b.offsets.data(), b.scale,
                qcodes.data());
  for (uint8_t c : qcodes) EXPECT_EQ(c, 255);
  for (size_t j = 0; j < b.d; ++j) query[j] = -1e6;
  QuantizeQuery(query.data(), b.d, b.offsets.data(), b.scale,
                qcodes.data());
  for (uint8_t c : qcodes) EXPECT_EQ(c, 0);
}

// The integer kernel must equal the reference Σ(qc − c)² exactly, and
// scale² · D must match the decoded reconstructions' squared distance
// within the slack — that identity is what makes the coarse bound
// provable with all rounding confined to per-partition scalars.
TEST(QuantKernelsTest, IntegerSsdMatchesDecodedReconstructions) {
  for (size_t d : {1, 2, 4, 7, 16, 33}) {
    QuantBlock b = MakeBlock(40, d, 5 + d);
    Rng rng(6 + d);
    std::vector<double> query(d), q_dec(d), r_dec(d);
    std::vector<uint8_t> qcodes(d);
    std::vector<uint32_t> ssd(b.rows);
    for (int trial = 0; trial < 10; ++trial) {
      double q_sq = 0.0;
      for (size_t j = 0; j < d; ++j) {
        query[j] = rng.Gaussian(0.0, 10.0);
        q_sq += query[j] * query[j];
      }
      QuantizeQuery(query.data(), d, b.offsets.data(), b.scale,
                    qcodes.data());
      QuantizedSsdOneToMany(qcodes.data(), b.codes.data(), b.rows, d,
                            ssd.data());
      DequantizeRow(qcodes.data(), d, b.offsets.data(), b.scale,
                    q_dec.data());
      double max_norm_sq = 0.0;
      for (size_t r = 0; r < b.rows; ++r) {
        max_norm_sq = std::max(
            max_norm_sq, SquaredNorm(b.block.data() + r * d, d));
      }
      const double slack = QuantScanSlack(d, q_sq, max_norm_sq);
      for (size_t r = 0; r < b.rows; ++r) {
        // Exact integer reference.
        uint32_t want = 0;
        for (size_t j = 0; j < d; ++j) {
          const int32_t diff = int32_t(qcodes[j]) -
                               int32_t(b.codes[r * d + j]);
          want += uint32_t(diff * diff);
        }
        EXPECT_EQ(ssd[r], want) << "d " << d << " row " << r;
        // scale²·D vs the decoded reconstructions' exact distance.
        DequantizeRow(b.codes.data() + r * d, d, b.offsets.data(),
                      b.scale, r_dec.data());
        const double exact = SquaredL2(q_dec.data(), r_dec.data(), d);
        EXPECT_NEAR(b.scale * b.scale * double(ssd[r]), exact,
                    slack + 1e-9 * exact)
            << "d " << d << " trial " << trial << " row " << r;
      }
    }
  }
}

TEST(QuantKernelsTest, SlackIsPositiveAndMonotone) {
  EXPECT_GT(QuantScanSlack(1, 1.0, 1.0), 0.0);
  EXPECT_LT(QuantScanSlack(4, 1.0, 1.0), QuantScanSlack(8, 1.0, 1.0));
  EXPECT_LT(QuantScanSlack(4, 1.0, 1.0), QuantScanSlack(4, 2.0, 1.0));
  // Tiny relative to the quantities it guards at realistic scales.
  EXPECT_LT(QuantScanSlack(128, 1e4, 1e4), 1e-7);
}

}  // namespace
}  // namespace mocemg
