#include "util/quant_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/distance_kernels.h"
#include "util/random.h"

namespace mocemg {
namespace {

struct QuantBlock {
  size_t rows = 0;
  size_t d = 0;
  std::vector<double> block;
  std::vector<double> offsets;
  double scale = 0.0;
  std::vector<uint8_t> codes;
};

QuantBlock MakeBlock(size_t rows, size_t d, uint64_t seed,
                     double spread = 10.0) {
  QuantBlock b;
  b.rows = rows;
  b.d = d;
  b.block.resize(rows * d);
  Rng rng(seed);
  for (double& v : b.block) v = rng.Gaussian(0.0, spread);
  b.offsets.resize(d);
  b.codes.resize(rows * d);
  ComputeQuantGrid(b.block.data(), rows, d, b.offsets.data(), &b.scale);
  QuantizeRows(b.block.data(), rows, d, b.offsets.data(), b.scale,
               b.codes.data());
  return b;
}

TEST(QuantKernelsTest, GridCoversColumnRange) {
  QuantBlock b = MakeBlock(64, 7, 1);
  EXPECT_GT(b.scale, 0.0);
  double widest = 0.0;
  for (size_t j = 0; j < b.d; ++j) {
    double lo = b.block[j], hi = b.block[j];
    for (size_t r = 1; r < b.rows; ++r) {
      lo = std::min(lo, b.block[r * b.d + j]);
      hi = std::max(hi, b.block[r * b.d + j]);
    }
    EXPECT_EQ(b.offsets[j], lo);
    // The uniform step must cover every column's range.
    EXPECT_GE(b.offsets[j] + 255.0 * b.scale,
              hi - 1e-12 * std::abs(hi - lo));
    widest = std::max(widest, hi - lo);
  }
  EXPECT_NEAR(b.scale * 255.0, widest, 1e-12 * widest);
}

// Per-coordinate reconstruction error is at most half a grid step —
// the defining property of round-to-nearest on the affine grid.
TEST(QuantKernelsTest, RoundTripErrorWithinHalfStep) {
  for (size_t d : {1, 3, 4, 9, 32}) {
    QuantBlock b = MakeBlock(50, d, 2 + d);
    std::vector<double> decoded(d);
    for (size_t r = 0; r < b.rows; ++r) {
      DequantizeRow(b.codes.data() + r * d, d, b.offsets.data(), b.scale,
                    decoded.data());
      for (size_t j = 0; j < d; ++j) {
        const double err = std::abs(decoded[j] - b.block[r * d + j]);
        EXPECT_LE(err, 0.5 * b.scale * (1.0 + 1e-12))
            << "d " << d << " row " << r << " col " << j;
      }
    }
  }
}

TEST(QuantKernelsTest, ConstantColumnDecodesExactly) {
  const size_t rows = 8, d = 2;
  std::vector<double> block(rows * d);
  for (size_t r = 0; r < rows; ++r) {
    block[r * d] = 3.25;                       // constant → code 0
    block[r * d + 1] = static_cast<double>(r); // varying
  }
  std::vector<double> offsets(d);
  double scale = 0.0;
  std::vector<uint8_t> codes(rows * d);
  ComputeQuantGrid(block.data(), rows, d, offsets.data(), &scale);
  EXPECT_GT(scale, 0.0);
  QuantizeRows(block.data(), rows, d, offsets.data(), scale,
               codes.data());
  std::vector<double> decoded(d);
  for (size_t r = 0; r < rows; ++r) {
    // A constant column's codes are all 0, so the decode is the offset
    // itself — exact.
    EXPECT_EQ(codes[r * d], 0);
    DequantizeRow(codes.data() + r * d, d, offsets.data(), scale,
                  decoded.data());
    EXPECT_EQ(decoded[0], 3.25);
  }
}

TEST(QuantKernelsTest, AllConstantBlockHasScaleZero) {
  const size_t rows = 4, d = 3;
  std::vector<double> block(rows * d, -1.5);
  std::vector<double> offsets(d);
  double scale = 1.0;
  std::vector<uint8_t> codes(rows * d, 7);
  ComputeQuantGrid(block.data(), rows, d, offsets.data(), &scale);
  EXPECT_EQ(scale, 0.0);
  QuantizeRows(block.data(), rows, d, offsets.data(), scale,
               codes.data());
  for (uint8_t c : codes) EXPECT_EQ(c, 0);
}

// A query far outside the partition's bounding box clamps onto the box
// edge — codes saturate at 0/255 instead of wrapping.
TEST(QuantKernelsTest, QueryCodesClampToTheBox) {
  QuantBlock b = MakeBlock(32, 4, 3);
  std::vector<double> query(b.d);
  std::vector<uint8_t> qcodes(b.d);
  for (size_t j = 0; j < b.d; ++j) query[j] = 1e6;
  QuantizeQuery(query.data(), b.d, b.offsets.data(), b.scale,
                qcodes.data());
  for (uint8_t c : qcodes) EXPECT_EQ(c, 255);
  for (size_t j = 0; j < b.d; ++j) query[j] = -1e6;
  QuantizeQuery(query.data(), b.d, b.offsets.data(), b.scale,
                qcodes.data());
  for (uint8_t c : qcodes) EXPECT_EQ(c, 0);
}

// The integer kernel must equal the reference Σ(qc − c)² exactly, and
// scale² · D must match the decoded reconstructions' squared distance
// within the slack — that identity is what makes the coarse bound
// provable with all rounding confined to per-partition scalars.
TEST(QuantKernelsTest, IntegerSsdMatchesDecodedReconstructions) {
  for (size_t d : {1, 2, 4, 7, 16, 33}) {
    QuantBlock b = MakeBlock(40, d, 5 + d);
    Rng rng(6 + d);
    std::vector<double> query(d), q_dec(d), r_dec(d);
    std::vector<uint8_t> qcodes(d);
    std::vector<uint32_t> ssd(b.rows);
    for (int trial = 0; trial < 10; ++trial) {
      double q_sq = 0.0;
      for (size_t j = 0; j < d; ++j) {
        query[j] = rng.Gaussian(0.0, 10.0);
        q_sq += query[j] * query[j];
      }
      QuantizeQuery(query.data(), d, b.offsets.data(), b.scale,
                    qcodes.data());
      QuantizedSsdOneToMany(qcodes.data(), b.codes.data(), b.rows, d,
                            ssd.data());
      DequantizeRow(qcodes.data(), d, b.offsets.data(), b.scale,
                    q_dec.data());
      double max_norm_sq = 0.0;
      for (size_t r = 0; r < b.rows; ++r) {
        max_norm_sq = std::max(
            max_norm_sq, SquaredNorm(b.block.data() + r * d, d));
      }
      const double slack = QuantScanSlack(d, q_sq, max_norm_sq);
      for (size_t r = 0; r < b.rows; ++r) {
        // Exact integer reference.
        uint32_t want = 0;
        for (size_t j = 0; j < d; ++j) {
          const int32_t diff = int32_t(qcodes[j]) -
                               int32_t(b.codes[r * d + j]);
          want += uint32_t(diff * diff);
        }
        EXPECT_EQ(ssd[r], want) << "d " << d << " row " << r;
        // scale²·D vs the decoded reconstructions' exact distance.
        DequantizeRow(b.codes.data() + r * d, d, b.offsets.data(),
                      b.scale, r_dec.data());
        const double exact = SquaredL2(q_dec.data(), r_dec.data(), d);
        EXPECT_NEAR(b.scale * b.scale * double(ssd[r]), exact,
                    slack + 1e-9 * exact)
            << "d " << d << " trial " << trial << " row " << r;
      }
    }
  }
}

// The 4-bit grid obeys the same cover/round-to-nearest properties as
// the 8-bit grid, with 15 levels instead of 255.
TEST(QuantKernelsTest, FourBitGridCoversAndRoundsWithinHalfStep) {
  for (size_t d : {1, 3, 4, 9, 32}) {
    const size_t rows = 50;
    std::vector<double> block(rows * d);
    Rng rng(40 + d);
    for (double& v : block) v = rng.Gaussian(0.0, 10.0);
    std::vector<double> offsets(d);
    double scale = 0.0;
    std::vector<uint8_t> codes(rows * d);
    ComputeQuantGrid(block.data(), rows, d, offsets.data(), &scale,
                     /*levels=*/15);
    EXPECT_GT(scale, 0.0);
    QuantizeRows(block.data(), rows, d, offsets.data(), scale, codes.data(),
                 /*levels=*/15);
    std::vector<double> decoded(d);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < d; ++j) {
        EXPECT_LE(codes[r * d + j], 15) << "d " << d << " row " << r;
      }
      DequantizeRow(codes.data() + r * d, d, offsets.data(), scale,
                    decoded.data());
      for (size_t j = 0; j < d; ++j) {
        EXPECT_LE(std::abs(decoded[j] - block[r * d + j]),
                  0.5 * scale * (1.0 + 1e-12))
            << "d " << d << " row " << r << " col " << j;
      }
    }
  }
}

// Nibble packing is lossless and lays dims out exactly as documented:
// dim 2b in the low nibble of byte b, dim 2b+1 in the high nibble,
// odd-d pad nibble 0.
TEST(QuantKernelsTest, NibblePackRoundTripsAndPadsWithZero) {
  Rng rng(44);
  for (size_t d = 1; d <= 19; ++d) {
    const size_t rows = 6;
    const size_t stride = PackedNibbleStride(d);
    EXPECT_EQ(stride, (d + 1) / 2);
    std::vector<uint8_t> codes(rows * d);
    for (uint8_t& c : codes) {
      c = static_cast<uint8_t>(rng.NextBelow(16));
    }
    std::vector<uint8_t> packed(rows * stride);
    PackNibbleRows(codes.data(), rows, d, packed.data());
    std::vector<uint8_t> unpacked(d);
    for (size_t r = 0; r < rows; ++r) {
      const uint8_t* row = packed.data() + r * stride;
      for (size_t j = 0; j < d; ++j) {
        const uint8_t nib =
            (j % 2 == 0) ? (row[j / 2] & 0x0f) : (row[j / 2] >> 4);
        EXPECT_EQ(nib, codes[r * d + j])
            << "d " << d << " row " << r << " dim " << j;
      }
      if (d % 2 == 1) {
        EXPECT_EQ(row[stride - 1] >> 4, 0) << "d " << d;
      }
      UnpackNibbleRow(row, d, unpacked.data());
      for (size_t j = 0; j < d; ++j) {
        EXPECT_EQ(unpacked[j], codes[r * d + j]);
      }
    }
  }
}

// The packed scan equals the unpacked integer sum exactly — the 4-bit
// tier's correctness reduces to the 8-bit argument once this holds.
TEST(QuantKernelsTest, PackedSsdMatchesUnpackedReference) {
  Rng rng(45);
  for (size_t d : {1, 2, 3, 5, 8, 16, 31, 33, 67}) {
    const size_t rows = 23;
    const size_t stride = PackedNibbleStride(d);
    std::vector<uint8_t> qn(d), rn(rows * d);
    for (uint8_t& c : qn) c = static_cast<uint8_t>(rng.NextBelow(16));
    for (uint8_t& c : rn) c = static_cast<uint8_t>(rng.NextBelow(16));
    std::vector<uint8_t> qp(stride), rp(rows * stride);
    PackNibbleRows(qn.data(), 1, d, qp.data());
    PackNibbleRows(rn.data(), rows, d, rp.data());
    std::vector<uint32_t> got(rows);
    Quantized4SsdOneToMany(qp.data(), rp.data(), rows, d, got.data());
    for (size_t r = 0; r < rows; ++r) {
      uint32_t want = 0;
      for (size_t j = 0; j < d; ++j) {
        const int32_t diff = int32_t(qn[j]) - int32_t(rn[r * d + j]);
        want += uint32_t(diff * diff);
      }
      EXPECT_EQ(got[r], want) << "d " << d << " row " << r;
    }
  }
}

// The blocked many-to-many scan is bit-identical to running the
// one-to-many scan per query, including when out_stride > rows.
TEST(QuantKernelsTest, ManyToManyMatchesPerQueryScan) {
  Rng rng(46);
  for (size_t d : {1, 4, 7, 33}) {
    const size_t nq = 5;
    const size_t rows = 300;  // > the kernel's row tile
    const size_t out_stride = rows + 3;
    std::vector<uint8_t> qcodes(nq * d), codes(rows * d);
    for (uint8_t& c : qcodes) c = static_cast<uint8_t>(rng.NextBelow(256));
    for (uint8_t& c : codes) c = static_cast<uint8_t>(rng.NextBelow(256));
    std::vector<uint32_t> blocked(nq * out_stride, 0xdeadbeef);
    QuantizedSsdManyToMany(qcodes.data(), nq, codes.data(), rows, d,
                           blocked.data(), out_stride);
    std::vector<uint32_t> single(rows);
    for (size_t q = 0; q < nq; ++q) {
      QuantizedSsdOneToMany(qcodes.data() + q * d, codes.data(), rows, d,
                            single.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(blocked[q * out_stride + r], single[r])
            << "d " << d << " query " << q << " row " << r;
      }
    }
  }
}

// Certified prune-bound property at both widths: the coarse lower
// bound scale·√ssd − ‖q − q̃‖ − err_r (all scalars slack-inflated the
// way FeatureIndex computes it) never exceeds the true distance, so
// pruning on it can never discard a true neighbor.
TEST(QuantKernelsTest, CoarseLowerBoundNeverExceedsTrueDistance) {
  Rng rng(47);
  for (uint32_t levels : {255u, 15u}) {
    for (size_t d : {2, 5, 16, 33}) {
      const size_t rows = 60;
      std::vector<double> block(rows * d);
      for (double& v : block) v = rng.Gaussian(0.0, 8.0);
      std::vector<double> offsets(d);
      double scale = 0.0;
      std::vector<uint8_t> codes(rows * d);
      ComputeQuantGrid(block.data(), rows, d, offsets.data(), &scale,
                       levels);
      QuantizeRows(block.data(), rows, d, offsets.data(), scale,
                   codes.data(), levels);
      // Per-row measured reconstruction errors (as the index stores).
      std::vector<double> row_err(rows), decoded(d);
      double max_norm_sq = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        DequantizeRow(codes.data() + r * d, d, offsets.data(), scale,
                      decoded.data());
        row_err[r] = std::sqrt(
            SquaredL2(decoded.data(), block.data() + r * d, d));
        max_norm_sq = std::max(max_norm_sq,
                               SquaredNorm(block.data() + r * d, d));
      }
      std::vector<uint8_t> qcodes(d);
      std::vector<double> query(d), q_dec(d);
      std::vector<uint32_t> ssd(rows);
      for (int trial = 0; trial < 20; ++trial) {
        // Mix of in-box queries and far-outside ones (clamped codes).
        const double spread = (trial % 4 == 3) ? 100.0 : 8.0;
        for (double& v : query) v = rng.Gaussian(0.0, spread);
        QuantizeQuery(query.data(), d, offsets.data(), scale,
                      qcodes.data(), levels);
        QuantizedSsdOneToMany(qcodes.data(), codes.data(), rows, d,
                              ssd.data());
        DequantizeRow(qcodes.data(), d, offsets.data(), scale,
                      q_dec.data());
        const double q_sq = SquaredNorm(query.data(), d);
        const double slack = QuantScanSlack(d, q_sq, max_norm_sq);
        const double q_res =
            std::sqrt(SquaredL2(query.data(), q_dec.data(), d) + slack);
        for (size_t r = 0; r < rows; ++r) {
          const double coarse =
              scale * std::sqrt(double(ssd[r])) - q_res -
              (row_err[r] + std::sqrt(slack));
          const double truth = std::sqrt(
              SquaredL2(query.data(), block.data() + r * d, d));
          EXPECT_LE(coarse, truth + 1e-12)
              << "levels " << levels << " d " << d << " trial " << trial
              << " row " << r;
        }
      }
    }
  }
}

TEST(QuantKernelsTest, SlackIsPositiveAndMonotone) {
  EXPECT_GT(QuantScanSlack(1, 1.0, 1.0), 0.0);
  EXPECT_LT(QuantScanSlack(4, 1.0, 1.0), QuantScanSlack(8, 1.0, 1.0));
  EXPECT_LT(QuantScanSlack(4, 1.0, 1.0), QuantScanSlack(4, 2.0, 1.0));
  // Tiny relative to the quantities it guards at realistic scales.
  EXPECT_LT(QuantScanSlack(128, 1e4, 1e4), 1e-7);
}

}  // namespace
}  // namespace mocemg
