#include "util/string_util.h"

#include <gtest/gtest.h>

namespace mocemg {
namespace {

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleToken) {
  auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("PathFileType\t4", "PathFileType"));
  EXPECT_FALSE(StartsWith("Path", "PathFileType"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Pelvis", "pelvis"));
  EXPECT_TRUE(EqualsIgnoreCase("MM", "mm"));
  EXPECT_FALSE(EqualsIgnoreCase("m", "mm"));
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -1e-5 "), -1e-5);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(StringUtilTest, ParseIntValid) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
}

TEST(StringUtilTest, ParseIntRejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("3.5").ok());
  EXPECT_FALSE(ParseInt("12abc").ok());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace mocemg
