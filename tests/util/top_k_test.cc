#include "util/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace mocemg {
namespace {

// Reference: sort all entries by (distance, index) and keep the first k.
std::vector<TopKEntry> SortedReference(std::vector<TopKEntry> entries,
                                       size_t k) {
  std::sort(entries.begin(), entries.end());
  if (entries.size() > k) entries.resize(k);
  return entries;
}

TEST(BoundedTopKTest, EmptyAndSingle) {
  BoundedTopK top(3);
  EXPECT_EQ(top.size(), 0u);
  EXPECT_FALSE(top.full());
  std::vector<TopKEntry> out;
  top.ExtractSorted(&out);
  EXPECT_TRUE(out.empty());

  top.Reset(1);
  top.Push(2.0, 7);
  EXPECT_TRUE(top.full());
  EXPECT_EQ(top.worst(), 2.0);
  top.Push(1.0, 9);
  top.ExtractSorted(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], TopKEntry(1.0, 9));
}

TEST(BoundedTopKTest, WorstIsInfinityUntilFull) {
  BoundedTopK top(2);
  EXPECT_GT(top.worst(), 1e300);
  top.Push(5.0, 0);
  EXPECT_GT(top.worst(), 1e300);
  top.Push(3.0, 1);
  EXPECT_EQ(top.worst(), 5.0);
}

// The heap must agree with the sorted reference exactly — same
// distances, same indices, same order — for every (n, k) shape,
// including k > n and heavy ties.
TEST(BoundedTopKTest, MatchesSortedReferenceRandomized) {
  Rng rng(1234);
  BoundedTopK top;
  std::vector<TopKEntry> got;
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.Uniform(0.0, 60.0));
    const size_t k = 1 + static_cast<size_t>(rng.Uniform(0.0, 12.0));
    std::vector<TopKEntry> entries;
    entries.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Coarse quantization forces many exact distance ties, so the
      // (distance, index) tie-break is exercised constantly.
      const double d =
          std::floor(rng.Uniform(0.0, 8.0)) / 4.0;
      entries.emplace_back(d, i);
    }
    top.Reset(k);
    for (const TopKEntry& e : entries) top.Push(e.first, e.second);
    top.ExtractSorted(&got);
    const std::vector<TopKEntry> want = SortedReference(entries, k);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first)
          << "trial " << trial << " rank " << i;
      EXPECT_EQ(got[i].second, want[i].second)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(BoundedTopKTest, TiesResolveTowardSmallerIndex) {
  BoundedTopK top(2);
  top.Push(1.0, 5);
  top.Push(1.0, 2);
  top.Push(1.0, 9);  // tie with the current worst → rejected (index 9 > 5)
  std::vector<TopKEntry> out;
  top.ExtractSorted(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], TopKEntry(1.0, 2));
  EXPECT_EQ(out[1], TopKEntry(1.0, 5));

  // Same distances pushed in the opposite order select the same set.
  top.Reset(2);
  top.Push(1.0, 9);
  top.Push(1.0, 2);
  top.Push(1.0, 5);
  top.ExtractSorted(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], TopKEntry(1.0, 2));
  EXPECT_EQ(out[1], TopKEntry(1.0, 5));
}

TEST(BoundedTopKTest, ResetReusesStorage) {
  BoundedTopK top(4);
  for (size_t i = 0; i < 10; ++i) top.Push(double(10 - i), i);
  top.Reset(2);
  EXPECT_EQ(top.size(), 0u);
  top.Push(3.0, 0);
  top.Push(1.0, 1);
  std::vector<TopKEntry> out;
  top.ExtractSorted(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], TopKEntry(1.0, 1));
}

}  // namespace
}  // namespace mocemg
