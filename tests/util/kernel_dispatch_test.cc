#include "util/kernel_dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/quant_kernels.h"
#include "util/random.h"
#include "util/status.h"

namespace mocemg {
namespace {

// Every dim 1..67 covers each unroll remainder of every backend's
// vector width (2, 4, 8 doubles; 16/32/64 bytes) many times over, plus
// the sub-width edge where the main loop never runs.
constexpr size_t kMaxDim = 67;

// Restores the auto-detected backend when a test that forces one exits.
struct ScopedAutoBackend {
  ~ScopedAutoBackend() {
    EXPECT_TRUE(SetKernelBackend(KernelBackend::kAuto).ok());
  }
};

bool BitsEqual(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

bool BitsEqualF(float a, float b) {
  uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

bool Contains(const std::vector<KernelBackend>& v, KernelBackend b) {
  return std::find(v.begin(), v.end(), b) != v.end();
}

std::vector<double> RandomVector(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng->Gaussian(0.0, 3.0);
  return v;
}

std::vector<uint8_t> RandomCodes(size_t n, uint32_t levels, Rng* rng) {
  std::vector<uint8_t> v(n);
  for (uint8_t& x : v) {
    x = static_cast<uint8_t>(rng->NextBelow(levels + 1));
  }
  return v;
}

TEST(KernelDispatchTest, NamesParseRoundTrip) {
  for (KernelBackend b :
       {KernelBackend::kAuto, KernelBackend::kScalar, KernelBackend::kAvx2,
        KernelBackend::kAvx512, KernelBackend::kNeon}) {
    auto parsed = ParseKernelBackend(KernelBackendName(b));
    ASSERT_TRUE(parsed.ok()) << KernelBackendName(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(ParseKernelBackend("").ok());
  EXPECT_FALSE(ParseKernelBackend("sse9").ok());
  EXPECT_FALSE(ParseKernelBackend("AVX2 ").ok());
}

TEST(KernelDispatchTest, DispatchInfoInvariants) {
  // Scalar is always compiled and always usable, detection never
  // resolves to auto, and the active backend is one the CPU can run.
  const std::vector<KernelBackend> compiled = CompiledKernelBackends();
  const std::vector<KernelBackend> usable = UsableKernelBackends();
  EXPECT_TRUE(Contains(compiled, KernelBackend::kScalar));
  EXPECT_TRUE(Contains(usable, KernelBackend::kScalar));
  for (KernelBackend b : usable) EXPECT_TRUE(Contains(compiled, b));
  EXPECT_FALSE(Contains(compiled, KernelBackend::kAuto));
  const KernelBackend active = ActiveKernelBackend();
  EXPECT_NE(active, KernelBackend::kAuto);
  EXPECT_TRUE(Contains(usable, active));

  const KernelDispatchInfo info = GetKernelDispatchInfo();
  EXPECT_EQ(info.active, KernelBackendName(active));
  EXPECT_NE(info.compiled.find("scalar"), std::string::npos);
  EXPECT_NE(info.usable.find("scalar"), std::string::npos);
  EXPECT_FALSE(info.cpu_features.empty());
}

TEST(KernelDispatchTest, OpsTableLookup) {
  // Every usable backend exposes a fully populated table; kAuto aliases
  // the active one; backends the CPU/build cannot run return nullptr.
  const KernelOps* auto_ops = GetKernelOps(KernelBackend::kAuto);
  ASSERT_NE(auto_ops, nullptr);
  EXPECT_STREQ(auto_ops->name, KernelBackendName(ActiveKernelBackend()));
  const std::vector<KernelBackend> usable = UsableKernelBackends();
  for (KernelBackend b :
       {KernelBackend::kScalar, KernelBackend::kAvx2, KernelBackend::kAvx512,
        KernelBackend::kNeon}) {
    const KernelOps* ops = GetKernelOps(b);
    if (!Contains(usable, b)) {
      EXPECT_EQ(ops, nullptr) << KernelBackendName(b);
      continue;
    }
    ASSERT_NE(ops, nullptr) << KernelBackendName(b);
    EXPECT_STREQ(ops->name, KernelBackendName(b));
    EXPECT_NE(ops->squared_l2_pair, nullptr);
    EXPECT_NE(ops->dot_pair, nullptr);
    EXPECT_NE(ops->l2_one_to_many, nullptr);
    EXPECT_NE(ops->l2dot_one_to_many, nullptr);
    EXPECT_NE(ops->row_norms, nullptr);
    EXPECT_NE(ops->ssd8_one_to_many, nullptr);
    EXPECT_NE(ops->ssd4_one_to_many, nullptr);
    EXPECT_NE(ops->l2_f32_one_to_many, nullptr);
    EXPECT_NE(ops->l2dot_f32_one_to_many, nullptr);
    EXPECT_NE(ops->row_norms_f32, nullptr);
    EXPECT_NE(ops->l2dot_f32d_one_to_many, nullptr);
    EXPECT_NE(ops->l2dot_many_to_many, nullptr);
    EXPECT_NE(ops->l2dot_f32_many_to_many, nullptr);
    EXPECT_NE(ops->l2_gather, nullptr);
    EXPECT_NE(ops->ssd8_many_to_many, nullptr);
    EXPECT_NE(ops->ssd4_many_to_many, nullptr);
  }
}

TEST(KernelDispatchTest, ForcingUnusableBackendFailsCleanly) {
  ScopedAutoBackend restore;
  const KernelBackend before = ActiveKernelBackend();
  const std::vector<KernelBackend> usable = UsableKernelBackends();
  for (KernelBackend b :
       {KernelBackend::kAvx2, KernelBackend::kAvx512, KernelBackend::kNeon}) {
    if (Contains(usable, b)) continue;
    const Status s = SetKernelBackend(b);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition)
        << KernelBackendName(b);
    // The active table is unchanged on error.
    EXPECT_EQ(ActiveKernelBackend(), before);
  }
}

TEST(KernelDispatchTest, ForcingScalarTakesEffect) {
  ScopedAutoBackend restore;
  ASSERT_TRUE(SetKernelBackend(KernelBackend::kScalar).ok());
  EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kScalar);
  EXPECT_STREQ(internal::ActiveKernelOps().name, "scalar");
  const KernelDispatchInfo info = GetKernelDispatchInfo();
  EXPECT_EQ(info.active, "scalar");
}

// The tentpole contract: every backend the CPU can run reproduces the
// scalar reference bit-for-bit on every op, every dim 1..67, and
// varying row counts. Any divergence here means switching backends
// could change a kNN result or pruning decision.
TEST(KernelDispatchTest, AllUsableBackendsMatchScalarBitExactly) {
  const KernelOps* ref = GetKernelOps(KernelBackend::kScalar);
  ASSERT_NE(ref, nullptr);
  Rng rng(31);
  for (KernelBackend b : UsableKernelBackends()) {
    if (b == KernelBackend::kScalar) continue;
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    for (size_t d = 1; d <= kMaxDim; ++d) {
      const size_t rows = 1 + (d * 7) % 13;
      const std::vector<double> q = RandomVector(d, &rng);
      const std::vector<double> block = RandomVector(rows * d, &rng);

      EXPECT_TRUE(BitsEqual(ops->squared_l2_pair(q.data(), block.data(), d),
                            ref->squared_l2_pair(q.data(), block.data(), d)))
          << ops->name << " squared_l2_pair dim " << d;
      EXPECT_TRUE(BitsEqual(ops->dot_pair(q.data(), block.data(), d),
                            ref->dot_pair(q.data(), block.data(), d)))
          << ops->name << " dot_pair dim " << d;

      std::vector<double> got(rows), want(rows);
      ops->l2_one_to_many(q.data(), block.data(), rows, d, got.data());
      ref->l2_one_to_many(q.data(), block.data(), rows, d, want.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqual(got[r], want[r]))
            << ops->name << " l2_one_to_many dim " << d << " row " << r;
      }

      std::vector<double> got_norms(rows), want_norms(rows);
      ops->row_norms(block.data(), rows, d, got_norms.data());
      ref->row_norms(block.data(), rows, d, want_norms.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqual(got_norms[r], want_norms[r]))
            << ops->name << " row_norms dim " << d << " row " << r;
      }

      const double q_sq = ref->dot_pair(q.data(), q.data(), d);
      ops->l2dot_one_to_many(q.data(), q_sq, block.data(), want_norms.data(),
                             rows, d, got.data());
      ref->l2dot_one_to_many(q.data(), q_sq, block.data(), want_norms.data(),
                             rows, d, want.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqual(got[r], want[r]))
            << ops->name << " l2dot_one_to_many dim " << d << " row " << r;
      }

      const std::vector<uint8_t> qc = RandomCodes(d, 255, &rng);
      const std::vector<uint8_t> codes = RandomCodes(rows * d, 255, &rng);
      std::vector<uint32_t> got_ssd(rows), want_ssd(rows);
      ops->ssd8_one_to_many(qc.data(), codes.data(), rows, d, got_ssd.data());
      ref->ssd8_one_to_many(qc.data(), codes.data(), rows, d,
                            want_ssd.data());
      EXPECT_EQ(got_ssd, want_ssd) << ops->name << " ssd8 dim " << d;

      const size_t stride = PackedNibbleStride(d);
      const std::vector<uint8_t> qn = RandomCodes(d, 15, &rng);
      const std::vector<uint8_t> rn = RandomCodes(rows * d, 15, &rng);
      std::vector<uint8_t> qp(stride), rp(rows * stride);
      PackNibbleRows(qn.data(), 1, d, qp.data());
      PackNibbleRows(rn.data(), rows, d, rp.data());
      ops->ssd4_one_to_many(qp.data(), rp.data(), rows, d, got_ssd.data());
      ref->ssd4_one_to_many(qp.data(), rp.data(), rows, d, want_ssd.data());
      EXPECT_EQ(got_ssd, want_ssd) << ops->name << " ssd4 dim " << d;
    }
  }
}

// The fp32 tier inherits the same contract: every usable backend's
// fp32 ops — the fp32-accumulate scans, the row norms, and the
// fp64-accumulate variant — reproduce scalar bit-for-bit on every dim
// 1..67. Divergence here would break the certified refine gate, whose
// error bound assumes one specific rounding sequence.
TEST(KernelDispatchTest, F32OpsMatchScalarBitExactlyOnEveryBackend) {
  const KernelOps* ref = GetKernelOps(KernelBackend::kScalar);
  ASSERT_NE(ref, nullptr);
  Rng rng(34);
  for (KernelBackend b : UsableKernelBackends()) {
    if (b == KernelBackend::kScalar) continue;
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    for (size_t d = 1; d <= kMaxDim; ++d) {
      const size_t rows = 1 + (d * 7) % 13;
      std::vector<float> q(d), block(rows * d);
      for (float& x : q) x = static_cast<float>(rng.Gaussian(0.0, 3.0));
      for (float& x : block) x = static_cast<float>(rng.Gaussian(0.0, 3.0));

      std::vector<float> got(rows), want(rows);
      ops->l2_f32_one_to_many(q.data(), block.data(), rows, d, got.data());
      ref->l2_f32_one_to_many(q.data(), block.data(), rows, d, want.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqualF(got[r], want[r]))
            << ops->name << " l2_f32_one_to_many dim " << d << " row " << r;
      }

      std::vector<float> got_norms(rows), want_norms(rows);
      ops->row_norms_f32(block.data(), rows, d, got_norms.data());
      ref->row_norms_f32(block.data(), rows, d, want_norms.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqualF(got_norms[r], want_norms[r]))
            << ops->name << " row_norms_f32 dim " << d << " row " << r;
      }

      float q_sq = 0.0f;
      ref->row_norms_f32(q.data(), 1, d, &q_sq);
      ops->l2dot_f32_one_to_many(q.data(), q_sq, block.data(),
                                 want_norms.data(), rows, d, got.data());
      ref->l2dot_f32_one_to_many(q.data(), q_sq, block.data(),
                                 want_norms.data(), rows, d, want.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqualF(got[r], want[r]))
            << ops->name << " l2dot_f32_one_to_many dim " << d << " row "
            << r;
      }

      // The fp64-accumulate variant takes double norms and returns
      // double distances from float inputs.
      const std::vector<double> block64(block.begin(), block.end());
      std::vector<double> norms64(rows), got64(rows), want64(rows);
      ref->row_norms(block64.data(), rows, d, norms64.data());
      const double q_sq64 = static_cast<double>(q_sq);
      ops->l2dot_f32d_one_to_many(q.data(), q_sq64, block.data(),
                                  norms64.data(), rows, d, got64.data());
      ref->l2dot_f32d_one_to_many(q.data(), q_sq64, block.data(),
                                  norms64.data(), rows, d, want64.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_TRUE(BitsEqual(got64[r], want64[r]))
            << ops->name << " l2dot_f32d_one_to_many dim " << d << " row "
            << r;
      }
    }
  }
}

// fp32 specials flow identically too: a NaN or Inf element must
// surface in the fp32 scan result on every backend, so the refine
// gate's NaN-compares-false fallback re-checks the row in double.
TEST(KernelDispatchTest, F32SpecialValuesPropagateOnEveryBackend) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Rng rng(35);
  for (KernelBackend b : UsableKernelBackends()) {
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    for (size_t d : {1, 3, 4, 5, 8, 11, 19}) {
      for (size_t pos = 0; pos < d; ++pos) {
        std::vector<float> x(d), y(d);
        for (float& v : x) v = static_cast<float>(rng.Gaussian(0.0, 3.0));
        for (float& v : y) v = static_cast<float>(rng.Gaussian(0.0, 3.0));
        x[pos] = nan;
        float out = 0.0f;
        ops->l2_f32_one_to_many(x.data(), y.data(), 1, d, &out);
        EXPECT_TRUE(std::isnan(out))
            << ops->name << " dim " << d << " nan at " << pos;
        x[pos] = inf;
        ops->l2_f32_one_to_many(x.data(), y.data(), 1, d, &out);
        EXPECT_EQ(out, inf) << ops->name << " dim " << d << " inf at "
                            << pos;
      }
    }
  }
}

// NaN and Inf must flow through every backend the way the scalar
// reference flows them — a backend that flushed or reordered specials
// could turn a poisoned row into a plausible distance.
TEST(KernelDispatchTest, SpecialValuesPropagateOnEveryBackend) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Rng rng(32);
  for (KernelBackend b : UsableKernelBackends()) {
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    for (size_t d : {1, 3, 4, 5, 8, 11, 19}) {
      for (size_t pos = 0; pos < d; ++pos) {
        std::vector<double> x = RandomVector(d, &rng);
        const std::vector<double> y = RandomVector(d, &rng);
        x[pos] = nan;
        EXPECT_TRUE(std::isnan(ops->squared_l2_pair(x.data(), y.data(), d)))
            << ops->name << " dim " << d << " nan at " << pos;
        double out = 0.0;
        ops->l2_one_to_many(x.data(), y.data(), 1, d, &out);
        EXPECT_TRUE(std::isnan(out))
            << ops->name << " dim " << d << " nan at " << pos;
        x[pos] = inf;
        EXPECT_EQ(ops->squared_l2_pair(x.data(), y.data(), d), inf)
            << ops->name << " dim " << d << " inf at " << pos;
      }
    }
    // Inf − Inf inside the difference is NaN on every backend.
    const std::vector<double> x = {inf, 1.0, 2.0, 3.0, 4.0};
    const std::vector<double> y = {inf, 0.0, 0.0, 0.0, 0.0};
    EXPECT_TRUE(std::isnan(ops->squared_l2_pair(x.data(), y.data(), 5)))
        << ops->name;
  }
}

// The many-to-many / gather block ops: every (query, row) pair on
// every usable backend must produce the exact bits of the
// corresponding one-to-many (or pair) op — the contract the blocked
// query-block scan (DESIGN.md §16) builds its bit-identity on. The
// out_stride exceeds `rows` so stride handling is exercised, and the
// padding lanes must be left untouched.
TEST(KernelDispatchTest, ManyToManyOpsMatchOneToManyBitExactly) {
  Rng rng(36);
  for (KernelBackend b : UsableKernelBackends()) {
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    for (size_t d = 1; d <= kMaxDim; d += (d < 12 ? 1 : 7)) {
      const size_t rows = 1 + (d * 7) % 13;
      const size_t nq = 1 + (d * 3) % 6;
      const size_t stride = rows + 3;  // force out_stride > rows
      const std::vector<double> queries = RandomVector(nq * d, &rng);
      const std::vector<double> block = RandomVector(rows * d, &rng);
      std::vector<double> norms(rows), q_sqs(nq);
      ops->row_norms(block.data(), rows, d, norms.data());
      ops->row_norms(queries.data(), nq, d, q_sqs.data());

      // f64 dot-form block vs per-query one-to-many.
      const double pad = -7.25;
      std::vector<double> got(nq * stride, pad), want(rows);
      ops->l2dot_many_to_many(queries.data(), q_sqs.data(), nq, block.data(),
                              norms.data(), rows, d, got.data(), stride);
      for (size_t q = 0; q < nq; ++q) {
        ops->l2dot_one_to_many(queries.data() + q * d, q_sqs[q],
                               block.data(), norms.data(), rows, d,
                               want.data());
        for (size_t r = 0; r < rows; ++r) {
          EXPECT_TRUE(BitsEqual(got[q * stride + r], want[r]))
              << ops->name << " l2dot_many_to_many dim " << d << " q " << q
              << " row " << r;
        }
        for (size_t r = rows; r < stride; ++r) {
          EXPECT_EQ(got[q * stride + r], pad)
              << ops->name << " stride padding clobbered";
        }
      }

      // Gather vs squared_l2_pair at a shuffled index list.
      std::vector<uint32_t> idx;
      for (size_t r = 0; r < rows; ++r) {
        if ((r * 5 + d) % 3 != 0) idx.push_back(uint32_t(rows - 1 - r));
      }
      if (idx.empty()) idx.push_back(0);
      std::vector<double> gout(idx.size());
      ops->l2_gather(queries.data(), block.data(), idx.data(), idx.size(),
                     d, gout.data());
      for (size_t i = 0; i < idx.size(); ++i) {
        EXPECT_TRUE(BitsEqual(
            gout[i], ops->squared_l2_pair(
                         queries.data(), block.data() + idx[i] * d, d)))
            << ops->name << " l2_gather dim " << d << " i " << i;
      }

      // f32 dot-form block vs per-query one-to-many.
      std::vector<float> qf(nq * d), bf(rows * d);
      for (size_t i = 0; i < qf.size(); ++i) {
        qf[i] = static_cast<float>(queries[i]);
      }
      for (size_t i = 0; i < bf.size(); ++i) {
        bf[i] = static_cast<float>(block[i]);
      }
      std::vector<float> nf(rows), qsf(nq);
      ops->row_norms_f32(bf.data(), rows, d, nf.data());
      ops->row_norms_f32(qf.data(), nq, d, qsf.data());
      std::vector<float> got_f(nq * stride, -7.25f), want_f(rows);
      ops->l2dot_f32_many_to_many(qf.data(), qsf.data(), nq, bf.data(),
                                  nf.data(), rows, d, got_f.data(), stride);
      for (size_t q = 0; q < nq; ++q) {
        ops->l2dot_f32_one_to_many(qf.data() + q * d, qsf[q], bf.data(),
                                   nf.data(), rows, d, want_f.data());
        for (size_t r = 0; r < rows; ++r) {
          EXPECT_TRUE(BitsEqualF(got_f[q * stride + r], want_f[r]))
              << ops->name << " l2dot_f32_many_to_many dim " << d << " q "
              << q << " row " << r;
        }
      }

      // int8 / packed int4 block SSD vs per-query one-to-many.
      const std::vector<uint8_t> qc = RandomCodes(nq * d, 255, &rng);
      const std::vector<uint8_t> codes = RandomCodes(rows * d, 255, &rng);
      std::vector<uint32_t> got_ssd(nq * stride, 0xDEADu), want_ssd(rows);
      ops->ssd8_many_to_many(qc.data(), nq, codes.data(), rows, d,
                             got_ssd.data(), stride);
      for (size_t q = 0; q < nq; ++q) {
        ops->ssd8_one_to_many(qc.data() + q * d, codes.data(), rows, d,
                              want_ssd.data());
        for (size_t r = 0; r < rows; ++r) {
          EXPECT_EQ(got_ssd[q * stride + r], want_ssd[r])
              << ops->name << " ssd8_many_to_many dim " << d << " q " << q
              << " row " << r;
        }
      }

      const size_t nib = PackedNibbleStride(d);
      const std::vector<uint8_t> qn = RandomCodes(nq * d, 15, &rng);
      const std::vector<uint8_t> rn = RandomCodes(rows * d, 15, &rng);
      std::vector<uint8_t> qp(nq * nib), rp(rows * nib);
      PackNibbleRows(qn.data(), nq, d, qp.data());
      PackNibbleRows(rn.data(), rows, d, rp.data());
      std::fill(got_ssd.begin(), got_ssd.end(), 0xDEADu);
      ops->ssd4_many_to_many(qp.data(), nq, rp.data(), rows, d,
                             got_ssd.data(), stride);
      for (size_t q = 0; q < nq; ++q) {
        ops->ssd4_one_to_many(qp.data() + q * nib, rp.data(), rows, d,
                              want_ssd.data());
        for (size_t r = 0; r < rows; ++r) {
          EXPECT_EQ(got_ssd[q * stride + r], want_ssd[r])
              << ops->name << " ssd4_many_to_many dim " << d << " q " << q
              << " row " << r;
        }
      }
    }
  }
}

// The packed 4-bit scan equals the unpacked integer reference —
// including odd dims, where the pad nibble must contribute exactly 0.
TEST(KernelDispatchTest, Ssd4MatchesUnpackedReferenceOnEveryBackend) {
  Rng rng(33);
  for (KernelBackend b : UsableKernelBackends()) {
    const KernelOps* ops = GetKernelOps(b);
    ASSERT_NE(ops, nullptr);
    for (size_t d = 1; d <= kMaxDim; ++d) {
      const size_t rows = 1 + (d * 5) % 11;
      const size_t stride = PackedNibbleStride(d);
      const std::vector<uint8_t> qn = RandomCodes(d, 15, &rng);
      const std::vector<uint8_t> rn = RandomCodes(rows * d, 15, &rng);
      std::vector<uint8_t> qp(stride), rp(rows * stride);
      PackNibbleRows(qn.data(), 1, d, qp.data());
      PackNibbleRows(rn.data(), rows, d, rp.data());
      std::vector<uint32_t> got(rows);
      ops->ssd4_one_to_many(qp.data(), rp.data(), rows, d, got.data());
      for (size_t r = 0; r < rows; ++r) {
        uint32_t want = 0;
        for (size_t j = 0; j < d; ++j) {
          const int32_t diff =
              int32_t(qn[j]) - int32_t(rn[r * d + j]);
          want += uint32_t(diff * diff);
        }
        EXPECT_EQ(got[r], want)
            << ops->name << " dim " << d << " row " << r;
      }
    }
  }
}

}  // namespace
}  // namespace mocemg
