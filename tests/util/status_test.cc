#include "util/status.h"

#include <gtest/gtest.h>

#include "util/macros.h"

namespace mocemg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::NumericalError("x").IsNumericalError());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unknown("x").code(), StatusCode::kUnknown);
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::IOError("disk");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kIOError);
  EXPECT_EQ(b.message(), "disk");
  // The copy is independent.
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_FALSE(a.ok());
}

TEST(StatusTest, MoveSemantics) {
  Status a = Status::ParseError("line 3");
  Status b = std::move(a);
  EXPECT_EQ(b.message(), "line 3");
  Status c;
  c = std::move(b);
  EXPECT_EQ(c.message(), "line 3");
}

TEST(StatusTest, SelfAssignment) {
  Status a = Status::NotFound("gone");
  a = *&a;
  EXPECT_EQ(a.message(), "gone");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::ParseError("bad token").WithContext("row 7");
  EXPECT_EQ(s.message(), "row 7: bad token");
  EXPECT_TRUE(s.IsParseError());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericalError),
               "NumericalError");
}

Status FailsHalfway(bool fail) {
  MOCEMG_RETURN_NOT_OK(fail ? Status::IOError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsHalfway(false).ok());
  Status s = FailsHalfway(true);
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace mocemg
