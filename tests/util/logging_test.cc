#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace mocemg {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarning));
  EXPECT_LT(static_cast<int>(LogLevel::kWarning),
            static_cast<int>(LogLevel::kError));
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kFatal));
}

TEST(LoggingTest, MacroEmitsWithoutCrashing) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  MOCEMG_LOG(kInfo) << "info record " << 42;
  MOCEMG_LOG(kWarning) << "warning record";
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedBelowThreshold) {
  // With the level at kError, kDebug/kInfo statements must evaluate to
  // no-ops; this test asserts they compile and run in that state.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  MOCEMG_LOG(kDebug) << "never shown";
  MOCEMG_LOG(kInfo) << "never shown";
  SetLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ MOCEMG_CHECK(1 == 2) << "impossible"; },
               "Check failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(MOCEMG_CHECK_OK(Status::IOError("disk gone")),
               "disk gone");
}

TEST(LoggingTest, CheckPassesSilently) {
  MOCEMG_CHECK(2 + 2 == 4) << "unreachable";
  MOCEMG_CHECK_OK(Status::OK());
}

}  // namespace
}  // namespace mocemg
