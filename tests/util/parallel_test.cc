#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace mocemg {
namespace {

TEST(ParallelChunkingTest, IsPureInRangeAndGrain) {
  // Auto grain: min(n, 64) chunks, independent of any thread setting.
  EXPECT_EQ(ParallelNumChunks(0, 0), 0u);
  EXPECT_EQ(ParallelNumChunks(1, 0), 1u);
  EXPECT_EQ(ParallelNumChunks(63, 0), 63u);
  EXPECT_EQ(ParallelNumChunks(64, 0), 64u);
  EXPECT_EQ(ParallelNumChunks(100000, 0), 64u);
  // Explicit grain: at most ceil(n / grain) chunks, each >= grain items
  // (except possibly by balancing), never more chunks than items.
  EXPECT_EQ(ParallelNumChunks(100, 100), 1u);
  EXPECT_EQ(ParallelNumChunks(100, 10), 10u);
  EXPECT_EQ(ParallelNumChunks(5, 1), 5u);
}

TEST(ParallelChunkingTest, BoundsPartitionTheRangeContiguously) {
  for (size_t n : {1u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    const size_t chunks = ParallelNumChunks(n, 0);
    size_t expected_begin = 0;
    for (size_t c = 0; c < chunks; ++c) {
      const auto [begin, end] = ParallelChunkBounds(n, chunks, c);
      EXPECT_EQ(begin, expected_begin) << "n=" << n << " chunk=" << c;
      EXPECT_GT(end, begin);
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, n);
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  bool ran = false;
  Status st = ParallelFor(0, [&](size_t, size_t, size_t) -> Status {
    ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, SerialFallbackVisitsChunksInAscendingOrder) {
  ParallelOptions serial;
  serial.max_threads = 1;
  std::vector<size_t> visited;
  Status st = ParallelFor(
      1000,
      [&](size_t /*begin*/, size_t /*end*/, size_t chunk) -> Status {
        visited.push_back(chunk);
        return Status::OK();
      },
      serial);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(visited.size(), ParallelNumChunks(1000, 0));
  for (size_t i = 0; i < visited.size(); ++i) EXPECT_EQ(visited[i], i);
}

TEST(ParallelForTest, EveryIndexProcessedExactlyOnceWhenThreaded) {
  ParallelOptions opts;
  opts.max_threads = 8;
  const size_t n = 12345;
  std::vector<std::atomic<int>> count(n);
  for (auto& c : count) c.store(0);
  Status st = ParallelFor(
      n,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) count[i].fetch_add(1);
        return Status::OK();
      },
      opts);
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(count[i].load(), 1) << i;
}

TEST(ParallelForTest, SerialErrorShortCircuitsLaterChunks) {
  ParallelOptions serial;
  serial.max_threads = 1;
  size_t chunks_run = 0;
  Status st = ParallelFor(
      1000,
      [&](size_t, size_t, size_t chunk) -> Status {
        ++chunks_run;
        if (chunk == 3) {
          return Status::InvalidArgument("chunk 3 failed");
        }
        return Status::OK();
      },
      serial);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "chunk 3 failed");
  // Chunks 0..3 ran; everything after the failure was skipped.
  EXPECT_EQ(chunks_run, 4u);
}

TEST(ParallelForTest, LowestExecutedFailureWinsWhenThreaded) {
  ParallelOptions opts;
  opts.max_threads = 8;
  // Every chunk fails. Which chunks execute depends on how fast the
  // cancellation flag propagates (even chunk 0 can be skipped if
  // another runner fails first), but among those that DID execute the
  // lowest-index failure must be the one reported.
  const size_t kN = 10000;
  const size_t kChunks = ParallelNumChunks(kN, 0);
  std::vector<std::atomic<bool>> executed(kChunks);
  Status st = ParallelFor(
      kN,
      [&](size_t, size_t, size_t chunk) -> Status {
        executed[chunk].store(true);
        return Status::InvalidArgument("fail " + std::to_string(chunk));
      },
      opts);
  EXPECT_FALSE(st.ok());
  size_t lowest = kChunks;
  for (size_t c = 0; c < kChunks; ++c) {
    if (executed[c].load()) {
      lowest = c;
      break;
    }
  }
  ASSERT_LT(lowest, kChunks);
  EXPECT_EQ(st.message(), "fail " + std::to_string(lowest));
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ParallelOptions opts;
  opts.max_threads = 4;
  std::atomic<long long> total{0};
  Status st = ParallelFor(
      64,
      [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          long long inner = 0;
          // The nested call must execute inline on this worker — a pool
          // re-entry here could deadlock with every worker waiting.
          Status nested = ParallelFor(
              100,
              [&](size_t b, size_t e, size_t) -> Status {
                for (size_t j = b; j < e; ++j) {
                  inner += static_cast<long long>(j);
                }
                return Status::OK();
              },
              opts);
          if (!nested.ok()) return nested;
          total.fetch_add(inner);
        }
        return Status::OK();
      },
      opts);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 64LL * (99LL * 100LL / 2LL));
}

TEST(ParallelReduceTest, SumMatchesSerialAndPropagatesErrors) {
  const size_t n = 777;
  auto map = [](size_t begin, size_t end, size_t) -> Result<long long> {
    long long s = 0;
    for (size_t i = begin; i < end; ++i) s += static_cast<long long>(i);
    return s;
  };
  auto combine = [](long long* acc, long long&& partial) {
    *acc += partial;
  };
  auto sum = ParallelReduce<long long>(n, 0, map, combine);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, static_cast<long long>(n) * (n - 1) / 2);

  auto bad = ParallelReduce<long long>(
      n, 0,
      [](size_t, size_t, size_t chunk) -> Result<long long> {
        if (chunk == 0) return Status::NumericalError("bad chunk");
        return 0LL;
      },
      combine);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().message(), "bad chunk");
}

TEST(ParallelReduceTest, FloatingPointSumIsBitIdenticalAcrossThreadCounts) {
  // A float sum whose value depends on association order: identical bits
  // across thread counts proves the fixed chunk-order combine.
  const size_t n = 50000;
  Rng rng(123);
  std::vector<double> values(n);
  for (double& v : values) v = rng.NextDouble() * 1e6 - 5e5;

  auto run = [&](size_t threads) {
    ParallelOptions opts;
    opts.max_threads = threads;
    auto sum = ParallelReduce<double>(
        n, 0.0,
        [&](size_t begin, size_t end, size_t) -> Result<double> {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double* acc, double&& partial) { *acc += partial; }, opts);
    EXPECT_TRUE(sum.ok());
    return *sum;
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelOptionsTest, DefaultBudgetIsAtLeastOne) {
  EXPECT_GE(DefaultMaxThreads(), 1u);
}

}  // namespace
}  // namespace mocemg
