#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace mocemg {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.5, 2.5);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.5);
  }
}

TEST(RandomTest, NextBelowCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.NextBelow(10)];
  }
  for (int c : counts) {
    // Each bucket should be within 10% of trials/10.
    EXPECT_NEAR(c, trials / 10, trials / 100);
  }
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values observed
}

TEST(RandomTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RandomTest, GaussianScaleAndShift) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RandomTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RandomTest, ShuffleEmptyAndSingleton) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.Fork();
  // Child differs from the parent's continued stream.
  bool any_diff = false;
  Rng b(37);
  b.Fork();
  for (int i = 0; i < 10; ++i) {
    if (child.NextUint64() != a.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, SplitMix64KnownSequenceIsStable) {
  // Golden values pin the generator across refactors.
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.Next());
  EXPECT_NE(first, sm.Next());
}

}  // namespace
}  // namespace mocemg
