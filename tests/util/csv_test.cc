#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mocemg {
namespace {

TEST(CsvTest, ParseWithHeader) {
  auto table = CsvTable::FromString("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->num_columns(), 3u);
  EXPECT_EQ(table->rows()[1][2], "6");
}

TEST(CsvTest, ParseWithoutHeader) {
  CsvOptions opts;
  opts.has_header = false;
  auto table = CsvTable::FromString("1,2\n3,4\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->header().empty());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto table =
      CsvTable::FromString("# meta\na,b\n\n# more\n1,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(CsvTest, QuotedFieldsWithDelimiterAndEscapes) {
  auto table = CsvTable::FromString(
      "name,notes\n\"walk, fast\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows()[0][0], "walk, fast");
  EXPECT_EQ(table->rows()[0][1], "said \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto table = CsvTable::FromString("a\n\"oops\n");
  EXPECT_FALSE(table.ok());
  EXPECT_TRUE(table.status().IsParseError());
}

TEST(CsvTest, RaggedRowsRejectedByDefault) {
  auto table = CsvTable::FromString("a,b\n1,2\n3\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RaggedRowsAllowedWhenOpted) {
  CsvOptions opts;
  opts.allow_ragged_rows = true;
  auto table = CsvTable::FromString("a,b\n1,2\n3\n", opts);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
}

TEST(CsvTest, ColumnIndex) {
  auto table = CsvTable::FromString("x,y,z\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(*table->ColumnIndex("y"), 1u);
  EXPECT_TRUE(table->ColumnIndex("w").status().IsNotFound());
}

TEST(CsvTest, ToNumeric) {
  auto table = CsvTable::FromString("a,b\n1.5,2\n-3,4e2\n");
  ASSERT_TRUE(table.ok());
  auto numeric = table->ToNumeric();
  ASSERT_TRUE(numeric.ok());
  EXPECT_DOUBLE_EQ((*numeric)[0][0], 1.5);
  EXPECT_DOUBLE_EQ((*numeric)[1][1], 400.0);
}

TEST(CsvTest, ToNumericFailsOnText) {
  auto table = CsvTable::FromString("a\nhello\n");
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->ToNumeric().ok());
}

TEST(CsvTest, WindowsLineEndings) {
  auto table = CsvTable::FromString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows()[0][1], "2");
}

TEST(CsvTest, WriterQuotesWhenNeeded) {
  CsvWriter w;
  w.WriteComment("meta");
  w.WriteRow({"plain", "with,comma", "with\"quote"});
  w.WriteNumericRow({1.5, -2.0}, 2);
  const std::string out = w.str();
  EXPECT_NE(out.find("# meta\n"), std::string::npos);
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("1.50,-2.00"), std::string::npos);
}

TEST(CsvTest, WriterRoundTripsThroughParser) {
  CsvWriter w;
  w.WriteRow({"h1", "h2"});
  w.WriteRow({"a,b", "c\"d"});
  auto table = CsvTable::FromString(w.str());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows()[0][0], "a,b");
  EXPECT_EQ(table->rows()[0][1], "c\"d");
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csv_test_rt.csv";
  CsvWriter w;
  w.WriteRow({"a", "b"});
  w.WriteNumericRow({1.0, 2.0}, 3);
  ASSERT_TRUE(w.ToFile(path).ok());
  auto table = CsvTable::FromFile(path);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = CsvTable::FromFile("/nonexistent/path.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(CsvTest, ReadWriteStringFile) {
  const std::string path = ::testing::TempDir() + "/csv_test_str.txt";
  ASSERT_TRUE(WriteStringToFile(path, "payload").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "payload");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mocemg
