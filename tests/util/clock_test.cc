#include "util/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mocemg {
namespace {

TEST(ClockTest, SystemClockIsMonotonic) {
  const Clock* clock = SystemClock();
  ASSERT_NE(clock, nullptr);
  const uint64_t a = clock->NowMicros();
  const uint64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
}

TEST(ClockTest, SystemClockSleepAdvancesTime) {
  const Clock* clock = SystemClock();
  const uint64_t before = clock->NowMicros();
  clock->SleepMicros(2000);
  EXPECT_GE(clock->NowMicros() - before, 2000u);
}

TEST(ClockTest, FakeClockOnlyMovesWhenAdvanced) {
  FakeClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100u);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150u);
}

// SleepMicros on a fake clock advances fake time instead of blocking,
// so a backoff loop under test observes real timestamps instantly.
TEST(ClockTest, FakeClockSleepAdvancesInsteadOfBlocking) {
  FakeClock clock;
  clock.SleepMicros(1000000);  // one fake "second", no real wait
  EXPECT_EQ(clock.NowMicros(), 1000000u);
}

TEST(ClockTest, FakeClockAdvanceIsThreadSafe) {
  FakeClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) clock.Advance(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.NowMicros(), 4000u);
}

}  // namespace
}  // namespace mocemg
