#include "util/distance_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "util/random.h"

namespace mocemg {
namespace {

// The documented accumulation order, restated independently of the
// header: four lanes over dims stepping 4, remainder dims filling lanes
// 0..2 in order, combined as (a0 + a1) + (a2 + a3). Bit-equality against
// this reference pins the kernel's arithmetic contract.
double PairReference(const double* x, const double* y, size_t d) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  if (i < d) {
    const double d0 = x[i] - y[i];
    a0 += d0 * d0;
  }
  if (i + 1 < d) {
    const double d1 = x[i + 1] - y[i + 1];
    a1 += d1 * d1;
  }
  if (i + 2 < d) {
    const double d2 = x[i + 2] - y[i + 2];
    a2 += d2 * d2;
  }
  return (a0 + a1) + (a2 + a3);
}

// Plain sequential scalar loop — the pre-kernel arithmetic. The 4-lane
// kernel reassociates, so agreement is tolerance-based, not bitwise.
double ScalarReference(const double* x, const double* y, size_t d) {
  double sum = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = x[i] - y[i];
    sum += diff * diff;
  }
  return sum;
}

std::vector<double> RandomVector(size_t d, Rng* rng) {
  std::vector<double> v(d);
  for (double& x : v) x = rng->Gaussian(0.0, 3.0);
  return v;
}

// Every dim 1..67 covers each 4-way unroll remainder (0..3) many times
// over, plus the d < 4 edge where the main loop never runs.
constexpr size_t kMaxDim = 67;

TEST(DistanceKernelsTest, PairMatchesDocumentedOrderBitExactly) {
  Rng rng(21);
  for (size_t d = 1; d <= kMaxDim; ++d) {
    const std::vector<double> x = RandomVector(d, &rng);
    const std::vector<double> y = RandomVector(d, &rng);
    const double got = SquaredL2(x.data(), y.data(), d);
    const double want = PairReference(x.data(), y.data(), d);
    EXPECT_EQ(got, want) << "dim " << d;
  }
}

TEST(DistanceKernelsTest, PairMatchesScalarWithinTolerance) {
  Rng rng(22);
  for (size_t d = 1; d <= kMaxDim; ++d) {
    const std::vector<double> x = RandomVector(d, &rng);
    const std::vector<double> y = RandomVector(d, &rng);
    const double got = SquaredL2(x.data(), y.data(), d);
    const double want = ScalarReference(x.data(), y.data(), d);
    EXPECT_NEAR(got, want, 1e-10 * (1.0 + want)) << "dim " << d;
  }
}

TEST(DistanceKernelsTest, OneToManyRowsMatchPairKernelBitExactly) {
  Rng rng(23);
  for (size_t d = 1; d <= kMaxDim; ++d) {
    const size_t rows = 1 + (d * 7) % 13;
    const std::vector<double> q = RandomVector(d, &rng);
    const std::vector<double> block = RandomVector(rows * d, &rng);
    std::vector<double> out(rows);
    SquaredL2OneToMany(q.data(), block.data(), rows, d, out.data());
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[r], SquaredL2(q.data(), block.data() + r * d, d))
          << "dim " << d << " row " << r;
    }
  }
}

TEST(DistanceKernelsTest, ManyToManyMatchesPairKernelBitExactly) {
  Rng rng(24);
  // Enough rows to cross the internal row tile at small dims, and odd
  // strides via out_stride == rows.
  for (size_t d : {1, 2, 3, 4, 5, 7, 16, 33, 67}) {
    const size_t nq = 5;
    const size_t rows = 300;  // > kernel row tile
    const std::vector<double> queries = RandomVector(nq * d, &rng);
    const std::vector<double> block = RandomVector(rows * d, &rng);
    std::vector<double> out(nq * rows);
    SquaredL2ManyToMany(queries.data(), nq, block.data(), rows, d,
                        out.data(), rows);
    for (size_t q = 0; q < nq; ++q) {
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(out[q * rows + r],
                  SquaredL2(queries.data() + q * d,
                            block.data() + r * d, d))
            << "dim " << d << " query " << q << " row " << r;
      }
    }
  }
}

TEST(DistanceKernelsTest, RowSquaredNormsMatchSquaredNormBitExactly) {
  Rng rng(25);
  for (size_t d = 1; d <= kMaxDim; ++d) {
    const size_t rows = 1 + (d * 5) % 9;
    const std::vector<double> block = RandomVector(rows * d, &rng);
    std::vector<double> norms(rows);
    RowSquaredNorms(block.data(), rows, d, norms.data());
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(norms[r], SquaredNorm(block.data() + r * d, d))
          << "dim " << d << " row " << r;
    }
  }
}

TEST(DistanceKernelsTest, DotFormWithinDocumentedErrorBound) {
  Rng rng(26);
  for (size_t d = 1; d <= kMaxDim; ++d) {
    const size_t rows = 16;
    const std::vector<double> q = RandomVector(d, &rng);
    const std::vector<double> block = RandomVector(rows * d, &rng);
    std::vector<double> norms(rows);
    RowSquaredNorms(block.data(), rows, d, norms.data());
    const double q_sq = SquaredNorm(q.data(), d);
    double max_norm_sq = 0.0;
    for (double n : norms) max_norm_sq = std::max(max_norm_sq, n);
    std::vector<double> dot_form(rows);
    SquaredL2DotOneToMany(q.data(), q_sq, block.data(), norms.data(),
                          rows, d, dot_form.data());
    const double bound = DotFormErrorBound(d, q_sq, max_norm_sq);
    for (size_t r = 0; r < rows; ++r) {
      const double exact = SquaredL2(q.data(), block.data() + r * d, d);
      EXPECT_LE(std::fabs(dot_form[r] - exact), bound)
          << "dim " << d << " row " << r;
    }
  }
}

TEST(DistanceKernelsTest, NanPropagatesLikeScalarLoop) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(27);
  for (size_t d : {1, 3, 4, 5, 8, 11}) {
    for (size_t pos = 0; pos < d; ++pos) {
      std::vector<double> x = RandomVector(d, &rng);
      const std::vector<double> y = RandomVector(d, &rng);
      x[pos] = nan;
      const double scalar = ScalarReference(x.data(), y.data(), d);
      const double kernel = SquaredL2(x.data(), y.data(), d);
      EXPECT_TRUE(std::isnan(scalar));
      EXPECT_TRUE(std::isnan(kernel))
          << "dim " << d << " nan at " << pos;
      std::vector<double> out(1);
      SquaredL2OneToMany(x.data(), y.data(), 1, d, out.data());
      EXPECT_TRUE(std::isnan(out[0]));
    }
  }
}

TEST(DistanceKernelsTest, InfPropagatesLikeScalarLoop) {
  const double inf = std::numeric_limits<double>::infinity();
  Rng rng(28);
  for (size_t d : {1, 2, 4, 6, 9}) {
    for (size_t pos = 0; pos < d; ++pos) {
      std::vector<double> x = RandomVector(d, &rng);
      const std::vector<double> y = RandomVector(d, &rng);
      x[pos] = inf;
      const double scalar = ScalarReference(x.data(), y.data(), d);
      const double kernel = SquaredL2(x.data(), y.data(), d);
      EXPECT_EQ(scalar, inf);
      EXPECT_EQ(kernel, inf) << "dim " << d << " inf at " << pos;
    }
  }
}

TEST(DistanceKernelsTest, OpposedInfinitiesYieldNanLikeScalarLoop) {
  // Inf − Inf inside the difference is NaN in both formulations.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> x = {inf, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {inf, 0.0, 0.0, 0.0, 0.0};
  const double scalar = ScalarReference(x.data(), y.data(), x.size());
  const double kernel = SquaredL2(x.data(), y.data(), x.size());
  EXPECT_TRUE(std::isnan(scalar));
  EXPECT_TRUE(std::isnan(kernel));
}

TEST(DistanceKernelsTest, ZeroDimensionIsZero) {
  const double x = 1.0, y = 2.0;
  EXPECT_EQ(SquaredL2(&x, &y, 0), 0.0);
  EXPECT_EQ(SquaredNorm(&x, 0), 0.0);
  EXPECT_EQ(DotProduct(&x, &y, 0), 0.0);
}

// The certification at the heart of the fp32 tier: for rows admitted
// by the norm gate, the fp32 dot-form distance never strays from the
// exact double distance by more than Float32DotFormErrorBound. Swept
// over every dim 1..67 and scales from 1e-6 to 1e6, plus mixed-scale
// rows — the regimes where fp32 cancellation is worst.
TEST(DistanceKernelsTest, Float32DotFormErrorBoundIsConservative) {
  Rng rng(40);
  for (size_t d = 1; d <= 67; ++d) {
    for (double scale : {1e-6, 1.0, 1e6}) {
      const size_t rows = 1 + (d * 5) % 9;
      std::vector<double> q(d), block(rows * d);
      for (double& v : q) v = rng.Gaussian(0.0, scale);
      for (size_t i = 0; i < block.size(); ++i) {
        // Mixed per-element scales stress cancellation.
        block[i] = rng.Gaussian(0.0, (i % 3 == 0) ? scale : scale * 1e-3);
      }
      std::vector<float> qf(d), blockf(rows * d);
      for (size_t i = 0; i < d; ++i) qf[i] = static_cast<float>(q[i]);
      for (size_t i = 0; i < block.size(); ++i) {
        blockf[i] = static_cast<float>(block[i]);
      }
      std::vector<float> norms_f32(rows), dist_f32(rows);
      RowSquaredNormsF32(blockf.data(), rows, d, norms_f32.data());
      const float q_sq_f32 = SquaredNormF32(qf.data(), d);
      SquaredL2DotF32OneToMany(qf.data(), q_sq_f32, blockf.data(),
                               norms_f32.data(), rows, d, dist_f32.data());
      const double q_sq = SquaredNorm(q.data(), d);
      double max_norm_sq = 0.0, max_abs = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        max_norm_sq =
            std::max(max_norm_sq, SquaredNorm(block.data() + r * d, d));
      }
      for (double v : block) max_abs = std::max(max_abs, std::fabs(v));
      const double bound =
          Float32DotFormErrorBound(d, q_sq, max_norm_sq, max_abs);
      ASSERT_GT(bound, 0.0);
      for (size_t r = 0; r < rows; ++r) {
        const double exact = SquaredL2(q.data(), block.data() + r * d, d);
        EXPECT_LE(std::fabs(static_cast<double>(dist_f32[r]) - exact),
                  bound)
            << "dim " << d << " scale " << scale << " row " << r;
      }
    }
  }
}

// Subnormal and near-gate magnitudes: the bound's λ terms must absorb
// flush-to-zero-scale values, and the largest magnitudes the pack gate
// admits must not overflow the bound into NaN.
TEST(DistanceKernelsTest, Float32ErrorBoundHandlesExtremes) {
  const double kTiny = 1e-30;    // narrows to fp32 subnormal territory
  const double kLarge = 1e14;    // norms_sq ~1e28, inside the 1e30 gate
  for (size_t d : {1, 2, 3, 4, 7, 16, 33}) {
    std::vector<double> q(d), row(d);
    for (size_t i = 0; i < d; ++i) {
      q[i] = (i % 2 == 0) ? kTiny : kLarge / std::sqrt(double(d));
      row[i] = (i % 2 == 0) ? -kLarge / std::sqrt(double(d)) : kTiny;
    }
    std::vector<float> qf(d), rowf(d);
    for (size_t i = 0; i < d; ++i) {
      qf[i] = static_cast<float>(q[i]);
      rowf[i] = static_cast<float>(row[i]);
    }
    float norm_f32 = 0.0f, dist_f32 = 0.0f;
    RowSquaredNormsF32(rowf.data(), 1, d, &norm_f32);
    SquaredL2DotF32OneToMany(qf.data(), SquaredNormF32(qf.data(), d),
                             rowf.data(), &norm_f32, 1, d, &dist_f32);
    const double q_sq = SquaredNorm(q.data(), d);
    const double norm_sq = SquaredNorm(row.data(), d);
    double max_abs = 0.0;
    for (double v : row) max_abs = std::max(max_abs, std::fabs(v));
    const double bound =
        Float32DotFormErrorBound(d, q_sq, norm_sq, max_abs);
    ASSERT_TRUE(std::isfinite(bound)) << "dim " << d;
    const double exact = SquaredL2(q.data(), row.data(), d);
    EXPECT_LE(std::fabs(static_cast<double>(dist_f32) - exact), bound)
        << "dim " << d;
  }
}

TEST(DistanceKernelsTest, F32ZeroDimensionIsZero) {
  const float x = 1.0f, y = 2.0f;
  EXPECT_EQ(SquaredL2F32(&x, &y, 0), 0.0f);
  EXPECT_EQ(SquaredNormF32(&x, 0), 0.0f);
  EXPECT_EQ(DotProductF32(&x, &y, 0), 0.0f);
  EXPECT_EQ(DotProductF32ToF64(&x, &y, 0), 0.0);
}

}  // namespace
}  // namespace mocemg
