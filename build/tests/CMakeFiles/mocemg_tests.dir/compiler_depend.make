# Empty compiler generated dependencies file for mocemg_tests.
# This may be replaced when dependencies are built.
