
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/fcm_test.cc" "tests/CMakeFiles/mocemg_tests.dir/cluster/fcm_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/cluster/fcm_test.cc.o.d"
  "/root/repo/tests/cluster/gustafson_kessel_test.cc" "tests/CMakeFiles/mocemg_tests.dir/cluster/gustafson_kessel_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/cluster/gustafson_kessel_test.cc.o.d"
  "/root/repo/tests/cluster/kmeans_test.cc" "tests/CMakeFiles/mocemg_tests.dir/cluster/kmeans_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/cluster/kmeans_test.cc.o.d"
  "/root/repo/tests/cluster/selection_test.cc" "tests/CMakeFiles/mocemg_tests.dir/cluster/selection_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/cluster/selection_test.cc.o.d"
  "/root/repo/tests/cluster/validity_test.cc" "tests/CMakeFiles/mocemg_tests.dir/cluster/validity_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/cluster/validity_test.cc.o.d"
  "/root/repo/tests/core/classifier_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/classifier_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/classifier_test.cc.o.d"
  "/root/repo/tests/core/codebook_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/codebook_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/codebook_test.cc.o.d"
  "/root/repo/tests/core/mocap_features_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/mocap_features_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/mocap_features_test.cc.o.d"
  "/root/repo/tests/core/model_io_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/model_io_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/model_io_test.cc.o.d"
  "/root/repo/tests/core/normalizer_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/normalizer_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/normalizer_test.cc.o.d"
  "/root/repo/tests/core/streaming_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/streaming_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/streaming_test.cc.o.d"
  "/root/repo/tests/core/window_features_test.cc" "tests/CMakeFiles/mocemg_tests.dir/core/window_features_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/core/window_features_test.cc.o.d"
  "/root/repo/tests/db/feature_index_test.cc" "tests/CMakeFiles/mocemg_tests.dir/db/feature_index_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/db/feature_index_test.cc.o.d"
  "/root/repo/tests/db/motion_database_test.cc" "tests/CMakeFiles/mocemg_tests.dir/db/motion_database_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/db/motion_database_test.cc.o.d"
  "/root/repo/tests/emg/acquisition_test.cc" "tests/CMakeFiles/mocemg_tests.dir/emg/acquisition_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/emg/acquisition_test.cc.o.d"
  "/root/repo/tests/emg/emg_io_test.cc" "tests/CMakeFiles/mocemg_tests.dir/emg/emg_io_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/emg/emg_io_test.cc.o.d"
  "/root/repo/tests/emg/emg_recording_test.cc" "tests/CMakeFiles/mocemg_tests.dir/emg/emg_recording_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/emg/emg_recording_test.cc.o.d"
  "/root/repo/tests/emg/features_test.cc" "tests/CMakeFiles/mocemg_tests.dir/emg/features_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/emg/features_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/mocemg_tests.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/protocols_test.cc" "tests/CMakeFiles/mocemg_tests.dir/eval/protocols_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/eval/protocols_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/mocemg_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/parser_robustness_test.cc" "tests/CMakeFiles/mocemg_tests.dir/integration/parser_robustness_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/integration/parser_robustness_test.cc.o.d"
  "/root/repo/tests/linalg/eigen_sym_test.cc" "tests/CMakeFiles/mocemg_tests.dir/linalg/eigen_sym_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/linalg/eigen_sym_test.cc.o.d"
  "/root/repo/tests/linalg/lu_test.cc" "tests/CMakeFiles/mocemg_tests.dir/linalg/lu_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/linalg/lu_test.cc.o.d"
  "/root/repo/tests/linalg/matrix_test.cc" "tests/CMakeFiles/mocemg_tests.dir/linalg/matrix_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/linalg/matrix_test.cc.o.d"
  "/root/repo/tests/linalg/svd_test.cc" "tests/CMakeFiles/mocemg_tests.dir/linalg/svd_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/linalg/svd_test.cc.o.d"
  "/root/repo/tests/linalg/vector_ops_test.cc" "tests/CMakeFiles/mocemg_tests.dir/linalg/vector_ops_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/linalg/vector_ops_test.cc.o.d"
  "/root/repo/tests/mocap/local_transform_test.cc" "tests/CMakeFiles/mocemg_tests.dir/mocap/local_transform_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/mocap/local_transform_test.cc.o.d"
  "/root/repo/tests/mocap/motion_sequence_test.cc" "tests/CMakeFiles/mocemg_tests.dir/mocap/motion_sequence_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/mocap/motion_sequence_test.cc.o.d"
  "/root/repo/tests/mocap/skeleton_test.cc" "tests/CMakeFiles/mocemg_tests.dir/mocap/skeleton_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/mocap/skeleton_test.cc.o.d"
  "/root/repo/tests/mocap/trc_io_test.cc" "tests/CMakeFiles/mocemg_tests.dir/mocap/trc_io_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/mocap/trc_io_test.cc.o.d"
  "/root/repo/tests/signal/biquad_test.cc" "tests/CMakeFiles/mocemg_tests.dir/signal/biquad_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/signal/biquad_test.cc.o.d"
  "/root/repo/tests/signal/butterworth_test.cc" "tests/CMakeFiles/mocemg_tests.dir/signal/butterworth_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/signal/butterworth_test.cc.o.d"
  "/root/repo/tests/signal/rectify_test.cc" "tests/CMakeFiles/mocemg_tests.dir/signal/rectify_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/signal/rectify_test.cc.o.d"
  "/root/repo/tests/signal/resample_test.cc" "tests/CMakeFiles/mocemg_tests.dir/signal/resample_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/signal/resample_test.cc.o.d"
  "/root/repo/tests/signal/spectral_test.cc" "tests/CMakeFiles/mocemg_tests.dir/signal/spectral_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/signal/spectral_test.cc.o.d"
  "/root/repo/tests/signal/window_test.cc" "tests/CMakeFiles/mocemg_tests.dir/signal/window_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/signal/window_test.cc.o.d"
  "/root/repo/tests/synth/dataset_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/dataset_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/dataset_test.cc.o.d"
  "/root/repo/tests/synth/emg_synthesizer_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/emg_synthesizer_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/emg_synthesizer_test.cc.o.d"
  "/root/repo/tests/synth/kinematics_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/kinematics_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/kinematics_test.cc.o.d"
  "/root/repo/tests/synth/merge_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/merge_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/merge_test.cc.o.d"
  "/root/repo/tests/synth/motion_classes_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/motion_classes_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/motion_classes_test.cc.o.d"
  "/root/repo/tests/synth/muscle_model_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/muscle_model_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/muscle_model_test.cc.o.d"
  "/root/repo/tests/synth/profiles_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/profiles_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/profiles_test.cc.o.d"
  "/root/repo/tests/synth/trigger_test.cc" "tests/CMakeFiles/mocemg_tests.dir/synth/trigger_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/synth/trigger_test.cc.o.d"
  "/root/repo/tests/util/csv_test.cc" "tests/CMakeFiles/mocemg_tests.dir/util/csv_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/util/csv_test.cc.o.d"
  "/root/repo/tests/util/logging_test.cc" "tests/CMakeFiles/mocemg_tests.dir/util/logging_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/util/logging_test.cc.o.d"
  "/root/repo/tests/util/random_test.cc" "tests/CMakeFiles/mocemg_tests.dir/util/random_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/util/random_test.cc.o.d"
  "/root/repo/tests/util/result_test.cc" "tests/CMakeFiles/mocemg_tests.dir/util/result_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/util/result_test.cc.o.d"
  "/root/repo/tests/util/status_test.cc" "tests/CMakeFiles/mocemg_tests.dir/util/status_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/util/status_test.cc.o.d"
  "/root/repo/tests/util/string_util_test.cc" "tests/CMakeFiles/mocemg_tests.dir/util/string_util_test.cc.o" "gcc" "tests/CMakeFiles/mocemg_tests.dir/util/string_util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mocemg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mocemg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mocemg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mocemg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mocemg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/emg/CMakeFiles/mocemg_emg.dir/DependInfo.cmake"
  "/root/repo/build/src/mocap/CMakeFiles/mocemg_mocap.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/mocemg_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
