# Empty dependencies file for mocemg_cli.
# This may be replaced when dependencies are built.
