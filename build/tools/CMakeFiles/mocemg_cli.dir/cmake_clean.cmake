file(REMOVE_RECURSE
  "CMakeFiles/mocemg_cli.dir/mocemg_cli.cpp.o"
  "CMakeFiles/mocemg_cli.dir/mocemg_cli.cpp.o.d"
  "mocemg_cli"
  "mocemg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
