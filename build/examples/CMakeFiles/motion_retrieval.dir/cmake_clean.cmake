file(REMOVE_RECURSE
  "CMakeFiles/motion_retrieval.dir/motion_retrieval.cpp.o"
  "CMakeFiles/motion_retrieval.dir/motion_retrieval.cpp.o.d"
  "motion_retrieval"
  "motion_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
