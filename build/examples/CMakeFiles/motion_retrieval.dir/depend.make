# Empty dependencies file for motion_retrieval.
# This may be replaced when dependencies are built.
