# Empty compiler generated dependencies file for gait_analysis.
# This may be replaced when dependencies are built.
