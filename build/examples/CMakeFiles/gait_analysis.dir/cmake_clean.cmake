file(REMOVE_RECURSE
  "CMakeFiles/gait_analysis.dir/gait_analysis.cpp.o"
  "CMakeFiles/gait_analysis.dir/gait_analysis.cpp.o.d"
  "gait_analysis"
  "gait_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gait_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
