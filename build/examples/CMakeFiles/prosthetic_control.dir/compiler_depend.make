# Empty compiler generated dependencies file for prosthetic_control.
# This may be replaced when dependencies are built.
