file(REMOVE_RECURSE
  "CMakeFiles/prosthetic_control.dir/prosthetic_control.cpp.o"
  "CMakeFiles/prosthetic_control.dir/prosthetic_control.cpp.o.d"
  "prosthetic_control"
  "prosthetic_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prosthetic_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
