file(REMOVE_RECURSE
  "CMakeFiles/fig3_membership_ranges.dir/fig3_membership_ranges.cpp.o"
  "CMakeFiles/fig3_membership_ranges.dir/fig3_membership_ranges.cpp.o.d"
  "fig3_membership_ranges"
  "fig3_membership_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_membership_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
