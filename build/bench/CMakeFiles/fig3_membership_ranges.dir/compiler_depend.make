# Empty compiler generated dependencies file for fig3_membership_ranges.
# This may be replaced when dependencies are built.
