# Empty dependencies file for abl6_sync_jitter.
# This may be replaced when dependencies are built.
