file(REMOVE_RECURSE
  "CMakeFiles/abl6_sync_jitter.dir/abl6_sync_jitter.cpp.o"
  "CMakeFiles/abl6_sync_jitter.dir/abl6_sync_jitter.cpp.o.d"
  "abl6_sync_jitter"
  "abl6_sync_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl6_sync_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
