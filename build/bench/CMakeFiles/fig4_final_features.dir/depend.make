# Empty dependencies file for fig4_final_features.
# This may be replaced when dependencies are built.
