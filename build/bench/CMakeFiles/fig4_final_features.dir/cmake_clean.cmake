file(REMOVE_RECURSE
  "CMakeFiles/fig4_final_features.dir/fig4_final_features.cpp.o"
  "CMakeFiles/fig4_final_features.dir/fig4_final_features.cpp.o.d"
  "fig4_final_features"
  "fig4_final_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_final_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
