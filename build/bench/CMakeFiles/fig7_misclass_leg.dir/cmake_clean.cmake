file(REMOVE_RECURSE
  "CMakeFiles/fig7_misclass_leg.dir/fig7_misclass_leg.cpp.o"
  "CMakeFiles/fig7_misclass_leg.dir/fig7_misclass_leg.cpp.o.d"
  "fig7_misclass_leg"
  "fig7_misclass_leg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_misclass_leg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
