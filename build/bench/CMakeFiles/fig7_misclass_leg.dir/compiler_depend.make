# Empty compiler generated dependencies file for fig7_misclass_leg.
# This may be replaced when dependencies are built.
