# Empty compiler generated dependencies file for micro_fcm.
# This may be replaced when dependencies are built.
