file(REMOVE_RECURSE
  "CMakeFiles/micro_fcm.dir/micro_fcm.cpp.o"
  "CMakeFiles/micro_fcm.dir/micro_fcm.cpp.o.d"
  "micro_fcm"
  "micro_fcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
