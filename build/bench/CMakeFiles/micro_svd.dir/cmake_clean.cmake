file(REMOVE_RECURSE
  "CMakeFiles/micro_svd.dir/micro_svd.cpp.o"
  "CMakeFiles/micro_svd.dir/micro_svd.cpp.o.d"
  "micro_svd"
  "micro_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
