# Empty dependencies file for micro_svd.
# This may be replaced when dependencies are built.
