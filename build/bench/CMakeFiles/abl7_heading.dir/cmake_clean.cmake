file(REMOVE_RECURSE
  "CMakeFiles/abl7_heading.dir/abl7_heading.cpp.o"
  "CMakeFiles/abl7_heading.dir/abl7_heading.cpp.o.d"
  "abl7_heading"
  "abl7_heading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl7_heading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
