# Empty dependencies file for abl7_heading.
# This may be replaced when dependencies are built.
