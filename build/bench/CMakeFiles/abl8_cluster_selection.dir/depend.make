# Empty dependencies file for abl8_cluster_selection.
# This may be replaced when dependencies are built.
