file(REMOVE_RECURSE
  "CMakeFiles/abl8_cluster_selection.dir/abl8_cluster_selection.cpp.o"
  "CMakeFiles/abl8_cluster_selection.dir/abl8_cluster_selection.cpp.o.d"
  "abl8_cluster_selection"
  "abl8_cluster_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl8_cluster_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
