file(REMOVE_RECURSE
  "CMakeFiles/abl5_emg_features.dir/abl5_emg_features.cpp.o"
  "CMakeFiles/abl5_emg_features.dir/abl5_emg_features.cpp.o.d"
  "abl5_emg_features"
  "abl5_emg_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_emg_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
