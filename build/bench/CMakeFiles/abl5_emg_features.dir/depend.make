# Empty dependencies file for abl5_emg_features.
# This may be replaced when dependencies are built.
