# Empty dependencies file for fig6_misclass_hand.
# This may be replaced when dependencies are built.
