file(REMOVE_RECURSE
  "CMakeFiles/fig6_misclass_hand.dir/fig6_misclass_hand.cpp.o"
  "CMakeFiles/fig6_misclass_hand.dir/fig6_misclass_hand.cpp.o.d"
  "fig6_misclass_hand"
  "fig6_misclass_hand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_misclass_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
