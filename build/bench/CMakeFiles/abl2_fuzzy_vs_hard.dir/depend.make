# Empty dependencies file for abl2_fuzzy_vs_hard.
# This may be replaced when dependencies are built.
