file(REMOVE_RECURSE
  "CMakeFiles/abl2_fuzzy_vs_hard.dir/abl2_fuzzy_vs_hard.cpp.o"
  "CMakeFiles/abl2_fuzzy_vs_hard.dir/abl2_fuzzy_vs_hard.cpp.o.d"
  "abl2_fuzzy_vs_hard"
  "abl2_fuzzy_vs_hard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_fuzzy_vs_hard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
