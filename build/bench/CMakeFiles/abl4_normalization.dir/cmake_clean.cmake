file(REMOVE_RECURSE
  "CMakeFiles/abl4_normalization.dir/abl4_normalization.cpp.o"
  "CMakeFiles/abl4_normalization.dir/abl4_normalization.cpp.o.d"
  "abl4_normalization"
  "abl4_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
