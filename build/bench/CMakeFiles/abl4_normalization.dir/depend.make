# Empty dependencies file for abl4_normalization.
# This may be replaced when dependencies are built.
