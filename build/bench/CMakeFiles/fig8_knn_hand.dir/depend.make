# Empty dependencies file for fig8_knn_hand.
# This may be replaced when dependencies are built.
