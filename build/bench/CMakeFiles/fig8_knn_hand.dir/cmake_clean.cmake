file(REMOVE_RECURSE
  "CMakeFiles/fig8_knn_hand.dir/fig8_knn_hand.cpp.o"
  "CMakeFiles/fig8_knn_hand.dir/fig8_knn_hand.cpp.o.d"
  "fig8_knn_hand"
  "fig8_knn_hand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_knn_hand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
