
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_knn_leg.cpp" "bench/CMakeFiles/fig9_knn_leg.dir/fig9_knn_leg.cpp.o" "gcc" "bench/CMakeFiles/fig9_knn_leg.dir/fig9_knn_leg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mocemg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/mocemg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mocemg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/mocemg_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mocemg_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/emg/CMakeFiles/mocemg_emg.dir/DependInfo.cmake"
  "/root/repo/build/src/mocap/CMakeFiles/mocemg_mocap.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/mocemg_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
