# Empty dependencies file for fig9_knn_leg.
# This may be replaced when dependencies are built.
