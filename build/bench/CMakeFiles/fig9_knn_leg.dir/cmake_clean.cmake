file(REMOVE_RECURSE
  "CMakeFiles/fig9_knn_leg.dir/fig9_knn_leg.cpp.o"
  "CMakeFiles/fig9_knn_leg.dir/fig9_knn_leg.cpp.o.d"
  "fig9_knn_leg"
  "fig9_knn_leg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_knn_leg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
