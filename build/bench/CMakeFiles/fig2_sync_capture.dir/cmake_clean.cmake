file(REMOVE_RECURSE
  "CMakeFiles/fig2_sync_capture.dir/fig2_sync_capture.cpp.o"
  "CMakeFiles/fig2_sync_capture.dir/fig2_sync_capture.cpp.o.d"
  "fig2_sync_capture"
  "fig2_sync_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sync_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
