# Empty compiler generated dependencies file for fig2_sync_capture.
# This may be replaced when dependencies are built.
