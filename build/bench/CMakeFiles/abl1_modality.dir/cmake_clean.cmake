file(REMOVE_RECURSE
  "CMakeFiles/abl1_modality.dir/abl1_modality.cpp.o"
  "CMakeFiles/abl1_modality.dir/abl1_modality.cpp.o.d"
  "abl1_modality"
  "abl1_modality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_modality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
