# Empty compiler generated dependencies file for abl1_modality.
# This may be replaced when dependencies are built.
