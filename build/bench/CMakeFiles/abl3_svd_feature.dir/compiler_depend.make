# Empty compiler generated dependencies file for abl3_svd_feature.
# This may be replaced when dependencies are built.
