file(REMOVE_RECURSE
  "CMakeFiles/abl3_svd_feature.dir/abl3_svd_feature.cpp.o"
  "CMakeFiles/abl3_svd_feature.dir/abl3_svd_feature.cpp.o.d"
  "abl3_svd_feature"
  "abl3_svd_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_svd_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
