file(REMOVE_RECURSE
  "CMakeFiles/mocemg_synth.dir/dataset.cc.o"
  "CMakeFiles/mocemg_synth.dir/dataset.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/emg_synthesizer.cc.o"
  "CMakeFiles/mocemg_synth.dir/emg_synthesizer.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/kinematics.cc.o"
  "CMakeFiles/mocemg_synth.dir/kinematics.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/merge.cc.o"
  "CMakeFiles/mocemg_synth.dir/merge.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/motion_classes.cc.o"
  "CMakeFiles/mocemg_synth.dir/motion_classes.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/muscle_model.cc.o"
  "CMakeFiles/mocemg_synth.dir/muscle_model.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/profiles.cc.o"
  "CMakeFiles/mocemg_synth.dir/profiles.cc.o.d"
  "CMakeFiles/mocemg_synth.dir/trigger.cc.o"
  "CMakeFiles/mocemg_synth.dir/trigger.cc.o.d"
  "libmocemg_synth.a"
  "libmocemg_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
