file(REMOVE_RECURSE
  "libmocemg_synth.a"
)
