# Empty compiler generated dependencies file for mocemg_synth.
# This may be replaced when dependencies are built.
