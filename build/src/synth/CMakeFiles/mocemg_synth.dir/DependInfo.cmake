
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/dataset.cc" "src/synth/CMakeFiles/mocemg_synth.dir/dataset.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/dataset.cc.o.d"
  "/root/repo/src/synth/emg_synthesizer.cc" "src/synth/CMakeFiles/mocemg_synth.dir/emg_synthesizer.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/emg_synthesizer.cc.o.d"
  "/root/repo/src/synth/kinematics.cc" "src/synth/CMakeFiles/mocemg_synth.dir/kinematics.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/kinematics.cc.o.d"
  "/root/repo/src/synth/merge.cc" "src/synth/CMakeFiles/mocemg_synth.dir/merge.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/merge.cc.o.d"
  "/root/repo/src/synth/motion_classes.cc" "src/synth/CMakeFiles/mocemg_synth.dir/motion_classes.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/motion_classes.cc.o.d"
  "/root/repo/src/synth/muscle_model.cc" "src/synth/CMakeFiles/mocemg_synth.dir/muscle_model.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/muscle_model.cc.o.d"
  "/root/repo/src/synth/profiles.cc" "src/synth/CMakeFiles/mocemg_synth.dir/profiles.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/profiles.cc.o.d"
  "/root/repo/src/synth/trigger.cc" "src/synth/CMakeFiles/mocemg_synth.dir/trigger.cc.o" "gcc" "src/synth/CMakeFiles/mocemg_synth.dir/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/mocemg_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/mocap/CMakeFiles/mocemg_mocap.dir/DependInfo.cmake"
  "/root/repo/build/src/emg/CMakeFiles/mocemg_emg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
