file(REMOVE_RECURSE
  "libmocemg_emg.a"
)
