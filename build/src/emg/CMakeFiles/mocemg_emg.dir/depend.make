# Empty dependencies file for mocemg_emg.
# This may be replaced when dependencies are built.
