
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emg/acquisition.cc" "src/emg/CMakeFiles/mocemg_emg.dir/acquisition.cc.o" "gcc" "src/emg/CMakeFiles/mocemg_emg.dir/acquisition.cc.o.d"
  "/root/repo/src/emg/emg_io.cc" "src/emg/CMakeFiles/mocemg_emg.dir/emg_io.cc.o" "gcc" "src/emg/CMakeFiles/mocemg_emg.dir/emg_io.cc.o.d"
  "/root/repo/src/emg/emg_recording.cc" "src/emg/CMakeFiles/mocemg_emg.dir/emg_recording.cc.o" "gcc" "src/emg/CMakeFiles/mocemg_emg.dir/emg_recording.cc.o.d"
  "/root/repo/src/emg/features.cc" "src/emg/CMakeFiles/mocemg_emg.dir/features.cc.o" "gcc" "src/emg/CMakeFiles/mocemg_emg.dir/features.cc.o.d"
  "/root/repo/src/emg/muscle.cc" "src/emg/CMakeFiles/mocemg_emg.dir/muscle.cc.o" "gcc" "src/emg/CMakeFiles/mocemg_emg.dir/muscle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mocap/CMakeFiles/mocemg_mocap.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/mocemg_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
