file(REMOVE_RECURSE
  "CMakeFiles/mocemg_emg.dir/acquisition.cc.o"
  "CMakeFiles/mocemg_emg.dir/acquisition.cc.o.d"
  "CMakeFiles/mocemg_emg.dir/emg_io.cc.o"
  "CMakeFiles/mocemg_emg.dir/emg_io.cc.o.d"
  "CMakeFiles/mocemg_emg.dir/emg_recording.cc.o"
  "CMakeFiles/mocemg_emg.dir/emg_recording.cc.o.d"
  "CMakeFiles/mocemg_emg.dir/features.cc.o"
  "CMakeFiles/mocemg_emg.dir/features.cc.o.d"
  "CMakeFiles/mocemg_emg.dir/muscle.cc.o"
  "CMakeFiles/mocemg_emg.dir/muscle.cc.o.d"
  "libmocemg_emg.a"
  "libmocemg_emg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_emg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
