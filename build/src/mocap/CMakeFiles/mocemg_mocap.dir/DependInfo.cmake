
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mocap/local_transform.cc" "src/mocap/CMakeFiles/mocemg_mocap.dir/local_transform.cc.o" "gcc" "src/mocap/CMakeFiles/mocemg_mocap.dir/local_transform.cc.o.d"
  "/root/repo/src/mocap/motion_sequence.cc" "src/mocap/CMakeFiles/mocemg_mocap.dir/motion_sequence.cc.o" "gcc" "src/mocap/CMakeFiles/mocemg_mocap.dir/motion_sequence.cc.o.d"
  "/root/repo/src/mocap/skeleton.cc" "src/mocap/CMakeFiles/mocemg_mocap.dir/skeleton.cc.o" "gcc" "src/mocap/CMakeFiles/mocemg_mocap.dir/skeleton.cc.o.d"
  "/root/repo/src/mocap/trc_io.cc" "src/mocap/CMakeFiles/mocemg_mocap.dir/trc_io.cc.o" "gcc" "src/mocap/CMakeFiles/mocemg_mocap.dir/trc_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
