# Empty compiler generated dependencies file for mocemg_mocap.
# This may be replaced when dependencies are built.
