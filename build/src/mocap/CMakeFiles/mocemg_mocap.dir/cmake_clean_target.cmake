file(REMOVE_RECURSE
  "libmocemg_mocap.a"
)
