file(REMOVE_RECURSE
  "CMakeFiles/mocemg_mocap.dir/local_transform.cc.o"
  "CMakeFiles/mocemg_mocap.dir/local_transform.cc.o.d"
  "CMakeFiles/mocemg_mocap.dir/motion_sequence.cc.o"
  "CMakeFiles/mocemg_mocap.dir/motion_sequence.cc.o.d"
  "CMakeFiles/mocemg_mocap.dir/skeleton.cc.o"
  "CMakeFiles/mocemg_mocap.dir/skeleton.cc.o.d"
  "CMakeFiles/mocemg_mocap.dir/trc_io.cc.o"
  "CMakeFiles/mocemg_mocap.dir/trc_io.cc.o.d"
  "libmocemg_mocap.a"
  "libmocemg_mocap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_mocap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
