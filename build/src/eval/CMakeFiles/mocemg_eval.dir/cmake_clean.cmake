file(REMOVE_RECURSE
  "CMakeFiles/mocemg_eval.dir/metrics.cc.o"
  "CMakeFiles/mocemg_eval.dir/metrics.cc.o.d"
  "CMakeFiles/mocemg_eval.dir/protocols.cc.o"
  "CMakeFiles/mocemg_eval.dir/protocols.cc.o.d"
  "CMakeFiles/mocemg_eval.dir/sweep.cc.o"
  "CMakeFiles/mocemg_eval.dir/sweep.cc.o.d"
  "libmocemg_eval.a"
  "libmocemg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
