file(REMOVE_RECURSE
  "libmocemg_eval.a"
)
