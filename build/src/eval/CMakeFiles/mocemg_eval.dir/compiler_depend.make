# Empty compiler generated dependencies file for mocemg_eval.
# This may be replaced when dependencies are built.
