file(REMOVE_RECURSE
  "libmocemg_signal.a"
)
