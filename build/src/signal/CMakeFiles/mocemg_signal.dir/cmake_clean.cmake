file(REMOVE_RECURSE
  "CMakeFiles/mocemg_signal.dir/biquad.cc.o"
  "CMakeFiles/mocemg_signal.dir/biquad.cc.o.d"
  "CMakeFiles/mocemg_signal.dir/butterworth.cc.o"
  "CMakeFiles/mocemg_signal.dir/butterworth.cc.o.d"
  "CMakeFiles/mocemg_signal.dir/rectify.cc.o"
  "CMakeFiles/mocemg_signal.dir/rectify.cc.o.d"
  "CMakeFiles/mocemg_signal.dir/resample.cc.o"
  "CMakeFiles/mocemg_signal.dir/resample.cc.o.d"
  "CMakeFiles/mocemg_signal.dir/spectral.cc.o"
  "CMakeFiles/mocemg_signal.dir/spectral.cc.o.d"
  "CMakeFiles/mocemg_signal.dir/window.cc.o"
  "CMakeFiles/mocemg_signal.dir/window.cc.o.d"
  "libmocemg_signal.a"
  "libmocemg_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
