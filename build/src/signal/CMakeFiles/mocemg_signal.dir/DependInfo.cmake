
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/biquad.cc" "src/signal/CMakeFiles/mocemg_signal.dir/biquad.cc.o" "gcc" "src/signal/CMakeFiles/mocemg_signal.dir/biquad.cc.o.d"
  "/root/repo/src/signal/butterworth.cc" "src/signal/CMakeFiles/mocemg_signal.dir/butterworth.cc.o" "gcc" "src/signal/CMakeFiles/mocemg_signal.dir/butterworth.cc.o.d"
  "/root/repo/src/signal/rectify.cc" "src/signal/CMakeFiles/mocemg_signal.dir/rectify.cc.o" "gcc" "src/signal/CMakeFiles/mocemg_signal.dir/rectify.cc.o.d"
  "/root/repo/src/signal/resample.cc" "src/signal/CMakeFiles/mocemg_signal.dir/resample.cc.o" "gcc" "src/signal/CMakeFiles/mocemg_signal.dir/resample.cc.o.d"
  "/root/repo/src/signal/spectral.cc" "src/signal/CMakeFiles/mocemg_signal.dir/spectral.cc.o" "gcc" "src/signal/CMakeFiles/mocemg_signal.dir/spectral.cc.o.d"
  "/root/repo/src/signal/window.cc" "src/signal/CMakeFiles/mocemg_signal.dir/window.cc.o" "gcc" "src/signal/CMakeFiles/mocemg_signal.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
