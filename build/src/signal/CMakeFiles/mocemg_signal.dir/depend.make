# Empty dependencies file for mocemg_signal.
# This may be replaced when dependencies are built.
