file(REMOVE_RECURSE
  "CMakeFiles/mocemg_core.dir/classifier.cc.o"
  "CMakeFiles/mocemg_core.dir/classifier.cc.o.d"
  "CMakeFiles/mocemg_core.dir/codebook.cc.o"
  "CMakeFiles/mocemg_core.dir/codebook.cc.o.d"
  "CMakeFiles/mocemg_core.dir/mocap_features.cc.o"
  "CMakeFiles/mocemg_core.dir/mocap_features.cc.o.d"
  "CMakeFiles/mocemg_core.dir/model_io.cc.o"
  "CMakeFiles/mocemg_core.dir/model_io.cc.o.d"
  "CMakeFiles/mocemg_core.dir/normalizer.cc.o"
  "CMakeFiles/mocemg_core.dir/normalizer.cc.o.d"
  "CMakeFiles/mocemg_core.dir/streaming.cc.o"
  "CMakeFiles/mocemg_core.dir/streaming.cc.o.d"
  "CMakeFiles/mocemg_core.dir/window_features.cc.o"
  "CMakeFiles/mocemg_core.dir/window_features.cc.o.d"
  "libmocemg_core.a"
  "libmocemg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
