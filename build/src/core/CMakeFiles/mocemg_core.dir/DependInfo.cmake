
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/mocemg_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/codebook.cc" "src/core/CMakeFiles/mocemg_core.dir/codebook.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/codebook.cc.o.d"
  "/root/repo/src/core/mocap_features.cc" "src/core/CMakeFiles/mocemg_core.dir/mocap_features.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/mocap_features.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/mocemg_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/normalizer.cc" "src/core/CMakeFiles/mocemg_core.dir/normalizer.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/normalizer.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/mocemg_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/streaming.cc.o.d"
  "/root/repo/src/core/window_features.cc" "src/core/CMakeFiles/mocemg_core.dir/window_features.cc.o" "gcc" "src/core/CMakeFiles/mocemg_core.dir/window_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/mocemg_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/mocap/CMakeFiles/mocemg_mocap.dir/DependInfo.cmake"
  "/root/repo/build/src/emg/CMakeFiles/mocemg_emg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mocemg_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
