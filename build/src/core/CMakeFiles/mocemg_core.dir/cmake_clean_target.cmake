file(REMOVE_RECURSE
  "libmocemg_core.a"
)
