# Empty compiler generated dependencies file for mocemg_core.
# This may be replaced when dependencies are built.
