file(REMOVE_RECURSE
  "libmocemg_linalg.a"
)
