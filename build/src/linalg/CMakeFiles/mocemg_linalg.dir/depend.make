# Empty dependencies file for mocemg_linalg.
# This may be replaced when dependencies are built.
