file(REMOVE_RECURSE
  "CMakeFiles/mocemg_linalg.dir/eigen_sym.cc.o"
  "CMakeFiles/mocemg_linalg.dir/eigen_sym.cc.o.d"
  "CMakeFiles/mocemg_linalg.dir/lu.cc.o"
  "CMakeFiles/mocemg_linalg.dir/lu.cc.o.d"
  "CMakeFiles/mocemg_linalg.dir/matrix.cc.o"
  "CMakeFiles/mocemg_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/mocemg_linalg.dir/svd.cc.o"
  "CMakeFiles/mocemg_linalg.dir/svd.cc.o.d"
  "CMakeFiles/mocemg_linalg.dir/vector_ops.cc.o"
  "CMakeFiles/mocemg_linalg.dir/vector_ops.cc.o.d"
  "libmocemg_linalg.a"
  "libmocemg_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
