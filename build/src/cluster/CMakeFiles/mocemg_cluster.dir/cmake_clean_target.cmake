file(REMOVE_RECURSE
  "libmocemg_cluster.a"
)
