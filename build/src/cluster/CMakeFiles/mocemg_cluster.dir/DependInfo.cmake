
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/fcm.cc" "src/cluster/CMakeFiles/mocemg_cluster.dir/fcm.cc.o" "gcc" "src/cluster/CMakeFiles/mocemg_cluster.dir/fcm.cc.o.d"
  "/root/repo/src/cluster/gustafson_kessel.cc" "src/cluster/CMakeFiles/mocemg_cluster.dir/gustafson_kessel.cc.o" "gcc" "src/cluster/CMakeFiles/mocemg_cluster.dir/gustafson_kessel.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/mocemg_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/mocemg_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/selection.cc" "src/cluster/CMakeFiles/mocemg_cluster.dir/selection.cc.o" "gcc" "src/cluster/CMakeFiles/mocemg_cluster.dir/selection.cc.o.d"
  "/root/repo/src/cluster/validity.cc" "src/cluster/CMakeFiles/mocemg_cluster.dir/validity.cc.o" "gcc" "src/cluster/CMakeFiles/mocemg_cluster.dir/validity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
