file(REMOVE_RECURSE
  "CMakeFiles/mocemg_cluster.dir/fcm.cc.o"
  "CMakeFiles/mocemg_cluster.dir/fcm.cc.o.d"
  "CMakeFiles/mocemg_cluster.dir/gustafson_kessel.cc.o"
  "CMakeFiles/mocemg_cluster.dir/gustafson_kessel.cc.o.d"
  "CMakeFiles/mocemg_cluster.dir/kmeans.cc.o"
  "CMakeFiles/mocemg_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/mocemg_cluster.dir/selection.cc.o"
  "CMakeFiles/mocemg_cluster.dir/selection.cc.o.d"
  "CMakeFiles/mocemg_cluster.dir/validity.cc.o"
  "CMakeFiles/mocemg_cluster.dir/validity.cc.o.d"
  "libmocemg_cluster.a"
  "libmocemg_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
