# Empty compiler generated dependencies file for mocemg_cluster.
# This may be replaced when dependencies are built.
