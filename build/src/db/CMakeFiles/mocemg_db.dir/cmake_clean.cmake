file(REMOVE_RECURSE
  "CMakeFiles/mocemg_db.dir/feature_index.cc.o"
  "CMakeFiles/mocemg_db.dir/feature_index.cc.o.d"
  "CMakeFiles/mocemg_db.dir/motion_database.cc.o"
  "CMakeFiles/mocemg_db.dir/motion_database.cc.o.d"
  "libmocemg_db.a"
  "libmocemg_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
