# Empty dependencies file for mocemg_db.
# This may be replaced when dependencies are built.
