
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/feature_index.cc" "src/db/CMakeFiles/mocemg_db.dir/feature_index.cc.o" "gcc" "src/db/CMakeFiles/mocemg_db.dir/feature_index.cc.o.d"
  "/root/repo/src/db/motion_database.cc" "src/db/CMakeFiles/mocemg_db.dir/motion_database.cc.o" "gcc" "src/db/CMakeFiles/mocemg_db.dir/motion_database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mocemg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mocemg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mocemg_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
