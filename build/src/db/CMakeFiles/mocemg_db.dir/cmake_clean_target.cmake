file(REMOVE_RECURSE
  "libmocemg_db.a"
)
