file(REMOVE_RECURSE
  "libmocemg_util.a"
)
