# Empty compiler generated dependencies file for mocemg_util.
# This may be replaced when dependencies are built.
