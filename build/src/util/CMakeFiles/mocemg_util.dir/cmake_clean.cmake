file(REMOVE_RECURSE
  "CMakeFiles/mocemg_util.dir/csv.cc.o"
  "CMakeFiles/mocemg_util.dir/csv.cc.o.d"
  "CMakeFiles/mocemg_util.dir/logging.cc.o"
  "CMakeFiles/mocemg_util.dir/logging.cc.o.d"
  "CMakeFiles/mocemg_util.dir/random.cc.o"
  "CMakeFiles/mocemg_util.dir/random.cc.o.d"
  "CMakeFiles/mocemg_util.dir/status.cc.o"
  "CMakeFiles/mocemg_util.dir/status.cc.o.d"
  "CMakeFiles/mocemg_util.dir/string_util.cc.o"
  "CMakeFiles/mocemg_util.dir/string_util.cc.o.d"
  "libmocemg_util.a"
  "libmocemg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocemg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
