// mocemg — command-line front end for the library.
//
// Subcommands:
//   train    --manifest <csv> --model <out> [--clusters N] [--window MS]
//            [--hop MS] [--kmeans] [--no-emg | --no-mocap]
//   classify --model <file> --trc <file> --emg <file> [--k N]
//   info     --model <file>
//   serve-bench [--records N] [--dim D] [--queries Q] [--unique U]
//               [--k K] [--batch B] [--threads 1,2,8] [--seed S] [--json]
//               [--deadline-us N] [--watermark N] [--snapshot <path>]
//               [--shards N] [--pipeline D] [--bits 8|4]
//   kernel-info [--json]       dispatch report + backend equivalence gate
//   coarse-bench [--records N] [--dim D] [--queries Q] [--k K]
//               [--seed S] [--json]   8-bit vs 4-bit coarse-tier A/B
//
// Every subcommand accepts --kernel {auto,scalar,avx2,avx512,neon} to
// force the SIMD kernel backend (same semantics as MOCEMG_KERNEL, but
// forcing an unusable backend is a hard error here), and
// --exact-precision {f64,f32} to pick the exact-scan tier (overrides
// MOCEMG_EXACT_PRECISION; an unknown name is a hard error).
//
// The manifest is a CSV with header `trc,emg,label,label_name`; each row
// names one captured motion: a TRC marker file, an EMG CSV (raw, with a
// sample_rate_hz comment), its integer class label and class name.
//
// Example session:
//   mocemg_cli train --manifest lab/session1.csv --model hand.model
//   mocemg_cli classify --model hand.model --trc q.trc --emg q.csv --k 5

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/model_io.h"
#include "db/feature_index.h"
#include "db/index_snapshot.h"
#include "db/motion_database.h"
#include "db/query_server.h"
#include "db/sharded_index.h"
#include "emg/emg_io.h"
#include "mocap/trc_io.h"
#include "util/csv.h"
#include "util/kernel_dispatch.h"
#include "util/logging.h"
#include "util/macros.h"
#include "util/quant_kernels.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace mocemg;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mocemg_cli train    --manifest <csv> --model <out>\n"
               "                      [--clusters N] [--window MS] "
               "[--hop MS] [--kmeans] [--no-emg | --no-mocap]\n"
               "  mocemg_cli classify --model <file> --trc <file> "
               "--emg <file> [--k N]\n"
               "  mocemg_cli info     --model <file>\n"
               "  mocemg_cli serve-bench [--records N] [--dim D] "
               "[--queries Q] [--unique U]\n"
               "                      [--k K] [--batch B] "
               "[--threads 1,2,8] [--seed S] [--json]\n"
               "                      [--deadline-us N] [--watermark N] "
               "[--snapshot <path>]\n"
               "                      [--shards N] [--pipeline D] "
               "[--bits 8|4]\n"
               "  mocemg_cli kernel-info [--json]\n"
               "  mocemg_cli coarse-bench [--records N] [--dim D] "
               "[--queries Q] [--k K]\n"
               "                      [--seed S] [--json]\n"
               "  (any subcommand) --kernel auto|scalar|avx2|avx512|neon\n"
               "  (any subcommand) --exact-precision f64|f32\n");
  return 2;
}

/// Resolved from --exact-precision in main(); kDefault defers to
/// MOCEMG_EXACT_PRECISION and then f64 (env < options < CLI).
ExactPrecision g_cli_exact_precision = ExactPrecision::kDefault;

/// Pulls `--flag value` pairs out of argv; returns empty for missing.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  std::string Get(const std::string& flag,
                  const std::string& fallback = "") const {
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == flag) return tokens_[i + 1];
    }
    return fallback;
  }

  bool Has(const std::string& flag) const {
    for (const auto& t : tokens_) {
      if (t == flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> tokens_;
};

Result<std::vector<LabeledMotion>> LoadManifest(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(CsvTable table, CsvTable::FromFile(path));
  MOCEMG_ASSIGN_OR_RETURN(size_t trc_col, table.ColumnIndex("trc"));
  MOCEMG_ASSIGN_OR_RETURN(size_t emg_col, table.ColumnIndex("emg"));
  MOCEMG_ASSIGN_OR_RETURN(size_t label_col, table.ColumnIndex("label"));
  MOCEMG_ASSIGN_OR_RETURN(size_t name_col,
                          table.ColumnIndex("label_name"));
  std::vector<LabeledMotion> motions;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.rows()[r];
    LabeledMotion m;
    MOCEMG_ASSIGN_OR_RETURN(m.mocap, ReadTrcFile(row[trc_col]));
    MOCEMG_ASSIGN_OR_RETURN(m.emg, ReadEmgCsvFile(row[emg_col]));
    MOCEMG_ASSIGN_OR_RETURN(int64_t label, ParseInt(row[label_col]));
    m.label = static_cast<size_t>(label);
    m.label_name = row[name_col];
    motions.push_back(std::move(m));
  }
  if (motions.empty()) {
    return Status::InvalidArgument("manifest lists no motions");
  }
  return motions;
}

int RunTrain(const Args& args) {
  const std::string manifest = args.Get("--manifest");
  const std::string model_path = args.Get("--model");
  if (manifest.empty() || model_path.empty()) return Usage();

  auto motions = LoadManifest(manifest);
  if (!motions.ok()) return Fail(motions.status());
  std::printf("loaded %zu motions from %s\n", motions->size(),
              manifest.c_str());

  ClassifierOptions options;
  auto clusters = ParseInt(args.Get("--clusters", "15"));
  auto window = ParseDouble(args.Get("--window", "100"));
  auto hop = ParseDouble(args.Get("--hop", "50"));
  if (!clusters.ok()) return Fail(clusters.status());
  if (!window.ok()) return Fail(window.status());
  if (!hop.ok()) return Fail(hop.status());
  options.fcm.num_clusters = static_cast<size_t>(*clusters);
  options.features.window_ms = *window;
  options.features.hop_ms = *hop;
  if (args.Has("--kmeans")) {
    options.cluster_method = ClusterMethod::kKmeansHard;
  }
  if (args.Has("--no-emg")) options.features.use_emg = false;
  if (args.Has("--no-mocap")) options.features.use_mocap = false;

  auto clf = MotionClassifier::Train(*motions, options);
  if (!clf.ok()) return Fail(clf.status());
  Status save = SaveClassifier(*clf, model_path);
  if (!save.ok()) return Fail(save);
  std::printf("trained c=%zu, %zu-d final features; model -> %s\n",
              clf->codebook().num_clusters(),
              clf->final_features().cols(), model_path.c_str());
  return 0;
}

int RunClassify(const Args& args) {
  const std::string model_path = args.Get("--model");
  const std::string trc = args.Get("--trc");
  const std::string emg = args.Get("--emg");
  if (model_path.empty() || trc.empty() || emg.empty()) return Usage();
  auto k = ParseInt(args.Get("--k", "1"));
  if (!k.ok() || *k < 1) return Usage();

  auto model = LoadClassifier(model_path);
  if (!model.ok()) return Fail(model.status());
  auto mocap = ReadTrcFile(trc);
  if (!mocap.ok()) return Fail(mocap.status());
  auto recording = ReadEmgCsvFile(emg);
  if (!recording.ok()) return Fail(recording.status());

  auto feature = model->Featurize(*mocap, *recording);
  if (!feature.ok()) return Fail(feature.status());
  auto matches =
      model->NearestNeighbors(*feature, static_cast<size_t>(*k));
  if (!matches.ok()) return Fail(matches.status());

  std::printf("prediction: %s (label %zu)\n",
              model->label_names()[(*matches)[0].index].c_str(),
              (*matches)[0].label);
  for (const MotionMatch& m : *matches) {
    std::printf("  match %-16s label=%zu d=%.4f\n",
                model->label_names()[m.index].c_str(), m.label,
                m.distance);
  }
  return 0;
}

int RunInfo(const Args& args) {
  const std::string model_path = args.Get("--model");
  if (model_path.empty()) return Usage();
  auto model = LoadClassifier(model_path);
  if (!model.ok()) return Fail(model.status());
  const ClassifierOptions& o = model->options();
  std::printf("model: %s\n", model_path.c_str());
  std::printf("  motions:        %zu\n", model->num_motions());
  std::printf("  clusters:       %zu (m=%.2f, %s)\n",
              model->codebook().num_clusters(),
              model->codebook().fuzziness(),
              o.cluster_method == ClusterMethod::kFuzzyCMeans
                  ? "fuzzy c-means"
                  : "k-means hard");
  std::printf("  window:         %.0f ms (hop %.0f ms)\n",
              o.features.window_ms, o.features.hop_ms);
  std::printf("  modalities:     %s%s\n",
              o.features.use_emg ? "emg " : "",
              o.features.use_mocap ? "mocap" : "");
  std::printf("  window dim:     %zu\n", model->codebook().dimension());
  std::printf("  final dim:      %zu\n", model->final_features().cols());
  // Class inventory.
  std::vector<std::string> seen;
  for (size_t i = 0; i < model->num_motions(); ++i) {
    const std::string& name = model->label_names()[i];
    bool dup = false;
    for (const auto& s : seen) dup |= (s == name);
    if (!dup) seen.push_back(name);
  }
  std::printf("  classes (%zu):", seen.size());
  for (const auto& s : seen) std::printf(" %s", s.c_str());
  std::printf("\n");
  return 0;
}

// --- serve-bench: synthetic serving-throughput measurement ------------
//
// Builds a clustered synthetic database, then measures the same query
// stream three ways: per-request linear scan, per-request quantized
// index, and the batched QueryServer (index + cache) at each requested
// thread budget. The served results are checked bit-identical to the
// per-request scan before any number is reported. run_benchmarks.sh
// consumes the --json form for BENCH_pr5.json's "serving" section.

using BenchClock = std::chrono::steady_clock;

double SecondsSince(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

MotionDatabase MakeServeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    std::vector<double> f(dim, 0.0);
    Rng cls(seed ^ (r.label * 0x9E37ULL));
    for (int k = 0; k < 4; ++k) {
      f[cls.NextBelow(dim)] = 0.4 + 0.5 * rng.NextDouble();
    }
    r.feature = std::move(f);
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  return db;
}

/// `total` requests drawn round-robin from `unique` distinct vectors —
/// the repeat structure the result cache exists for.
std::vector<std::vector<double>> MakeServeWorkload(size_t total,
                                                   size_t unique,
                                                   size_t dim,
                                                   uint64_t seed) {
  std::vector<std::vector<double>> uniq(unique);
  for (size_t i = 0; i < unique; ++i) {
    Rng rng(seed + i);
    std::vector<double> q(dim, 0.0);
    for (int k = 0; k < 4; ++k) q[rng.NextBelow(dim)] = rng.NextDouble();
    uniq[i] = std::move(q);
  }
  std::vector<std::vector<double>> workload(total);
  for (size_t i = 0; i < total; ++i) workload[i] = uniq[i % unique];
  return workload;
}

double PercentileUs(std::vector<double> latencies_s, double pct) {
  if (latencies_s.empty()) return 0.0;
  std::sort(latencies_s.begin(), latencies_s.end());
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   double(latencies_s.size()));
  if (idx >= latencies_s.size()) idx = latencies_s.size() - 1;
  return latencies_s[idx] * 1e6;
}

struct ServeModeResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

ServeModeResult SummarizeMode(const std::vector<double>& latencies_s,
                              double elapsed_s) {
  ServeModeResult r;
  r.qps = elapsed_s > 0.0 ? double(latencies_s.size()) / elapsed_s : 0.0;
  r.p50_us = PercentileUs(latencies_s, 50.0);
  r.p99_us = PercentileUs(latencies_s, 99.0);
  return r;
}

bool SameHits(const std::vector<QueryHit>& a,
              const std::vector<QueryHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].record_index != b[i].record_index) return false;
    if (a[i].distance != b[i].distance) return false;
  }
  return true;
}

int RunServeBench(const Args& args) {
  auto records = ParseInt(args.Get("--records", "20000"));
  auto dim = ParseInt(args.Get("--dim", "64"));
  auto queries = ParseInt(args.Get("--queries", "512"));
  auto unique = ParseInt(args.Get("--unique", "64"));
  auto k = ParseInt(args.Get("--k", "5"));
  auto batch = ParseInt(args.Get("--batch", "64"));
  auto seed = ParseInt(args.Get("--seed", "7"));
  auto deadline_us = ParseInt(args.Get("--deadline-us", "0"));
  auto watermark = ParseInt(args.Get("--watermark", "0"));
  auto shards = ParseInt(args.Get("--shards", "0"));
  auto pipeline = ParseInt(args.Get("--pipeline", "1"));
  auto bits = ParseInt(args.Get("--bits", "8"));
  const std::string snapshot_path = args.Get("--snapshot", "");
  if (!records.ok() || !dim.ok() || !queries.ok() || !unique.ok() ||
      !k.ok() || !batch.ok() || !seed.ok() || !deadline_us.ok() ||
      !watermark.ok() || !shards.ok() || !pipeline.ok() || !bits.ok()) {
    return Usage();
  }
  if (*records < 1 || *dim < 1 || *queries < 1 || *unique < 1 ||
      *k < 1 || *batch < 1 || *deadline_us < 0 || *watermark < 0 ||
      *shards < 0 || *pipeline < 1 || (*bits != 8 && *bits != 4)) {
    return Usage();
  }
  // --shards 0 serves through the single FeatureIndex; N >= 1 serves
  // through an N-shard scatter-gather index (identical answers).
  const bool sharded_mode = *shards > 0;
  std::vector<size_t> threads;
  {
    const std::string spec = args.Get("--threads", "1,2,8");
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      auto t = ParseInt(spec.substr(pos, comma - pos));
      if (!t.ok() || *t < 1) return Usage();
      threads.push_back(static_cast<size_t>(*t));
      pos = comma + 1;
    }
    if (threads.empty()) return Usage();
  }
  const bool json = args.Has("--json");

  const MotionDatabase db = MakeServeDb(
      static_cast<size_t>(*records), static_cast<size_t>(*dim),
      static_cast<uint64_t>(*seed));
  FeatureIndexOptions iopts;
  iopts.quant_bits = static_cast<size_t>(*bits);
  iopts.exact_precision = g_cli_exact_precision;
  if (*watermark > 0) {
    // Degraded mode answers from the int8 tier, so force codes on even
    // for the small partitions a √N layout produces at bench scale.
    iopts.quantized_min_rows = 1;
  }
  std::unique_ptr<FeatureIndex> index;
  std::unique_ptr<ShardedFeatureIndex> sharded;
  if (sharded_mode) {
    ShardedIndexOptions sopts;
    sopts.index = iopts;
    sopts.num_shards = static_cast<size_t>(*shards);
    auto built = ShardedFeatureIndex::Build(&db, sopts);
    if (!built.ok()) return Fail(built.status());
    sharded =
        std::make_unique<ShardedFeatureIndex>(std::move(*built));
  } else {
    auto built = FeatureIndex::Build(&db, iopts);
    if (!built.ok()) return Fail(built.status());
    index = std::make_unique<FeatureIndex>(std::move(*built));
  }

  // --snapshot: exercise the crash-safe persistence path — save the
  // built index, reload it (with corruption-checked validation), and
  // serve from the reloaded copy. In sharded mode this is the
  // manifest-plus-shard-files protocol with per-shard repack.
  bool used_snapshot = false;
  bool snap_loaded = false, snap_rebuilt = false;
  if (!snapshot_path.empty()) {
    if (sharded_mode) {
      Status saved = SaveShardedFeatureIndex(*sharded, snapshot_path);
      if (!saved.ok()) return Fail(saved);
      ShardedSnapshotLoadInfo sinfo;
      ShardedIndexOptions sopts;
      sopts.index = iopts;
      sopts.num_shards = static_cast<size_t>(*shards);
      auto reloaded = LoadOrRebuildShardedFeatureIndex(
          snapshot_path, &db, sopts, &sinfo);
      if (!reloaded.ok()) return Fail(reloaded.status());
      *sharded = *std::move(reloaded);
      snap_loaded = sinfo.loaded_from_snapshot;
      snap_rebuilt = sinfo.rebuilt;
    } else {
      Status saved = SaveFeatureIndex(*index, snapshot_path);
      if (!saved.ok()) return Fail(saved);
      IndexSnapshotLoadInfo info;
      auto reloaded =
          LoadOrRebuildFeatureIndex(snapshot_path, &db, iopts, &info);
      if (!reloaded.ok()) return Fail(reloaded.status());
      *index = *std::move(reloaded);
      snap_loaded = info.loaded_from_snapshot;
      snap_rebuilt = info.rebuilt;
    }
    used_snapshot = true;
  }
  const auto workload = MakeServeWorkload(
      static_cast<size_t>(*queries), static_cast<size_t>(*unique),
      static_cast<size_t>(*dim), static_cast<uint64_t>(*seed) + 1000);
  const size_t kk = static_cast<size_t>(*k);

  // Reference answers (also the warm-up for the scan mode).
  std::vector<std::vector<QueryHit>> expected(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto hits = db.NearestNeighbors(workload[i], kk);
    if (!hits.ok()) return Fail(hits.status());
    expected[i] = *std::move(hits);
  }

  // Mode 1: per-request exact linear scan.
  std::vector<double> lat(workload.size());
  auto t0 = BenchClock::now();
  for (size_t i = 0; i < workload.size(); ++i) {
    auto q0 = BenchClock::now();
    auto hits = db.NearestNeighbors(workload[i], kk);
    lat[i] = SecondsSince(q0);
    if (!hits.ok()) return Fail(hits.status());
  }
  const ServeModeResult exact = SummarizeMode(lat, SecondsSince(t0));

  // Mode 2: per-request quantized index (no batching, no cache);
  // sharded mode scatter-gathers the same per-request answers.
  t0 = BenchClock::now();
  for (size_t i = 0; i < workload.size(); ++i) {
    auto q0 = BenchClock::now();
    auto hits = sharded_mode
                    ? sharded->NearestNeighbors(workload[i], kk)
                    : index->NearestNeighbors(workload[i], kk);
    lat[i] = SecondsSince(q0);
    if (!hits.ok()) return Fail(hits.status());
    if (!SameHits(*hits, expected[i])) {
      return Fail(Status::Unknown(
          "indexed results diverged from the linear scan"));
    }
  }
  const ServeModeResult indexed = SummarizeMode(lat, SecondsSince(t0));

  // Mode 3: the batched server, one run per thread budget. Requests
  // are submitted in admission windows of --batch and served by
  // DrainOnce, so a request's latency includes its wait for the
  // micro-batch — the tradeoff batching makes for throughput.
  struct ServedRow {
    size_t threads = 0;
    ServeModeResult mode;
    QueryServerStats stats;
    uint64_t degraded_taken = 0;
    uint64_t expired_taken = 0;
    double wall_s = 0.0;
  };
  std::vector<ServedRow> served_rows;
  for (size_t t : threads) {
    QueryServerOptions opts;
    opts.max_batch = static_cast<size_t>(*batch);
    opts.max_queue = workload.size() + 1;
    opts.parallel.max_threads = t;
    opts.default_deadline_us = static_cast<uint64_t>(*deadline_us);
    opts.degrade_watermark = static_cast<size_t>(*watermark);
    opts.pipeline_depth = static_cast<size_t>(*pipeline);
    auto server = sharded_mode
                      ? QueryServer::Create(&db, sharded.get(), opts)
                      : QueryServer::Create(&db, index.get(), opts);
    if (!server.ok()) return Fail(server.status());
    if (used_snapshot) {
      server->NoteSnapshotLoad(snap_loaded);
    }

    ServedRow row;
    std::vector<uint64_t> tickets(workload.size());
    std::vector<BenchClock::time_point> submitted(workload.size());
    t0 = BenchClock::now();
    size_t next = 0;
    while (next < workload.size()) {
      const size_t window_end =
          std::min(workload.size(), next + static_cast<size_t>(*batch));
      const size_t window_begin = next;
      for (; next < window_end; ++next) {
        submitted[next] = BenchClock::now();
        auto ticket =
            server->SubmitNearestNeighbors(workload[next], kk);
        if (!ticket.ok()) return Fail(ticket.status());
        tickets[next] = *ticket;
      }
      Status drained = server->DrainOnce();
      if (!drained.ok()) return Fail(drained);
      for (size_t i = window_begin; i < window_end; ++i) {
        auto answer = server->TakeAnswer(tickets[i]);
        lat[i] = std::chrono::duration<double>(BenchClock::now() -
                                               submitted[i])
                     .count();
        if (!answer.ok()) {
          // Deadline sheds are an expected outcome under --deadline-us;
          // anything else is a real failure.
          if (answer.status().IsDeadlineExceeded()) {
            ++row.expired_taken;
            continue;
          }
          return Fail(answer.status());
        }
        if (answer->degraded) {
          ++row.degraded_taken;
          continue;  // approximate by contract; not bit-checked
        }
        if (!SameHits(answer->hits, expected[i])) {
          return Fail(Status::Unknown(
              "served results diverged from the linear scan"));
        }
      }
    }
    row.threads = t;
    row.wall_s = SecondsSince(t0);
    row.mode = SummarizeMode(lat, row.wall_s);
    row.stats = server->stats();
    served_rows.push_back(row);
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"records\": %lld, \"dim\": %lld, \"queries\": %zu,"
                " \"unique\": %lld, \"k\": %zu, \"batch\": %lld,\n",
                static_cast<long long>(*records),
                static_cast<long long>(*dim), workload.size(),
                static_cast<long long>(*unique), kk,
                static_cast<long long>(*batch));
    std::printf("  \"bit_identical\": true,\n");
    std::printf("  \"shards\": %lld, \"pipeline\": %lld, "
                "\"quant_bits\": %lld,\n",
                static_cast<long long>(*shards),
                static_cast<long long>(*pipeline),
                static_cast<long long>(*bits));
    const KernelDispatchInfo kinfo = GetKernelDispatchInfo();
    std::printf("  \"kernel_backend\": \"%s\", \"cpu_features\": \"%s\",\n",
                kinfo.active.c_str(), kinfo.cpu_features.c_str());
    std::printf("  \"exact_precision\": \"%s\",\n",
                ExactPrecisionName(
                    ResolveExactPrecision(iopts.exact_precision)));
    if (used_snapshot) {
      std::printf("  \"snapshot\": {\"loaded\": %s, \"rebuilt\": %s},\n",
                  snap_loaded ? "true" : "false",
                  snap_rebuilt ? "true" : "false");
    }
    std::printf("  \"exact_scan\": {\"qps\": %.1f, \"p50_us\": %.1f, "
                "\"p99_us\": %.1f},\n",
                exact.qps, exact.p50_us, exact.p99_us);
    std::printf("  \"indexed\": {\"qps\": %.1f, \"p50_us\": %.1f, "
                "\"p99_us\": %.1f},\n",
                indexed.qps, indexed.p50_us, indexed.p99_us);
    std::printf("  \"served\": [\n");
    for (size_t i = 0; i < served_rows.size(); ++i) {
      const ServedRow& r = served_rows[i];
      std::printf("    {\"threads\": %zu, \"qps\": %.1f, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                  "\"qps_vs_exact_scan\": %.3f, "
                  "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                  "\"coalesced\": %llu, "
                  "\"expired\": %llu, \"degraded\": %llu, "
                  "\"queue_high_water\": %llu, "
                  "\"snapshot_loads\": %llu, "
                  "\"snapshot_fallbacks\": %llu",
                  r.threads, r.mode.qps, r.mode.p50_us, r.mode.p99_us,
                  exact.qps > 0.0 ? r.mode.qps / exact.qps : 0.0,
                  static_cast<unsigned long long>(r.stats.cache_hits),
                  static_cast<unsigned long long>(r.stats.cache_misses),
                  static_cast<unsigned long long>(r.stats.coalesced),
                  static_cast<unsigned long long>(r.stats.expired),
                  static_cast<unsigned long long>(r.stats.degraded),
                  static_cast<unsigned long long>(r.stats.queue_high_water),
                  static_cast<unsigned long long>(r.stats.snapshot_loads),
                  static_cast<unsigned long long>(r.stats.snapshot_fallbacks));
      const IndexQueryStats& ist = r.stats.index_stats;
      std::printf(", \"f32_scans\": %llu, \"f32_refined\": %llu, "
                  "\"f32_refine_rate\": %.6f",
                  static_cast<unsigned long long>(ist.f32_scans),
                  static_cast<unsigned long long>(ist.f32_refined),
                  ist.f32_scans > 0
                      ? double(ist.f32_refined) / double(ist.f32_scans)
                      : 0.0);
      // Per-tier throughput over this run's wall clock: rows scored
      // by the f64 exact tier (full-precision distance evaluations),
      // the fp32 mirror tier, and the int8/int4 coarse tier. Shows
      // where the scan work landed and how fast each tier moved.
      const double wall = r.wall_s > 0.0 ? r.wall_s : 1.0;
      std::printf(
          ", \"tier_throughput\": {\"exact_f64_rows_per_s\": %.1f, "
          "\"exact_f32_rows_per_s\": %.1f, \"coarse_rows_per_s\": %.1f}",
          double(ist.distance_computations) / wall,
          double(ist.f32_scans) / wall,
          double(ist.coarse_computations) / wall);
      // Micro-batch size histogram: bucket 0 = size 1, bucket b >= 1
      // = sizes (2^(b-1), 2^b] (query_server.h).
      std::printf(", \"batch_size_hist\": [");
      for (size_t b = 0; b < r.stats.batch_size_hist.size(); ++b) {
        std::printf("%s%llu", b > 0 ? ", " : "",
                    static_cast<unsigned long long>(
                        r.stats.batch_size_hist[b]));
      }
      std::printf("]");
      if (!r.stats.shard_stats.empty()) {
        std::printf(", \"shard_stats\": [");
        for (size_t s = 0; s < r.stats.shard_stats.size(); ++s) {
          const ShardServeStats& ss = r.stats.shard_stats[s];
          std::printf("%s{\"shard\": %zu, \"scans\": %llu, "
                      "\"distance_computations\": %llu, "
                      "\"coarse_computations\": %llu, "
                      "\"coarse_pruned\": %llu, "
                      "\"cache_invalidations\": %llu}",
                      s > 0 ? ", " : "", s,
                      static_cast<unsigned long long>(ss.scans),
                      static_cast<unsigned long long>(
                          ss.distance_computations),
                      static_cast<unsigned long long>(
                          ss.coarse_computations),
                      static_cast<unsigned long long>(ss.coarse_pruned),
                      static_cast<unsigned long long>(
                          ss.cache_invalidations));
        }
        std::printf("]");
      }
      std::printf("}%s\n", i + 1 < served_rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("serve-bench: %lld records x %lld dims, %zu queries "
              "(%lld unique), k=%zu, batch=%lld\n",
              static_cast<long long>(*records),
              static_cast<long long>(*dim), workload.size(),
              static_cast<long long>(*unique), kk,
              static_cast<long long>(*batch));
  {
    const KernelDispatchInfo kinfo = GetKernelDispatchInfo();
    std::printf("  kernel backend %s (%lld-bit coarse codes; cpu: %s)\n",
                kinfo.active.c_str(), static_cast<long long>(*bits),
                kinfo.cpu_features.c_str());
    std::printf("  exact precision %s\n",
                ExactPrecisionName(
                    ResolveExactPrecision(iopts.exact_precision)));
  }
  if (sharded_mode) {
    std::printf("  serving through %lld shards, pipeline depth %lld\n",
                static_cast<long long>(*shards),
                static_cast<long long>(*pipeline));
  }
  std::printf("  %-22s %10s %12s %12s\n", "mode", "qps", "p50 (us)",
              "p99 (us)");
  std::printf("  %-22s %10.0f %12.1f %12.1f\n", "exact scan/request",
              exact.qps, exact.p50_us, exact.p99_us);
  std::printf("  %-22s %10.0f %12.1f %12.1f\n", "index/request",
              indexed.qps, indexed.p50_us, indexed.p99_us);
  for (const ServedRow& r : served_rows) {
    char label[32];
    std::snprintf(label, sizeof label, "served (%zu threads)",
                  r.threads);
    std::printf("  %-22s %10.0f %12.1f %12.1f   x%.2f vs scan, "
                "%llu cache hits\n",
                label, r.mode.qps, r.mode.p50_us, r.mode.p99_us,
                exact.qps > 0.0 ? r.mode.qps / exact.qps : 0.0,
                static_cast<unsigned long long>(r.stats.cache_hits));
    if (r.stats.index_stats.f32_scans > 0) {
      const IndexQueryStats& ist = r.stats.index_stats;
      std::printf("  %-22s f32_scans=%llu f32_refined=%llu "
                  "refine_rate=%.4f\n", "",
                  static_cast<unsigned long long>(ist.f32_scans),
                  static_cast<unsigned long long>(ist.f32_refined),
                  double(ist.f32_refined) / double(ist.f32_scans));
    }
    if (r.stats.expired > 0 || r.stats.degraded > 0 ||
        *watermark > 0 || *deadline_us > 0) {
      std::printf("  %-22s expired=%llu degraded=%llu "
                  "queue_high_water=%llu\n", "",
                  static_cast<unsigned long long>(r.stats.expired),
                  static_cast<unsigned long long>(r.stats.degraded),
                  static_cast<unsigned long long>(r.stats.queue_high_water));
    }
    for (size_t s = 0; s < r.stats.shard_stats.size(); ++s) {
      const ShardServeStats& ss = r.stats.shard_stats[s];
      const uint64_t coarse_seen =
          ss.coarse_computations + ss.coarse_pruned;
      std::printf("  %-22s shard %zu: scans=%llu dist=%llu "
                  "coarse_prune=%.0f%% cache_inval=%llu\n", "", s,
                  static_cast<unsigned long long>(ss.scans),
                  static_cast<unsigned long long>(
                      ss.distance_computations),
                  coarse_seen > 0
                      ? 100.0 * double(ss.coarse_pruned) /
                            double(coarse_seen)
                      : 0.0,
                  static_cast<unsigned long long>(
                      ss.cache_invalidations));
    }
  }
  if (used_snapshot) {
    std::printf("  snapshot: %s\n",
                snap_loaded ? "served from reloaded on-disk index"
                            : "rebuilt or repacked from the database");
  }
  std::printf("  (all exact-mode answers were bit-identical; degraded "
              "answers carry certified error bounds)\n");
  return 0;
}

// --- kernel-info: dispatch report + backend equivalence gate ----------
//
// Prints which SIMD backend the dispatcher picked (and why it could),
// then verifies every CPU-usable backend against the scalar reference
// across dims 1..67 for all sixteen table entries (seven f64/int ops,
// four fp32-mirror ops, and the five query-block many-to-many/gather
// ops, exercised with out_stride > rows) — the same bit-exactness
// contract the unit tests enforce, exercised on the actual production
// binary and CPU. Also reports per-op backend coverage; a compiled backend with a
// missing (null) table entry fails the gate. Exits 1 on any mismatch
// or hole, so CI can gate on `mocemg_cli kernel-info`.
// run_benchmarks.sh embeds the --json form as BENCH_pr9.json host
// metadata.

bool BitsEqual(double a, double b) {
  uint64_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

bool BitsEqualF(float a, float b) {
  uint32_t ab = 0, bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

/// Every KernelOps entry with its field name, for coverage reporting.
std::vector<std::pair<const char*, bool>> NamedOpPresence(
    const KernelOps* ops) {
  return {
      {"squared_l2_pair", ops->squared_l2_pair != nullptr},
      {"dot_pair", ops->dot_pair != nullptr},
      {"l2_one_to_many", ops->l2_one_to_many != nullptr},
      {"l2dot_one_to_many", ops->l2dot_one_to_many != nullptr},
      {"row_norms", ops->row_norms != nullptr},
      {"ssd8_one_to_many", ops->ssd8_one_to_many != nullptr},
      {"ssd4_one_to_many", ops->ssd4_one_to_many != nullptr},
      {"l2_f32_one_to_many", ops->l2_f32_one_to_many != nullptr},
      {"l2dot_f32_one_to_many", ops->l2dot_f32_one_to_many != nullptr},
      {"row_norms_f32", ops->row_norms_f32 != nullptr},
      {"l2dot_f32d_one_to_many",
       ops->l2dot_f32d_one_to_many != nullptr},
      {"l2dot_many_to_many", ops->l2dot_many_to_many != nullptr},
      {"l2dot_f32_many_to_many",
       ops->l2dot_f32_many_to_many != nullptr},
      {"l2_gather", ops->l2_gather != nullptr},
      {"ssd8_many_to_many", ops->ssd8_many_to_many != nullptr},
      {"ssd4_many_to_many", ops->ssd4_many_to_many != nullptr},
  };
}

Status VerifyKernelEquivalence() {
  const KernelOps* ref = GetKernelOps(KernelBackend::kScalar);
  if (ref == nullptr) {
    return Status::Unknown("scalar kernel backend missing");
  }
  for (const KernelBackend backend : UsableKernelBackends()) {
    if (backend == KernelBackend::kScalar) continue;
    const KernelOps* ops = GetKernelOps(backend);
    if (ops == nullptr) {
      return Status::Unknown(
          std::string("usable backend has no ops table: ") +
          KernelBackendName(backend));
    }
    const size_t rows = 7;
    for (size_t d = 1; d <= 67; ++d) {
      Rng rng(0xC0FFEE ^ (d * 131 + static_cast<size_t>(backend)));
      std::vector<double> x(d), block(rows * d), norms(rows);
      for (double& v : x) v = rng.Gaussian(0.0, 1.0);
      for (double& v : block) v = rng.Gaussian(0.0, 1.0);
      ref->row_norms(block.data(), rows, d, norms.data());
      const double x_sq = ref->squared_l2_pair(
          x.data(), std::vector<double>(d, 0.0).data(), d);
      std::vector<uint8_t> qc(d), codes(rows * d);
      for (auto& v : qc) v = static_cast<uint8_t>(rng.NextBelow(256));
      for (auto& v : codes) v = static_cast<uint8_t>(rng.NextBelow(256));
      const size_t stride = PackedNibbleStride(d);
      std::vector<uint8_t> qn(d), rn(rows * d);
      for (auto& v : qn) v = static_cast<uint8_t>(rng.NextBelow(16));
      for (auto& v : rn) v = static_cast<uint8_t>(rng.NextBelow(16));
      std::vector<uint8_t> qp(stride), rp(rows * stride);
      PackNibbleRows(qn.data(), 1, d, qp.data());
      PackNibbleRows(rn.data(), rows, d, rp.data());

      const auto fail = [&](const char* op) {
        return Status::Unknown(
            std::string("kernel backend ") + KernelBackendName(backend) +
            " diverges from scalar on " + op + " at dim " +
            std::to_string(d));
      };
      for (size_t r = 0; r < rows; ++r) {
        const double* y = block.data() + r * d;
        if (!BitsEqual(ref->squared_l2_pair(x.data(), y, d),
                       ops->squared_l2_pair(x.data(), y, d))) {
          return fail("squared_l2_pair");
        }
        if (!BitsEqual(ref->dot_pair(x.data(), y, d),
                       ops->dot_pair(x.data(), y, d))) {
          return fail("dot_pair");
        }
      }
      std::vector<double> want(rows), got(rows);
      ref->l2_one_to_many(x.data(), block.data(), rows, d, want.data());
      ops->l2_one_to_many(x.data(), block.data(), rows, d, got.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqual(want[r], got[r])) return fail("l2_one_to_many");
      }
      ref->l2dot_one_to_many(x.data(), x_sq, block.data(), norms.data(),
                             rows, d, want.data());
      ops->l2dot_one_to_many(x.data(), x_sq, block.data(), norms.data(),
                             rows, d, got.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqual(want[r], got[r])) return fail("l2dot_one_to_many");
      }
      ref->row_norms(block.data(), rows, d, want.data());
      ops->row_norms(block.data(), rows, d, got.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqual(want[r], got[r])) return fail("row_norms");
      }
      std::vector<uint32_t> wanti(rows), goti(rows);
      ref->ssd8_one_to_many(qc.data(), codes.data(), rows, d,
                            wanti.data());
      ops->ssd8_one_to_many(qc.data(), codes.data(), rows, d,
                            goti.data());
      if (wanti != goti) return fail("ssd8_one_to_many");
      ref->ssd4_one_to_many(qp.data(), rp.data(), rows, d, wanti.data());
      ops->ssd4_one_to_many(qp.data(), rp.data(), rows, d, goti.data());
      if (wanti != goti) return fail("ssd4_one_to_many");
      // fp32-mirror ops: same fixtures narrowed to float, compared at
      // the fp32 bit level (and at the f64 bit level for the
      // fp64-accumulate variant).
      std::vector<float> xf(d), blockf(rows * d), normsf(rows);
      for (size_t i = 0; i < d; ++i) {
        xf[i] = static_cast<float>(x[i]);
      }
      for (size_t i = 0; i < rows * d; ++i) {
        blockf[i] = static_cast<float>(block[i]);
      }
      ref->row_norms_f32(blockf.data(), rows, d, normsf.data());
      float xf_sq = 0.0f;
      ref->row_norms_f32(xf.data(), 1, d, &xf_sq);
      std::vector<float> wantf(rows), gotf(rows);
      ref->l2_f32_one_to_many(xf.data(), blockf.data(), rows, d,
                              wantf.data());
      ops->l2_f32_one_to_many(xf.data(), blockf.data(), rows, d,
                              gotf.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqualF(wantf[r], gotf[r])) {
          return fail("l2_f32_one_to_many");
        }
      }
      ref->l2dot_f32_one_to_many(xf.data(), xf_sq, blockf.data(),
                                 normsf.data(), rows, d, wantf.data());
      ops->l2dot_f32_one_to_many(xf.data(), xf_sq, blockf.data(),
                                 normsf.data(), rows, d, gotf.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqualF(wantf[r], gotf[r])) {
          return fail("l2dot_f32_one_to_many");
        }
      }
      ref->row_norms_f32(blockf.data(), rows, d, wantf.data());
      ops->row_norms_f32(blockf.data(), rows, d, gotf.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqualF(wantf[r], gotf[r])) return fail("row_norms_f32");
      }
      ref->l2dot_f32d_one_to_many(xf.data(), x_sq, blockf.data(),
                                  norms.data(), rows, d, want.data());
      ops->l2dot_f32d_one_to_many(xf.data(), x_sq, blockf.data(),
                                  norms.data(), rows, d, got.data());
      for (size_t r = 0; r < rows; ++r) {
        if (!BitsEqual(want[r], got[r])) {
          return fail("l2dot_f32d_one_to_many");
        }
      }
      // Query-block many-to-many ops: the whole block must reproduce
      // the one-to-many scalar answer per (query, row) pair, with an
      // out_stride wider than the row count so stride handling is
      // exercised (DESIGN.md §16).
      const size_t nq = 3;
      const size_t ostride = rows + 2;
      std::vector<double> qs(nq * d), q_sqs(nq);
      for (double& v : qs) v = rng.Gaussian(0.0, 1.0);
      ref->row_norms(qs.data(), nq, d, q_sqs.data());
      std::vector<double> wantm(rows), gotm(nq * ostride);
      ops->l2dot_many_to_many(qs.data(), q_sqs.data(), nq, block.data(),
                              norms.data(), rows, d, gotm.data(), ostride);
      for (size_t q = 0; q < nq; ++q) {
        ref->l2dot_one_to_many(qs.data() + q * d, q_sqs[q], block.data(),
                               norms.data(), rows, d, wantm.data());
        for (size_t r = 0; r < rows; ++r) {
          if (!BitsEqual(wantm[r], gotm[q * ostride + r])) {
            return fail("l2dot_many_to_many");
          }
        }
      }
      std::vector<uint32_t> ridx;
      for (size_t r = 0; r < rows; ++r) {
        if ((r + d) % 2 == 0) ridx.push_back(static_cast<uint32_t>(r));
      }
      if (ridx.empty()) ridx.push_back(0);
      std::vector<double> gathered(ridx.size());
      ops->l2_gather(x.data(), block.data(), ridx.data(), ridx.size(), d,
                     gathered.data());
      for (size_t i = 0; i < ridx.size(); ++i) {
        if (!BitsEqual(gathered[i],
                       ref->squared_l2_pair(
                           x.data(), block.data() + ridx[i] * d, d))) {
          return fail("l2_gather");
        }
      }
      std::vector<float> qsf32(nq * d), qsq32(nq);
      for (size_t i = 0; i < nq * d; ++i) {
        qsf32[i] = static_cast<float>(qs[i]);
      }
      ref->row_norms_f32(qsf32.data(), nq, d, qsq32.data());
      std::vector<float> wantmf(rows), gotmf(nq * ostride);
      ops->l2dot_f32_many_to_many(qsf32.data(), qsq32.data(), nq,
                                  blockf.data(), normsf.data(), rows, d,
                                  gotmf.data(), ostride);
      for (size_t q = 0; q < nq; ++q) {
        ref->l2dot_f32_one_to_many(qsf32.data() + q * d, qsq32[q],
                                   blockf.data(), normsf.data(), rows, d,
                                   wantmf.data());
        for (size_t r = 0; r < rows; ++r) {
          if (!BitsEqualF(wantmf[r], gotmf[q * ostride + r])) {
            return fail("l2dot_f32_many_to_many");
          }
        }
      }
      std::vector<uint8_t> qcm(nq * d);
      for (auto& v : qcm) v = static_cast<uint8_t>(rng.NextBelow(256));
      std::vector<uint32_t> wantim(rows), gotim(nq * ostride);
      ops->ssd8_many_to_many(qcm.data(), nq, codes.data(), rows, d,
                             gotim.data(), ostride);
      for (size_t q = 0; q < nq; ++q) {
        ref->ssd8_one_to_many(qcm.data() + q * d, codes.data(), rows, d,
                              wantim.data());
        for (size_t r = 0; r < rows; ++r) {
          if (wantim[r] != gotim[q * ostride + r]) {
            return fail("ssd8_many_to_many");
          }
        }
      }
      std::vector<uint8_t> qnm(nq * d), qpm(nq * stride);
      for (auto& v : qnm) v = static_cast<uint8_t>(rng.NextBelow(16));
      PackNibbleRows(qnm.data(), nq, d, qpm.data());
      ops->ssd4_many_to_many(qpm.data(), nq, rp.data(), rows, d,
                             gotim.data(), ostride);
      for (size_t q = 0; q < nq; ++q) {
        ref->ssd4_one_to_many(qpm.data() + q * stride, rp.data(), rows, d,
                              wantim.data());
        for (size_t r = 0; r < rows; ++r) {
          if (wantim[r] != gotim[q * ostride + r]) {
            return fail("ssd4_many_to_many");
          }
        }
      }
    }
  }
  return Status::OK();
}

/// Per-op backend coverage over every compiled backend: any null table
/// entry is a packaging bug worth failing CI for. Returns the coverage
/// lines to print and flags holes via the status.
Status VerifyOpCoverage(std::vector<std::string>* lines) {
  Status holes = Status::OK();
  for (const KernelBackend backend : CompiledKernelBackends()) {
    const KernelOps* ops = GetKernelOps(backend);
    if (ops == nullptr) {
      return Status::Unknown(
          std::string("compiled backend has no ops table: ") +
          KernelBackendName(backend));
    }
    std::string missing;
    for (const auto& [name, present] : NamedOpPresence(ops)) {
      if (!present) {
        missing += missing.empty() ? name : (std::string(", ") + name);
      }
    }
    std::string line = std::string(KernelBackendName(backend)) + ": ";
    if (missing.empty()) {
      line += "all 16 ops";
    } else {
      line += "MISSING " + missing;
      holes = Status::Unknown(
          std::string("backend ") + KernelBackendName(backend) +
          " is missing ops: " + missing);
    }
    lines->push_back(std::move(line));
  }
  return holes;
}

int RunKernelInfo(const Args& args) {
  const bool json = args.Has("--json");
  const KernelDispatchInfo info = GetKernelDispatchInfo();
  std::vector<std::string> coverage;
  const Status holes = VerifyOpCoverage(&coverage);
  const Status equiv =
      holes.ok() ? VerifyKernelEquivalence() : holes;
  if (json) {
    std::printf("{\n");
    std::printf("  \"active\": \"%s\",\n", info.active.c_str());
    std::printf("  \"compiled\": \"%s\",\n", info.compiled.c_str());
    std::printf("  \"usable\": \"%s\",\n", info.usable.c_str());
    std::printf("  \"cpu_features\": \"%s\",\n", info.cpu_features.c_str());
    std::printf("  \"env_override\": %s,\n",
                info.env_override ? "true" : "false");
    std::printf("  \"op_coverage\": [");
    for (size_t i = 0; i < coverage.size(); ++i) {
      std::printf("%s\"%s\"", i > 0 ? ", " : "", coverage[i].c_str());
    }
    std::printf("],\n");
    std::printf("  \"op_coverage_ok\": %s,\n",
                holes.ok() ? "true" : "false");
    std::printf("  \"equivalence_ok\": %s\n}\n",
                equiv.ok() ? "true" : "false");
  } else {
    std::printf("kernel dispatch:\n");
    std::printf("  active:       %s%s\n", info.active.c_str(),
                info.env_override ? " (MOCEMG_KERNEL override)" : "");
    std::printf("  compiled:     %s\n", info.compiled.c_str());
    std::printf("  usable:       %s\n", info.usable.c_str());
    std::printf("  cpu features: %s\n", info.cpu_features.c_str());
    std::printf("  op coverage:\n");
    for (const std::string& line : coverage) {
      std::printf("    %s\n", line.c_str());
    }
    std::printf("  equivalence:  %s\n",
                equiv.ok() ? "every usable backend bit-identical to scalar "
                             "(dims 1..67, all 16 ops)"
                           : equiv.ToString().c_str());
  }
  return equiv.ok() ? 0 : 1;
}

// --- coarse-bench: 8-bit vs 4-bit coarse tier A/B ---------------------
//
// Builds the same index at both code widths, checks the exact path is
// bit-identical to the linear scan at both, then measures the coarse
// tier alone: queries/s, recall@k of the certified estimates against
// the true kNN, mean certified error bound, and coarse bytes per
// record. run_benchmarks.sh stores the --json form as BENCH_pr8.json's
// "four_bit" section.

int RunCoarseBench(const Args& args) {
  auto records = ParseInt(args.Get("--records", "20000"));
  auto dim = ParseInt(args.Get("--dim", "64"));
  auto queries = ParseInt(args.Get("--queries", "256"));
  auto k = ParseInt(args.Get("--k", "5"));
  auto seed = ParseInt(args.Get("--seed", "7"));
  if (!records.ok() || !dim.ok() || !queries.ok() || !k.ok() ||
      !seed.ok()) {
    return Usage();
  }
  if (*records < 1 || *dim < 1 || *queries < 1 || *k < 1) return Usage();
  const bool json = args.Has("--json");

  const MotionDatabase db = MakeServeDb(
      static_cast<size_t>(*records), static_cast<size_t>(*dim),
      static_cast<uint64_t>(*seed));
  const auto workload = MakeServeWorkload(
      static_cast<size_t>(*queries), static_cast<size_t>(*queries),
      static_cast<size_t>(*dim), static_cast<uint64_t>(*seed) + 1000);
  const size_t kk = static_cast<size_t>(*k);

  std::vector<std::vector<QueryHit>> expected(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto hits = db.NearestNeighbors(workload[i], kk);
    if (!hits.ok()) return Fail(hits.status());
    expected[i] = *std::move(hits);
  }

  struct WidthRow {
    size_t bits = 0;
    size_t bytes_per_record = 0;
    double coarse_qps = 0.0;
    double exact_qps = 0.0;
    double recall = 0.0;
    double mean_bound = 0.0;
  };
  std::vector<WidthRow> out_rows;
  for (const size_t bits : {size_t{8}, size_t{4}}) {
    FeatureIndexOptions iopts;
    iopts.quant_bits = bits;
    iopts.exact_precision = g_cli_exact_precision;
    iopts.quantized_min_rows = 1;  // code every partition at bench scale
    auto index = FeatureIndex::Build(&db, iopts);
    if (!index.ok()) return Fail(index.status());

    WidthRow row;
    row.bits = bits;
    row.bytes_per_record =
        bits == 4 ? PackedNibbleStride(static_cast<size_t>(*dim))
                  : static_cast<size_t>(*dim);

    // Exact path must stay bit-identical at any width.
    auto t0 = BenchClock::now();
    for (size_t i = 0; i < workload.size(); ++i) {
      auto hits = index->NearestNeighbors(workload[i], kk);
      if (!hits.ok()) return Fail(hits.status());
      if (!SameHits(*hits, expected[i])) {
        return Fail(Status::Unknown(
            std::to_string(bits) +
            "-bit indexed results diverged from the linear scan"));
      }
    }
    row.exact_qps = double(workload.size()) / SecondsSince(t0);

    size_t found = 0;
    double bound_sum = 0.0;
    t0 = BenchClock::now();
    for (size_t i = 0; i < workload.size(); ++i) {
      double bound = 0.0;
      auto hits = index->CoarseNearestNeighbors(workload[i], kk, &bound);
      if (!hits.ok()) return Fail(hits.status());
      bound_sum += bound;
      for (const QueryHit& h : *hits) {
        for (const QueryHit& e : expected[i]) {
          if (h.record_index == e.record_index) {
            ++found;
            break;
          }
        }
      }
    }
    row.coarse_qps = double(workload.size()) / SecondsSince(t0);
    row.recall = double(found) / double(workload.size() * kk);
    row.mean_bound = bound_sum / double(workload.size());
    out_rows.push_back(row);
  }

  const KernelDispatchInfo kinfo = GetKernelDispatchInfo();
  if (json) {
    std::printf("{\n");
    std::printf("  \"records\": %lld, \"dim\": %lld, \"queries\": %zu, "
                "\"k\": %zu,\n",
                static_cast<long long>(*records),
                static_cast<long long>(*dim), workload.size(), kk);
    std::printf("  \"kernel_backend\": \"%s\",\n", kinfo.active.c_str());
    for (size_t i = 0; i < out_rows.size(); ++i) {
      const WidthRow& r = out_rows[i];
      std::printf("  \"%s\": {\"bits\": %zu, \"bytes_per_record\": %zu, "
                  "\"coarse_qps\": %.1f, \"exact_qps\": %.1f, "
                  "\"recall_at_k\": %.4f, \"mean_error_bound\": %.6f, "
                  "\"exact_bit_identical\": true}%s\n",
                  r.bits == 8 ? "eight_bit" : "four_bit", r.bits,
                  r.bytes_per_record, r.coarse_qps, r.exact_qps, r.recall,
                  r.mean_bound, i + 1 < out_rows.size() ? "," : "");
    }
    std::printf("}\n");
    return 0;
  }
  std::printf("coarse-bench: %lld records x %lld dims, %zu queries, "
              "k=%zu, kernel %s\n",
              static_cast<long long>(*records),
              static_cast<long long>(*dim), workload.size(), kk,
              kinfo.active.c_str());
  std::printf("  %-6s %16s %12s %12s %10s %12s\n", "bits", "bytes/record",
              "coarse qps", "exact qps", "recall@k", "mean bound");
  for (const WidthRow& r : out_rows) {
    std::printf("  %-6zu %16zu %12.0f %12.0f %10.4f %12.4f\n", r.bits,
                r.bytes_per_record, r.coarse_qps, r.exact_qps, r.recall,
                r.mean_bound);
  }
  std::printf("  (exact kNN answers were bit-identical to the linear scan "
              "at both widths)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  // --kernel: force the SIMD backend before any kernel runs. Unlike the
  // MOCEMG_KERNEL env override (warning + auto), an explicit flag
  // naming an unusable backend is a hard error.
  const std::string kernel = args.Get("--kernel");
  if (!kernel.empty()) {
    auto backend = ParseKernelBackend(kernel);
    if (!backend.ok()) return Usage();
    Status set = SetKernelBackend(*backend);
    if (!set.ok()) return Fail(set);
  }
  // --exact-precision: pick the exact-scan tier for the subcommands
  // that build indexes. Like --kernel, an unknown name is a hard error
  // rather than the env override's warn-and-default.
  const std::string precision = args.Get("--exact-precision");
  if (!precision.empty()) {
    auto parsed = ParseExactPrecision(precision);
    if (!parsed.ok()) return Fail(parsed.status());
    g_cli_exact_precision = *parsed;
  }
  if (std::strcmp(argv[1], "train") == 0) return RunTrain(args);
  if (std::strcmp(argv[1], "classify") == 0) return RunClassify(args);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(args);
  if (std::strcmp(argv[1], "serve-bench") == 0)
    return RunServeBench(args);
  if (std::strcmp(argv[1], "kernel-info") == 0)
    return RunKernelInfo(args);
  if (std::strcmp(argv[1], "coarse-bench") == 0)
    return RunCoarseBench(args);
  return Usage();
}
