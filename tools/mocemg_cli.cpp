// mocemg — command-line front end for the library.
//
// Subcommands:
//   train    --manifest <csv> --model <out> [--clusters N] [--window MS]
//            [--hop MS] [--kmeans] [--no-emg | --no-mocap]
//   classify --model <file> --trc <file> --emg <file> [--k N]
//   info     --model <file>
//
// The manifest is a CSV with header `trc,emg,label,label_name`; each row
// names one captured motion: a TRC marker file, an EMG CSV (raw, with a
// sample_rate_hz comment), its integer class label and class name.
//
// Example session:
//   mocemg_cli train --manifest lab/session1.csv --model hand.model
//   mocemg_cli classify --model hand.model --trc q.trc --emg q.csv --k 5

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/model_io.h"
#include "emg/emg_io.h"
#include "mocap/trc_io.h"
#include "util/csv.h"
#include "util/macros.h"
#include "util/string_util.h"

using namespace mocemg;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mocemg_cli train    --manifest <csv> --model <out>\n"
               "                      [--clusters N] [--window MS] "
               "[--hop MS] [--kmeans] [--no-emg | --no-mocap]\n"
               "  mocemg_cli classify --model <file> --trc <file> "
               "--emg <file> [--k N]\n"
               "  mocemg_cli info     --model <file>\n");
  return 2;
}

/// Pulls `--flag value` pairs out of argv; returns empty for missing.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  std::string Get(const std::string& flag,
                  const std::string& fallback = "") const {
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == flag) return tokens_[i + 1];
    }
    return fallback;
  }

  bool Has(const std::string& flag) const {
    for (const auto& t : tokens_) {
      if (t == flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> tokens_;
};

Result<std::vector<LabeledMotion>> LoadManifest(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(CsvTable table, CsvTable::FromFile(path));
  MOCEMG_ASSIGN_OR_RETURN(size_t trc_col, table.ColumnIndex("trc"));
  MOCEMG_ASSIGN_OR_RETURN(size_t emg_col, table.ColumnIndex("emg"));
  MOCEMG_ASSIGN_OR_RETURN(size_t label_col, table.ColumnIndex("label"));
  MOCEMG_ASSIGN_OR_RETURN(size_t name_col,
                          table.ColumnIndex("label_name"));
  std::vector<LabeledMotion> motions;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.rows()[r];
    LabeledMotion m;
    MOCEMG_ASSIGN_OR_RETURN(m.mocap, ReadTrcFile(row[trc_col]));
    MOCEMG_ASSIGN_OR_RETURN(m.emg, ReadEmgCsvFile(row[emg_col]));
    MOCEMG_ASSIGN_OR_RETURN(int64_t label, ParseInt(row[label_col]));
    m.label = static_cast<size_t>(label);
    m.label_name = row[name_col];
    motions.push_back(std::move(m));
  }
  if (motions.empty()) {
    return Status::InvalidArgument("manifest lists no motions");
  }
  return motions;
}

int RunTrain(const Args& args) {
  const std::string manifest = args.Get("--manifest");
  const std::string model_path = args.Get("--model");
  if (manifest.empty() || model_path.empty()) return Usage();

  auto motions = LoadManifest(manifest);
  if (!motions.ok()) return Fail(motions.status());
  std::printf("loaded %zu motions from %s\n", motions->size(),
              manifest.c_str());

  ClassifierOptions options;
  auto clusters = ParseInt(args.Get("--clusters", "15"));
  auto window = ParseDouble(args.Get("--window", "100"));
  auto hop = ParseDouble(args.Get("--hop", "50"));
  if (!clusters.ok()) return Fail(clusters.status());
  if (!window.ok()) return Fail(window.status());
  if (!hop.ok()) return Fail(hop.status());
  options.fcm.num_clusters = static_cast<size_t>(*clusters);
  options.features.window_ms = *window;
  options.features.hop_ms = *hop;
  if (args.Has("--kmeans")) {
    options.cluster_method = ClusterMethod::kKmeansHard;
  }
  if (args.Has("--no-emg")) options.features.use_emg = false;
  if (args.Has("--no-mocap")) options.features.use_mocap = false;

  auto clf = MotionClassifier::Train(*motions, options);
  if (!clf.ok()) return Fail(clf.status());
  Status save = SaveClassifier(*clf, model_path);
  if (!save.ok()) return Fail(save);
  std::printf("trained c=%zu, %zu-d final features; model -> %s\n",
              clf->codebook().num_clusters(),
              clf->final_features().cols(), model_path.c_str());
  return 0;
}

int RunClassify(const Args& args) {
  const std::string model_path = args.Get("--model");
  const std::string trc = args.Get("--trc");
  const std::string emg = args.Get("--emg");
  if (model_path.empty() || trc.empty() || emg.empty()) return Usage();
  auto k = ParseInt(args.Get("--k", "1"));
  if (!k.ok() || *k < 1) return Usage();

  auto model = LoadClassifier(model_path);
  if (!model.ok()) return Fail(model.status());
  auto mocap = ReadTrcFile(trc);
  if (!mocap.ok()) return Fail(mocap.status());
  auto recording = ReadEmgCsvFile(emg);
  if (!recording.ok()) return Fail(recording.status());

  auto feature = model->Featurize(*mocap, *recording);
  if (!feature.ok()) return Fail(feature.status());
  auto matches =
      model->NearestNeighbors(*feature, static_cast<size_t>(*k));
  if (!matches.ok()) return Fail(matches.status());

  std::printf("prediction: %s (label %zu)\n",
              model->label_names()[(*matches)[0].index].c_str(),
              (*matches)[0].label);
  for (const MotionMatch& m : *matches) {
    std::printf("  match %-16s label=%zu d=%.4f\n",
                model->label_names()[m.index].c_str(), m.label,
                m.distance);
  }
  return 0;
}

int RunInfo(const Args& args) {
  const std::string model_path = args.Get("--model");
  if (model_path.empty()) return Usage();
  auto model = LoadClassifier(model_path);
  if (!model.ok()) return Fail(model.status());
  const ClassifierOptions& o = model->options();
  std::printf("model: %s\n", model_path.c_str());
  std::printf("  motions:        %zu\n", model->num_motions());
  std::printf("  clusters:       %zu (m=%.2f, %s)\n",
              model->codebook().num_clusters(),
              model->codebook().fuzziness(),
              o.cluster_method == ClusterMethod::kFuzzyCMeans
                  ? "fuzzy c-means"
                  : "k-means hard");
  std::printf("  window:         %.0f ms (hop %.0f ms)\n",
              o.features.window_ms, o.features.hop_ms);
  std::printf("  modalities:     %s%s\n",
              o.features.use_emg ? "emg " : "",
              o.features.use_mocap ? "mocap" : "");
  std::printf("  window dim:     %zu\n", model->codebook().dimension());
  std::printf("  final dim:      %zu\n", model->final_features().cols());
  // Class inventory.
  std::vector<std::string> seen;
  for (size_t i = 0; i < model->num_motions(); ++i) {
    const std::string& name = model->label_names()[i];
    bool dup = false;
    for (const auto& s : seen) dup |= (s == name);
    if (!dup) seen.push_back(name);
  }
  std::printf("  classes (%zu):", seen.size());
  for (const auto& s : seen) std::printf(" %s", s.c_str());
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  if (std::strcmp(argv[1], "train") == 0) return RunTrain(args);
  if (std::strcmp(argv[1], "classify") == 0) return RunClassify(args);
  if (std::strcmp(argv[1], "info") == 0) return RunInfo(args);
  return Usage();
}
