#!/usr/bin/env bash
# Configure, build, and run the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (default) or
# ThreadSanitizer.
#
# Usage: tools/run_sanitized_tests.sh [asan|tsan] [ctest args...]
set -euo pipefail

preset="${1:-asan}"
shift || true
case "$preset" in
  asan|tsan) ;;
  *)
    echo "usage: $0 [asan|tsan] [ctest args...]" >&2
    exit 2
    ;;
esac

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" "$@"

# Kernel-backend rerun matrix: the main pass above runs under the
# dispatched default (widest SIMD backend this CPU supports). Re-run
# the kernel and index suites with the backend pinned to the scalar
# reference and then explicitly to the dispatched best, so both sides
# of the bit-exactness contract get sanitizer coverage — the scalar
# fallback path is otherwise dead code on machines with AVX2/AVX-512.
# QueryBlock is the §16 query-block grid: together with the fp32 loop
# below, the blocked many-to-many scan path gets sanitizer coverage
# under MOCEMG_KERNEL={scalar,auto} x MOCEMG_EXACT_PRECISION={f64,f32}.
for kern in scalar auto; do
  echo "== $preset: kernel/index suites under MOCEMG_KERNEL=$kern =="
  MOCEMG_KERNEL="$kern" ctest --preset "$preset" \
    -R 'Kernel|Quant|Distance|FeatureIndex|Sharded|Snapshot|QueryBlock' \
    --output-on-failure
done

# fp32 exact-tier rerun matrix: the same suites again with the
# default exact precision forced to the fp32 mirror tier, crossed
# with both kernel backends. Tests that build with explicit options
# are unaffected (options beat the env default, §15.4); tests that
# build with defaults now route their scans through the mirror +
# refine path, so the bound arithmetic, the norm gate, and the
# refine's double re-evaluation all get sanitizer coverage on both
# the scalar and the dispatched kernels.
for kern in scalar auto; do
  echo "== $preset: kernel/index suites under" \
    "MOCEMG_EXACT_PRECISION=f32 MOCEMG_KERNEL=$kern =="
  MOCEMG_EXACT_PRECISION=f32 MOCEMG_KERNEL="$kern" \
    ctest --preset "$preset" \
    -R 'Kernel|Quant|Distance|FeatureIndex|Sharded|Snapshot|QueryBlock' \
    --output-on-failure
done

if [[ "$preset" == "tsan" ]]; then
  # Second pass over the parallel substrate with a forced 8-thread
  # budget: on a small machine the auto budget can resolve to one
  # worker, and tsan would then certify what was effectively a serial
  # execution. The determinism tests double as the data-race proof for
  # every parallelized stage (featurization, FCM, batch kNN/classify),
  # the fault-injected serving tests exercise concurrent clients
  # against stalls, injected failures, and deadline sheds, and the
  # sharded tests cover scatter-gather fan-out plus index swaps under
  # racing submitters.
  echo "== tsan: parallel substrate again under MOCEMG_THREADS=8 =="
  MOCEMG_THREADS=8 ctest --preset tsan -R 'Parallel|ServingFault|Sharded' \
    --output-on-failure
fi
