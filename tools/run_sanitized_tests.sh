#!/usr/bin/env bash
# Configure, build, and run the full test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (default) or
# ThreadSanitizer.
#
# Usage: tools/run_sanitized_tests.sh [asan|tsan] [ctest args...]
set -euo pipefail

preset="${1:-asan}"
shift || true
case "$preset" in
  asan|tsan) ;;
  *)
    echo "usage: $0 [asan|tsan] [ctest args...]" >&2
    exit 2
    ;;
esac

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" "$@"
