#!/usr/bin/env bash
# Build the release tree, run the microbenchmark suite, and merge the
# results into BENCH_pr2.json at the repo root.
#
# Usage: tools/run_benchmarks.sh [--update]
#
#   (no flag)  run and COMPARE against the committed BENCH_pr2.json:
#              exits non-zero if any benchmark regressed by more than
#              20% (ns/op), and prints the serial-vs-pre-PR table the
#              <=5% serial-regression criterion is judged on.
#   --update   additionally rewrite BENCH_pr2.json with this run's
#              numbers (the pre_pr section is carried forward).
#
# The pre_pr baselines were measured at the commit before the parallel
# substrate landed, same harness, same flags; they are embedded in
# BENCH_pr2.json so the comparison travels with the repo. To re-measure
# them instead of carrying them forward, point MOCEMG_BENCH_PREPR_DIR
# at a bench/ directory built from the pre-PR commit (e.g. a git
# worktree); its binaries then run inside the same passes as the
# current ones, so both sides see the same host load and the ratios
# are meaningful even on a noisy shared machine.
set -euo pipefail

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift || true
fi

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)" \
  --target micro_pipeline micro_db micro_fcm micro_svd micro_parallel \
  >/dev/null

out="build/bench_json"
mkdir -p "$out"
rm -f "$out"/*.json
# NOTE: the bundled google-benchmark predates duration suffixes — the
# flag takes a plain number of seconds, not "0.2s".
#
# Three passes over the whole suite, not --benchmark_repetitions: host
# load drifts on a minutes scale, so back-to-back repetitions agree
# with each other while the whole run sits inside one load wave.
# Spreading the samples across the suite duration lets the median (and
# the cv used to decide gating) see that drift.
prepr_dir="${MOCEMG_BENCH_PREPR_DIR:-}"
for i in 1 2 3; do
  for b in micro_pipeline micro_db micro_fcm micro_svd micro_parallel; do
    echo "== pass $i: $b ==" >&2
    "./build/bench/$b" \
      --benchmark_format=json \
      --benchmark_min_time=0.1 \
      >"$out/${b}_pass$i.json"
    if [[ -n "$prepr_dir" && -x "$prepr_dir/$b" ]]; then
      echo "== pass $i: $b (pre-PR) ==" >&2
      "$prepr_dir/$b" \
        --benchmark_format=json \
        --benchmark_min_time=0.1 \
        >"$out/${b}_prepr_pass$i.json"
    fi
  done
done

MOCEMG_BENCH_UPDATE="$update" python3 - "$out" <<'PYEOF'
import json, os, statistics, sys

out_dir = sys.argv[1]
update = os.environ.get("MOCEMG_BENCH_UPDATE") == "1"
bench_path = "BENCH_pr2.json"

# ns/op at the parent of this PR (release build, same harness,
# median of 3 runs interleaved with post-change runs on the same host
# so load drift cancels). Used to seed the pre_pr section on first
# --update; afterwards the committed file's own pre_pr section is
# authoritative and carried forward.
SEED_PRE_PR = {
    "BM_WindowFeatureExtraction/50": 280943.0,
    "BM_WindowFeatureExtraction/100": 183090.0,
    "BM_WindowFeatureExtraction/200": 105067.0,
    "BM_LinearKnn/100": 1735.0,
    "BM_LinearKnn/1000": 18264.0,
    "BM_LinearKnn/10000": 296616.0,
    "BM_IndexedKnn/100": 1589.0,
    "BM_IndexedKnn/1000": 7902.0,
    "BM_IndexedKnn/10000": 29520.0,
    "BM_IndexBuild/1000": 22316546.0,
    "BM_FcmFit/500/6": 6649992.0,
    "BM_FcmFit/500/40": 39204138.0,
    "BM_FcmFit/2000/15": 61931321.0,
    "BM_FcmFit/2000/40": 152343816.0,
    "BM_MembershipEval/6": 300.0,
    "BM_MembershipEval/15": 622.0,
    "BM_MembershipEval/40": 1583.0,
    "BM_ConditionRecording": 272971.0,
}

# Post-PR serial counterparts of the pre-PR benchmarks (thread-arg
# benches pin max_threads=1; names without a thread arg are unchanged).
SERIAL_NAME_MAP = {
    "BM_WindowFeatureExtraction/50": "BM_WindowFeatureExtraction/50/1",
    "BM_WindowFeatureExtraction/100": "BM_WindowFeatureExtraction/100/1",
    "BM_WindowFeatureExtraction/200": "BM_WindowFeatureExtraction/200/1",
}

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# A measurement is only trustworthy when its time-spread samples
# agree: on a shared host, scheduling noise alone can move a benchmark
# by 30%+. The cv (stddev/mean) across passes decides what is gated.
CV_STABLE = 0.10

samples = {}
items = {}
pre_samples = {}
for fname in sorted(os.listdir(out_dir)):
    if not fname.endswith(".json"):
        continue
    is_prepr = "_prepr_" in fname
    with open(os.path.join(out_dir, fname)) as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        name = b["name"]
        ns = b["real_time"] * UNIT_NS[b.get("time_unit", "ns")]
        if is_prepr:
            pre_samples.setdefault(name, []).append(ns)
            continue
        samples.setdefault(name, []).append(ns)
        if "items_per_second" in b:
            items.setdefault(name, []).append(b["items_per_second"])

results = {}
for name, vals in samples.items():
    med = statistics.median(vals)
    mean = statistics.fmean(vals)
    cv = statistics.pstdev(vals) / mean if mean > 0 else 0.0
    entry = {"ns_per_op": round(med, 1), "cv": round(cv, 3)}
    if name in items:
        entry["items_per_second"] = round(
            statistics.median(items[name]), 1)
    # Thread-arg convention: the trailing arg of the parallel-aware
    # benches is max_threads (0 = hardware budget).
    parts = name.split("/")
    threaded = name.startswith("BM_Parallel") or \
        name.startswith("BM_ClassifyBatch") or \
        name.startswith("BM_WindowFeatureExtraction")
    if threaded and len(parts) > 1:
        entry["threads"] = int(parts[-1])
    results[name] = entry

# speedup_vs_1t for every threaded bench family.
for name, entry in results.items():
    if "threads" not in entry or entry["threads"] == 1:
        continue
    base = "/".join(name.split("/")[:-1]) + "/1"
    if base in results:
        entry["speedup_vs_1t"] = round(
            results[base]["ns_per_op"] / entry["ns_per_op"], 3)

committed = None
if os.path.exists(bench_path):
    with open(bench_path) as f:
        committed = json.load(f)

if pre_samples:
    # Pre-PR binaries ran inside the same passes as the current ones:
    # use their live medians as the baseline so both sides of every
    # ratio saw the same host load.
    pre_pr = {name: round(statistics.median(vals), 1)
              for name, vals in sorted(pre_samples.items())
              if name in SEED_PRE_PR}
    print(f"pre_pr baselines re-measured in-pass "
          f"({len(pre_pr)} benchmarks)")
else:
    pre_pr = committed["pre_pr"] if committed else SEED_PRE_PR

# --- serial-vs-pre-PR table (the <=5% serial regression criterion) ---
#
# With in-pass pre-PR binaries the ratio is the median of PAIRED
# per-pass ratios: the two sides of each pair ran seconds apart, so
# pass-level load cancels out of the quotient. Without them (pre_pr
# carried forward from the committed file) it is a plain quotient of
# medians and the post-run cv decides stability.
print()
print("serial path vs pre-PR baseline (ratio < 1 is faster; "
      f"cv > {CV_STABLE:.2f} marks the run too noisy to judge):")
worst_serial = 0.0
serial_section = {}
for pre_name, pre_ns in sorted(pre_pr.items()):
    now_name = SERIAL_NAME_MAP.get(pre_name, pre_name)
    now = results.get(now_name)
    if now is None:
        print(f"  {pre_name:42s} MISSING from this run")
        continue
    pre_vals = pre_samples.get(pre_name, [])
    post_vals = samples.get(now_name, [])
    if pre_vals and len(pre_vals) == len(post_vals):
        # Both lists are in pass order (sorted filenames), so index i
        # pairs the two adjacent runs of pass i+1.
        ratios = [p / q for p, q in zip(post_vals, pre_vals)]
        ratio = statistics.median(ratios)
        mean = statistics.fmean(ratios)
        cv = statistics.pstdev(ratios) / mean if mean > 0 else 0.0
        paired = True
    else:
        ratio = now["ns_per_op"] / pre_ns
        cv = now.get("cv", 0.0)
        paired = False
    noisy = cv > CV_STABLE
    if not noisy:
        worst_serial = max(worst_serial, ratio)
    serial_section[pre_name] = {
        "pre_ns_per_op": pre_ns,
        "now_ns_per_op": now["ns_per_op"],
        "ratio": round(ratio, 3),
        "cv": round(cv, 3),
        "paired": paired,
    }
    flag = f"  NOISY (cv={cv:.2f})" if noisy else ""
    print(f"  {pre_name:42s} {pre_ns:14.0f} -> {now['ns_per_op']:14.0f}"
          f"  x{ratio:.3f}{flag}")
print(f"  worst stable ratio: x{worst_serial:.3f} "
      f"({'OK' if worst_serial <= 1.05 else 'ABOVE the 5% criterion'})")

# --- regression gate vs the committed BENCH_pr2.json ---
failures = []
noisy_skips = []
if committed:
    for name, old in committed.get("benchmarks", {}).items():
        now = results.get(name)
        if now is None:
            failures.append(f"{name}: present in BENCH_pr2.json but "
                            f"missing from this run")
            continue
        ratio = now["ns_per_op"] / old["ns_per_op"]
        if ratio > 1.20:
            line = (f"{name}: {old['ns_per_op']:.0f} -> "
                    f"{now['ns_per_op']:.0f} ns/op (x{ratio:.2f} > x1.20)")
            # Only gate on measurements whose repetitions agree; a
            # high-cv run says more about the host than the code.
            if now.get("cv", 0.0) > CV_STABLE:
                noisy_skips.append(line + f" [cv={now['cv']:.2f}]")
            else:
                failures.append(line)

cpus = len(os.sched_getaffinity(0))
doc = {
    "schema": "mocemg-bench-pr2",
    "host": {
        "cpus_online": cpus,
        "note": "thread-scaling speedups are bounded by cpus_online; "
                "on a 1-cpu host the parallel path can only match the "
                "serial path, and the win is the serial allocation "
                "diet measured against pre_pr.",
    },
    "pre_pr": pre_pr,
    "benchmarks": results,
    "serial_vs_pre_pr": serial_section,
}

if update:
    with open(bench_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote {bench_path} ({len(results)} benchmarks, "
          f"cpus_online={cpus})")

if noisy_skips:
    print("\nslower than BENCH_pr2.json but too noisy to gate:")
    for line in noisy_skips:
        print(f"  {line}")
if failures:
    print("\nBENCHMARK REGRESSION (>20% vs committed BENCH_pr2.json):",
          file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("\nno benchmark regressed more than 20% vs BENCH_pr2.json"
      if committed else
      "\nno committed BENCH_pr2.json yet - run with --update to create it")
PYEOF
