#!/usr/bin/env bash
# Build the release tree, run the microbenchmark suite, and merge the
# results into BENCH_pr2.json / BENCH_pr3.json / BENCH_pr4.json /
# BENCH_pr5.json / BENCH_pr6.json / BENCH_pr7.json at the repo root.
# The pr5 file additionally embeds a "serving" section measured by
# `mocemg_cli serve-bench --json` (QPS and p50/p99 latency for
# per-request exact scan, per-request index, and the batched
# QueryServer at 1/2/8 evaluation threads). The pr6 file holds the
# robustness-overhead pair (BM_ServedKnnRobust): mode 0 is the PR 5
# serving path, mode 1 the same path with deadlines + watermark armed
# but never firing; the run FAILS if the armed path is more than 5%
# slower on a stable measurement. The pr7 file holds the sharded
# scatter-gather families: the BM_ShardedKnn shard-count sweep, the
# single-vs-sharded serving pair, the mutate-while-serving pair
# (whose stable win — shard-aware cache revalidation — IS gated), and
# a second serve-bench run at --shards 4 --pipeline 2. Pipeline-
# overlap ratios are annotated, not gated, when cpus_online is too
# low to overlap anything. The pr8 file holds the scalar-vs-dispatched
# SIMD kernel pairs plus the 8-bit/4-bit coarse-tier A/B. The pr9 file
# holds the certified fp32 exact-tier families: cross-family
# fp32-vs-f64 kernel ratios (the dispatched rows carry a gated 1.4x
# claim on SIMD hosts; recorded-only on 1-cpu or scalar hosts), the
# end-to-end BM_IndexedKnnF32 pair, and a third serve-bench run at
# --exact-precision f32 whose rows carry the refine-rate counters.
# The pr10 file holds the query-block batched families
# (BM_BatchedKnn): a per-query NearestNeighbors loop paired against
# one BatchNearestNeighbors query-block call over the identical
# single-thread index, plus the serve-bench per-tier throughput and
# micro-batch-size histograms. On SIMD hosts (dispatched backend,
# >1 CPU) the batch >= 16 / dim >= 30 pairs carry a gated 1.3x
# claim and a stable or directional loss on ANY pair fails the run;
# 1-cpu or scalar-only hosts record ungated.
#
# Usage: tools/run_benchmarks.sh [--update] [--quick]
#
#   (no flag)  run and COMPARE against the committed BENCH_pr2.json,
#              BENCH_pr3.json, BENCH_pr4.json, BENCH_pr5.json, and
#              BENCH_pr6.json: exits non-zero if any benchmark regressed
#              by more than 20% (ns/op) or the robustness layer costs
#              more than 5% on the non-degraded serving path, and prints
#              the serial-vs-pre-PR table the <=5% serial-regression
#              criterion is judged on.
#   --update   additionally rewrite BENCH_pr2.json / BENCH_pr3.json /
#              BENCH_pr4.json / BENCH_pr5.json / BENCH_pr6.json with
#              this run's numbers (the pre_pr section is carried
#              forward).
#   --quick    smoke mode for CI: a single pass with reduced measurement
#              time, printing medians only — no regression gate, no
#              serial table, never writes. Proves the suite builds and
#              runs without paying full measurement cost (the per-binary
#              equivalent is `ctest -L bench-smoke`).
#
# The pre_pr baselines were measured at the commit before the parallel
# substrate landed, same harness, same flags; they are embedded in
# BENCH_pr2.json so the comparison travels with the repo. To re-measure
# them instead of carrying them forward, point MOCEMG_BENCH_PREPR_DIR
# at a bench/ directory built from the pre-PR commit (e.g. a git
# worktree); its binaries then run inside the same passes as the
# current ones, so both sides see the same host load and the ratios
# are meaningful even on a noisy shared machine.
set -euo pipefail

update=0
quick=0
for arg in "$@"; do
  case "$arg" in
    --update) update=1 ;;
    --quick) quick=1 ;;
    *)
      echo "usage: $0 [--update] [--quick]" >&2
      exit 2
      ;;
  esac
done
if [[ "$update" == 1 && "$quick" == 1 ]]; then
  echo "--quick never writes; drop one of --update/--quick" >&2
  exit 2
fi

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

suite="micro_pipeline micro_db micro_distance micro_fcm micro_svd \
micro_parallel micro_incremental micro_serving micro_kernels"

cmake --preset release >/dev/null
# shellcheck disable=SC2086
cmake --build --preset release -j "$(nproc)" --target $suite mocemg_cli \
  >/dev/null

out="build/bench_json"
mkdir -p "$out"
rm -f "$out"/*.json
# NOTE: the bundled google-benchmark predates duration suffixes — the
# flag takes a plain number of seconds, not "0.2s".
#
# Three passes over the whole suite, not --benchmark_repetitions: host
# load drifts on a minutes scale, so back-to-back repetitions agree
# with each other while the whole run sits inside one load wave.
# Spreading the samples across the suite duration lets the median (and
# the cv used to decide gating) see that drift.
prepr_dir="${MOCEMG_BENCH_PREPR_DIR:-}"
passes="1 2 3"
min_time=0.1
if [[ "$quick" == 1 ]]; then
  passes="1"
  min_time=0.01
fi
for i in $passes; do
  for b in $suite; do
    echo "== pass $i: $b ==" >&2
    "./build/bench/$b" \
      --benchmark_format=json \
      --benchmark_min_time="$min_time" \
      >"$out/${b}_pass$i.json"
    if [[ -n "$prepr_dir" && -x "$prepr_dir/$b" ]]; then
      echo "== pass $i: $b (pre-PR) ==" >&2
      "$prepr_dir/$b" \
        --benchmark_format=json \
        --benchmark_min_time="$min_time" \
        >"$out/${b}_prepr_pass$i.json"
    fi
  done
done

# One serve-bench run per invocation: its headline ratio
# (qps_vs_exact_scan) is measured within the one process, so it is
# already self-paired against host load the way the /0-vs-/1 families
# are. Quick mode shrinks the synthetic load to smoke-test scale.
serve_args=(--json)
if [[ "$quick" == 1 ]]; then
  serve_args+=(--records 2000 --queries 64 --unique 16)
fi
echo "== serve-bench ==" >&2
./build/tools/mocemg_cli serve-bench "${serve_args[@]}" \
  >"$out/serving.json"
echo "== serve-bench (sharded) ==" >&2
./build/tools/mocemg_cli serve-bench "${serve_args[@]}" \
  --shards 4 --pipeline 2 \
  >"$out/serving_sharded.json"
# PR 9: the same serve-bench load through the certified fp32 exact
# tier. Its JSON rows carry f32_scans / f32_refined / f32_refine_rate;
# answers are verified bit-identical in-process before any number is
# emitted.
echo "== serve-bench (fp32 exact tier) ==" >&2
./build/tools/mocemg_cli serve-bench "${serve_args[@]}" \
  --exact-precision f32 \
  >"$out/serving_f32.json"

# PR 8 host metadata + A/B sections. kernel-info doubles as the
# bit-exactness gate: it exits 1 if any usable SIMD backend diverges
# from the scalar reference on this CPU. coarse-bench measures the
# 8-bit vs 4-bit coarse tier (bytes/record, recall, certified bounds).
echo "== kernel-info ==" >&2
./build/tools/mocemg_cli kernel-info --json >"$out/kernel_info.json"
coarse_args=(--json)
if [[ "$quick" == 1 ]]; then
  coarse_args+=(--records 2000 --queries 64)
fi
echo "== coarse-bench ==" >&2
./build/tools/mocemg_cli coarse-bench "${coarse_args[@]}" \
  >"$out/coarse.json"

MOCEMG_BENCH_UPDATE="$update" MOCEMG_BENCH_QUICK="$quick" \
  python3 - "$out" <<'PYEOF'
import json, os, statistics, sys

out_dir = sys.argv[1]
update = os.environ.get("MOCEMG_BENCH_UPDATE") == "1"
quick = os.environ.get("MOCEMG_BENCH_QUICK") == "1"
bench_path = "BENCH_pr2.json"
bench3_path = "BENCH_pr3.json"
bench4_path = "BENCH_pr4.json"
bench5_path = "BENCH_pr5.json"
bench6_path = "BENCH_pr6.json"
bench7_path = "BENCH_pr7.json"
bench8_path = "BENCH_pr8.json"
bench9_path = "BENCH_pr9.json"
bench10_path = "BENCH_pr10.json"

# micro_incremental families live in BENCH_pr3.json, not BENCH_pr2.json:
# the pr2 file keeps its original scope (parallel substrate + serial
# allocation diet) so its gate history stays comparable. The distance-
# kernel families (micro_distance, paired scalar-vs-kernel, plus the
# micro_db dimension sweep) live in BENCH_pr4.json for the same reason.
PR3_PREFIXES = ("BM_BatchFeaturization", "BM_StreamingPushFrame",
                "BM_ExactWindowSvd", "BM_GramEigensolve")
PR4_PREFIXES = ("BM_KnnScan", "BM_IndexedScan", "BM_FcmEstep",
                "BM_IndexedKnnDim")
# The quantized-tier and serving families (PR 5) pair mode 0 (exact
# dot-form scan / per-request loop) against mode 1 (int8 coarse tier /
# batched QueryServer) and live in BENCH_pr5.json together with the
# serve-bench "serving" section.
PR5_PREFIXES = ("BM_QuantIndexedKnnDim", "BM_ServedKnn")
# The robustness-overhead pair (PR 6) measures the §12 machinery —
# deadline stamping, expiry sweeps, the watermark check — armed but
# never firing, against the plain PR 5 serving path. NOTE:
# "BM_ServedKnnRobust" also matches the "BM_ServedKnn" PR5 prefix, so
# PR6 names are carved out of the PR5 buckets explicitly below.
PR6_PREFIXES = ("BM_ServedKnnRobust",)
# The sharded scatter-gather families (PR 7): the shard-count fan-out
# sweep, single-vs-sharded serving, and the mutate-while-serving pair.
# The two BM_ServedKnn* names also match the PR5 prefix and are carved
# out of its buckets below, like PR6.
PR7_PREFIXES = ("BM_ShardedKnn", "BM_ServedKnnSharded",
                "BM_ServedKnnMutate")
# The SIMD-dispatch families (PR 8) pair mode 0 (the scalar reference
# table called directly — the previous auto-vectorized build) against
# mode 1 (the runtime-dispatched widest backend). The int8 families'
# wins are gated directionally; the double families depend on how well
# the auto-vectorizer already did and are annotated only.
PR8_PREFIXES = ("BM_SsdOneToMany", "BM_SsdBlocked", "BM_Ssd4OneToMany",
                "BM_L2OneToMany")
PR8_GATED_PREFIXES = ("BM_SsdOneToMany", "BM_SsdBlocked")
# The fp32 exact-tier families (PR 9). The kernel families carry the
# usual {dim, mode} scalar-vs-dispatched pairing; the fp32-vs-f64
# ratio is computed ACROSS families at mode 1 (dispatched) — each
# pass ran both families seconds apart, so the quotient still cancels
# host load. BM_IndexedKnnF32 pairs mode 0 (f64 exact scan) against
# mode 1 (fp32 mirror scan + certified double refine) end to end.
# NOTE: "BM_L2OneToMany" (PR 8) is a proper prefix of none of these;
# keep it that way — the buckets are prefix-matched.
PR9_PREFIXES = ("BM_L2F32OneToMany", "BM_L2DotF32OneToMany",
                "BM_L2DotF64OneToMany", "BM_IndexedKnnF32")
# The query-block batched family (PR 10) pairs mode 0 (a per-query
# NearestNeighbors loop) against mode 1 (one BatchNearestNeighbors
# call) at each {batch, dim}; the name is BM_BatchedKnn/<batch>/<dim>
# with the mode as the trailing arg like every other pair. The prefix
# collides with no other bucket.
PR10_PREFIXES = ("BM_BatchedKnn",)

# ns/op at the parent of this PR (release build, same harness,
# median of 3 runs interleaved with post-change runs on the same host
# so load drift cancels). Used to seed the pre_pr section on first
# --update; afterwards the committed file's own pre_pr section is
# authoritative and carried forward.
SEED_PRE_PR = {
    "BM_WindowFeatureExtraction/50": 280943.0,
    "BM_WindowFeatureExtraction/100": 183090.0,
    "BM_WindowFeatureExtraction/200": 105067.0,
    "BM_LinearKnn/100": 1735.0,
    "BM_LinearKnn/1000": 18264.0,
    "BM_LinearKnn/10000": 296616.0,
    "BM_IndexedKnn/100": 1589.0,
    "BM_IndexedKnn/1000": 7902.0,
    "BM_IndexedKnn/10000": 29520.0,
    "BM_IndexBuild/1000": 22316546.0,
    "BM_FcmFit/500/6": 6649992.0,
    "BM_FcmFit/500/40": 39204138.0,
    "BM_FcmFit/2000/15": 61931321.0,
    "BM_FcmFit/2000/40": 152343816.0,
    "BM_MembershipEval/6": 300.0,
    "BM_MembershipEval/15": 622.0,
    "BM_MembershipEval/40": 1583.0,
    "BM_ConditionRecording": 272971.0,
}

# Post-PR serial counterparts of the pre-PR benchmarks (thread-arg
# benches pin max_threads=1; names without a thread arg are unchanged).
SERIAL_NAME_MAP = {
    "BM_WindowFeatureExtraction/50": "BM_WindowFeatureExtraction/50/1",
    "BM_WindowFeatureExtraction/100": "BM_WindowFeatureExtraction/100/1",
    "BM_WindowFeatureExtraction/200": "BM_WindowFeatureExtraction/200/1",
}

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# A measurement is only trustworthy when its time-spread samples
# agree: on a shared host, scheduling noise alone can move a benchmark
# by 30%+. The cv (stddev/mean) across passes decides what is gated.
CV_STABLE = 0.10

serving = None
serving_path = os.path.join(out_dir, "serving.json")
if os.path.exists(serving_path):
    with open(serving_path) as f:
        serving = json.load(f)
serving_sharded = None
serving_sharded_path = os.path.join(out_dir, "serving_sharded.json")
if os.path.exists(serving_sharded_path):
    with open(serving_sharded_path) as f:
        serving_sharded = json.load(f)
serving_f32 = None
serving_f32_path = os.path.join(out_dir, "serving_f32.json")
if os.path.exists(serving_f32_path):
    with open(serving_f32_path) as f:
        serving_f32 = json.load(f)
kernel_info = None
kernel_info_path = os.path.join(out_dir, "kernel_info.json")
if os.path.exists(kernel_info_path):
    with open(kernel_info_path) as f:
        kernel_info = json.load(f)
coarse = None
coarse_path = os.path.join(out_dir, "coarse.json")
if os.path.exists(coarse_path):
    with open(coarse_path) as f:
        coarse = json.load(f)

samples = {}
items = {}
pre_samples = {}
for fname in sorted(os.listdir(out_dir)):
    if not fname.endswith(".json") or fname == "serving.json":
        continue
    is_prepr = "_prepr_" in fname
    with open(os.path.join(out_dir, fname)) as f:
        doc = json.load(f)
    for b in doc.get("benchmarks", []):
        name = b["name"]
        ns = b["real_time"] * UNIT_NS[b.get("time_unit", "ns")]
        if is_prepr:
            pre_samples.setdefault(name, []).append(ns)
            continue
        samples.setdefault(name, []).append(ns)
        if "items_per_second" in b:
            items.setdefault(name, []).append(b["items_per_second"])

results = {}
for name, vals in samples.items():
    med = statistics.median(vals)
    mean = statistics.fmean(vals)
    cv = statistics.pstdev(vals) / mean if mean > 0 else 0.0
    entry = {"ns_per_op": round(med, 1), "cv": round(cv, 3)}
    if name in items:
        entry["items_per_second"] = round(
            statistics.median(items[name]), 1)
    # Thread-arg convention: the trailing arg of the parallel-aware
    # benches is max_threads (0 = hardware budget).
    parts = name.split("/")
    threaded = name.startswith("BM_Parallel") or \
        name.startswith("BM_ClassifyBatch") or \
        name.startswith("BM_WindowFeatureExtraction")
    if threaded and len(parts) > 1:
        entry["threads"] = int(parts[-1])
    results[name] = entry

# speedup_vs_1t for every threaded bench family.
for name, entry in results.items():
    if "threads" not in entry or entry["threads"] == 1:
        continue
    base = "/".join(name.split("/")[:-1]) + "/1"
    if base in results:
        entry["speedup_vs_1t"] = round(
            results[base]["ns_per_op"] / entry["ns_per_op"], 3)

# --- paired mode-0-vs-mode-1 speedups (BENCH_pr3/pr4.json) ---
#
# The two modes of each family ran inside the same binary seconds
# apart, so the per-pass ratio baseline/optimized cancels pass-level
# host load; the reported speedup is the median of those paired
# ratios. PR3 pairs exact vs incremental featurization; PR4 pairs the
# seed scalar/AoS paths vs the distance-kernel paths.
def paired_speedups(prefixes, base_key, new_key):
    pair_groups = {}
    for name, vals in samples.items():
        if not name.startswith(prefixes):
            continue
        parts = name.split("/")
        if parts[-1] not in ("0", "1"):
            continue
        pair_groups.setdefault("/".join(parts[:-1]), {})[parts[-1]] = vals
    out = {}
    for base, modes in sorted(pair_groups.items()):
        baseline, new = modes.get("0"), modes.get("1")
        if not baseline or not new or len(baseline) != len(new):
            continue
        ratios = [b / v for b, v in zip(baseline, new)]
        mean = statistics.fmean(ratios)
        # min/max over the per-pass ratios: a magnitude claim needs a
        # small cv, but a win/no-win claim only needs every pass to
        # land on the same side of 1.0 — gates below use min_ratio for
        # that directional test.
        out[base] = {
            base_key: round(statistics.median(baseline), 1),
            new_key: round(statistics.median(new), 1),
            "speedup": round(statistics.median(ratios), 3),
            "min_ratio": round(min(ratios), 3),
            "max_ratio": round(max(ratios), 3),
            "cv": round(statistics.pstdev(ratios) / mean if mean > 0
                        else 0.0, 3),
        }
    return out

def print_speedups(title, speedup_map, base_key, new_key):
    if not speedup_map:
        return
    print(title)
    for base, s in speedup_map.items():
        print(f"  {base:38s} {s[base_key]:12.0f} -> "
              f"{s[new_key]:12.0f}  x{s['speedup']:.2f}")

speedups = paired_speedups(PR3_PREFIXES, "exact_ns_per_op",
                           "incremental_ns_per_op")
print_speedups("exact vs incremental (paired per-pass ratios; "
               "speedup > 1 means incremental is faster):",
               speedups, "exact_ns_per_op", "incremental_ns_per_op")
speedups4 = paired_speedups(PR4_PREFIXES, "scalar_ns_per_op",
                            "kernel_ns_per_op")
print_speedups("scalar vs distance-kernel (paired per-pass ratios; "
               "speedup > 1 means the kernel path is faster):",
               speedups4, "scalar_ns_per_op", "kernel_ns_per_op")
speedups5 = paired_speedups(PR5_PREFIXES, "baseline_ns_per_op",
                            "optimized_ns_per_op")
speedups6 = {k: v for k, v in speedups5.items()
             if k.startswith(PR6_PREFIXES)}
speedups7 = {k: v for k, v in speedups5.items()
             if k.startswith(PR7_PREFIXES)}
speedups5 = {k: v for k, v in speedups5.items()
             if not k.startswith(PR6_PREFIXES + PR7_PREFIXES)}
print_speedups("exact vs quantized/served (paired per-pass ratios; "
               "speedup > 1 means the two-tier/served path is faster):",
               speedups5, "baseline_ns_per_op", "optimized_ns_per_op")
print_speedups("plain vs robustness-armed serving (paired per-pass "
               "ratios; speedup < 1 means the armed path is slower — "
               "must stay above 0.95):",
               speedups6, "baseline_ns_per_op", "optimized_ns_per_op")
print_speedups("single-index vs sharded serving (paired per-pass "
               "ratios; BM_ServedKnnMutate > 1 is the shard-aware "
               "cache-revalidation win and is gated; "
               "BM_ServedKnnSharded measures fan-out + pipeline and "
               "is annotated only on low-cpu hosts):",
               speedups7, "baseline_ns_per_op", "optimized_ns_per_op")
speedups8 = paired_speedups(PR8_PREFIXES, "scalar_ns_per_op",
                            "dispatched_ns_per_op")
print_speedups("scalar table vs dispatched SIMD backend (paired "
               "per-pass ratios; speedup > 1 means the dispatched "
               "backend is faster; outputs are bit-identical):",
               speedups8, "scalar_ns_per_op", "dispatched_ns_per_op")

# --- fp32 exact-tier pairings (BENCH_pr9.json) ---
#
# Two pairings. (a) Cross-family, same {dim, mode}: the f64 family
# over its fp32 mirror family. Both families ran inside the same pass
# of the same binary seconds apart, so the per-pass quotient cancels
# host load exactly like the mode pairs do. (b) BM_IndexedKnnF32 is a
# plain mode pair: mode 0 answers through the f64 scan, mode 1 through
# the fp32 mirror + certified refine — identical bit-for-bit answers,
# so the ratio is pure wall-clock.
def cross_family_speedups(base_prefix, new_prefix):
    out = {}
    for name, vals in sorted(samples.items()):
        if not name.startswith(new_prefix + "/"):
            continue
        base_vals = samples.get(base_prefix + name[len(new_prefix):])
        if not base_vals or len(base_vals) != len(vals):
            continue
        ratios = [b / v for b, v in zip(base_vals, vals)]
        mean = statistics.fmean(ratios)
        out[name] = {
            "f64_ns_per_op": round(statistics.median(base_vals), 1),
            "f32_ns_per_op": round(statistics.median(vals), 1),
            "speedup": round(statistics.median(ratios), 3),
            "min_ratio": round(min(ratios), 3),
            "max_ratio": round(max(ratios), 3),
            "cv": round(statistics.pstdev(ratios) / mean if mean > 0
                        else 0.0, 3),
        }
    return out

f32_kernel_pairs = {}
f32_kernel_pairs.update(
    cross_family_speedups("BM_L2OneToMany", "BM_L2F32OneToMany"))
f32_kernel_pairs.update(
    cross_family_speedups("BM_L2DotF64OneToMany", "BM_L2DotF32OneToMany"))
if f32_kernel_pairs:
    print("f64 vs fp32 kernel (cross-family paired per-pass ratios; "
          "speedup > 1 means the fp32 kernel is faster; /1 rows are "
          "the dispatched backend and carry the 1.4x claim):")
    for base, s in f32_kernel_pairs.items():
        print(f"  {base:38s} {s['f64_ns_per_op']:12.0f} -> "
              f"{s['f32_ns_per_op']:12.0f}  x{s['speedup']:.2f}")
speedups9 = paired_speedups(("BM_IndexedKnnF32",), "f64_ns_per_op",
                            "f32_ns_per_op")
print_speedups("f64 vs fp32 exact tier, end-to-end indexed kNN "
               "(paired per-pass ratios; answers are bit-identical):",
               speedups9, "f64_ns_per_op", "f32_ns_per_op")
speedups9_dispatch = paired_speedups(
    ("BM_L2F32OneToMany", "BM_L2DotF32OneToMany", "BM_L2DotF64OneToMany"),
    "scalar_ns_per_op", "dispatched_ns_per_op")
speedups10 = paired_speedups(PR10_PREFIXES, "per_query_ns_per_op",
                             "batched_ns_per_op")
print_speedups("per-query loop vs query-block batched scan (paired "
               "per-pass ratios; answers are bit-identical; speedup "
               "> 1 means the many-to-many block engine is faster):",
               speedups10, "per_query_ns_per_op", "batched_ns_per_op")
if kernel_info:
    print(f"kernel dispatch: active={kernel_info.get('active')} "
          f"usable={kernel_info.get('usable')} "
          f"equivalence_ok={kernel_info.get('equivalence_ok')}")
if coarse:
    for key in ("eight_bit", "four_bit"):
        row = coarse.get(key)
        if row:
            print(f"coarse tier {row['bits']}-bit: "
                  f"{row['bytes_per_record']} bytes/record, "
                  f"recall@k {row['recall_at_k']:.3f}, "
                  f"{row['coarse_qps']:.0f} coarse qps")
if serving:
    print("serving (mocemg_cli serve-bench, "
          f"{serving['records']}x{serving['dim']}):")
    print(f"  exact scan/request  {serving['exact_scan']['qps']:10.0f}"
          " qps")
    print(f"  index/request       {serving['indexed']['qps']:10.0f}"
          " qps")
    for row in serving.get("served", []):
        print(f"  served ({row['threads']} threads)   "
              f"{row['qps']:10.0f} qps  "
              f"x{row['qps_vs_exact_scan']:.2f} vs scan  "
              f"p50 {row['p50_us']:.0f}us p99 {row['p99_us']:.0f}us")
if serving_sharded:
    print(f"sharded serving (serve-bench --shards "
          f"{serving_sharded.get('shards')} --pipeline "
          f"{serving_sharded.get('pipeline')}):")
    for row in serving_sharded.get("served", []):
        print(f"  served ({row['threads']} threads)   "
              f"{row['qps']:10.0f} qps  "
              f"x{row['qps_vs_exact_scan']:.2f} vs scan  "
              f"p50 {row['p50_us']:.0f}us p99 {row['p99_us']:.0f}us")
if serving_f32:
    print("fp32 exact-tier serving (serve-bench --exact-precision "
          "f32; answers bit-identical to the f64 scan):")
    for row in serving_f32.get("served", []):
        rate = row.get("f32_refine_rate", 0.0)
        print(f"  served ({row['threads']} threads)   "
              f"{row['qps']:10.0f} qps  "
              f"x{row['qps_vs_exact_scan']:.2f} vs scan  "
              f"refine rate {rate:.4f}")

if quick:
    print("\nquick mode: single-pass medians (no gate, nothing "
          "written):")
    for name in sorted(results):
        print(f"  {name:46s} {results[name]['ns_per_op']:14.1f} ns/op")
    sys.exit(0)

committed = None
if os.path.exists(bench_path):
    with open(bench_path) as f:
        committed = json.load(f)
committed3 = None
if os.path.exists(bench3_path):
    with open(bench3_path) as f:
        committed3 = json.load(f)
committed4 = None
if os.path.exists(bench4_path):
    with open(bench4_path) as f:
        committed4 = json.load(f)
committed5 = None
if os.path.exists(bench5_path):
    with open(bench5_path) as f:
        committed5 = json.load(f)
committed6 = None
if os.path.exists(bench6_path):
    with open(bench6_path) as f:
        committed6 = json.load(f)
committed7 = None
if os.path.exists(bench7_path):
    with open(bench7_path) as f:
        committed7 = json.load(f)
committed8 = None
if os.path.exists(bench8_path):
    with open(bench8_path) as f:
        committed8 = json.load(f)
committed9 = None
if os.path.exists(bench9_path):
    with open(bench9_path) as f:
        committed9 = json.load(f)
committed10 = None
if os.path.exists(bench10_path):
    with open(bench10_path) as f:
        committed10 = json.load(f)

if pre_samples:
    # Pre-PR binaries ran inside the same passes as the current ones:
    # use their live medians as the baseline so both sides of every
    # ratio saw the same host load.
    pre_pr = {name: round(statistics.median(vals), 1)
              for name, vals in sorted(pre_samples.items())
              if name in SEED_PRE_PR}
    print(f"pre_pr baselines re-measured in-pass "
          f"({len(pre_pr)} benchmarks)")
else:
    pre_pr = committed["pre_pr"] if committed else SEED_PRE_PR

# --- serial-vs-pre-PR table (the <=5% serial regression criterion) ---
#
# With in-pass pre-PR binaries the ratio is the median of PAIRED
# per-pass ratios: the two sides of each pair ran seconds apart, so
# pass-level load cancels out of the quotient. Without them (pre_pr
# carried forward from the committed file) it is a plain quotient of
# medians and the post-run cv decides stability.
print()
print("serial path vs pre-PR baseline (ratio < 1 is faster; "
      f"cv > {CV_STABLE:.2f} marks the run too noisy to judge):")
worst_serial = 0.0
serial_section = {}
for pre_name, pre_ns in sorted(pre_pr.items()):
    now_name = SERIAL_NAME_MAP.get(pre_name, pre_name)
    now = results.get(now_name)
    if now is None:
        print(f"  {pre_name:42s} MISSING from this run")
        continue
    pre_vals = pre_samples.get(pre_name, [])
    post_vals = samples.get(now_name, [])
    if pre_vals and len(pre_vals) == len(post_vals):
        # Both lists are in pass order (sorted filenames), so index i
        # pairs the two adjacent runs of pass i+1.
        ratios = [p / q for p, q in zip(post_vals, pre_vals)]
        ratio = statistics.median(ratios)
        mean = statistics.fmean(ratios)
        cv = statistics.pstdev(ratios) / mean if mean > 0 else 0.0
        paired = True
    else:
        ratio = now["ns_per_op"] / pre_ns
        cv = now.get("cv", 0.0)
        paired = False
    noisy = cv > CV_STABLE
    if not noisy:
        worst_serial = max(worst_serial, ratio)
    serial_section[pre_name] = {
        "pre_ns_per_op": pre_ns,
        "now_ns_per_op": now["ns_per_op"],
        "ratio": round(ratio, 3),
        "cv": round(cv, 3),
        "paired": paired,
    }
    flag = f"  NOISY (cv={cv:.2f})" if noisy else ""
    print(f"  {pre_name:42s} {pre_ns:14.0f} -> {now['ns_per_op']:14.0f}"
          f"  x{ratio:.3f}{flag}")
print(f"  worst stable ratio: x{worst_serial:.3f} "
      f"({'OK' if worst_serial <= 1.05 else 'ABOVE the 5% criterion'})")

# --- regression gate vs the committed BENCH_pr2.json / BENCH_pr3.json ---
failures = []
noisy_skips = []
for path, doc_ in ((bench_path, committed), (bench3_path, committed3),
                   (bench4_path, committed4), (bench5_path, committed5),
                   (bench6_path, committed6), (bench7_path, committed7),
                   (bench8_path, committed8), (bench9_path, committed9),
                   (bench10_path, committed10)):
    if not doc_:
        continue
    for name, old in doc_.get("benchmarks", {}).items():
        now = results.get(name)
        if now is None:
            failures.append(f"{name}: present in {path} but "
                            f"missing from this run")
            continue
        ratio = now["ns_per_op"] / old["ns_per_op"]
        if ratio > 1.20:
            line = (f"{name}: {old['ns_per_op']:.0f} -> "
                    f"{now['ns_per_op']:.0f} ns/op (x{ratio:.2f} > x1.20)")
            # Only gate on measurements whose repetitions agree; a
            # high-cv run says more about the host than the code.
            if now.get("cv", 0.0) > CV_STABLE:
                noisy_skips.append(line + f" [cv={now['cv']:.2f}]")
            else:
                failures.append(line)

cpus = len(os.sched_getaffinity(0))
results2 = {n: e for n, e in results.items()
            if not n.startswith(PR3_PREFIXES + PR4_PREFIXES +
                                PR5_PREFIXES + PR7_PREFIXES +
                                PR8_PREFIXES + PR9_PREFIXES +
                                PR10_PREFIXES)}
results3 = {n: e for n, e in results.items()
            if n.startswith(PR3_PREFIXES)}
results4 = {n: e for n, e in results.items()
            if n.startswith(PR4_PREFIXES)}
results5 = {n: e for n, e in results.items()
            if n.startswith(PR5_PREFIXES) and
            not n.startswith(PR6_PREFIXES + PR7_PREFIXES)}
results6 = {n: e for n, e in results.items()
            if n.startswith(PR6_PREFIXES)}
results7 = {n: e for n, e in results.items()
            if n.startswith(PR7_PREFIXES)}
results8 = {n: e for n, e in results.items()
            if n.startswith(PR8_PREFIXES)}
results9 = {n: e for n, e in results.items()
            if n.startswith(PR9_PREFIXES)}
results10 = {n: e for n, e in results.items()
             if n.startswith(PR10_PREFIXES)}

# --- robustness-overhead check (the <5% non-degraded criterion) ---
#
# The armed-but-idle robustness layer must not slow the serving fast
# path: a stable paired ratio (plain/armed) below 0.95 fails the run.
# Noisy pairs are reported but not gated, same policy as everywhere
# else in this script.
robust_check = {}
for base, s in speedups6.items():
    stable = s["cv"] <= CV_STABLE
    ok = s["speedup"] >= 0.95 or not stable
    robust_check[base] = {
        "speedup": s["speedup"],
        "cv": s["cv"],
        "stable": stable,
        "ok": ok,
    }
    if not ok:
        failures.append(
            f"{base}: robustness layer costs "
            f"{(1.0 / s['speedup'] - 1.0) * 100.0:.1f}% on the "
            f"non-degraded serving path (x{s['speedup']:.3f} < x0.95, "
            f"cv={s['cv']:.2f})")
    elif stable:
        print(f"robustness overhead {base}: x{s['speedup']:.3f} "
              f"(within the 5% budget)")
    else:
        print(f"robustness overhead {base}: x{s['speedup']:.3f} "
              f"NOISY (cv={s['cv']:.2f}) — not gated")

# --- sharded serving checks (PR 7) ---
#
# BM_ServedKnnMutate is the family the sharded cache key exists for:
# its stable paired ratio (stale-index full-invalidation serving vs
# ApplyUpdate + shard-aware revalidation) must be a win, and IS gated.
# BM_ServedKnnSharded measures scatter-gather fan-out plus the wave
# pipeline; on a host with too few CPUs the pipeline cannot overlap
# stages and sharding is pure overhead, so that ratio is annotated,
# never gated.
sharded_check = {}
for base, s in speedups7.items():
    stable = s["cv"] <= CV_STABLE
    # Magnitude can be noisy while the win itself is unambiguous: if
    # the slowest pass still beat the baseline by 20%+, every sample
    # agrees on direction and the win/loss gate may fire either way.
    directional_win = s.get("min_ratio", 0.0) >= 1.2
    directional_loss = s.get("max_ratio", float("inf")) < 1.0
    is_mutate = base.startswith("BM_ServedKnnMutate")
    ok = True
    if is_mutate and (directional_loss or (stable and s["speedup"] < 1.0)):
        ok = False
        failures.append(
            f"{base}: shard-aware cache revalidation lost to full "
            f"invalidation (x{s['speedup']:.3f} < x1.0, "
            f"cv={s['cv']:.2f})")
    sharded_check[base] = {
        "speedup": s["speedup"],
        "min_ratio": s.get("min_ratio"),
        "max_ratio": s.get("max_ratio"),
        "cv": s["cv"],
        "stable": stable,
        "directional_win": directional_win,
        "gated": is_mutate,
        "ok": ok,
    }
    if is_mutate:
        label = "mutate-while-serving win"
    else:
        label = "sharded fan-out/pipeline ratio"
    note = ""
    if not stable and directional_win:
        note = (f" WIN in every pass (worst x{s['min_ratio']:.2f}); "
                f"magnitude noisy (cv={s['cv']:.2f})")
    elif not stable:
        note = f" NOISY (cv={s['cv']:.2f}) — not gated"
    elif not is_mutate and cpus < 2:
        note = (f" (annotation only: cpus_online={cpus} cannot "
                "overlap pipeline stages, so fan-out overhead "
                "dominates)")
    print(f"{label} {base}: x{s['speedup']:.3f}{note}")

# --- SIMD dispatch checks (PR 8) ---
#
# kernel-info already gated bit-exactness (the script would have died
# on its non-zero exit). Here the int8 coarse families must not LOSE
# to the scalar table: a directional loss (every pass slower) or a
# stable ratio below 1.0 on a gated family fails the run. The double
# families are annotated only — on hosts where the auto-vectorizer
# already emits wide code their ratio is legitimately near 1.0.
dispatch_check = {}
for base, s in speedups8.items():
    stable = s["cv"] <= CV_STABLE
    directional_win = s.get("min_ratio", 0.0) >= 1.0
    directional_loss = s.get("max_ratio", float("inf")) < 1.0
    gated = base.startswith(PR8_GATED_PREFIXES)
    ok = True
    if gated and (directional_loss or (stable and s["speedup"] < 1.0)):
        ok = False
        failures.append(
            f"{base}: dispatched SIMD backend lost to the scalar table "
            f"(x{s['speedup']:.3f} < x1.0, cv={s['cv']:.2f})")
    dispatch_check[base] = {
        "speedup": s["speedup"],
        "min_ratio": s.get("min_ratio"),
        "max_ratio": s.get("max_ratio"),
        "cv": s["cv"],
        "stable": stable,
        "directional_win": directional_win,
        "gated": gated,
        "ok": ok,
    }
if kernel_info is not None and not kernel_info.get("equivalence_ok"):
    failures.append("kernel-info reported a backend/scalar divergence")
if kernel_info is not None and kernel_info.get("op_coverage_ok") is False:
    failures.append("kernel-info reported a backend with missing ops")

# --- fp32 exact-tier checks (PR 9) ---
#
# The tier's perf claim has two halves, both gated only on hosts that
# can exhibit them: a real SIMD backend is active AND there is more
# than one CPU online (the "SIMD host" condition — on 1-cpu or
# scalar-only hosts every ratio is recorded but nothing is gated).
#   (a) Kernel claim: the dispatched (/1) fp32-vs-f64 cross-family
#       ratio must reach 1.4x somewhere in the dim sweep — half the
#       bytes per row should buy at least that once rows stream from
#       memory — and no dispatched pair may lose directionally.
#   (b) End-to-end claim: BM_IndexedKnnF32 must show an indexed-kNN
#       win at some dim, and may not lose at the bandwidth-bound dims
#       (>= 64). The narrow dim-30 row is annotated only: there the
#       scan is a small fraction of per-query time, so its ratio says
#       little about the tier.
f32_simd_host = bool(kernel_info) and \
    kernel_info.get("active") not in (None, "scalar")
f32_gated = f32_simd_host and cpus >= 2
f32_check = {}
best_kernel_win = 0.0
for base, s in sorted(f32_kernel_pairs.items()):
    stable = s["cv"] <= CV_STABLE
    dispatched = base.endswith("/1")
    directional_loss = s["max_ratio"] < 1.0
    ok = True
    if f32_gated and dispatched and \
            (directional_loss or (stable and s["speedup"] < 1.0)):
        ok = False
        failures.append(
            f"{base}: fp32 kernel lost to its f64 counterpart "
            f"(x{s['speedup']:.3f} < x1.0, cv={s['cv']:.2f})")
    if dispatched and (stable or s["min_ratio"] >= 1.0):
        best_kernel_win = max(best_kernel_win, s["speedup"])
    f32_check[base] = {
        "speedup": s["speedup"],
        "min_ratio": s["min_ratio"],
        "max_ratio": s["max_ratio"],
        "cv": s["cv"],
        "stable": stable,
        "gated": bool(f32_gated and dispatched),
        "ok": ok,
    }
if f32_gated and f32_kernel_pairs:
    if best_kernel_win >= 1.4:
        print(f"fp32 kernel claim: best dispatched fp32-vs-f64 win "
              f"x{best_kernel_win:.2f} (>= x1.4)")
    elif best_kernel_win > 0.0:
        failures.append(
            f"fp32 kernel claim: best dispatched fp32-vs-f64 win is "
            f"x{best_kernel_win:.2f}, below the 1.4x claim on a SIMD "
            f"host (active={kernel_info.get('active')})")
    else:
        print("fp32 kernel claim: all dispatched pairs too noisy to "
              "judge — not gated")
elif f32_kernel_pairs:
    print(f"fp32 kernel claim recorded only (simd_host="
          f"{f32_simd_host}, cpus_online={cpus})")
best_e2e_win = 0.0
for base, s in sorted(speedups9.items()):
    stable = s["cv"] <= CV_STABLE
    directional_loss = s["max_ratio"] < 1.0
    dim = int(base.split("/")[1])
    bandwidth_bound = dim >= 64
    ok = True
    if f32_gated and bandwidth_bound and \
            (directional_loss or (stable and s["speedup"] < 1.0)):
        ok = False
        failures.append(
            f"{base}: fp32 exact tier lost to the f64 scan end to end "
            f"(x{s['speedup']:.3f} < x1.0, cv={s['cv']:.2f})")
    if stable or s["min_ratio"] >= 1.0:
        best_e2e_win = max(best_e2e_win, s["speedup"])
    f32_check[base] = {
        "speedup": s["speedup"],
        "min_ratio": s["min_ratio"],
        "max_ratio": s["max_ratio"],
        "cv": s["cv"],
        "stable": stable,
        "gated": bool(f32_gated and bandwidth_bound),
        "ok": ok,
    }
if f32_gated and speedups9:
    if best_e2e_win > 1.0:
        print(f"fp32 end-to-end claim: best indexed-kNN win "
              f"x{best_e2e_win:.2f}")
    elif best_e2e_win > 0.0:
        failures.append(
            f"fp32 end-to-end claim: no indexed-kNN improvement on a "
            f"SIMD host (best stable x{best_e2e_win:.2f})")
    else:
        print("fp32 end-to-end claim: all pairs too noisy to judge — "
              "not gated")
elif speedups9:
    print(f"fp32 end-to-end claim recorded only (simd_host="
          f"{f32_simd_host}, cpus_online={cpus})")

# --- query-block batched-scan checks (PR 10) ---
#
# Batched and per-query answers are bit-identical by the §16 contract
# (and by the query_block_test grid), so every ratio is pure
# wall-clock. The claim is amortization: one many-to-many kernel call
# per (tier, partition group) must beat batch separate one-to-many
# scans once the block is wide enough to amortize the per-partition
# bytes. Gated only on SIMD hosts (same condition as PR 9: a real
# dispatched backend AND >1 CPU online):
#   (a) Claim: the best stable batch >= 16 / dim >= 30 pair must reach
#       1.3x — re-streaming the same rows for 16+ queries has to buy
#       at least that.
#   (b) No pair — including the small batch-4 warmup row — may lose
#       directionally or show a stable ratio below 1.0: batching must
#       never cost latency.
# 1-cpu or scalar-only hosts record every ratio ungated.
batched_gated = f32_simd_host and cpus >= 2
batched_check = {}
best_batched_win = 0.0
for base, s in sorted(speedups10.items()):
    stable = s["cv"] <= CV_STABLE
    directional_loss = s["max_ratio"] < 1.0
    batch = int(base.split("/")[1])
    dim = int(base.split("/")[2])
    claim_row = batch >= 16 and dim >= 30
    ok = True
    if batched_gated and \
            (directional_loss or (stable and s["speedup"] < 1.0)):
        ok = False
        failures.append(
            f"{base}: query-block batched scan lost to the per-query "
            f"loop (x{s['speedup']:.3f} < x1.0, cv={s['cv']:.2f})")
    if claim_row and (stable or s["min_ratio"] >= 1.0):
        best_batched_win = max(best_batched_win, s["speedup"])
    batched_check[base] = {
        "speedup": s["speedup"],
        "min_ratio": s["min_ratio"],
        "max_ratio": s["max_ratio"],
        "cv": s["cv"],
        "stable": stable,
        "claim_row": claim_row,
        "gated": batched_gated,
        "ok": ok,
    }
if batched_gated and speedups10:
    if best_batched_win >= 1.3:
        print(f"batched-knn claim: best stable batch>=16/dim>=30 win "
              f"x{best_batched_win:.2f} (>= x1.3)")
    elif best_batched_win > 0.0:
        failures.append(
            f"batched-knn claim: best stable batch>=16/dim>=30 win is "
            f"x{best_batched_win:.2f}, below the 1.3x claim on a SIMD "
            f"host (active={kernel_info.get('active')})")
    else:
        print("batched-knn claim: all claim rows too noisy to judge — "
              "not gated")
elif speedups10:
    print(f"batched-knn claim recorded only (simd_host="
          f"{f32_simd_host}, cpus_online={cpus})")

# The serve-bench rows now carry per-tier throughput and the
# micro-batch-size histogram; BENCH_pr10.json keeps just those fields
# per served row so the batching behavior travels with the numbers.
def served_batching_rows(doc_):
    rows = []
    for row in (doc_ or {}).get("served", []):
        rows.append({
            "threads": row.get("threads"),
            "qps": row.get("qps"),
            "tier_throughput": row.get("tier_throughput"),
            "batch_size_hist": row.get("batch_size_hist"),
        })
    return rows or None

doc = {
    "schema": "mocemg-bench-pr2",
    "host": {
        "cpus_online": cpus,
        "note": "thread-scaling speedups are bounded by cpus_online; "
                "on a 1-cpu host the parallel path can only match the "
                "serial path, and the win is the serial allocation "
                "diet measured against pre_pr.",
    },
    "pre_pr": pre_pr,
    "benchmarks": results2,
    "serial_vs_pre_pr": serial_section,
}
doc4 = {
    "schema": "mocemg-bench-pr4",
    "host": {
        "cpus_online": cpus,
        "note": "paired_speedups divide per-pass mode-0 (seed scalar/"
                "AoS replica) by mode-1 (distance-kernel path) runs of "
                "the same binary, so host load cancels; speedup > 1 "
                "means the kernel path is faster. All rows are serial "
                "and measured on the portable (non -march=native) "
                "build.",
    },
    "benchmarks": results4,
    "paired_speedups": speedups4,
}
doc5 = {
    "schema": "mocemg-bench-pr5",
    "host": {
        "cpus_online": cpus,
        "note": "paired_speedups divide per-pass mode-0 (exact dot-form "
                "scan / per-request loop) by mode-1 (int8 coarse tier / "
                "batched QueryServer) runs of the same binary, so host "
                "load cancels. The serving section comes from one "
                "mocemg_cli serve-bench process; its qps_vs_exact_scan "
                "ratios are likewise in-process pairs. Served results "
                "are verified bit-identical to the linear scan before "
                "any number is reported.",
    },
    "benchmarks": results5,
    "paired_speedups": speedups5,
    "serving": serving,
}
doc6 = {
    "schema": "mocemg-bench-pr6",
    "host": {
        "cpus_online": cpus,
        "note": "paired_speedups divide per-pass mode-0 (plain PR 5 "
                "serving path) by mode-1 (deadlines + degradation "
                "watermark armed but never firing) runs of the same "
                "binary, so host load cancels. robust_overhead_check "
                "gates the <5% non-degraded overhead criterion: a "
                "stable speedup below 0.95 fails the run.",
    },
    "benchmarks": results6,
    "paired_speedups": speedups6,
    "robust_overhead_check": robust_check,
}
doc7 = {
    "schema": "mocemg-bench-pr7",
    "host": {
        "cpus_online": cpus,
        "note": "BM_ShardedKnn sweeps shard count at one thread (the "
                "fan-out overhead curve; on multi-core hosts it becomes "
                "the scaling curve). BM_ServedKnnSharded pairs the "
                "single-index server against 4 shards + a 2-deep wave "
                "pipeline and is annotated, not gated, when cpus_online "
                "is too low to overlap stages. BM_ServedKnnMutate pairs "
                "stale-index serving (exact fallback + full cache loss "
                "per mutation) against ApplyUpdate + shard-aware cache "
                "revalidation; its stable win is gated. The "
                "serving_sharded section is a second serve-bench run at "
                "--shards 4 --pipeline 2 with per-shard counters.",
    },
    "benchmarks": results7,
    "paired_speedups": speedups7,
    "sharded_serving_check": sharded_check,
    "serving_sharded": serving_sharded,
}
doc8 = {
    "schema": "mocemg-bench-pr8",
    "host": {
        "cpus_online": cpus,
        "kernel": kernel_info,
        "note": "paired_speedups divide per-pass mode-0 (the scalar "
                "reference table called directly, i.e. the previous "
                "auto-vectorized build) by mode-1 (the runtime-"
                "dispatched widest SIMD backend) runs of the same "
                "binary, so host load cancels; outputs are verified "
                "bit-identical by kernel-info and the unit tests "
                "before any number is reported. The int8 families "
                "(BM_SsdOneToMany, BM_SsdBlocked) are gated "
                "directionally; the double families are annotated. "
                "The four_bit section pairs the 8-bit and 4-bit "
                "coarse tiers at identical exact answers.",
    },
    "benchmarks": results8,
    "paired_speedups": speedups8,
    "dispatch_check": dispatch_check,
    "eight_bit": coarse.get("eight_bit") if coarse else None,
    "four_bit": coarse.get("four_bit") if coarse else None,
}
doc9 = {
    "schema": "mocemg-bench-pr9",
    "host": {
        "cpus_online": cpus,
        "kernel": kernel_info,
        "note": "fp32_vs_f64_kernel divides per-pass f64-family runs "
                "by the matching fp32-family runs at the same {dim, "
                "mode} (cross-family, same binary, same pass, so host "
                "load cancels); /1 rows are the dispatched backend and "
                "carry the gated 1.4x kernel claim on SIMD hosts. "
                "indexed_knn_f32_vs_f64 pairs mode 0 (f64 exact scan) "
                "against mode 1 (fp32 mirror scan + error-bound-gated "
                "double refine) end to end; answers are bit-identical "
                "by construction and by test, so every ratio is pure "
                "wall-clock. On 1-cpu or scalar-only hosts all ratios "
                "are recorded but not gated. The serving_f32 section "
                "is a serve-bench run at --exact-precision f32; its "
                "rows carry the f32_scans / f32_refined / "
                "f32_refine_rate counters.",
    },
    "benchmarks": results9,
    "fp32_vs_f64_kernel": f32_kernel_pairs,
    "indexed_knn_f32_vs_f64": speedups9,
    "dispatch_pairs": speedups9_dispatch,
    "f32_check": f32_check,
    "serving_f32": serving_f32,
}
doc10 = {
    "schema": "mocemg-bench-pr10",
    "host": {
        "cpus_online": cpus,
        "kernel": kernel_info,
        "note": "batched_vs_per_query divides per-pass mode-0 (batch "
                "separate NearestNeighbors calls) by mode-1 (one "
                "BatchNearestNeighbors query-block call) runs of the "
                "same binary over the same single-thread index, so "
                "host load cancels; answers are bit-identical by the "
                "DESIGN.md §16 contract and the query_block_test "
                "grid, so every ratio is pure wall-clock. On SIMD "
                "hosts the best stable batch>=16/dim>=30 row carries "
                "the gated 1.3x amortization claim and any "
                "directional loss fails the run; 1-cpu or scalar-only "
                "hosts record ungated. serving_batching keeps the "
                "per-tier throughput and micro-batch-size histogram "
                "from each serve-bench run.",
    },
    "benchmarks": results10,
    "batched_vs_per_query": speedups10,
    "batched_check": batched_check,
    "serving_batching": {
        "single": served_batching_rows(serving),
        "sharded": served_batching_rows(serving_sharded),
        "f32": served_batching_rows(serving_f32),
    },
}
doc3 = {
    "schema": "mocemg-bench-pr3",
    "host": {
        "cpus_online": cpus,
        "note": "paired_speedups divide per-pass exact by incremental "
                "runs of the same binary, so host load cancels; "
                "speedup > 1 means the incremental engine is faster. "
                "Batch rows are serial (max_threads=1); streaming rows "
                "measure one PushFrame on the 100 ms / 25 ms hop "
                "geometry.",
    },
    "benchmarks": results3,
    "paired_speedups": speedups,
}

if update:
    with open(bench_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"\nwrote {bench_path} ({len(results2)} benchmarks, "
          f"cpus_online={cpus})")
    with open(bench3_path, "w") as f:
        json.dump(doc3, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench3_path} ({len(results3)} benchmarks, "
          f"{len(speedups)} paired speedups)")
    with open(bench4_path, "w") as f:
        json.dump(doc4, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench4_path} ({len(results4)} benchmarks, "
          f"{len(speedups4)} paired speedups)")
    with open(bench5_path, "w") as f:
        json.dump(doc5, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench5_path} ({len(results5)} benchmarks, "
          f"{len(speedups5)} paired speedups, "
          f"{'with' if serving else 'WITHOUT'} serving section)")
    with open(bench6_path, "w") as f:
        json.dump(doc6, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench6_path} ({len(results6)} benchmarks, "
          f"{len(speedups6)} paired speedups)")
    with open(bench7_path, "w") as f:
        json.dump(doc7, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench7_path} ({len(results7)} benchmarks, "
          f"{len(speedups7)} paired speedups, "
          f"{'with' if serving_sharded else 'WITHOUT'} sharded serving "
          f"section)")
    with open(bench8_path, "w") as f:
        json.dump(doc8, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench8_path} ({len(results8)} benchmarks, "
          f"{len(speedups8)} paired speedups, "
          f"{'with' if coarse else 'WITHOUT'} four_bit section)")
    with open(bench9_path, "w") as f:
        json.dump(doc9, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench9_path} ({len(results9)} benchmarks, "
          f"{len(f32_kernel_pairs)} fp32-vs-f64 kernel pairs, "
          f"{'with' if serving_f32 else 'WITHOUT'} serving_f32 "
          f"section)")
    with open(bench10_path, "w") as f:
        json.dump(doc10, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {bench10_path} ({len(results10)} benchmarks, "
          f"{len(speedups10)} batched-vs-per-query pairs)")

if noisy_skips:
    print("\nslower than the committed baseline but too noisy to gate:")
    for line in noisy_skips:
        print(f"  {line}")
if failures:
    print("\nBENCHMARK REGRESSION (>20% vs committed "
          "BENCH_pr2.json/BENCH_pr3.json):", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("\nno benchmark regressed more than 20% vs the committed baselines"
      if (committed or committed3 or committed4 or committed5 or
          committed6) else
      "\nno committed baselines yet - run with --update to create them")
PYEOF
