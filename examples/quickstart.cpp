// Quickstart: the full paper pipeline in ~60 lines.
//
// 1. Simulate a capture session (synchronized mocap + EMG trials).
// 2. Train the classifier: IAV + weighted-SVD window features → fuzzy
//    c-means codebook → final per-motion feature vectors.
// 3. Classify a freshly captured query motion.
//
// Run:  ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/classifier.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "util/logging.h"

using namespace mocemg;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // --- 1. Capture a training session in the simulated lab. ------------
  DatasetOptions lab;
  lab.limb = Limb::kRightHand;
  lab.trials_per_class = 6;
  lab.seed = seed;
  auto captured = GenerateDataset(lab);
  MOCEMG_CHECK_OK(captured.status());
  std::printf("captured %zu motions (%zu classes x %zu trials), seed %llu\n",
              captured->size(), NumClassesForLimb(lab.limb),
              lab.trials_per_class,
              static_cast<unsigned long long>(seed));

  std::vector<LabeledMotion> training = ToLabeledMotions(*captured);

  // --- 2. Train the paper's pipeline. ---------------------------------
  ClassifierOptions options;
  options.features.window_ms = 100.0;  // the paper sweeps 50-200 ms
  options.fcm.num_clusters = 15;       // and c in [2, 40]
  options.fcm.seed = seed;
  auto classifier = MotionClassifier::Train(training, options);
  MOCEMG_CHECK_OK(classifier.status());
  std::printf("trained: %zu-cluster FCM codebook, %zu-d final features\n",
              classifier->codebook().num_clusters(),
              classifier->final_features().cols());

  // --- 3. Capture and classify new query motions. ---------------------
  int correct = 0;
  const size_t num_queries = NumClassesForLimb(lab.limb);
  for (size_t cls = 0; cls < num_queries; ++cls) {
    auto query = GenerateTrial(lab, cls, /*trial=*/99, seed ^ (cls + 1));
    MOCEMG_CHECK_OK(query.status());
    auto label = classifier->Classify(query->mocap, query->emg_raw);
    MOCEMG_CHECK_OK(label.status());
    const char* predicted = ClassNameForLimb(lab.limb, *label);
    std::printf("query '%s' -> classified as '%s'%s\n",
                query->class_name.c_str(), predicted,
                *label == cls ? "" : "   (miss)");
    if (*label == cls) ++correct;
  }
  std::printf("%d / %zu queries correct\n", correct, num_queries);
  return 0;
}
