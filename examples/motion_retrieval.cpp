// Content-based motion retrieval (the paper's Section 4: "we perform
// content-based retrieval for the given query matrices (EMG + Motion
// Capture) from our database").
//
// Builds a persistent feature database from a capture session, constructs
// the cluster-pruned index, then answers kNN queries both ways and
// reports the pruning statistics. Also demonstrates save/load of the
// database CSV.
//
// Run:  ./motion_retrieval [seed]

#include <cstdio>
#include <cstdlib>

#include "core/classifier.h"
#include "db/feature_index.h"
#include "db/motion_database.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "util/logging.h"

using namespace mocemg;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  DatasetOptions lab;
  lab.limb = Limb::kRightHand;
  lab.trials_per_class = 10;
  lab.seed = seed;
  auto captured = GenerateDataset(lab);
  MOCEMG_CHECK_OK(captured.status());

  ClassifierOptions options;
  options.fcm.num_clusters = 18;
  options.fcm.seed = seed;
  auto clf = MotionClassifier::Train(ToLabeledMotions(*captured), options);
  MOCEMG_CHECK_OK(clf.status());

  // Materialize the motion database of final feature vectors.
  MotionDatabase db;
  for (size_t i = 0; i < clf->num_motions(); ++i) {
    MotionRecord rec;
    rec.name =
        clf->label_names()[i] + "/trial" + std::to_string(i % 10);
    rec.label = clf->labels()[i];
    rec.label_name = clf->label_names()[i];
    rec.feature = clf->final_features().Row(i);
    MOCEMG_CHECK_OK(db.Insert(std::move(rec)));
  }
  const std::string db_path = "/tmp/mocemg_motion_db.csv";
  MOCEMG_CHECK_OK(db.SaveCsv(db_path));
  auto reloaded = MotionDatabase::LoadCsv(db_path);
  MOCEMG_CHECK_OK(reloaded.status());
  std::printf("database: %zu motions, %zu-d features (saved to %s)\n",
              reloaded->size(), reloaded->feature_dimension(),
              db_path.c_str());

  auto index = FeatureIndex::Build(&*reloaded);
  MOCEMG_CHECK_OK(index.status());
  std::printf("index: %zu k-means partitions\n", index->num_partitions());

  // Fresh query motions, one per class.
  size_t total_distance_calcs = 0;
  size_t queries = 0;
  for (size_t cls = 0; cls < NumClassesForLimb(lab.limb); ++cls) {
    auto query = GenerateTrial(lab, cls, 55, seed * 17 + cls);
    MOCEMG_CHECK_OK(query.status());
    auto feature = clf->Featurize(query->mocap, query->emg_raw);
    MOCEMG_CHECK_OK(feature.status());

    IndexQueryStats stats;
    auto hits = index->NearestNeighbors(*feature, 5, &stats);
    MOCEMG_CHECK_OK(hits.status());
    total_distance_calcs += stats.distance_computations;
    ++queries;

    std::printf("\nquery '%s': top-5 retrieved\n",
                query->class_name.c_str());
    for (const auto& h : *hits) {
      std::printf("  %-22s d=%.4f\n",
                  reloaded->record(h.record_index).name.c_str(),
                  h.distance);
    }
    std::printf("  pruning: %zu/%zu partitions skipped, %zu distances\n",
                stats.partitions_pruned,
                stats.partitions_pruned + stats.partitions_visited,
                stats.distance_computations);
  }
  std::printf("\nmean distance computations per query: %.1f (database %zu)\n",
              static_cast<double>(total_distance_calcs) /
                  static_cast<double>(queries),
              reloaded->size());
  return 0;
}
