// Gait-analysis scenario (the paper's opening motivation: "useful for
// gait analysis and several orthopedic applications").
//
// Trains on the right-leg vocabulary, runs a cross-validated evaluation,
// and prints a per-class confusion matrix plus the per-muscle mean IAV
// profile of walking vs squatting — the kind of summary a movement-
// science lab reads off this pipeline.
//
// Run:  ./gait_analysis [seed]

#include <cstdio>
#include <cstdlib>

#include "core/window_features.h"
#include "emg/acquisition.h"
#include "emg/features.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "util/logging.h"

using namespace mocemg;

namespace {

// Mean per-channel IAV (100 ms windows) across one class's trials.
std::vector<double> MeanIav(const std::vector<CapturedMotion>& data,
                            size_t class_id) {
  std::vector<double> sums;
  size_t windows = 0;
  for (const auto& m : data) {
    if (m.class_id != class_id) continue;
    auto conditioned = ConditionRecording(m.emg_raw);
    MOCEMG_CHECK_OK(conditioned.status());
    const size_t w = WindowMsToFrames(100.0, 120.0);
    auto plan = MakeWindowPlan(conditioned->num_samples(), w);
    MOCEMG_CHECK_OK(plan.status());
    if (sums.empty()) sums.assign(conditioned->num_channels(), 0.0);
    for (const auto& span : plan->spans) {
      for (size_t c = 0; c < conditioned->num_channels(); ++c) {
        sums[c] += IntegralOfAbsoluteValue(
            conditioned->channel(c).data() + span.begin, span.length());
      }
      ++windows;
    }
  }
  for (double& s : sums) s /= static_cast<double>(windows);
  return sums;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  DatasetOptions lab;
  lab.limb = Limb::kRightLeg;
  lab.trials_per_class = 8;
  lab.seed = seed;
  auto captured = GenerateDataset(lab);
  MOCEMG_CHECK_OK(captured.status());
  std::printf("gait lab: %zu leg motions captured\n", captured->size());

  // Muscle activity summary: walking loads both shin muscles rhythmically,
  // squatting loads the calf (back shin) on the rise.
  const auto walk_iav = MeanIav(*captured, 0);
  const auto squat_iav = MeanIav(*captured, 2);
  std::printf("\nmean IAV per 100 ms window (V·samples):\n");
  std::printf("  %-12s front_shin %.2e   back_shin %.2e\n", "walk:",
              walk_iav[0], walk_iav[1]);
  std::printf("  %-12s front_shin %.2e   back_shin %.2e\n", "squat:",
              squat_iav[0], squat_iav[1]);

  // Cross-validated classification report.
  ClassifierOptions options;
  options.features.window_ms = 150.0;
  options.fcm.num_clusters = 15;
  options.fcm.seed = seed;
  ProtocolOptions protocol;
  protocol.num_folds = 4;
  auto result = CrossValidate(ToLabeledMotions(*captured),
                              NumClassesForLimb(lab.limb), options,
                              protocol);
  MOCEMG_CHECK_OK(result.status());

  std::vector<std::string> names;
  for (size_t i = 0; i < NumClassesForLimb(lab.limb); ++i) {
    names.emplace_back(ClassNameForLimb(lab.limb, i));
  }
  std::printf("\nconfusion matrix (%zu queries, 4-fold CV):\n%s",
              result->num_queries,
              result->confusion.ToString(names).c_str());
  std::printf("\nmis-classification: %.1f %%   kNN(5) percent: %.1f %%\n",
              result->misclassification_percent, result->knn_percent);
  const auto recall = result->confusion.PerClassRecall();
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("  recall %-10s %.0f %%\n", names[i].c_str(),
                100.0 * recall[i]);
  }
  return 0;
}
