// Prosthetic-control scenario (one of the paper's motivating
// applications: "to analyze just one limb makes more sense in prosthetic
// control and medical rehabilitation of single limb").
//
// Workflow of a deployed controller:
//   1. Train once on a capture session, persist the model to disk.
//   2. At boot, load the model (no FCM re-run).
//   3. Classify the incoming synchronized stream frame-by-frame with
//      StreamingClassifier — the decision sharpens as the motion
//      unfolds, and the controller reads it at any control tick.
//
// Run:  ./prosthetic_control [seed]

#include <cstdio>
#include <cstdlib>

#include "core/model_io.h"
#include "core/streaming.h"
#include "emg/acquisition.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "util/logging.h"

using namespace mocemg;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- 1. Train and persist. ------------------------------------------
  DatasetOptions lab;
  lab.limb = Limb::kRightHand;
  lab.trials_per_class = 8;
  lab.seed = seed;
  auto captured = GenerateDataset(lab);
  MOCEMG_CHECK_OK(captured.status());

  ClassifierOptions options;
  options.features.window_ms = 100.0;
  options.features.hop_ms = 50.0;  // sliding windows: faster decisions
  options.fcm.num_clusters = 15;
  options.fcm.seed = seed;
  auto trained =
      MotionClassifier::Train(ToLabeledMotions(*captured), options);
  MOCEMG_CHECK_OK(trained.status());
  const std::string model_path = "/tmp/mocemg_prosthetic.model";
  MOCEMG_CHECK_OK(SaveClassifier(*trained, model_path));
  std::printf("model trained (%zu motions, c=15) and saved to %s\n",
              trained->num_motions(), model_path.c_str());

  // --- 2. Boot: load the persisted model. -----------------------------
  auto model = LoadClassifier(model_path);
  MOCEMG_CHECK_OK(model.status());
  std::printf("controller booted from disk model\n");

  // --- 3. Stream incoming motions. -------------------------------------
  int correct = 0;
  const size_t num_classes = NumClassesForLimb(lab.limb);
  for (size_t cls = 0; cls < num_classes; ++cls) {
    auto query = GenerateTrial(lab, cls, 100, seed * 31 + cls);
    MOCEMG_CHECK_OK(query.status());
    // A live rig conditions EMG causally; here the recording is
    // conditioned up front and replayed frame-by-frame.
    auto emg = ConditionRecording(query->emg_raw);
    MOCEMG_CHECK_OK(emg.status());

    StreamingOptions sopts;
    auto streamer = StreamingClassifier::Create(
        &*model, query->mocap.num_markers(), /*pelvis_index=*/0,
        emg->num_channels(), sopts);
    MOCEMG_CHECK_OK(streamer.status());

    const size_t frames =
        std::min(query->mocap.num_frames(), emg->num_samples());
    std::printf("\nincoming motion (truth: %-10s %zu frames)\n",
                query->class_name.c_str(), frames);
    std::vector<double> marker_frame(3 * query->mocap.num_markers());
    std::vector<double> emg_frame(emg->num_channels());
    size_t decided_at = 0;
    size_t final_decision = num_classes;  // sentinel
    for (size_t f = 0; f < frames; ++f) {
      for (size_t k = 0; k < marker_frame.size(); ++k) {
        marker_frame[k] = query->mocap.positions()(f, k);
      }
      for (size_t c = 0; c < emg_frame.size(); ++c) {
        emg_frame[c] = emg->channel(c)[f];
      }
      MOCEMG_CHECK_OK(streamer->PushFrame(marker_frame, emg_frame));
      // Control tick every quarter second.
      if (f % 30 == 29) {
        auto decision = streamer->CurrentDecision();
        if (decision.ok()) {
          if (final_decision != *decision) decided_at = f;
          final_decision = *decision;
          std::printf("  t=%5.2fs  windows=%2zu  -> %s\n",
                      static_cast<double>(f) / 120.0,
                      streamer->windows_completed(),
                      ClassNameForLimb(lab.limb, *decision));
        }
      }
    }
    const bool ok = final_decision == cls;
    std::printf("  final: %s %s (last change at t=%.2fs)\n",
                ClassNameForLimb(lab.limb, final_decision),
                ok ? "(correct)" : "(WRONG)",
                static_cast<double>(decided_at) / 120.0);
    if (ok) ++correct;
  }
  std::printf("\n%d / %zu streamed motions decided correctly\n", correct,
              num_classes);
  return 0;
}
