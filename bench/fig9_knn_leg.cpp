// Figure 9: percent of correctly classified right-leg motions among the
// k = 5 retrieved, versus clusters and window size. The paper notes the
// window-size effect is most visible here.

#include "bench_util.h"

int main() {
  mocemg::bench::RunFigureSweep("Figure 9", mocemg::Limb::kRightLeg,
                                /*misclassification=*/false);
  return 0;
}
