// Ablation A4 — feature normalization. The paper appends volt-scale IAV
// (~1e-5) to unit-scale SVD components and clusters with Euclidean FCM;
// without per-dimension z-scoring the EMG dimensions are numerically
// invisible. This bench quantifies the step the paper leaves implicit.
// Expected: without normalization, combined ≈ mocap-only (EMG ignored).

#include "abl_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::vector<Variant> variants;
  {
    Variant v{"zscore_balanced", DefaultPipeline()};
    variants.push_back(v);
  }
  {
    Variant v{"zscore_only", DefaultPipeline()};
    v.options.balance_modalities = false;
    variants.push_back(v);
  }
  {
    Variant v{"raw_scales", DefaultPipeline()};
    v.options.normalize_features = false;
    v.options.balance_modalities = false;
    variants.push_back(v);
  }
  {
    Variant v{"raw_mocap_only", DefaultPipeline()};
    v.options.normalize_features = false;
    v.options.balance_modalities = false;
    v.options.features.use_emg = false;
    variants.push_back(v);
  }
  RunAblation(
      "Ablation A4 — feature scaling: z-score + modality balance vs off",
      variants);
  return 0;
}
