// Microbenchmarks: the runtime-dispatched SIMD kernel backends against
// the scalar reference table. Each family takes a trailing mode arg
// (0 = the scalar table called directly — i.e. the previous
// auto-vectorized build, since kernels_scalar.cc compiles with the
// project's default flags — and 1 = the dispatched table, the widest
// backend this CPU can run) so both modes run inside one binary
// seconds apart and tools/run_benchmarks.sh can report paired per-pass
// ratios that cancel host load. Both sides drive the identical loop
// through a KernelOps pointer; only the table differs.
//
// Bit-exactness means the two modes return identical outputs — the
// ratio is pure wall-clock, never a quality trade.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "util/kernel_dispatch.h"
#include "util/logging.h"
#include "util/quant_kernels.h"
#include "util/random.h"

namespace mocemg {
namespace {

const KernelOps* OpsForMode(int64_t mode) {
  const KernelOps* ops =
      GetKernelOps(mode == 1 ? KernelBackend::kAuto : KernelBackend::kScalar);
  MOCEMG_CHECK(ops != nullptr);
  return ops;
}

std::vector<double> GaussianVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  return v;
}

std::vector<uint8_t> ByteVec(size_t n, uint32_t lo_bits, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (uint8_t& x : v) {
    x = static_cast<uint8_t>(rng.NextBelow(uint64_t{1} << lo_bits));
  }
  return v;
}

// Args: {dim, mode}. The int8 coarse scan: one query's codes against a
// partition block of rows, exact int32 SSDs out.
void BM_SsdOneToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 4096;
  const auto qc = ByteVec(dim, 8, 11);
  const auto codes = ByteVec(rows * dim, 8, 12);
  std::vector<uint32_t> out(rows);
  for (auto _ : state) {
    ops->ssd8_one_to_many(qc.data(), codes.data(), rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * rows * dim));
}
BENCHMARK(BM_SsdOneToMany)->ArgsProduct({{16, 30, 64, 128, 240}, {0, 1}});

// Args: {dim, mode}. The blocked many-to-many coarse sweep a batched
// degraded drain performs: Q queries against the same row block.
void BM_SsdBlocked(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 1024;
  const size_t num_queries = 16;
  const auto qc = ByteVec(num_queries * dim, 8, 13);
  const auto codes = ByteVec(rows * dim, 8, 14);
  std::vector<uint32_t> out(num_queries * rows);
  for (auto _ : state) {
    for (size_t q = 0; q < num_queries; ++q) {
      ops->ssd8_one_to_many(qc.data() + q * dim, codes.data(), rows, dim,
                            out.data() + q * rows);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * num_queries * rows));
}
BENCHMARK(BM_SsdBlocked)->ArgsProduct({{30, 64, 128}, {0, 1}});

// Args: {dim, mode}. The 4-bit nibble-packed variant: half the bytes
// per row of BM_SsdOneToMany at the same logical dim.
void BM_Ssd4OneToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 4096;
  const size_t stride = PackedNibbleStride(dim);
  const auto qn = ByteVec(dim, 4, 15);
  const auto rn = ByteVec(rows * dim, 4, 16);
  std::vector<uint8_t> qp(stride), rp(rows * stride);
  PackNibbleRows(qn.data(), 1, dim, qp.data());
  PackNibbleRows(rn.data(), rows, dim, rp.data());
  std::vector<uint32_t> out(rows);
  for (auto _ : state) {
    ops->ssd4_one_to_many(qp.data(), rp.data(), rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * rows * stride));
}
BENCHMARK(BM_Ssd4OneToMany)->ArgsProduct({{16, 30, 64, 128, 240}, {0, 1}});

// Args: {dim, mode}. The double one-to-many partition scan (exact
// tier) — the 4-lane contract means both modes emit identical bits.
void BM_L2OneToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 2048;
  const auto query = GaussianVec(dim, 21);
  const auto block = GaussianVec(rows * dim, 22);
  std::vector<double> out(rows);
  for (auto _ : state) {
    ops->l2_one_to_many(query.data(), block.data(), rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_L2OneToMany)->ArgsProduct({{30, 64, 128, 240}, {0, 1}});

std::vector<float> GaussianVecF(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Gaussian(0.0, 1.0));
  return v;
}

// Args: {dim, mode}. The fp32 mirror scan at the heart of the f32
// exact tier: same dims and row count as BM_L2OneToMany, so the
// fp32-vs-f64 kernel ratio the PR9 gate wants is this family against
// that one at matching {dim, mode}.
void BM_L2F32OneToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 2048;
  const auto query = GaussianVecF(dim, 21);
  const auto block = GaussianVecF(rows * dim, 22);
  std::vector<float> out(rows);
  for (auto _ : state) {
    ops->l2_f32_one_to_many(query.data(), block.data(), rows, dim,
                            out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_L2F32OneToMany)->ArgsProduct({{30, 64, 128, 240}, {0, 1}});

// Args: {dim, mode}. The dot-form fp32 scan the index actually runs
// (precomputed row norms, one dot per row).
void BM_L2DotF32OneToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 2048;
  const auto query = GaussianVecF(dim, 23);
  const auto block = GaussianVecF(rows * dim, 24);
  std::vector<float> norms(rows), out(rows);
  ops->row_norms_f32(block.data(), rows, dim, norms.data());
  float q_sq = 0.0f;
  ops->row_norms_f32(query.data(), 1, dim, &q_sq);
  for (auto _ : state) {
    ops->l2dot_f32_one_to_many(query.data(), q_sq, block.data(),
                               norms.data(), rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_L2DotF32OneToMany)->ArgsProduct({{30, 64, 128, 240}, {0, 1}});

// Args: {dim, mode}. The dot-form f64 scan, for the direct paired
// fp32-vs-f64 comparison on the formulation the index uses.
void BM_L2DotF64OneToMany(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const KernelOps* ops = OpsForMode(state.range(1));
  const size_t rows = 2048;
  const auto query = GaussianVec(dim, 23);
  const auto block = GaussianVec(rows * dim, 24);
  std::vector<double> norms(rows), out(rows);
  ops->row_norms(block.data(), rows, dim, norms.data());
  double q_sq = 0.0;
  ops->row_norms(query.data(), 1, dim, &q_sq);
  for (auto _ : state) {
    ops->l2dot_one_to_many(query.data(), q_sq, block.data(), norms.data(),
                           rows, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}
BENCHMARK(BM_L2DotF64OneToMany)->ArgsProduct({{30, 64, 128, 240}, {0, 1}});

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
