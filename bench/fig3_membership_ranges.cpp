// Figure 3: the range of the highest degree of membership per cluster
// (c = 6) for two trials each of two similar right-hand motions,
// "raise arm" and "throw ball". Each motion's windows vote for their
// closest cluster; per cluster the [min, max] of those winning
// memberships is printed — the vertical bars of the paper's figure.

#include <cstdio>

#include "bench_util.h"
#include "core/classifier.h"

using namespace mocemg;

int main() {
  const uint64_t seed = bench::EnvSeed();
  std::printf("# Figure 3 — highest-membership range per cluster, c=6\n");
  std::printf("# seed=%llu window=100ms\n",
              static_cast<unsigned long long>(seed));

  std::vector<LabeledMotion> motions =
      bench::MakeBenchDataset(Limb::kRightHand);
  ClassifierOptions opts = bench::DefaultPipeline();
  opts.fcm.num_clusters = 6;
  auto clf = MotionClassifier::Train(motions, opts);
  MOCEMG_CHECK_OK(clf.status());

  std::printf("motion\tcluster\tmin_membership\tmax_membership\n");
  // Two trials each of raise_arm (class 0) and throw_ball (class 1).
  int emitted[2] = {0, 0};
  for (size_t i = 0; i < clf->num_motions(); ++i) {
    const size_t label = clf->labels()[i];
    if (label > 1 || emitted[label] >= 2) continue;
    ++emitted[label];
    const auto feature = clf->final_features().Row(i);
    for (size_t c = 0; c < 6; ++c) {
      std::printf("%s_M%d\t%zu\t%.3f\t%.3f\n",
                  clf->label_names()[i].c_str(), emitted[label], c + 1,
                  feature[2 * c], feature[2 * c + 1]);
    }
  }
  return 0;
}
