// Ablation A2 — fuzzy vs hard clustering. The paper argues fuzzy
// memberships suit non-stationary biomedical data ("fuzzy clustering has
// an advantage over traditional clustering techniques"). Hard arm:
// k-means codebook with vote-fraction final features; fuzzy arm: the
// paper's FCM min/max-membership features. Also sweeps the fuzzifier m.

#include "abl_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::vector<Variant> variants;
  {
    Variant v{"fcm_m2.0", DefaultPipeline()};
    variants.push_back(v);
  }
  {
    Variant v{"fcm_m1.5", DefaultPipeline()};
    v.options.fcm.fuzziness = 1.5;
    variants.push_back(v);
  }
  {
    Variant v{"fcm_m3.0", DefaultPipeline()};
    v.options.fcm.fuzziness = 3.0;
    variants.push_back(v);
  }
  {
    Variant v{"kmeans_hard", DefaultPipeline()};
    v.options.cluster_method = ClusterMethod::kKmeansHard;
    variants.push_back(v);
  }
  RunAblation("Ablation A2 — fuzzy c-means vs hard k-means codebook",
              variants);
  return 0;
}
