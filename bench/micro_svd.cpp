// Microbenchmarks: one-sided Jacobi SVD on the window shapes the
// pipeline actually decomposes (w×3 joint windows, 50-200 ms at 120 Hz)
// plus larger shapes for scaling, and the weighted-SVD feature itself.

#include <benchmark/benchmark.h>

#include "core/mocap_features.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace mocemg {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng.Gaussian(0.0, 50.0);
  }
  return m;
}

void BM_SvdJointWindow(benchmark::State& state) {
  const size_t frames = static_cast<size_t>(state.range(0));
  Matrix window = RandomMatrix(frames, 3, frames);
  for (auto _ : state) {
    auto svd = ComputeSvd(window);
    benchmark::DoNotOptimize(svd);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// 6/12/18/24 frames = the paper's 50/100/150/200 ms windows at 120 Hz.
BENCHMARK(BM_SvdJointWindow)->Arg(6)->Arg(12)->Arg(18)->Arg(24);

void BM_SvdSquare(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix m = RandomMatrix(n, n, n);
  for (auto _ : state) {
    auto svd = ComputeSvd(m);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_SvdSquare)->Arg(8)->Arg(16)->Arg(32);

void BM_WeightedSvdFeature(benchmark::State& state) {
  Matrix window = RandomMatrix(static_cast<size_t>(state.range(0)), 3, 7);
  for (auto _ : state) {
    auto f = WeightedSvdFeature(window);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WeightedSvdFeature)->Arg(6)->Arg(24);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
