// Ablation A3 — the weighted-SVD mocap feature (Eq. 2-3) against naive
// per-window summaries (mean position, net displacement). Tests whether
// the paper's geometric feature earns its SVD.

#include "abl_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::vector<Variant> variants;
  {
    Variant v{"weighted_svd", DefaultPipeline()};
    variants.push_back(v);
  }
  {
    Variant v{"mean_position", DefaultPipeline()};
    v.options.features.mocap_feature = MocapFeatureKind::kMeanPosition;
    variants.push_back(v);
  }
  {
    Variant v{"displacement", DefaultPipeline()};
    v.options.features.mocap_feature = MocapFeatureKind::kDisplacement;
    variants.push_back(v);
  }
  RunAblation(
      "Ablation A3 — weighted-SVD mocap feature vs naive baselines",
      variants);
  return 0;
}
