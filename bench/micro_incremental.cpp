// Microbenchmarks for the incremental featurization engine: exact vs
// incremental batch extraction across hop/window ratios, the streaming
// per-frame path in both modes, and the two SVD kernels underneath
// (w×3 one-sided Jacobi vs the 3×3 Gram eigensolver). The paired
// exact/incremental ratios land in BENCH_pr3.json via
// tools/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/classifier.h"
#include "core/streaming.h"
#include "core/window_features.h"
#include "emg/acquisition.h"
#include "eval/protocols.h"
#include "linalg/gram_svd.h"
#include "linalg/svd.h"
#include "synth/dataset.h"
#include "util/logging.h"
#include "util/random.h"

namespace mocemg {
namespace {

const CapturedMotion& SharedTrial() {
  static const CapturedMotion* trial = [] {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.seed = 56;
    auto t = GenerateTrial(lab, 1, 0, 42);
    MOCEMG_CHECK_OK(t.status());
    return new CapturedMotion(std::move(*t));
  }();
  return *trial;
}

const EmgRecording& SharedConditioned() {
  static const EmgRecording* emg = [] {
    auto out = ConditionRecording(SharedTrial().emg_raw);
    MOCEMG_CHECK_OK(out.status());
    return new EmgRecording(std::move(*out));
  }();
  return *emg;
}

// Args: {window_ms, hop_divisor, mode} with hop = window/divisor and
// mode 0 = exact, 1 = incremental. Serial (max_threads = 1) so the
// ratio isolates the engine, not the thread pool.
void BM_BatchFeaturization(benchmark::State& state) {
  const CapturedMotion& trial = SharedTrial();
  const EmgRecording& conditioned = SharedConditioned();
  WindowFeatureOptions opts;
  opts.window_ms = static_cast<double>(state.range(0));
  opts.hop_ms = opts.window_ms / static_cast<double>(state.range(1));
  opts.parallel.max_threads = 1;
  opts.featurization_mode = state.range(2) == 1
                                ? FeaturizationMode::kIncremental
                                : FeaturizationMode::kExact;
  size_t windows = 0;
  for (auto _ : state) {
    auto features = ExtractWindowFeatures(trial.mocap, conditioned, opts);
    MOCEMG_CHECK_OK(features.status());
    windows = features->plan.num_windows();
    benchmark::DoNotOptimize(features->points.data().data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * windows));
}
BENCHMARK(BM_BatchFeaturization)
    ->ArgsProduct({{100, 200}, {1, 2, 4, 8}, {0, 1}});

// Arg: mode (0 = exact, 1 = incremental). The per-frame cost of online
// classification with the model's 100 ms window / 25 ms hop geometry —
// the constant-latency claim of the incremental streaming path.
void BM_StreamingPushFrame(benchmark::State& state) {
  static const MotionClassifier* model = nullptr;
  static const std::vector<std::vector<double>>* marker_frames = nullptr;
  static const std::vector<std::vector<double>>* emg_frames = nullptr;
  if (model == nullptr) {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.trials_per_class = 2;
    lab.seed = 73;
    auto data = GenerateDataset(lab);
    MOCEMG_CHECK_OK(data.status());
    auto train = ToLabeledMotions(std::move(*data));
    ClassifierOptions copts;
    copts.features.window_ms = 100.0;
    copts.features.hop_ms = 25.0;  // overlapping: hop = window/4
    copts.fcm.num_clusters = 6;
    copts.fcm.seed = 3;
    auto trained = MotionClassifier::Train(train, copts);
    MOCEMG_CHECK_OK(trained.status());
    model = new MotionClassifier(*std::move(trained));

    const CapturedMotion& trial = SharedTrial();
    const EmgRecording& conditioned = SharedConditioned();
    const size_t frames = std::min(trial.mocap.num_frames(),
                                   conditioned.num_samples());
    auto* markers = new std::vector<std::vector<double>>(frames);
    auto* emg = new std::vector<std::vector<double>>(frames);
    for (size_t f = 0; f < frames; ++f) {
      (*markers)[f].resize(3 * trial.mocap.num_markers());
      for (size_t k = 0; k < (*markers)[f].size(); ++k) {
        (*markers)[f][k] = trial.mocap.positions()(f, k);
      }
      (*emg)[f].resize(conditioned.num_channels());
      for (size_t c = 0; c < conditioned.num_channels(); ++c) {
        (*emg)[f][c] = conditioned.channel(c)[f];
      }
    }
    marker_frames = markers;
    emg_frames = emg;
  }
  StreamingOptions sopts;
  sopts.featurization_mode = state.range(0) == 1
                                 ? FeaturizationMode::kIncremental
                                 : FeaturizationMode::kExact;
  auto streamer = StreamingClassifier::Create(
      model, /*num_markers=*/5, /*pelvis_index=*/0,
      /*num_emg_channels=*/4, sopts);
  MOCEMG_CHECK_OK(streamer.status());
  size_t f = 0;
  for (auto _ : state) {
    MOCEMG_CHECK_OK(
        streamer->PushFrame((*marker_frames)[f], (*emg_frames)[f]));
    f = (f + 1) % marker_frames->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingPushFrame)->Arg(0)->Arg(1);

Matrix RandomWindow(size_t w) {
  Rng rng(19);
  Matrix a(w, 3);
  for (double& v : a.mutable_data()) v = rng.Uniform(-50.0, 50.0);
  return a;
}

// Arg: window length w. The exact kernel the incremental path replaces.
void BM_ExactWindowSvd(benchmark::State& state) {
  const Matrix a = RandomWindow(static_cast<size_t>(state.range(0)));
  SvdScratch scratch;
  SvdResult result;
  for (auto _ : state) {
    MOCEMG_CHECK_OK(ComputeSvdInto(a, SvdOptions{}, &scratch, &result));
    benchmark::DoNotOptimize(result.singular_values.data());
  }
}
BENCHMARK(BM_ExactWindowSvd)->Arg(12)->Arg(24);

// Arg: window length the Gram was built from — the solve itself is
// O(1), which is the point.
void BM_GramEigensolve(benchmark::State& state) {
  const Matrix a = RandomWindow(static_cast<size_t>(state.range(0)));
  double gram[6] = {0, 0, 0, 0, 0, 0};
  for (size_t r = 0; r < a.rows(); ++r) {
    const double x = a(r, 0);
    const double y = a(r, 1);
    const double z = a(r, 2);
    gram[0] += x * x;
    gram[1] += x * y;
    gram[2] += x * z;
    gram[3] += y * y;
    gram[4] += y * z;
    gram[5] += z * z;
  }
  GramSvd3 eig;
  for (auto _ : state) {
    MOCEMG_CHECK_OK(ComputeSvdFromGram3(gram, &eig));
    benchmark::DoNotOptimize(eig.sigma);
  }
}
BENCHMARK(BM_GramEigensolve)->Arg(12)->Arg(24);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
