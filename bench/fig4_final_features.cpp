// Figure 4: the final 2c-length feature vectors (min/max of the highest
// membership per cluster, Eq. 7-8) for the same two pairs of similar
// motions as Figure 3. Similar motions should trace similar profiles;
// different classes should differ — the separability the classifier
// rides on. The last column group prints the within/between distances.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/classifier.h"
#include "linalg/vector_ops.h"

using namespace mocemg;

int main() {
  const uint64_t seed = bench::EnvSeed();
  std::printf("# Figure 4 — final feature vectors, c=6 (length 12)\n");
  std::printf("# seed=%llu window=100ms\n",
              static_cast<unsigned long long>(seed));

  std::vector<LabeledMotion> motions =
      bench::MakeBenchDataset(Limb::kRightHand);
  ClassifierOptions opts = bench::DefaultPipeline();
  opts.fcm.num_clusters = 6;
  auto clf = MotionClassifier::Train(motions, opts);
  MOCEMG_CHECK_OK(clf.status());

  std::vector<std::vector<double>> picked;
  std::vector<std::string> names;
  int emitted[2] = {0, 0};
  std::printf("motion");
  for (size_t c = 1; c <= 6; ++c) std::printf("\tmin_%zu\tmax_%zu", c, c);
  std::printf("\n");
  for (size_t i = 0; i < clf->num_motions(); ++i) {
    const size_t label = clf->labels()[i];
    if (label > 1 || emitted[label] >= 2) continue;
    ++emitted[label];
    const auto f = clf->final_features().Row(i);
    std::printf("%s_M%d", clf->label_names()[i].c_str(), emitted[label]);
    for (double v : f) std::printf("\t%.3f", v);
    std::printf("\n");
    picked.push_back(f);
    names.push_back(clf->label_names()[i] + "_M" +
                    std::to_string(emitted[label]));
  }

  if (picked.size() == 4) {
    std::printf("\n# pairwise Euclidean distances in final-feature space\n");
    for (size_t a = 0; a < 4; ++a) {
      for (size_t b = a + 1; b < 4; ++b) {
        std::printf("d(%s, %s) = %.3f\n", names[a].c_str(),
                    names[b].c_str(),
                    EuclideanDistance(picked[a], picked[b]));
      }
    }
  }
  return 0;
}
