// Ablation A7 — facing-direction invariance (extension beyond the
// paper). The paper's local transform only *translates* to the pelvis;
// if participants face arbitrary directions, every mocap feature rotates
// with them. This bench sweeps the heading randomization of the
// simulated lab and compares the paper's transform against the library's
// heading-normalizing extension (LocalTransformOptions).

#include <cstdio>

#include "bench_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::printf("# Ablation A7 — heading randomization vs normalization\n");
  std::printf(
      "# seed=%llu trials_per_class=%zu folds=%zu window=100ms c=15\n",
      static_cast<unsigned long long>(EnvSeed()), EnvTrials(),
      EnvFolds());
  std::printf(
      "limb\theading_range_rad\ttransform\tmisclass_%%\tknn5_%%\n");

  const double ranges[] = {0.2, 1.0, 3.14159};
  for (Limb limb : {Limb::kRightHand, Limb::kRightLeg}) {
    for (double range : ranges) {
      DatasetOptions lab;
      lab.limb = limb;
      lab.trials_per_class = EnvTrials();
      lab.seed = EnvSeed();
      lab.heading_range_rad = range;
      auto data = GenerateDataset(lab);
      MOCEMG_CHECK_OK(data.status());
      std::vector<LabeledMotion> motions =
          ToLabeledMotions(std::move(*data));
      for (bool normalize : {false, true}) {
        ClassifierOptions opts = DefaultPipeline();
        opts.features.local_transform.normalize_heading = normalize;
        auto result =
            CrossValidate(motions, NumClassesForLimb(limb), opts,
                          DefaultProtocol());
        MOCEMG_CHECK_OK(result.status());
        std::printf("%s\t%.2f\t%s\t%.1f\t%.1f\n", LimbName(limb), range,
                    normalize ? "translate+heading" : "translate_only",
                    result->misclassification_percent,
                    result->knn_percent);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
