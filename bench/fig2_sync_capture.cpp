// Figure 2: synchronous EMG and motion-capture streams for a "raise arm"
// trial — biceps and upper-forearm conditioned EMG envelopes next to the
// wrist's 3D trajectory, all on the shared 120 Hz frame axis. The paper
// plots exactly these three panels; this harness prints the aligned
// series as a TSV (frame, biceps_V, upper_forearm_V, wrist_x/y/z_mm).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "emg/acquisition.h"
#include "mocap/local_transform.h"

using namespace mocemg;

int main() {
  DatasetOptions lab;
  lab.limb = Limb::kRightHand;
  lab.seed = bench::EnvSeed();
  auto trial = GenerateTrial(lab, /*raise_arm=*/0, 0, lab.seed ^ 2);
  MOCEMG_CHECK_OK(trial.status());

  auto conditioned = ConditionRecording(trial->emg_raw);
  MOCEMG_CHECK_OK(conditioned.status());
  auto local = ToPelvisLocal(trial->mocap);
  MOCEMG_CHECK_OK(local.status());
  auto wrist = local->JointMatrix(Segment::kRadius);
  MOCEMG_CHECK_OK(wrist.status());
  auto biceps = conditioned->ChannelForMuscle(Muscle::kBiceps);
  auto forearm = conditioned->ChannelForMuscle(Muscle::kUpperForearm);
  MOCEMG_CHECK_OK(biceps.status());
  MOCEMG_CHECK_OK(forearm.status());

  std::printf("# Figure 2 — synchronous raise-arm capture, 120 Hz\n");
  std::printf("# seed=%llu duration=%.2fs\n",
              static_cast<unsigned long long>(lab.seed),
              trial->mocap.duration_seconds());
  std::printf(
      "frame\tbiceps_V\tupper_forearm_V\twrist_x_mm\twrist_y_mm\t"
      "wrist_z_mm\n");
  const size_t frames = std::min(wrist->rows(), (*biceps)->size());
  for (size_t f = 0; f < frames; ++f) {
    std::printf("%zu\t%.6e\t%.6e\t%.1f\t%.1f\t%.1f\n", f,
                (**biceps)[f], (**forearm)[f], (*wrist)(f, 0),
                (*wrist)(f, 1), (*wrist)(f, 2));
  }
  return 0;
}
