// Figure 8: percent of correctly classified right-hand motions among the
// k = 5 nearest neighbours retrieved per query, versus clusters and
// window size. Expected shape: rises with clusters, ~80 % at large c.

#include "bench_util.h"

int main() {
  mocemg::bench::RunFigureSweep("Figure 8", mocemg::Limb::kRightHand,
                                /*misclassification=*/false);
  return 0;
}
