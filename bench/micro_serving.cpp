// Microbenchmarks: the batched query-serving front end vs per-request
// exact scans — the §11.3 serving path measured as paired families so
// the per-pass ratio cancels host load (BENCH_pr5.json).
//
//   BM_ServedKnnBatch/<mode>   mode 0: per-request linear scan loop
//                              mode 1: QueryServer micro-batch through
//                                      the quantized index, cache OFF —
//                                      isolates batching + index.
//   BM_ServedKnnCached/<mode>  same pairing over a workload where every
//                              query repeats, with the cache ON — the
//                              steady-state hot-working-set regime the
//                              result cache is for.
//   BM_ServedKnnRobust/<mode>  mode 0: PR 5 serving path, no robustness
//                                      features configured.
//                              mode 1: the same path with the §12
//                                      robustness machinery armed but
//                                      never firing (deadline far in the
//                                      future, watermark above any
//                                      reachable depth) — measures the
//                                      overhead of deadline stamping,
//                                      expiry sweeps, and the watermark
//                                      check on the non-degraded fast
//                                      path (BENCH_pr6.json, < 5%).
//
// Results are bit-identical between the modes by construction (the
// server's contract); the families measure only how fast the same
// answers arrive.

#include <benchmark/benchmark.h>

#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "db/query_server.h"
#include "util/logging.h"
#include "util/random.h"

namespace mocemg {
namespace {

constexpr size_t kRecords = 8192;
constexpr size_t kDim = 64;
constexpr size_t kK = 5;

// Clustered final-feature-like records, same shape as micro_db.
MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    std::vector<double> f(dim, 0.0);
    Rng cls(seed ^ (r.label * 0x9E37ULL));
    for (int k = 0; k < 4; ++k) {
      f[cls.NextBelow(dim)] = 0.4 + 0.5 * rng.NextDouble();
    }
    r.feature = std::move(f);
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t count, size_t dim,
                                             uint64_t seed) {
  std::vector<std::vector<double>> queries(count);
  for (size_t i = 0; i < count; ++i) {
    Rng rng(seed + i);
    std::vector<double> q(dim, 0.0);
    for (int k = 0; k < 4; ++k) q[rng.NextBelow(dim)] = rng.NextDouble();
    queries[i] = std::move(q);
  }
  return queries;
}

const MotionDatabase& SharedDb() {
  static const MotionDatabase* db =
      new MotionDatabase(MakeDb(kRecords, kDim, 11));
  return *db;
}

const FeatureIndex& SharedIndex() {
  static const FeatureIndex* index = [] {
    auto built = FeatureIndex::Build(&SharedDb());
    MOCEMG_CHECK_OK(built.status());
    return new FeatureIndex(std::move(*built));
  }();
  return *index;
}

void ServeWorkload(benchmark::State& state,
                   const std::vector<std::vector<double>>& workload,
                   size_t cache_capacity) {
  const bool served = state.range(0) == 1;
  if (served) {
    QueryServerOptions opts;
    opts.max_batch = 64;
    opts.cache_capacity = cache_capacity;
    opts.parallel.max_threads = 1;
    auto server = QueryServer::Create(&SharedDb(), &SharedIndex(), opts);
    MOCEMG_CHECK_OK(server.status());
    for (auto _ : state) {
      auto hits = server->NearestNeighborsBatch(workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  } else {
    for (auto _ : state) {
      for (const auto& q : workload) {
        auto hits = SharedDb().NearestNeighbors(q, kK);
        benchmark::DoNotOptimize(hits);
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload.size()));
}

// All-unique workload, cache off: the win is micro-batching through the
// quantized index alone.
void BM_ServedKnnBatch(benchmark::State& state) {
  static const auto* workload =
      new std::vector<std::vector<double>>(MakeQueries(64, kDim, 101));
  ServeWorkload(state, *workload, /*cache_capacity=*/0);
}
BENCHMARK(BM_ServedKnnBatch)->Arg(0)->Arg(1);

// Hot-working-set workload (16 unique queries, each repeated 4x) with
// the cache on. After the first iteration every request is a cache hit
// — the steady state a serving front end actually runs in.
void BM_ServedKnnCached(benchmark::State& state) {
  static const auto* workload = [] {
    auto uniq = MakeQueries(16, kDim, 202);
    auto* w = new std::vector<std::vector<double>>();
    for (size_t rep = 0; rep < 4; ++rep) {
      for (const auto& q : uniq) w->push_back(q);
    }
    return w;
  }();
  ServeWorkload(state, *workload, /*cache_capacity=*/4096);
}
BENCHMARK(BM_ServedKnnCached)->Arg(0)->Arg(1);

// Robustness-armed vs plain serving over the identical workload. Both
// modes run the server; mode 1 additionally stamps deadlines, sweeps
// for expiry at batch formation, and evaluates the degradation
// watermark — none of which fire (the deadline is an hour, the
// watermark is far above the queue's reach), so the pair isolates the
// pure bookkeeping overhead of the robustness layer.
void BM_ServedKnnRobust(benchmark::State& state) {
  static const auto* workload =
      new std::vector<std::vector<double>>(MakeQueries(64, kDim, 303));
  const bool robust = state.range(0) == 1;
  QueryServerOptions opts;
  opts.max_batch = 64;
  opts.cache_capacity = 0;
  opts.parallel.max_threads = 1;
  if (robust) {
    opts.default_deadline_us = 3600ULL * 1000 * 1000;  // never expires
    opts.degrade_watermark = opts.max_queue;           // never reached
  }
  auto server = QueryServer::Create(&SharedDb(), &SharedIndex(), opts);
  MOCEMG_CHECK_OK(server.status());
  for (auto _ : state) {
    auto hits = server->NearestNeighborsBatch(*workload, kK);
    benchmark::DoNotOptimize(hits);
    MOCEMG_CHECK_OK(hits.status());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload->size()));
}
BENCHMARK(BM_ServedKnnRobust)->Arg(0)->Arg(1);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
