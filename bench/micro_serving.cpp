// Microbenchmarks: the batched query-serving front end vs per-request
// exact scans — the §11.3 serving path measured as paired families so
// the per-pass ratio cancels host load (BENCH_pr5.json).
//
//   BM_ServedKnnBatch/<mode>   mode 0: per-request linear scan loop
//                              mode 1: QueryServer micro-batch through
//                                      the quantized index, cache OFF —
//                                      isolates batching + index.
//   BM_ServedKnnCached/<mode>  same pairing over a workload where every
//                              query repeats, with the cache ON — the
//                              steady-state hot-working-set regime the
//                              result cache is for.
//   BM_ServedKnnRobust/<mode>  mode 0: PR 5 serving path, no robustness
//                                      features configured.
//                              mode 1: the same path with the §12
//                                      robustness machinery armed but
//                                      never firing (deadline far in the
//                                      future, watermark above any
//                                      reachable depth) — measures the
//                                      overhead of deadline stamping,
//                                      expiry sweeps, and the watermark
//                                      check on the non-degraded fast
//                                      path (BENCH_pr6.json, < 5%).
//   BM_ShardedKnn/<S>          scatter-gather batch kNN at S shards, one
//                              thread — the fan-out overhead sweep
//                              (BENCH_pr7.json).
//   BM_ServedKnnSharded/<mode> mode 0: single-index server; mode 1: 4
//                              shards + 2-deep wave pipeline (annotated,
//                              not gated, on 1-CPU hosts).
//   BM_ServedKnnMutate/<mode>  mutate-then-serve passes. mode 0: stale
//                              index → exact fallback + full cache loss.
//                              mode 1: ApplyUpdate + shard-aware
//                              revalidation keeps the untouched shards'
//                              cache entries (BENCH_pr7.json).
//   BM_BatchedKnn/<batch>/<dim>/<mode>
//                              mode 0: batch × NearestNeighbors in a
//                              loop; mode 1: one BatchNearestNeighbors
//                              query-block call. Identical index, one
//                              thread — the ratio isolates the
//                              many-to-many scan restructuring
//                              (DESIGN.md §16) from parallelism and
//                              caching (BENCH_pr10.json; gated at
//                              batch >= 16, dim >= 30 on SIMD hosts).
//
// Results are bit-identical between the modes by construction (the
// server's contract); the families measure only how fast the same
// answers arrive.

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "db/query_server.h"
#include "db/sharded_index.h"
#include "util/logging.h"
#include "util/random.h"

namespace mocemg {
namespace {

constexpr size_t kRecords = 8192;
constexpr size_t kDim = 64;
constexpr size_t kK = 5;

// Clustered final-feature-like records, same shape as micro_db.
MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    std::vector<double> f(dim, 0.0);
    Rng cls(seed ^ (r.label * 0x9E37ULL));
    for (int k = 0; k < 4; ++k) {
      f[cls.NextBelow(dim)] = 0.4 + 0.5 * rng.NextDouble();
    }
    r.feature = std::move(f);
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t count, size_t dim,
                                             uint64_t seed) {
  std::vector<std::vector<double>> queries(count);
  for (size_t i = 0; i < count; ++i) {
    Rng rng(seed + i);
    std::vector<double> q(dim, 0.0);
    for (int k = 0; k < 4; ++k) q[rng.NextBelow(dim)] = rng.NextDouble();
    queries[i] = std::move(q);
  }
  return queries;
}

const MotionDatabase& SharedDb() {
  static const MotionDatabase* db =
      new MotionDatabase(MakeDb(kRecords, kDim, 11));
  return *db;
}

const FeatureIndex& SharedIndex() {
  static const FeatureIndex* index = [] {
    auto built = FeatureIndex::Build(&SharedDb());
    MOCEMG_CHECK_OK(built.status());
    return new FeatureIndex(std::move(*built));
  }();
  return *index;
}

void ServeWorkload(benchmark::State& state,
                   const std::vector<std::vector<double>>& workload,
                   size_t cache_capacity) {
  const bool served = state.range(0) == 1;
  if (served) {
    QueryServerOptions opts;
    opts.max_batch = 64;
    opts.cache_capacity = cache_capacity;
    opts.parallel.max_threads = 1;
    auto server = QueryServer::Create(&SharedDb(), &SharedIndex(), opts);
    MOCEMG_CHECK_OK(server.status());
    for (auto _ : state) {
      auto hits = server->NearestNeighborsBatch(workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  } else {
    for (auto _ : state) {
      for (const auto& q : workload) {
        auto hits = SharedDb().NearestNeighbors(q, kK);
        benchmark::DoNotOptimize(hits);
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload.size()));
}

// All-unique workload, cache off: the win is micro-batching through the
// quantized index alone.
void BM_ServedKnnBatch(benchmark::State& state) {
  static const auto* workload =
      new std::vector<std::vector<double>>(MakeQueries(64, kDim, 101));
  ServeWorkload(state, *workload, /*cache_capacity=*/0);
}
BENCHMARK(BM_ServedKnnBatch)->Arg(0)->Arg(1);

// Hot-working-set workload (16 unique queries, each repeated 4x) with
// the cache on. After the first iteration every request is a cache hit
// — the steady state a serving front end actually runs in.
void BM_ServedKnnCached(benchmark::State& state) {
  static const auto* workload = [] {
    auto uniq = MakeQueries(16, kDim, 202);
    auto* w = new std::vector<std::vector<double>>();
    for (size_t rep = 0; rep < 4; ++rep) {
      for (const auto& q : uniq) w->push_back(q);
    }
    return w;
  }();
  ServeWorkload(state, *workload, /*cache_capacity=*/4096);
}
BENCHMARK(BM_ServedKnnCached)->Arg(0)->Arg(1);

// Scatter-gather through a ShardedFeatureIndex at S shards, single
// thread: measures the pure cost of per-shard heaps + fixed-order
// merge relative to the one-shard scan (S=1). The answers are
// bit-identical at every S; with one worker the fan-out is overhead,
// and the sweep quantifies it. On multi-core hosts the shards scan
// concurrently and the sweep turns into the speedup curve.
void BM_ShardedKnn(benchmark::State& state) {
  static const auto* workload =
      new std::vector<std::vector<double>>(MakeQueries(64, kDim, 404));
  const size_t shards = static_cast<size_t>(state.range(0));
  ShardedIndexOptions sopts;
  sopts.num_shards = shards;
  sopts.index.parallel.max_threads = 1;
  auto index = ShardedFeatureIndex::Build(&SharedDb(), sopts);
  MOCEMG_CHECK_OK(index.status());
  for (auto _ : state) {
    auto hits = index->BatchNearestNeighbors(*workload, kK);
    benchmark::DoNotOptimize(hits);
    MOCEMG_CHECK_OK(hits.status());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload->size()));
}
BENCHMARK(BM_ShardedKnn)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Single-index serving vs 4-shard serving with a 2-deep wave pipeline,
// identical workload and answers. With one CPU online the pipeline
// cannot overlap stages and the pair measures scatter-gather overhead;
// run_benchmarks.sh annotates (does not gate) the ratio accordingly.
void BM_ServedKnnSharded(benchmark::State& state) {
  static const auto* workload =
      new std::vector<std::vector<double>>(MakeQueries(64, kDim, 505));
  const bool sharded = state.range(0) == 1;
  QueryServerOptions opts;
  opts.max_batch = 16;
  opts.cache_capacity = 0;
  opts.parallel.max_threads = 1;
  if (sharded) {
    static const ShardedFeatureIndex* index = [] {
      ShardedIndexOptions sopts;
      sopts.num_shards = 4;
      sopts.index.parallel.max_threads = 1;
      auto built = ShardedFeatureIndex::Build(&SharedDb(), sopts);
      MOCEMG_CHECK_OK(built.status());
      return new ShardedFeatureIndex(std::move(*built));
    }();
    opts.pipeline_depth = 2;
    auto server = QueryServer::Create(&SharedDb(), index, opts);
    MOCEMG_CHECK_OK(server.status());
    for (auto _ : state) {
      auto hits = server->NearestNeighborsBatch(*workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  } else {
    auto server = QueryServer::Create(&SharedDb(), &SharedIndex(), opts);
    MOCEMG_CHECK_OK(server.status());
    for (auto _ : state) {
      auto hits = server->NearestNeighborsBatch(*workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload->size()));
}
BENCHMARK(BM_ServedKnnSharded)->Arg(0)->Arg(1);

// The mutate-while-serving regime the sharded cache key exists for:
// each pass mutates one record, then serves a hot working set of
// queries whose answers live mostly in OTHER shards.
//
//   mode 0: plain-index server. The mutation leaves the index stale —
//           every request falls back to the exact scan and the whole
//           result cache invalidates on the epoch bump.
//   mode 1: 4-shard server with ApplyUpdate absorbed between passes —
//           the index stays fresh, and only cache entries that
//           provably depended on the mutated shard re-evaluate; the
//           rest revalidate in place.
//
// The mutation alternates between two values so every pass does the
// same work and the pair stays deterministic.
void BM_ServedKnnMutate(benchmark::State& state) {
  const bool sharded = state.range(0) == 1;
  constexpr size_t kMutated = 7;
  // Per-mode database: mutations must not leak across modes.
  static MotionDatabase* dbs[2] = {nullptr, nullptr};
  MotionDatabase*& db = dbs[sharded ? 1 : 0];
  if (db == nullptr) db = new MotionDatabase(MakeDb(kRecords, kDim, 11));
  // Hot working set: perturbed copies of stored records, so each
  // query's neighbours sit tightly in one partition and the
  // revalidation certificate has small radii to certify against.
  static const auto* workload = [] {
    auto* w = new std::vector<std::vector<double>>();
    const MotionDatabase& seed_db = SharedDb();
    for (size_t i = 0; i < 48; ++i) {
      std::vector<double> q = seed_db.record((i * 37 + 1) % kRecords).feature;
      q[(i * 5) % kDim] += 0.01;
      w->push_back(std::move(q));
    }
    return w;
  }();
  QueryServerOptions opts;
  opts.max_batch = 16;
  opts.cache_capacity = 4096;
  opts.parallel.max_threads = 1;

  std::vector<double> base = db->record(kMutated).feature;
  std::vector<double> alt = base;
  alt[1] += 0.1;
  bool flip = false;

  if (sharded) {
    ShardedIndexOptions sopts;
    sopts.num_shards = 4;
    sopts.index.parallel.max_threads = 1;
    auto built = ShardedFeatureIndex::Build(db, sopts);
    MOCEMG_CHECK_OK(built.status());
    ShardedFeatureIndex index(std::move(*built));
    auto server = QueryServer::Create(db, &index, opts);
    MOCEMG_CHECK_OK(server.status());
    for (auto _ : state) {
      MOCEMG_CHECK_OK(
          db->UpdateFeature(kMutated, (flip = !flip) ? alt : base));
      // The inline serve path is synchronous — nothing is in flight,
      // so the in-place ApplyUpdate is quiesced by construction.
      MOCEMG_CHECK_OK(index.ApplyUpdate(kMutated));
      auto hits = server->NearestNeighborsBatch(*workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  } else {
    auto built = FeatureIndex::Build(db);
    MOCEMG_CHECK_OK(built.status());
    FeatureIndex index(std::move(*built));
    auto server = QueryServer::Create(db, &index, opts);
    MOCEMG_CHECK_OK(server.status());
    for (auto _ : state) {
      MOCEMG_CHECK_OK(
          db->UpdateFeature(kMutated, (flip = !flip) ? alt : base));
      auto hits = server->NearestNeighborsBatch(*workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload->size()));
}
BENCHMARK(BM_ServedKnnMutate)->Arg(0)->Arg(1);

// Robustness-armed vs plain serving over the identical workload. Both
// modes run the server; mode 1 additionally stamps deadlines, sweeps
// for expiry at batch formation, and evaluates the degradation
// watermark — none of which fire (the deadline is an hour, the
// watermark is far above the queue's reach), so the pair isolates the
// pure bookkeeping overhead of the robustness layer.
void BM_ServedKnnRobust(benchmark::State& state) {
  static const auto* workload =
      new std::vector<std::vector<double>>(MakeQueries(64, kDim, 303));
  const bool robust = state.range(0) == 1;
  QueryServerOptions opts;
  opts.max_batch = 64;
  opts.cache_capacity = 0;
  opts.parallel.max_threads = 1;
  if (robust) {
    opts.default_deadline_us = 3600ULL * 1000 * 1000;  // never expires
    opts.degrade_watermark = opts.max_queue;           // never reached
  }
  auto server = QueryServer::Create(&SharedDb(), &SharedIndex(), opts);
  MOCEMG_CHECK_OK(server.status());
  for (auto _ : state) {
    auto hits = server->NearestNeighborsBatch(*workload, kK);
    benchmark::DoNotOptimize(hits);
    MOCEMG_CHECK_OK(hits.status());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload->size()));
}
BENCHMARK(BM_ServedKnnRobust)->Arg(0)->Arg(1);

// Per-query loop vs the query-block batched scan over the identical
// single-thread index. Answers are bit-identical by the §16 contract;
// the pair measures only how fast the same answers arrive as the
// micro-batch grows and the per-partition bytes amortize.
void BM_BatchedKnn(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const bool batched = state.range(2) == 1;
  struct Fixture {
    MotionDatabase db;
    FeatureIndex index;
  };
  static std::map<size_t, Fixture*>* fixtures =
      new std::map<size_t, Fixture*>();
  Fixture*& fx = (*fixtures)[dim];
  if (fx == nullptr) {
    fx = new Fixture{MakeDb(kRecords, dim, 11), FeatureIndex()};
    FeatureIndexOptions iopts;
    iopts.parallel.max_threads = 1;
    auto built = FeatureIndex::Build(&fx->db, iopts);
    MOCEMG_CHECK_OK(built.status());
    fx->index = std::move(*built);
  }
  const std::vector<std::vector<double>> workload =
      MakeQueries(batch, dim, 606 + dim);
  if (batched) {
    for (auto _ : state) {
      auto hits = fx->index.BatchNearestNeighbors(workload, kK);
      benchmark::DoNotOptimize(hits);
      MOCEMG_CHECK_OK(hits.status());
    }
  } else {
    for (auto _ : state) {
      for (const auto& q : workload) {
        auto hits = fx->index.NearestNeighbors(q, kK);
        benchmark::DoNotOptimize(hits);
        MOCEMG_CHECK_OK(hits.status());
      }
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * workload.size()));
}
BENCHMARK(BM_BatchedKnn)
    ->Args({4, 16, 0})
    ->Args({4, 16, 1})
    ->Args({16, 64, 0})
    ->Args({16, 64, 1})
    ->Args({64, 64, 0})
    ->Args({64, 64, 1})
    ->Args({64, 240, 0})
    ->Args({64, 240, 1});

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
