// Microbenchmarks: the parallel substrate. Each parallelized stage —
// window featurization, the FCM fit, batch kNN, batch classification —
// is timed at 1, 2, and 4 worker threads plus the hardware budget
// (thread arg 0), so tools/run_benchmarks.sh can report speedup over
// the provably-identical serial path. Also times the raw ParallelFor
// dispatch overhead, the floor below which parallelizing a loop cannot
// pay.

#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/fcm.h"
#include "core/classifier.h"
#include "core/window_features.h"
#include "db/feature_index.h"
#include "db/motion_database.h"
#include "emg/acquisition.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Thread arg convention: 0 = hardware budget, otherwise the exact cap.
void ThreadArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2)->Arg(4)->Arg(0 /*=hw*/);
}

const CapturedMotion& SharedTrial() {
  static const CapturedMotion* trial = [] {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.seed = 55;
    auto t = GenerateTrial(lab, 1, 0, 99);
    MOCEMG_CHECK_OK(t.status());
    return new CapturedMotion(std::move(*t));
  }();
  return *trial;
}

const std::vector<LabeledMotion>& SharedTrainingSet() {
  static const std::vector<LabeledMotion>* motions = [] {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.trials_per_class = 3;
    lab.seed = 91;
    auto data = GenerateDataset(lab);
    MOCEMG_CHECK_OK(data.status());
    return new std::vector<LabeledMotion>(
        ToLabeledMotions(std::move(*data)));
  }();
  return *motions;
}

const MotionClassifier& SharedClassifier() {
  static const MotionClassifier* clf = [] {
    ClassifierOptions opts;
    opts.fcm.num_clusters = 8;
    auto trained = MotionClassifier::Train(SharedTrainingSet(), opts);
    MOCEMG_CHECK_OK(trained.status());
    return new MotionClassifier(*std::move(trained));
  }();
  return *clf;
}

// Dispatch overhead: near-empty chunks over a large range. This is the
// fixed cost a loop must amortize before threads can win.
void BM_ParallelForDispatch(benchmark::State& state) {
  ParallelOptions opts;
  opts.max_threads = static_cast<size_t>(state.range(0));
  const size_t n = 1 << 16;
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    Status st = ParallelFor(
        n,
        [&](size_t begin, size_t end, size_t) -> Status {
          for (size_t i = begin; i < end; ++i) {
            out[i] = static_cast<double>(i) * 1.5;
          }
          return Status::OK();
        },
        opts);
    MOCEMG_CHECK_OK(st);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ParallelForDispatch)->Apply(ThreadArgs);

void BM_ParallelWindowFeatures(benchmark::State& state) {
  const CapturedMotion& trial = SharedTrial();
  auto conditioned = ConditionRecording(trial.emg_raw);
  MOCEMG_CHECK_OK(conditioned.status());
  WindowFeatureOptions opts;
  opts.window_ms = 100.0;
  opts.hop_frames = 1;  // dense sliding windows: the worst-case load
  opts.parallel.max_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto features =
        ExtractWindowFeatures(trial.mocap, *conditioned, opts);
    MOCEMG_CHECK_OK(features.status());
    benchmark::DoNotOptimize(features->points.data().data());
  }
}
BENCHMARK(BM_ParallelWindowFeatures)->Apply(ThreadArgs);

void BM_ParallelFcmFit(benchmark::State& state) {
  Rng rng(31);
  Matrix points(1500, 16);
  for (double& v : points.mutable_data()) v = rng.NextDouble();
  FcmOptions opts;
  opts.num_clusters = 15;
  opts.max_iterations = 25;
  opts.epsilon = 0.0;  // fixed iteration count for comparable runs
  opts.parallel.max_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto model = FitFcm(points, opts);
    MOCEMG_CHECK_OK(model.status());
    benchmark::DoNotOptimize(model->centers.data().data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * points.rows()));
}
BENCHMARK(BM_ParallelFcmFit)->Apply(ThreadArgs);

void BM_ParallelBatchKnn(benchmark::State& state) {
  Rng rng(3);
  MotionDatabase db;
  const size_t dim = 30;
  for (size_t i = 0; i < 10000; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    r.feature.resize(dim);
    for (double& v : r.feature) v = rng.NextDouble();
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  FeatureIndexOptions opts;
  opts.parallel.max_threads = static_cast<size_t>(state.range(0));
  auto index = FeatureIndex::Build(&db, opts);
  MOCEMG_CHECK_OK(index.status());
  std::vector<std::vector<double>> queries(64,
                                           std::vector<double>(dim));
  for (auto& q : queries) {
    for (double& v : q) v = rng.NextDouble();
  }
  for (auto _ : state) {
    auto hits = index->BatchNearestNeighbors(queries, 5);
    MOCEMG_CHECK_OK(hits.status());
    benchmark::DoNotOptimize(hits->data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * queries.size()));
}
BENCHMARK(BM_ParallelBatchKnn)->Apply(ThreadArgs);

void BM_ParallelClassifyBatch(benchmark::State& state) {
  const MotionClassifier& clf = SharedClassifier();
  const std::vector<LabeledMotion>& trials = SharedTrainingSet();
  ParallelOptions par;
  par.max_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto labels = clf.ClassifyBatch(trials, par);
    MOCEMG_CHECK_OK(labels.status());
    benchmark::DoNotOptimize(labels->data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * trials.size()));
}
BENCHMARK(BM_ParallelClassifyBatch)->Apply(ThreadArgs);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
