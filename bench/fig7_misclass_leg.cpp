// Figure 7: percent of trials mis-classified for the right leg, versus
// the number of FCM clusters, one series per window size.

#include "bench_util.h"

int main() {
  mocemg::bench::RunFigureSweep("Figure 7", mocemg::Limb::kRightLeg,
                                /*misclassification=*/true);
  return 0;
}
