// Microbenchmarks: retrieval scaling — linear kNN scan vs the
// cluster-pruned index over growing database sizes, at the final-feature
// dimensionality of the paper's configuration (2c = 30 for c = 15).

#include <benchmark/benchmark.h>

#include <map>

#include "db/feature_index.h"
#include "db/motion_database.h"
#include "util/logging.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Clustered final-feature-like records (sparse non-negative blocks).
MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    std::vector<double> f(dim, 0.0);
    // Each class activates its own few clusters, like real final
    // features.
    Rng cls(seed ^ (r.label * 0x9E37ULL));
    for (int k = 0; k < 4; ++k) {
      const size_t at = static_cast<size_t>(cls.NextBelow(dim));
      f[at] = 0.4 + 0.5 * rng.NextDouble();
    }
    r.feature = std::move(f);
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  return db;
}

std::vector<double> MakeQuery(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(dim, 0.0);
  for (int k = 0; k < 4; ++k) {
    q[rng.NextBelow(dim)] = rng.NextDouble();
  }
  return q;
}

void BM_LinearKnn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MotionDatabase db = MakeDb(n, 30, 3);
  const auto query = MakeQuery(30, 4);
  for (auto _ : state) {
    auto hits = db.NearestNeighbors(query, 5);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_LinearKnn)->Arg(100)->Arg(1000)->Arg(10000);

void BM_IndexedKnn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MotionDatabase db = MakeDb(n, 30, 3);
  auto index = FeatureIndex::Build(&db);
  MOCEMG_CHECK_OK(index.status());
  const auto query = MakeQuery(30, 4);
  for (auto _ : state) {
    auto hits = index->NearestNeighbors(query, 5);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_IndexedKnn)->Arg(100)->Arg(1000)->Arg(10000);

// Dimension sweep at fixed n: the paper-typical final-feature width
// (2c = 30) up to 8x wider, where the SoA dot-form scan's advantage
// over pointer-chased AoS rows grows with the row length. Reported in
// BENCH_pr4.json alongside the paired kernel-vs-scalar families of
// micro_distance.
void BM_IndexedKnnDim(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t n = 4000;
  MotionDatabase db = MakeDb(n, dim, 3);
  auto index = FeatureIndex::Build(&db);
  MOCEMG_CHECK_OK(index.status());
  const auto query = MakeQuery(dim, 4);
  for (auto _ : state) {
    auto hits = index->NearestNeighbors(query, 5);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_IndexedKnnDim)->Arg(30)->Arg(64)->Arg(128)->Arg(240);

// Paired quantized-tier family (BENCH_pr5.json): mode 0 scans with the
// PR 4 dot-form path alone (quantized_scan off), mode 1 adds the int8
// coarse tier. Same binary, same pass, so the per-pass ratio cancels
// host load. The partition count is pinned low (8 over 20000 records,
// ~2500 rows each) so the in-partition scan — the stage the coarse
// tier accelerates — dominates per-query time; with the √N default the
// reference pass and partition-level triangle prune leave almost no
// scan work to measure. The dimension sweep covers the paper's
// final-feature width up to 4x wider, where the 1-byte/dim coarse scan
// saves the most memory traffic.
void BM_QuantIndexedKnnDim(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool quantized = state.range(1) == 1;
  const size_t n = 20000;
  static std::map<size_t, MotionDatabase>* dbs =
      new std::map<size_t, MotionDatabase>();
  if (dbs->find(dim) == dbs->end()) {
    dbs->emplace(dim, MakeDb(n, dim, 3));
  }
  const MotionDatabase& db = dbs->at(dim);
  FeatureIndexOptions opts;
  opts.num_partitions = 8;
  opts.quantized_scan = quantized;
  auto index = FeatureIndex::Build(&db, opts);
  MOCEMG_CHECK_OK(index.status());
  const auto query = MakeQuery(dim, 4);
  for (auto _ : state) {
    auto hits = index->NearestNeighbors(query, 5);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_QuantIndexedKnnDim)
    ->Args({30, 0})->Args({30, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Args({128, 0})->Args({128, 1});

// Paired fp32-exact-tier family (BENCH_pr9.json): mode 0 answers
// through the f64 dot-form scan, mode 1 through the certified fp32
// mirror scan with error-bound-gated double refine. Same binary, same
// pass, identical (bit-for-bit) answers — the ratio is the end-to-end
// indexed-kNN win from halving scan bandwidth. Quantization stays off
// on both sides so the exact tier is the stage measured, and the
// partition count is pinned low so the in-partition scan dominates.
void BM_IndexedKnnF32(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool f32 = state.range(1) == 1;
  const size_t n = 20000;
  static std::map<size_t, MotionDatabase>* dbs =
      new std::map<size_t, MotionDatabase>();
  if (dbs->find(dim) == dbs->end()) {
    dbs->emplace(dim, MakeDb(n, dim, 5));
  }
  const MotionDatabase& db = dbs->at(dim);
  FeatureIndexOptions opts;
  opts.num_partitions = 8;
  opts.quantized_scan = false;
  opts.exact_precision = f32 ? ExactPrecision::kF32 : ExactPrecision::kF64;
  auto index = FeatureIndex::Build(&db, opts);
  MOCEMG_CHECK_OK(index.status());
  const auto query = MakeQuery(dim, 6);
  for (auto _ : state) {
    auto hits = index->NearestNeighbors(query, 5);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_IndexedKnnF32)
    ->Args({30, 0})->Args({30, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Args({128, 0})->Args({128, 1})
    ->Args({240, 0})->Args({240, 1});

void BM_IndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  MotionDatabase db = MakeDb(n, 30, 3);
  for (auto _ : state) {
    auto index = FeatureIndex::Build(&db);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
