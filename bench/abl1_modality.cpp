// Ablation A1 — the integration claim. The paper's thesis is that
// combining mocap and EMG beats either alone ("they definitely give more
// information when they are analyzed together"). This bench runs the
// identical pipeline with EMG-only, mocap-only, and combined features.

#include "abl_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::vector<Variant> variants;
  {
    Variant v{"combined", DefaultPipeline()};
    variants.push_back(v);
  }
  {
    Variant v{"mocap_only", DefaultPipeline()};
    v.options.features.use_emg = false;
    variants.push_back(v);
  }
  {
    Variant v{"emg_only", DefaultPipeline()};
    v.options.features.use_mocap = false;
    variants.push_back(v);
  }
  RunAblation("Ablation A1 — modality: combined vs mocap-only vs emg-only",
              variants);
  return 0;
}
