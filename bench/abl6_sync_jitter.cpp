// Ablation A6 — what the trigger module buys. The paper built a hardware
// circuit (its Figure 5) to start both acquisitions simultaneously. This
// bench injects increasing EMG start latency/jitter into the simulated
// rig and measures the classification cost of losing synchronization.

#include <cstdio>

#include "bench_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::printf("# Ablation A6 — trigger-sync jitter sensitivity\n");
  std::printf(
      "# seed=%llu trials_per_class=%zu folds=%zu window=100ms c=15\n",
      static_cast<unsigned long long>(EnvSeed()), EnvTrials(),
      EnvFolds());
  std::printf("limb\temg_latency_ms\tjitter_ms\tmisclass_%%\tknn5_%%\n");

  const double latencies[][2] = {
      {0.0, 0.0}, {25.0, 10.0}, {100.0, 30.0}, {250.0, 80.0}};
  for (Limb limb : {Limb::kRightHand, Limb::kRightLeg}) {
    for (const auto& [latency, jitter] : latencies) {
      DatasetOptions lab;
      lab.limb = limb;
      lab.trials_per_class = EnvTrials();
      lab.seed = EnvSeed();
      lab.trigger.emg_latency_ms = latency;
      lab.trigger.jitter_ms = jitter;
      auto data = GenerateDataset(lab);
      MOCEMG_CHECK_OK(data.status());
      auto result = CrossValidate(ToLabeledMotions(std::move(*data)),
                                  NumClassesForLimb(limb),
                                  DefaultPipeline(), DefaultProtocol());
      MOCEMG_CHECK_OK(result.status());
      std::printf("%s\t%.0f\t%.0f\t%.1f\t%.1f\n", LimbName(limb),
                  latency, jitter, result->misclassification_percent,
                  result->knn_percent);
      std::fflush(stdout);
    }
  }
  return 0;
}
