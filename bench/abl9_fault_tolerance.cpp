// Ablation A9 — degraded-capture robustness. Sweeps fault severity
// (FaultSeverityPreset: occlusion runs, channel dropout, saturation,
// hum bursts, trigger skew, clock drift all scaled together) and
// reports accuracy for three recovery strategies:
//   robust     ClassifyRobust: repair + mask + automatic fallback
//   mocap_fb   forced mocap-only fallback sub-model (gap-repaired mocap)
//   emg_fb     forced EMG-only fallback sub-model
// The interesting read is how long the integrated "robust" path holds
// its accuracy before the forced single-modality floors take over.

#include <map>

#include "bench_util.h"
#include "core/stream_health.h"
#include "synth/fault_injector.h"

using namespace mocemg;
using namespace mocemg::bench;

namespace {

struct Split {
  std::vector<LabeledMotion> train;
  std::vector<LabeledMotion> test;
};

// Last two trials of every class held out for corruption.
Split HoldOutSplit(std::vector<LabeledMotion> motions,
                   size_t num_classes) {
  Split split;
  std::map<size_t, size_t> per_class;
  for (const auto& m : motions) ++per_class[m.label];
  const size_t hold = 2;
  std::map<size_t, size_t> seen;
  for (auto& m : motions) {
    const size_t rank = seen[m.label]++;
    if (rank + hold >= per_class[m.label]) {
      split.test.push_back(std::move(m));
    } else {
      split.train.push_back(std::move(m));
    }
  }
  MOCEMG_CHECK(split.test.size() >= num_classes);
  return split;
}

void RunLimb(Limb limb) {
  std::vector<LabeledMotion> motions = MakeBenchDataset(limb);
  Split split = HoldOutSplit(std::move(motions), NumClassesForLimb(limb));

  ClassifierOptions options = DefaultPipeline();
  options.train_fallbacks = true;
  auto model = MotionClassifier::Train(split.train, options);
  MOCEMG_CHECK_OK(model.status());

  std::printf("# %s: train=%zu test=%zu\n", LimbName(limb),
              split.train.size(), split.test.size());
  std::printf(
      "limb\tseverity\trobust_%%\tdegraded_%%\tfallback_%%\t"
      "mocap_fb_%%\temg_fb_%%\n");
  for (double severity : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    size_t robust_hits = 0, degraded = 0, fell_back = 0;
    size_t mocap_hits = 0, emg_hits = 0, n = 0;
    for (size_t i = 0; i < split.test.size(); ++i) {
      const LabeledMotion& truth = split.test[i];
      FaultInjector injector(
          FaultSeverityPreset(severity, EnvSeed() ^ (1000 + i)));
      CapturedMotion capture;
      capture.mocap = truth.mocap;
      capture.emg_raw = truth.emg;
      capture.class_id = truth.label;
      auto corrupted = injector.Corrupt(capture);
      MOCEMG_CHECK_OK(corrupted.status());
      ++n;

      auto decision =
          model->ClassifyRobust(corrupted->mocap, corrupted->emg_raw);
      if (decision.ok()) {
        robust_hits += decision->label == truth.label ? 1 : 0;
        degraded += decision->degraded ? 1 : 0;
        fell_back += decision->mode != ClassifierMode::kFull ? 1 : 0;
      }

      // Forced single-modality floors, on gap-repaired mocap (both
      // sub-models window the mocap stream, so it must be finite).
      StreamHealth health(options.health);
      auto repaired = health.RepairMocap(corrupted->mocap, nullptr);
      const MotionSequence& mocap =
          repaired.ok() ? *repaired : corrupted->mocap;
      auto by_mocap = model->submodel(ClassifierMode::kMocapOnly)
                          ->Classify(mocap, corrupted->emg_raw);
      if (by_mocap.ok() && *by_mocap == truth.label) ++mocap_hits;
      auto by_emg = model->submodel(ClassifierMode::kEmgOnly)
                        ->Classify(mocap, corrupted->emg_raw);
      if (by_emg.ok() && *by_emg == truth.label) ++emg_hits;
    }
    const double scale = 100.0 / static_cast<double>(n);
    std::printf("%s\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
                LimbName(limb), severity,
                scale * static_cast<double>(robust_hits),
                scale * static_cast<double>(degraded),
                scale * static_cast<double>(fell_back),
                scale * static_cast<double>(mocap_hits),
                scale * static_cast<double>(emg_hits));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("# Ablation A9 — fault severity vs accuracy\n");
  std::printf(
      "# seed=%llu trials_per_class=%zu window=100ms c=15 "
      "(robust = repair+mask+auto-fallback; *_fb = forced "
      "single-modality sub-model)\n",
      static_cast<unsigned long long>(EnvSeed()), EnvTrials());
  for (Limb limb : {Limb::kRightHand, Limb::kRightLeg}) RunLimb(limb);
  return 0;
}
