// Microbenchmarks: the acquisition chain (band-pass + rectify +
// resample), window-feature extraction, and end-to-end featurization of
// one motion — the per-capture costs an online application pays.

#include <benchmark/benchmark.h>

#include "core/classifier.h"
#include "core/window_features.h"
#include "emg/acquisition.h"
#include "eval/protocols.h"
#include "synth/dataset.h"
#include "util/logging.h"

namespace mocemg {
namespace {

const CapturedMotion& SharedTrial() {
  static const CapturedMotion* trial = [] {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.seed = 55;
    auto t = GenerateTrial(lab, 1, 0, 99);
    MOCEMG_CHECK_OK(t.status());
    return new CapturedMotion(std::move(*t));
  }();
  return *trial;
}

void BM_ConditionRecording(benchmark::State& state) {
  const CapturedMotion& trial = SharedTrial();
  for (auto _ : state) {
    auto out = ConditionRecording(trial.emg_raw);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(
      state.iterations() * trial.emg_raw.num_samples() *
      trial.emg_raw.num_channels()));
}
BENCHMARK(BM_ConditionRecording);

// Args: {window_ms, max_threads} with 0 = hardware thread budget.
void BM_WindowFeatureExtraction(benchmark::State& state) {
  const CapturedMotion& trial = SharedTrial();
  auto conditioned = ConditionRecording(trial.emg_raw);
  MOCEMG_CHECK_OK(conditioned.status());
  WindowFeatureOptions opts;
  opts.window_ms = static_cast<double>(state.range(0));
  opts.parallel.max_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto features =
        ExtractWindowFeatures(trial.mocap, *conditioned, opts);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_WindowFeatureExtraction)
    ->ArgsProduct({{50, 100, 200}, {1, 2, 0 /*=hw*/}});

// Batch classification of a whole dataset, the shape of an evaluation
// sweep. Arg: max_threads (0 = hardware budget).
void BM_ClassifyBatch(benchmark::State& state) {
  static const MotionClassifier* clf = nullptr;
  static const std::vector<LabeledMotion>* trials = nullptr;
  if (clf == nullptr) {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.trials_per_class = 3;
    lab.seed = 91;
    auto data = GenerateDataset(lab);
    MOCEMG_CHECK_OK(data.status());
    trials = new std::vector<LabeledMotion>(
        ToLabeledMotions(std::move(*data)));
    ClassifierOptions opts;
    opts.fcm.num_clusters = 8;
    auto trained = MotionClassifier::Train(*trials, opts);
    MOCEMG_CHECK_OK(trained.status());
    clf = new MotionClassifier(*std::move(trained));
  }
  ParallelOptions par;
  par.max_threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto labels = clf->ClassifyBatch(*trials, par);
    MOCEMG_CHECK_OK(labels.status());
    benchmark::DoNotOptimize(labels->data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * trials->size()));
}
BENCHMARK(BM_ClassifyBatch)->Arg(1)->Arg(2)->Arg(0 /*=hw*/);

void BM_TrialSynthesis(benchmark::State& state) {
  DatasetOptions lab;
  lab.limb = Limb::kRightHand;
  lab.seed = 77;
  uint64_t salt = 0;
  for (auto _ : state) {
    auto t = GenerateTrial(lab, salt % 6, 0, 1000 + salt);
    ++salt;
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrialSynthesis);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
