// Microbenchmarks: the acquisition chain (band-pass + rectify +
// resample), window-feature extraction, and end-to-end featurization of
// one motion — the per-capture costs an online application pays.

#include <benchmark/benchmark.h>

#include "core/window_features.h"
#include "emg/acquisition.h"
#include "synth/dataset.h"
#include "util/logging.h"

namespace mocemg {
namespace {

const CapturedMotion& SharedTrial() {
  static const CapturedMotion* trial = [] {
    DatasetOptions lab;
    lab.limb = Limb::kRightHand;
    lab.seed = 55;
    auto t = GenerateTrial(lab, 1, 0, 99);
    MOCEMG_CHECK_OK(t.status());
    return new CapturedMotion(std::move(*t));
  }();
  return *trial;
}

void BM_ConditionRecording(benchmark::State& state) {
  const CapturedMotion& trial = SharedTrial();
  for (auto _ : state) {
    auto out = ConditionRecording(trial.emg_raw);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(
      state.iterations() * trial.emg_raw.num_samples() *
      trial.emg_raw.num_channels()));
}
BENCHMARK(BM_ConditionRecording);

void BM_WindowFeatureExtraction(benchmark::State& state) {
  const CapturedMotion& trial = SharedTrial();
  auto conditioned = ConditionRecording(trial.emg_raw);
  MOCEMG_CHECK_OK(conditioned.status());
  WindowFeatureOptions opts;
  opts.window_ms = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto features =
        ExtractWindowFeatures(trial.mocap, *conditioned, opts);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_WindowFeatureExtraction)->Arg(50)->Arg(100)->Arg(200);

void BM_TrialSynthesis(benchmark::State& state) {
  DatasetOptions lab;
  lab.limb = Limb::kRightHand;
  lab.seed = 77;
  uint64_t salt = 0;
  for (auto _ : state) {
    auto t = GenerateTrial(lab, salt % 6, 0, 1000 + salt);
    ++salt;
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrialSynthesis);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
