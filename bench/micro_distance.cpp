// Microbenchmarks: the vectorized distance-kernel layer against the
// pre-kernel scalar paths it replaced. Each family takes a trailing
// mode arg (0 = scalar/AoS replica of the seed code, 1 = the kernel
// path) so the two modes run inside one binary seconds apart and
// tools/run_benchmarks.sh can report paired per-pass ratios that
// cancel host load.
//
// The mode-0 replicas are verbatim restatements of the seed inner
// loops: strictly sequential scalar squared distances (no 4-lane
// reassociation, so the compiler cannot vectorize the reduction),
// AoS vector-of-vectors record storage, one sqrt per record in the
// linear scan, and pow-based membership rows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/fcm.h"
#include "cluster/kmeans.h"
#include "db/feature_index.h"
#include "db/motion_database.h"
#include "linalg/matrix.h"
#include "util/logging.h"
#include "util/random.h"

namespace mocemg {
namespace {

// Clustered final-feature-like records (sparse non-negative blocks),
// the same shape micro_db uses.
MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    std::vector<double> f(dim, 0.0);
    Rng cls(seed ^ (r.label * 0x9E37ULL));
    for (int k = 0; k < 4; ++k) {
      const size_t at = static_cast<size_t>(cls.NextBelow(dim));
      f[at] = 0.4 + 0.5 * rng.NextDouble();
    }
    r.feature = std::move(f);
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  return db;
}

std::vector<double> MakeQuery(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(dim, 0.0);
  for (int k = 0; k < 4; ++k) {
    q[rng.NextBelow(dim)] = rng.NextDouble();
  }
  return q;
}

// Seed-style sequential scalar squared distance: one accumulator, one
// dependency chain. IEEE addition is not associative, so without the
// kernel's explicit lane split the compiler must keep this scalar.
double ScalarSquaredDistance(const double* a, const double* b, size_t d) {
  double sum = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

// Replica of the seed MotionDatabase::NearestNeighbors: AoS records,
// one EuclideanDistance (sqrt included) per record, partial_sort on
// true distances.
std::vector<QueryHit> SeedLinearScan(
    const std::vector<std::vector<double>>& records,
    const std::vector<double>& query, size_t k) {
  std::vector<QueryHit> hits(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    hits[i].record_index = i;
    hits[i].distance = std::sqrt(ScalarSquaredDistance(
        query.data(), records[i].data(), query.size()));
  }
  const size_t kk = std::min(k, hits.size());
  std::partial_sort(hits.begin(),
                    hits.begin() + static_cast<ptrdiff_t>(kk), hits.end(),
                    [](const QueryHit& a, const QueryHit& b) {
                      return a.distance < b.distance;
                    });
  hits.resize(kk);
  return hits;
}

// Replica of the seed FeatureIndex: per-partition reference + member
// indices + radius, records scattered as AoS rows, scalar scan.
struct SeedIndex {
  struct Part {
    std::vector<double> reference;
    std::vector<size_t> record_indices;
    double radius = 0.0;
  };
  std::vector<Part> parts;
};

SeedIndex BuildSeedIndex(const MotionDatabase& db,
                         const std::vector<std::vector<double>>& records) {
  const size_t n = db.size();
  const size_t d = db.feature_dimension();
  const size_t p = std::max<size_t>(
      1, static_cast<size_t>(std::lround(std::sqrt(
             static_cast<double>(n)))));
  Matrix points(n, d);
  for (size_t i = 0; i < n; ++i) points.SetRow(i, records[i]);
  KmeansOptions km;
  km.num_clusters = p;
  auto model = FitKmeans(points, km);
  MOCEMG_CHECK_OK(model.status());
  SeedIndex index;
  index.parts.resize(p);
  for (size_t i = 0; i < p; ++i) {
    index.parts[i].reference = model->centers.Row(i);
  }
  for (size_t k = 0; k < n; ++k) {
    SeedIndex::Part& part = index.parts[model->assignments[k]];
    part.record_indices.push_back(k);
    part.radius = std::max(
        part.radius, std::sqrt(ScalarSquaredDistance(
                         records[k].data(), part.reference.data(), d)));
  }
  index.parts.erase(
      std::remove_if(index.parts.begin(), index.parts.end(),
                     [](const SeedIndex::Part& part) {
                       return part.record_indices.empty();
                     }),
      index.parts.end());
  return index;
}

// Replica of the seed FeatureIndex::NearestNeighbors query loop:
// sqrt-bearing prune, per-record scalar squared distance through the
// AoS indirection.
std::vector<QueryHit> SeedIndexedScan(
    const SeedIndex& index,
    const std::vector<std::vector<double>>& records,
    const std::vector<double>& query, size_t k) {
  const size_t dim = query.size();
  std::vector<std::pair<double, size_t>> order(index.parts.size());
  for (size_t i = 0; i < index.parts.size(); ++i) {
    order[i] = {std::sqrt(ScalarSquaredDistance(
                    query.data(), index.parts[i].reference.data(), dim)),
                i};
  }
  std::sort(order.begin(), order.end());
  std::vector<QueryHit> best;
  best.reserve(k + 1);
  const double inf = std::numeric_limits<double>::infinity();
  auto kth_sq = [&]() { return best.size() < k ? inf : best.back().distance; };
  for (const auto& [ref_dist, pi] : order) {
    const SeedIndex::Part& part = index.parts[pi];
    const double kth = kth_sq();
    if (kth < inf && ref_dist - part.radius > std::sqrt(kth)) continue;
    for (size_t idx : part.record_indices) {
      const double sq = ScalarSquaredDistance(
          query.data(), records[idx].data(), dim);
      if (sq < kth_sq() || best.size() < k) {
        QueryHit hit{idx, sq};
        auto pos = std::upper_bound(
            best.begin(), best.end(), hit,
            [](const QueryHit& a, const QueryHit& b) {
              return a.distance < b.distance;
            });
        best.insert(pos, hit);
        if (best.size() > k) best.pop_back();
      }
    }
  }
  for (QueryHit& hit : best) hit.distance = std::sqrt(hit.distance);
  return best;
}

std::vector<std::vector<double>> AosRecords(const MotionDatabase& db) {
  std::vector<std::vector<double>> records(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    records[i] = db.record(i).feature;
  }
  return records;
}

// Args: {dim, mode}; mode 0 = seed AoS scalar scan, 1 = packed kernel
// scan (MotionDatabase::NearestNeighbors).
void BM_KnnScan(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool kernel = state.range(1) == 1;
  const size_t n = 4000;
  MotionDatabase db = MakeDb(n, dim, 3);
  const auto records = AosRecords(db);
  const auto query = MakeQuery(dim, 4);
  for (auto _ : state) {
    if (kernel) {
      auto hits = db.NearestNeighbors(query, 5);
      benchmark::DoNotOptimize(hits);
    } else {
      auto hits = SeedLinearScan(records, query, 5);
      benchmark::DoNotOptimize(hits);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_KnnScan)->ArgsProduct({{30, 64, 128, 240}, {0, 1}});

// Args: {dim, mode}; mode 0 = seed AoS indexed scan, 1 = SoA dot-form
// kernel scan (FeatureIndex::NearestNeighbors). Same partition
// geometry on both sides.
void BM_IndexedScan(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool kernel = state.range(1) == 1;
  const size_t n = 4000;
  MotionDatabase db = MakeDb(n, dim, 3);
  const auto records = AosRecords(db);
  const auto query = MakeQuery(dim, 4);
  auto index = FeatureIndex::Build(&db);
  MOCEMG_CHECK_OK(index.status());
  const SeedIndex seed_index = BuildSeedIndex(db, records);
  for (auto _ : state) {
    if (kernel) {
      auto hits = index->NearestNeighbors(query, 5);
      benchmark::DoNotOptimize(hits);
    } else {
      auto hits = SeedIndexedScan(seed_index, records, query, 5);
      benchmark::DoNotOptimize(hits);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_IndexedScan)->ArgsProduct({{30, 64, 128, 240}, {0, 1}});

// Seed Eq. 9 membership row: pow-based, on squared distances.
void SeedMembershipRow(const std::vector<double>& sq, double exponent,
                       double* row) {
  const size_t c = sq.size();
  size_t zeros = 0;
  for (size_t i = 0; i < c; ++i) {
    if (sq[i] <= 0.0) ++zeros;
  }
  if (zeros > 0) {
    for (size_t i = 0; i < c; ++i) {
      row[i] = sq[i] <= 0.0 ? 1.0 / static_cast<double>(zeros) : 0.0;
    }
    return;
  }
  double sum = 0.0;
  for (size_t i = 0; i < c; ++i) {
    row[i] = std::pow(1.0 / sq[i], exponent);
    sum += row[i];
  }
  for (size_t i = 0; i < c; ++i) row[i] /= sum;
}

// Replica of the seed EvaluateMembership: per-point validation, sq and
// row scratch allocated per call, and one *copied* center row per
// (point, center) pair — `centers.Row(i)` returned a fresh vector.
Result<std::vector<double>> SeedEvaluateMembership(
    const Matrix& centers, const std::vector<double>& point,
    double fuzziness) {
  if (centers.rows() == 0) {
    return Status::InvalidArgument("no cluster centers");
  }
  if (point.size() != centers.cols()) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (fuzziness <= 1.0) {
    return Status::InvalidArgument("fuzzifier m must be > 1");
  }
  for (double v : point) {
    if (!std::isfinite(v)) {
      return Status::NumericalError(
          "membership evaluation on a non-finite point");
    }
  }
  const size_t c = centers.rows();
  std::vector<double> sq(c);
  for (size_t i = 0; i < c; ++i) {
    const std::vector<double> center = centers.Row(i);
    sq[i] = ScalarSquaredDistance(point.data(), center.data(),
                                  point.size());
  }
  std::vector<double> row(c);
  SeedMembershipRow(sq, 1.0 / (fuzziness - 1.0), row.data());
  return row;
}

// Replica of the seed FcmCodebook::MembershipMatrix loop: one point
// copy per window (`points.Row(i)`), then the per-point path above.
Matrix SeedMembershipMatrix(const Matrix& centers, const Matrix& points,
                            double fuzziness) {
  Matrix out(points.rows(), centers.rows());
  for (size_t k = 0; k < points.rows(); ++k) {
    auto row = SeedEvaluateMembership(centers, points.Row(k), fuzziness);
    MOCEMG_CHECK_OK(row.status());
    out.SetRow(k, *row);
  }
  return out;
}

// Args: {dim, mode}; mode 0 = seed per-point scalar E-step, 1 = the
// tiled kernel batch (EvaluateMembershipBatch). c = 15 centers, m = 2
// (the paper's configuration).
void BM_FcmEstep(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool kernel = state.range(1) == 1;
  const size_t n = 512;
  const size_t c = 15;
  Rng rng(9);
  Matrix points(n, dim);
  for (size_t k = 0; k < n; ++k) {
    for (size_t j = 0; j < dim; ++j) {
      points(k, j) = rng.Gaussian(0.0, 1.0) +
                     static_cast<double>(k % c);
    }
  }
  Matrix centers(c, dim);
  for (size_t i = 0; i < c; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      centers(i, j) = rng.Gaussian(0.0, 0.5) + static_cast<double>(i);
    }
  }
  for (auto _ : state) {
    if (kernel) {
      auto u = EvaluateMembershipBatch(centers, points, 2.0);
      benchmark::DoNotOptimize(u);
    } else {
      Matrix u = SeedMembershipMatrix(centers, points, 2.0);
      benchmark::DoNotOptimize(u);
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * n * c));
}
BENCHMARK(BM_FcmEstep)->ArgsProduct({{16, 32, 64, 128}, {0, 1}});

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
