/// \file abl_util.h
/// \brief Shared driver for the ablation benches: evaluate a list of
/// named pipeline variants on both limbs and print a compact table.

#ifndef MOCEMG_BENCH_ABL_UTIL_H_
#define MOCEMG_BENCH_ABL_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace mocemg {
namespace bench {

struct Variant {
  std::string name;
  ClassifierOptions options;
};

/// Cross-validates each variant on each limb and prints
/// variant × (mis%, knn%) rows.
inline void RunAblation(const char* title,
                        const std::vector<Variant>& variants) {
  std::printf("# %s\n", title);
  std::printf(
      "# seed=%llu trials_per_class=%zu folds=%zu window=100ms c=15\n",
      static_cast<unsigned long long>(EnvSeed()), EnvTrials(),
      EnvFolds());
  std::printf("limb\tvariant\tmisclass_%%\tknn5_%%\n");
  for (Limb limb : {Limb::kRightHand, Limb::kRightLeg}) {
    std::vector<LabeledMotion> motions = MakeBenchDataset(limb);
    for (const Variant& v : variants) {
      auto result = CrossValidate(motions, NumClassesForLimb(limb),
                                  v.options, DefaultProtocol());
      MOCEMG_CHECK_OK(result.status());
      std::printf("%s\t%s\t%.1f\t%.1f\n", LimbName(limb),
                  v.name.c_str(), result->misclassification_percent,
                  result->knn_percent);
      std::fflush(stdout);
    }
  }
}

}  // namespace bench
}  // namespace mocemg

#endif  // MOCEMG_BENCH_ABL_UTIL_H_
