// Microbenchmarks: fuzzy c-means training and Eq. 9 membership
// evaluation at the problem sizes the figure sweeps hit (a few thousand
// 11-16-d window points, c up to 40).

#include <benchmark/benchmark.h>

#include "cluster/fcm.h"
#include "util/random.h"

namespace mocemg {
namespace {

Matrix RandomPoints(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) m(r, c) = rng.Gaussian(0.0, 1.0);
  }
  return m;
}

void BM_FcmFit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t c = static_cast<size_t>(state.range(1));
  Matrix points = RandomPoints(n, 16, n + c);
  FcmOptions opts;
  opts.num_clusters = c;
  opts.max_iterations = 25;  // fixed work per fit
  opts.epsilon = 0.0;
  for (auto _ : state) {
    auto model = FitFcm(points, opts);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * n * c * 25));
}
BENCHMARK(BM_FcmFit)
    ->Args({500, 6})
    ->Args({500, 40})
    ->Args({2000, 15})
    ->Args({2000, 40});

void BM_MembershipEval(benchmark::State& state) {
  const size_t c = static_cast<size_t>(state.range(0));
  Matrix centers = RandomPoints(c, 16, c);
  Rng rng(9);
  std::vector<double> point(16);
  for (double& v : point) v = rng.Gaussian(0.0, 1.0);
  for (auto _ : state) {
    auto u = EvaluateMembership(centers, point);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MembershipEval)->Arg(6)->Arg(15)->Arg(40);

}  // namespace
}  // namespace mocemg

BENCHMARK_MAIN();
