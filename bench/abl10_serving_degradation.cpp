// Ablation A10 — serving under overload (§12). Sweeps synthetic batch
// stalls on a fake clock and reports, per stall severity, how the
// robustness policy splits a fixed burst of requests between exact
// answers, degraded coarse-tier answers, and deadline sheds:
//   served     requests answered (exact + degraded)
//   expired    requests failed DeadlineExceeded by the expiry sweep
//   degraded   answers served from the int8 coarse tier
//   recall@k   degraded answers' overlap with the exact top-k
//   excess     max over degraded hits of |est − true| − bound (the
//              certified-bound check; must be <= 0)
// The run closes with a snapshot round-trip check and a determinism
// assertion: the heaviest configuration is re-run and re-threaded and
// must reproduce byte-identical outcomes.
//
// `--smoke` shrinks the dataset so CI can gate on the harness working
// (ctest -L bench-smoke) without paying full measurement cost.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "db/feature_index.h"
#include "db/index_snapshot.h"
#include "db/motion_database.h"
#include "db/query_server.h"
#include "db/serving_faults.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"

using namespace mocemg;

namespace {

constexpr size_t kK = 5;
constexpr uint64_t kDeadlineUs = 10000;

MotionDatabase MakeDb(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  MotionDatabase db;
  for (size_t i = 0; i < n; ++i) {
    MotionRecord r;
    r.name = "m" + std::to_string(i);
    r.label = i % 8;
    r.label_name = "class" + std::to_string(r.label);
    r.feature.resize(dim);
    const double cx = static_cast<double>(i % 8) * 12.0;
    for (size_t j = 0; j < dim; ++j) {
      r.feature[j] = (j == 0 ? cx : 0.0) + rng.Gaussian(0, 1.0);
    }
    MOCEMG_CHECK_OK(db.Insert(std::move(r)));
  }
  return db;
}

std::vector<std::vector<double>> MakeQueries(size_t n, size_t dim,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> queries(n);
  for (auto& q : queries) {
    q.resize(dim);
    for (double& v : q) v = rng.Gaussian(40.0, 30.0);
  }
  return queries;
}

double TrueDistance(const MotionDatabase& db, const std::vector<double>& q,
                    size_t record) {
  const std::vector<double>& f = db.record(record).feature;
  double acc = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    const double d = q[j] - f[j];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::string Bits(double v) {
  uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(u));
  return buf;
}

struct PressureResult {
  uint64_t served = 0;
  uint64_t expired = 0;
  uint64_t degraded = 0;
  uint64_t degraded_batches = 0;
  double recall = 1.0;  // over degraded answers; 1 when none
  // |est − true| − bound, max over degraded hits; certified to be <= 0.
  double max_excess = -HUGE_VAL;
  std::string signature;     // byte-exact outcome tape for determinism
};

PressureResult RunPressure(const MotionDatabase& db,
                           const FeatureIndex& index,
                           const std::vector<std::vector<double>>& queries,
                           uint64_t stall_us, size_t threads) {
  FakeClock fake;
  ServingFaultOptions fopts;
  fopts.seed = 7;
  fopts.slow_batch_probability = stall_us > 0 ? 1.0 : 0.0;
  fopts.slow_batch_stall_us = stall_us;
  ServingFaultInjector injector(fopts, &fake);

  QueryServerOptions opts;
  opts.clock = &fake;
  opts.faults = &injector;
  opts.max_batch = 8;
  opts.max_queue = queries.size();
  opts.degrade_watermark = queries.size() / 2;
  opts.default_deadline_us = kDeadlineUs;
  opts.cache_capacity = 0;
  opts.parallel.max_threads = threads;
  auto server = QueryServer::Create(&db, &index, opts);
  MOCEMG_CHECK_OK(server.status());

  std::vector<uint64_t> tickets(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto ticket = server->SubmitNearestNeighbors(queries[i], kK);
    MOCEMG_CHECK_OK(ticket.status());
    tickets[i] = *ticket;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    (void)server->DrainOnce();
  }

  PressureResult out;
  double recall_sum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto answer = server->TakeAnswer(tickets[i]);
    if (!answer.ok()) {
      MOCEMG_CHECK(answer.status().IsDeadlineExceeded());
      ++out.expired;
      out.signature += "E|";
      continue;
    }
    ++out.served;
    auto truth = db.NearestNeighbors(queries[i], kK);
    MOCEMG_CHECK_OK(truth.status());
    if (answer->degraded) {
      ++out.degraded;
      out.signature += "D:";
      std::set<size_t> exact_set;
      for (const auto& h : *truth) exact_set.insert(h.record_index);
      size_t overlap = 0;
      for (const auto& h : answer->hits) {
        overlap += exact_set.count(h.record_index);
        const double excess =
            std::abs(h.distance - TrueDistance(db, queries[i],
                                               h.record_index)) -
            answer->error_bound;
        if (excess > out.max_excess) out.max_excess = excess;
        out.signature += std::to_string(h.record_index) + "@" +
                         Bits(h.distance) + ",";
      }
      out.signature += "b" + Bits(answer->error_bound) + "|";
      recall_sum +=
          static_cast<double>(overlap) / static_cast<double>(kK);
    } else {
      // Exact answers must be bit-identical to the linear scan.
      MOCEMG_CHECK(answer->hits.size() == truth->size());
      out.signature += "X:";
      for (size_t h = 0; h < truth->size(); ++h) {
        MOCEMG_CHECK(answer->hits[h].record_index ==
                     (*truth)[h].record_index);
        MOCEMG_CHECK(answer->hits[h].distance == (*truth)[h].distance);
        out.signature += std::to_string(answer->hits[h].record_index) +
                         "@" + Bits(answer->hits[h].distance) + ",";
      }
      out.signature += "|";
    }
  }
  if (out.degraded > 0) {
    out.recall = recall_sum / static_cast<double>(out.degraded);
  }
  const QueryServerStats stats = server->stats();
  MOCEMG_CHECK(stats.expired == out.expired);
  MOCEMG_CHECK(stats.degraded == out.degraded);
  out.degraded_batches = stats.degraded_batches;
  return out;
}

void CheckSnapshotRoundTrip(const MotionDatabase& db,
                            const FeatureIndex& index,
                            const FeatureIndexOptions& iopts) {
  const std::string path = "/tmp/abl10_snapshot.bin";
  MOCEMG_CHECK_OK(SaveFeatureIndex(index, path));
  IndexSnapshotLoadInfo info;
  auto loaded = LoadOrRebuildFeatureIndex(path, &db, iopts, &info);
  MOCEMG_CHECK_OK(loaded.status());
  MOCEMG_CHECK(info.loaded_from_snapshot);
  auto a = SerializeFeatureIndex(index);
  auto b = SerializeFeatureIndex(*loaded);
  MOCEMG_CHECK_OK(a.status());
  MOCEMG_CHECK_OK(b.status());
  MOCEMG_CHECK(*a == *b);
  std::remove(path.c_str());
  std::printf("# snapshot round-trip: OK (%zu bytes, reload "
              "re-serializes bit-identically)\n",
              a->size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t records = smoke ? 256 : 2048;
  const size_t dim = smoke ? 8 : 16;
  const size_t burst = smoke ? 24 : 64;

  std::printf("# Ablation A10 — serving degradation under overload\n");
  std::printf("# records=%zu dim=%zu burst=%zu k=%zu max_batch=8 "
              "watermark=burst/2 deadline=%lluus%s\n",
              records, dim, burst, kK,
              static_cast<unsigned long long>(kDeadlineUs),
              smoke ? " (smoke)" : "");

  MotionDatabase db = MakeDb(records, dim, 17);
  FeatureIndexOptions iopts;
  iopts.quantized_min_rows = 1;  // arm the coarse tier at bench scale
  auto index = FeatureIndex::Build(&db, iopts);
  MOCEMG_CHECK_OK(index.status());
  MOCEMG_CHECK(index->has_quantized_tier());
  auto queries = MakeQueries(burst, dim, 18);

  CheckSnapshotRoundTrip(db, *index, iopts);

  std::printf("stall_us\tserved\texpired\tdegraded\tdeg_batches\t"
              "recall@%zu\tbound_excess\n", kK);
  for (uint64_t stall_us : {0ull, 1000ull, 2000ull, 4000ull, 8000ull}) {
    PressureResult r = RunPressure(db, *index, queries, stall_us, 1);
    MOCEMG_CHECK(r.max_excess <= 1e-9);
    std::printf("%llu\t%llu\t%llu\t%llu\t%llu\t%.3f\t%.3g\n",
                static_cast<unsigned long long>(stall_us),
                static_cast<unsigned long long>(r.served),
                static_cast<unsigned long long>(r.expired),
                static_cast<unsigned long long>(r.degraded),
                static_cast<unsigned long long>(r.degraded_batches),
                r.recall, r.max_excess);
    std::fflush(stdout);
  }

  // Determinism: the heaviest configuration must reproduce exactly —
  // same outcome kinds, same records, same distance bits, same bounds
  // — across a re-run and across worker-thread budgets.
  PressureResult base = RunPressure(db, *index, queries, 2000, 1);
  for (size_t threads : {1, 2, 8}) {
    PressureResult again = RunPressure(db, *index, queries, 2000, threads);
    MOCEMG_CHECK(again.signature == base.signature);
    MOCEMG_CHECK(again.served == base.served);
    MOCEMG_CHECK(again.expired == base.expired);
    MOCEMG_CHECK(again.degraded == base.degraded);
  }
  std::printf("# determinism: OK (stall=2000us byte-identical across "
              "re-run and threads 1/2/8)\n");
  return 0;
}
