/// \file bench_util.h
/// \brief Shared plumbing for the figure/ablation harnesses: dataset
/// generation with env-var size overrides, default pipeline options, and
/// table printing. Every harness prints its seed and parameters so any
/// row can be regenerated.
///
/// Env overrides:
///   MOCEMG_BENCH_TRIALS  trials per class   (default 10)
///   MOCEMG_BENCH_FOLDS   CV folds           (default 5)
///   MOCEMG_BENCH_SEED    dataset seed       (default 20070415)

#ifndef MOCEMG_BENCH_BENCH_UTIL_H_
#define MOCEMG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "eval/protocols.h"
#include "eval/sweep.h"
#include "synth/dataset.h"
#include "util/logging.h"

namespace mocemg {
namespace bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

inline uint64_t EnvSeed() {
  return EnvSize("MOCEMG_BENCH_SEED", 20070415ULL);
}

inline size_t EnvTrials() { return EnvSize("MOCEMG_BENCH_TRIALS", 10); }
inline size_t EnvFolds() { return EnvSize("MOCEMG_BENCH_FOLDS", 5); }

/// Generates the standard bench dataset for a limb.
inline std::vector<LabeledMotion> MakeBenchDataset(Limb limb) {
  DatasetOptions opts;
  opts.limb = limb;
  opts.trials_per_class = EnvTrials();
  opts.seed = EnvSeed();
  auto data = GenerateDataset(opts);
  MOCEMG_CHECK_OK(data.status());
  return ToLabeledMotions(std::move(*data));
}

/// The default pipeline configuration used across benches (window size
/// and cluster count are swept per bench).
inline ClassifierOptions DefaultPipeline() {
  ClassifierOptions opts;
  opts.features.window_ms = 100.0;
  opts.features.hop_ms = 50.0;  // sliding windows, 50 ms stride
  opts.fcm.num_clusters = 15;
  opts.fcm.seed = EnvSeed() ^ 0xC0FFEE;
  opts.fcm.max_iterations = 80;
  opts.fcm.epsilon = 1e-4;
  return opts;
}

inline ProtocolOptions DefaultProtocol() {
  ProtocolOptions protocol;
  protocol.num_folds = EnvFolds();
  protocol.knn_k = 5;
  protocol.seed = EnvSeed() ^ 0xBEEF;
  return protocol;
}

inline SweepOptions PaperSweep() {
  SweepOptions sweep;
  sweep.window_sizes_ms = {50.0, 100.0, 150.0, 200.0};
  sweep.cluster_counts = {2, 5, 10, 15, 20, 25, 30, 35, 40};
  sweep.protocol = DefaultProtocol();
  return sweep;
}

inline void PrintHeader(const char* figure, const char* metric,
                        Limb limb) {
  std::printf("# %s — %s, %s\n", figure, metric, LimbName(limb));
  std::printf(
      "# seed=%llu trials_per_class=%zu folds=%zu (override via "
      "MOCEMG_BENCH_SEED/_TRIALS/_FOLDS)\n",
      static_cast<unsigned long long>(EnvSeed()), EnvTrials(),
      EnvFolds());
}

/// Prints a paper-style series table: one row per cluster count, one
/// column per window size.
inline void PrintSweepTable(const std::vector<SweepPoint>& points,
                            bool misclassification) {
  std::vector<double> windows;
  std::vector<size_t> clusters;
  for (const auto& p : points) {
    if (windows.empty() || windows.back() != p.window_ms) {
      bool seen = false;
      for (double w : windows) seen |= (w == p.window_ms);
      if (!seen) windows.push_back(p.window_ms);
    }
    bool seen = false;
    for (size_t c : clusters) seen |= (c == p.clusters);
    if (!seen) clusters.push_back(p.clusters);
  }
  std::printf("clusters");
  for (double w : windows) std::printf("\tw=%.0fms", w);
  std::printf("\n");
  for (size_t c : clusters) {
    std::printf("%zu", c);
    for (double w : windows) {
      for (const auto& p : points) {
        if (p.clusters == c && p.window_ms == w) {
          std::printf("\t%.1f", misclassification
                                    ? p.misclassification_percent
                                    : p.knn_percent);
        }
      }
    }
    std::printf("\n");
  }
}

/// Runs the full Fig. 6-9 style sweep for one limb and prints it.
inline void RunFigureSweep(const char* figure, Limb limb,
                           bool misclassification) {
  PrintHeader(figure,
              misclassification ? "mis-classification rate (%)"
                                : "kNN(5) classified percent (%)",
              limb);
  std::vector<LabeledMotion> motions = MakeBenchDataset(limb);
  auto points = RunParameterSweep(
      motions, NumClassesForLimb(limb), DefaultPipeline(), PaperSweep(),
      [](size_t done, size_t total, const SweepPoint& p) {
        std::fprintf(stderr,
                     "  [%zu/%zu] w=%.0fms c=%zu mis=%.1f%% knn=%.1f%%\n",
                     done, total, p.window_ms, p.clusters,
                     p.misclassification_percent, p.knn_percent);
      });
  MOCEMG_CHECK_OK(points.status());
  PrintSweepTable(*points, misclassification);
}

}  // namespace bench
}  // namespace mocemg

#endif  // MOCEMG_BENCH_BENCH_UTIL_H_
