// Ablation A5 — the paper's IAV (Eq. 1) against the classic EMG features
// its related-work section surveys: MAV, RMS, waveform length, zero
// crossings, and AR(4) coefficients. Everything else held fixed.

#include "abl_util.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::vector<Variant> variants;
  for (EmgFeatureKind kind :
       {EmgFeatureKind::kIav, EmgFeatureKind::kMav, EmgFeatureKind::kRms,
        EmgFeatureKind::kWaveformLength, EmgFeatureKind::kZeroCrossings,
        EmgFeatureKind::kAr4}) {
    Variant v{EmgFeatureKindName(kind), DefaultPipeline()};
    v.options.features.emg_feature = kind;
    variants.push_back(v);
  }
  RunAblation("Ablation A5 — EMG feature family (IAV vs alternatives)",
              variants);
  return 0;
}
