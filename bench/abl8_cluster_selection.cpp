// Ablation A8 — unsupervised choice of the "pre-determined number of
// clusters". The paper sweeps c against labelled queries; this bench
// checks how close the label-free validity indices (Xie–Beni, partition
// coefficient/entropy) come to the supervised optimum: it prints each
// candidate's indices next to its cross-validated error, plus what each
// criterion would have picked.

#include <cstdio>

#include "bench_util.h"
#include "cluster/selection.h"
#include "core/codebook.h"
#include "core/normalizer.h"
#include "core/window_features.h"
#include "emg/acquisition.h"

using namespace mocemg;
using namespace mocemg::bench;

int main() {
  std::printf("# Ablation A8 — validity-index cluster-count selection\n");
  std::printf("# seed=%llu trials_per_class=%zu folds=%zu window=100ms\n",
              static_cast<unsigned long long>(EnvSeed()), EnvTrials(),
              EnvFolds());

  for (Limb limb : {Limb::kRightHand, Limb::kRightLeg}) {
    std::vector<LabeledMotion> motions = MakeBenchDataset(limb);

    // Pool + normalize the window points once (exactly what Train does).
    ClassifierOptions base = DefaultPipeline();
    Matrix pooled;
    for (const auto& m : motions) {
      AcquisitionOptions acq = base.acquisition;
      acq.output_rate_hz = m.mocap.frame_rate_hz();
      auto cond = ConditionRecording(m.emg, acq);
      MOCEMG_CHECK_OK(cond.status());
      auto f = ExtractWindowFeatures(m.mocap, *cond, base.features);
      MOCEMG_CHECK_OK(f.status());
      MOCEMG_CHECK_OK(pooled.AppendRows(f->points));
    }
    auto norm = Normalizer::Fit(pooled);
    MOCEMG_CHECK_OK(norm.status());
    auto npooled = norm->Transform(pooled);
    MOCEMG_CHECK_OK(npooled.status());

    SelectionOptions sel;
    sel.candidates = {5, 10, 15, 20, 25, 30};
    sel.fcm = base.fcm;
    auto selection = SelectClusterCount(*npooled, sel);
    MOCEMG_CHECK_OK(selection.status());

    std::printf("\nlimb\tclusters\txie_beni\tpart_coef\tpart_entropy\t"
                "misclass_%%\n");
    for (const auto& score : selection->scores) {
      ClassifierOptions opts = base;
      opts.fcm.num_clusters = score.clusters;
      auto cv = CrossValidate(motions, NumClassesForLimb(limb), opts,
                              DefaultProtocol());
      MOCEMG_CHECK_OK(cv.status());
      std::printf("%s\t%zu\t%.3f\t%.3f\t%.3f\t%.1f\n", LimbName(limb),
                  score.clusters, score.xie_beni,
                  score.partition_coefficient, score.partition_entropy,
                  cv->misclassification_percent);
      std::fflush(stdout);
    }
    std::printf("%s: xie_beni recommends c=%zu\n", LimbName(limb),
                selection->recommended_clusters);
  }
  return 0;
}
