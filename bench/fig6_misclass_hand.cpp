// Figure 6: percent of trials mis-classified for the right hand, versus
// the number of FCM clusters (2-40), one series per window size
// (50/100/150/200 ms). Expected shape (paper): error falls with more
// clusters, sitting around 10-20 % for c in [10, 25].

#include "bench_util.h"

int main() {
  mocemg::bench::RunFigureSweep("Figure 6", mocemg::Limb::kRightHand,
                                /*misclassification=*/true);
  return 0;
}
