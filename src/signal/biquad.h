/// \file biquad.h
/// \brief Second-order IIR sections and cascades (Direct Form II
/// transposed), the building block of the EMG acquisition filter chain.

#ifndef MOCEMG_SIGNAL_BIQUAD_H_
#define MOCEMG_SIGNAL_BIQUAD_H_

#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Normalized biquad coefficients: H(z) = (b0 + b1 z⁻¹ + b2 z⁻²) /
/// (1 + a1 z⁻¹ + a2 z⁻²).
struct BiquadCoefficients {
  double b0 = 1.0;
  double b1 = 0.0;
  double b2 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
};

/// \brief One stateful second-order section (Direct Form II transposed:
/// best numerical behaviour of the direct forms for double precision).
class Biquad {
 public:
  Biquad() = default;
  explicit Biquad(const BiquadCoefficients& coeffs) : coeffs_(coeffs) {}

  /// \brief Processes one sample.
  double Process(double x) {
    const double y = coeffs_.b0 * x + s1_;
    s1_ = coeffs_.b1 * x - coeffs_.a1 * y + s2_;
    s2_ = coeffs_.b2 * x - coeffs_.a2 * y;
    return y;
  }

  /// \brief Clears the delay line.
  void Reset() { s1_ = s2_ = 0.0; }

  const BiquadCoefficients& coefficients() const { return coeffs_; }

  /// \brief Magnitude response at normalized angular frequency
  /// w = 2π f / fs (test/verification utility).
  double MagnitudeAt(double w) const;

 private:
  BiquadCoefficients coeffs_;
  double s1_ = 0.0;
  double s2_ = 0.0;
};

/// \brief A chain of biquads applied in sequence.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<BiquadCoefficients> sections);

  /// \brief Processes one sample through all sections.
  double Process(double x) {
    for (auto& s : sections_) x = s.Process(x);
    return x;
  }

  /// \brief Filters a whole signal (stateful; call Reset() between
  /// independent signals).
  std::vector<double> ProcessSignal(const std::vector<double>& input);

  /// \brief Zero-phase filtering: forward pass, then reverse pass, with
  /// simple edge-replication padding to suppress startup transients.
  /// Doubles the effective order and cancels group delay — used where the
  /// EMG envelope must stay aligned with the mocap frames.
  std::vector<double> FiltFilt(const std::vector<double>& input) const;

  void Reset();
  size_t num_sections() const { return sections_.size(); }

  /// \brief Cascade magnitude response at w = 2π f / fs.
  double MagnitudeAt(double w) const;

 private:
  std::vector<Biquad> sections_;
};

}  // namespace mocemg

#endif  // MOCEMG_SIGNAL_BIQUAD_H_
