#include "signal/butterworth.h"

#include <cmath>
#include <vector>

#include "util/macros.h"

namespace mocemg {
namespace {

Status ValidateArgs(int order, double cutoff_hz, double sample_rate_hz) {
  if (order <= 0 || order % 2 != 0) {
    return Status::InvalidArgument(
        "Butterworth order must be positive and even, got " +
        std::to_string(order));
  }
  if (sample_rate_hz <= 0.0) {
    return Status::InvalidArgument("sample rate must be positive");
  }
  if (cutoff_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    return Status::InvalidArgument(
        "cutoff must lie in (0, fs/2): fc=" + std::to_string(cutoff_hz) +
        " fs=" + std::to_string(sample_rate_hz));
  }
  return Status::OK();
}

// Q values of the Butterworth pole pairs for an even-order filter:
// Q_k = 1 / (2 sin(θ_k)), θ_k = π (2k + 1) / (2N).
std::vector<double> ButterworthQs(int order) {
  std::vector<double> qs;
  for (int k = 0; k < order / 2; ++k) {
    const double theta = M_PI * (2.0 * k + 1.0) / (2.0 * order);
    qs.push_back(1.0 / (2.0 * std::sin(theta)));
  }
  return qs;
}

// RBJ audio-EQ-cookbook biquads via bilinear transform.
BiquadCoefficients RbjLowPass(double fc, double fs, double q) {
  const double w0 = 2.0 * M_PI * fc / fs;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoefficients c;
  c.b0 = (1.0 - cw) / 2.0 / a0;
  c.b1 = (1.0 - cw) / a0;
  c.b2 = (1.0 - cw) / 2.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoefficients RbjHighPass(double fc, double fs, double q) {
  const double w0 = 2.0 * M_PI * fc / fs;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoefficients c;
  c.b0 = (1.0 + cw) / 2.0 / a0;
  c.b1 = -(1.0 + cw) / a0;
  c.b2 = (1.0 + cw) / 2.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

}  // namespace

Result<BiquadCascade> DesignButterworthLowPass(int order, double cutoff_hz,
                                               double sample_rate_hz) {
  MOCEMG_RETURN_NOT_OK(ValidateArgs(order, cutoff_hz, sample_rate_hz));
  std::vector<BiquadCoefficients> sections;
  for (double q : ButterworthQs(order)) {
    sections.push_back(RbjLowPass(cutoff_hz, sample_rate_hz, q));
  }
  return BiquadCascade(std::move(sections));
}

Result<BiquadCascade> DesignButterworthHighPass(int order, double cutoff_hz,
                                                double sample_rate_hz) {
  MOCEMG_RETURN_NOT_OK(ValidateArgs(order, cutoff_hz, sample_rate_hz));
  std::vector<BiquadCoefficients> sections;
  for (double q : ButterworthQs(order)) {
    sections.push_back(RbjHighPass(cutoff_hz, sample_rate_hz, q));
  }
  return BiquadCascade(std::move(sections));
}

Result<BiquadCascade> DesignNotch(double center_hz, double q,
                                  double sample_rate_hz) {
  if (sample_rate_hz <= 0.0) {
    return Status::InvalidArgument("sample rate must be positive");
  }
  if (center_hz <= 0.0 || center_hz >= sample_rate_hz / 2.0) {
    return Status::InvalidArgument("notch center must lie in (0, fs/2)");
  }
  if (q <= 0.0) {
    return Status::InvalidArgument("notch Q must be positive");
  }
  const double w0 = 2.0 * M_PI * center_hz / sample_rate_hz;
  const double cw = std::cos(w0);
  const double alpha = std::sin(w0) / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoefficients c;
  c.b0 = 1.0 / a0;
  c.b1 = -2.0 * cw / a0;
  c.b2 = 1.0 / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return BiquadCascade({c});
}

Result<BiquadCascade> DesignBandPass(int order_per_edge, double low_hz,
                                     double high_hz,
                                     double sample_rate_hz) {
  if (low_hz >= high_hz) {
    return Status::InvalidArgument(
        "band-pass requires low < high, got [" + std::to_string(low_hz) +
        ", " + std::to_string(high_hz) + "]");
  }
  MOCEMG_RETURN_NOT_OK(ValidateArgs(order_per_edge, low_hz, sample_rate_hz));
  MOCEMG_RETURN_NOT_OK(
      ValidateArgs(order_per_edge, high_hz, sample_rate_hz));
  std::vector<BiquadCoefficients> sections;
  for (double q : ButterworthQs(order_per_edge)) {
    sections.push_back(RbjHighPass(low_hz, sample_rate_hz, q));
  }
  for (double q : ButterworthQs(order_per_edge)) {
    sections.push_back(RbjLowPass(high_hz, sample_rate_hz, q));
  }
  return BiquadCascade(std::move(sections));
}

}  // namespace mocemg
