/// \file window.h
/// \brief Sliding-window segmentation shared by the EMG and mocap feature
/// extractors. The paper divides each motion into windows of 50–200 ms;
/// both streams run at 120 Hz after acquisition, so a window is a span of
/// frames. WindowPlan guarantees the two extractors cut *identical* spans,
/// which is the whole point of the synchronized acquisition.

#ifndef MOCEMG_SIGNAL_WINDOW_H_
#define MOCEMG_SIGNAL_WINDOW_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief One half-open span of frames [begin, end).
struct WindowSpan {
  size_t begin = 0;
  size_t end = 0;
  size_t length() const { return end - begin; }
};

/// \brief Deterministic segmentation of `num_frames` frames into windows
/// of `window_frames` advancing by `hop_frames`.
struct WindowPlan {
  std::vector<WindowSpan> spans;
  size_t window_frames = 0;
  size_t hop_frames = 0;

  size_t num_windows() const { return spans.size(); }
};

/// \brief Builds the segmentation. `hop_frames == 0` means non-overlapping
/// (hop = window), matching the paper's "motion of length L is divided
/// into L/w windows". A trailing partial window shorter than
/// `min_last_fraction`·window is dropped; otherwise it is emitted
/// right-aligned at the signal end with full window length.
/// Fails if window_frames == 0 or exceeds num_frames.
Result<WindowPlan> MakeWindowPlan(size_t num_frames, size_t window_frames,
                                  size_t hop_frames = 0,
                                  double min_last_fraction = 0.5);

/// \brief Converts a window duration in milliseconds to frames at the
/// given rate, rounding to nearest and clamping to >= 1.
size_t WindowMsToFrames(double window_ms, double frame_rate_hz);

}  // namespace mocemg

#endif  // MOCEMG_SIGNAL_WINDOW_H_
