/// \file resample.h
/// \brief Sample-rate conversion: the Myomonitor's 1000 Hz EMG stream must
/// be brought down to the Vicon frame rate (120 Hz) before the two streams
/// can share windows. 1000/120 is not an integer ratio, so the library
/// provides an anti-aliased arbitrary-ratio resampler in addition to an
/// integer decimator.

#ifndef MOCEMG_SIGNAL_RESAMPLE_H_
#define MOCEMG_SIGNAL_RESAMPLE_H_

#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Integer decimation by `factor` after an 8th-order Butterworth
/// anti-alias low-pass at 0.4·(fs/factor). Fails on factor < 1.
Result<std::vector<double>> Decimate(const std::vector<double>& signal,
                                     double sample_rate_hz, int factor);

/// \brief Arbitrary-ratio resampling: zero-phase anti-alias low-pass at
/// 0.45·min(fs_in, fs_out) followed by linear interpolation at the output
/// instants k/fs_out. Output length is floor(duration · fs_out) + 1.
Result<std::vector<double>> Resample(const std::vector<double>& signal,
                                     double fs_in, double fs_out);

/// \brief Length Resample() will produce for an input of `input_len`
/// samples — used to pre-align multi-channel buffers.
size_t ResampledLength(size_t input_len, double fs_in, double fs_out);

}  // namespace mocemg

#endif  // MOCEMG_SIGNAL_RESAMPLE_H_
