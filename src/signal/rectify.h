/// \file rectify.h
/// \brief Rectification and envelope utilities for EMG conditioning.

#ifndef MOCEMG_SIGNAL_RECTIFY_H_
#define MOCEMG_SIGNAL_RECTIFY_H_

#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Full-wave rectification: |x| per sample (the paper's processed
/// Myomonitor signal is full-wave rectified before down-sampling).
std::vector<double> FullWaveRectify(const std::vector<double>& signal);

/// \brief Half-wave rectification: max(x, 0).
std::vector<double> HalfWaveRectify(const std::vector<double>& signal);

/// \brief Centered moving-average smoothing with edge shrinking; a cheap
/// linear envelope estimator used in tests and examples.
Result<std::vector<double>> MovingAverage(const std::vector<double>& signal,
                                          size_t window);

/// \brief Removes the mean of the signal (DC offset).
std::vector<double> RemoveMean(const std::vector<double>& signal);

}  // namespace mocemg

#endif  // MOCEMG_SIGNAL_RECTIFY_H_
