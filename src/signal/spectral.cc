#include "signal/spectral.h"

#include <cmath>

#include "util/macros.h"

namespace mocemg {

Result<double> GoertzelPower(const std::vector<double>& signal,
                             double freq_hz, double sample_rate_hz) {
  if (signal.empty()) return Status::InvalidArgument("empty signal");
  if (freq_hz < 0.0 || freq_hz > sample_rate_hz / 2.0) {
    return Status::InvalidArgument("frequency outside [0, fs/2]");
  }
  const double w = 2.0 * M_PI * freq_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(w);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (double x : signal) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double power = s_prev * s_prev + s_prev2 * s_prev2 -
                       coeff * s_prev * s_prev2;
  return power / static_cast<double>(signal.size());
}

Status Fft(std::vector<std::complex<double>>* data) {
  if (data == nullptr) return Status::InvalidArgument("null data");
  const size_t n = data->size();
  if (n == 0 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument("FFT size must be a power of two");
  }
  auto& a = *data;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  return Status::OK();
}

Result<std::vector<std::pair<double, double>>> Periodogram(
    const std::vector<double>& signal, double sample_rate_hz) {
  if (signal.empty()) return Status::InvalidArgument("empty signal");
  size_t n = 1;
  while (n < signal.size()) n <<= 1;
  std::vector<std::complex<double>> buf(n, {0.0, 0.0});
  for (size_t i = 0; i < signal.size(); ++i) buf[i] = signal[i];
  MOCEMG_RETURN_NOT_OK(Fft(&buf));
  std::vector<std::pair<double, double>> out;
  out.reserve(n / 2 + 1);
  const double scale =
      1.0 / (static_cast<double>(signal.size()) * sample_rate_hz);
  for (size_t k = 0; k <= n / 2; ++k) {
    const double freq =
        static_cast<double>(k) * sample_rate_hz / static_cast<double>(n);
    double p = std::norm(buf[k]) * scale;
    if (k != 0 && k != n / 2) p *= 2.0;  // fold negative frequencies
    out.emplace_back(freq, p);
  }
  return out;
}

Result<double> MedianFrequency(const std::vector<double>& signal,
                               double sample_rate_hz) {
  MOCEMG_ASSIGN_OR_RETURN(auto psd, Periodogram(signal, sample_rate_hz));
  double total = 0.0;
  for (const auto& [f, p] : psd) total += p;
  if (total <= 0.0) return Status::NumericalError("zero spectral power");
  double acc = 0.0;
  for (const auto& [f, p] : psd) {
    acc += p;
    if (acc >= total / 2.0) return f;
  }
  return psd.back().first;
}

Result<double> MeanFrequency(const std::vector<double>& signal,
                             double sample_rate_hz) {
  MOCEMG_ASSIGN_OR_RETURN(auto psd, Periodogram(signal, sample_rate_hz));
  double total = 0.0;
  double weighted = 0.0;
  for (const auto& [f, p] : psd) {
    total += p;
    weighted += f * p;
  }
  if (total <= 0.0) return Status::NumericalError("zero spectral power");
  return weighted / total;
}

}  // namespace mocemg
