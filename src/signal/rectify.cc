#include "signal/rectify.h"

#include <algorithm>
#include <cmath>

namespace mocemg {

std::vector<double> FullWaveRectify(const std::vector<double>& signal) {
  std::vector<double> out(signal.size());
  for (size_t i = 0; i < signal.size(); ++i) out[i] = std::fabs(signal[i]);
  return out;
}

std::vector<double> HalfWaveRectify(const std::vector<double>& signal) {
  std::vector<double> out(signal.size());
  for (size_t i = 0; i < signal.size(); ++i) {
    out[i] = std::max(signal[i], 0.0);
  }
  return out;
}

Result<std::vector<double>> MovingAverage(const std::vector<double>& signal,
                                          size_t window) {
  if (window == 0) {
    return Status::InvalidArgument("MovingAverage window must be > 0");
  }
  std::vector<double> out(signal.size());
  const ptrdiff_t half = static_cast<ptrdiff_t>(window) / 2;
  const ptrdiff_t n = static_cast<ptrdiff_t>(signal.size());
  // Prefix sums for O(n) evaluation.
  std::vector<double> prefix(signal.size() + 1, 0.0);
  for (size_t i = 0; i < signal.size(); ++i) {
    prefix[i + 1] = prefix[i] + signal[i];
  }
  for (ptrdiff_t i = 0; i < n; ++i) {
    const ptrdiff_t lo = std::max<ptrdiff_t>(0, i - half);
    const ptrdiff_t hi = std::min<ptrdiff_t>(n - 1, i + half);
    out[static_cast<size_t>(i)] =
        (prefix[static_cast<size_t>(hi + 1)] -
         prefix[static_cast<size_t>(lo)]) /
        static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> RemoveMean(const std::vector<double>& signal) {
  if (signal.empty()) return {};
  double mean = 0.0;
  for (double x : signal) mean += x;
  mean /= static_cast<double>(signal.size());
  std::vector<double> out(signal.size());
  for (size_t i = 0; i < signal.size(); ++i) out[i] = signal[i] - mean;
  return out;
}

}  // namespace mocemg
