#include "signal/window.h"

#include <algorithm>
#include <cmath>

namespace mocemg {

Result<WindowPlan> MakeWindowPlan(size_t num_frames, size_t window_frames,
                                  size_t hop_frames,
                                  double min_last_fraction) {
  if (window_frames == 0) {
    return Status::InvalidArgument("window_frames must be > 0");
  }
  if (num_frames < window_frames) {
    return Status::InvalidArgument(
        "signal of " + std::to_string(num_frames) +
        " frames is shorter than window of " +
        std::to_string(window_frames));
  }
  if (hop_frames == 0) hop_frames = window_frames;

  WindowPlan plan;
  plan.window_frames = window_frames;
  plan.hop_frames = hop_frames;
  size_t begin = 0;
  while (begin + window_frames <= num_frames) {
    plan.spans.push_back({begin, begin + window_frames});
    begin += hop_frames;
  }
  // Tail handling: if a meaningful chunk remains beyond the last full
  // window, emit one extra right-aligned window covering the signal end.
  const size_t covered = plan.spans.empty() ? 0 : plan.spans.back().end;
  const size_t remainder = num_frames - covered;
  if (remainder >= static_cast<size_t>(std::ceil(
                       min_last_fraction *
                       static_cast<double>(window_frames))) &&
      remainder > 0) {
    plan.spans.push_back({num_frames - window_frames, num_frames});
  }
  return plan;
}

size_t WindowMsToFrames(double window_ms, double frame_rate_hz) {
  const double frames = window_ms * frame_rate_hz / 1000.0;
  return std::max<size_t>(1, static_cast<size_t>(std::lround(frames)));
}

}  // namespace mocemg
