#include "signal/resample.h"

#include <cmath>

#include "signal/butterworth.h"
#include "util/macros.h"

namespace mocemg {

Result<std::vector<double>> Decimate(const std::vector<double>& signal,
                                     double sample_rate_hz, int factor) {
  if (factor < 1) {
    return Status::InvalidArgument("decimation factor must be >= 1");
  }
  if (factor == 1) return signal;
  const double target_nyquist = sample_rate_hz / factor / 2.0;
  MOCEMG_ASSIGN_OR_RETURN(
      BiquadCascade lp,
      DesignButterworthLowPass(8, 0.8 * target_nyquist, sample_rate_hz));
  std::vector<double> filtered = lp.FiltFilt(signal);
  std::vector<double> out;
  out.reserve(filtered.size() / static_cast<size_t>(factor) + 1);
  for (size_t i = 0; i < filtered.size(); i += static_cast<size_t>(factor)) {
    out.push_back(filtered[i]);
  }
  return out;
}

size_t ResampledLength(size_t input_len, double fs_in, double fs_out) {
  if (input_len == 0) return 0;
  const double duration =
      static_cast<double>(input_len - 1) / fs_in;  // seconds
  return static_cast<size_t>(std::floor(duration * fs_out)) + 1;
}

Result<std::vector<double>> Resample(const std::vector<double>& signal,
                                     double fs_in, double fs_out) {
  if (fs_in <= 0.0 || fs_out <= 0.0) {
    return Status::InvalidArgument("sample rates must be positive");
  }
  if (signal.empty()) return std::vector<double>{};
  if (fs_in == fs_out) return signal;

  std::vector<double> conditioned = signal;
  if (fs_out < fs_in) {
    // Anti-alias before downsampling.
    MOCEMG_ASSIGN_OR_RETURN(
        BiquadCascade lp,
        DesignButterworthLowPass(8, 0.45 * fs_out, fs_in));
    conditioned = lp.FiltFilt(signal);
  }

  const size_t out_len = ResampledLength(signal.size(), fs_in, fs_out);
  std::vector<double> out(out_len);
  for (size_t k = 0; k < out_len; ++k) {
    const double t = static_cast<double>(k) / fs_out;  // seconds
    const double src = t * fs_in;                      // fractional index
    const size_t i0 = static_cast<size_t>(std::floor(src));
    if (i0 + 1 >= conditioned.size()) {
      out[k] = conditioned.back();
      continue;
    }
    const double frac = src - static_cast<double>(i0);
    out[k] = (1.0 - frac) * conditioned[i0] + frac * conditioned[i0 + 1];
  }
  return out;
}

}  // namespace mocemg
