/// \file spectral.h
/// \brief Frequency-domain helpers: Goertzel single-bin power, a radix-2
/// FFT, power spectral density, and spectral moments. Used to verify
/// filter responses in tests and to characterize the synthetic EMG
/// (median frequency of surface EMG sits near 70–120 Hz; the generator's
/// carrier is validated against this).

#ifndef MOCEMG_SIGNAL_SPECTRAL_H_
#define MOCEMG_SIGNAL_SPECTRAL_H_

#include <complex>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Goertzel algorithm: power of the signal at `freq_hz`.
Result<double> GoertzelPower(const std::vector<double>& signal,
                             double freq_hz, double sample_rate_hz);

/// \brief In-place radix-2 Cooley–Tukey FFT; size must be a power of two.
Status Fft(std::vector<std::complex<double>>* data);

/// \brief One-sided periodogram (power per bin) of a real signal,
/// zero-padded to the next power of two. Returns pairs (freq_hz, power).
Result<std::vector<std::pair<double, double>>> Periodogram(
    const std::vector<double>& signal, double sample_rate_hz);

/// \brief Median frequency of the one-sided power spectrum.
Result<double> MedianFrequency(const std::vector<double>& signal,
                               double sample_rate_hz);

/// \brief Mean (centroid) frequency of the one-sided power spectrum.
Result<double> MeanFrequency(const std::vector<double>& signal,
                             double sample_rate_hz);

}  // namespace mocemg

#endif  // MOCEMG_SIGNAL_SPECTRAL_H_
