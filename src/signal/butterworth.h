/// \file butterworth.h
/// \brief Butterworth IIR filter design (RBJ bilinear biquads with
/// Butterworth pole-pair Q values).
///
/// The Delsys Myomonitor the paper used applies an analog 20–450 Hz
/// band-pass before sampling; `DesignBandPass` reproduces that response
/// digitally as a high-pass/low-pass cascade so the synthetic acquisition
/// chain matches the published signal conditioning.

#ifndef MOCEMG_SIGNAL_BUTTERWORTH_H_
#define MOCEMG_SIGNAL_BUTTERWORTH_H_

#include "signal/biquad.h"
#include "util/result.h"

namespace mocemg {

/// \brief Butterworth low-pass of even order `order` with cutoff
/// `cutoff_hz` at sample rate `sample_rate_hz`. Fails on odd/nonpositive
/// order or a cutoff outside (0, fs/2).
Result<BiquadCascade> DesignButterworthLowPass(int order, double cutoff_hz,
                                               double sample_rate_hz);

/// \brief Butterworth high-pass; same constraints as the low-pass.
Result<BiquadCascade> DesignButterworthHighPass(int order, double cutoff_hz,
                                                double sample_rate_hz);

/// \brief Band-pass as high-pass(low_hz) · low-pass(high_hz), each of
/// `order_per_edge` (even). This "pole placement by cascade" construction
/// is the standard practical band-pass for widely separated edges such as
/// EMG's 20–450 Hz.
Result<BiquadCascade> DesignBandPass(int order_per_edge, double low_hz,
                                     double high_hz, double sample_rate_hz);

/// \brief Second-order notch at `center_hz` with quality factor `q`
/// (RBJ). The standard defense against 50/60 Hz power-line interference
/// coupling into surface-EMG leads; optional in the acquisition chain
/// (the paper's Delsys hardware handled it upstream).
Result<BiquadCascade> DesignNotch(double center_hz, double q,
                                  double sample_rate_hz);

}  // namespace mocemg

#endif  // MOCEMG_SIGNAL_BUTTERWORTH_H_
