#include "signal/biquad.h"

#include <algorithm>
#include <cmath>
#include <complex>

namespace mocemg {

double Biquad::MagnitudeAt(double w) const {
  const std::complex<double> z = std::polar(1.0, -w);
  const std::complex<double> z2 = z * z;
  const std::complex<double> num =
      coeffs_.b0 + coeffs_.b1 * z + coeffs_.b2 * z2;
  const std::complex<double> den = 1.0 + coeffs_.a1 * z + coeffs_.a2 * z2;
  return std::abs(num / den);
}

BiquadCascade::BiquadCascade(std::vector<BiquadCoefficients> sections) {
  sections_.reserve(sections.size());
  for (const auto& c : sections) sections_.emplace_back(c);
}

std::vector<double> BiquadCascade::ProcessSignal(
    const std::vector<double>& input) {
  std::vector<double> out(input.size());
  for (size_t i = 0; i < input.size(); ++i) out[i] = Process(input[i]);
  return out;
}

std::vector<double> BiquadCascade::FiltFilt(
    const std::vector<double>& input) const {
  if (input.empty()) return {};
  // Pad with reflected edges (3 time-constants' worth, capped by length)
  // so the filter state is warmed up before the true samples arrive.
  const size_t pad = std::min<size_t>(input.size() - 1, 256);
  std::vector<double> padded;
  padded.reserve(input.size() + 2 * pad);
  for (size_t i = pad; i > 0; --i) {
    padded.push_back(2.0 * input.front() - input[i]);
  }
  padded.insert(padded.end(), input.begin(), input.end());
  for (size_t i = 1; i <= pad; ++i) {
    padded.push_back(2.0 * input.back() - input[input.size() - 1 - i]);
  }

  BiquadCascade forward = *this;
  forward.Reset();
  std::vector<double> once = forward.ProcessSignal(padded);
  std::reverse(once.begin(), once.end());
  BiquadCascade backward = *this;
  backward.Reset();
  std::vector<double> twice = backward.ProcessSignal(once);
  std::reverse(twice.begin(), twice.end());

  return std::vector<double>(twice.begin() + static_cast<ptrdiff_t>(pad),
                             twice.begin() + static_cast<ptrdiff_t>(
                                                 pad + input.size()));
}

void BiquadCascade::Reset() {
  for (auto& s : sections_) s.Reset();
}

double BiquadCascade::MagnitudeAt(double w) const {
  double mag = 1.0;
  for (const auto& s : sections_) mag *= s.MagnitudeAt(w);
  return mag;
}

}  // namespace mocemg
