/// \file trc_io.h
/// \brief Hand-rolled reader/writer for the TRC marker-trajectory format
/// (the tab-delimited text export of Vicon-class capture systems). The
/// paper's lab captured with Vicon iQ; TRC is the lingua franca such labs
/// exchange, so the library speaks it natively.
///
/// Layout handled:
///   line 1: PathFileType <n> (X/Y/Z) <name>
///   line 2: DataRate CameraRate NumFrames NumMarkers Units ...
///   line 3: the values for line 2's fields
///   line 4: Frame# Time <Marker1> .. (marker names, tab-separated,
///           markers followed by two blank columns each)
///   line 5: X1 Y1 Z1 X2 ... (sub-header, ignored)
///   data:   frame_no time x y z x y z ...
/// Units of mm or m are accepted (m is converted to mm on read).

#ifndef MOCEMG_MOCAP_TRC_IO_H_
#define MOCEMG_MOCAP_TRC_IO_H_

#include <string>

#include "mocap/motion_sequence.h"
#include "util/result.h"

namespace mocemg {

/// \brief Parses TRC text into a MotionSequence. Marker names must map to
/// known segments (see SegmentFromName); the pelvis marker must be
/// present.
Result<MotionSequence> ParseTrc(const std::string& text);

/// \brief Reads and parses a .trc file.
Result<MotionSequence> ReadTrcFile(const std::string& path);

/// \brief Serializes a motion to TRC text (units mm).
std::string WriteTrc(const MotionSequence& motion,
                     const std::string& file_label = "mocemg");

/// \brief Writes a motion to a .trc file.
Status WriteTrcFile(const MotionSequence& motion, const std::string& path,
                    const std::string& file_label = "mocemg");

}  // namespace mocemg

#endif  // MOCEMG_MOCAP_TRC_IO_H_
