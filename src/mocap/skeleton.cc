#include "mocap/skeleton.h"

#include <algorithm>

#include "util/string_util.h"

namespace mocemg {

const char* SegmentName(Segment segment) {
  switch (segment) {
    case Segment::kPelvis:
      return "pelvis";
    case Segment::kClavicle:
      return "clavicle";
    case Segment::kHumerus:
      return "humerus";
    case Segment::kRadius:
      return "radius";
    case Segment::kHand:
      return "hand";
    case Segment::kFemur:
      return "femur";
    case Segment::kTibia:
      return "tibia";
    case Segment::kFoot:
      return "foot";
    case Segment::kToe:
      return "toe";
    case Segment::kNumSegments:
      break;
  }
  return "?";
}

Result<Segment> SegmentFromName(const std::string& name) {
  for (int i = 0; i < static_cast<int>(Segment::kNumSegments); ++i) {
    const Segment s = static_cast<Segment>(i);
    if (EqualsIgnoreCase(name, SegmentName(s))) return s;
  }
  return Status::NotFound("unknown segment '" + name + "'");
}

Segment SegmentParent(Segment segment) {
  switch (segment) {
    case Segment::kPelvis:
      return Segment::kPelvis;
    case Segment::kClavicle:
      return Segment::kPelvis;
    case Segment::kHumerus:
      return Segment::kClavicle;
    case Segment::kRadius:
      return Segment::kHumerus;
    case Segment::kHand:
      return Segment::kRadius;
    case Segment::kFemur:
      return Segment::kPelvis;
    case Segment::kTibia:
      return Segment::kFemur;
    case Segment::kFoot:
      return Segment::kTibia;
    case Segment::kToe:
      return Segment::kFoot;
    case Segment::kNumSegments:
      break;
  }
  return Segment::kPelvis;
}

const char* LimbName(Limb limb) {
  switch (limb) {
    case Limb::kRightHand:
      return "right_hand";
    case Limb::kRightLeg:
      return "right_leg";
  }
  return "?";
}

const std::vector<Segment>& LimbSegments(Limb limb) {
  static const std::vector<Segment> kHandSegments = {
      Segment::kClavicle, Segment::kHumerus, Segment::kRadius,
      Segment::kHand};
  static const std::vector<Segment> kLegSegments = {
      Segment::kTibia, Segment::kFoot, Segment::kToe};
  return limb == Limb::kRightHand ? kHandSegments : kLegSegments;
}

MarkerSet::MarkerSet(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  if (std::find(segments_.begin(), segments_.end(), Segment::kPelvis) ==
      segments_.end()) {
    segments_.insert(segments_.begin(), Segment::kPelvis);
  }
}

MarkerSet MarkerSet::ForLimb(Limb limb) {
  return MarkerSet(LimbSegments(limb));
}

Result<size_t> MarkerSet::IndexOf(Segment segment) const {
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i] == segment) return i;
  }
  return Status::NotFound(std::string("segment '") + SegmentName(segment) +
                          "' not in marker set");
}

std::vector<std::string> MarkerSet::MarkerNames() const {
  std::vector<std::string> names;
  names.reserve(segments_.size());
  for (Segment s : segments_) names.emplace_back(SegmentName(s));
  return names;
}

}  // namespace mocemg
