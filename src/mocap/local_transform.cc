#include "mocap/local_transform.h"

#include <cmath>

#include "util/macros.h"

namespace mocemg {

Result<MotionSequence> ToPelvisLocal(
    const MotionSequence& motion, const LocalTransformOptions& options) {
  const MarkerSet& set = motion.marker_set();
  MOCEMG_ASSIGN_OR_RETURN(size_t pelvis, set.IndexOf(Segment::kPelvis));

  MotionSequence out = motion;
  const size_t frames = motion.num_frames();
  const size_t markers = set.num_markers();
  for (size_t f = 0; f < frames; ++f) {
    const auto origin = motion.MarkerPosition(f, pelvis);
    for (size_t m = 0; m < markers; ++m) {
      const auto p = motion.MarkerPosition(f, m);
      out.SetMarkerPosition(
          f, m, {p[0] - origin[0], p[1] - origin[1], p[2] - origin[2]});
    }
  }

  if (options.normalize_heading && frames > 0 && markers > 1) {
    // Estimate heading from the average pelvis→reference displacement in
    // the first frames, then rotate all markers about Z so it points +X.
    size_t ref = pelvis == 0 ? 1 : 0;
    auto clav = set.IndexOf(Segment::kClavicle);
    if (clav.ok()) ref = *clav;
    const size_t n = std::min(options.heading_frames, frames);
    double hx = 0.0;
    double hy = 0.0;
    for (size_t f = 0; f < n; ++f) {
      const auto p = out.MarkerPosition(f, ref);
      hx += p[0];
      hy += p[1];
    }
    const double norm = std::hypot(hx, hy);
    if (norm > 1e-9) {
      const double c = hx / norm;
      const double s = hy / norm;
      // Rotate by -heading: (x, y) → (c·x + s·y, -s·x + c·y).
      for (size_t f = 0; f < frames; ++f) {
        for (size_t m = 0; m < markers; ++m) {
          const auto p = out.MarkerPosition(f, m);
          out.SetMarkerPosition(f, m,
                                {c * p[0] + s * p[1],
                                 -s * p[0] + c * p[1], p[2]});
        }
      }
    }
  }
  return out;
}

}  // namespace mocemg
