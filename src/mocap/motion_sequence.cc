#include "mocap/motion_sequence.h"

#include <cmath>

#include "util/macros.h"

namespace mocemg {

Result<MotionSequence> MotionSequence::Create(MarkerSet marker_set,
                                              Matrix positions,
                                              double frame_rate_hz) {
  if (frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  if (positions.cols() != 3 * marker_set.num_markers()) {
    return Status::InvalidArgument(
        "position matrix has " + std::to_string(positions.cols()) +
        " columns, expected 3 x " +
        std::to_string(marker_set.num_markers()));
  }
  return MotionSequence(std::move(marker_set), std::move(positions),
                        frame_rate_hz);
}

std::array<double, 3> MotionSequence::MarkerPosition(
    size_t frame, size_t marker_index) const {
  const size_t c = 3 * marker_index;
  return {positions_(frame, c), positions_(frame, c + 1),
          positions_(frame, c + 2)};
}

void MotionSequence::SetMarkerPosition(size_t frame, size_t marker_index,
                                       const std::array<double, 3>& xyz) {
  const size_t c = 3 * marker_index;
  positions_(frame, c) = xyz[0];
  positions_(frame, c + 1) = xyz[1];
  positions_(frame, c + 2) = xyz[2];
}

Result<Matrix> MotionSequence::JointMatrix(Segment segment) const {
  MOCEMG_ASSIGN_OR_RETURN(size_t idx, marker_set_.IndexOf(segment));
  return positions_.ColumnSlice(3 * idx, 3 * idx + 3);
}

Result<MotionSequence> MotionSequence::FrameSlice(size_t begin,
                                                  size_t end) const {
  if (begin > end || end > num_frames()) {
    return Status::OutOfRange("frame slice [" + std::to_string(begin) +
                              ", " + std::to_string(end) +
                              ") outside motion of " +
                              std::to_string(num_frames()) + " frames");
  }
  return MotionSequence(marker_set_, positions_.RowSlice(begin, end),
                        frame_rate_hz_);
}

Result<MotionSequence> MotionSequence::SelectSegments(
    const std::vector<Segment>& segments) const {
  MarkerSet subset(segments);  // prepends pelvis if missing
  Matrix out(num_frames(), 3 * subset.num_markers());
  for (size_t j = 0; j < subset.num_markers(); ++j) {
    MOCEMG_ASSIGN_OR_RETURN(size_t src,
                            marker_set_.IndexOf(subset.segments()[j]));
    for (size_t f = 0; f < num_frames(); ++f) {
      out(f, 3 * j) = positions_(f, 3 * src);
      out(f, 3 * j + 1) = positions_(f, 3 * src + 1);
      out(f, 3 * j + 2) = positions_(f, 3 * src + 2);
    }
  }
  return MotionSequence(std::move(subset), std::move(out), frame_rate_hz_);
}

Status MotionSequence::Validate() const {
  if (num_frames() == 0) {
    return Status::FailedPrecondition("motion has no frames");
  }
  for (double v : positions_.data()) {
    if (!std::isfinite(v)) {
      return Status::NumericalError("non-finite marker position");
    }
  }
  return Status::OK();
}

}  // namespace mocemg
