/// \file local_transform.h
/// \brief The paper's local transformation (Section 3.2): global marker
/// positions are re-expressed relative to the pelvis segment — the root of
/// all body segments — so that motions performed at different locations
/// and in different directions become comparable.

#ifndef MOCEMG_MOCAP_LOCAL_TRANSFORM_H_
#define MOCEMG_MOCAP_LOCAL_TRANSFORM_H_

#include "mocap/motion_sequence.h"
#include "util/result.h"

namespace mocemg {

/// \brief Options for the pelvis-local transform.
struct LocalTransformOptions {
  /// Also rotate about the vertical (Z) axis so the subject's initial
  /// heading is +X. The paper only translates; heading normalization is
  /// an extension that additionally removes facing-direction variance
  /// (evaluated in the ablation benches).
  bool normalize_heading = false;
  /// Heading is estimated from the first `heading_frames` frames of the
  /// clavicle (or, if absent, the first non-pelvis marker) displacement
  /// from the pelvis.
  size_t heading_frames = 5;
};

/// \brief Returns a copy of `motion` with every marker expressed in
/// pelvis-local coordinates per frame. The pelvis columns become zero.
/// Fails if the motion does not capture the pelvis.
Result<MotionSequence> ToPelvisLocal(const MotionSequence& motion,
                                     const LocalTransformOptions& options = {});

}  // namespace mocemg

#endif  // MOCEMG_MOCAP_LOCAL_TRANSFORM_H_
