#include "mocap/trc_io.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "util/csv.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace mocemg {
namespace {

// Splits a TRC line on tabs, collapsing nothing (TRC pads marker names
// with empty columns).
std::vector<std::string> TabFields(const std::string& line) {
  return Split(line, '\t');
}

Result<std::string> NextLine(std::istringstream* in, const char* what) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::ParseError(std::string("truncated TRC: missing ") +
                              what);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

}  // namespace

Result<MotionSequence> ParseTrc(const std::string& text) {
  std::istringstream in(text);
  MOCEMG_ASSIGN_OR_RETURN(std::string line1, NextLine(&in, "header line 1"));
  if (!StartsWith(line1, "PathFileType")) {
    return Status::ParseError("not a TRC file (no PathFileType header)");
  }
  MOCEMG_ASSIGN_OR_RETURN(std::string line2, NextLine(&in, "header line 2"));
  MOCEMG_ASSIGN_OR_RETURN(std::string line3, NextLine(&in, "header line 3"));

  // Map header fields to values.
  const std::vector<std::string> keys = TabFields(line2);
  const std::vector<std::string> vals = TabFields(line3);
  double data_rate = 120.0;
  size_t num_frames = 0;
  size_t num_markers = 0;
  double unit_to_mm = 1.0;
  for (size_t i = 0; i < keys.size() && i < vals.size(); ++i) {
    const std::string_view key = Trim(keys[i]);
    const std::string_view val = Trim(vals[i]);
    if (key == "DataRate") {
      MOCEMG_ASSIGN_OR_RETURN(data_rate, ParseDouble(val));
      if (!std::isfinite(data_rate) || data_rate <= 0.0) {
        return Status::ParseError("TRC DataRate '" + std::string(val) +
                                  "' is not a positive finite rate");
      }
    } else if (key == "NumFrames") {
      MOCEMG_ASSIGN_OR_RETURN(int64_t v, ParseInt(val));
      num_frames = static_cast<size_t>(v);
    } else if (key == "NumMarkers") {
      MOCEMG_ASSIGN_OR_RETURN(int64_t v, ParseInt(val));
      num_markers = static_cast<size_t>(v);
    } else if (key == "Units") {
      if (EqualsIgnoreCase(val, "m")) {
        unit_to_mm = 1000.0;
      } else if (!EqualsIgnoreCase(val, "mm")) {
        return Status::ParseError("unsupported TRC units '" +
                                  std::string(val) + "'");
      }
    }
  }
  if (num_markers == 0) {
    return Status::ParseError("TRC header declares zero markers");
  }

  MOCEMG_ASSIGN_OR_RETURN(std::string name_line,
                          NextLine(&in, "marker-name line"));
  const std::vector<std::string> name_fields = TabFields(name_line);
  if (name_fields.size() < 2 || Trim(name_fields[0]) != "Frame#") {
    return Status::ParseError("malformed marker-name line");
  }
  std::vector<Segment> segments;
  for (size_t i = 2; i < name_fields.size(); ++i) {
    const std::string_view f = Trim(name_fields[i]);
    if (f.empty()) continue;
    MOCEMG_ASSIGN_OR_RETURN(Segment s, SegmentFromName(std::string(f)));
    segments.push_back(s);
  }
  if (segments.size() != num_markers) {
    return Status::ParseError(
        "marker-name line lists " + std::to_string(segments.size()) +
        " markers but header declares " + std::to_string(num_markers));
  }

  // Sub-header (X1 Y1 Z1 ...) — present in well-formed files; tolerate a
  // file that jumps straight to data by peeking at the first field.
  MOCEMG_ASSIGN_OR_RETURN(std::string subheader,
                          NextLine(&in, "coordinate sub-header"));
  std::vector<std::vector<double>> rows;
  auto consume_data_line = [&](const std::string& line) -> Status {
    const std::string_view t = Trim(line);
    if (t.empty()) return Status::OK();
    const std::vector<std::string> fields = TabFields(line);
    if (fields.size() < 2 + 3 * num_markers) {
      return Status::ParseError(
          "data row " + std::to_string(rows.size() + 1) + " has " +
          std::to_string(fields.size()) + " fields, expected >= " +
          std::to_string(2 + 3 * num_markers) +
          " (truncated capture?)");
    }
    std::vector<double> row(3 * num_markers);
    for (size_t m = 0; m < 3 * num_markers; ++m) {
      MOCEMG_ASSIGN_OR_RETURN(double v, ParseDouble(fields[2 + m]));
      if (!std::isfinite(v)) {
        return Status::ParseError(
            "non-finite coordinate '" +
            std::string(Trim(fields[2 + m])) + "' in data row " +
            std::to_string(rows.size() + 1) +
            "; occluded markers must be repaired upstream, not "
            "serialized as NaN");
      }
      row[m] = v * unit_to_mm;
    }
    rows.push_back(std::move(row));
    return Status::OK();
  };

  // Is the sub-header actually a data row (starts with a number)?
  {
    const std::vector<std::string> fields = TabFields(subheader);
    if (!fields.empty() && ParseInt(fields[0]).ok()) {
      MOCEMG_RETURN_NOT_OK(consume_data_line(subheader));
    }
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    MOCEMG_RETURN_NOT_OK(consume_data_line(line));
  }
  if (num_frames != 0 && rows.size() != num_frames) {
    return Status::ParseError("TRC header declares " +
                              std::to_string(num_frames) +
                              " frames but file contains " +
                              std::to_string(rows.size()));
  }

  MOCEMG_ASSIGN_OR_RETURN(Matrix positions, Matrix::FromRows(rows));
  return MotionSequence::Create(MarkerSet(std::move(segments)),
                                std::move(positions), data_rate);
}

Result<MotionSequence> ReadTrcFile(const std::string& path) {
  MOCEMG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  auto result = ParseTrc(text);
  if (!result.ok()) {
    return result.status().WithContext("while parsing '" + path + "'");
  }
  return result;
}

std::string WriteTrc(const MotionSequence& motion,
                     const std::string& file_label) {
  std::ostringstream out;
  const size_t frames = motion.num_frames();
  const size_t markers = motion.num_markers();
  const double rate = motion.frame_rate_hz();
  out << "PathFileType\t4\t(X/Y/Z)\t" << file_label << "\n";
  out << "DataRate\tCameraRate\tNumFrames\tNumMarkers\tUnits\t"
         "OrigDataRate\tOrigDataStartFrame\tOrigNumFrames\n";
  out << FormatDouble(rate, 2) << "\t" << FormatDouble(rate, 2) << "\t"
      << frames << "\t" << markers << "\tmm\t" << FormatDouble(rate, 2)
      << "\t1\t" << frames << "\n";
  out << "Frame#\tTime";
  for (Segment s : motion.marker_set().segments()) {
    out << "\t" << SegmentName(s) << "\t\t";
  }
  out << "\n";
  out << "\t";
  for (size_t m = 1; m <= markers; ++m) {
    out << "\tX" << m << "\tY" << m << "\tZ" << m;
  }
  out << "\n";
  for (size_t f = 0; f < frames; ++f) {
    out << (f + 1) << "\t"
        << FormatDouble(static_cast<double>(f) / rate, 5);
    for (size_t m = 0; m < markers; ++m) {
      const auto p = motion.MarkerPosition(f, m);
      out << "\t" << FormatDouble(p[0], 5) << "\t" << FormatDouble(p[1], 5)
          << "\t" << FormatDouble(p[2], 5);
    }
    out << "\n";
  }
  return out.str();
}

Status WriteTrcFile(const MotionSequence& motion, const std::string& path,
                    const std::string& file_label) {
  return WriteStringToFile(path, WriteTrc(motion, file_label));
}

}  // namespace mocemg
