/// \file skeleton.h
/// \brief Body-segment model for the capture rig. Mirrors the paper's
/// setup: retro-reflective markers on body segments, pelvis as the root
/// of the hierarchy, and the two limb subsets it analyzes separately
/// (right hand: clavicle, humerus, radius, hand — right leg: tibia,
/// foot, toe).

#ifndef MOCEMG_MOCAP_SKELETON_H_
#define MOCEMG_MOCAP_SKELETON_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Body segments tracked by the (real or simulated) capture rig.
enum class Segment : int {
  kPelvis = 0,
  kClavicle,
  kHumerus,
  kRadius,
  kHand,
  kFemur,
  kTibia,
  kFoot,
  kToe,
  kNumSegments,
};

/// \brief Stable lower-case name of a segment ("pelvis", "clavicle", …).
const char* SegmentName(Segment segment);

/// \brief Parses a segment name (case-insensitive); NotFound on miss.
Result<Segment> SegmentFromName(const std::string& name);

/// \brief Parent of a segment in the body hierarchy; pelvis is its own
/// parent (root).
Segment SegmentParent(Segment segment);

/// \brief The limb subsets the paper analyzes.
enum class Limb : int {
  kRightHand = 0,
  kRightLeg = 1,
};

const char* LimbName(Limb limb);

/// \brief Segments of a limb in proximal→distal order, exactly the
/// attributes the paper uses (hand: 4 segments; leg: 3 segments).
const std::vector<Segment>& LimbSegments(Limb limb);

/// \brief Marker-set definition: an ordered list of segments whose 3D
/// positions one capture session records (always includes the pelvis so
/// the local transform is possible).
class MarkerSet {
 public:
  /// Builds a marker set from segments; pelvis is prepended when absent.
  explicit MarkerSet(std::vector<Segment> segments);

  /// \brief The standard marker set for a limb: pelvis + LimbSegments.
  static MarkerSet ForLimb(Limb limb);

  const std::vector<Segment>& segments() const { return segments_; }
  size_t num_markers() const { return segments_.size(); }

  /// \brief Index of a segment within this set; NotFound on miss.
  Result<size_t> IndexOf(Segment segment) const;

  /// \brief Names of all markers in order.
  std::vector<std::string> MarkerNames() const;

 private:
  std::vector<Segment> segments_;
};

}  // namespace mocemg

#endif  // MOCEMG_MOCAP_SKELETON_H_
