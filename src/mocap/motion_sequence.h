/// \file motion_sequence.h
/// \brief The "motion matrix" of the paper: per-frame 3D positions of a
/// marker set, three columns per joint, at a fixed frame rate (120 Hz in
/// the lab this reproduces).

#ifndef MOCEMG_MOCAP_MOTION_SEQUENCE_H_
#define MOCEMG_MOCAP_MOTION_SEQUENCE_H_

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "mocap/skeleton.h"
#include "util/result.h"

namespace mocemg {

/// \brief A captured (or synthesized) motion: frames × (3 · markers)
/// positions in millimetres plus acquisition metadata.
class MotionSequence {
 public:
  MotionSequence() : marker_set_({}), frame_rate_hz_(120.0) {}

  /// \brief Wraps a joint matrix. `positions` must have 3·markers columns.
  static Result<MotionSequence> Create(MarkerSet marker_set,
                                       Matrix positions,
                                       double frame_rate_hz = 120.0);

  const MarkerSet& marker_set() const { return marker_set_; }
  double frame_rate_hz() const { return frame_rate_hz_; }
  size_t num_frames() const { return positions_.rows(); }
  size_t num_markers() const { return marker_set_.num_markers(); }
  double duration_seconds() const {
    return num_frames() == 0
               ? 0.0
               : static_cast<double>(num_frames()) / frame_rate_hz_;
  }

  /// \brief The full motion matrix (frames × 3·markers), columns grouped
  /// as [x,y,z] per marker in marker-set order.
  const Matrix& positions() const { return positions_; }
  Matrix& mutable_positions() { return positions_; }

  /// \brief 3D position of one marker at one frame.
  std::array<double, 3> MarkerPosition(size_t frame,
                                       size_t marker_index) const;

  /// \brief Sets the 3D position of one marker at one frame.
  void SetMarkerPosition(size_t frame, size_t marker_index,
                         const std::array<double, 3>& xyz);

  /// \brief The frames × 3 "joint matrix" of a single segment — the A of
  /// the paper's Eq. 2. NotFound if the segment is not captured.
  Result<Matrix> JointMatrix(Segment segment) const;

  /// \brief Sub-sequence of frames [begin, end).
  Result<MotionSequence> FrameSlice(size_t begin, size_t end) const;

  /// \brief Restriction to a subset of the captured segments (e.g. the
  /// right-hand attributes); pelvis is always retained.
  Result<MotionSequence> SelectSegments(
      const std::vector<Segment>& segments) const;

  /// \brief Sanity checks: finite values, nonzero frames.
  Status Validate() const;

 private:
  MotionSequence(MarkerSet marker_set, Matrix positions,
                 double frame_rate_hz)
      : marker_set_(std::move(marker_set)),
        positions_(std::move(positions)),
        frame_rate_hz_(frame_rate_hz) {}

  MarkerSet marker_set_;
  Matrix positions_;
  double frame_rate_hz_;
};

}  // namespace mocemg

#endif  // MOCEMG_MOCAP_MOTION_SEQUENCE_H_
