/// \file eigen_sym.h
/// \brief Symmetric eigendecomposition via classical (two-sided) Jacobi.
///
/// Used by tests to cross-check the one-sided-Jacobi SVD (σ_i(A) must be
/// sqrt(λ_i(AᵀA))) and by the PCA utilities in the cluster-validity and
/// analysis code paths.

#ifndef MOCEMG_LINALG_EIGEN_SYM_H_
#define MOCEMG_LINALG_EIGEN_SYM_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief Eigendecomposition of a symmetric matrix: A = Q Λ Qᵀ.
struct SymmetricEigenResult {
  /// Eigenvalues, descending.
  std::vector<double> eigenvalues;
  /// Eigenvectors as columns, ordered to match `eigenvalues`.
  Matrix eigenvectors;
  int sweeps = 0;
};

/// \brief Computes all eigenpairs of a symmetric matrix. Fails if `a` is
/// not square, not symmetric (beyond `symmetry_tol`), or the iteration
/// exceeds `max_sweeps`.
Result<SymmetricEigenResult> ComputeSymmetricEigen(
    const Matrix& a, int max_sweeps = 60, double symmetry_tol = 1e-9);

/// \brief Sample covariance matrix (n-1 denominator) of row-observations.
/// Fails with fewer than two rows.
Result<Matrix> CovarianceMatrix(const Matrix& observations);

}  // namespace mocemg

#endif  // MOCEMG_LINALG_EIGEN_SYM_H_
