/// \file vector_ops.h
/// \brief Free functions on std::vector<double> used throughout feature
/// extraction, clustering, and evaluation.

#ifndef MOCEMG_LINALG_VECTOR_OPS_H_
#define MOCEMG_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Dot product; vectors must be equal length (checked, aborts on
/// programmer error since this sits in inner loops).
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Euclidean (L2) norm.
double Norm2(const std::vector<double>& v);

/// \brief L1 norm.
double Norm1(const std::vector<double>& v);

/// \brief Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// \brief Squared Euclidean distance (no sqrt; inner-loop friendly).
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// \brief Pointer variants for allocation-free inner loops (FCM E/M
/// steps, kNN scans) where rows live inside a Matrix.
double SquaredDistance(const double* a, const double* b, size_t n);
double EuclideanDistance(const double* a, const double* b, size_t n);

/// \brief a + b element-wise.
std::vector<double> AddVectors(const std::vector<double>& a,
                               const std::vector<double>& b);

/// \brief a - b element-wise.
std::vector<double> SubtractVectors(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// \brief s·v.
std::vector<double> ScaleVector(const std::vector<double>& v, double s);

/// \brief In-place a += s·b.
void Axpy(double s, const std::vector<double>& b, std::vector<double>* a);

/// \brief Normalizes to unit L2 norm; returns a zero vector unchanged.
std::vector<double> Normalized(const std::vector<double>& v);

/// \brief Concatenates b onto a copy of a (the paper's "appending one to
/// other" combination of EMG and mocap feature vectors).
std::vector<double> Concatenate(const std::vector<double>& a,
                                const std::vector<double>& b);

/// \brief Arithmetic mean; fails on empty input.
Result<double> Mean(const std::vector<double>& v);

/// \brief Sample variance (n-1 denominator); fails when size < 2.
Result<double> SampleVariance(const std::vector<double>& v);

/// \brief Population standard deviation (n denominator); 0 for empty.
double PopulationStddev(const std::vector<double>& v);

/// \brief Minimum element; fails on empty input.
Result<double> MinElement(const std::vector<double>& v);

/// \brief Maximum element; fails on empty input.
Result<double> MaxElement(const std::vector<double>& v);

/// \brief Index of the maximum element; fails on empty input.
Result<size_t> ArgMax(const std::vector<double>& v);

}  // namespace mocemg

#endif  // MOCEMG_LINALG_VECTOR_OPS_H_
