/// \file lu.h
/// \brief LU decomposition with partial pivoting: linear solves,
/// inverses, and determinants for the small dense systems the library
/// meets (Gustafson–Kessel's per-cluster covariance inverses, tests).

#ifndef MOCEMG_LINALG_LU_H_
#define MOCEMG_LINALG_LU_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief PA = LU factorization of a square matrix.
class LuDecomposition {
 public:
  /// \brief Factorizes `a`; fails if non-square or numerically singular
  /// (pivot below `pivot_tol` · max|a|).
  static Result<LuDecomposition> Compute(const Matrix& a,
                                         double pivot_tol = 1e-13);

  size_t dimension() const { return lu_.rows(); }

  /// \brief Solves A x = b.
  Result<std::vector<double>> Solve(const std::vector<double>& b) const;

  /// \brief Solves A X = B column-wise.
  Result<Matrix> SolveMatrix(const Matrix& b) const;

  /// \brief A⁻¹.
  Result<Matrix> Inverse() const;

  /// \brief det(A) (sign-corrected for the row permutation).
  double Determinant() const;

 private:
  LuDecomposition() = default;

  Matrix lu_;                  ///< packed L (unit diag) and U
  std::vector<size_t> perm_;   ///< row permutation
  int permutation_sign_ = 1;
};

/// \brief Convenience: det(a) for a square matrix (0 for singular).
Result<double> Determinant(const Matrix& a);

/// \brief Convenience: a⁻¹; fails when singular.
Result<Matrix> Inverse(const Matrix& a);

}  // namespace mocemg

#endif  // MOCEMG_LINALG_LU_H_
