#include "linalg/gram_svd.h"

#include <cmath>

namespace mocemg {
namespace {

// Off-diagonal Frobenius norm below this fraction of the largest |entry|
// counts as diagonal. Jacobi converges quadratically, so the tail from
// 1e-8·scale to here is one or two rotations; the tight threshold buys
// eigenvector residuals small enough for the 1e-10 feature-equivalence
// contract in core/incremental_window.h.
constexpr double kOffDiagTol = 1e-15;
// Classical (largest-pivot) Jacobi annihilates the biggest of the three
// off-diagonals per rotation and needs ~6-8 rotations cold, 1-3 warm;
// anything near this cap means the input was garbage (callers then fall
// back to the exact path).
constexpr int kMaxRotations = 24;

// Iteration state of one solve, factored out so ComputeSvdFromGram3Many
// can step two solves in lockstep (their rotation chains are
// independent, so the out-of-order core overlaps the sqrt/divide
// latencies that dominate a lone solve). The matrix stays symmetric
// under the two-sided rotations, so only the diagonal (d) and the upper
// off-diagonals (o) are carried.
struct Jacobi3 {
  double d0, d1, d2, o01, o02, o12;
  double q[3][3];
  double scale = 0.0;
  double tol2 = 0.0;
  int rotations = 0;
  bool active = false;
  bool bad_input = false;

  void Init(const double gram[6], const double* warm_v) {
    for (int i = 0; i < 6; ++i) {
      // Per-entry check: a NaN would slip past a max-based scale test
      // because every NaN comparison is false.
      if (!std::isfinite(gram[i])) {
        bad_input = true;
        return;
      }
      const double m = std::fabs(gram[i]);
      if (m > scale) scale = m;
    }
    d0 = gram[0];
    d1 = gram[3];
    d2 = gram[5];
    o01 = gram[1];
    o02 = gram[2];
    o12 = gram[4];
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 3; ++k) {
        q[i][k] = i == k ? 1.0 : 0.0;
      }
    }
    if (warm_v != nullptr) {
      // Pre-rotate to the warm basis: W = VᵀGV, accumulating from
      // Q = V. t = G·V first (full symmetric G from the packed
      // entries), then the upper triangle of VᵀT; symmetrized by
      // construction since only one copy of each off-diagonal is kept.
      const double g[3][3] = {{gram[0], gram[1], gram[2]},
                              {gram[1], gram[3], gram[4]},
                              {gram[2], gram[4], gram[5]}};
      double t[3][3];
      for (int i = 0; i < 3; ++i) {
        for (int k = 0; k < 3; ++k) {
          t[i][k] = g[i][0] * warm_v[k] + g[i][1] * warm_v[3 + k] +
                    g[i][2] * warm_v[6 + k];
        }
      }
      const auto vtav = [&](int a, int b) {
        return warm_v[a] * t[0][b] + warm_v[3 + a] * t[1][b] +
               warm_v[6 + a] * t[2][b];
      };
      d0 = vtav(0, 0);
      d1 = vtav(1, 1);
      d2 = vtav(2, 2);
      o01 = vtav(0, 1);
      o02 = vtav(0, 2);
      o12 = vtav(1, 2);
      for (int i = 0; i < 3; ++i) {
        for (int k = 0; k < 3; ++k) {
          q[i][k] = warm_v[3 * i + k];
        }
      }
    }
    tol2 = (kOffDiagTol * scale) * (kOffDiagTol * scale);
    active = scale > 0.0;
  }

  // Annihilates the (p, r) off-diagonal `opr` by the two-sided rotation
  // Jᵀ W J. Rutishauser's symmetric update: the 2×2 block collapses to
  // d_p − t·a_pq / d_r + t·a_pq, and only the two couplings to the
  // third axis (`opk`, `ork`) rotate.
  void Rotate(double* dp, double* dr, double* opr, double* opk,
              double* ork, int p, int r) {
    const double apq = *opr;
    const double h = *dr - *dp;
    // Inner rotation via the hypotenuse u = √(h² + 4a²):
    //   t = tan φ = 2a·sign(h)/(|h| + u),  c = cos φ = √((u + |h|)/2u)
    // (the same branch the textbook θ-form picks — multiply its t by
    // 2|a|/2|a| to see it). After u, the t and c chains are
    // independent, so the two divides and the second sqrt overlap
    // instead of forming one five-deep divide/sqrt dependency chain.
    const double habs = std::fabs(h);
    const double u = std::sqrt(h * h + 4.0 * apq * apq);
    const double t = (h >= 0.0 ? 2.0 * apq : -2.0 * apq) / (habs + u);
    const double c = std::sqrt((u + habs) / (2.0 * u));
    const double s = c * t;
    *dp -= t * apq;
    *dr += t * apq;
    *opr = 0.0;
    const double pk = *opk;
    const double rk = *ork;
    *opk = c * pk - s * rk;
    *ork = s * pk + c * rk;
    for (int i = 0; i < 3; ++i) {
      const double qip = q[i][p];
      const double qir = q[i][r];
      q[i][p] = c * qip - s * qir;
      q[i][r] = s * qip + c * qir;
    }
  }

  // One convergence check plus at most one rotation; clears `active`
  // once converged or at the rotation cap (Finish then rejects the
  // latter via the residual check).
  void Step() {
    const double s01 = o01 * o01;
    const double s02 = o02 * o02;
    const double s12 = o12 * o12;
    if (s01 + s02 + s12 <= tol2 || rotations == kMaxRotations) {
      active = false;
      return;
    }
    // Classical pivoting: annihilate the largest off-diagonal. The
    // sqrt/divide chain dominates a rotation, so converging in the
    // fewest rotations beats a fixed cyclic sweep; the pivot choice
    // (ties to the earlier pair) is a pure function of the values, so
    // results stay bit-reproducible. Checking convergence before every
    // rotation lets a warm-started solve — off-norm already at drift
    // level — finish after one.
    if (s01 >= s02 && s01 >= s12) {
      Rotate(&d0, &d1, &o01, &o02, &o12, 0, 1);
    } else if (s02 >= s12) {
      Rotate(&d0, &d2, &o02, &o01, &o12, 0, 2);
    } else {
      Rotate(&d1, &d2, &o12, &o01, &o02, 1, 2);
    }
    ++rotations;
  }

  Status Finish(GramSvd3* out) const {
    if (bad_input) {
      return Status::NumericalError(
          "Gram matrix contains non-finite entries");
    }
    if (scale > 0.0) {
      const double off2 = o01 * o01 + o02 * o02 + o12 * o12;
      const double residual_tol = 1e-11 * scale;
      if (off2 > residual_tol * residual_tol) {
        return Status::NumericalError(
            "3x3 Jacobi eigensolver did not converge");
      }
    }

    // Stable descending sort of the three eigenpairs (insertion order
    // on indices keeps ties in diagonal order, mirroring the
    // stable_sort in linalg/svd.cc).
    int order[3] = {0, 1, 2};
    const double evals[3] = {d0, d1, d2};
    for (int i = 1; i < 3; ++i) {
      const int oi = order[i];
      int j = i;
      while (j > 0 && evals[oi] > evals[order[j - 1]]) {
        order[j] = order[j - 1];
        --j;
      }
      order[j] = oi;
    }

    out->sweeps = rotations;
    out->sign_margin = 1.0;
    for (int k = 0; k < 3; ++k) {
      const int j = order[k];
      const double lambda = evals[j];
      out->lambda[k] = lambda;
      out->sigma[k] = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
      // Sign fix exactly as linalg/svd.cc: scan components in index
      // order, strict > keeps the earliest maximum, flip if that entry
      // < 0. The runner-up magnitude feeds sign_margin so callers can
      // detect when the convention sat on a knife edge.
      double best = 0.0;
      double second = 0.0;
      for (int i = 0; i < 3; ++i) {
        const double e = q[i][j];
        if (std::fabs(e) > std::fabs(best)) {
          second = std::fabs(best);
          best = e;
        } else if (std::fabs(e) > second) {
          second = std::fabs(e);
        }
      }
      const double sign = best < 0.0 ? -1.0 : 1.0;
      const double margin =
          std::fabs(best) > 0.0
              ? (std::fabs(best) - second) / std::fabs(best)
              : 0.0;
      if (margin < out->sign_margin) out->sign_margin = margin;
      for (int i = 0; i < 3; ++i) out->v[3 * i + k] = sign * q[i][j];
    }
    return Status::OK();
  }
};

}  // namespace

Status ComputeSvdFromGram3(const double gram[6], GramSvd3* out) {
  return ComputeSvdFromGram3(gram, nullptr, out);
}

Status ComputeSvdFromGram3(const double gram[6], const double warm_v[9],
                           GramSvd3* out) {
  Jacobi3 j;
  j.Init(gram, warm_v);
  while (j.active) j.Step();
  return j.Finish(out);
}

void ComputeSvdFromGram3Many(GramSvd3Task* tasks, size_t n) {
  size_t i = 0;
  for (; i + 1 < n; i += 2) {
    Jacobi3 a;
    Jacobi3 b;
    a.Init(tasks[i].gram, tasks[i].warm_v);
    b.Init(tasks[i + 1].gram, tasks[i + 1].warm_v);
    // Lockstep: each pass advances whichever solves are still active.
    // The chains never read each other's state, so each one performs
    // the exact operation sequence a solo solve would.
    while (a.active || b.active) {
      if (a.active) a.Step();
      if (b.active) b.Step();
    }
    tasks[i].status = a.Finish(tasks[i].out);
    tasks[i + 1].status = b.Finish(tasks[i + 1].out);
  }
  if (i < n) {
    Jacobi3 a;
    a.Init(tasks[i].gram, tasks[i].warm_v);
    while (a.active) a.Step();
    tasks[i].status = a.Finish(tasks[i].out);
  }
}

}  // namespace mocemg
