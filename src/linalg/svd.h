/// \file svd.h
/// \brief Singular value decomposition via one-sided Jacobi rotations.
///
/// The paper's mocap dimensionality reduction (Eq. 2–3) needs, for every
/// w×3 joint window A, the singular values and right singular vectors of
/// A = U Σ Vᵀ. One-sided Jacobi is compact, numerically robust (it
/// computes small singular values to high relative accuracy), and exact
/// for the tall-skinny windows this library decomposes; the implementation
/// below is general (any m×n) so it also serves tests and extensions.
///
/// Sign convention: each singular-vector pair (u_i, v_i) is flipped so the
/// largest-|·| component of v_i is positive. SVD is only defined up to
/// per-pair sign; without a fixed convention, windows with identical
/// motion content could land at mirrored feature-space positions and
/// scatter FCM clusters. Any consistent convention reproduces the paper.

#ifndef MOCEMG_LINALG_SVD_H_
#define MOCEMG_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace mocemg {

/// \brief Options controlling the Jacobi SVD iteration.
struct SvdOptions {
  /// Also compute left singular vectors (thin U, m×min(m,n)).
  bool compute_u = false;
  /// Hard cap on full Jacobi sweeps before declaring non-convergence.
  int max_sweeps = 60;
  /// Relative off-diagonal threshold for applying a rotation.
  double tol = 1e-13;
  /// Apply the deterministic sign convention documented above.
  bool fix_signs = true;
};

/// \brief Thin SVD A = U Σ Vᵀ.
struct SvdResult {
  /// Singular values, descending; length min(m, n).
  std::vector<double> singular_values;
  /// Right singular vectors as columns, n × min(m, n).
  Matrix v;
  /// Left singular vectors as columns, m × min(m, n). Empty unless
  /// SvdOptions::compute_u.
  Matrix u;
  /// Sweeps actually used.
  int sweeps = 0;

  /// \brief The i-th right singular vector (column i of v).
  std::vector<double> RightSingularVector(size_t i) const {
    return v.Column(i);
  }
};

/// \brief Computes the thin SVD of `a`. Fails on empty input or if the
/// iteration does not converge within max_sweeps.
Result<SvdResult> ComputeSvd(const Matrix& a, const SvdOptions& options = {});

/// \brief Reusable workspace for ComputeSvdInto. A default-constructed
/// scratch works for any shape; buffers grow on first use and are
/// reused (no allocation) across repeated same-shape decompositions —
/// the per-window w×3 case of the feature extractor.
struct SvdScratch {
  Matrix b;                    ///< work copy of A (columns orthogonalized)
  Matrix v;                    ///< accumulated rotations (n × n)
  std::vector<double> sq;      ///< column squared norms
  std::vector<double> sigma;   ///< unsorted singular values
  std::vector<size_t> order;   ///< descending sort permutation
};

/// \brief Allocation-free variant of ComputeSvd: uses `scratch` for all
/// intermediate storage and writes into `out`, reusing its buffers when
/// shapes match the previous call. Identical results to ComputeSvd.
Status ComputeSvdInto(const Matrix& a, const SvdOptions& options,
                      SvdScratch* scratch, SvdResult* out);

/// \brief Reconstructs U·diag(σ)·Vᵀ from an SvdResult that carries U;
/// test utility for round-trip verification.
Result<Matrix> ReconstructFromSvd(const SvdResult& svd);

}  // namespace mocemg

#endif  // MOCEMG_LINALG_SVD_H_
