#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mocemg {

Result<SymmetricEigenResult> ComputeSymmetricEigen(const Matrix& a,
                                                   int max_sweeps,
                                                   double symmetry_tol) {
  if (a.empty()) return Status::InvalidArgument("eigen of empty matrix");
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("eigen of non-square matrix");
  }
  const size_t n = a.rows();
  const double scale = std::max(a.MaxAbs(), 1e-300);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) > symmetry_tol * scale) {
        return Status::InvalidArgument(
            "matrix is not symmetric at (" + std::to_string(i) + "," +
            std::to_string(j) + ")");
      }
    }
  }

  Matrix w = a;
  Matrix q = Matrix::Identity(n);
  int sweeps = 0;
  bool converged = (n <= 1);
  for (; sweeps < max_sweeps && !converged; ++sweeps) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += w(i, j) * w(i, j);
    }
    if (std::sqrt(off) <= 1e-14 * scale * static_cast<double>(n)) {
      converged = true;
      break;
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t r = p + 1; r < n; ++r) {
        const double apq = w(p, r);
        if (apq == 0.0) continue;
        const double app = w(p, p);
        const double aqq = w(r, r);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Apply Jᵀ W J where J rotates the (p, r) plane.
        for (size_t k = 0; k < n; ++k) {
          const double wkp = w(k, p);
          const double wkr = w(k, r);
          w(k, p) = c * wkp - s * wkr;
          w(k, r) = s * wkp + c * wkr;
        }
        for (size_t k = 0; k < n; ++k) {
          const double wpk = w(p, k);
          const double wrk = w(r, k);
          w(p, k) = c * wpk - s * wrk;
          w(r, k) = s * wpk + c * wrk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p);
          const double qkr = q(k, r);
          q(k, p) = c * qkp - s * qkr;
          q(k, r) = s * qkp + c * qkr;
        }
      }
    }
  }
  if (!converged) {
    // One last residual check: sweeps may have driven off-diagonals down
    // on the final pass.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += w(i, j) * w(i, j);
    }
    if (std::sqrt(off) > 1e-10 * scale * static_cast<double>(n)) {
      return Status::NumericalError("Jacobi eigensolver did not converge");
    }
  }

  std::vector<double> evals(n);
  for (size_t i = 0; i < n; ++i) evals[i] = w(i, i);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t x, size_t y) { return evals[x] > evals[y]; });

  SymmetricEigenResult out;
  out.sweeps = sweeps;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = evals[order[k]];
    for (size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, k) = q(i, order[k]);
    }
  }
  return out;
}

Result<Matrix> CovarianceMatrix(const Matrix& observations) {
  const size_t n = observations.rows();
  const size_t d = observations.cols();
  if (n < 2) {
    return Status::InvalidArgument("covariance needs >= 2 observations");
  }
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = observations.RowPtr(i);
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);
  Matrix cov(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = observations.RowPtr(i);
    for (size_t a = 0; a < d; ++a) {
      const double da = row[a] - mean[a];
      for (size_t b = a; b < d; ++b) {
        cov(a, b) += da * (row[b] - mean[b]);
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(n - 1);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov(a, b) *= inv;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

}  // namespace mocemg
