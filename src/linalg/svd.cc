#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/macros.h"

namespace mocemg {
namespace {

// Reshapes `m` to rows×cols without preserving contents, reusing the
// existing allocation when the element count already matches.
void ReshapeDirty(Matrix* m, size_t rows, size_t cols) {
  if (m->rows() == rows && m->cols() == cols) return;
  *m = Matrix(rows, cols);
}

}  // namespace

Status ComputeSvdInto(const Matrix& a, const SvdOptions& options,
                      SvdScratch* scratch, SvdResult* out) {
  if (a.empty()) return Status::InvalidArgument("SVD of empty matrix");
  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t rank_bound = std::min(m, n);

  // Work matrix B starts as A; one-sided Jacobi orthogonalizes its
  // columns while accumulating the rotations into V, so that at
  // convergence B = U·Σ and A = B·Vᵀ. The copy assignment reuses the
  // scratch allocation when the shape repeats (the w×3 hot case).
  Matrix& b = scratch->b;
  b = a;
  Matrix& v = scratch->v;
  ReshapeDirty(&v, n, n);
  std::fill(v.mutable_data().begin(), v.mutable_data().end(), 0.0);
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  // Column squared-norms, maintained incrementally.
  std::vector<double>& sq = scratch->sq;
  sq.assign(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < m; ++i) s += b(i, j) * b(i, j);
    sq[j] = s;
  }

  // Columns whose squared norm falls below this fraction of the total
  // Frobenius mass are numerically zero: rotating against them can never
  // converge (the relative threshold collapses with the norm), so they
  // are frozen. This is what makes rank-deficient inputs terminate.
  double fro2 = 0.0;
  for (double s : sq) fro2 += s;
  // NaN/Inf anywhere in A propagates into the Frobenius mass; Jacobi
  // rotations would then cycle forever without converging, so reject
  // up front rather than burn max_sweeps and return garbage.
  if (!std::isfinite(fro2)) {
    return Status::NumericalError(
        "SVD input contains non-finite (or overflowing) entries");
  }
  const double dead_col2 = 1e-28 * fro2;

  int sweeps = 0;
  bool converged = (fro2 == 0.0);
  for (; sweeps < options.max_sweeps && !converged; ++sweeps) {
    bool rotated = false;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double alpha = sq[p];
        const double beta = sq[q];
        if (alpha <= dead_col2 || beta <= dead_col2) continue;
        double gamma = 0.0;
        for (size_t i = 0; i < m; ++i) gamma += b(i, p) * b(i, q);
        if (std::fabs(gamma) <=
            options.tol * std::sqrt(alpha * beta) + 1e-300) {
          continue;
        }
        rotated = true;
        // Rutishauser rotation annihilating the (p,q) inner product.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double bp = b(i, p);
          const double bq = b(i, q);
          b(i, p) = c * bp - s * bq;
          b(i, q) = s * bp + c * bq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
        // Recompute the two column norms exactly: the O(m) cost matches
        // the rotation itself and avoids incremental-update drift that
        // can stall convergence near rank deficiency.
        double np = 0.0;
        double nq = 0.0;
        for (size_t i = 0; i < m; ++i) {
          np += b(i, p) * b(i, p);
          nq += b(i, q) * b(i, q);
        }
        sq[p] = np;
        sq[q] = nq;
      }
    }
    if (!rotated) {
      converged = true;
      break;
    }
  }
  if (!converged) {
    return Status::NumericalError(
        "Jacobi SVD did not converge within " +
        std::to_string(options.max_sweeps) + " sweeps");
  }

  // Column norms of B are the singular values; sort descending.
  std::vector<double>& sigma = scratch->sigma;
  sigma.assign(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < m; ++i) s += b(i, j) * b(i, j);
    sigma[j] = std::sqrt(s);
  }
  std::vector<size_t>& order = scratch->order;
  order.resize(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t x, size_t y) { return sigma[x] > sigma[y]; });

  out->sweeps = sweeps;
  out->singular_values.resize(rank_bound);
  ReshapeDirty(&out->v, n, rank_bound);
  if (options.compute_u) {
    ReshapeDirty(&out->u, m, rank_bound);
    std::fill(out->u.mutable_data().begin(), out->u.mutable_data().end(),
              0.0);
  } else if (!out->u.empty()) {
    out->u = Matrix();
  }
  for (size_t k = 0; k < rank_bound; ++k) {
    const size_t j = order[k];
    double sign = 1.0;
    if (options.fix_signs) {
      // Largest-|·| component of the right singular vector made positive.
      double best = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (std::fabs(v(i, j)) > std::fabs(best)) best = v(i, j);
      }
      if (best < 0.0) sign = -1.0;
    }
    out->singular_values[k] = sigma[j];
    for (size_t i = 0; i < n; ++i) out->v(i, k) = sign * v(i, j);
    if (options.compute_u && sigma[j] > 0.0) {
      const double inv = sign / sigma[j];
      for (size_t i = 0; i < m; ++i) out->u(i, k) = inv * b(i, j);
      // sigma == 0: U column left as zero (undefined direction).
    }
  }
  return Status::OK();
}

Result<SvdResult> ComputeSvd(const Matrix& a, const SvdOptions& options) {
  SvdScratch scratch;
  SvdResult out;
  MOCEMG_RETURN_NOT_OK(ComputeSvdInto(a, options, &scratch, &out));
  return out;
}

Result<Matrix> ReconstructFromSvd(const SvdResult& svd) {
  if (svd.u.empty()) {
    return Status::InvalidArgument(
        "ReconstructFromSvd requires U (set SvdOptions::compute_u)");
  }
  const size_t m = svd.u.rows();
  const size_t k = svd.singular_values.size();
  Matrix us(m, k);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      us(i, j) = svd.u(i, j) * svd.singular_values[j];
    }
  }
  return us.Multiply(svd.v.Transposed());
}

}  // namespace mocemg
