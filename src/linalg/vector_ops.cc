#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "util/distance_kernels.h"
#include "util/logging.h"

namespace mocemg {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  MOCEMG_CHECK(a.size() == b.size()) << "Dot size mismatch";
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double Norm1(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += std::fabs(x);
  return sum;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  MOCEMG_CHECK(a.size() == b.size()) << "distance size mismatch";
  return SquaredDistance(a.data(), b.data(), a.size());
}

double SquaredDistance(const double* a, const double* b, size_t n) {
  return SquaredL2(a, b, n);
}

double EuclideanDistance(const double* a, const double* b, size_t n) {
  return std::sqrt(SquaredDistance(a, b, n));
}

std::vector<double> AddVectors(const std::vector<double>& a,
                               const std::vector<double>& b) {
  MOCEMG_CHECK(a.size() == b.size());
  std::vector<double> out(a);
  for (size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

std::vector<double> SubtractVectors(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  MOCEMG_CHECK(a.size() == b.size());
  std::vector<double> out(a);
  for (size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

std::vector<double> ScaleVector(const std::vector<double>& v, double s) {
  std::vector<double> out(v);
  for (double& x : out) x *= s;
  return out;
}

void Axpy(double s, const std::vector<double>& b, std::vector<double>* a) {
  MOCEMG_CHECK(a != nullptr && a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += s * b[i];
}

std::vector<double> Normalized(const std::vector<double>& v) {
  const double n = Norm2(v);
  if (n == 0.0) return v;
  return ScaleVector(v, 1.0 / n);
}

std::vector<double> Concatenate(const std::vector<double>& a,
                                const std::vector<double>& b) {
  std::vector<double> out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Result<double> Mean(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("Mean of empty vector");
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

Result<double> SampleVariance(const std::vector<double>& v) {
  if (v.size() < 2) {
    return Status::InvalidArgument("SampleVariance needs >= 2 samples");
  }
  const double m = *Mean(v);
  double sum = 0.0;
  for (double x : v) sum += (x - m) * (x - m);
  return sum / static_cast<double>(v.size() - 1);
}

double PopulationStddev(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = *Mean(v);
  double sum = 0.0;
  for (double x : v) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(v.size()));
}

Result<double> MinElement(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("MinElement of empty");
  return *std::min_element(v.begin(), v.end());
}

Result<double> MaxElement(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("MaxElement of empty");
  return *std::max_element(v.begin(), v.end());
}

Result<size_t> ArgMax(const std::vector<double>& v) {
  if (v.empty()) return Status::InvalidArgument("ArgMax of empty");
  return static_cast<size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace mocemg
