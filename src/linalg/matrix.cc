#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace mocemg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init)
    : rows_(init.size()), cols_(0) {
  for (const auto& row : init) {
    if (cols_ == 0) cols_ = row.size();
    MOCEMG_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Result<Matrix> Matrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols) {
      return Status::InvalidArgument(
          "ragged input: row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " cells, expected " +
          std::to_string(cols));
    }
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(r));
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

std::vector<double> Matrix::Column(size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const std::vector<double>& values) {
  MOCEMG_CHECK(r < rows_ && values.size() == cols_);
  std::copy(values.begin(), values.end(), RowPtr(r));
}

void Matrix::SetColumn(size_t c, const std::vector<double>& values) {
  MOCEMG_CHECK(c < cols_ && values.size() == rows_);
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::RowSlice(size_t row_begin, size_t row_end) const {
  MOCEMG_CHECK(row_begin <= row_end && row_end <= rows_);
  Matrix out(row_end - row_begin, cols_);
  std::copy(data_.begin() + static_cast<ptrdiff_t>(row_begin * cols_),
            data_.begin() + static_cast<ptrdiff_t>(row_end * cols_),
            out.data_.begin());
  return out;
}

Matrix Matrix::ColumnSlice(size_t col_begin, size_t col_end) const {
  MOCEMG_CHECK(col_begin <= col_end && col_end <= cols_);
  Matrix out(rows_, col_end - col_begin);
  for (size_t r = 0; r < rows_; ++r) {
    std::copy(RowPtr(r) + col_begin, RowPtr(r) + col_end, out.RowPtr(r));
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Result<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        "matmul shape mismatch: (" + std::to_string(rows_) + "x" +
        std::to_string(cols_) + ") * (" + std::to_string(other.rows_) +
        "x" + std::to_string(other.cols_) + ")");
  }
  Matrix out(rows_, other.cols_);
  // ikj loop order for cache-friendly access to `other`.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Result<Matrix> Matrix::Add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("add shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Result<Matrix> Matrix::Subtract(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return Status::InvalidArgument("subtract shape mismatch");
  }
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllClose(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

Status Matrix::AppendRows(const Matrix& other) {
  if (other.empty()) return Status::OK();
  if (empty()) {
    *this = other;
    return Status::OK();
  }
  if (other.cols_ != cols_) {
    return Status::InvalidArgument("AppendRows column mismatch");
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
  return Status::OK();
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [\n";
  for (size_t r = 0; r < rows_; ++r) {
    os << "  ";
    for (size_t c = 0; c < cols_; ++c) {
      os << FormatDouble((*this)(r, c), precision);
      if (c + 1 < cols_) os << ", ";
    }
    os << "\n";
  }
  os << "]";
  return os.str();
}

}  // namespace mocemg
