/// \file matrix.h
/// \brief Dense row-major double matrix. The library's joint matrices
/// (frames × 3·joints), window slices, and cluster centers all use this
/// type; it is hand-rolled rather than pulling in Eigen so the whole
/// reproduction is self-contained.

#ifndef MOCEMG_LINALG_MATRIX_H_
#define MOCEMG_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/result.h"

namespace mocemg {

/// \brief Dense, row-major, owning matrix of doubles.
class Matrix {
 public:
  /// Constructs an empty (0×0) matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Constructs a rows×cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists; all rows must be equal
  /// length (checked).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// \brief Builds a matrix from row-major nested vectors; fails on
  /// ragged input.
  static Result<Matrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  /// \brief n×n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// \brief Raw row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// \brief Pointer to the start of row r.
  double* RowPtr(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  /// \brief Copies row r into a vector.
  std::vector<double> Row(size_t r) const;

  /// \brief Copies column c into a vector.
  std::vector<double> Column(size_t c) const;

  /// \brief Overwrites row r from a vector of matching length.
  void SetRow(size_t r, const std::vector<double>& values);

  /// \brief Overwrites column c from a vector of matching length.
  void SetColumn(size_t c, const std::vector<double>& values);

  /// \brief Returns the sub-matrix rows [row_begin, row_end) × all cols.
  Matrix RowSlice(size_t row_begin, size_t row_end) const;

  /// \brief Returns the sub-matrix of all rows × cols [col_begin, col_end).
  Matrix ColumnSlice(size_t col_begin, size_t col_end) const;

  /// \brief Transpose.
  Matrix Transposed() const;

  /// \brief this · other; fails on inner-dimension mismatch.
  Result<Matrix> Multiply(const Matrix& other) const;

  /// \brief this + other (element-wise); fails on shape mismatch.
  Result<Matrix> Add(const Matrix& other) const;

  /// \brief this - other (element-wise); fails on shape mismatch.
  Result<Matrix> Subtract(const Matrix& other) const;

  /// \brief Scales every element in place.
  void Scale(double s);

  /// \brief Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Maximum absolute element.
  double MaxAbs() const;

  /// \brief True iff shapes match and all elements are within `tol`.
  bool AllClose(const Matrix& other, double tol = 1e-12) const;

  /// \brief Appends the rows of `other` (must have identical cols).
  Status AppendRows(const Matrix& other);

  /// \brief Human-readable dump (small matrices; debugging and tests).
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace mocemg

#endif  // MOCEMG_LINALG_MATRIX_H_
