/// \file gram_svd.h
/// \brief Fixed-size 3×3 Gram-matrix eigensolver: the fast path behind
/// incremental window featurization (core/incremental_window.h).
///
/// For a w×3 window A the weighted-SVD feature (Eq. 3) needs only the
/// singular values and right singular vectors, and those are exactly the
/// eigenpairs of the 3×3 Gram matrix G = AᵀA: G = V·Σ²·Vᵀ. G can be
/// maintained under row insertion/removal in O(1) per row, so sliding a
/// window costs O(hop) instead of the O(w·sweeps) one-sided Jacobi in
/// linalg/svd.h. The price is conditioning: forming G squares the
/// condition number, so σᵢ/σmax below ~1e-8 (λᵢ/λmax below ~1e-16) is
/// pure noise here while the one-sided path still resolves it. Callers
/// are expected to guard on the returned eigenvalue spread and fall
/// back to ComputeSvdInto — see JointGramState::WeightedSvdFeature.
///
/// Unlike linalg/eigen_sym.h this solver never allocates: it works on
/// fixed arrays and is safe to call per window per joint inside
/// ParallelFor bodies.

#ifndef MOCEMG_LINALG_GRAM_SVD_H_
#define MOCEMG_LINALG_GRAM_SVD_H_

#include <cstddef>

#include "util/status.h"

namespace mocemg {

/// \brief Eigen-decomposition of a 3×3 Gram matrix, presented in the
/// same shape and conventions as the SVD it replaces.
struct GramSvd3 {
  /// Singular values sqrt(max(λₖ, 0)) in descending order. Tiny negative
  /// eigenvalues (round-off from rank-1 downdates) clamp to zero.
  double sigma[3] = {0.0, 0.0, 0.0};
  /// Eigenvalues of G in descending order (λₖ = σₖ²), kept unclamped so
  /// callers can see downdate round-off when deciding to fall back.
  double lambda[3] = {0.0, 0.0, 0.0};
  /// Right singular vectors as columns: v[3*i + k] is component i of
  /// vector k, sign-fixed exactly like SvdOptions::fix_signs (the
  /// largest-|·| component of each column made positive, first such
  /// component winning ties).
  double v[9] = {1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0};
  /// Smallest relative margin, over the three columns, between the
  /// largest and second-largest |component| — the quantity the sign
  /// convention keys on. When this is ~0 the documented sign choice is
  /// numerically ambiguous and an independently-rounded solver (the
  /// exact Jacobi path) may legitimately flip the column; callers that
  /// need cross-path agreement should fall back below a small floor.
  double sign_margin = 1.0;
  /// Two-sided Jacobi rotations applied (largest-pivot order).
  int sweeps = 0;
};

/// \brief Computes σₖ and sign-fixed right singular vectors of any A
/// with AᵀA == gram, via cyclic two-sided Jacobi on the 3×3 symmetric
/// matrix. `gram` is packed as [xx, xy, xz, yy, yz, zz].
///
/// Allocation-free. Fails with kNumericalError on non-finite input or
/// (never observed for symmetric 3×3) non-convergence; callers treat
/// any failure as "use the exact path".
Status ComputeSvdFromGram3(const double gram[6], GramSvd3* out);

/// \brief Warm-started variant: `warm_v` (layout of GramSvd3::v, must
/// be orthogonal — e.g. the `v` of a previous solve) pre-rotates the
/// problem to VᵀGV before sweeping. When the Gram matrix changed little
/// since the basis was computed — a window slid by one hop, or a
/// drift-removing refresh of the same window — the pre-rotated matrix
/// is already near diagonal and most rotations (the sqrt/divide chains
/// that dominate a 3×3 sweep) are skipped. Converges to the same
/// tolerance as the cold start; only round-off-level bits differ.
Status ComputeSvdFromGram3(const double gram[6], const double warm_v[9],
                           GramSvd3* out);

/// \brief One independent eigenproblem for ComputeSvdFromGram3Many.
/// `gram` and `out` are required; `warm_v` is the optional warm basis
/// of the warm-started overload. `status` is written by the solver.
struct GramSvd3Task {
  const double* gram = nullptr;
  const double* warm_v = nullptr;
  GramSvd3* out = nullptr;
  Status status;
};

/// \brief Solves `n` independent Gram eigenproblems, interleaving their
/// Jacobi iterations two at a time. A 3×3 rotation is one serial
/// sqrt/divide dependency chain (~tens of cycles of latency for a
/// handful of instructions), so a lone solve leaves the core mostly
/// idle; stepping two independent solves in lockstep overlaps their
/// chains and nearly doubles throughput. Each task performs exactly the
/// arithmetic the solo overloads would — results are bit-identical to
/// calling ComputeSvdFromGram3 per task, in any grouping.
void ComputeSvdFromGram3Many(GramSvd3Task* tasks, size_t n);

}  // namespace mocemg

#endif  // MOCEMG_LINALG_GRAM_SVD_H_
