#include "linalg/lu.h"

#include <cmath>

#include "util/macros.h"

namespace mocemg {

Result<LuDecomposition> LuDecomposition::Compute(const Matrix& a,
                                                 double pivot_tol) {
  if (a.empty() || a.rows() != a.cols()) {
    return Status::InvalidArgument("LU needs a non-empty square matrix");
  }
  const size_t n = a.rows();
  LuDecomposition lu;
  lu.lu_ = a;
  lu.perm_.resize(n);
  for (size_t i = 0; i < n; ++i) lu.perm_[i] = i;
  const double scale = std::max(a.MaxAbs(), 1e-300);

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest |entry| in column k at/below the diagonal.
    size_t pivot_row = k;
    double pivot = std::fabs(lu.lu_(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu.lu_(i, k));
      if (v > pivot) {
        pivot = v;
        pivot_row = i;
      }
    }
    if (pivot <= pivot_tol * scale) {
      return Status::NumericalError(
          "matrix is singular to working precision (pivot " +
          std::to_string(pivot) + ")");
    }
    if (pivot_row != k) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(lu.lu_(k, j), lu.lu_(pivot_row, j));
      }
      std::swap(lu.perm_[k], lu.perm_[pivot_row]);
      lu.permutation_sign_ = -lu.permutation_sign_;
    }
    const double inv_pivot = 1.0 / lu.lu_(k, k);
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = lu.lu_(i, k) * inv_pivot;
      lu.lu_(i, k) = factor;  // L strictly-below-diagonal entry
      for (size_t j = k + 1; j < n; ++j) {
        lu.lu_(i, j) -= factor * lu.lu_(k, j);
      }
    }
  }
  return lu;
}

Result<std::vector<double>> LuDecomposition::Solve(
    const std::vector<double>& b) const {
  const size_t n = dimension();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs dimension mismatch");
  }
  std::vector<double> x(n);
  // Forward substitution on the permuted rhs (L has unit diagonal).
  for (size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution with U.
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = x[i];
    for (size_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

Result<Matrix> LuDecomposition::SolveMatrix(const Matrix& b) const {
  if (b.rows() != dimension()) {
    return Status::InvalidArgument("rhs row-count mismatch");
  }
  Matrix x(dimension(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    MOCEMG_ASSIGN_OR_RETURN(std::vector<double> col, Solve(b.Column(c)));
    x.SetColumn(c, col);
  }
  return x;
}

Result<Matrix> LuDecomposition::Inverse() const {
  return SolveMatrix(Matrix::Identity(dimension()));
}

double LuDecomposition::Determinant() const {
  double det = static_cast<double>(permutation_sign_);
  for (size_t i = 0; i < dimension(); ++i) det *= lu_(i, i);
  return det;
}

Result<double> Determinant(const Matrix& a) {
  auto lu = LuDecomposition::Compute(a);
  if (!lu.ok()) {
    if (lu.status().IsNumericalError()) return 0.0;  // singular
    return lu.status();
  }
  return lu->Determinant();
}

Result<Matrix> Inverse(const Matrix& a) {
  MOCEMG_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Inverse();
}

}  // namespace mocemg
