/// \file kinematics.h
/// \brief Forward kinematics of the two instrumented limbs. Converts
/// per-joint angle series into the 3D marker trajectories the (simulated)
/// Vicon rig records, including global placement, heading, body sway, and
/// marker noise — the variability the paper's pelvis-local transform is
/// designed to cancel.
///
/// Frame convention: Z up, X the subject's forward direction before the
/// global heading rotation, Y to the subject's left. Units mm; rate 120 Hz.

#ifndef MOCEMG_SYNTH_KINEMATICS_H_
#define MOCEMG_SYNTH_KINEMATICS_H_

#include <vector>

#include "mocap/motion_sequence.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

/// \brief Subject anthropometry (mm). Randomized per simulated
/// participant to create inter-subject variation.
struct BodyDimensions {
  double torso_height = 550.0;       ///< pelvis → clavicle (vertical)
  double shoulder_offset_y = -200.0; ///< clavicle → right shoulder
  double upper_arm = 300.0;
  double forearm = 260.0;
  double hand = 80.0;
  double hip_offset_y = -100.0;      ///< pelvis → right hip
  double hip_drop = 80.0;            ///< pelvis → hip (vertical)
  double thigh = 420.0;
  double shank = 400.0;
  double foot = 150.0;
  double toe = 80.0;

  /// \brief Returns dimensions uniformly scaled by `factor` (subject
  /// stature variation).
  BodyDimensions Scaled(double factor) const;
};

/// \brief Per-frame arm joint angles (radians). All series must be equal
/// length. Angle conventions:
///  - shoulder_elevation: 0 = arm hanging down, π/2 = horizontal forward
///  - shoulder_azimuth:   rotation of the arm plane about Z (0 = sagittal)
///  - elbow_flexion:      0 = straight, positive folds the forearm up
///  - wrist_flexion:      0 = aligned with forearm
struct ArmAngleSeries {
  std::vector<double> shoulder_elevation;
  std::vector<double> shoulder_azimuth;
  std::vector<double> elbow_flexion;
  std::vector<double> wrist_flexion;

  size_t num_frames() const { return shoulder_elevation.size(); }
  Status Validate() const;
};

/// \brief Per-frame leg joint angles (radians), sagittal plane:
///  - hip_flexion:   0 = leg vertical, positive forward
///  - knee_flexion:  0 = straight, positive folds the shank backward
///  - ankle_flexion: 0 = foot perpendicular to shank (standing flat);
///                   positive = dorsiflexion (toes up)
struct LegAngleSeries {
  std::vector<double> hip_flexion;
  std::vector<double> knee_flexion;
  std::vector<double> ankle_flexion;

  size_t num_frames() const { return hip_flexion.size(); }
  Status Validate() const;
};

/// \brief Global placement and capture-noise parameters of one trial.
struct PlacementOptions {
  /// Pelvis world position at t=0 (mm).
  double origin_x = 0.0;
  double origin_y = 0.0;
  double origin_z = 1000.0;
  /// Heading rotation about Z applied to the whole body (radians).
  double heading_rad = 0.0;
  /// Per-frame pelvis translation (e.g. walking progression); empty = 0.
  /// Lengths, when non-empty, must match the angle series.
  std::vector<double> pelvis_dx;
  std::vector<double> pelvis_dz;
  /// Gaussian marker noise (per axis, mm) — Vicon-class rigs are ~0.5-2mm.
  double marker_noise_mm = 1.0;
  /// Small sinusoidal postural sway amplitude (mm).
  double sway_mm = 4.0;
  double frame_rate_hz = 120.0;
};

/// \brief Runs forward kinematics of the right arm and synthesizes the
/// capture: markers pelvis, clavicle, humerus (elbow), radius (wrist),
/// hand — the paper's four hand attributes plus the root.
Result<MotionSequence> SynthesizeArmCapture(const ArmAngleSeries& angles,
                                            const BodyDimensions& body,
                                            const PlacementOptions& placement,
                                            Rng* rng);

/// \brief Same for the right leg: markers pelvis, tibia (ankle), foot,
/// toe — the paper's three leg attributes plus the root.
Result<MotionSequence> SynthesizeLegCapture(const LegAngleSeries& angles,
                                            const BodyDimensions& body,
                                            const PlacementOptions& placement,
                                            Rng* rng);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_KINEMATICS_H_
