#include "synth/kinematics.h"

#include <cmath>

#include "util/macros.h"

namespace mocemg {
namespace {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
};

// Rotation about Z by `a`.
Vec3 RotZ(const Vec3& v, double a) {
  const double c = std::cos(a);
  const double s = std::sin(a);
  return {c * v.x - s * v.y, s * v.x + c * v.y, v.z};
}

Status ValidatePlacement(const PlacementOptions& placement, size_t frames) {
  if (placement.frame_rate_hz <= 0.0) {
    return Status::InvalidArgument("frame rate must be positive");
  }
  if (!placement.pelvis_dx.empty() &&
      placement.pelvis_dx.size() != frames) {
    return Status::InvalidArgument("pelvis_dx length mismatch");
  }
  if (!placement.pelvis_dz.empty() &&
      placement.pelvis_dz.size() != frames) {
    return Status::InvalidArgument("pelvis_dz length mismatch");
  }
  if (placement.marker_noise_mm < 0.0) {
    return Status::InvalidArgument("marker noise must be >= 0");
  }
  return Status::OK();
}

// Writes one marker with measurement noise.
void EmitMarker(MotionSequence* seq, size_t frame, size_t idx,
                const Vec3& p, double noise_mm, Rng* rng) {
  seq->SetMarkerPosition(frame, idx,
                         {p.x + rng->Gaussian(0.0, noise_mm),
                          p.y + rng->Gaussian(0.0, noise_mm),
                          p.z + rng->Gaussian(0.0, noise_mm)});
}

Vec3 PelvisAt(const PlacementOptions& placement, size_t frame, double t,
              double sway_phase_a, double sway_phase_b) {
  Vec3 p{placement.origin_x, placement.origin_y, placement.origin_z};
  if (!placement.pelvis_dx.empty()) p.x += placement.pelvis_dx[frame];
  if (!placement.pelvis_dz.empty()) p.z += placement.pelvis_dz[frame];
  // Gentle postural sway (common-mode across all markers; the local
  // transform removes it exactly, which is part of what it exists for).
  p.x += placement.sway_mm * std::sin(2.0 * M_PI * 0.4 * t + sway_phase_a);
  p.y += placement.sway_mm * std::sin(2.0 * M_PI * 0.3 * t + sway_phase_b);
  return p;
}

}  // namespace

BodyDimensions BodyDimensions::Scaled(double factor) const {
  BodyDimensions out = *this;
  out.torso_height *= factor;
  out.shoulder_offset_y *= factor;
  out.upper_arm *= factor;
  out.forearm *= factor;
  out.hand *= factor;
  out.hip_offset_y *= factor;
  out.hip_drop *= factor;
  out.thigh *= factor;
  out.shank *= factor;
  out.foot *= factor;
  out.toe *= factor;
  return out;
}

Status ArmAngleSeries::Validate() const {
  const size_t n = shoulder_elevation.size();
  if (n == 0) return Status::InvalidArgument("empty arm angle series");
  if (shoulder_azimuth.size() != n || elbow_flexion.size() != n ||
      wrist_flexion.size() != n) {
    return Status::InvalidArgument("arm angle series length mismatch");
  }
  return Status::OK();
}

Status LegAngleSeries::Validate() const {
  const size_t n = hip_flexion.size();
  if (n == 0) return Status::InvalidArgument("empty leg angle series");
  if (knee_flexion.size() != n || ankle_flexion.size() != n) {
    return Status::InvalidArgument("leg angle series length mismatch");
  }
  return Status::OK();
}

Result<MotionSequence> SynthesizeArmCapture(
    const ArmAngleSeries& angles, const BodyDimensions& body,
    const PlacementOptions& placement, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  MOCEMG_RETURN_NOT_OK(angles.Validate());
  const size_t frames = angles.num_frames();
  MOCEMG_RETURN_NOT_OK(ValidatePlacement(placement, frames));

  MarkerSet set({Segment::kPelvis, Segment::kClavicle, Segment::kHumerus,
                 Segment::kRadius, Segment::kHand});
  Matrix positions(frames, 3 * set.num_markers());
  MOCEMG_ASSIGN_OR_RETURN(
      MotionSequence seq,
      MotionSequence::Create(set, std::move(positions),
                             placement.frame_rate_hz));

  const double sway_a = rng->Uniform(0.0, 2.0 * M_PI);
  const double sway_b = rng->Uniform(0.0, 2.0 * M_PI);
  for (size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f) / placement.frame_rate_hz;
    const Vec3 pelvis = PelvisAt(placement, f, t, sway_a, sway_b);

    const double th_s = angles.shoulder_elevation[f];
    const double phi = angles.shoulder_azimuth[f];
    const double th_e = angles.elbow_flexion[f];
    const double th_w = angles.wrist_flexion[f];

    // Body-local (pre-heading) geometry. The arm moves in a plane
    // azimuth-rotated about Z; segment directions are parameterized by
    // cumulative flexion within that plane. The clavicle is not rigid:
    // the shoulder girdle elevates ("shrugs") and protracts with arm
    // elevation (scapulohumeral rhythm), so the clavicle marker carries
    // real motion information rather than being glued to the pelvis.
    const double girdle = std::max(0.0, std::sin(th_s));
    const Vec3 clav_local{20.0 * girdle * std::cos(phi),
                          body.shoulder_offset_y +
                              20.0 * girdle * std::sin(phi),
                          body.torso_height + 35.0 * girdle};
    auto seg_dir = [&](double cum_flex) {
      return RotZ(Vec3{std::sin(cum_flex), 0.0, -std::cos(cum_flex)}, phi);
    };
    const Vec3 shoulder = clav_local;
    const Vec3 elbow = shoulder + seg_dir(th_s) * body.upper_arm;
    const Vec3 wrist = elbow + seg_dir(th_s + th_e) * body.forearm;
    const Vec3 hand = wrist + seg_dir(th_s + th_e + th_w) * body.hand;

    // Global: heading rotation then pelvis translation.
    auto to_world = [&](const Vec3& local) {
      return pelvis + RotZ(local, placement.heading_rad);
    };
    EmitMarker(&seq, f, 0, pelvis, placement.marker_noise_mm, rng);
    EmitMarker(&seq, f, 1, to_world(clav_local), placement.marker_noise_mm,
               rng);
    EmitMarker(&seq, f, 2, to_world(elbow), placement.marker_noise_mm, rng);
    EmitMarker(&seq, f, 3, to_world(wrist), placement.marker_noise_mm, rng);
    EmitMarker(&seq, f, 4, to_world(hand), placement.marker_noise_mm, rng);
  }
  return seq;
}

Result<MotionSequence> SynthesizeLegCapture(
    const LegAngleSeries& angles, const BodyDimensions& body,
    const PlacementOptions& placement, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  MOCEMG_RETURN_NOT_OK(angles.Validate());
  const size_t frames = angles.num_frames();
  MOCEMG_RETURN_NOT_OK(ValidatePlacement(placement, frames));

  MarkerSet set({Segment::kPelvis, Segment::kTibia, Segment::kFoot,
                 Segment::kToe});
  Matrix positions(frames, 3 * set.num_markers());
  MOCEMG_ASSIGN_OR_RETURN(
      MotionSequence seq,
      MotionSequence::Create(set, std::move(positions),
                             placement.frame_rate_hz));

  const double sway_a = rng->Uniform(0.0, 2.0 * M_PI);
  const double sway_b = rng->Uniform(0.0, 2.0 * M_PI);
  for (size_t f = 0; f < frames; ++f) {
    const double t = static_cast<double>(f) / placement.frame_rate_hz;
    const Vec3 pelvis = PelvisAt(placement, f, t, sway_a, sway_b);

    const double th_h = angles.hip_flexion[f];
    const double th_k = angles.knee_flexion[f];
    const double th_a = angles.ankle_flexion[f];

    const Vec3 hip_local{0.0, body.hip_offset_y, -body.hip_drop};
    // Sagittal-plane chain: direction (sin θ, 0, −cos θ) of cumulative
    // flexion; knee flexion folds the shank backward (negative).
    auto sag_dir = [](double a) {
      return Vec3{std::sin(a), 0.0, -std::cos(a)};
    };
    const Vec3 knee = hip_local + sag_dir(th_h) * body.thigh;
    const double shank_angle = th_h - th_k;
    const Vec3 ankle = knee + sag_dir(shank_angle) * body.shank;
    // Foot perpendicular to the shank at θa = 0, dorsiflexion rotates
    // toes up: direction angle = shank_angle + π/2 + θa.
    const Vec3 foot_dir = sag_dir(shank_angle + M_PI / 2.0 + th_a);
    const Vec3 foot = ankle + foot_dir * body.foot;
    const Vec3 toe = foot + foot_dir * body.toe;

    auto to_world = [&](const Vec3& local) {
      return pelvis + RotZ(local, placement.heading_rad);
    };
    EmitMarker(&seq, f, 0, pelvis, placement.marker_noise_mm, rng);
    EmitMarker(&seq, f, 1, to_world(ankle), placement.marker_noise_mm, rng);
    EmitMarker(&seq, f, 2, to_world(foot), placement.marker_noise_mm, rng);
    EmitMarker(&seq, f, 3, to_world(toe), placement.marker_noise_mm, rng);
  }
  return seq;
}

}  // namespace mocemg
