/// \file merge.h
/// \brief Merging synchronized captures from multiple device sets into a
/// whole-body capture. The paper analyzes limbs separately but claims
/// the approach "is flexible enough to classify the human motions for
/// whole human body"; merging the arm and leg rigs' streams produces
/// exactly that whole-body input, and the classifier consumes it
/// unchanged.

#ifndef MOCEMG_SYNTH_MERGE_H_
#define MOCEMG_SYNTH_MERGE_H_

#include "emg/emg_recording.h"
#include "mocap/motion_sequence.h"
#include "util/result.h"

namespace mocemg {

/// \brief Merges two synchronized mocap captures into one marker set.
/// Frame rates must match; the output covers the frame overlap. Shared
/// pelvis markers are taken from `a`; any other duplicated segment
/// fails (ambiguous).
Result<MotionSequence> MergeMotionCaptures(const MotionSequence& a,
                                           const MotionSequence& b);

/// \brief Merges two synchronized EMG recordings into one multi-channel
/// recording. Sample rates must match; output covers the overlap;
/// duplicate muscles fail.
Result<EmgRecording> MergeEmgRecordings(const EmgRecording& a,
                                        const EmgRecording& b);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_MERGE_H_
