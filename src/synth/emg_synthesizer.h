/// \file emg_synthesizer.h
/// \brief Raw surface-EMG synthesis: activation envelopes → the 1000 Hz
/// signed voltage stream a Myomonitor-class amplifier would digitize.
///
/// Model: surface EMG is activation-amplitude-modulated band-limited
/// stochastic interference (motor-unit action potentials summing
/// asynchronously). Per channel:
///   emg(t) = gain · a(t) · carrier(t) + noise(t) + wander(t) + artifacts
/// where the carrier is unit-variance Gaussian noise shaped to the
/// 30–350 Hz surface-EMG band, `noise` is broadband measurement noise,
/// `wander` is sub-Hz baseline drift, and artifacts are sparse motion
/// spikes. All of the non-stationarity and noise-susceptibility the paper
/// attributes to EMG is present; its acquisition chain (band-pass,
/// rectify, down-sample — acquisition.h) then recovers the envelope.

#ifndef MOCEMG_SYNTH_EMG_SYNTHESIZER_H_
#define MOCEMG_SYNTH_EMG_SYNTHESIZER_H_

#include <vector>

#include "emg/emg_recording.h"
#include "synth/muscle_model.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

/// \brief Synthesis parameters; defaults produce signals on the paper's
/// observed scale (tens of microvolts, Figure 2's 1e−5 V axis).
struct EmgSynthOptions {
  double sample_rate_hz = 1000.0;
  /// Peak (full-activation) EMG standard deviation, volts.
  double mvc_amplitude_v = 6.0e-5;
  /// Carrier shaping band (Hz) — surface-EMG energy concentration.
  double carrier_low_hz = 30.0;
  double carrier_high_hz = 350.0;
  /// Broadband measurement-noise std (volts).
  double noise_floor_v = 1.5e-6;
  /// Baseline-wander amplitude (volts) and frequency (Hz).
  double wander_amplitude_v = 3.0e-6;
  double wander_freq_hz = 0.4;
  /// Expected motion artifacts per second (sparse exponential spikes).
  double artifact_rate_hz = 0.15;
  double artifact_amplitude_v = 4.0e-5;
  /// Slow multiplicative gain drift std over the whole trial (models
  /// electrode-gel drying / electrode-skin impedance change).
  double gain_drift_sigma = 0.10;
};

/// \brief Synthesizes one channel of raw EMG from an activation envelope
/// sampled at `activation_rate_hz` (the mocap frame rate). The envelope
/// is resampled internally to the EMG rate. Returns sample_rate_hz ·
/// duration signed voltage samples.
Result<std::vector<double>> SynthesizeEmgChannel(
    const std::vector<double>& activation, double activation_rate_hz,
    const EmgSynthOptions& options, Rng* rng);

/// \brief Synthesizes a full raw recording from per-muscle activations
/// (one channel per MuscleActivation, in order).
Result<EmgRecording> SynthesizeEmgRecording(
    const std::vector<MuscleActivation>& activations,
    double activation_rate_hz, const EmgSynthOptions& options, Rng* rng);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_EMG_SYNTHESIZER_H_
