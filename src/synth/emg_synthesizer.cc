#include "synth/emg_synthesizer.h"

#include <cmath>

#include "signal/butterworth.h"
#include "util/macros.h"

namespace mocemg {
namespace {

// Linear interpolation of the (smooth) activation envelope onto the EMG
// time base. No anti-aliasing is needed: the envelope is band-limited by
// the muscle model's smoothing and we are *up*-sampling.
std::vector<double> UpsampleEnvelope(const std::vector<double>& env,
                                     double rate_in, double rate_out) {
  const double duration =
      static_cast<double>(env.size()) / rate_in;  // seconds
  const size_t n = static_cast<size_t>(std::floor(duration * rate_out));
  std::vector<double> out(n);
  for (size_t k = 0; k < n; ++k) {
    const double src =
        static_cast<double>(k) / rate_out * rate_in;  // fractional index
    const size_t i0 = static_cast<size_t>(std::floor(src));
    if (i0 + 1 >= env.size()) {
      out[k] = env.back();
      continue;
    }
    const double frac = src - static_cast<double>(i0);
    out[k] = (1.0 - frac) * env[i0] + frac * env[i0 + 1];
  }
  return out;
}

}  // namespace

Result<std::vector<double>> SynthesizeEmgChannel(
    const std::vector<double>& activation, double activation_rate_hz,
    const EmgSynthOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (activation.empty()) {
    return Status::InvalidArgument("empty activation envelope");
  }
  if (activation_rate_hz <= 0.0 || options.sample_rate_hz <= 0.0) {
    return Status::InvalidArgument("rates must be positive");
  }
  if (options.carrier_high_hz >= options.sample_rate_hz / 2.0) {
    return Status::InvalidArgument(
        "carrier band must lie below Nyquist of the EMG rate");
  }

  const std::vector<double> env = UpsampleEnvelope(
      activation, activation_rate_hz, options.sample_rate_hz);
  const size_t n = env.size();

  // Band-limited carrier: white Gaussian noise through the EMG-band
  // shaper, re-normalized to unit variance.
  std::vector<double> carrier(n);
  for (double& v : carrier) v = rng->NextGaussian();
  MOCEMG_ASSIGN_OR_RETURN(
      BiquadCascade shaper,
      DesignBandPass(4, options.carrier_low_hz, options.carrier_high_hz,
                     options.sample_rate_hz));
  carrier = shaper.ProcessSignal(carrier);
  double var = 0.0;
  for (double v : carrier) var += v * v;
  var /= static_cast<double>(n);
  const double inv_std = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;

  // Slow multiplicative gain drift: smooth random walk, exponentiated.
  const double drift_target =
      rng->Gaussian(0.0, options.gain_drift_sigma);
  // Sparse motion artifacts: exponentially decaying spikes at random
  // instants.
  std::vector<double> artifacts(n, 0.0);
  const double expected =
      options.artifact_rate_hz * static_cast<double>(n) /
      options.sample_rate_hz;
  const size_t num_artifacts = static_cast<size_t>(expected) +
                               (rng->NextDouble() < (expected - std::floor(expected)) ? 1 : 0);
  for (size_t a = 0; a < num_artifacts; ++a) {
    const size_t at = static_cast<size_t>(rng->NextBelow(n));
    const double amp = options.artifact_amplitude_v *
                       rng->Uniform(0.4, 1.0) *
                       (rng->NextBool() ? 1.0 : -1.0);
    const double tau = options.sample_rate_hz * 0.02;  // 20 ms decay
    for (size_t i = at; i < n && i < at + static_cast<size_t>(6 * tau);
         ++i) {
      artifacts[i] +=
          amp * std::exp(-static_cast<double>(i - at) / tau);
    }
  }

  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    const double progress = static_cast<double>(i) / static_cast<double>(n);
    const double gain = std::exp(drift_target * progress);
    const double wander =
        options.wander_amplitude_v *
        std::sin(2.0 * M_PI * options.wander_freq_hz * progress *
                     static_cast<double>(n) / options.sample_rate_hz +
                 0.7);
    out[i] = options.mvc_amplitude_v * gain * env[i] * carrier[i] * inv_std +
             rng->Gaussian(0.0, options.noise_floor_v) + wander +
             artifacts[i];
  }
  return out;
}

Result<EmgRecording> SynthesizeEmgRecording(
    const std::vector<MuscleActivation>& activations,
    double activation_rate_hz, const EmgSynthOptions& options, Rng* rng) {
  if (activations.empty()) {
    return Status::InvalidArgument("no muscle activations");
  }
  std::vector<Muscle> muscles;
  std::vector<std::vector<double>> channels;
  for (const auto& act : activations) {
    MOCEMG_ASSIGN_OR_RETURN(
        std::vector<double> ch,
        SynthesizeEmgChannel(act.activation, activation_rate_hz, options,
                             rng));
    muscles.push_back(act.muscle);
    channels.push_back(std::move(ch));
  }
  // Channel lengths can differ by one sample from floor rounding; trim to
  // the shortest so the recording is rectangular.
  size_t min_len = channels[0].size();
  for (const auto& ch : channels) min_len = std::min(min_len, ch.size());
  for (auto& ch : channels) ch.resize(min_len);
  return EmgRecording::Create(std::move(muscles), std::move(channels),
                              options.sample_rate_hz);
}

}  // namespace mocemg
