#include "synth/merge.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace mocemg {

Result<MotionSequence> MergeMotionCaptures(const MotionSequence& a,
                                           const MotionSequence& b) {
  MOCEMG_RETURN_NOT_OK(a.Validate());
  MOCEMG_RETURN_NOT_OK(b.Validate());
  if (std::fabs(a.frame_rate_hz() - b.frame_rate_hz()) > 1e-9) {
    return Status::InvalidArgument(
        "frame rates differ: " + std::to_string(a.frame_rate_hz()) +
        " vs " + std::to_string(b.frame_rate_hz()));
  }
  // Union marker set: all of a, then b's segments not already present.
  // Only the pelvis may legitimately appear in both rigs.
  std::vector<Segment> merged = a.marker_set().segments();
  std::vector<Segment> from_b;
  for (Segment s : b.marker_set().segments()) {
    const bool duplicate =
        std::find(merged.begin(), merged.end(), s) != merged.end();
    if (duplicate) {
      if (s != Segment::kPelvis) {
        return Status::InvalidArgument(
            std::string("segment '") + SegmentName(s) +
            "' captured by both rigs; merge is ambiguous");
      }
      continue;
    }
    merged.push_back(s);
    from_b.push_back(s);
  }

  const size_t frames = std::min(a.num_frames(), b.num_frames());
  MarkerSet set(merged);
  Matrix positions(frames, 3 * set.num_markers());
  MOCEMG_ASSIGN_OR_RETURN(
      MotionSequence out,
      MotionSequence::Create(set, std::move(positions),
                             a.frame_rate_hz()));
  for (size_t m = 0; m < set.num_markers(); ++m) {
    const Segment s = set.segments()[m];
    const bool take_b =
        std::find(from_b.begin(), from_b.end(), s) != from_b.end();
    const MotionSequence& src = take_b ? b : a;
    MOCEMG_ASSIGN_OR_RETURN(size_t src_idx,
                            src.marker_set().IndexOf(s));
    for (size_t f = 0; f < frames; ++f) {
      out.SetMarkerPosition(f, m, src.MarkerPosition(f, src_idx));
    }
  }
  return out;
}

Result<EmgRecording> MergeEmgRecordings(const EmgRecording& a,
                                        const EmgRecording& b) {
  MOCEMG_RETURN_NOT_OK(a.Validate());
  MOCEMG_RETURN_NOT_OK(b.Validate());
  if (std::fabs(a.sample_rate_hz() - b.sample_rate_hz()) > 1e-9) {
    return Status::InvalidArgument("sample rates differ");
  }
  for (Muscle m : b.muscles()) {
    if (a.IndexOf(m).ok()) {
      return Status::InvalidArgument(
          std::string("muscle '") + MuscleName(m) +
          "' recorded by both devices; merge is ambiguous");
    }
  }
  const size_t samples = std::min(a.num_samples(), b.num_samples());
  std::vector<Muscle> muscles = a.muscles();
  muscles.insert(muscles.end(), b.muscles().begin(), b.muscles().end());
  std::vector<std::vector<double>> channels;
  channels.reserve(muscles.size());
  for (size_t c = 0; c < a.num_channels(); ++c) {
    channels.emplace_back(a.channel(c).begin(),
                          a.channel(c).begin() +
                              static_cast<ptrdiff_t>(samples));
  }
  for (size_t c = 0; c < b.num_channels(); ++c) {
    channels.emplace_back(b.channel(c).begin(),
                          b.channel(c).begin() +
                              static_cast<ptrdiff_t>(samples));
  }
  return EmgRecording::Create(std::move(muscles), std::move(channels),
                              a.sample_rate_hz());
}

}  // namespace mocemg
