/// \file dataset.h
/// \brief End-to-end dataset generation: the simulated Motion Capture
/// Laboratory. One call produces the paper's test bed — multiple
/// participants, multiple motion classes, multiple trials each, every
/// trial a synchronized (mocap 120 Hz, raw EMG 1000 Hz) pair.

#ifndef MOCEMG_SYNTH_DATASET_H_
#define MOCEMG_SYNTH_DATASET_H_

#include <cmath>
#include <string>
#include <vector>

#include "emg/emg_recording.h"
#include "mocap/motion_sequence.h"
#include "synth/emg_synthesizer.h"
#include "synth/muscle_model.h"
#include "synth/trigger.h"
#include "util/result.h"

namespace mocemg {

/// \brief One captured trial: what the lab's two instruments recorded,
/// plus its ground-truth label.
struct CapturedMotion {
  /// Class label ("raise_arm", "walk", …) and dense id within the limb's
  /// class vocabulary.
  std::string class_name;
  size_t class_id = 0;
  size_t trial = 0;
  size_t subject = 0;
  /// Global-coordinate marker trajectories at the capture frame rate.
  MotionSequence mocap;
  /// Raw (signed, 1000 Hz) EMG — not yet conditioned.
  EmgRecording emg_raw;
};

/// \brief Generation parameters for one limb's dataset.
struct DatasetOptions {
  Limb limb = Limb::kRightHand;
  size_t trials_per_class = 10;
  size_t num_subjects = 4;
  uint64_t seed = 7;
  double frame_rate_hz = 120.0;
  /// Global placement randomization: origin offsets (mm) and heading (rad)
  /// drawn uniformly from ±these bounds. Translation is fully removed by
  /// the paper's pelvis-local transform; heading is NOT (the paper only
  /// shifts the origin), so the default models what a real capture lab
  /// does — participants face the capture volume consistently, within a
  /// natural ±0.2 rad stance wobble. Crank this up (with
  /// LocalTransformOptions::normalize_heading) to study facing-direction
  /// invariance, an extension beyond the paper.
  double placement_range_mm = 500.0;
  double heading_range_rad = 0.2;
  double marker_noise_mm = 1.0;
  /// Per-subject stature scale drawn uniformly from [1−x, 1+x].
  double subject_scale_range = 0.07;
  MuscleModelOptions muscle;
  EmgSynthOptions emg;
  TriggerOptions trigger;
};

/// \brief Generates the full labelled dataset (classes × trials).
/// Deterministic in `options.seed`.
Result<std::vector<CapturedMotion>> GenerateDataset(
    const DatasetOptions& options);

/// \brief Generates a single trial of the named class (used by examples
/// and the Fig. 2 bench). `class_id` indexes the limb's vocabulary.
Result<CapturedMotion> GenerateTrial(const DatasetOptions& options,
                                     size_t class_id, size_t trial,
                                     uint64_t trial_seed);

/// \brief Number of classes in a limb's vocabulary.
size_t NumClassesForLimb(Limb limb);

/// \brief Name of class `class_id` in a limb's vocabulary.
const char* ClassNameForLimb(Limb limb, size_t class_id);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_DATASET_H_
