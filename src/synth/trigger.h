/// \file trigger.h
/// \brief Simulation of the paper's hardware synchronization (its Figure
/// 5): a Delsys Trigger Module on the workstation's parallel port starts
/// the Vicon and Myomonitor acquisitions simultaneously. Here the trigger
/// is modelled as per-device start latencies; zero latency reproduces the
/// paper's synchronized rig, and non-zero values let the ablation bench
/// (abl6) measure what the hardware trigger is worth.

#ifndef MOCEMG_SYNTH_TRIGGER_H_
#define MOCEMG_SYNTH_TRIGGER_H_

#include "emg/emg_recording.h"
#include "mocap/motion_sequence.h"
#include "util/random.h"
#include "util/result.h"

namespace mocemg {

/// \brief Trigger-module timing model.
struct TriggerOptions {
  /// Deterministic device start latencies after the trigger edge (ms).
  double mocap_latency_ms = 0.0;
  double emg_latency_ms = 0.0;
  /// Per-trial Gaussian jitter std added to each latency (ms).
  double jitter_ms = 0.0;
};

/// \brief The realized start times of one trial's two acquisitions,
/// relative to the physical start of the motion (s, clamped >= 0).
struct TriggerEvent {
  double mocap_start_s = 0.0;
  double emg_start_s = 0.0;
};

/// \brief Samples a trial's realized latencies.
TriggerEvent FireTrigger(const TriggerOptions& options, Rng* rng);

/// \brief A device that starts `latency_s` late misses the first
/// `latency_s` of the physical event: drops the leading frames.
Result<MotionSequence> ApplyStartLatency(const MotionSequence& motion,
                                         double latency_s);
Result<EmgRecording> ApplyStartLatency(const EmgRecording& recording,
                                       double latency_s);

}  // namespace mocemg

#endif  // MOCEMG_SYNTH_TRIGGER_H_
